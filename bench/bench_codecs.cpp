// Timing benchmarks (google-benchmark) for the incompressibility machinery:
// E(G) encoding, enumerative ranking, and the proof codecs.
#include <benchmark/benchmark.h>

#include <map>

#include "core/optrt.hpp"

namespace {

using namespace optrt;

const graph::Graph& shared_graph(std::size_t n) {
  static std::map<std::size_t, graph::Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    graph::Rng rng(n + 2);
    it = cache.emplace(n, core::certified_random_graph(n, rng)).first;
  }
  return it->second;
}

void BM_EncodeEG(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::encode(g).size());
  }
}
BENCHMARK(BM_EncodeEG)->Arg(128)->Arg(256);

void BM_EnumerativeRank(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(5);
  bitio::BitVector bits(n);
  for (std::size_t i = 0; i < n; ++i) bits.set(i, rng() & 1u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        incompress::rank_fixed_weight(bits).bit_length());
  }
}
BENCHMARK(BM_EnumerativeRank)->Arg(127)->Arg(255)->Arg(511);

void BM_EnumerativeUnrank(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(6);
  bitio::BitVector bits(n);
  for (std::size_t i = 0; i < n; ++i) bits.set(i, rng() & 1u);
  const auto rank = incompress::rank_fixed_weight(bits);
  const std::size_t k = bits.popcount();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        incompress::unrank_fixed_weight(n, k, rank).size());
  }
}
BENCHMARK(BM_EnumerativeUnrank)->Arg(127)->Arg(255);

void BM_Lemma1Codec(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto d = incompress::lemma1_encode(g, 0);
    benchmark::DoNotOptimize(
        incompress::lemma1_decode(d.bits, g.node_count()).edge_count());
  }
}
BENCHMARK(BM_Lemma1Codec)->Arg(96)->Arg(192);

void BM_Theorem6Codec(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto r = incompress::theorem6_encode(g, 0);
    benchmark::DoNotOptimize(
        incompress::theorem6_decode(r.description.bits, g.node_count())
            .edge_count());
  }
}
BENCHMARK(BM_Theorem6Codec)->Arg(96)->Arg(192);

void BM_Theorem10Codec(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto r = incompress::theorem10_encode(g, 0);
    benchmark::DoNotOptimize(
        incompress::theorem10_decode(r.description.bits, g.node_count())
            .edge_count());
  }
}
BENCHMARK(BM_Theorem10Codec)->Arg(96);

void BM_LZ78Estimator(benchmark::State& state) {
  const auto& g = shared_graph(128);
  const bitio::BitVector eg = graph::encode(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitio::lz78_coded_bits(eg));
  }
}
BENCHMARK(BM_LZ78Estimator);

void BM_ArithmeticCoder(benchmark::State& state) {
  const auto& g = shared_graph(128);
  const bitio::BitVector eg = graph::encode(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitio::arithmetic_coded_bits(eg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(eg.size() / 8));
}
BENCHMARK(BM_ArithmeticCoder);

void BM_GraphCompressor(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto code = incompress::compress_graph(g);
    benchmark::DoNotOptimize(
        incompress::decompress_graph(code, g.node_count()).edge_count());
  }
}
BENCHMARK(BM_GraphCompressor)->Arg(96)->Arg(192);

void BM_PermutationRank(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> perm(d);
  for (std::uint32_t i = 0; i < d; ++i) perm[i] = i;
  graph::Rng rng(9);
  std::shuffle(perm.begin(), perm.end(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        incompress::rank_permutation(perm).bit_length());
  }
}
BENCHMARK(BM_PermutationRank)->Arg(64)->Arg(256);

void BM_DistributedConstruction(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::distributed_compact_construction(g).message_bits);
  }
}
BENCHMARK(BM_DistributedConstruction)->Arg(96)->Arg(192);

}  // namespace

BENCHMARK_MAIN();
