// Reproduces Theorem 10 and its matching trivial upper bound: the
// full-information scheme's measured Θ(n³) size, the codec's implied
// per-node lower bound ≈ n²/4, and the failure-rerouting capability that
// motivates paying n³ bits at all.
#include <iostream>
#include <vector>

#include "core/optrt.hpp"

int main() {
  using namespace optrt;
  const std::vector<std::size_t> ns = {48, 96, 192};

  std::cout << "== Theorem 10: full-information shortest path routing ==\n\n";

  core::TextTable table({"n", "scheme total bits", "trivial bound n^3",
                         "implied/node", "paper n^2/4", "exactness"});
  std::vector<double> xs, ys;
  for (std::size_t n : ns) {
    graph::Rng rng(n + 31);
    const graph::Graph g = core::certified_random_graph(n, rng);
    const auto scheme = schemes::FullInformationScheme::standard(g);
    const auto check = model::verify_full_information(g, scheme);
    const auto r = incompress::theorem10_encode(g, 0);
    const bool round_trip =
        incompress::theorem10_decode(r.description.bits, n) == g;
    table.add_row(
        {std::to_string(n), std::to_string(scheme.space().total_bits()),
         core::TextTable::num(incompress::trivial_full_information_bound(n), 0),
         std::to_string(r.implied_function_lower_bound()),
         core::TextTable::num(incompress::theorem10_per_node_bound(n), 0),
         check.exact && round_trip ? "exact+round-trip" : "FAILED"});
    if (!check.exact || !round_trip) return 1;
    xs.push_back(static_cast<double>(n));
    ys.push_back(static_cast<double>(scheme.space().total_bits()));
  }
  table.print(std::cout);
  const auto fit = core::fit_power_law(xs, ys);
  std::cout << "\nfitted total ≈ n^" << core::TextTable::num(fit.exponent, 2)
            << " (Θ(n³) predicts 3.0). The implied per-node lower bound "
               "tracks n²/4:\nfull information routing cannot beat the "
               "trivial table — Theorem 10.\n";
  return 0;
}
