// Reproduces the §1.2 comparison with related work: Peleg–Upfal-style
// stretch-s trade-off schemes (our landmark baseline, stretch < 3) versus
// this paper's constructions, in both regimes:
//
//   dense "almost all" graphs  — Theorem 1's 6n-bit tables beat the general
//                                trade-off scheme (the paper's point: on
//                                random graphs the specialized bounds win);
//   sparse graphs              — Theorem 1 does not even apply (diameter
//                                > 2); the trade-off scheme is the option.
#include <iostream>
#include <vector>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  optrt::core::apply_threads_flag(argc, argv);
  using namespace optrt;

  std::cout << "== §1.2 related work: landmark (stretch<3) vs this paper "
               "==\n\n";

  core::TextTable table({"graph", "n", "scheme", "total bits", "label bits",
                         "max stretch", "applies"});

  for (std::size_t n : {64u, 128u, 256u}) {
    graph::Rng rng(n + 41);
    const graph::Graph dense = core::certified_random_graph(n, rng);
    {
      const schemes::CompactDiam2Scheme compact(dense, {});
      const auto r = model::verify_scheme(dense, compact);
      table.add_row({"G(n,1/2)", std::to_string(n), "compact-diam2 (Thm 1)",
                     std::to_string(compact.space().total_bits()), "0",
                     core::TextTable::num(r.max_stretch, 2), "yes"});
    }
    {
      const schemes::LandmarkScheme lm(dense);
      const auto r = model::verify_scheme(dense, lm);
      const auto space = lm.space();
      table.add_row({"G(n,1/2)", std::to_string(n), "landmark (PU-style)",
                     std::to_string(space.total_function_bits()),
                     std::to_string(space.label_bits),
                     core::TextTable::num(r.max_stretch, 2), "yes"});
    }
    table.add_rule();
  }

  for (std::size_t side : {8u, 12u, 16u}) {
    const graph::Graph sparse = graph::grid(side, side);
    const std::size_t n = side * side;
    {
      bool applies = true;
      try {
        schemes::CompactDiam2Scheme compact(sparse, {});
      } catch (const schemes::SchemeInapplicable&) {
        applies = false;
      }
      table.add_row({"grid", std::to_string(n), "compact-diam2 (Thm 1)", "-",
                     "-", "-", applies ? "yes" : "no (diam > 2)"});
    }
    {
      const schemes::LandmarkScheme lm(sparse);
      const auto r = model::verify_scheme(sparse, lm);
      const auto space = lm.space();
      table.add_row({"grid", std::to_string(n), "landmark (PU-style)",
                     std::to_string(space.total_function_bits()),
                     std::to_string(space.label_bits),
                     core::TextTable::num(r.max_stretch, 2), "yes"});
    }
    table.add_rule();
  }
  table.print(std::cout);

  std::cout
      << "\nShape check: on dense random graphs the Theorem 1 tables are "
         "several times\nsmaller than the general trade-off scheme (the "
         "paper's average-case point);\non sparse grids Theorem 1 is "
         "inapplicable while the landmark scheme routes\nwith stretch < 3 "
         "and near-linear tables — the Peleg–Upfal regime.\n";
  return 0;
}
