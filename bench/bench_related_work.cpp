// Space-vs-stretch sweep across topology families: the paper's schemes
// against Thorup-Zwick stretch-3 routing on G(n,1/2), power-law
// (Barabási-Albert), grid, and ring graphs — the "Compact Routing on
// Internet-Like Graphs" (Krioukov-Fall-Yang) comparison grafted onto the
// §1.2 related-work axis.
//
// The paper's regimes still show: on dense random graphs Theorem 1's
// compact-diam2 tables win on space; on everything sparser it is
// inapplicable and the landmark/TZ handoff schemes take over, with TZ's
// average stretch collapsing toward 1 on Internet-like topologies — the
// phenomenon worst-case bounds can't show, reported as the
// tz_power_law_avg_stretch headline.
//
// Every scheme is verified over the full ordered pair space with
// verify_scheme_stretch (bound 3): delivery, invalid hops, worst-case and
// average stretch all come from the sharded verifier, so the emitted JSON
// is bit-identical at any --threads. Emits BENCH_related_work.json
// (schema optrt.bench_related_work.v1):
//
//   {"schema":"optrt.bench_related_work.v1","seed":…,"sizes":[…],
//    "stretch_bound":3.0,
//    "rows":[{"family":…, "n":…, "scheme":…, "applies":true,
//             "total_bits":…, "function_bits":…, "label_bits":…,
//             "bits_per_node":…, "delivered":true, "max_stretch":…,
//             "avg_stretch":…, "within_bound":true}, …],
//    "tz_power_law_avg_stretch":…, "metrics":{…}}
//
//   bench_related_work [--seed 1996] [--smoke] [--threads N]
//                      [-o BENCH_related_work.json]
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/optrt.hpp"

namespace {

using namespace optrt;

constexpr double kStretchBound = 3.0;

struct Config {
  std::uint64_t seed = 1996;  // PODC'96
  std::vector<std::size_t> sizes = {64, 128, 256, 512, 1024};
  std::string out_path = "BENCH_related_work.json";
};

struct Row {
  std::string family;
  std::size_t n = 0;
  std::string scheme;
  bool applies = false;
  std::size_t total_bits = 0;
  std::size_t function_bits = 0;
  std::size_t label_bits = 0;
  bool delivered = false;
  double max_stretch = 0.0;
  double avg_stretch = 0.0;
  bool within_bound = false;
};

Row measure(const std::string& family, const graph::Graph& g,
            const model::RoutingScheme& scheme) {
  Row row;
  row.family = family;
  row.n = g.node_count();
  row.scheme = scheme.name();
  row.applies = true;
  const auto space = scheme.space();
  row.function_bits = space.total_function_bits();
  row.label_bits = space.label_bits;
  row.total_bits = space.total_bits();
  const auto r = model::verify_scheme_stretch(g, scheme, kStretchBound);
  row.delivered = r.base.all_delivered && r.base.invalid_hops == 0;
  row.max_stretch = r.base.max_stretch;
  row.avg_stretch = r.base.mean_stretch;
  row.within_bound = r.ok();
  return row;
}

/// Builds one scheme kind over g; returns an applies=false row when the
/// scheme's preconditions reject the graph (e.g. compact-diam2 off
/// diameter-2 graphs).
template <typename Build>
Row try_scheme(const std::string& family, const graph::Graph& g,
               const char* scheme_name, Build&& build) {
  try {
    const auto scheme = build();
    return measure(family, g, *scheme);
  } catch (const schemes::SchemeInapplicable&) {
    Row row;
    row.family = family;
    row.n = g.node_count();
    row.scheme = scheme_name;
    return row;
  }
}

}  // namespace

int main(int argc, char** argv) {
  core::apply_threads_flag(argc, argv);
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (++i >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[i];
    };
    if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--smoke") {
      // CI mode: two small sizes — checks scheme wiring, verifier bounds,
      // and the JSON schema, not the headline number.
      cfg.sizes = {24, 48};
    } else if (a == "-o" || a == "--output") {
      cfg.out_path = next();
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return 2;
    }
  }

  const std::vector<graph::TopologyFamily> families = {
      graph::TopologyFamily::uniform(),
      graph::TopologyFamily::power_law(2),
      graph::TopologyFamily::grid(),
      graph::TopologyFamily::ring(),
  };

  std::vector<Row> rows;
  double tz_power_law_avg_stretch = 0.0;
  bool all_ok = true;
  for (const auto& family : families) {
    const std::string fname = family.name();
    for (std::size_t idx = 0; idx < cfg.sizes.size(); ++idx) {
      const std::size_t n = cfg.sizes[idx];
      const graph::Graph g = family.make(n, core::point_seed(cfg.seed, idx, 1));
      const std::uint64_t scheme_seed = core::point_seed(cfg.seed, idx, 2);

      rows.push_back(try_scheme(fname, g, "compact-diam2", [&] {
        return std::make_unique<schemes::CompactDiam2Scheme>(
            g, schemes::CompactDiam2Scheme::Options{});
      }));
      rows.push_back(try_scheme(fname, g, "landmark", [&] {
        schemes::LandmarkScheme::Options opt;
        opt.seed = scheme_seed;
        return std::make_unique<schemes::LandmarkScheme>(g, opt);
      }));
      rows.push_back(try_scheme(fname, g, "tz", [&] {
        schemes::TzScheme::Options opt;
        opt.seed = scheme_seed;
        return std::make_unique<schemes::TzScheme>(g, opt);
      }));
      rows.push_back(try_scheme(fname, g, "full-table", [&] {
        return std::make_unique<schemes::FullTableScheme>(
            schemes::FullTableScheme::standard(g));
      }));

      for (std::size_t k = rows.size() - 4; k < rows.size(); ++k) {
        const Row& row = rows[k];
        if (row.applies) {
          all_ok = all_ok && row.delivered && row.within_bound;
          if (row.scheme == "tz" && family.kind ==
              graph::TopologyFamily::Kind::kPowerLaw &&
              n == cfg.sizes.back()) {
            tz_power_law_avg_stretch = row.avg_stretch;
          }
        }
        std::cerr << fname << " n=" << row.n << " " << row.scheme << ": "
                  << (row.applies
                          ? "bits=" + std::to_string(row.total_bits) +
                                " max_stretch=" +
                                std::to_string(row.max_stretch) +
                                " avg_stretch=" +
                                std::to_string(row.avg_stretch)
                          : std::string("inapplicable"))
                  << "\n";
      }
    }
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("optrt.bench_related_work.v1");
  w.key("seed").value(cfg.seed);
  w.key("sizes").begin_array();
  for (std::size_t n : cfg.sizes) w.value(static_cast<std::uint64_t>(n));
  w.end_array();
  w.key("stretch_bound").value(kStretchBound);
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("family").value(row.family);
    w.key("n").value(static_cast<std::uint64_t>(row.n));
    w.key("scheme").value(row.scheme);
    w.key("applies").value(row.applies);
    if (row.applies) {
      w.key("total_bits").value(static_cast<std::uint64_t>(row.total_bits));
      w.key("function_bits")
          .value(static_cast<std::uint64_t>(row.function_bits));
      w.key("label_bits").value(static_cast<std::uint64_t>(row.label_bits));
      w.key("bits_per_node")
          .value(static_cast<double>(row.total_bits) /
                 static_cast<double>(row.n));
      w.key("delivered").value(row.delivered);
      w.key("max_stretch").value(row.max_stretch);
      w.key("avg_stretch").value(row.avg_stretch);
      w.key("within_bound").value(row.within_bound);
    }
    w.end_object();
  }
  w.end_array();
  w.key("tz_power_law_avg_stretch").value(tz_power_law_avg_stretch);
  w.key("metrics").raw(obs::metrics_json(obs::MetricsRegistry::global()));
  w.end_object();

  std::ofstream out(cfg.out_path);
  if (!out) {
    std::cerr << "cannot write " << cfg.out_path << "\n";
    return 2;
  }
  out << w.str() << "\n";
  std::cerr << "bench_related_work: wrote " << cfg.out_path
            << " (tz_power_law_avg_stretch=" << tz_power_law_avg_stretch
            << ")\n";

  if (!all_ok) {
    std::cerr << "FAIL: a scheme missed delivery or the stretch bound\n";
    return 1;
  }
  return 0;
}
