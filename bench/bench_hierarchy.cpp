// The §1.2 trade-off curve at general depth: Peleg–Upfal-style k-level
// hierarchies. As k grows, per-node tables shrink (toward Õ(n^{1/k}-sized
// top tables plus vicinities) while stretch and label length grow — the
// family of points the paper's Table 1 extremes (k = 1: this paper's
// Θ(n²); k large: near-linear) interpolate between.
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  optrt::core::apply_threads_flag(argc, argv);
  using namespace optrt;

  std::cout << "== Hierarchy depth sweep (Peleg–Upfal regime) ==\n\n";

  core::TextTable table({"graph", "n", "k", "function bits", "label bits",
                         "max/port-node bits", "max stretch", "mean stretch"});

  auto run = [&table](const char* family, const graph::Graph& g,
                      std::size_t k) {
    schemes::HierarchicalOptions opt;
    opt.levels = k;
    const schemes::HierarchicalScheme scheme(g, opt);
    const auto result = model::verify_scheme(g, scheme);
    if (!result.ok()) {
      std::cerr << "hierarchical failed on " << family << " k=" << k << "\n";
      std::exit(1);
    }
    const auto space = scheme.space();
    table.add_row({family, std::to_string(g.node_count()), std::to_string(k),
                   std::to_string(space.total_function_bits()),
                   std::to_string(space.label_bits),
                   std::to_string(space.max_node_bits()),
                   core::TextTable::num(result.max_stretch, 2),
                   core::TextTable::num(result.mean_stretch, 3)});
  };

  const graph::Graph sparse = graph::grid(14, 14);
  for (std::size_t k : {2u, 3u, 4u, 5u}) run("grid 14x14", sparse, k);
  table.add_rule();

  graph::Rng rng(1201);
  const graph::Graph gnp = graph::random_gnp(196, 0.05, rng);
  if (graph::is_connected(gnp)) {
    for (std::size_t k : {2u, 3u, 4u}) run("G(n,0.05)", gnp, k);
    table.add_rule();
  }

  graph::Rng rng2(1202);
  const graph::Graph dense = core::certified_random_graph(128, rng2);
  for (std::size_t k : {2u, 3u}) run("G(n,1/2)", dense, k);

  table.print(std::cout);

  std::cout
      << "\nShape check: on sparse graphs function bits fall monotonically "
         "with k while\nstretch rises — the [9]-style trade-off. On dense "
         "diameter-2 graphs vicinities\nstay large and the hierarchy buys "
         "little: the regime where this paper's\nΘ(n²) bound (Theorems 1/6) "
         "is the whole story.\n";
  return 0;
}
