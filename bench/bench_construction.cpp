// Construction-cost sweep: the three CONGEST protocols of
// net/construction.cpp across TopologyFamily specs — the axis the source
// paper ignores (it assumes a central strategy writes every table) and
// Elkin-Neiman open up: how many rounds, messages, and bits does it take
// to assemble the tables in-network?
//
// Per (family, n, protocol) row the runtime's measured counters are put
// next to their analytic predictions: compact message bits against the
// exact Σ d(v)²·⌈log₂ n⌉ form, TZ accepted-attempt flood rounds against
// the max-landmark-eccentricity + 1 bound and announce/register rounds
// against the handoff radius max_v d(v, A), full-table rounds against
// diameter + 2. Every produced scheme is certified (verify_scheme for the
// stretch-1 protocols, verify_scheme_stretch bound 3 for TZ) before its
// row is emitted, and the whole JSON is bit-identical at any --threads.
//
// Emits BENCH_construction.json (schema optrt.bench_construction.v1):
//
//   {"schema":"optrt.bench_construction.v1","seed":…,"sizes":[…],
//    "rows":[{"family":…, "n":…, "protocol":"compact|tz|full-table",
//             "applies":true, "status":"ok", "rounds":…, "messages":…,
//             "message_bits":…, "dropped":0, "table_bits":…,
//             "rounds_bound":…, "bits_predicted":…, "verified":true,
//             … per-protocol extras …}, …],
//    "metrics":{…}}
//
//   bench_construction [--seed 1996] [--smoke] [--threads N]
//                      [-o BENCH_construction.json]
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/optrt.hpp"
#include "net/congest.hpp"
#include "net/construction.hpp"

namespace {

using namespace optrt;
using graph::NodeId;

struct Config {
  std::uint64_t seed = 1996;  // PODC'96
  std::vector<std::size_t> sizes = {64, 128, 256};
  std::string out_path = "BENCH_construction.json";
};

struct Row {
  std::string family;
  std::size_t n = 0;
  std::string protocol;
  bool applies = false;
  std::string status = "inapplicable";
  std::size_t rounds = 0;
  std::size_t messages = 0;
  std::uint64_t message_bits = 0;
  std::size_t dropped = 0;
  std::uint64_t table_bits = 0;
  std::size_t rounds_bound = 0;
  std::uint64_t bits_predicted = 0;
  bool verified = false;
  // TZ extras (zero elsewhere).
  std::size_t landmarks = 0;
  std::size_t flood_rounds = 0;
  std::size_t handoff_radius = 0;
};

std::uint64_t bits_of(const std::vector<bitio::BitVector>& tables) {
  std::uint64_t total = 0;
  for (const auto& t : tables) total += t.size();
  return total;
}

Row run_compact(const std::string& family, const graph::Graph& g) {
  Row row{family, g.node_count(), "compact"};
  try {
    const auto built = net::distributed_compact_construction(g);
    row.applies = true;
    row.status = to_string(built.status);
    row.rounds = built.rounds;
    row.messages = built.messages;
    row.message_bits = built.message_bits;
    row.dropped = built.dropped;
    row.table_bits = bits_of(built.node_tables);
    row.rounds_bound = 1;
    const unsigned id_width = bitio::ceil_log2(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      row.bits_predicted +=
          std::uint64_t{g.degree(v)} * g.degree(v) * id_width;
    }
    const schemes::CompactDiam2Scheme scheme(
        g, {}, std::vector<bitio::BitVector>(built.node_tables));
    const auto verdict = model::verify_scheme(g, scheme);
    row.verified = verdict.ok() && verdict.max_stretch == 1.0;
  } catch (const schemes::SchemeInapplicable&) {
  }
  return row;
}

Row run_tz(const std::string& family, const graph::Graph& g,
           std::uint64_t seed) {
  Row row{family, g.node_count(), "tz"};
  try {
    schemes::TzOptions opt;
    opt.seed = seed;
    const auto built = net::distributed_tz_construction(g, opt);
    row.applies = true;
    row.status = to_string(built.status);
    if (built.status != net::ConstructStatus::kOk) return row;
    row.rounds = built.rounds;
    row.messages = built.messages;
    row.message_bits = built.message_bits;
    row.dropped = built.dropped;
    row.landmarks = built.landmark_count;
    row.flood_rounds = built.flood_rounds;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      row.table_bits += built.scheme->function_bits(u).size();
    }
    const auto dist = graph::DistanceCache::global().get(g);
    std::size_t max_ecc = 0;
    std::vector<std::uint32_t> dva(g.node_count(), graph::kUnreachable);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (const NodeId l : built.scheme->landmarks()) {
        max_ecc = std::max<std::size_t>(max_ecc, dist->at(l, v));
        dva[v] = std::min(dva[v], dist->at(l, v));
      }
      row.handoff_radius = std::max<std::size_t>(row.handoff_radius, dva[v]);
    }
    row.rounds_bound = max_ecc + 1;  // accepted-attempt flood bound
    row.verified = built.flood_rounds <= row.rounds_bound &&
                   built.announce_rounds <= row.handoff_radius &&
                   built.register_rounds <= row.handoff_radius &&
                   model::verify_scheme_stretch(g, *built.scheme, 3.0).ok();
  } catch (const schemes::SchemeInapplicable&) {
  }
  return row;
}

Row run_full_table(const std::string& family, const graph::Graph& g) {
  Row row{family, g.node_count(), "full-table"};
  const auto built = net::distributed_full_table_construction(g);
  row.applies = true;
  row.status = to_string(built.status);
  if (built.status != net::ConstructStatus::kOk) return row;
  row.rounds = built.rounds;
  row.messages = built.messages;
  row.message_bits = built.message_bits;
  row.dropped = built.dropped;
  row.table_bits = bits_of(built.node_tables);
  const auto dist = graph::DistanceCache::global().get(g);
  row.rounds_bound = dist->diameter() + 2;  // flood + drain + audit
  row.bits_predicted = std::uint64_t{g.node_count()} * 2 * g.edge_count() *
                       bitio::ceil_log2(g.node_count());
  const schemes::FullTableScheme scheme(
      g, graph::PortAssignment::sorted(g),
      graph::Labeling::identity(g.node_count()), model::kIAalpha,
      std::vector<bitio::BitVector>(built.node_tables));
  const auto verdict = model::verify_scheme(g, scheme);
  row.verified = row.rounds <= row.rounds_bound && verdict.ok() &&
                 verdict.max_stretch == 1.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  core::apply_threads_flag(argc, argv);
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (++i >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[i];
    };
    if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--smoke") {
      // CI mode: small sizes — checks protocol wiring, the analytic
      // bounds, and the JSON schema, not asymptotics.
      cfg.sizes = {24, 48};
    } else if (a == "-o" || a == "--output") {
      cfg.out_path = next();
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return 2;
    }
  }

  const std::vector<graph::TopologyFamily> families = {
      graph::TopologyFamily::uniform(),
      graph::TopologyFamily::power_law(2),
      graph::TopologyFamily::grid(),
      graph::TopologyFamily::ring(),
  };

  std::vector<Row> rows;
  bool all_ok = true;
  for (const auto& family : families) {
    const std::string fname = family.name();
    for (std::size_t idx = 0; idx < cfg.sizes.size(); ++idx) {
      const std::size_t n = cfg.sizes[idx];
      const graph::Graph g = family.make(n, core::point_seed(cfg.seed, idx, 1));
      if (!graph::is_connected(g)) continue;  // protocol preconditions

      rows.push_back(run_compact(fname, g));
      rows.push_back(run_tz(fname, g, core::point_seed(cfg.seed, idx, 2)));
      // The oracle protocol's traffic is Θ(n·|E|); keep it to sizes where
      // the full differential already certifies it.
      if (n <= 128) rows.push_back(run_full_table(fname, g));

      for (std::size_t k = rows.size() - (n <= 128 ? 3 : 2); k < rows.size();
           ++k) {
        const Row& row = rows[k];
        if (row.applies) all_ok = all_ok && row.verified;
        std::cerr << fname << " n=" << row.n << " " << row.protocol << ": "
                  << (row.applies
                          ? row.status + " rounds=" +
                                std::to_string(row.rounds) + " messages=" +
                                std::to_string(row.messages) + " bits=" +
                                std::to_string(row.message_bits) +
                                (row.verified ? " verified" : " UNVERIFIED")
                          : std::string("inapplicable"))
                  << "\n";
      }
    }
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("optrt.bench_construction.v1");
  w.key("seed").value(cfg.seed);
  w.key("sizes").begin_array();
  for (std::size_t n : cfg.sizes) w.value(static_cast<std::uint64_t>(n));
  w.end_array();
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("family").value(row.family);
    w.key("n").value(static_cast<std::uint64_t>(row.n));
    w.key("protocol").value(row.protocol);
    w.key("applies").value(row.applies);
    if (row.applies) {
      w.key("status").value(row.status);
      w.key("rounds").value(static_cast<std::uint64_t>(row.rounds));
      w.key("messages").value(static_cast<std::uint64_t>(row.messages));
      w.key("message_bits").value(row.message_bits);
      w.key("dropped").value(static_cast<std::uint64_t>(row.dropped));
      w.key("table_bits").value(row.table_bits);
      w.key("rounds_bound").value(static_cast<std::uint64_t>(row.rounds_bound));
      if (row.bits_predicted > 0) {
        w.key("bits_predicted").value(row.bits_predicted);
      }
      if (row.protocol == "tz") {
        w.key("landmarks").value(static_cast<std::uint64_t>(row.landmarks));
        w.key("flood_rounds")
            .value(static_cast<std::uint64_t>(row.flood_rounds));
        w.key("handoff_radius")
            .value(static_cast<std::uint64_t>(row.handoff_radius));
      }
      w.key("verified").value(row.verified);
    }
    w.end_object();
  }
  w.end_array();
  w.key("metrics").raw(obs::metrics_json(obs::MetricsRegistry::global()));
  w.end_object();

  std::ofstream out(cfg.out_path);
  if (!out) {
    std::cerr << "cannot write " << cfg.out_path << "\n";
    return 2;
  }
  out << w.str() << "\n";
  std::cerr << "bench_construction: wrote " << cfg.out_path << "\n";

  if (!all_ok) {
    std::cerr << "FAIL: a construction missed verification or its bound\n";
    return 1;
  }
  return 0;
}
