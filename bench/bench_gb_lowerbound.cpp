// Reproduces Figure 1 / Theorem 9: the explicit worst-case family G_B.
// For each k we plant a random top-row permutation, compile a stretch-<2
// scheme (the full table), recover the permutation from a bottom node's
// routing function, and compare the counting bound log₂ k! with the
// measured table size at that node.
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "core/optrt.hpp"

int main() {
  using namespace optrt;

  std::cout << "== Theorem 9 / Figure 1: G_B worst-case lower bound ==\n\n";

  core::TextTable table({"k", "n=3k", "log2(k!) bound", "measured bits@bottom",
                         "paper (n/3)log n", "recovery"});

  for (std::size_t k : {8u, 16u, 32u, 64u, 128u}) {
    graph::Rng rng(k);
    std::vector<graph::NodeId> perm(k);
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);

    const graph::Graph g = graph::lower_bound_gb_permuted(k, perm);
    const schemes::FullTableScheme scheme =
        schemes::FullTableScheme::standard(g);

    const auto recovered = incompress::recover_top_permutation(scheme, k, 0);
    const bool ok = recovered == perm;

    const double bound = incompress::log2_factorial(k);
    const double measured =
        static_cast<double>(scheme.space().function_bits[0]);

    table.add_row({std::to_string(k), std::to_string(3 * k),
                   core::TextTable::num(bound, 0),
                   core::TextTable::num(measured, 0),
                   core::TextTable::num(
                       incompress::theorem9_per_node_bound(3 * k), 0),
                   ok ? "exact" : "FAILED"});
    if (!ok) return 1;
  }
  table.print(std::cout);

  std::cout
      << "\nShape check: measured bits at every bottom node dominate "
         "log₂ k! = k log k − O(k),\nthe Theorem 9 floor; total over k "
         "bottom nodes is Ω((n²/9) log n). The recovery\ncolumn certifies "
         "the injection routing-function → permutation the proof counts.\n";
  return 0;
}
