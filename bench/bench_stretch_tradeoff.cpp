// Reproduces the stretch/space trade-off of Theorems 3, 4 and 5 (and
// Corollary 1 items 3–5): measured total bits and measured stretch against
// each theorem's bound, over a sweep of n.
#include <iostream>
#include <vector>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  optrt::core::apply_threads_flag(argc, argv);
  using namespace optrt;
  const std::vector<std::size_t> ns = {64, 128, 256};

  std::cout << "== Theorems 3-5: stretch versus space ==\n\n";

  core::TextTable table({"theorem", "n", "total bits", "paper bound",
                         "max stretch", "stretch bound", "mean stretch"});

  for (std::size_t n : ns) {
    graph::Rng rng(n + 23);
    const graph::Graph g = core::certified_random_graph(n, rng);

    {
      const schemes::RoutingCenterScheme scheme(g);
      const auto result = model::verify_scheme(g, scheme);
      if (!result.ok() || result.max_stretch > 1.5) return 1;
      table.add_row({"Thm 3 (s<2)", std::to_string(n),
                     std::to_string(scheme.space().total_bits()),
                     core::TextTable::num(incompress::theorem3_total_bound(n), 0),
                     core::TextTable::num(result.max_stretch, 2), "1.50",
                     core::TextTable::num(result.mean_stretch, 3)});
    }
    {
      const schemes::HubScheme scheme(g);
      const auto result = model::verify_scheme(g, scheme);
      if (!result.ok() || result.max_stretch > 2.0) return 1;
      table.add_row({"Thm 4 (s=2)", std::to_string(n),
                     std::to_string(scheme.space().total_bits()),
                     core::TextTable::num(incompress::theorem4_total_bound(n), 0),
                     core::TextTable::num(result.max_stretch, 2), "2.00",
                     core::TextTable::num(result.mean_stretch, 3)});
    }
    {
      const schemes::SequentialSearchScheme scheme(g);
      const auto result = model::verify_scheme(g, scheme);
      const double sbound = incompress::theorem5_stretch_bound(n) / 2.0;
      if (!result.ok() || result.max_stretch > sbound) return 1;
      table.add_row({"Thm 5 (s=O(logn))", std::to_string(n), "0",
                     core::TextTable::num(static_cast<double>(n), 0),
                     core::TextTable::num(result.max_stretch, 2),
                     core::TextTable::num(sbound, 2),
                     core::TextTable::num(result.mean_stretch, 3)});
    }
    table.add_rule();
  }
  table.print(std::cout);

  std::cout << "\nShape check (Corollary 1, items 3-5): O(n log n) for "
               "1<s<2, O(n loglog n)\nfor s=2, O(n) for s=O(log n) — space "
               "falls monotonically as stretch relaxes,\nand every measured "
               "stretch respects its bound (1.5 is the only possible value\n"
               "strictly between 1 and 2 on diameter-2 graphs).\n";
  return 0;
}
