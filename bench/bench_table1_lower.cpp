// Reproduces Table 1's *lower bound* rows by running the incompressibility
// codecs (Theorems 6, 7, 8) on certified G(n, 1/2):
//
//   II∧α    Ω(n²)        — Theorem 6: per-node implied bound ≈ n/2
//   IA ∨ IB Ω(n²)        — Theorem 7 / Claim 3: interconnection floor
//   IA∧α    Ω(n² log n)  — Theorem 8: port-permutation content log₂(d!)
//
// Each row shows the paper's per-node bound next to the measured implied
// bound (what any routing function must store, given the proof's exact
// description scheme, if E(G) is incompressible).
#include <cmath>
#include <iostream>
#include <vector>

#include "core/optrt.hpp"

int main() {
  using namespace optrt;
  const std::vector<std::size_t> ns = {64, 128, 256};

  std::cout << "== Table 1 (lower bounds): implied per-node routing-function "
               "bits ==\n\n";

  core::TextTable table({"theorem", "model", "n", "paper/node",
                         "implied/node (measured)", "check"});

  for (std::size_t n : ns) {
    graph::Rng rng(n * 17 + 1);
    const graph::Graph g = core::certified_random_graph(n, rng);

    // Theorem 6 (II∧α): savings from F(u) over 8 sample nodes.
    {
      double implied = 0;
      const int samples = 8;
      for (graph::NodeId u = 0; u < samples; ++u) {
        const auto r = incompress::theorem6_encode(g, u);
        implied += static_cast<double>(r.implied_function_lower_bound());
        // Exactness is non-negotiable: the decoder must reproduce G.
        if (!(incompress::theorem6_decode(r.description.bits, n) == g)) {
          std::cerr << "theorem6 round-trip FAILED\n";
          return 1;
        }
      }
      implied /= samples;
      table.add_row({"Thm 6", "II.alpha", std::to_string(n),
                     core::TextTable::num(incompress::theorem6_per_node_bound(n), 0),
                     core::TextTable::num(implied, 0),
                     "round-trip ok"});
    }

    // Theorem 7 (IA ∨ IB): Claim 3 — the interconnection pattern costs
    // n−1 bits but only claim3 rank-bits are recoverable without F(u):
    // the floor is the difference.
    {
      const auto scheme = schemes::FullTableScheme::standard(g);
      double floor = 0;
      const int samples = 8;
      for (graph::NodeId u = 0; u < samples; ++u) {
        const auto enc = incompress::claim3_encode(scheme, u);
        floor += static_cast<double>(n - 1) -
                 static_cast<double>(enc.bits.size());
        const auto decoded = incompress::claim3_decode(scheme, u, enc.bits);
        for (graph::PortId p = 0; p < decoded.size(); ++p) {
          if (decoded[p] != scheme.ports().neighbor_at(u, p)) {
            std::cerr << "claim3 reconstruction FAILED\n";
            return 1;
          }
        }
      }
      floor /= samples;
      table.add_row({"Thm 7", "IA or IB", std::to_string(n),
                     core::TextTable::num(static_cast<double>(n) / 2.0, 0),
                     core::TextTable::num(floor, 0), "claim3 ok"});
    }

    // Theorem 8 (IA∧α): the routing function pins down the adversarial
    // port permutation: log₂(d(u)!) bits of content per node.
    {
      graph::Rng prng(n);
      const schemes::FullTableScheme adversarial(
          g, graph::PortAssignment::random(g, prng),
          graph::Labeling::identity(n), model::kIAalpha);
      double content = 0;
      const int samples = 8;
      for (graph::NodeId u = 0; u < samples; ++u) {
        const auto nbrs = g.neighbors(u);
        const auto recovered = incompress::recover_port_permutation(
            adversarial, u, {nbrs.begin(), nbrs.end()});
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (recovered[i] != adversarial.ports().port_of(u, nbrs[i])) {
            std::cerr << "theorem8 permutation recovery FAILED\n";
            return 1;
          }
        }
        content += incompress::log2_factorial(g.degree(u));
      }
      content /= samples;
      table.add_row(
          {"Thm 8", "IA.alpha", std::to_string(n),
           core::TextTable::num(incompress::theorem8_per_node_bound(n), 0),
           core::TextTable::num(content, 0), "perm recovered"});
      // The counting bound is achievable: the permutation part stores in
      // exactly ⌈log₂ d!⌉ bits via the Lehmer code.
      double optimal = 0;
      for (graph::NodeId u = 0; u < 8; ++u) {
        optimal += static_cast<double>(
            incompress::permutation_code_bits(g.degree(u)));
      }
      table.add_row({"Thm 8*", "IA.alpha", std::to_string(n),
                     core::TextTable::num(incompress::theorem8_per_node_bound(n), 0),
                     core::TextTable::num(optimal / 8, 0),
                     "Lehmer-coded (tight)"});
    }
    table.add_rule();
  }
  table.print(std::cout);

  std::cout << "\nShape check: Thm 6/7 implied bounds grow linearly "
               "(Ω(n²) total over n nodes);\nThm 8 content grows like "
               "(n/2)·log(n/2) (Ω(n² log n) total).\n";
  return 0;
}
