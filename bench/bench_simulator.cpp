// Timing benchmarks (google-benchmark): scheme construction, per-hop
// routing-function evaluation, and simulator event throughput — the
// operational costs behind the space bounds.
#include <benchmark/benchmark.h>

#include <map>

#include "core/optrt.hpp"

namespace {

using namespace optrt;

const graph::Graph& shared_graph(std::size_t n) {
  static std::map<std::size_t, graph::Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    graph::Rng rng(n + 1);
    it = cache.emplace(n, core::certified_random_graph(n, rng)).first;
  }
  return it->second;
}

void BM_BuildCompactScheme(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    schemes::CompactDiam2Scheme scheme(g, {});
    benchmark::DoNotOptimize(scheme.space().total_bits());
  }
}
BENCHMARK(BM_BuildCompactScheme)->Arg(64)->Arg(128)->Arg(256);

void BM_BuildFullTable(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto scheme = schemes::FullTableScheme::standard(g);
    benchmark::DoNotOptimize(scheme.space().total_bits());
  }
}
BENCHMARK(BM_BuildFullTable)->Arg(64)->Arg(128);

void BM_NextHopCompact(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  const schemes::CompactDiam2Scheme scheme(g, {});
  model::MessageHeader h;
  graph::NodeId v = 1;
  for (auto _ : state) {
    v = v + 1 < g.node_count() ? v + 1 : 1;
    benchmark::DoNotOptimize(scheme.next_hop(0, v, h));
  }
}
BENCHMARK(BM_NextHopCompact)->Arg(128)->Arg(256);

void BM_NextHopFullTable(benchmark::State& state) {
  const auto& g = shared_graph(static_cast<std::size_t>(state.range(0)));
  const auto scheme = schemes::FullTableScheme::standard(g);
  model::MessageHeader h;
  graph::NodeId v = 1;
  for (auto _ : state) {
    v = v + 1 < g.node_count() ? v + 1 : 1;
    benchmark::DoNotOptimize(scheme.next_hop(0, v, h));
  }
}
BENCHMARK(BM_NextHopFullTable)->Arg(128)->Arg(256);

void BM_SimulatorAllPairs(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& g = shared_graph(n);
  const schemes::CompactDiam2Scheme scheme(g, {});
  // Aggregate through the instrumentation the simulator already records
  // instead of a hand-rolled tally: the delta of the registry's counters
  // across the timed loop is exactly the benchmark's work.
  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t hops_before = reg.counter_value("sim.hops");
  const std::uint64_t delivered_before = reg.counter_value("sim.delivered");
  for (auto _ : state) {
    net::Simulator sim(g, scheme);
    for (const auto& [u, v] : net::all_pairs(n)) sim.send(u, v);
    const auto stats = sim.run();
    if (stats.dropped != 0) state.SkipWithError("dropped messages");
    benchmark::DoNotOptimize(stats.total_hops);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * (n - 1)));
  state.counters["hops"] = static_cast<double>(
      reg.counter_value("sim.hops") - hops_before);
  state.counters["delivered"] = static_cast<double>(
      reg.counter_value("sim.delivered") - delivered_before);
}
BENCHMARK(BM_SimulatorAllPairs)->Arg(64)->Arg(128);

void BM_VerifyScheme(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& g = shared_graph(n);
  const schemes::CompactDiam2Scheme scheme(g, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::verify_scheme(g, scheme).max_stretch);
  }
}
BENCHMARK(BM_VerifyScheme)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
