// Reproduces Theorem 1's bound with its design ablations: per-node bits of
// the compact scheme versus the 6n (model II) and 7n (model IB) bounds,
// under (a) the paper's least-neighbour cover vs greedy max-coverage, and
// (b) the n/loglog n vs n/log n second-table threshold (the refinement the
// paper notes brings 6n to ≈ 3n).
#include <iostream>
#include <vector>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  optrt::core::apply_threads_flag(argc, argv);
  using namespace optrt;
  const std::vector<std::size_t> ns = {64, 128, 256, 512};

  std::cout << "== Theorem 1: compact shortest-path tables, bits per node "
               "==\n\n";

  struct Variant {
    const char* name;
    bool neighbors_known;
    bool greedy;
    bool threshold_log;
  };
  const Variant variants[] = {
      {"II, least cover, n/loglogn (paper)", true, false, false},
      {"II, least cover, n/logn (refined)", true, false, true},
      {"II, greedy cover, n/loglogn (ablation)", true, true, false},
      {"IB, least cover, n/loglogn (paper)", false, false, false},
  };

  core::TextTable table({"variant", "n", "mean bits/node", "max bits/node",
                         "bound/node", "max/bound"});
  for (const Variant& v : variants) {
    for (std::size_t n : ns) {
      graph::Rng rng(n * 3 + 5);
      const graph::Graph g = core::certified_random_graph(n, rng);
      schemes::CompactDiam2Scheme::Options opt;
      opt.neighbors_known = v.neighbors_known;
      opt.node.greedy_cover = v.greedy;
      opt.node.threshold_log = v.threshold_log;
      const schemes::CompactDiam2Scheme scheme(g, opt);
      const auto space = scheme.space();
      const double bound = incompress::theorem1_per_node_bound(
          n, v.neighbors_known);
      const double mean = static_cast<double>(space.total_bits()) /
                          static_cast<double>(n);
      table.add_row(
          {v.name, std::to_string(n), core::TextTable::num(mean, 1),
           std::to_string(space.max_node_bits()),
           core::TextTable::num(bound, 0),
           core::TextTable::num(
               static_cast<double>(space.max_node_bits()) / bound, 3)});
    }
    table.add_rule();
  }
  table.print(std::cout);

  std::cout << "\nShape check: every variant stays below its 6n/7n bound "
               "(max/bound < 1);\nbits per node grow linearly in n "
               "(constant bits-per-node ratio across the sweep\nafter "
               "dividing by n). The refined threshold and greedy cover "
               "shave constants,\nmatching the paper's ≤ 3n remark.\n";
  return 0;
}
