// Churn-repair cost sweep (ROADMAP item 5a): incremental table repair vs
// rebuild-from-scratch across topology families, under the same seeded
// churn plan, with the differential oracle certifying every quiesce
// point. The question the source paper's static model never asks — what
// does it cost to *keep* the tables optimal while the network changes —
// answered in deterministic work units (tables rebuilt + distance rows
// refreshed), never wall-clock, so every row is bit-identical across
// reruns and --threads values.
//
// Emits BENCH_churn.json (schema optrt.bench_churn.v1):
//
//   {"schema":"optrt.bench_churn.v1","seed":…,"churn":"uniform:E,G,Q",
//    "rows":[{"family":…, "n":…, "scheme":…, "mode":"incremental|rebuild",
//             "status":"certified|stale", "events":…, "deltas":…,
//             "plan_fingerprint":…, "quiesce_points":…,
//             "quiesce_mismatches":0, "work":…, "tables_touched":…,
//             "dist_rows_bfs":…, "dist_rows_patched":…, "patched":…,
//             "rebuilt":…, "noops":…, "stale_sent":…,
//             … simulator stats block …}, …],
//    "metrics":{…}}
//
// Exit 1 if any quiesce check diverged, or if incremental repair failed
// to beat the rebuild baseline on total work for at least one family.
//
//   bench_churn [--seed 1996] [--smoke] [--threads N] [-o BENCH_churn.json]
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/optrt.hpp"
#include "net/churn.hpp"
#include "schemes/repair.hpp"

namespace {

using namespace optrt;

struct Config {
  std::uint64_t seed = 1996;  // PODC'96
  bool smoke = false;
  std::string out_path = "BENCH_churn.json";
};

struct Cell {
  std::string family;
  std::size_t n = 0;
  const char* kind = "";
  bool force_rebuild = false;
};

struct Row {
  Cell cell;
  net::ChurnReport report;
  std::uint64_t plan_fingerprint = 0;
};

/// First seed ≥ base whose family member is connected (deterministic).
graph::Graph connected_member(const graph::TopologyFamily& family,
                              std::size_t n, std::uint64_t base) {
  for (std::uint64_t seed = base;; ++seed) {
    graph::Graph g = family.make(n, seed);
    if (graph::is_connected(g)) return g;
  }
}

Row run_cell(const Cell& cell, const net::ChurnOptions& copt,
             std::uint64_t seed, std::size_t messages) {
  const graph::Graph g = connected_member(
      graph::TopologyFamily::parse(cell.family), cell.n, seed);
  const net::ChurnPlan plan = net::make_churn_plan(g, copt);

  auto rs = schemes::make_repairable(cell.kind, g, seed,
                                     {.force_rebuild = cell.force_rebuild});
  net::ChurnSessionConfig cfg;
  cfg.messages = messages;
  cfg.traffic_seed = seed;
  Row row{cell, net::run_churn_session(*rs, plan, cfg), plan.fingerprint()};
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = core::apply_threads_flag(argc, argv);
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (++i >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[i];
    };
    if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--smoke") {
      cfg.smoke = true;  // CI mode: small graphs, short streams
    } else if (a == "-o" || a == "--output") {
      cfg.out_path = next();
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return 2;
    }
  }

  // compact-diam2 only exists on the dense family; full-table and TZ run
  // on every family.
  struct FamilySpec {
    const char* family;
    std::size_t n;
    std::size_t smoke_n;
    std::vector<const char*> kinds;
  };
  const std::vector<FamilySpec> specs = {
      {"uniform", 96, 24, {"full-table", "compact-diam2", "tz"}},
      {"ba:2", 96, 24, {"full-table", "tz"}},
      {"grid", 64, 16, {"full-table", "tz"}},
      {"ring", 48, 12, {"full-table", "tz"}},
  };

  net::ChurnOptions copt;
  copt.seed = cfg.seed;
  copt.events = cfg.smoke ? 12 : 48;
  copt.mean_gap = 3;
  copt.quiesce_every = cfg.smoke ? 4 : 8;
  const std::size_t messages = cfg.smoke ? 32 : 256;

  std::vector<Cell> cells;
  for (const FamilySpec& spec : specs) {
    for (const char* kind : spec.kinds) {
      for (const bool force : {false, true}) {
        cells.push_back(
            {spec.family, cfg.smoke ? spec.smoke_n : spec.n, kind, force});
      }
    }
  }

  const std::vector<Row> rows =
      core::parallel_map<Row>(threads, cells.size(), [&](std::size_t idx) {
        return run_cell(cells[idx], copt, cfg.seed, messages);
      });

  bool mismatch = false;
  // (family, kind) → work in {incremental, rebuild} mode.
  std::map<std::pair<std::string, std::string>,
           std::pair<std::uint64_t, std::uint64_t>>
      work;
  for (const Row& row : rows) {
    mismatch = mismatch || row.report.quiesce_mismatches > 0;
    auto& w = work[{row.cell.family, row.cell.kind}];
    (row.cell.force_rebuild ? w.second : w.first) = row.report.repair.work();
    std::cerr << row.cell.family << " n=" << row.cell.n << " "
              << row.cell.kind
              << (row.cell.force_rebuild ? " rebuild" : " incremental")
              << ": status=" << net::to_string(row.report.status)
              << " work=" << row.report.repair.work()
              << " patched=" << row.report.repair.patched
              << " rebuilt=" << row.report.repair.rebuilt
              << " stale_sent=" << row.report.stale_sent << "\n";
  }

  std::size_t incremental_wins = 0;
  for (const auto& [key, w] : work) {
    if (w.first < w.second) ++incremental_wins;
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("optrt.bench_churn.v1");
  w.key("seed").value(cfg.seed);
  w.key("churn").value(copt.name());
  w.key("messages").value(static_cast<std::uint64_t>(messages));
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    const net::ChurnReport& r = row.report;
    w.begin_object();
    w.key("family").value(row.cell.family);
    w.key("n").value(static_cast<std::uint64_t>(row.cell.n));
    w.key("scheme").value(row.cell.kind);
    w.key("mode").value(row.cell.force_rebuild ? "rebuild" : "incremental");
    w.key("status").value(net::to_string(r.status));
    w.key("events").value(static_cast<std::uint64_t>(r.events_applied));
    w.key("deltas").value(static_cast<std::uint64_t>(r.deltas_applied));
    w.key("plan_fingerprint").value(row.plan_fingerprint);
    w.key("quiesce_points").value(static_cast<std::uint64_t>(r.quiesce_points));
    w.key("quiesce_mismatches")
        .value(static_cast<std::uint64_t>(r.quiesce_mismatches));
    w.key("work").value(r.repair.work());
    w.key("tables_touched").value(r.repair.tables_touched);
    w.key("dist_rows_bfs").value(r.repair.dist_rows_bfs);
    w.key("dist_rows_patched").value(r.repair.dist_rows_patched);
    w.key("patched").value(r.repair.patched);
    w.key("rebuilt").value(r.repair.rebuilt);
    w.key("noops").value(r.repair.noops);
    w.key("stale_sent").value(static_cast<std::uint64_t>(r.stale_sent));
    net::write_stats_fields(w, r.traffic);
    w.end_object();
  }
  w.end_array();
  w.key("metrics").raw(obs::metrics_json(obs::MetricsRegistry::global()));
  w.end_object();

  std::ofstream out(cfg.out_path);
  if (!out) {
    std::cerr << "cannot write " << cfg.out_path << "\n";
    return 2;
  }
  out << w.str() << "\n";
  std::cerr << "bench_churn: wrote " << cfg.out_path << " (" << rows.size()
            << " rows, threads=" << threads << ")\n";

  if (mismatch) {
    std::cerr << "FAIL: a quiesce check diverged from the fresh build\n";
    return 1;
  }
  if (incremental_wins == 0) {
    std::cerr << "FAIL: incremental repair never beat the rebuild baseline\n";
    return 1;
  }
  std::cerr << "bench_churn: incremental repair beats full rebuild on "
            << incremental_wins << "/" << work.size()
            << " (family, scheme) cells; every quiesce point certified\n";
  return 0;
}
