// Serving-throughput benchmark: a load generator for the optrtd daemon.
//
// By default it self-hosts — compiles a full-table scheme for a certified
// G(n,1/2) graph, writes the artifact + graph pair into a temp directory,
// starts an in-process serve::Server on a temp Unix socket, and hammers
// it from C client connections issuing kNextHop requests of B pairs each
// until the query target is met. Point it at an external daemon instead
// with --socket PATH or --port N (with --artifact ID).
//
// The first batch of every connection is checked against a locally
// compiled FastPath oracle, so a protocol or dispatch bug fails the run
// before any throughput number is reported. Per-request wall latency is
// recorded client-side; the report aggregates QPS (answered pairs per
// second) and p50/p99/mean/max request latency.
//
// Emits BENCH_serving.json (schema optrt.bench_serving.v1):
//
//   {"schema":"optrt.bench_serving.v1","n":…,"seed":…,"queries":…,
//    "connections":…,"batch":…,"duration_s":…,"qps":…,
//    "latency_ns":{"p50":…,"p99":…,"mean":…,"max":…},
//    "opcodes":{"ping":…,"next_hop":…},"metrics":{…}}
//
//   bench_serving [--queries 2000000] [--connections 8] [--batch 256]
//                 [--n 256] [--seed 1996] [--threads N] [--smoke]
//                 [--socket PATH | --port N [--host H]] [--artifact ID]
//                 [-o BENCH_serving.json]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/graph_io.hpp"
#include "core/optrt.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace optrt;
using Clock = std::chrono::steady_clock;

struct Config {
  std::size_t queries = 2000000;
  std::size_t connections = 8;
  std::size_t batch = 256;
  std::size_t n = 256;
  std::uint64_t seed = 1996;  // PODC'96
  std::uint32_t artifact_id = 0;
  std::string socket_path;  // external daemon (unix)
  int tcp_port = -1;        // external daemon (tcp)
  std::string tcp_host = "127.0.0.1";
  std::string out_path = "BENCH_serving.json";
};

struct WorkerResult {
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t pings = 0;
  std::uint64_t next_hop_requests = 0;
  std::uint64_t pairs_answered = 0;
  bool oracle_ok = true;
  std::string error;
};

serve::Client connect_target(const Config& cfg) {
  if (!cfg.socket_path.empty()) {
    return serve::Client::connect_unix(cfg.socket_path);
  }
  return serve::Client::connect_tcp(cfg.tcp_host, cfg.tcp_port);
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  core::apply_threads_flag(argc, argv);
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (++i >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[i];
    };
    if (a == "--queries") {
      cfg.queries = std::strtoul(next(), nullptr, 10);
    } else if (a == "--connections") {
      cfg.connections = std::strtoul(next(), nullptr, 10);
    } else if (a == "--batch") {
      cfg.batch = std::strtoul(next(), nullptr, 10);
    } else if (a == "--n") {
      cfg.n = std::strtoul(next(), nullptr, 10);
    } else if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--artifact") {
      cfg.artifact_id =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (a == "--socket") {
      cfg.socket_path = next();
    } else if (a == "--port") {
      cfg.tcp_port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (a == "--host") {
      cfg.tcp_host = next();
    } else if (a == "--smoke") {
      // CI mode: checks the harness, the oracle hold, and the JSON
      // schema, not the headline number.
      cfg.queries = 50000;
      cfg.connections = 2;
      cfg.batch = 64;
      cfg.n = 64;
    } else if (a == "-o" || a == "--output") {
      cfg.out_path = next();
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return 2;
    }
  }
  if (cfg.batch == 0 || cfg.connections == 0) {
    std::cerr << "--batch and --connections must be positive\n";
    return 2;
  }

  // The oracle graph/scheme: what the self-hosted server serves, and what
  // external answers are checked against (same seed → same artifact).
  graph::Rng rng(cfg.seed);
  const graph::Graph g = core::certified_random_graph(cfg.n, rng);
  const schemes::FullTableScheme scheme = schemes::FullTableScheme::standard(g);
  const auto oracle = scheme.compile_fast();

  const bool self_hosted = cfg.socket_path.empty() && cfg.tcp_port < 0;
  std::filesystem::path tmp_dir;
  std::unique_ptr<serve::ArtifactStore> store;
  std::unique_ptr<serve::Server> server;
  std::thread server_thread;
  if (self_hosted) {
    char tmpl[] = "/tmp/bench_serving.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::cerr << "mkdtemp failed\n";
      return 2;
    }
    tmp_dir = tmpl;
    core::save_graph((tmp_dir / "g0.eg").string(), g);
    schemes::save_artifact((tmp_dir / "g0.ort").string(),
                           schemes::serialize(scheme));
    store = std::make_unique<serve::ArtifactStore>(tmp_dir.string());
    const serve::LoadReport report = store->load();
    if (!report.ok()) {
      std::cerr << serve::format_load_failure(report.failures.front()) << "\n";
      return 2;
    }
    serve::ServerConfig sc;
    sc.unix_path = (tmp_dir / "optrtd.sock").string();
    server = std::make_unique<serve::Server>(*store, sc);
    server->bind();
    server_thread = std::thread([&] { server->run(); });
    cfg.socket_path = sc.unix_path;
    cfg.artifact_id = 0;
  }

  const std::size_t per_conn =
      (cfg.queries + cfg.connections - 1) / cfg.connections;
  std::vector<WorkerResult> results(cfg.connections);
  const auto bench_start = Clock::now();
  {
    std::vector<std::jthread> workers;
    workers.reserve(cfg.connections);
    for (std::size_t c = 0; c < cfg.connections; ++c) {
      workers.emplace_back([&, c] {
        WorkerResult& r = results[c];
        try {
          serve::Client client = connect_target(cfg);
          client.ping();
          ++r.pings;
          // Seeded per-connection workload, point_seed discipline.
          std::mt19937_64 prng(core::point_seed(cfg.seed, c, 11));
          std::uniform_int_distribution<graph::NodeId> pick(
              0, static_cast<graph::NodeId>(cfg.n - 1));
          std::vector<serve::QueryPair> pairs(cfg.batch);
          std::size_t done = 0;
          bool first = true;
          while (done < per_conn) {
            const std::size_t want = std::min(cfg.batch, per_conn - done);
            pairs.resize(want);
            for (auto& p : pairs) {
              p.src = pick(prng);
              do {
                p.dst = pick(prng);
              } while (p.dst == p.src);
            }
            const auto start = Clock::now();
            const std::vector<graph::NodeId> hops =
                client.next_hops(cfg.artifact_id, pairs);
            r.latencies_ns.push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - start)
                    .count()));
            ++r.next_hop_requests;
            r.pairs_answered += hops.size();
            if (first) {
              // Differential hold: served answers == the local oracle.
              first = false;
              std::vector<model::RoutePair> check(pairs.size());
              for (std::size_t i = 0; i < pairs.size(); ++i) {
                check[i] = {pairs[i].src, scheme.label_of(pairs[i].dst)};
              }
              std::vector<graph::NodeId> expect(pairs.size());
              oracle->route_batch(check, expect);
              r.oracle_ok = hops == expect;
            }
            done += want;
          }
        } catch (const std::exception& e) {
          r.error = e.what();
        }
      });
    }
  }
  const double duration_s =
      std::chrono::duration<double>(Clock::now() - bench_start).count();

  if (self_hosted) {
    server->stop();
    server_thread.join();
    server.reset();
    store.reset();
    std::filesystem::remove_all(tmp_dir);
  }

  std::vector<std::uint64_t> latencies;
  std::uint64_t pings = 0;
  std::uint64_t requests = 0;
  std::uint64_t pairs_answered = 0;
  bool ok = true;
  for (const WorkerResult& r : results) {
    if (!r.error.empty()) {
      std::cerr << "worker error: " << r.error << "\n";
      ok = false;
    }
    if (!r.oracle_ok) {
      std::cerr << "FAIL: served answers diverged from the local oracle\n";
      ok = false;
    }
    latencies.insert(latencies.end(), r.latencies_ns.begin(),
                     r.latencies_ns.end());
    pings += r.pings;
    requests += r.next_hop_requests;
    pairs_answered += r.pairs_answered;
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps =
      duration_s > 0 ? static_cast<double>(pairs_answered) / duration_s : 0.0;
  double mean_ns = 0.0;
  for (const std::uint64_t v : latencies) {
    mean_ns += static_cast<double>(v);
  }
  if (!latencies.empty()) mean_ns /= static_cast<double>(latencies.size());

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("optrt.bench_serving.v1");
  w.key("n").value(static_cast<std::uint64_t>(cfg.n));
  w.key("seed").value(cfg.seed);
  w.key("queries").value(pairs_answered);
  w.key("connections").value(static_cast<std::uint64_t>(cfg.connections));
  w.key("batch").value(static_cast<std::uint64_t>(cfg.batch));
  w.key("self_hosted").value(self_hosted);
  w.key("duration_s").value(duration_s);
  w.key("qps").value(qps);
  w.key("latency_ns").begin_object();
  w.key("p50").value(percentile(latencies, 0.50));
  w.key("p99").value(percentile(latencies, 0.99));
  w.key("mean").value(mean_ns);
  w.key("max").value(latencies.empty() ? 0 : latencies.back());
  w.end_object();
  w.key("opcodes").begin_object();
  w.key("ping").value(pings);
  w.key("next_hop").value(requests);
  w.end_object();
  w.key("metrics").raw(obs::metrics_json(obs::MetricsRegistry::global()));
  w.end_object();

  std::ofstream out(cfg.out_path);
  if (!out) {
    std::cerr << "cannot write " << cfg.out_path << "\n";
    return 2;
  }
  out << w.str() << "\n";
  std::cerr << "bench_serving: " << pairs_answered << " queries in "
            << duration_s << " s (" << qps << " qps, p50 "
            << percentile(latencies, 0.50) << " ns, p99 "
            << percentile(latencies, 0.99) << " ns) -> " << cfg.out_path
            << "\n";
  return ok ? 0 : 1;
}
