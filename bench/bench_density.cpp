// Sensitivity analysis (the abstract's closing point: "the sensitivity of
// such bounds to the model under consideration" — and to the graph class):
// sweep the edge density p of G(n, p) and measure where the Lemma 1–3
// structure, and with it every construction of the paper, holds.
#include <iostream>

#include "core/optrt.hpp"

int main() {
  using namespace optrt;
  const std::size_t n = 128;
  const std::size_t trials = 8;

  std::cout << "== Density sweep: where 'almost all graphs' structure lives "
               "(n=" << n << ", " << trials << " trials/p) ==\n\n";

  core::TextTable table({"p", "certified", "diam<=2", "mean compact bits",
                         "mean landmark bits", "winner"});

  for (double p : {0.05, 0.10, 0.20, 0.30, 0.50, 0.70, 0.90}) {
    std::size_t certified = 0, diam2 = 0;
    double compact_bits = 0, landmark_bits = 0;
    std::size_t compact_runs = 0, landmark_runs = 0;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      graph::Rng rng(seed * 977 + static_cast<std::uint64_t>(p * 1000));
      const graph::Graph g = graph::random_gnp(n, p, rng);
      const auto cert = graph::certify(g);
      if (cert.ok()) ++certified;
      if (cert.diameter_two) ++diam2;
      try {
        const schemes::CompactDiam2Scheme scheme(g, {});
        compact_bits += static_cast<double>(scheme.space().total_bits());
        ++compact_runs;
      } catch (const schemes::SchemeInapplicable&) {
      }
      try {
        const schemes::LandmarkScheme scheme(g);
        landmark_bits += static_cast<double>(scheme.space().total_bits());
        ++landmark_runs;
      } catch (const schemes::SchemeInapplicable&) {
      }
    }
    const double mc =
        compact_runs ? compact_bits / static_cast<double>(compact_runs) : 0;
    const double ml =
        landmark_runs ? landmark_bits / static_cast<double>(landmark_runs) : 0;
    const char* winner = "-";
    if (compact_runs == trials && (ml == 0 || mc <= ml)) winner = "compact (Thm 1)";
    else if (landmark_runs > 0 && compact_runs < trials) winner = "landmark";
    else if (ml > 0 && mc > ml) winner = "landmark";
    table.add_row({core::TextTable::num(p, 2),
                   std::to_string(certified) + "/" + std::to_string(trials),
                   std::to_string(diam2) + "/" + std::to_string(trials),
                   core::TextTable::num(mc, 0), core::TextTable::num(ml, 0),
                   winner});
  }
  table.print(std::cout);

  std::cout
      << "\nShape check: the Lemma 1–3 certificate (and hence every bound "
         "of the paper)\nholds only in a density band around p = 1/2 — "
         "degree concentration fails as p\nleaves [~0.3, ~0.7] and "
         "diameter-2 fails below p ≈ sqrt(2 ln n / n). Outside\nthe band "
         "the general landmark scheme takes over.\n";
  return 0;
}
