// Reproduces Corollary 1: the average-case totals over graphs on n nodes,
// all eight items in one table. Averages are over certified G(n, 1/2)
// seeds — the 1 − 1/n³ fraction the corollary averages over dominates, and
// the 1/n³ tail contributes at most the trivial bound / n³ = o(1) per item.
#include <iostream>
#include <vector>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  optrt::core::apply_threads_flag(argc, argv);
  using namespace optrt;
  const std::size_t n = 128;
  const std::size_t seeds = 5;

  std::cout << "== Corollary 1: average-case totals at n = " << n
            << " (mean over " << seeds << " certified graphs) ==\n\n";

  core::TextTable table({"item", "paper bound", "measured mean total bits"});

  auto mean_of = [&](auto&& measure) {
    double sum = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      graph::Rng rng(seed * 100 + 7);
      const graph::Graph g = core::certified_random_graph(n, rng);
      sum += measure(g);
    }
    return sum / static_cast<double>(seeds);
  };

  // 1. O(n²) shortest path, IB ∨ II (Theorem 1).
  table.add_row({"1. shortest path, IB|II", "O(n^2)",
                 core::TextTable::num(mean_of([](const graph::Graph& g) {
                   return static_cast<double>(
                       schemes::CompactDiam2Scheme(g, {}).space().total_bits());
                 }), 0)});
  // 2. O(n log²n) shortest path, II∧γ (Theorem 2).
  table.add_row({"2. shortest path, II&gamma", "O(n log^2 n)",
                 core::TextTable::num(mean_of([](const graph::Graph& g) {
                   return static_cast<double>(
                       schemes::NeighborLabelScheme(g).space().total_bits());
                 }), 0)});
  // 3. O(n log n), stretch 1<s<2 (Theorem 3).
  table.add_row({"3. stretch 1.5, II", "O(n log n)",
                 core::TextTable::num(mean_of([](const graph::Graph& g) {
                   return static_cast<double>(
                       schemes::RoutingCenterScheme(g).space().total_bits());
                 }), 0)});
  // 4. O(n loglog n), stretch 2 (Theorem 4).
  table.add_row({"4. stretch 2, II", "O(n loglog n)",
                 core::TextTable::num(mean_of([](const graph::Graph& g) {
                   return static_cast<double>(
                       schemes::HubScheme(g).space().total_bits());
                 }), 0)});
  // 5. O(n), stretch 6 log n (Theorem 5).
  table.add_row({"5. stretch 6logn, II", "O(n)",
                 core::TextTable::num(mean_of([](const graph::Graph& g) {
                   return static_cast<double>(
                       schemes::SequentialSearchScheme(g).space().total_bits());
                 }), 0)});
  // 6. Ω(n²) lower bound (Theorems 6 & 7): implied total over n nodes.
  table.add_row({"6. LB shortest path", "Omega(n^2)",
                 core::TextTable::num(mean_of([](const graph::Graph& g) {
                   const auto r = incompress::theorem6_encode(g, 0);
                   return static_cast<double>(
                              r.implied_function_lower_bound()) *
                          static_cast<double>(g.node_count());
                 }), 0)});
  // 7. Ω(n² log n) in IA∧α (Theorem 8): log₂(d!) summed over nodes.
  table.add_row({"7. LB IA&alpha", "Omega(n^2 log n)",
                 core::TextTable::num(mean_of([](const graph::Graph& g) {
                   double total = 0;
                   for (graph::NodeId u = 0; u < g.node_count(); ++u) {
                     total += incompress::log2_factorial(g.degree(u));
                   }
                   return total;
                 }), 0)});
  // 8. Θ(n³) full information (Theorem 10 + trivial upper bound).
  table.add_row({"8. full information", "Theta(n^3)",
                 core::TextTable::num(mean_of([](const graph::Graph& g) {
                   return static_cast<double>(
                       schemes::FullInformationScheme::standard(g)
                           .space()
                           .total_bits());
                 }), 0)});

  table.print(std::cout);

  const double n2 = static_cast<double>(n) * n;
  std::cout << "\nReference magnitudes at n=" << n << ": n^2 = "
            << core::TextTable::num(n2, 0) << ", n^2 log n = "
            << core::TextTable::num(n2 * 7, 0) << ", n^3 = "
            << core::TextTable::num(n2 * n, 0)
            << "\nShape check: items 1–5 fall strictly (n² → n log²n → "
               "n log n → n loglog n → n);\nitem 6 ≈ n²/2; item 7 ≈ "
               "(n²/2)·log(n/2); item 8 ≈ n³/2.\n";
  return 0;
}
