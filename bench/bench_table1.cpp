// Reproduces Table 1's *average-case upper bound* rows: measured total
// scheme sizes per model over certified G(n, 1/2), with the paper bound and
// the fitted growth exponent next to each measurement.
//
//   paper row                         our construction
//   IA (fixed ports):  O(n² log n)    full table (Theorem 8-tight)
//   IB (free ports):   O(n²)          compact-diam2 + embedded adjacency
//   II (neighbours):   O(n²)          compact-diam2          (Theorem 1)
//   II∧γ:              O(n log² n)    neighbor-label         (Theorem 2)
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/optrt.hpp"

namespace {

using namespace optrt;

struct ModelRow {
  model::Model m;
  const char* paper_bound;
  double (*bound_fn)(std::size_t);
};

double bound_ia(std::size_t n) { return incompress::trivial_table_bound(n); }
double bound_n2(std::size_t n) { return 6.0 * static_cast<double>(n) * n; }
double bound_gamma(std::size_t n) {
  return incompress::theorem2_total_bound(n);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = core::apply_threads_flag(argc, argv);
  const std::vector<std::size_t> ns = {64, 128, 256};
  const std::size_t seeds = 3;
  const auto wall_start = std::chrono::steady_clock::now();

  std::cout << "== Table 1 (average case, upper bounds): measured total bits "
               "==\n\n";

  const ModelRow rows[] = {
      {model::kIAalpha, "O(n^2 log n)", bound_ia},
      {model::kIAbeta, "O(n^2 log n)", bound_ia},
      {model::kIBalpha, "O(n^2) [Thm 1]", bound_n2},
      {model::kIBbeta, "O(n^2) [Thm 1]", bound_n2},
      {model::kIIalpha, "O(n^2) [Thm 1]", bound_n2},
      {model::kIIbeta, "O(n^2) [Thm 1]", bound_n2},
      {model::kIIgamma, "O(n log^2 n) [Thm 2]", bound_gamma},
  };

  core::TextTable table({"model", "paper bound", "n", "measured bits",
                         "paper-bound bits", "ratio", "fit n^b"});
  for (const ModelRow& row : rows) {
    const auto points = core::sweep_certified(
        ns, seeds, [&row](const graph::Graph& g) {
          const auto scheme = schemes::compile(g, row.m);
          return static_cast<double>(scheme->space().total_bits());
        });
    std::vector<double> xs, ys;
    for (std::size_t n : ns) {
      const double mean = core::mean_at(points, n);
      xs.push_back(static_cast<double>(n));
      ys.push_back(mean);
    }
    const core::PowerFit fit = core::fit_power_law(xs, ys);
    for (std::size_t i = 0; i < ns.size(); ++i) {
      const double bound = row.bound_fn(ns[i]);
      table.add_row({row.m.name(), row.paper_bound, std::to_string(ns[i]),
                     core::TextTable::num(ys[i], 0),
                     core::TextTable::num(bound, 0),
                     core::TextTable::num(ys[i] / bound, 3),
                     i + 1 == ns.size()
                         ? core::TextTable::num(fit.exponent, 2)
                         : ""});
    }
    table.add_rule();
  }
  table.print(std::cout);

  std::cout
      << "\nShape check: IA rows fit ≈ n^2·log n (exponent ≈ 2.1–2.3); IB/II "
         "rows fit ≈ n^2;\nII.gamma fits ≈ n^1.2–1.4 (n log² n). Every "
         "measurement sits below its paper bound.\n";
  const double wall_seconds = seconds_since(wall_start);

  // Calibration sweep (II.alpha, the n² workhorse) at 1 thread vs the
  // configured count, with the distance cache cleared before each run so
  // both pay the same BFS cost. The sweep's per-point seeding makes the two
  // runs compile identical graphs — the ratio is pure scheduling speedup.
  auto calibration = [&](std::size_t t) {
    graph::DistanceCache::global().clear();
    const auto start = std::chrono::steady_clock::now();
    const auto points = core::sweep_certified(
        ns, seeds,
        [](const graph::Graph& g) {
          const auto scheme = schemes::compile(g, model::kIIalpha);
          return static_cast<double>(
              model::verify_scheme(g, *scheme, 0, 1).max_route_edges);
        },
        core::SweepOptions{.base_seed = 7, .threads = t});
    (void)points;
    return seconds_since(start);
  };
  const double serial_seconds = calibration(1);
  const double parallel_seconds = calibration(threads);

  // Artifact framing overhead: the v1 container header is fixed-width, so
  // the overhead in bits must come out identical at every n.
  struct OverheadPoint {
    std::size_t n;
    std::size_t artifact_bits;
    std::size_t payload_bits;
  };
  std::vector<OverheadPoint> overhead;
  for (const std::size_t n : ns) {
    graph::Rng rng(1);
    const graph::Graph g = core::certified_random_graph(n, rng);
    const auto artifact = schemes::serialize(schemes::HubScheme(g));
    const auto info = schemes::inspect(artifact);
    overhead.push_back({n, artifact.size(), info.payload_bits});
  }

  obs::JsonWriter out;
  out.begin_object();
  out.key("bench").value("bench_table1");
  out.key("threads").value(static_cast<std::uint64_t>(threads));
  out.key("wall_seconds").value(wall_seconds);
  out.key("artifact_overhead").begin_object();
  out.key("frame_header_bits")
      .value(static_cast<std::uint64_t>(schemes::kFrameHeaderBits));
  out.key("points").begin_array();
  for (const auto& p : overhead) {
    out.begin_object();
    out.key("n").value(static_cast<std::uint64_t>(p.n));
    out.key("artifact_bits").value(static_cast<std::uint64_t>(p.artifact_bits));
    out.key("payload_bits").value(static_cast<std::uint64_t>(p.payload_bits));
    out.key("overhead_bits")
        .value(static_cast<std::uint64_t>(p.artifact_bits - p.payload_bits));
    out.end_object();
  }
  out.end_array();
  out.end_object();
  out.key("calibration").begin_object();
  out.key("serial_seconds").value(serial_seconds);
  out.key("parallel_seconds").value(parallel_seconds);
  out.key("speedup").value(serial_seconds / parallel_seconds);
  out.end_object();
  // Sweep/compile/verify counters accumulated across the whole run —
  // wall_ns omitted, so the block is deterministic across thread counts.
  out.key("metrics").raw(obs::metrics_json(obs::MetricsRegistry::global()));
  out.end_object();
  std::cout << "\n" << out.str() << "\n";
  return 0;
}
