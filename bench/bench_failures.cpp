// §1's case for full-information schemes, quantified as a seeded sweep:
// delivery degradation of the single-path Theorem 1 scheme (alone and
// under each resilience policy) vs hierarchical and full-information
// routing, across failure fractions of seeded FaultPlans. The n³/4 bits of
// Theorem 10 buy exactly this resilience.
//
// Emits one JSON row per (graph seed × failure fraction × scheme/policy).
// Every row is derived from SplitMix64 per-cell seeds and rows are joined
// in grid order, so the output is bit-identical across reruns and
// --threads values. Reproduce any row with:
//   optrt_cli simulate <graph> <scheme> --fail-fraction F --fault-seed S …
#include <iostream>
#include <memory>
#include <string_view>
#include <vector>

#include "core/optrt.hpp"

namespace {

using namespace optrt;

constexpr std::size_t kN = 96;
constexpr std::size_t kMessages = 2000;
constexpr std::uint64_t kBaseSeed = 1996;  // PODC'96

struct Variant {
  const char* scheme;
  net::ResiliencePolicy policy;
};

constexpr Variant kVariants[] = {
    {"compact", net::ResiliencePolicy::kNone},
    {"compact", net::ResiliencePolicy::kRetry},
    {"compact", net::ResiliencePolicy::kDeflect},
    {"compact", net::ResiliencePolicy::kSequentialFallback},
    {"hierarchical", net::ResiliencePolicy::kNone},
    {"full-information", net::ResiliencePolicy::kNone},
};

struct Row {
  std::string json;
  std::size_t delivered = 0;
};

Row run_cell(std::uint64_t graph_seed, double fraction, const Variant& variant) {
  // Everything in the cell re-derives from per-purpose SplitMix64 seeds —
  // the same graph, plan, and traffic for every variant of a cell.
  graph::Rng graph_rng(core::point_seed(kBaseSeed, kN, graph_seed));
  const graph::Graph g = core::certified_random_graph(kN, graph_rng);

  const auto failures =
      static_cast<std::size_t>(fraction * static_cast<double>(g.edge_count()));
  const net::FaultPlan plan = net::uniform_link_faults(
      g, failures,
      {.seed = core::point_seed(kBaseSeed, graph_seed, /*fault axis=*/1)});

  graph::Rng traffic_rng(core::point_seed(kBaseSeed, graph_seed, 2));
  const auto traffic = net::uniform_random(kN, kMessages, traffic_rng);

  std::unique_ptr<model::RoutingScheme> scheme;
  if (std::string_view(variant.scheme) == "compact") {
    scheme = std::make_unique<schemes::CompactDiam2Scheme>(
        g, schemes::CompactDiam2Scheme::Options{});
  } else if (std::string_view(variant.scheme) == "hierarchical") {
    scheme = std::make_unique<schemes::HierarchicalScheme>(
        g, schemes::HierarchicalOptions{.levels = 2, .seed = graph_seed});
  } else {
    scheme = std::make_unique<schemes::FullInformationScheme>(
        schemes::FullInformationScheme::standard(g));
  }

  net::SimulatorConfig config;
  config.resilience.policy = variant.policy;
  config.measure_stretch = true;
  net::Simulator sim(g, *scheme, config);
  sim.schedule(plan);
  for (const auto& [u, v] : traffic) sim.send(u, v);
  const net::SimulationStats stats = sim.run();

  // The stats block comes from net::write_stats_fields — the same pinned
  // schema `optrt_cli simulate` prints, so rows from either tool join.
  obs::JsonWriter out;
  out.begin_object();
  out.key("bench").value("bench_failures");
  out.key("n").value(static_cast<std::uint64_t>(kN));
  out.key("graph_seed").value(graph_seed);
  out.key("edges").value(static_cast<std::uint64_t>(g.edge_count()));
  out.key("fail_fraction").value(fraction);
  out.key("failed_links").value(static_cast<std::uint64_t>(plan.fail_count()));
  out.key("plan_fingerprint").value(plan.fingerprint());
  out.key("scheme").value(variant.scheme);
  out.key("policy").value(net::to_string(variant.policy));
  out.key("messages").value(static_cast<std::uint64_t>(kMessages));
  net::write_stats_fields(out, stats);
  out.end_object();
  return Row{out.str(), stats.delivered};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = core::apply_threads_flag(argc, argv);
  const std::vector<std::uint64_t> graph_seeds = {1, 2};
  const std::vector<double> fractions = {0.0, 0.05, 0.1, 0.2, 0.4};
  constexpr std::size_t kVariantCount = std::size(kVariants);

  const std::size_t cells =
      graph_seeds.size() * fractions.size() * kVariantCount;
  const std::vector<Row> rows =
      core::parallel_map<Row>(threads, cells, [&](std::size_t idx) {
        const std::size_t v = idx % kVariantCount;
        const std::size_t f = (idx / kVariantCount) % fractions.size();
        const std::size_t s = idx / (kVariantCount * fractions.size());
        return run_cell(graph_seeds[s], fractions[f], kVariants[v]);
      });

  for (const Row& row : rows) std::cout << row.json << "\n";

  // Trailer row: the merged metrics registry for the whole sweep. The
  // shard merge is thread-count independent, so this line is as
  // reproducible as the per-cell rows above it.
  obs::JsonWriter trailer;
  trailer.begin_object();
  trailer.key("bench").value("bench_failures");
  trailer.key("rows").value(static_cast<std::uint64_t>(cells));
  trailer.key("threads").value(static_cast<std::uint64_t>(threads));
  trailer.key("metrics").raw(obs::metrics_json(obs::MetricsRegistry::global()));
  trailer.end_object();
  std::cout << trailer.str() << "\n";

  // Shape check (the differential oracle of §1): at every failure level,
  // full information must deliver at least as much as the bare single-path
  // scheme it is compared against.
  for (std::size_t cell = 0; cell < cells; cell += kVariantCount) {
    const std::size_t compact_plain = rows[cell].delivered;
    const std::size_t full_info = rows[cell + kVariantCount - 1].delivered;
    if (full_info < compact_plain) {
      std::cerr << "FAIL: full-information delivered " << full_info
                << " < single-path " << compact_plain << " at cell " << cell
                << "\n";
      return 1;
    }
  }
  std::cerr << "bench_failures: " << cells << " rows, threads=" << threads
            << ", full-information dominates single-path at every cell\n";
  return 0;
}
