// §1's case for full-information schemes, quantified: sweep the number of
// failed links and compare delivery rates of the single-path Theorem 1
// scheme against the full-information scheme (which may take any
// alternative shortest path). The n³/4 bits of Theorem 10 buy exactly this
// resilience.
#include <iostream>

#include "core/optrt.hpp"

int main() {
  using namespace optrt;
  const std::size_t n = 96;
  const std::size_t messages = 3000;

  graph::Rng rng(1501);
  const graph::Graph g = core::certified_random_graph(n, rng);
  const schemes::CompactDiam2Scheme compact(g, {});
  const auto full = schemes::FullInformationScheme::standard(g);

  std::cout << "== Failure sweep: single-path vs full-information (n=" << n
            << ", |E|=" << g.edge_count() << ", " << messages
            << " msgs) ==\n\n";

  core::TextTable table({"failed links", "compact delivered",
                         "full-info delivered", "full-info advantage"});

  graph::Rng traffic_rng(1502);
  const auto traffic = net::uniform_random(n, messages, traffic_rng);

  for (std::size_t failures : {0u, 32u, 128u, 512u, 1024u}) {
    // One shared failure set per row.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> down;
    graph::Rng frng(1503 + failures);
    std::uniform_int_distribution<graph::NodeId> pick(
        0, static_cast<graph::NodeId>(n - 1));
    while (down.size() < failures) {
      const graph::NodeId u = pick(frng);
      const graph::NodeId v = pick(frng);
      if (u != v && g.has_edge(u, v)) down.emplace_back(u, v);
    }
    auto run = [&](const model::RoutingScheme& scheme) {
      net::Simulator sim(g, scheme);
      for (const auto& [u, v] : down) sim.fail_link(u, v);
      for (const auto& [u, v] : traffic) sim.send(u, v);
      return sim.run().delivered;
    };
    const std::size_t c = run(compact);
    const std::size_t f = run(full);
    table.add_row({std::to_string(failures),
                   std::to_string(c) + "/" + std::to_string(messages),
                   std::to_string(f) + "/" + std::to_string(messages),
                   "+" + std::to_string(f - c)});
    if (f < c) return 1;
  }
  table.print(std::cout);

  std::cout << "\nShape check: the full-information scheme dominates at "
               "every failure level,\nwith the gap widening as more "
               "shortest paths break — §1's 'alternative,\nshortest, paths "
               "… whenever an outgoing link is down', bought at Θ(n³) bits\n"
               "(Theorem 10 proves that price is unavoidable).\n";
  return 0;
}
