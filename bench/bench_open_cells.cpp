// The "?" cells of Table 1 — the questions the paper leaves open — with
// the best empirical evidence this library can produce. No claims, only
// measurements: the best known upper bound our constructions achieve in
// each open cell, and the best lower-bound evidence from the codecs.
#include <iostream>

#include "core/optrt.hpp"

int main() {
  using namespace optrt;
  const std::size_t n = 128;
  graph::Rng rng(1301);
  const graph::Graph g = core::certified_random_graph(n, rng);

  std::cout << "== Table 1's open cells ('?'), measured at n = " << n
            << " ==\n\n";

  core::TextTable table(
      {"open cell", "best construction here", "measured bits", "evidence"});

  // Worst case, IB·γ (upper-left '?'): our best is still Theorem 1 + γ
  // labels unused.
  {
    schemes::CompactDiam2Scheme::Options opt;
    opt.neighbors_known = false;
    const schemes::CompactDiam2Scheme scheme(g, opt);
    table.add_row({"worst case, IB.gamma", "compact-diam2 (Thm 1)",
                   std::to_string(scheme.space().total_bits()),
                   "upper only; no worst-case LB known"});
  }
  // Average case LB, IA·β and II·beta / II·gamma ('?' in the lower rows):
  // Theorem 6's codec needs α (it names the intermediary against the fixed
  // labelling); under relabelling the same description still round-trips,
  // giving the identical savings for THIS labelling — evidence, not a
  // bound over all labellings.
  {
    const auto r = incompress::theorem6_encode(g, 0);
    table.add_row({"avg case LB, II.beta", "theorem6 codec (fixed labels)",
                   std::to_string(r.implied_function_lower_bound()),
                   "per-node; holds for the identity labelling"});
  }
  {
    const schemes::NeighborLabelScheme scheme(g);
    table.add_row({"avg case LB, II.gamma", "neighbor-label (Thm 2) UB",
                   std::to_string(scheme.space().total_bits()),
                   "upper bound O(n log^2 n); no matching LB known"});
  }
  {
    // IA∧β average LB: the paper routes it through the IB∧γ arrow; our
    // Claim 3 evidence applies to any fixed labelling.
    const auto scheme = schemes::FullTableScheme::standard(g);
    const auto enc = incompress::claim3_encode(scheme, 0);
    table.add_row({"avg case LB, IA.beta", "claim3 floor (any labelling)",
                   std::to_string((n - 1) - enc.bits.size()),
                   "per-node interconnection content"});
  }
  table.print(std::cout);

  std::cout << "\nThese cells are open in the paper (Table 1 footnote: 'a ? "
               "marks an open\nquestion'). The measurements bracket them: "
               "every open lower-bound cell sits\nbetween the printed "
               "evidence and its row's known upper bound.\n";
  return 0;
}
