// Lookup-throughput benchmark: the compiled query-optimized path
// (RoutingScheme::compile_fast + route_batch) against the reference
// BitReader decode path (next_hop with a fresh header), per scheme kind,
// on one certified G(n,1/2) graph.
//
// Every timed fast-path answer is checked bit-identical to the reference
// answer before any number is reported — a mismatch fails the run. Emits
// BENCH_lookup.json (schema optrt.bench_lookup.v1):
//
//   {"schema":"optrt.bench_lookup.v1","n":…,"seed":…,"pairs":…,"reps":…,
//    "schemes":[{"scheme":…, "table_bits":…, "compile_ms":…,
//                "slow_ns_per_lookup":…, "fast_ns_per_lookup":…,
//                "slow_lookups_per_sec":…, "fast_lookups_per_sec":…,
//                "speedup":…, "identical":true}, …],
//    "speedup_vs_bitreader":…, "metrics":{…}}
//
// speedup_vs_bitreader is the full-table row's speedup: that scheme's
// reference path is the literal per-lookup BitReader seek/decode, so it is
// the honest "vs the BitReader path" headline (ROADMAP item 2's ≥10×
// target). The other rows report the speedup over their own shipped
// reference paths, some of which already cache decoded tables.
//
//   bench_lookup [--n 512] [--seed 1996] [--pairs 200000] [--reps 3]
//                [--smoke] [-o BENCH_lookup.json]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/optrt.hpp"

namespace {

using namespace optrt;
using Clock = std::chrono::steady_clock;

struct Config {
  std::size_t n = 512;
  std::uint64_t seed = 1996;  // PODC'96
  std::size_t pairs = 200000;
  std::size_t reps = 3;
  std::string out_path = "BENCH_lookup.json";
};

struct SchemeRow {
  std::string name;
  std::size_t table_bits = 0;
  double compile_ms = 0.0;
  double slow_ns = 0.0;
  double fast_ns = 0.0;
  bool identical = true;
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

SchemeRow measure(const model::RoutingScheme& scheme,
                  const std::vector<model::RoutePair>& raw_pairs,
                  std::size_t reps) {
  SchemeRow row;
  row.name = scheme.name();
  row.table_bits = scheme.space().total_bits();

  // The shared workload carries destination *node ids*; each scheme routes
  // by destination label, so translate once, outside the timed loops.
  std::vector<model::RoutePair> pairs(raw_pairs.size());
  for (std::size_t i = 0; i < raw_pairs.size(); ++i) {
    pairs[i] = {raw_pairs[i].src, scheme.label_of(raw_pairs[i].dst_label)};
  }

  const auto compile_start = Clock::now();
  const auto fast = scheme.compile_fast();
  row.compile_ms = seconds_since(compile_start) * 1e3;

  // Reference: the shipped decode path, fresh header per pair (the
  // fast-path contract), answers captured for the differential check.
  std::vector<graph::NodeId> expected(pairs.size());
  double slow_best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      model::MessageHeader header;
      expected[i] = scheme.next_hop(pairs[i].src, pairs[i].dst_label, header);
    }
    const double elapsed = seconds_since(start);
    if (rep == 0 || elapsed < slow_best) slow_best = elapsed;
  }

  std::vector<graph::NodeId> got(pairs.size());
  double fast_best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    fast->route_batch(pairs, got);
    const double elapsed = seconds_since(start);
    if (rep == 0 || elapsed < fast_best) fast_best = elapsed;
  }

  row.identical = got == expected;
  const auto count = static_cast<double>(pairs.size());
  row.slow_ns = slow_best * 1e9 / count;
  row.fast_ns = fast_best * 1e9 / count;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (++i >= argc) {
        std::cerr << "missing value after " << a << "\n";
        std::exit(2);
      }
      return argv[i];
    };
    if (a == "--n") {
      cfg.n = std::strtoul(next(), nullptr, 10);
    } else if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--pairs") {
      cfg.pairs = std::strtoul(next(), nullptr, 10);
    } else if (a == "--reps") {
      cfg.reps = std::strtoul(next(), nullptr, 10);
    } else if (a == "--smoke") {
      // CI mode: small graph, one rep — checks the differential contract
      // and the JSON schema, not the headline number.
      cfg.n = 48;
      cfg.pairs = 20000;
      cfg.reps = 1;
    } else if (a == "-o" || a == "--output") {
      cfg.out_path = next();
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return 2;
    }
  }

  graph::Rng rng(cfg.seed);
  const graph::Graph g = core::certified_random_graph(cfg.n, rng);

  // Seeded uniform pair workload; dst_label temporarily holds the raw
  // destination node id (measure() maps it through each scheme's label_of).
  std::vector<model::RoutePair> pairs;
  pairs.reserve(cfg.pairs);
  graph::Rng pair_rng(core::point_seed(cfg.seed, cfg.n, /*pair axis=*/7));
  std::uniform_int_distribution<graph::NodeId> pick(
      0, static_cast<graph::NodeId>(cfg.n - 1));
  while (pairs.size() < cfg.pairs) {
    const graph::NodeId s = pick(pair_rng);
    const graph::NodeId d = pick(pair_rng);
    if (s != d) pairs.push_back({s, d});
  }

  const auto diam2_opt =
      schemes::CompactDiam2Scheme::Options::for_model(model::kIIalpha);
  std::vector<std::unique_ptr<model::RoutingScheme>> all;
  all.push_back(std::make_unique<schemes::CompactDiam2Scheme>(g, diam2_opt));
  all.push_back(std::make_unique<schemes::FullTableScheme>(
      schemes::FullTableScheme::standard(g)));
  all.push_back(std::make_unique<schemes::HubScheme>(g));
  all.push_back(std::make_unique<schemes::RoutingCenterScheme>(g));
  all.push_back(std::make_unique<schemes::LandmarkScheme>(g));
  all.push_back(std::make_unique<schemes::HierarchicalScheme>(g));
  all.push_back(std::make_unique<schemes::SequentialSearchScheme>(g));

  std::vector<SchemeRow> rows;
  rows.reserve(all.size());
  for (const auto& scheme : all) {
    rows.push_back(measure(*scheme, pairs, cfg.reps));
    const SchemeRow& row = rows.back();
    std::cerr << row.name << ": slow " << row.slow_ns << " ns/lookup, fast "
              << row.fast_ns << " ns/lookup, speedup "
              << (row.fast_ns > 0 ? row.slow_ns / row.fast_ns : 0.0)
              << (row.identical ? "" : "  [MISMATCH]") << "\n";
  }

  double speedup_vs_bitreader = 0.0;
  bool all_identical = true;
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("optrt.bench_lookup.v1");
  w.key("n").value(static_cast<std::uint64_t>(cfg.n));
  w.key("seed").value(cfg.seed);
  w.key("pairs").value(static_cast<std::uint64_t>(pairs.size()));
  w.key("reps").value(static_cast<std::uint64_t>(cfg.reps));
  w.key("schemes").begin_array();
  for (const SchemeRow& row : rows) {
    const double speedup = row.fast_ns > 0 ? row.slow_ns / row.fast_ns : 0.0;
    if (row.name == "full-table") speedup_vs_bitreader = speedup;
    all_identical = all_identical && row.identical;
    w.begin_object();
    w.key("scheme").value(row.name);
    w.key("table_bits").value(static_cast<std::uint64_t>(row.table_bits));
    w.key("compile_ms").value(row.compile_ms);
    w.key("slow_ns_per_lookup").value(row.slow_ns);
    w.key("fast_ns_per_lookup").value(row.fast_ns);
    w.key("slow_lookups_per_sec").value(
        row.slow_ns > 0 ? 1e9 / row.slow_ns : 0.0);
    w.key("fast_lookups_per_sec").value(
        row.fast_ns > 0 ? 1e9 / row.fast_ns : 0.0);
    w.key("speedup").value(speedup);
    w.key("identical").value(row.identical);
    w.end_object();
  }
  w.end_array();
  w.key("speedup_vs_bitreader").value(speedup_vs_bitreader);
  w.key("metrics").raw(obs::metrics_json(obs::MetricsRegistry::global()));
  w.end_object();

  std::ofstream out(cfg.out_path);
  if (!out) {
    std::cerr << "cannot write " << cfg.out_path << "\n";
    return 2;
  }
  out << w.str() << "\n";
  std::cerr << "bench_lookup: wrote " << cfg.out_path
            << " (speedup_vs_bitreader=" << speedup_vs_bitreader << ")\n";

  if (!all_identical) {
    std::cerr << "FAIL: fast path diverged from the reference decoder\n";
    return 1;
  }
  return 0;
}
