// Ablation: what the space savings of Theorems 3–5 cost under load. With
// store-and-forward link serialization, schemes that concentrate traffic
// (Theorem 4's hub, Theorem 3's O(log n) centers) pay in makespan what
// they save in bits — a trade-off the paper's space-only accounting
// deliberately abstracts away, made visible by the simulator substrate.
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  optrt::core::apply_threads_flag(argc, argv);
  using namespace optrt;
  const std::size_t n = 128;

  graph::Rng rng(51);
  const graph::Graph g = core::certified_random_graph(n, rng);

  graph::Rng traffic_rng(52);
  const auto traffic = net::permutation_traffic(n, traffic_rng);

  std::cout << "== Congestion ablation: permutation traffic, serialized "
               "links, n=" << n << " ==\n\n";

  core::TextTable table({"scheme", "total bits", "makespan", "mean hops",
                         "max stretch"});

  auto run = [&](const model::RoutingScheme& scheme) {
    net::SimulatorConfig config;
    config.serialize_links = true;
    net::Simulator sim(g, scheme, config);
    for (const auto& [u, v] : traffic) sim.send(u, v);
    const auto stats = sim.run();
    const auto verify = model::verify_scheme(g, scheme);
    table.add_row({scheme.name(),
                   std::to_string(scheme.space().total_bits()),
                   std::to_string(stats.makespan),
                   core::TextTable::num(stats.mean_hops(), 2),
                   core::TextTable::num(verify.max_stretch, 2)});
    return stats.makespan;
  };

  const schemes::CompactDiam2Scheme compact(g, {});
  const schemes::RoutingCenterScheme centers(g);
  const schemes::HubScheme hub(g);
  const schemes::SequentialSearchScheme search(g);

  const auto m_compact = run(compact);
  const auto m_centers = run(centers);
  const auto m_hub = run(hub);
  run(search);

  table.print(std::cout);

  std::cout << "\nShape check: makespan rises as tables shrink — the "
               "distributed Theorem 1 scheme\nfinishes fastest; Theorem 3's "
               "O(log n) centers and Theorem 4's single hub\nserialize "
               "progressively more traffic.\n";
  return m_hub >= m_compact && m_centers >= m_compact ? 0 : 1;
}
