// Definition 5, computed *exactly*: "the average total number of bits to
// store the routing scheme for routing over graphs on n nodes is
// Σ T(G) / 2^{n(n−1)/2}, the sum taken over all graphs G on {1..n}".
//
// For small n we enumerate every labelled graph (Definition 2 makes that a
// counter loop), run the universal strategy on each, and average — no
// sampling. This is the only bench where the paper's averaging operator is
// evaluated literally rather than estimated on the certified set.
#include <iostream>

#include "core/optrt.hpp"

int main() {
  using namespace optrt;

  std::cout << "== Definition 5: exact averages over ALL labelled graphs "
               "==\n\n";

  core::TextTable table({"n", "graphs", "mean T(G) [II.alpha strategy]",
                         "mean full-table bits", "diam<=2 fraction",
                         "compact applied"});

  for (std::size_t n : {4u, 5u, 6u}) {
    const std::size_t edge_slots = n * (n - 1) / 2;
    const std::uint64_t total = std::uint64_t{1} << edge_slots;
    double strategy_bits = 0;
    double table_bits = 0;
    std::uint64_t diam2 = 0;
    std::uint64_t compact_used = 0;

    for (std::uint64_t code = 0; code < total; ++code) {
      bitio::BitVector eg(edge_slots);
      for (std::size_t i = 0; i < edge_slots; ++i) {
        if ((code >> i) & 1u) eg.set(i, true);
      }
      const graph::Graph g = graph::decode(eg, n);

      // The II.alpha universal strategy: Theorem 1 tables where the
      // structure exists, the always-correct full table elsewhere.
      try {
        const schemes::CompactDiam2Scheme compact(g, {});
        strategy_bits += static_cast<double>(compact.space().total_bits());
        ++compact_used;
      } catch (const schemes::SchemeInapplicable&) {
        strategy_bits += static_cast<double>(
            schemes::FullTableScheme::standard(g).space().total_bits());
      }
      table_bits += static_cast<double>(
          schemes::FullTableScheme::standard(g).space().total_bits());
      if (graph::has_diameter_at_most_2(g) &&
          g.edge_count() != edge_slots) {
        ++diam2;
      }
    }
    const auto dn = static_cast<double>(total);
    table.add_row(
        {std::to_string(n), std::to_string(total),
         core::TextTable::num(strategy_bits / dn, 1),
         core::TextTable::num(table_bits / dn, 1),
         core::TextTable::num(static_cast<double>(diam2) / dn, 3),
         core::TextTable::num(static_cast<double>(compact_used) / dn, 3)});
  }
  table.print(std::cout);

  std::cout
      << "\nShape check: the strategy average never exceeds the full-table "
         "average (the\ncompiler only deviates when Theorem 1 is cheaper). "
         "At these tiny n the\ndiameter-2 fraction is still dominated by "
         "small-graph effects (~1/3); the\n1 − 1/n^c regime appears at "
         "realistic sizes — bench_density measures the\ncertificate pass "
         "rate 8/8 at n = 128, p = 1/2.\n";
  return 0;
}
