// Reproduces the phenomenon of the paper's reference [1] (Flammini, van
// Leeuwen, Marchetti-Spaccamela: interval routing on random graphs):
// interval compression is powerful on linear/structured topologies and
// worthless on random graphs — the combinatorial face of this paper's
// Theorem 6/7 lower bounds.
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  optrt::core::apply_threads_flag(argc, argv);
  using namespace optrt;

  std::cout << "== Reference [1]: interval routing compactness ==\n\n";

  core::TextTable table({"graph", "n", "compactness (max/port)",
                         "total intervals", "scheme bits", "full-table bits"});

  auto add = [&table](const char* family, const graph::Graph& g) {
    const schemes::KIntervalScheme scheme(g);
    const auto result = model::verify_scheme(g, scheme);
    if (!result.ok() || result.max_stretch != 1.0) {
      std::cerr << "interval scheme broken on " << family << "\n";
      std::exit(1);
    }
    const auto table_bits =
        schemes::FullTableScheme::standard(g).space().total_bits();
    table.add_row({family, std::to_string(g.node_count()),
                   std::to_string(scheme.compactness()),
                   std::to_string(scheme.total_intervals()),
                   std::to_string(scheme.space().total_bits()),
                   std::to_string(table_bits)});
  };

  add("chain", graph::chain(128));
  add("ring", graph::ring(128));
  add("star", graph::star(128));
  add("grid 8x16", graph::grid(8, 16));
  add("hypercube d=7", graph::hypercube(7));
  table.add_rule();
  for (std::size_t n : {64u, 128u, 256u}) {
    graph::Rng rng(n + 71);
    const graph::Graph g = core::certified_random_graph(n, rng);
    add("G(n,1/2)", g);
  }
  table.print(std::cout);

  std::cout
      << "\nShape check: compactness 1 on chains/rings/stars, modest on "
         "grids and\nhypercubes, and Θ(n) on random graphs — where the "
         "interval scheme costs as\nmuch as (or more than) the literal "
         "table, exactly the regime in which\nTheorems 6–7 prove Ω(n²) "
         "bits are unavoidable.\n";
  return 0;
}
