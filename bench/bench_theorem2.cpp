// Reproduces Theorem 2: shortest-path routing in model II∧γ with O(1)-bit
// local functions — the whole scheme lives in (1 + (c+3)log n)·log n-bit
// labels. Measured label bits per node against the paper's formula, plus
// the crossover against the Theorem 1 scheme (labels win for every n).
#include <cmath>
#include <iostream>
#include <vector>

#include "core/optrt.hpp"

int main() {
  using namespace optrt;
  const std::vector<std::size_t> ns = {64, 128, 256, 512};

  std::cout << "== Theorem 2: neighbour-list labels (model II.gamma) ==\n\n";

  core::TextTable table({"n", "label bits/node", "paper (1+6logn)logn",
                         "function bits", "total", "Thm 1 total", "ratio"});
  std::vector<double> xs, ys;
  for (std::size_t n : ns) {
    graph::Rng rng(n * 7 + 11);
    const graph::Graph g = core::certified_random_graph(n, rng);
    const schemes::NeighborLabelScheme scheme(g);
    const auto space = scheme.space();
    const schemes::CompactDiam2Scheme compact(g, {});
    const double per_node_labels =
        static_cast<double>(space.label_bits) / static_cast<double>(n);
    const double log_n = std::log2(static_cast<double>(n));
    const double paper = (1.0 + 6.0 * log_n) * log_n;
    table.add_row({std::to_string(n), core::TextTable::num(per_node_labels, 1),
                   core::TextTable::num(paper, 1),
                   std::to_string(space.total_function_bits()),
                   std::to_string(space.total_bits()),
                   std::to_string(compact.space().total_bits()),
                   core::TextTable::num(
                       static_cast<double>(space.total_bits()) /
                           static_cast<double>(compact.space().total_bits()),
                       3)});
    xs.push_back(static_cast<double>(n));
    ys.push_back(static_cast<double>(space.total_bits()));
  }
  table.print(std::cout);
  const auto fit = core::fit_power_law(xs, ys);
  std::cout << "\nfitted total ≈ n^" << core::TextTable::num(fit.exponent, 2)
            << " (n log² n predicts ≈ 1.3–1.5 on this range; Θ(n²) would be "
               "2.0)\nShape check: label bits/node track (1+6 log n)·log n "
               "and the ratio to the\nTheorem 1 scheme falls with n — "
               "relabelling turns Θ(n²) into O(n log² n).\n";
  return 0;
}
