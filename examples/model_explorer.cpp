// Model explorer: the paper's nine models side by side on one graph —
// which scheme the universal strategy picks, how many bits it needs, and
// what the verifier measures. A miniature interactive Table 1.
//
//   $ ./model_explorer [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  using namespace optrt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  graph::Rng rng(seed);
  const graph::Graph g = core::certified_random_graph(n, rng);
  std::cout << "shortest-path routing on a certified G(" << n
            << ", 1/2), seed " << seed << "\n\n";

  core::TextTable table({"model", "scheme", "function bits", "label bits",
                         "total", "bits/node", "max stretch"});
  for (const model::Model& m : model::Model::all()) {
    const auto scheme = schemes::compile(g, m);
    const auto space = scheme->space();
    const auto result = model::verify_scheme(g, *scheme);
    table.add_row({m.name(), scheme->name(),
                   std::to_string(space.total_function_bits()),
                   std::to_string(space.label_bits),
                   std::to_string(space.total_bits()),
                   core::TextTable::num(
                       static_cast<double>(space.total_bits()) /
                           static_cast<double>(n),
                       1),
                   core::TextTable::num(result.max_stretch, 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading guide (paper, Table 1): II/IB rows are O(n²) total"
               " (Theorem 1);\nII.gamma drops to O(n log² n) (Theorem 2);"
               " IA rows pay Θ(n² log n) for the\nadversarial port"
               " assignment (Theorem 8).\n";
  return 0;
}
