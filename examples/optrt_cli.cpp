// optrt_cli — the library as a command-line tool.
//
//   optrt_cli generate <family> <n> [--seed S] [--certified] -o G.eg
//   optrt_cli info     G.eg
//   optrt_cli compile  G.eg [--model M] [--objective O] -o S.ort
//   optrt_cli route    G.eg S.ort <src> <dst>
//   optrt_cli verify   G.eg S.ort
//   optrt_cli verify-artifact S.ort [G.eg]
//   optrt_cli sizes    G.eg
//   optrt_cli simulate G.eg S.ort [--messages M] [--traffic T]
//                      [--failures K | --fail-fraction F] [--fault-model M]
//                      [--fault-seed S] [--repair-after T] [--policy P]
//                      [--retries N] [--backoff B] [--serialize-links]
//                      [--churn SPEC [--repair-lag T]]
//   optrt_cli sweep    [--ns 16,24,32] [--seeds 3] [--model M]
//                      [--objective O] [--seed S]
//   optrt_cli serve    --dir DIR (--socket PATH | --port N)
//   optrt_cli query    (--socket PATH | --port N) [--op OP]
//                      [--artifact ID] [SRC DST | --batch PAIRS.txt]
//
// Families: uniform gnp:<p> chain ring complete star grid:<r>x<c>
//           hypercube:<d> gb:<k> ba:<m> power-law:<m> config:<exp>,<mindeg>
//           grid
// Models:   IA.alpha IA.beta IA.gamma IB.alpha ... II.gamma
// Objectives: shortest stretch1.5 stretch2 stretchlog fullinfo
// Traffic:  uniform allpairs hotspot permutation
// Faults:   uniform targeted partition nodes;  policies: none retry
//           deflect fallback
//
// Observability (any command): --metrics-json FILE writes the merged
// metrics registry (deterministic across --threads once wall_ns is
// stripped); --trace-json FILE writes Chrome trace_event JSON viewable in
// chrome://tracing or ui.perfetto.dev.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/graph_io.hpp"
#include "core/optrt.hpp"
#include "net/churn.hpp"
#include "schemes/repair.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"

namespace {

using namespace optrt;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  optrt_cli generate <family> <n> [--seed S] [--certified] -o G.eg\n"
      "  optrt_cli info G.eg\n"
      "  optrt_cli compile G.eg [--model II.alpha] [--objective shortest] -o S.ort\n"
      "  optrt_cli route G.eg S.ort <src> <dst>\n"
      "  optrt_cli route G.eg S.ort --batch PAIRS.txt [-o HOPS.txt]\n"
      "      (PAIRS.txt: one 'src dst' pair per line; prints 'src dst hop'\n"
      "       per line via the compiled fast path)\n"
      "  optrt_cli verify G.eg S.ort\n"
      "  optrt_cli verify-artifact S.ort [G.eg]\n"
      "  optrt_cli sizes G.eg\n"
      "  optrt_cli simulate G.eg S.ort [--messages M] [--traffic "
      "uniform|allpairs|hotspot|permutation]\n"
      "      [--failures K | --fail-fraction F] [--fault-model "
      "uniform|targeted|partition|nodes]\n"
      "      [--fault-seed S] [--repair-after T] [--policy "
      "none|retry|deflect|fallback]\n"
      "      [--retries N] [--backoff B] [--serialize-links] "
      "[--batch-routing]\n"
      "      [--churn MODEL[:EVENTS[,GAP[,QUIESCE]]] [--repair-lag T]]\n"
      "      (--churn replays a seeded fail/repair stream while the tables\n"
      "       are incrementally repaired; MODEL = uniform | targeted |\n"
      "       partition | nodes. Oracle-checked at every quiesce point.)\n"
      "  optrt_cli sweep [--ns 16,24,32] [--seeds 3] [--model II.alpha] "
      "[--objective shortest]\n"
      "  optrt_cli serve --dir DIR (--socket PATH | --port N) [--host H]\n"
      "      (serve every <name>.ort + <name>.eg pair in DIR over ORTP v1;\n"
      "       SIGHUP hot-reloads, SIGINT/SIGTERM stops)\n"
      "  optrt_cli query (--socket PATH | --port N) [--op "
      "ping|next-hop|route|list|reload]\n"
      "      [--artifact ID] [SRC DST | --batch PAIRS.txt]\n"
      "families: uniform gnp:<p> chain ring complete star grid:<r>x<c> "
      "hypercube:<d> gb:<k> ba:<m> power-law:<m> config:<exp>,<mindeg> grid\n"
      "global: --threads N (worker threads for verify/sizes/sweep; default "
      "$OPTRT_THREADS or hardware)\n"
      "        --metrics-json FILE   write merged metrics registry as JSON\n"
      "        --trace-json FILE     write Chrome trace_event JSON\n";
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  std::optional<std::string> output;
  std::uint64_t seed = 1;
  bool certified = false;
  std::string model = "II.alpha";
  std::string objective = "shortest";
  // simulate knobs.
  std::size_t messages = 1000;
  std::string traffic = "uniform";
  std::size_t failures = 0;
  std::optional<double> fail_fraction;
  std::string fault_model = "uniform";
  std::uint64_t fault_seed = 1;
  std::uint64_t repair_after = 0;
  std::optional<std::string> churn;
  std::uint64_t repair_lag = 0;
  std::string policy = "none";
  std::uint32_t retries = 4;
  std::uint64_t backoff = 2;
  bool serialize_links = false;
  // sweep knobs.
  std::string ns_list = "16,24,32";
  std::size_t sweep_seeds = 3;
  bool batch_routing = false;
  // route --batch input file (also query --batch).
  std::optional<std::string> batch;
  // serve / query knobs.
  std::optional<std::string> dir;
  std::optional<std::string> socket_path;
  int port = -1;
  std::string host = "127.0.0.1";
  std::string op = "next-hop";
  std::uint32_t artifact_id = 0;
  // observability outputs.
  std::optional<std::string> metrics_json;
  std::optional<std::string> trace_json;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage("missing value after " + a);
      return argv[i];
    };
    if (a == "-o" || a == "--output") {
      args.output = next();
    } else if (a == "--seed") {
      args.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--certified") {
      args.certified = true;
    } else if (a == "--model") {
      args.model = next();
    } else if (a == "--objective") {
      args.objective = next();
    } else if (a == "--messages") {
      args.messages = std::strtoul(next().c_str(), nullptr, 10);
    } else if (a == "--traffic") {
      args.traffic = next();
    } else if (a == "--failures") {
      args.failures = std::strtoul(next().c_str(), nullptr, 10);
    } else if (a == "--fail-fraction") {
      args.fail_fraction = std::strtod(next().c_str(), nullptr);
    } else if (a == "--fault-model") {
      args.fault_model = next();
    } else if (a == "--fault-seed") {
      args.fault_seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--repair-after") {
      args.repair_after = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--churn") {
      args.churn = next();
    } else if (a == "--repair-lag") {
      args.repair_lag = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--policy") {
      args.policy = next();
    } else if (a == "--retries") {
      args.retries =
          static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (a == "--backoff") {
      args.backoff = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--serialize-links") {
      args.serialize_links = true;
    } else if (a == "--batch-routing") {
      args.batch_routing = true;
    } else if (a == "--dir") {
      args.dir = next();
    } else if (a == "--socket") {
      args.socket_path = next();
    } else if (a == "--port") {
      args.port = static_cast<int>(std::strtol(next().c_str(), nullptr, 10));
    } else if (a == "--host") {
      args.host = next();
    } else if (a == "--op") {
      args.op = next();
    } else if (a == "--artifact") {
      args.artifact_id =
          static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (a == "--ns") {
      args.ns_list = next();
    } else if (a == "--seeds") {
      args.sweep_seeds = std::strtoul(next().c_str(), nullptr, 10);
    } else if (a == "--batch") {
      args.batch = next();
    } else if (a == "--metrics-json") {
      args.metrics_json = next();
    } else if (a == "--trace-json") {
      args.trace_json = next();
    } else if (!a.empty() && a[0] == '-') {
      usage("unknown flag " + a);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

graph::Graph make_graph(const std::string& family, std::size_t n,
                        std::uint64_t seed, bool certified) {
  graph::Rng rng(seed);
  if (family == "uniform") {
    return certified ? core::certified_random_graph(n, rng)
                     : graph::random_uniform(n, rng);
  }
  if (family.rfind("gnp:", 0) == 0) {
    return graph::random_gnp(n, std::strtod(family.c_str() + 4, nullptr), rng);
  }
  if (family == "chain") return graph::chain(n);
  if (family == "ring") return graph::ring(n);
  if (family == "complete") return graph::complete(n);
  if (family == "star") return graph::star(n);
  if (family.rfind("grid:", 0) == 0) {
    const char* spec = family.c_str() + 5;
    const char* x = std::strchr(spec, 'x');
    if (x == nullptr) usage("grid spec must be grid:<r>x<c>");
    return graph::grid(std::strtoul(spec, nullptr, 10),
                       std::strtoul(x + 1, nullptr, 10));
  }
  if (family.rfind("hypercube:", 0) == 0) {
    return graph::hypercube(std::strtoul(family.c_str() + 10, nullptr, 10));
  }
  if (family.rfind("gb:", 0) == 0) {
    return graph::lower_bound_gb(std::strtoul(family.c_str() + 3, nullptr, 10));
  }
  // Internet-like families share the bench's TopologyFamily grammar:
  // ba:<m> / power-law:<m>, config:<exponent>,<min-degree>, grid (near-
  // square auto-factorization, unlike the explicit grid:<r>x<c> above).
  try {
    return graph::TopologyFamily::parse(family).make(n, seed);
  } catch (const std::invalid_argument&) {
  }
  usage("unknown family " + family);
}

model::Model parse_model(const std::string& name) {
  for (const model::Model& m : model::Model::all()) {
    if (m.name() == name) return m;
  }
  usage("unknown model " + name);
}

schemes::Objective parse_objective(const std::string& name) {
  if (name == "shortest") return schemes::Objective::kShortestPath;
  if (name == "stretch1.5") return schemes::Objective::kStretchBelow2;
  if (name == "stretch2") return schemes::Objective::kStretch2;
  if (name == "stretchlog") return schemes::Objective::kStretchLog;
  if (name == "fullinfo") return schemes::Objective::kFullInformation;
  usage("unknown objective " + name);
}

/// Artifact/graph loads print one diagnostic line — the file plus the
/// DecodeError kind — and exit 2, so a corrupt input is a clean refusal,
/// never a stack trace or a partial run.
[[noreturn]] void reject_file(const std::string& path, const char* what) {
  std::cerr << "error: " << path << ": " << what << "\n";
  std::exit(2);
}

graph::Graph cli_load_graph(const std::string& path) {
  try {
    return core::load_graph(path);
  } catch (const std::exception& e) {
    reject_file(path, e.what());
  }
}

bitio::BitVector cli_load_artifact(const std::string& path) {
  try {
    return schemes::load_artifact(path);
  } catch (const std::exception& e) {
    reject_file(path, e.what());
  }
}

std::unique_ptr<model::RoutingScheme> load_scheme(
    const std::string& path, const graph::Graph& g) {
  const bitio::BitVector artifact = cli_load_artifact(path);
  try {
    return schemes::deserialize_any(artifact, g);
  } catch (const schemes::DecodeError& e) {
    reject_file(path, e.what());
  }
}

int cmd_generate(const Args& args) {
  if (args.positional.size() != 2 || !args.output) {
    usage("generate needs <family> <n> -o FILE");
  }
  const std::size_t n = std::strtoul(args.positional[1].c_str(), nullptr, 10);
  const graph::Graph g =
      make_graph(args.positional[0], n, args.seed, args.certified);
  core::save_graph(*args.output, g);
  std::cout << "wrote " << *args.output << ": n=" << g.node_count()
            << " |E|=" << g.edge_count() << "\n";
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.size() != 1) usage("info needs a graph file");
  const graph::Graph g = cli_load_graph(args.positional[0]);
  const graph::DistanceMatrix dist(g);
  const auto cert = graph::certify(g);
  std::cout << "n = " << g.node_count() << "\n|E| = " << g.edge_count()
            << "\nmin/max degree = " << g.min_degree() << "/" << g.max_degree()
            << "\ndiameter = ";
  if (dist.diameter() == graph::kUnreachable) {
    std::cout << "inf (disconnected)";
  } else {
    std::cout << dist.diameter();
  }
  std::cout << "\ncertificate (Lemmas 1-3): " << (cert.ok() ? "PASS" : "fail")
            << "  [degrees " << (cert.degrees_concentrated ? "ok" : "FAIL")
            << ", diameter-2 " << (cert.diameter_two ? "ok" : "FAIL")
            << ", covers " << (cert.covers_small ? "ok" : "FAIL") << "]\n";
  return 0;
}

int cmd_compile(const Args& args) {
  if (args.positional.size() != 1 || !args.output) {
    usage("compile needs a graph file and -o FILE");
  }
  const graph::Graph g = cli_load_graph(args.positional[0]);
  schemes::CompileOptions opt;
  opt.objective = parse_objective(args.objective);
  opt.port_seed = args.seed;
  const auto scheme = schemes::compile(g, parse_model(args.model), opt);
  bitio::BitVector artifact;
  if (const auto* c =
          dynamic_cast<const schemes::CompactDiam2Scheme*>(scheme.get())) {
    artifact = schemes::serialize(*c);
  } else if (const auto* t =
                 dynamic_cast<const schemes::FullTableScheme*>(scheme.get())) {
    artifact = schemes::serialize(*t);
  } else if (const auto* hb =
                 dynamic_cast<const schemes::HubScheme*>(scheme.get())) {
    artifact = schemes::serialize(*hb);
  } else if (const auto* rc = dynamic_cast<const schemes::RoutingCenterScheme*>(
                 scheme.get())) {
    artifact = schemes::serialize(*rc);
  } else if (const auto* lm =
                 dynamic_cast<const schemes::LandmarkScheme*>(scheme.get())) {
    artifact = schemes::serialize(*lm);
  } else if (const auto* hi = dynamic_cast<const schemes::HierarchicalScheme*>(
                 scheme.get())) {
    artifact = schemes::serialize(*hi);
  } else if (const auto* ss = dynamic_cast<const schemes::SequentialSearchScheme*>(
                 scheme.get())) {
    artifact = schemes::serialize(*ss);
  } else if (const auto* tz =
                 dynamic_cast<const schemes::TzScheme*>(scheme.get())) {
    artifact = schemes::serialize(*tz);
  } else {
    std::cerr << "scheme '" << scheme->name()
              << "' has no stored tables to serialize; reporting only\n";
  }
  const auto space = scheme->space();
  std::cout << "compiled " << scheme->name() << " for model "
            << scheme->routing_model().name() << ": "
            << space.total_bits() << " bits total, max node "
            << space.max_node_bits() << "\n";
  if (!artifact.empty()) {
    schemes::save_artifact(*args.output, artifact);
    std::cout << "wrote " << *args.output << " (" << artifact.size()
              << " bits incl. environment)\n";
  }
  return 0;
}

/// route --batch: answer a whole pair file through the compiled fast path
/// (one compile, then route_batch) instead of per-pair decoding.
int cmd_route_batch(const Args& args) {
  const graph::Graph g = cli_load_graph(args.positional[0]);
  const auto scheme = load_scheme(args.positional[1], g);
  const auto fast = scheme->compile_fast();

  std::ifstream in(*args.batch);
  if (!in) reject_file(*args.batch, "cannot open pair file");
  std::vector<model::RoutePair> pairs;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> endpoints;
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::size_t line = 0;
  while (in >> src >> dst) {
    ++line;
    if (src >= g.node_count() || dst >= g.node_count() || src == dst) {
      std::cerr << "error: " << *args.batch << ": pair " << line
                << " out of range or equal\n";
      return 2;
    }
    endpoints.emplace_back(static_cast<graph::NodeId>(src),
                           static_cast<graph::NodeId>(dst));
    pairs.push_back({static_cast<graph::NodeId>(src),
                     scheme->label_of(static_cast<graph::NodeId>(dst))});
  }
  std::vector<graph::NodeId> hops(pairs.size());
  fast->route_batch(pairs, hops);

  std::ofstream file_out;
  if (args.output) {
    file_out.open(*args.output);
    if (!file_out) reject_file(*args.output, "cannot open output file");
  }
  std::ostream& out = args.output ? file_out : std::cout;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    out << endpoints[i].first << ' ' << endpoints[i].second << ' ' << hops[i]
        << '\n';
  }
  std::cerr << "routed " << hops.size() << " pairs with the " << fast->name()
            << " fast path\n";
  return 0;
}

int cmd_route(const Args& args) {
  if (args.batch) {
    if (args.positional.size() != 2) {
      usage("route --batch needs <graph> <scheme> --batch PAIRS.txt");
    }
    return cmd_route_batch(args);
  }
  if (args.positional.size() != 4) {
    usage("route needs <graph> <scheme> <src> <dst>");
  }
  const graph::Graph g = cli_load_graph(args.positional[0]);
  const auto scheme = load_scheme(args.positional[1], g);
  const auto src =
      static_cast<graph::NodeId>(std::strtoul(args.positional[2].c_str(), nullptr, 10));
  const auto dst =
      static_cast<graph::NodeId>(std::strtoul(args.positional[3].c_str(), nullptr, 10));
  if (src >= g.node_count() || dst >= g.node_count() || src == dst) {
    usage("route endpoints out of range or equal");
  }
  model::MessageHeader header;
  graph::NodeId at = src;
  std::size_t hops = 0;
  std::cout << at;
  while (at != dst) {
    if (hops > model::default_hop_budget(g.node_count())) {
      std::cout << " ... (no progress, giving up)\n";
      return 1;
    }
    const graph::NodeId next = scheme->next_hop(at, scheme->label_of(dst), header);
    header.came_from = at;
    at = next;
    ++hops;
    std::cout << " -> " << at;
  }
  std::cout << "   (" << hops << " hops)\n";
  return 0;
}

int cmd_verify(const Args& args) {
  if (args.positional.size() != 2) usage("verify needs <graph> <scheme>");
  const graph::Graph g = cli_load_graph(args.positional[0]);
  const auto scheme = load_scheme(args.positional[1], g);
  const auto result = model::verify_scheme(g, *scheme);
  std::cout << "pairs checked : " << result.pairs_checked
            << "\npairs failed  : " << result.pairs_failed
            << "\ninvalid hops  : " << result.invalid_hops
            << "\nmax stretch   : " << result.max_stretch
            << "\nmean stretch  : " << result.mean_stretch << "\n";
  return result.ok() ? 0 : 1;
}

int cmd_verify_artifact(const Args& args) {
  if (args.positional.empty() || args.positional.size() > 2) {
    usage("verify-artifact needs <scheme.ort> [graph.eg]");
  }
  const std::string& path = args.positional[0];
  const bitio::BitVector artifact = cli_load_artifact(path);
  schemes::ArtifactInfo info;
  try {
    info = schemes::inspect(artifact);
  } catch (const schemes::DecodeError& e) {
    reject_file(path, e.what());
  }
  std::cout << "format        : v" << static_cast<unsigned>(info.version)
            << (info.version == 0 ? " (legacy, no checksum)" : "")
            << "\nscheme kind   : " << schemes::to_string(info.kind)
            << "\nnode count    : " << info.node_count
            << "\npayload bits  : " << info.payload_bits << "\n";
  if (info.version >= 1) {
    char crc[16];
    std::snprintf(crc, sizeof crc, "%08x", info.crc_stored);
    std::cout << "payload crc32 : " << crc << " (verified)\nframe overhead: "
              << schemes::kFrameHeaderBits << " bits\n";
  }
  if (args.positional.size() == 2) {
    const graph::Graph g = cli_load_graph(args.positional[1]);
    try {
      const auto scheme = schemes::deserialize_any(artifact, g);
      std::cout << "decode        : ok (" << scheme->name() << ")\n";
    } catch (const schemes::DecodeError& e) {
      reject_file(path, e.what());
    }
  }
  return 0;
}

int cmd_sizes(const Args& args) {
  if (args.positional.size() != 1) usage("sizes needs a graph file");
  const graph::Graph g = cli_load_graph(args.positional[0]);
  core::TextTable table({"model", "scheme", "total bits", "max stretch"});
  for (const model::Model& m : model::Model::all()) {
    const auto scheme = schemes::compile(g, m);
    const auto result = model::verify_scheme(g, *scheme);
    table.add_row({m.name(), scheme->name(),
                   std::to_string(scheme->space().total_bits()),
                   core::TextTable::num(result.max_stretch, 2)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_simulate(const Args& args) {
  if (args.positional.size() != 2) usage("simulate needs <graph> <scheme>");
  const graph::Graph g = cli_load_graph(args.positional[0]);
  const auto scheme = load_scheme(args.positional[1], g);
  const std::size_t n = g.node_count();

  const auto fault_model = net::parse_fault_model(args.fault_model);
  if (!fault_model) usage("unknown fault model " + args.fault_model);
  const auto policy = net::parse_resilience_policy(args.policy);
  if (!policy) usage("unknown resilience policy " + args.policy);

  if (args.churn) {
    // Churn mode: rebuild the scheme fresh as a repairable of the
    // artifact's kind, then replay a seeded fail/repair stream against it
    // under live traffic (the artifact validates the kind; the repairable
    // maintains its own tables event by event).
    net::ChurnOptions copt;
    try {
      copt = net::ChurnOptions::parse(*args.churn);
    } catch (const std::invalid_argument& e) {
      usage(e.what());
    }
    copt.seed = args.fault_seed;
    const schemes::SchemeKind kind =
        schemes::peek_kind(cli_load_artifact(args.positional[1]));
    std::string kind_name;
    switch (kind) {
      case schemes::SchemeKind::kFullTable:
        kind_name = "full-table";
        break;
      case schemes::SchemeKind::kCompactDiam2:
        kind_name = "compact-diam2";
        break;
      case schemes::SchemeKind::kThorupZwick:
        kind_name = "tz";
        break;
      default:
        usage(std::string("--churn supports full-table, compact-diam2, and "
                          "tz artifacts, not ") +
              schemes::to_string(kind));
    }
    const auto rs = schemes::make_repairable(kind_name, g, args.seed);
    const net::ChurnPlan cplan = net::make_churn_plan(g, copt);

    net::ChurnSessionConfig scfg;
    scfg.sim.serialize_links = args.serialize_links;
    scfg.sim.measure_stretch = true;
    scfg.sim.batch_routing = args.batch_routing;
    scfg.sim.resilience = {.policy = *policy,
                           .max_retries = args.retries,
                           .backoff_base = args.backoff};
    scfg.repair_lag = args.repair_lag;
    scfg.messages = args.messages;
    scfg.traffic_seed = args.seed;
    const net::ChurnReport report = net::run_churn_session(*rs, cplan, scfg);

    obs::JsonWriter w;
    w.begin_object();
    w.key("scheme").value(scheme->name());
    w.key("churn").value(copt.name());
    w.key("churn_seed").value(copt.seed);
    w.key("plan_fingerprint").value(cplan.fingerprint());
    w.key("repair_lag").value(args.repair_lag);
    w.key("status").value(net::to_string(report.status));
    w.key("events").value(static_cast<std::uint64_t>(report.events_applied));
    w.key("deltas").value(static_cast<std::uint64_t>(report.deltas_applied));
    w.key("quiesce_points")
        .value(static_cast<std::uint64_t>(report.quiesce_points));
    w.key("quiesce_mismatches")
        .value(static_cast<std::uint64_t>(report.quiesce_mismatches));
    w.key("stale_sent").value(static_cast<std::uint64_t>(report.stale_sent));
    w.key("repair_work").value(report.repair.work());
    w.key("tables_touched").value(report.repair.tables_touched);
    w.key("dist_rows_bfs").value(report.repair.dist_rows_bfs);
    w.key("dist_rows_patched").value(report.repair.dist_rows_patched);
    w.key("patched").value(report.repair.patched);
    w.key("rebuilt").value(report.repair.rebuilt);
    net::write_stats_fields(w, report.traffic);
    w.end_object();
    std::cout << w.str() << "\n";
    return report.status == net::ChurnStatus::kMismatch ? 1 : 0;
  }

  std::size_t failures = args.failures;
  if (args.fail_fraction) {
    const double base = *fault_model == net::FaultModel::kNodes
                            ? static_cast<double>(n)
                            : static_cast<double>(g.edge_count());
    failures = static_cast<std::size_t>(*args.fail_fraction * base);
  }
  const net::FaultPlan plan = net::make_fault_plan(
      g, *fault_model, failures,
      {.seed = args.fault_seed, .repair_after = args.repair_after});

  graph::Rng traffic_rng(args.seed);
  std::vector<net::TrafficPair> traffic;
  if (args.traffic == "uniform") {
    traffic = net::uniform_random(n, args.messages, traffic_rng);
  } else if (args.traffic == "allpairs") {
    traffic = net::all_pairs(n);
  } else if (args.traffic == "hotspot") {
    traffic = net::hotspot(n, 0);
  } else if (args.traffic == "permutation") {
    traffic = net::permutation_traffic(n, traffic_rng);
  } else {
    usage("unknown traffic pattern " + args.traffic);
  }

  net::SimulatorConfig config;
  config.serialize_links = args.serialize_links;
  config.measure_stretch = true;
  config.batch_routing = args.batch_routing;
  config.resilience = {.policy = *policy,
                       .max_retries = args.retries,
                       .backoff_base = args.backoff};
  net::Simulator sim(g, *scheme, config);
  sim.schedule(plan);
  for (const auto& [u, v] : traffic) sim.send(u, v);
  const net::SimulationStats stats = sim.run();

  obs::JsonWriter w;
  w.begin_object();
  w.key("scheme").value(scheme->name());
  w.key("fault_model").value(net::to_string(*fault_model));
  w.key("fault_seed").value(args.fault_seed);
  w.key("failures").value(static_cast<std::uint64_t>(plan.fail_count()));
  w.key("plan_fingerprint").value(plan.fingerprint());
  w.key("repair_after").value(args.repair_after);
  w.key("policy").value(net::to_string(*policy));
  w.key("messages").value(static_cast<std::uint64_t>(traffic.size()));
  net::write_stats_fields(w, stats);
  w.end_object();
  std::cout << w.str() << "\n";
  return 0;
}

int cmd_sweep(const Args& args) {
  if (!args.positional.empty()) usage("sweep takes no positional arguments");
  std::vector<std::size_t> ns;
  for (std::size_t pos = 0; pos < args.ns_list.size();) {
    const std::size_t comma = args.ns_list.find(',', pos);
    const std::string tok = args.ns_list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) ns.push_back(std::strtoul(tok.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (ns.empty() || args.sweep_seeds == 0) {
    usage("sweep needs non-empty --ns and --seeds >= 1");
  }
  const model::Model m = parse_model(args.model);
  schemes::CompileOptions copt;
  copt.objective = parse_objective(args.objective);

  core::SweepOptions opt;
  opt.base_seed = args.seed;
  const auto points = core::sweep_certified(
      ns, args.sweep_seeds,
      [&](const graph::Graph& g) {
        const auto scheme = schemes::compile(g, m, copt);
        return static_cast<double>(scheme->space().total_bits());
      },
      opt);

  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("optrt.sweep.v1");
  w.key("model").value(m.name());
  w.key("objective").value(args.objective);
  w.key("seeds").value(static_cast<std::uint64_t>(args.sweep_seeds));
  w.key("base_seed").value(args.seed);
  w.key("points").begin_array();
  for (const auto& p : points) {
    w.begin_object();
    w.key("n").value(static_cast<std::uint64_t>(p.n));
    w.key("seed").value(p.seed);
    w.key("total_bits").value(p.value);
    w.end_object();
  }
  w.end_array();
  w.key("mean_total_bits").begin_object();
  for (const std::size_t n : ns) {
    w.key(std::to_string(n)).value(core::mean_at(points, n));
  }
  w.end_object();
  w.end_object();
  std::cout << w.str() << "\n";
  return 0;
}

int cmd_serve(const Args& args) {
  if (!args.dir || (!args.socket_path && args.port < 0)) {
    usage("serve needs --dir DIR and --socket PATH or --port N");
  }
  serve::DaemonOptions options;
  options.artifact_dir = *args.dir;
  if (args.socket_path) options.server.unix_path = *args.socket_path;
  options.server.tcp_port = args.port;
  options.server.tcp_host = args.host;
  options.server.threads = core::default_threads();
  return serve::run_daemon(options);
}

/// Reads query pairs from positionals ("SRC DST") or a --batch file (one
/// "src dst" pair per line, the route --batch format).
std::vector<serve::QueryPair> gather_query_pairs(const Args& args) {
  std::vector<serve::QueryPair> pairs;
  if (args.batch) {
    std::ifstream in(*args.batch);
    if (!in) reject_file(*args.batch, "cannot open pair file");
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    while (in >> src >> dst) {
      pairs.push_back({static_cast<graph::NodeId>(src),
                       static_cast<graph::NodeId>(dst)});
    }
  } else if (args.positional.size() == 2) {
    pairs.push_back({static_cast<graph::NodeId>(
                         std::strtoul(args.positional[0].c_str(), nullptr, 10)),
                     static_cast<graph::NodeId>(std::strtoul(
                         args.positional[1].c_str(), nullptr, 10))});
  } else {
    usage("query --op " + args.op + " needs SRC DST or --batch PAIRS.txt");
  }
  return pairs;
}

int cmd_query(const Args& args) {
  if (!args.socket_path && args.port < 0) {
    usage("query needs --socket PATH or --port N");
  }
  try {
    serve::Client client = args.socket_path
                               ? serve::Client::connect_unix(*args.socket_path)
                               : serve::Client::connect_tcp(args.host, args.port);
    if (args.op == "ping") {
      client.ping();
      std::cout << "pong\n";
    } else if (args.op == "list") {
      for (const serve::ArtifactSummary& a : client.list()) {
        std::cout << a.id << ' ' << a.name << " n=" << a.node_count << " kind="
                  << schemes::to_string(
                         static_cast<schemes::SchemeKind>(a.kind))
                  << "\n";
      }
    } else if (args.op == "reload") {
      std::cout << "reloaded, serving " << client.reload() << " artifact(s)\n";
    } else if (args.op == "next-hop") {
      const auto pairs = gather_query_pairs(args);
      const auto hops = client.next_hops(args.artifact_id, pairs);
      for (std::size_t i = 0; i < hops.size(); ++i) {
        std::cout << pairs[i].src << ' ' << pairs[i].dst << ' ' << hops[i]
                  << '\n';
      }
    } else if (args.op == "route") {
      const auto pairs = gather_query_pairs(args);
      const auto paths = client.routes(args.artifact_id, pairs);
      for (std::size_t i = 0; i < paths.size(); ++i) {
        std::cout << pairs[i].src;
        for (const graph::NodeId hop : paths[i]) std::cout << " -> " << hop;
        std::cout << "   (" << paths[i].size() << " hops)\n";
      }
    } else {
      usage("unknown query op " + args.op);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

int dispatch(const std::string& command, const Args& args) {
  if (command == "generate") return cmd_generate(args);
  if (command == "info") return cmd_info(args);
  if (command == "compile") return cmd_compile(args);
  if (command == "route") return cmd_route(args);
  if (command == "verify") return cmd_verify(args);
  if (command == "verify-artifact") return cmd_verify_artifact(args);
  if (command == "sizes") return cmd_sizes(args);
  if (command == "simulate") return cmd_simulate(args);
  if (command == "sweep") return cmd_sweep(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "query") return cmd_query(args);
  usage("unknown command " + command);
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << text << "\n";
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

int main(int argc, char** argv) {
  core::apply_threads_flag(argc, argv);  // accepted anywhere on the line
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Args args = parse(argc, argv);

  // The trace doubles as the run's wall clock for the metrics wall_ns
  // field; it only records spans while installed via TraceScope.
  obs::Trace trace;
  std::optional<obs::TraceScope> scope;
  if (args.trace_json) scope.emplace(trace);

  int rc = 0;
  try {
    rc = dispatch(command, args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  // Observability outputs are written even when the command reports
  // failure (e.g. a failed verify): that is when they matter most.
  try {
    if (args.metrics_json) {
      write_text_file(*args.metrics_json,
                      obs::metrics_json(obs::MetricsRegistry::global(),
                                        static_cast<std::int64_t>(trace.now_ns())));
    }
    if (args.trace_json) {
      scope.reset();
      write_text_file(*args.trace_json, trace.chrome_json());
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return rc;
}
