// Quickstart: sample an (almost-all) graph, compile a compact routing
// scheme, route a message hop by hop, and account for every bit.
//
//   $ ./quickstart [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  using namespace optrt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // 1. Draw a uniformly random graph and certify the Lemma 1–3 structure
  //    the paper's constructions rely on (true for a 1 − 1/n³ fraction).
  graph::Rng rng(seed);
  const graph::Graph g = core::certified_random_graph(n, rng);
  const auto cert = graph::certify(g);
  std::cout << "graph: n=" << n << "  |E|=" << g.edge_count()
            << "  diameter=2 (certified)\n"
            << "  max degree deviation " << cert.max_degree_deviation
            << " (bound " << cert.degree_deviation_bound << ")\n"
            << "  max cover size " << cert.max_cover_size << " (bound "
            << cert.cover_size_bound << ")\n\n";

  // 2. Compile the Theorem 1 compact scheme for model II∧α: ≤ 6n bits/node.
  const auto scheme = schemes::compile(g, model::kIIalpha);
  const auto space = scheme->space();
  std::cout << "scheme: " << scheme->name() << " (model "
            << scheme->routing_model().name() << ")\n"
            << "  total " << space.total_bits() << " bits, max node "
            << space.max_node_bits() << " bits (Theorem 1 bound: " << 6 * n
            << ")\n\n";

  // 3. Route one message by hand.
  const graph::NodeId src = 0;
  graph::NodeId dst = 0;
  for (graph::NodeId v = 1; v < n; ++v) {
    if (!g.has_edge(src, v)) {
      dst = v;  // pick a non-neighbour so the route is interesting
      break;
    }
  }
  std::cout << "route " << src << " -> " << dst << ": ";
  model::MessageHeader header;
  graph::NodeId at = src;
  while (at != dst) {
    std::cout << at << " ";
    header.came_from = at;
    at = scheme->next_hop(at, scheme->label_of(dst), header);
  }
  std::cout << dst << "\n\n";

  // 4. Verify the whole scheme: every pair, shortest path.
  const auto result = model::verify_scheme(g, *scheme);
  std::cout << "verified " << result.pairs_checked << " pairs: "
            << (result.ok() ? "all delivered" : "FAILURES") << ", max stretch "
            << result.max_stretch << "\n";
  return result.ok() ? 0 : 1;
}
