// Failure routing: the §1 motivation for full-information schemes made
// concrete. We run the same traffic through (a) the compact single-path
// scheme and (b) the full-information scheme while links fail, and compare
// delivery rates — the O(n³) bits buy rerouting.
//
//   $ ./failure_routing [n] [failures] [seed]
#include <cstdlib>
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  using namespace optrt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 96;
  const std::size_t failures =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  graph::Rng rng(seed);
  const graph::Graph g = core::certified_random_graph(n, rng);

  const schemes::CompactDiam2Scheme compact(g, {});
  const auto full = schemes::FullInformationScheme::standard(g);

  // Fail `failures` links drawn from the edge list (same seeded plan for
  // both runs; bounded and duplicate-free by construction).
  const net::FaultPlan plan =
      net::uniform_link_faults(g, failures, {.seed = seed + 1});

  graph::Rng traffic_rng(seed + 2);
  const auto traffic = net::uniform_random(n, 2000, traffic_rng);

  auto run = [&](const model::RoutingScheme& scheme, const char* name) {
    net::Simulator sim(g, scheme);
    sim.schedule(plan);
    for (const auto& [u, v] : traffic) sim.send(u, v);
    const auto stats = sim.run();
    std::cout << name << ": delivered " << stats.delivered << "/"
              << traffic.size() << "  dropped " << stats.dropped
              << "  mean hops "
              << core::TextTable::num(stats.mean_hops(), 3) << "  ("
              << scheme.space().total_bits() << " bits stored)\n";
    return stats;
  };

  std::cout << "n=" << n << ", |E|=" << g.edge_count() << ", "
            << plan.fail_count() << " failed links, " << traffic.size()
            << " messages\n\n";
  const auto compact_stats = run(compact, "compact   (Theorem 1, one path) ");
  const auto full_stats = run(full, "full-info (Theorem 10, all paths)");

  std::cout << "\nfull-information recovered "
            << (full_stats.delivered - compact_stats.delivered)
            << " messages the single-path scheme dropped.\n";
  return full_stats.delivered >= compact_stats.delivered ? 0 : 1;
}
