// Stretch/space trade-off: Theorems 1 → 3 → 4 → 5 on one graph. Shows how
// relaxing the stretch factor from 1 to O(log n) shrinks the routing
// scheme from Θ(n²) to O(n) bits.
//
//   $ ./stretch_tradeoff [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  using namespace optrt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 192;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  graph::Rng rng(seed);
  const graph::Graph g = core::certified_random_graph(n, rng);
  std::cout << "stretch/space trade-off on certified G(" << n << ", 1/2)\n\n";

  struct Row {
    const char* theorem;
    schemes::Objective objective;
    double stretch_bound;
  };
  const Row rows[] = {
      {"Thm 1 (shortest path)", schemes::Objective::kShortestPath, 1.0},
      {"Thm 3 (stretch < 2)", schemes::Objective::kStretchBelow2, 1.5},
      {"Thm 4 (stretch 2)", schemes::Objective::kStretch2, 2.0},
      {"Thm 5 (stretch O(log n))", schemes::Objective::kStretchLog,
       incompress::theorem5_stretch_bound(n)},
  };

  core::TextTable table({"construction", "scheme", "total bits", "bits/node",
                         "stretch bound", "measured stretch", "mean stretch"});
  for (const Row& row : rows) {
    schemes::CompileOptions opt;
    opt.objective = row.objective;
    const auto scheme = schemes::compile(g, model::kIIalpha, opt);
    const auto result = model::verify_scheme(g, *scheme);
    if (!result.ok()) {
      std::cerr << "verification failed for " << scheme->name() << "\n";
      return 1;
    }
    const auto bits = scheme->space().total_bits();
    table.add_row({row.theorem, scheme->name(), std::to_string(bits),
                   core::TextTable::num(static_cast<double>(bits) /
                                        static_cast<double>(n)),
                   core::TextTable::num(row.stretch_bound, 2),
                   core::TextTable::num(result.max_stretch, 2),
                   core::TextTable::num(result.mean_stretch, 3)});
  }
  table.print(std::cout);

  std::cout << "\nEvery measured stretch respects its theorem's bound, and "
               "space falls\nmonotonically: Θ(n²) → O(n log n) → "
               "O(n loglog n) → O(n).\n";
  return 0;
}
