// Distributed deployment story on the CONGEST protocol runtime
// (net/congest.hpp): build the Theorem 1 tables in-network — every node
// assembles its table from received messages only — persist them as an
// artifact, reload, and serve traffic: the full lifecycle a real system
// would run. Then the same lifecycle on an Internet-like topology, where
// Theorem 1 does not apply: elect a Thorup-Zwick landmark set in-network
// (shared-seed coin flips, landmark BFS floods, bounded strict-ball
// announcements, registration up the shortest-path DAG) and serve through
// the stretch-3 scheme.
//
//   $ ./distributed_build [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  using namespace optrt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  graph::Rng rng(seed);
  const graph::Graph g = core::certified_random_graph(n, rng);
  std::cout << "network: n=" << n << " |E|=" << g.edge_count() << "\n\n";

  // 1. One synchronous round of neighbour-list exchange over the real
  //    links; every node then builds its table from its local 2-hop view.
  const auto built = net::distributed_compact_construction(g);
  if (built.status != net::ConstructStatus::kOk) {
    std::cerr << "compact construction failed: " << to_string(built.status)
              << " (" << built.detail << ")\n";
    return 1;
  }
  std::uint64_t table_bits = 0;
  for (const auto& t : built.node_tables) table_bits += t.size();
  std::cout << "construction protocol: " << built.rounds << " round, "
            << built.messages << " messages, " << built.message_bits
            << " payload bits exchanged\n"
            << "tables built: " << table_bits << " bits total ("
            << table_bits / n << " bits/node avg)\n";

  // 2. Assemble the scheme from the in-network tables, snapshot it to an
  //    artifact, and reload.
  const schemes::CompactDiam2Scheme scheme(
      g, schemes::CompactDiam2Scheme::Options{},
      std::vector<bitio::BitVector>(built.node_tables));
  const auto artifact = schemes::serialize(scheme);
  const std::string path = "/tmp/optrt_distributed_build.ort";
  schemes::save_artifact(path, artifact);
  const auto loaded =
      schemes::deserialize_compact_diam2(schemes::load_artifact(path), g);
  std::cout << "artifact: " << artifact.size() << " bits -> " << path
            << " (reloaded ok)\n\n";

  // 3. Serve a permutation workload through the reloaded scheme with
  //    store-and-forward links.
  net::SimulatorConfig config;
  config.serialize_links = true;
  net::Simulator sim(g, loaded, config);
  graph::Rng traffic_rng(seed + 1);
  const auto traffic = net::permutation_traffic(n, traffic_rng);
  for (const auto& [u, v] : traffic) sim.send(u, v);
  const auto stats = sim.run();
  std::cout << "traffic: " << stats.delivered << "/" << traffic.size()
            << " delivered, mean hops "
            << core::TextTable::num(stats.mean_hops(), 2) << ", makespan "
            << stats.makespan << ", max link load " << stats.max_link_load
            << "\n";

  // 4. And certify the routes are shortest paths.
  const auto result = model::verify_scheme(g, loaded);
  std::cout << "verified: max stretch " << result.max_stretch << " over "
            << result.pairs_checked << " pairs\n\n";

  // 5. The same lifecycle where Theorem 1 does not apply: a power-law
  //    (Internet-like) topology. Elect a TZ landmark set in-network —
  //    coin flips, landmark floods, bounded cluster announcements — and
  //    serve through the stretch-3 scheme.
  const graph::Graph pl =
      graph::TopologyFamily::power_law(2).make(n, seed + 2);
  std::cout << "power-law network: n=" << n << " |E|=" << pl.edge_count()
            << "\n";
  schemes::TzOptions tz_opt;
  tz_opt.seed = seed + 3;
  const auto tz = net::distributed_tz_construction(pl, tz_opt);
  if (tz.status != net::ConstructStatus::kOk) {
    std::cerr << "tz construction failed: " << to_string(tz.status) << " ("
              << tz.detail << ")\n";
    return 1;
  }
  std::cout << "tz in-network build: " << tz.landmark_count
            << " landmarks (attempt " << tz.accepted_attempt << "), "
            << tz.rounds << " rounds, " << tz.messages << " messages, "
            << tz.message_bits << " payload bits exchanged\n";
  for (const auto& phase : tz.phase_stats) {
    std::cout << "  phase " << phase.label << ": " << phase.rounds
              << " rounds, " << phase.messages << " messages, "
              << phase.message_bits << " bits\n";
  }

  const auto tz_artifact = schemes::serialize(*tz.scheme);
  const std::string tz_path = "/tmp/optrt_distributed_build_tz.ort";
  schemes::save_artifact(tz_path, tz_artifact);
  const schemes::TzScheme tz_loaded =
      schemes::deserialize_tz(schemes::load_artifact(tz_path), pl);
  std::cout << "artifact: " << tz_artifact.size() << " bits -> " << tz_path
            << " (reloaded ok)\n";

  net::Simulator tz_sim(pl, tz_loaded, config);
  graph::Rng tz_traffic_rng(seed + 4);
  const auto tz_traffic = net::permutation_traffic(n, tz_traffic_rng);
  for (const auto& [u, v] : tz_traffic) tz_sim.send(u, v);
  const auto tz_stats = tz_sim.run();
  const auto tz_result = model::verify_scheme_stretch(pl, tz_loaded, 3.0);
  std::cout << "traffic: " << tz_stats.delivered << "/" << tz_traffic.size()
            << " delivered, mean hops "
            << core::TextTable::num(tz_stats.mean_hops(), 2)
            << "\nverified: max stretch " << tz_result.base.max_stretch
            << ", avg stretch "
            << core::TextTable::num(tz_result.base.mean_stretch, 3)
            << " over " << tz_result.base.pairs_checked
            << " pairs, bound 3 holds: "
            << (tz_result.ok() ? "yes" : "NO") << "\n";

  return result.ok() && stats.dropped == 0 && tz_result.ok() &&
                 tz_stats.dropped == 0
             ? 0
             : 1;
}
