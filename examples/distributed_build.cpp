// Distributed deployment story: build the Theorem 1 tables in-network
// (one neighbour-exchange round), persist them as an artifact, reload, and
// serve traffic — the full lifecycle a real system would run.
//
//   $ ./distributed_build [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  using namespace optrt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  graph::Rng rng(seed);
  const graph::Graph g = core::certified_random_graph(n, rng);
  std::cout << "network: n=" << n << " |E|=" << g.edge_count() << "\n\n";

  // 1. One synchronous round of neighbour-list exchange builds every
  //    node's table locally.
  const auto built = net::distributed_compact_construction(g);
  std::uint64_t table_bits = 0;
  for (const auto& t : built.node_tables) table_bits += t.size();
  std::cout << "construction protocol: " << built.rounds << " round, "
            << built.messages << " messages, " << built.message_bits
            << " payload bits exchanged\n"
            << "tables built: " << table_bits << " bits total ("
            << table_bits / n << " bits/node avg)\n";

  // 2. Assemble the scheme from the in-network tables, snapshot it to an
  //    artifact, and reload.
  const schemes::CompactDiam2Scheme scheme(
      g, schemes::CompactDiam2Scheme::Options{},
      std::vector<bitio::BitVector>(built.node_tables));
  const auto artifact = schemes::serialize(scheme);
  const std::string path = "/tmp/optrt_distributed_build.ort";
  schemes::save_artifact(path, artifact);
  const auto loaded =
      schemes::deserialize_compact_diam2(schemes::load_artifact(path), g);
  std::cout << "artifact: " << artifact.size() << " bits -> " << path
            << " (reloaded ok)\n\n";

  // 3. Serve a permutation workload through the reloaded scheme with
  //    store-and-forward links.
  net::SimulatorConfig config;
  config.serialize_links = true;
  net::Simulator sim(g, loaded, config);
  graph::Rng traffic_rng(seed + 1);
  const auto traffic = net::permutation_traffic(n, traffic_rng);
  for (const auto& [u, v] : traffic) sim.send(u, v);
  const auto stats = sim.run();
  std::cout << "traffic: " << stats.delivered << "/" << traffic.size()
            << " delivered, mean hops "
            << core::TextTable::num(stats.mean_hops(), 2) << ", makespan "
            << stats.makespan << ", max link load " << stats.max_link_load
            << "\n";

  // 4. And certify the routes are shortest paths.
  const auto result = model::verify_scheme(g, loaded);
  std::cout << "verified: max stretch " << result.max_stretch << " over "
            << result.pairs_checked << " pairs\n";
  return result.ok() && stats.dropped == 0 ? 0 : 1;
}
