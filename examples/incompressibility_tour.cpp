// Incompressibility tour: the paper's proof method as a live demo. Each
// lemma/theorem proof is a description scheme; we run them on structured
// graphs (where they compress) and on a certified random graph (where they
// cannot) and print the exact bit accounting.
//
//   $ ./incompressibility_tour [n]
#include <cstdlib>
#include <iostream>

#include "core/optrt.hpp"

int main(int argc, char** argv) {
  using namespace optrt;
  using incompress::Description;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;

  core::TextTable table(
      {"codec", "graph", "E(G) bits", "description bits", "savings"});

  auto add = [&table](const char* codec, const char* family,
                      const Description& d) {
    table.add_row({codec, family, std::to_string(d.original_bits),
                   std::to_string(d.bits.size()),
                   std::to_string(d.savings())});
  };

  // Lemma 1: deviant degrees compress.
  add("lemma1 (degree)", "star", incompress::lemma1_encode(graph::star(n), 0));
  graph::Rng rng(1);
  const graph::Graph random = core::certified_random_graph(n, rng);
  add("lemma1 (degree)", "G(n,1/2)",
      incompress::lemma1_encode(random, incompress::most_deviant_node(random)));

  // Lemma 2: diameter > 2 compresses.
  const graph::Graph long_graph = graph::chain(n);
  const auto pair = incompress::find_distant_pair(long_graph);
  add("lemma2 (diameter)", "chain",
      incompress::lemma2_encode(long_graph, pair->first, pair->second));
  std::cout << "lemma2 witness on G(n,1/2): "
            << (incompress::find_distant_pair(random) ? "FOUND (!)"
                                                      : "none — diameter 2")
            << "\n";

  // Theorem 6: a routing function reveals one edge per destination.
  const auto t6 = incompress::theorem6_encode(random, 0);
  add("theorem6 (F(u))", "G(n,1/2)", t6.description);
  std::cout << "theorem6: any shortest-path F(u) in II.alpha needs >= "
            << t6.implied_function_lower_bound() << " bits here (n/2 = "
            << n / 2 << ")\n";

  // Theorem 10: a full-information function reveals a quarter of E(G).
  const auto t10 = incompress::theorem10_encode(random, 0);
  add("theorem10 (full info)", "G(n,1/2)", t10.description);
  std::cout << "theorem10: any full-information F(u) needs >= "
            << t10.implied_function_lower_bound() << " bits here (n²/4 = "
            << n * n / 4 << ")\n\n";

  // Whole-graph enumerative compressor: C(E(G)|n) upper bounds.
  for (const auto& [name, graph_value] :
       {std::pair<const char*, graph::Graph>{"chain", graph::chain(n)},
        {"G_B (Figure 1)", graph::lower_bound_gb(n / 3)},
        {"G(n,1/2)", random}}) {
    Description d;
    d.bits = incompress::compress_graph(graph_value);
    d.original_bits =
        graph_value.node_count() * (graph_value.node_count() - 1) / 2;
    add("enumerative compressor", name, d);
  }

  table.print(std::cout);

  // Footnote 1: the port assignment as a covert channel.
  const std::size_t d = 40;
  const std::size_t capacity = incompress::payload_capacity_bits(d);
  bitio::BitVector secret(capacity);
  for (std::size_t i = 0; i < capacity; i += 3) secret.set(i, true);
  const auto perm = incompress::embed_payload(d, secret);
  const bool recovered = incompress::extract_payload(perm) == secret;
  std::cout << "\nfootnote 1: " << capacity << " bits hidden in a degree-"
            << d << " port assignment and " << (recovered ? "recovered"
                                                          : "LOST")
            << " — why the paper excludes II with free ports.\n";

  std::cout
      << "\nRound-trip guarantee: every description above decodes back to "
         "the exact\ninput graph — run the test suite to see it checked "
         "(lemma_codecs_test,\ntheorem_codecs_test, arith_compressor_test, "
         "permutation_code_test).\n";
  return recovered ? 0 : 1;
}
