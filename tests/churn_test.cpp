// Live-churn robustness (ROADMAP item 5a): churn-plan determinism and
// grammar, connectivity preservation, the incremental-repair differential
// oracle — after every quiesce point of a seeded churn stream the
// repaired scheme must equal a fresh centralized build, bit-identical
// tables for full-table/compact-diam2 and route-fingerprint-identical for
// TZ, at 1, 2, and 8 threads — plus staleness-window pins and the
// incremental-vs-force-rebuild work accounting bench_churn relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/optrt.hpp"
#include "net/churn.hpp"
#include "schemes/errors.hpp"
#include "schemes/repair.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::TopologyFamily;

/// First seed ≥ base whose family member is connected (deterministic).
Graph connected_member(const TopologyFamily& family, std::size_t n,
                       std::uint64_t base) {
  for (std::uint64_t seed = base;; ++seed) {
    Graph g = family.make(n, seed);
    if (graph::is_connected(g)) return g;
  }
}

// --- Spec grammar ---------------------------------------------------------

TEST(ChurnOptions, ParsesTheSpecGrammar) {
  const net::ChurnOptions a = net::ChurnOptions::parse("uniform");
  EXPECT_EQ(a.model, net::FaultModel::kUniform);
  EXPECT_EQ(a.events, 32u);  // defaults untouched
  EXPECT_EQ(a.mean_gap, 4u);
  EXPECT_EQ(a.quiesce_every, 8u);

  const net::ChurnOptions b = net::ChurnOptions::parse("targeted:16");
  EXPECT_EQ(b.model, net::FaultModel::kTargeted);
  EXPECT_EQ(b.events, 16u);

  const net::ChurnOptions c = net::ChurnOptions::parse("partition:24,2,6");
  EXPECT_EQ(c.model, net::FaultModel::kPartition);
  EXPECT_EQ(c.events, 24u);
  EXPECT_EQ(c.mean_gap, 2u);
  EXPECT_EQ(c.quiesce_every, 6u);
  EXPECT_EQ(c.name(), "partition:24,2,6");

  const net::ChurnOptions d = net::ChurnOptions::parse("nodes:8,1");
  EXPECT_EQ(d.model, net::FaultModel::kNodes);
  EXPECT_EQ(d.mean_gap, 1u);

  // parse(name()) round-trips the spec-carried fields.
  const net::ChurnOptions e = net::ChurnOptions::parse(c.name());
  EXPECT_EQ(e.model, c.model);
  EXPECT_EQ(e.events, c.events);
  EXPECT_EQ(e.mean_gap, c.mean_gap);
  EXPECT_EQ(e.quiesce_every, c.quiesce_every);

  for (const char* bad :
       {"", "bogus", "uniform:", "uniform:0", "uniform:8,0", "uniform:8,2,0",
        "uniform:8,2,3,4", "uniform:x", "targeted:8,two"}) {
    EXPECT_THROW(net::ChurnOptions::parse(bad), std::invalid_argument)
        << "spec '" << bad << "' should not parse";
  }
}

// --- Plan generation ------------------------------------------------------

TEST(ChurnPlan, SameSeedSamePlanDifferentSeedDifferentPlan) {
  const Graph g = connected_member(TopologyFamily::uniform(), 24, 5);
  net::ChurnOptions opt;
  opt.seed = 7;
  opt.events = 32;
  const net::ChurnPlan a = net::make_churn_plan(g, opt);
  const net::ChurnPlan b = net::make_churn_plan(g, opt);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.quiesce_after, b.quiesce_after);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  opt.seed = 8;
  const net::ChurnPlan c = net::make_churn_plan(g, opt);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(ChurnPlan, QuiesceIndicesEveryKthAndAlwaysTheLast) {
  const Graph g = connected_member(TopologyFamily::uniform(), 20, 3);
  net::ChurnOptions opt;
  opt.events = 10;
  opt.quiesce_every = 4;
  const net::ChurnPlan plan = net::make_churn_plan(g, opt);
  EXPECT_EQ(plan.plan.size(), 10u);
  EXPECT_EQ(plan.quiesce_after, (std::vector<std::size_t>{3, 7, 9}));
}

TEST(ChurnPlan, PreservesConnectivityUnderLinkChurn) {
  // Replay each model's plan through LiveTopology: with preservation on,
  // the live graph must stay connected after every single event.
  for (const net::FaultModel model :
       {net::FaultModel::kUniform, net::FaultModel::kTargeted,
        net::FaultModel::kPartition}) {
    const Graph g = connected_member(TopologyFamily::ring(), 16, 1);
    net::ChurnOptions opt;
    opt.model = model;
    opt.events = 24;
    opt.mean_gap = 1;
    const net::ChurnPlan plan = net::make_churn_plan(g, opt);
    net::LiveTopology live(g);
    std::size_t i = 0;
    for (const net::FaultEvent& e : plan.plan.events()) {
      live.apply(e);
      EXPECT_TRUE(graph::is_connected(live.live_graph()))
          << net::to_string(model) << " event " << i;
      ++i;
    }
  }
}

TEST(ChurnPlan, EventTimesAreStrictlyIncreasing) {
  const Graph g = connected_member(TopologyFamily::uniform(), 20, 2);
  net::ChurnOptions opt;
  opt.events = 40;
  opt.mean_gap = 3;
  const net::ChurnPlan plan = net::make_churn_plan(g, opt);
  std::uint64_t prev = 0;
  for (const net::FaultEvent& e : plan.plan.events()) {
    EXPECT_GT(e.time, prev);  // gaps are drawn from [1, 2·mean_gap]
    EXPECT_LE(e.time - prev, 2 * opt.mean_gap);
    prev = e.time;
  }
}

// --- The differential oracle (the tentpole's acceptance criterion) --------

struct OracleCase {
  const char* family;
  std::size_t n;
  const char* kind;
};

TEST(ChurnOracle, RepairedMatchesFreshAfterEveryQuiescePoint) {
  // Four topology families, all three repairable kinds where applicable,
  // at 1, 2, and 8 oracle threads: every quiesce point must certify and
  // the whole deterministic report must be thread-count invariant.
  const OracleCase cases[] = {
      {"uniform", 20, "full-table"},  {"uniform", 20, "compact-diam2"},
      {"uniform", 20, "tz"},          {"ba:2", 20, "full-table"},
      {"ba:2", 20, "tz"},             {"grid", 16, "full-table"},
      {"grid", 16, "tz"},             {"ring", 12, "full-table"},
      {"ring", 12, "tz"},
  };
  for (const OracleCase& c : cases) {
    SCOPED_TRACE(std::string(c.family) + "/" + c.kind);
    const Graph g =
        connected_member(TopologyFamily::parse(c.family), c.n, 11);
    net::ChurnOptions copt;
    copt.seed = 23;
    copt.events = 16;
    copt.mean_gap = 2;
    copt.quiesce_every = 4;
    const net::ChurnPlan plan = net::make_churn_plan(g, copt);

    std::vector<net::ChurnReport> reports;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      auto rs = schemes::make_repairable(c.kind, g, 9);
      net::ChurnSessionConfig cfg;
      cfg.threads = threads;
      cfg.messages = 32;
      const net::ChurnReport r = net::run_churn_session(*rs, plan, cfg);
      EXPECT_EQ(r.quiesce_mismatches, 0u)
          << "threads=" << threads << ": " << r.first_mismatch;
      EXPECT_NE(r.status, net::ChurnStatus::kMismatch);
      EXPECT_GE(r.quiesce_points, 4u);
      reports.push_back(r);
    }
    // Thread-count invariance of every deterministic field.
    for (std::size_t i = 1; i < reports.size(); ++i) {
      EXPECT_EQ(reports[i].traffic.delivered, reports[0].traffic.delivered);
      EXPECT_EQ(reports[i].traffic.total_hops, reports[0].traffic.total_hops);
      EXPECT_EQ(reports[i].stale_sent, reports[0].stale_sent);
      EXPECT_EQ(reports[i].deltas_applied, reports[0].deltas_applied);
      EXPECT_EQ(reports[i].repair.work(), reports[0].repair.work());
      EXPECT_EQ(reports[i].status, reports[0].status);
    }
  }
}

TEST(ChurnOracle, SingleEventRepairsAreExact) {
  // One fail then one repair of the same link, oracle after each — the
  // smallest possible churn stream, per repairable kind.
  const Graph g = connected_member(TopologyFamily::uniform(), 16, 3);
  for (const char* kind : {"full-table", "compact-diam2", "tz"}) {
    SCOPED_TRACE(kind);
    auto rs = schemes::make_repairable(kind, g, 5);
    // Pick a non-bridge edge deterministically: first edge whose removal
    // keeps the graph connected.
    const auto edges = net::edge_list(g);
    model::TopologyEvent down;
    for (const auto& [u, v] : edges) {
      Graph h(g.node_count());
      for (const auto& [a, b] : edges) {
        if (std::pair(a, b) != std::pair(u, v)) h.add_edge(a, b);
      }
      if (graph::is_connected(h)) {
        down = {u, v, false};
        break;
      }
    }
    // The oracle covers every outcome: a patched/rebuilt scheme must be
    // bit-identical (fingerprint-identical for TZ) to a fresh build, and
    // an inapplicable one must have fresh-build parity.
    rs->apply_event(down);
    schemes::RepairMatch m = schemes::repaired_matches_fresh(*rs);
    EXPECT_TRUE(m.match) << m.detail;

    const model::TopologyEvent up{down.u, down.v, true};
    rs->apply_event(up);
    EXPECT_TRUE(rs->available());  // the original topology is back
    m = schemes::repaired_matches_fresh(*rs);
    EXPECT_TRUE(m.match) << m.detail;
  }
}

// --- Staleness ------------------------------------------------------------

TEST(ChurnSession, RepairLagWidensTheStalenessWindow) {
  const Graph g = connected_member(TopologyFamily::uniform(), 20, 7);
  net::ChurnOptions copt;
  copt.events = 16;
  copt.mean_gap = 2;
  const net::ChurnPlan plan = net::make_churn_plan(g, copt);

  std::vector<std::size_t> stale;
  for (const std::uint64_t lag : {std::uint64_t{0}, std::uint64_t{8}}) {
    auto rs = schemes::make_repairable("full-table", g, 1);
    net::ChurnSessionConfig cfg;
    cfg.repair_lag = lag;
    cfg.messages = 200;
    cfg.verify_at_quiesce = false;
    const net::ChurnReport r = net::run_churn_session(*rs, plan, cfg);
    EXPECT_EQ(r.status, net::ChurnStatus::kUnverified);
    EXPECT_EQ(r.traffic.sent, 200u);  // every message resolves eventually
    stale.push_back(r.stale_sent);
  }
  EXPECT_GE(stale[1], stale[0]);
  EXPECT_GT(stale[1], 0u);  // a long lag must catch some traffic stale
}

TEST(ChurnSession, ReportIsDeterministicAcrossRuns) {
  const Graph g = connected_member(TopologyFamily::parse("ba:2"), 18, 2);
  net::ChurnOptions copt;
  copt.events = 12;
  const net::ChurnPlan plan = net::make_churn_plan(g, copt);
  net::ChurnSessionConfig cfg;
  cfg.messages = 64;
  auto run = [&] {
    auto rs = schemes::make_repairable("tz", g, 3);
    return net::run_churn_session(*rs, plan, cfg);
  };
  const net::ChurnReport a = run();
  const net::ChurnReport b = run();
  EXPECT_EQ(a.traffic.delivered, b.traffic.delivered);
  EXPECT_EQ(a.traffic.total_hops, b.traffic.total_hops);
  EXPECT_EQ(a.traffic.makespan, b.traffic.makespan);
  EXPECT_EQ(a.stale_sent, b.stale_sent);
  EXPECT_EQ(a.repair.work(), b.repair.work());
  EXPECT_EQ(a.quiesce_points, b.quiesce_points);
  EXPECT_EQ(a.status, b.status);
}

// --- Work accounting ------------------------------------------------------

TEST(ChurnWork, IncrementalBeatsForceRebuildOnSparseFamilies) {
  // The bench_churn acceptance claim, pinned as a test: on at least the
  // sparse families, the incremental repair stream does strictly less
  // total work (tables + distance rows) than rebuild-everything-always.
  for (const char* family : {"ba:2", "ring"}) {
    SCOPED_TRACE(family);
    const Graph g = connected_member(TopologyFamily::parse(family), 24, 4);
    net::ChurnOptions copt;
    copt.events = 24;
    copt.mean_gap = 2;
    const net::ChurnPlan plan = net::make_churn_plan(g, copt);

    std::vector<std::uint64_t> work;
    for (const bool force : {false, true}) {
      auto rs = schemes::make_repairable("full-table", g, 1,
                                         {.force_rebuild = force});
      net::ChurnSessionConfig cfg;
      cfg.messages = 16;
      const net::ChurnReport r = net::run_churn_session(*rs, plan, cfg);
      EXPECT_EQ(r.quiesce_mismatches, 0u) << r.first_mismatch;
      work.push_back(r.repair.work());
    }
    EXPECT_LT(work[0], work[1])
        << "incremental=" << work[0] << " force=" << work[1];
  }
}

TEST(ChurnWork, ForceRebuildCountsEveryEventAsRebuilt) {
  const Graph g = connected_member(TopologyFamily::uniform(), 16, 9);
  net::ChurnOptions copt;
  copt.events = 8;
  const net::ChurnPlan plan = net::make_churn_plan(g, copt);
  auto rs =
      schemes::make_repairable("full-table", g, 1, {.force_rebuild = true});
  const net::ChurnReport r = net::run_churn_session(*rs, plan, {});
  EXPECT_EQ(r.repair.rebuilt, r.repair.events);
  EXPECT_EQ(r.repair.patched, 0u);
  EXPECT_EQ(r.repair.noops, 0u);
}

// --- Repairable surface edge cases ----------------------------------------

TEST(Repairable, UnknownKindThrows) {
  const Graph g = connected_member(TopologyFamily::uniform(), 12, 1);
  EXPECT_THROW(schemes::make_repairable("interval", g, 1),
               std::invalid_argument);
}

TEST(Repairable, CompactGoesStaleAndRecovers) {
  // Drive compact-diam2 through node churn until it reports inapplicable
  // at least once, then repair everything: it must recover, and the
  // oracle must hold at the end.
  const Graph g = connected_member(TopologyFamily::uniform(), 14, 6);
  auto rs = schemes::make_repairable("compact-diam2", g, 1);
  net::LiveTopology live(g);
  // Fail node 0 — losing a whole star is the quickest way to break the
  // diam-2 neighbour-domination condition.
  std::vector<model::TopologyEvent> deltas =
      live.apply({1, net::FaultKind::kNodeFail, 0, 0});
  for (const auto& d : deltas) rs->apply_event(d);
  schemes::RepairMatch m = schemes::repaired_matches_fresh(*rs);
  EXPECT_TRUE(m.match) << m.detail;  // parity even when both inapplicable
  // Bring it back: available again and bit-identical to fresh.
  deltas = live.apply({2, net::FaultKind::kNodeRepair, 0, 0});
  for (const auto& d : deltas) rs->apply_event(d);
  EXPECT_TRUE(rs->available());
  m = schemes::repaired_matches_fresh(*rs);
  EXPECT_TRUE(m.match) << m.detail;
}

}  // namespace
}  // namespace optrt
