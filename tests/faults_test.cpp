// Property tests for the fault-injection layer: per-seed bit-identical
// plans and stats (at any thread count), fail+repair no-ops, nested
// failure prefixes, and delivery monotonicity for full-information
// routing. All randomness is seeded, so every property is checked
// deterministically.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "net/faults.hpp"
#include "net/simulator.hpp"
#include "net/workload.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"

namespace optrt::net {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

std::string stats_key(const SimulationStats& s) {
  std::ostringstream out;
  out << s.sent << '|' << s.delivered << '|' << s.dropped << '|'
      << s.total_hops << '|' << s.makespan << '|' << s.max_link_load << '|'
      << s.total_retries << '|' << s.deflections << '|' << s.fallback_messages
      << '|' << s.shortest_hops;
  return out.str();
}

TEST(FaultPlan, SameSeedIsBitIdentical) {
  const Graph g = certified(48, 1);
  for (const FaultModel model :
       {FaultModel::kUniform, FaultModel::kTargeted, FaultModel::kPartition,
        FaultModel::kNodes}) {
    const FaultPlan a = make_fault_plan(g, model, 40, {.seed = 7});
    const FaultPlan b = make_fault_plan(g, model, 40, {.seed = 7});
    EXPECT_EQ(a, b) << to_string(model);
    EXPECT_EQ(a.fingerprint(), b.fingerprint()) << to_string(model);
  }
  // Seed-sensitive generators produce different plans for different seeds.
  for (const FaultModel model :
       {FaultModel::kUniform, FaultModel::kPartition, FaultModel::kNodes}) {
    const FaultPlan a = make_fault_plan(g, model, 40, {.seed = 7});
    const FaultPlan b = make_fault_plan(g, model, 40, {.seed = 8});
    EXPECT_NE(a.fingerprint(), b.fingerprint()) << to_string(model);
  }
}

TEST(FaultPlan, LinkFailuresAreRealEdgesAndDeduped) {
  const Graph g = certified(48, 2);
  for (const FaultModel model :
       {FaultModel::kUniform, FaultModel::kTargeted, FaultModel::kPartition}) {
    const FaultPlan plan = make_fault_plan(g, model, 100, {.seed = 3});
    EXPECT_EQ(plan.fail_count(), 100u);
    std::set<std::pair<NodeId, NodeId>> seen;
    for (const FaultEvent& e : plan.events()) {
      ASSERT_EQ(e.kind, FaultKind::kLinkFail);
      EXPECT_TRUE(g.has_edge(e.u, e.v));
      EXPECT_TRUE(seen.emplace(std::min(e.u, e.v), std::max(e.u, e.v)).second)
          << "duplicate edge in " << to_string(model);
    }
  }
  // Requests beyond |E| are clamped, not looped on.
  const FaultPlan all =
      uniform_link_faults(g, g.edge_count() * 10, {.seed = 4});
  EXPECT_EQ(all.fail_count(), g.edge_count());
}

TEST(FaultPlan, UniformPlansAreNestedPerSeed) {
  const Graph g = certified(48, 3);
  const FaultPlan small = uniform_link_faults(g, 25, {.seed = 11});
  const FaultPlan large = uniform_link_faults(g, 90, {.seed = 11});
  ASSERT_GE(large.size(), small.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small.events()[i], large.events()[i]);
  }
}

TEST(FaultPlan, RepairScheduleMirrorsFailures) {
  const Graph g = certified(48, 4);
  const FaultPlan plan = uniform_link_faults(
      g, 30, {.seed = 5, .fail_time = 10, .repair_after = 7});
  EXPECT_EQ(plan.size(), 60u);
  EXPECT_EQ(plan.fail_count(), 30u);
  for (const FaultEvent& e : plan.events()) {
    if (e.kind == FaultKind::kLinkFail) {
      EXPECT_EQ(e.time, 10u);
    } else {
      ASSERT_EQ(e.kind, FaultKind::kLinkRepair);
      EXPECT_EQ(e.time, 17u);
    }
  }
}

TEST(FaultPlan, FailThenRepairOfSameLinkIsNoOp) {
  const Graph g = certified(48, 5);
  const auto scheme = schemes::FullTableScheme::standard(g);
  const auto traffic = all_pairs(48);

  const auto run_with = [&](const FaultPlan& plan) {
    Simulator sim(g, scheme, {.measure_stretch = true});
    sim.schedule(plan);
    for (const auto& [u, v] : traffic) sim.send(u, v, /*at_time=*/5);
    return stats_key(sim.run());
  };

  // Same instant: fail immediately undone by repair (stable plan order).
  FaultPlan same_instant;
  same_instant.add({0, FaultKind::kLinkFail, 0, g.neighbors(0)[0]});
  same_instant.add({0, FaultKind::kLinkRepair, 0, g.neighbors(0)[0]});
  // Fail at 0, repair at 1 — all traffic flows at t >= 5, after the repair.
  const FaultPlan repaired_before_traffic = uniform_link_faults(
      g, 60, {.seed = 6, .fail_time = 0, .repair_after = 1});

  const std::string baseline = run_with(FaultPlan{});
  EXPECT_EQ(run_with(same_instant), baseline);
  EXPECT_EQ(run_with(repaired_before_traffic), baseline);

  Simulator sim(g, scheme);
  sim.schedule(same_instant);
  sim.run();
  EXPECT_TRUE(sim.link_up(0, g.neighbors(0)[0]));
}

TEST(FaultPlan, NodeFaultIsolatesAndRepairRestores) {
  const Graph g = graph::star(6);
  const auto scheme = schemes::FullTableScheme::standard(g);
  // Failing the hub (node 0) severs every leaf pair; repairing it at t=10
  // lets later traffic through.
  FaultPlan plan;
  plan.add({0, FaultKind::kNodeFail, 0, 0});
  plan.add({10, FaultKind::kNodeRepair, 0, 0});
  Simulator sim(g, scheme);
  sim.schedule(plan);
  const auto blocked = sim.send(1, 2, 0);
  const auto after_repair = sim.send(3, 4, 10);
  const SimulationStats stats = sim.run();
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_FALSE(sim.records()[blocked].delivered);
  EXPECT_TRUE(sim.records()[blocked].dropped_on_failure);
  EXPECT_TRUE(sim.records()[after_repair].delivered);
  EXPECT_TRUE(sim.node_up(0));
}

TEST(FaultSweep, StatsBitIdenticalAcrossThreadCounts) {
  // The bench_failures shape in miniature: a seeded grid of (graph,
  // fraction, scheme) cells, each deriving every input from its own
  // SplitMix64 stream. The serialized stats vector must not depend on the
  // worker count.
  const std::vector<std::uint64_t> graph_seeds = {1, 2};
  const std::vector<std::size_t> counts = {0, 60, 200};
  const std::size_t cells = graph_seeds.size() * counts.size() * 2;

  const auto sweep = [&](std::size_t threads) {
    return core::parallel_map<std::string>(
        threads, cells, [&](std::size_t idx) {
          const std::size_t variant = idx % 2;
          const std::size_t c = (idx / 2) % counts.size();
          const std::uint64_t gs = graph_seeds[idx / (2 * counts.size())];
          Rng rng(core::point_seed(17, 48, gs));
          const Graph g = core::certified_random_graph(48, rng);
          const FaultPlan plan = uniform_link_faults(
              g, counts[c], {.seed = core::point_seed(17, gs, 1)});
          Rng traffic_rng(core::point_seed(17, gs, 2));
          const auto traffic = uniform_random(48, 500, traffic_rng);
          std::unique_ptr<model::RoutingScheme> scheme;
          if (variant == 0) {
            scheme = std::make_unique<schemes::CompactDiam2Scheme>(
                g, schemes::CompactDiam2Scheme::Options{});
          } else {
            scheme = std::make_unique<schemes::FullInformationScheme>(
                schemes::FullInformationScheme::standard(g));
          }
          Simulator sim(g, *scheme, {.measure_stretch = true});
          sim.schedule(plan);
          for (const auto& [u, v] : traffic) sim.send(u, v);
          return stats_key(sim.run());
        });
  };

  const auto at1 = sweep(1);
  EXPECT_EQ(sweep(2), at1);
  EXPECT_EQ(sweep(8), at1);
}

TEST(FaultSweep, FullInformationDeliveryMonotoneInFailureCount) {
  // Uniform plans are prefix-nested per seed, so growing the count only
  // removes shortest-path edges — delivered pairs can only shrink.
  for (const std::uint64_t graph_seed : {1ull, 2ull, 3ull}) {
    const Graph g = certified(64, graph_seed);
    const auto scheme = schemes::FullInformationScheme::standard(g);
    const auto traffic = all_pairs(64);
    std::size_t previous = traffic.size() + 1;
    for (const std::size_t count : {0u, 40u, 80u, 160u, 320u}) {
      Simulator sim(g, scheme);
      sim.schedule(uniform_link_faults(g, count, {.seed = 21}));
      for (const auto& [u, v] : traffic) sim.send(u, v);
      const SimulationStats stats = sim.run();
      EXPECT_LE(stats.delivered, previous)
          << "graph seed " << graph_seed << ", count " << count;
      previous = stats.delivered;
    }
  }
}

TEST(FaultModelNames, RoundTrip) {
  for (const FaultModel model :
       {FaultModel::kUniform, FaultModel::kTargeted, FaultModel::kPartition,
        FaultModel::kNodes}) {
    const auto parsed = parse_fault_model(to_string(model));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, model);
  }
  EXPECT_FALSE(parse_fault_model("meteor").has_value());
}

// --- LiveTopology edge-case pins (the churn layer's event expander) -------

TEST(LiveTopology, RepairingANeverFailedLinkIsADeterministicNoOp) {
  const Graph g = certified(12, 3);
  const auto edges = edge_list(g);
  LiveTopology live(g);
  // Repair of a live link, twice, plus repair of a non-edge: no deltas,
  // no state change.
  const auto [u, v] = edges.front();
  EXPECT_TRUE(live.apply({1, FaultKind::kLinkRepair, u, v}).empty());
  EXPECT_TRUE(live.apply({1, FaultKind::kLinkRepair, u, v}).empty());
  EXPECT_TRUE(live.apply({1, FaultKind::kLinkRepair, u, u}).empty());
  EXPECT_EQ(live.down_link_count(), 0u);
  EXPECT_TRUE(live.link_live(u, v));
}

TEST(LiveTopology, DuplicateFailAndRepairAtTheSameTickAreNoOps) {
  const Graph g = certified(12, 3);
  const auto [u, v] = edge_list(g).front();
  LiveTopology live(g);

  // First fail emits exactly one down delta; the same-tick duplicate is
  // swallowed.
  auto deltas = live.apply({5, FaultKind::kLinkFail, u, v});
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas.front(), (model::TopologyEvent{u, v, false}));
  EXPECT_TRUE(live.apply({5, FaultKind::kLinkFail, u, v}).empty());
  EXPECT_EQ(live.down_link_count(), 1u);

  // Same for repair: one up delta, then a same-tick duplicate no-op.
  deltas = live.apply({5, FaultKind::kLinkRepair, u, v});
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas.front(), (model::TopologyEvent{u, v, true}));
  EXPECT_TRUE(live.apply({5, FaultKind::kLinkRepair, u, v}).empty());
  EXPECT_EQ(live.down_link_count(), 0u);

  // Node events: duplicate fail and duplicate repair are no-ops too.
  const auto first = live.apply({6, FaultKind::kNodeFail, u, u});
  EXPECT_EQ(first.size(), g.degree(u));
  EXPECT_TRUE(live.apply({6, FaultKind::kNodeFail, u, u}).empty());
  EXPECT_EQ(live.apply({7, FaultKind::kNodeRepair, u, u}).size(), first.size());
  EXPECT_TRUE(live.apply({7, FaultKind::kNodeRepair, u, u}).empty());
}

TEST(LiveTopology, FailingANonEdgeIsANoOp) {
  // A 4-ring: {0,2} and {1,3} are non-edges.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  LiveTopology live(g);
  EXPECT_TRUE(live.apply({1, FaultKind::kLinkFail, 0, 2}).empty());
  EXPECT_TRUE(live.apply({1, FaultKind::kLinkFail, 1, 3}).empty());
  EXPECT_EQ(live.down_link_count(), 0u);
  EXPECT_EQ(live.live_graph().edge_count(), 4u);
}

TEST(LiveTopology, DoublyFailedLinkNeedsBothRepairs) {
  // A link failed explicitly *and* via its endpoint's node failure only
  // comes back up when both causes are repaired, and the up delta is
  // emitted exactly once — at the flip.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  LiveTopology live(g);
  ASSERT_EQ(live.apply({1, FaultKind::kLinkFail, 0, 1}).size(), 1u);
  // Node 0 fails: {0,1} is already down, so no further delta for it.
  EXPECT_TRUE(live.apply({2, FaultKind::kNodeFail, 0, 0}).empty());
  // Repairing the link while node 0 is down flips nothing yet.
  EXPECT_TRUE(live.apply({3, FaultKind::kLinkRepair, 0, 1}).empty());
  EXPECT_FALSE(live.link_live(0, 1));
  // Node repair is the second (last) cause to clear: now the delta fires.
  const auto deltas = live.apply({4, FaultKind::kNodeRepair, 0, 0});
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas.front(), (model::TopologyEvent{0, 1, true}));
  EXPECT_TRUE(live.link_live(0, 1));
  EXPECT_EQ(live.down_link_count(), 0u);
}

TEST(FaultPlan, TargetedAttackHitsHighestDegreeEdges) {
  const Graph g = graph::star(8);  // hub 0: all edges share the hub
  const FaultPlan plan = targeted_link_faults(g, 3, {.seed = 1});
  ASSERT_EQ(plan.fail_count(), 3u);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_EQ(e.u, 0u);  // lexicographic tie-break keeps hub first
  }
}

}  // namespace
}  // namespace optrt::net
