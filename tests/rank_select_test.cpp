// RankSelect against a naive bit-scan oracle — exhaustively on every
// bit-vector up to length 20, then on seeded large vectors spanning the
// block-boundary edge cases — plus the CSR-vs-adjacency equivalence
// property the compiled fast paths rely on.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "bitio/rank_select.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ports.hpp"

namespace optrt {
namespace {

using bitio::BitVector;
using bitio::RankSelect;

/// Checks every rank and select query on `bits` against a linear scan.
void check_against_naive(const BitVector& bits) {
  const RankSelect rs(bits);
  ASSERT_EQ(rs.size(), bits.size());
  std::size_t ones = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(rs.rank1(i), ones) << "rank1 at " << i << " of " << bits.size();
    ASSERT_EQ(rs.rank0(i), i - ones);
    ASSERT_EQ(rs.get(i), bits.get(i));
    if (bits.get(i)) {
      ASSERT_EQ(rs.select1(ones), i) << "select1(" << ones << ")";
      ++ones;
    } else {
      ASSERT_EQ(rs.select0(i - ones), i) << "select0(" << (i - ones) << ")";
    }
  }
  ASSERT_EQ(rs.rank1(bits.size()), ones);
  ASSERT_EQ(rs.ones(), ones);
  ASSERT_EQ(rs.zeros(), bits.size() - ones);
}

TEST(RankSelect, ExhaustiveAllVectorsUpToLength20) {
  for (std::size_t len = 0; len <= 20; ++len) {
    const std::uint64_t limit = std::uint64_t{1} << len;
    for (std::uint64_t pattern = 0; pattern < limit; ++pattern) {
      BitVector bits(len);
      for (std::size_t i = 0; i < len; ++i) {
        if ((pattern >> i) & 1u) bits.set(i, true);
      }
      const RankSelect rs(bits);
      // Full per-position oracle on every vector would dominate the run;
      // rank at every position plus select at every answer is complete
      // coverage of both directions.
      std::size_t ones = 0;
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(rs.rank1(i), ones)
            << "len=" << len << " pattern=" << pattern << " i=" << i;
        if (bits.get(i)) {
          ASSERT_EQ(rs.select1(ones), i);
          ++ones;
        } else {
          ASSERT_EQ(rs.select0(i - ones), i);
        }
      }
      ASSERT_EQ(rs.rank1(len), ones);
    }
  }
}

TEST(RankSelect, SeededLargeVectorsIncludingBlockBoundaries) {
  // Lengths straddling the 512-bit block and the 512-one select-sample
  // boundaries; densities from nearly empty to nearly full.
  const std::size_t lengths[] = {63,   64,   65,   511,  512,  513,
                                 1023, 1024, 4095, 4096, 4097, 10000};
  const double densities[] = {0.01, 0.5, 0.99};
  std::mt19937_64 rng(1996);
  for (const std::size_t len : lengths) {
    for (const double p : densities) {
      BitVector bits(len);
      std::bernoulli_distribution coin(p);
      for (std::size_t i = 0; i < len; ++i) {
        if (coin(rng)) bits.set(i, true);
      }
      check_against_naive(bits);
    }
  }
}

TEST(RankSelect, AllZerosAndAllOnes) {
  for (const std::size_t len : {0u, 1u, 511u, 512u, 513u, 2048u}) {
    BitVector zeros(len);
    check_against_naive(zeros);
    BitVector ones(len);
    for (std::size_t i = 0; i < len; ++i) ones.set(i, true);
    check_against_naive(ones);
  }
}

TEST(RankSelect, OutOfRangeQueriesThrow) {
  BitVector bits(100);
  for (std::size_t i = 0; i < 100; i += 3) bits.set(i, true);
  const RankSelect rs(bits);
  EXPECT_THROW((void)rs.rank1(101), std::out_of_range);
  EXPECT_THROW((void)rs.rank0(101), std::out_of_range);
  EXPECT_THROW((void)rs.select1(rs.ones()), std::out_of_range);
  EXPECT_THROW((void)rs.select0(rs.zeros()), std::out_of_range);
  const RankSelect empty{BitVector{}};
  EXPECT_EQ(empty.rank1(0), 0u);
  EXPECT_THROW((void)empty.select1(0), std::out_of_range);
  EXPECT_THROW((void)empty.select0(0), std::out_of_range);
}

TEST(CsrGraph, EquivalentToAdjacencyOnRandomGraphs) {
  std::mt19937_64 seed_rng(777);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + seed_rng() % 48;
    graph::Rng rng(seed_rng());
    const graph::Graph g = graph::random_gnp(n, 0.3, rng);
    const graph::CsrGraph csr(g);
    ASSERT_EQ(csr.node_count(), n);
    std::size_t arcs = 0;
    for (graph::NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(csr.degree(u), g.degree(u));
      const auto nbrs = csr.neighbors(u);
      ASSERT_EQ(nbrs.size(), g.degree(u));
      for (std::size_t p = 0; p < nbrs.size(); ++p) {
        ASSERT_EQ(nbrs[p], csr.neighbor_at(u, static_cast<graph::PortId>(p)));
        ASSERT_TRUE(g.has_edge(u, nbrs[p]));
        // arc_index inverts neighbor_at: it names this arc's flat slot.
        ASSERT_EQ(csr.arc_index(u, nbrs[p]), csr.arc_begin(u) + p);
      }
      arcs += nbrs.size();
      for (graph::NodeId v = 0; v < n; ++v) {
        ASSERT_EQ(csr.has_edge(u, v), g.has_edge(u, v));
        ASSERT_EQ(csr.arc_index(u, v) != graph::CsrGraph::kNoArc,
                  g.has_edge(u, v));
      }
    }
    ASSERT_EQ(csr.arc_count(), arcs);
    // The port-order builder agrees with the adjacency builder when ports
    // are assigned in sorted order (the repo's standard assignment).
    const auto from_ports =
        graph::CsrGraph::from_ports(graph::PortAssignment::sorted(g));
    for (graph::NodeId u = 0; u < n; ++u) {
      const auto a = csr.neighbors(u);
      const auto b = from_ports.neighbors(u);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    }
  }
}

}  // namespace
}  // namespace optrt
