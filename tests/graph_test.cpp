// Tests for the graph substrate: structure, E(G) encoding (Definition 2),
// and generators including the Theorem 9 graph G_B.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/encoding.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace optrt::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(Graph, AddEdgeSymmetric) {
  Graph g(4);
  g.add_edge(1, 3);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, RejectsSelfLoopDuplicateOutOfRange) {
  Graph g(4);
  EXPECT_THROW(g.add_edge(2, 2), std::invalid_argument);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 4), std::invalid_argument);
}

TEST(Graph, NeighborsSortedEvenWithUnsortedInsertion) {
  Graph g(6);
  g.add_edge(3, 5);
  g.add_edge(3, 1);
  g.add_edge(3, 4);
  g.add_edge(3, 0);
  const auto nbrs = g.neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, RowWordsMatchHasEdge) {
  Rng rng(3);
  const Graph g = random_gnp(100, 0.3, rng);
  for (NodeId u = 0; u < 100; ++u) {
    const auto row = g.row_words(u);
    for (NodeId v = 0; v < 100; ++v) {
      const bool bit = (row[v >> 6] >> (v & 63)) & 1u;
      EXPECT_EQ(bit, g.has_edge(u, v));
    }
  }
}

TEST(Graph, MinMaxDegree) {
  const Graph g = star(8);
  EXPECT_EQ(g.max_degree(), 7u);
  EXPECT_EQ(g.min_degree(), 1u);
}

// --- Definition 2: E(G) ------------------------------------------------------

TEST(Encoding, EdgeIndexIsLexicographic) {
  // n = 4: (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5.
  EXPECT_EQ(edge_index(4, 0, 1), 0u);
  EXPECT_EQ(edge_index(4, 0, 3), 2u);
  EXPECT_EQ(edge_index(4, 1, 2), 3u);
  EXPECT_EQ(edge_index(4, 2, 3), 5u);
  EXPECT_EQ(edge_index(4, 3, 2), 5u);  // symmetric
}

class EdgeIndexInverse : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EdgeIndexInverse, RoundTripsAllPositions) {
  const std::size_t n = GetParam();
  for (std::size_t i = 0; i < n * (n - 1) / 2; ++i) {
    const EdgePair e = edge_from_index(n, i);
    EXPECT_LT(e.u, e.v);
    EXPECT_EQ(edge_index(n, e.u, e.v), i);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EdgeIndexInverse,
                         ::testing::Values(2, 3, 5, 10, 33, 64));

TEST(Encoding, LengthIsNChoose2) {
  Rng rng(1);
  const Graph g = random_uniform(20, rng);
  EXPECT_EQ(encode(g).size(), 20u * 19 / 2);
}

class EncodingRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncodingRoundTrip, DecodeInvertsEncode) {
  Rng rng(GetParam());
  const Graph g = random_uniform(48, rng);
  EXPECT_EQ(decode(encode(g), 48), g);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Encoding, DecodeRejectsWrongLength) {
  bitio::BitVector bits(10);
  EXPECT_THROW(decode(bits, 6), std::invalid_argument);
}

TEST(Encoding, EveryBitStringIsAGraph) {
  // Definition 2: the correspondence is onto.
  bitio::BitVector bits(6);  // n = 4
  bits.set(0, true);         // edge (0,1)
  bits.set(5, true);         // edge (2,3)
  const Graph g = decode(bits, 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_EQ(g.edge_count(), 2u);
}

// --- Generators --------------------------------------------------------------

TEST(Generators, ChainStructure) {
  const Graph g = chain(5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Generators, RingHasUniformDegree2) {
  const Graph g = ring(7);
  EXPECT_EQ(g.edge_count(), 7u);
  for (NodeId u = 0; u < 7; ++u) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_THROW(ring(2), std::invalid_argument);
}

TEST(Generators, CompleteGraph) {
  const Graph g = complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(g.min_degree(), 5u);
}

TEST(Generators, GridDegrees) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 4u * 2);  // 17
  EXPECT_EQ(g.degree(0), 2u);                  // corner
}

TEST(Generators, GnpEdgeCountConcentrates) {
  Rng rng(11);
  const Graph g = random_gnp(200, 0.5, rng);
  const double expected = 200.0 * 199 / 2 * 0.5;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, 5 * std::sqrt(expected));
}

TEST(Generators, GnpExtremes) {
  Rng rng(1);
  EXPECT_EQ(random_gnp(10, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(random_gnp(10, 1.0, rng).edge_count(), 45u);
  EXPECT_THROW(random_gnp(10, 1.5, rng), std::invalid_argument);
}

TEST(Generators, UniformIsSeedDeterministic) {
  Rng a(5), b(5), c(6);
  EXPECT_EQ(random_uniform(30, a), random_uniform(30, b));
  Rng a2(5);
  EXPECT_FALSE(random_uniform(30, a2) == random_uniform(30, c));
}

// --- The Theorem 9 graph G_B -------------------------------------------------

TEST(GB, StructureMatchesFigure1) {
  const std::size_t k = 6;
  const Graph g = lower_bound_gb(k);
  EXPECT_EQ(g.node_count(), 3 * k);
  // Middle nodes: degree k (bottom row) + 1 (top partner).
  for (NodeId mid = k; mid < 2 * k; ++mid) EXPECT_EQ(g.degree(mid), k + 1);
  // Bottom nodes connect to all middles, top nodes to their partner only.
  for (NodeId b = 0; b < k; ++b) EXPECT_EQ(g.degree(b), k);
  for (NodeId t = 2 * k; t < 3 * k; ++t) EXPECT_EQ(g.degree(t), 1u);
}

TEST(GB, ShortestPathBottomToTopIsTwoViaPartner) {
  const std::size_t k = 5;
  const Graph g = lower_bound_gb(k);
  const DistanceMatrix dist(g);
  for (NodeId b = 0; b < k; ++b) {
    for (NodeId t = 2 * k; t < 3 * k; ++t) {
      EXPECT_EQ(dist.at(b, t), 2u);
      // The unique intermediary is the partner t − k.
      const auto succ = shortest_path_successors(g, dist, b, t);
      ASSERT_EQ(succ.size(), 1u);
      EXPECT_EQ(succ[0], t - k);
    }
  }
}

TEST(GB, AlternativePathsHaveLengthAtLeast4) {
  // Remove the partner edge mentally: the next-best route b → mid' → b' →
  // partner → t has 4 edges. Verify via a modified graph.
  const std::size_t k = 4;
  Graph g(3 * k);
  for (NodeId mid = k; mid < 2 * k; ++mid) {
    for (NodeId b = 0; b < k; ++b) g.add_edge(b, mid);
  }
  // Only connect top t to its partner; check distance from bottom avoiding
  // the direct partner hop by removing it: build without one partner edge.
  for (NodeId mid = k; mid + 1 < 2 * k; ++mid) {
    g.add_edge(mid, mid + k);
  }
  // Top node 3k−1 has no partner edge at all → unreachable.
  const DistanceMatrix dist(g);
  EXPECT_EQ(dist.at(0, 3 * k - 1), kUnreachable);
}

TEST(GB, PermutedVariantPlantsThePermutation) {
  const std::size_t k = 5;
  const std::vector<NodeId> perm = {3, 1, 4, 0, 2};
  const Graph g = lower_bound_gb_permuted(k, perm);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_TRUE(g.has_edge(static_cast<NodeId>(k + i),
                           static_cast<NodeId>(2 * k + perm[i])));
  }
  EXPECT_THROW(lower_bound_gb_permuted(k, {0, 1, 2, 3, 3}),
               std::invalid_argument);
  EXPECT_THROW(lower_bound_gb_permuted(k, {0, 1}), std::invalid_argument);
}

TEST(GB, IdentityPermEqualsPlainGB) {
  const std::size_t k = 4;
  EXPECT_EQ(lower_bound_gb(k), lower_bound_gb_permuted(k, {0, 1, 2, 3}));
}

}  // namespace
}  // namespace optrt::graph
