// k-level hierarchical routing tests: delivery on every family, table
// shrinkage as the hierarchy deepens, pivot/label semantics, and the
// waypoint-leg invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/errors.hpp"
#include "schemes/hierarchical.hpp"
#include "schemes/landmark.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;

struct Case {
  int family;
  std::size_t levels;
};

class HierarchicalMatrix : public ::testing::TestWithParam<Case> {
 public:
  static Graph make(int which) {
    Rng rng(1101);
    switch (which) {
      case 0: return graph::chain(48);
      case 1: return graph::grid(6, 8);
      case 2: return graph::hypercube(5);
      case 3: return graph::random_gnp(64, 0.2, rng);
      default: return core::certified_random_graph(64, rng);
    }
  }
};

TEST_P(HierarchicalMatrix, DeliversEverywhere) {
  const auto [family, levels] = GetParam();
  Graph g = make(family);
  if (!graph::is_connected(g)) {
    Rng rng(1102);
    g = graph::random_gnp(64, 0.35, rng);
  }
  HierarchicalOptions opt;
  opt.levels = levels;
  const HierarchicalScheme scheme(g, opt);
  const auto result = model::verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok()) << "family " << family << " levels " << levels;
  EXPECT_GE(result.max_stretch, 1.0);
  // The hierarchy is lossy but bounded in practice; guard against
  // pathological blowup (legs are shortest paths between pivots).
  EXPECT_LE(result.max_stretch, 16.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, HierarchicalMatrix,
    ::testing::Values(Case{0, 2}, Case{0, 3}, Case{1, 2}, Case{1, 3},
                      Case{2, 3}, Case{3, 2}, Case{3, 3}, Case{4, 2},
                      Case{4, 3}, Case{4, 4}),
    [](const auto& info) {
      return "f" + std::to_string(info.param.family) + "_k" +
             std::to_string(info.param.levels);
    });

TEST(Hierarchical, PivotSetsAreNestedAndSized) {
  Rng rng(1103);
  const Graph g = core::certified_random_graph(81, rng);
  HierarchicalOptions opt;
  opt.levels = 4;
  const HierarchicalScheme scheme(g, opt);
  for (std::size_t i = 2; i < 4; ++i) {
    const auto& lower = scheme.pivots(i - 1);
    const auto& upper = scheme.pivots(i);
    EXPECT_LT(upper.size(), lower.size());
    // Nested: every upper pivot is a lower pivot.
    for (graph::NodeId t : upper) {
      EXPECT_TRUE(std::binary_search(lower.begin(), lower.end(), t));
    }
  }
}

TEST(Hierarchical, PivotOfIsNearest) {
  Rng rng(1104);
  const Graph g = core::certified_random_graph(64, rng);
  const HierarchicalScheme scheme(g, {});
  const graph::DistanceMatrix dist(g);
  for (std::size_t level = 1; level < scheme.levels(); ++level) {
    for (graph::NodeId v = 0; v < 64; ++v) {
      const graph::NodeId p = scheme.pivot_of(level, v);
      for (graph::NodeId t : scheme.pivots(level)) {
        EXPECT_LE(dist.at(v, p), dist.at(v, t));
      }
    }
  }
}

TEST(Hierarchical, DeeperHierarchiesUseSmallerTables) {
  // The Peleg–Upfal trade-off: function bits shrink as k grows (labels
  // grow linearly in k, stretch degrades).
  const Graph g = graph::grid(12, 12);  // sparse: the regime hierarchies own
  std::size_t prev = static_cast<std::size_t>(-1);
  for (std::size_t k : {2u, 3u, 4u}) {
    HierarchicalOptions opt;
    opt.levels = k;
    const HierarchicalScheme scheme(g, opt);
    const auto bits = scheme.space().total_function_bits();
    EXPECT_LT(bits, prev) << "k=" << k;
    prev = bits;
    EXPECT_TRUE(model::verify_scheme(g, scheme).ok()) << "k=" << k;
  }
}

TEST(Hierarchical, LabelBitsGrowWithDepth) {
  Rng rng(1105);
  const Graph g = core::certified_random_graph(64, rng);
  HierarchicalOptions two, four;
  two.levels = 2;
  four.levels = 4;
  const auto l2 = HierarchicalScheme(g, two).space().label_bits;
  const auto l4 = HierarchicalScheme(g, four).space().label_bits;
  EXPECT_EQ(l2, 64u * 2 * 6);
  EXPECT_EQ(l4, 64u * 4 * 6);
}

TEST(Hierarchical, TwoLevelsBehavesLikeLandmark) {
  // k = 2 is the Cowen/landmark structure: stretch < 3.
  Rng rng(1106);
  const Graph g = core::certified_random_graph(96, rng);
  HierarchicalOptions opt;
  opt.levels = 2;
  const HierarchicalScheme scheme(g, opt);
  const auto result = model::verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 3.0);
}

TEST(Hierarchical, RejectsBadInputs) {
  Graph disconnected(4);
  disconnected.add_edge(0, 1);
  EXPECT_THROW(HierarchicalScheme{disconnected}, SchemeInapplicable);
  HierarchicalOptions opt;
  opt.levels = 1;
  EXPECT_THROW(HierarchicalScheme(graph::chain(8), opt), SchemeInapplicable);
}

TEST(Hierarchical, SpaceMatchesSerializedBits) {
  Rng rng(1107);
  const Graph g = core::certified_random_graph(48, rng);
  const HierarchicalScheme scheme(g, {});
  const auto space = scheme.space();
  for (graph::NodeId u = 0; u < 48; ++u) {
    EXPECT_EQ(space.function_bits[u], scheme.function_bits(u).size());
  }
}

}  // namespace
}  // namespace optrt::schemes
