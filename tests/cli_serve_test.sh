#!/usr/bin/env bash
# End-to-end serving: a real optrtd daemon on a temp Unix socket, driven
# by `optrt_cli query` and the bench_serving smoke load, then the
# corrupt-artifact path — the daemon must reject a damaged directory with
# the same exit code (2) and the same taxonomy diagnostic that
# `optrt_cli verify-artifact` prints for the same file.
#
# Usage: cli_serve_test.sh <optrt_cli> <optrtd> <bench_serving> <work-dir>
set -u

CLI=$1
DAEMON=$2
BENCH=$3
WORK=$4
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || exit 1

failures=0
fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# Flips one bit of byte <offset> in <file>.
flip_byte() {
  local file=$1 offset=$2
  local byte
  byte=$(od -An -tu1 -j "$offset" -N 1 "$file" | tr -d ' ')
  printf "$(printf '\\x%02x' $((byte ^ 1)))" |
    dd of="$file" bs=1 seek="$offset" count=1 conv=notrunc status=none
}

# The served directory: one full-table artifact over the same certified
# graph bench_serving's --smoke oracle builds (n=64, seed 1996), so the
# external-daemon differential check in the bench holds.
mkdir -p artifacts
"$CLI" generate uniform 64 --seed 1996 --certified -o artifacts/g0.eg ||
  fail "generate"
"$CLI" compile artifacts/g0.eg --model IA.alpha -o artifacts/g0.ort ||
  fail "compile"

SOCK="$WORK/optrtd.sock"
"$DAEMON" --dir artifacts --socket "$SOCK" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon socket never appeared"

# The query subcommand against the live daemon.
out=$("$CLI" query --socket "$SOCK" --op ping) || fail "query ping exited $?"
[ "$out" = "pong" ] || fail "ping printed '$out', wanted 'pong'"

out=$("$CLI" query --socket "$SOCK" --op list) || fail "query list exited $?"
case "$out" in
  *g0*n=64*) : ;;
  *) fail "list output missing artifact row: '$out'" ;;
esac

out=$("$CLI" query --socket "$SOCK" 0 5) || fail "query next-hop exited $?"
[ -n "$out" ] || fail "next-hop printed nothing"

"$CLI" query --socket "$SOCK" --op route 0 5 >/dev/null ||
  fail "query route exited $?"

out=$("$CLI" query --socket "$SOCK" --op reload) || fail "query reload exited $?"
case "$out" in
  *"serving 1 artifact"*) : ;;
  *) fail "reload printed '$out'" ;;
esac

# A request error (unknown artifact id) is a clean diagnostic + exit 2,
# and must not wedge the daemon.
err=$("$CLI" query --socket "$SOCK" --artifact 9 0 5 2>&1 >/dev/null)
rc=$?
[ "$rc" -eq 2 ] || fail "unknown-artifact query exited $rc, wanted 2"
case "$err" in
  error:*) : ;;
  *) fail "unknown-artifact diagnostic was '$err'" ;;
esac
out=$("$CLI" query --socket "$SOCK" --op ping) || fail "ping after error"

# The serving benchmark's smoke load against the same daemon: checks the
# wire protocol, the oracle differential, and the report schema.
"$BENCH" --smoke --socket "$SOCK" --artifact 0 -o BENCH_smoke.json 2>/dev/null ||
  fail "bench_serving --smoke exited $?"
grep -q '"schema": *"optrt.bench_serving.v1"' BENCH_smoke.json ||
  fail "BENCH_smoke.json missing the schema marker"

# Clean shutdown on SIGTERM.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited $rc on SIGTERM, wanted 0"

# Corrupt-artifact parity: the daemon must refuse a damaged directory
# with exit 2 and the same per-file taxonomy line verify-artifact prints.
mkdir -p bad
cp artifacts/g0.eg bad/
cp artifacts/g0.ort bad/
size=$(wc -c < bad/g0.ort)
flip_byte bad/g0.ort $((size - 4))

cli_err=$("$CLI" verify-artifact bad/g0.ort 2>&1 >/dev/null)
cli_rc=$?
[ "$cli_rc" -eq 2 ] || fail "verify-artifact exited $cli_rc on corrupt, wanted 2"

daemon_err=$("$DAEMON" --dir bad --socket "$WORK/bad.sock" 2>&1 >/dev/null)
daemon_rc=$?
[ "$daemon_rc" -eq 2 ] || fail "daemon exited $daemon_rc on corrupt dir, wanted 2"
case "$daemon_err" in
  *"g0.ort"*) : ;;
  *) fail "daemon diagnostic does not name the file: '$daemon_err'" ;;
esac
# Both diagnostics carry the same DecodeError kind for the same bytes.
kind=$(printf '%s\n' "$cli_err" | grep -o '[a-z-]*-mismatch\|truncated\|bad-magic' | head -1)
[ -n "$kind" ] || fail "could not extract taxonomy kind from '$cli_err'"
case "$daemon_err" in
  *"$kind"*) : ;;
  *) fail "daemon said '$daemon_err', verify-artifact said '$cli_err'" ;;
esac

if [ "$failures" -ne 0 ]; then
  echo "$failures serving end-to-end check(s) failed" >&2
  exit 1
fi
echo "all serving end-to-end checks passed"
