// Differential oracle for the Thorup-Zwick stretch-3 scheme: full
// pair-space delivery on every topology family, stretch ≤ 3 for every
// pair via verify_scheme_stretch, cluster/bunch size bounds (the
// O(√(n log n)) sanity pin), fast-path parity against the interpreted
// decode path, and serialization round-trips with a byte-pinned golden
// fixture.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "model/fastpath.hpp"
#include "model/verifier.hpp"
#include "schemes/errors.hpp"
#include "schemes/serialization.hpp"
#include "schemes/tz.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;
using graph::TopologyFamily;

Graph family_graph(int which) {
  switch (which) {
    case 0: {  // the paper's dense regime
      Rng rng(7);
      return core::certified_random_graph(64, rng);
    }
    case 1:  // Internet-like
      return TopologyFamily::power_law(2).make(96, 5);
    case 2:
      return TopologyFamily::grid().make(48, 0);
    case 3:
      return TopologyFamily::ring().make(41, 0);
    default:
      return TopologyFamily::config_model(2.1, 2).make(80, 5);
  }
}

class TzFamilies : public ::testing::TestWithParam<int> {};

TEST_P(TzFamilies, DeliversEveryPairWithStretchAtMost3) {
  const Graph g = family_graph(GetParam());
  const TzScheme scheme(g);
  const auto result = model::verify_scheme_stretch(g, scheme, 3.0);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.base.all_delivered);
  EXPECT_EQ(result.base.invalid_hops, 0u);
  EXPECT_EQ(result.pairs_over_stretch, 0u);
  EXPECT_LE(result.base.max_stretch, 3.0);
  EXPECT_GE(result.base.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(result.stretch_bound, 3.0);
}

TEST_P(TzFamilies, StretchVerifierAgreesWithExactVerifier) {
  const Graph g = family_graph(GetParam());
  const TzScheme scheme(g);
  const auto exact = model::verify_scheme(g, scheme);
  const auto stretch = model::verify_scheme_stretch(g, scheme, 3.0);
  EXPECT_EQ(exact.pairs_checked, stretch.base.pairs_checked);
  EXPECT_EQ(exact.pairs_failed, stretch.base.pairs_failed);
  EXPECT_EQ(exact.total_route_edges, stretch.base.total_route_edges);
  EXPECT_DOUBLE_EQ(exact.max_stretch, stretch.base.max_stretch);
  EXPECT_DOUBLE_EQ(exact.mean_stretch, stretch.base.mean_stretch);
}

INSTANTIATE_TEST_SUITE_P(Families, TzFamilies,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(Tz, StretchVerifierCountsPairsOverATightBound) {
  // Against an impossible bound (< 1) every delivered pair is "over", so
  // the counting path itself is exercised, not just the zero case.
  const Graph g = TopologyFamily::ring().make(12, 0);
  const TzScheme scheme(g);
  const auto result = model::verify_scheme_stretch(g, scheme, 0.5);
  EXPECT_TRUE(result.base.all_delivered);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.pairs_over_stretch, result.base.pairs_checked);
}

TEST(Tz, ClusterSemanticsAreStrict) {
  // C(w) = { v : d(w, v) < d(v, A) } with *strict* inequality — the
  // distinction from LandmarkScheme's non-strict vicinities. Check the
  // stored tables against the distance oracle, pairwise.
  const Graph g = TopologyFamily::power_law(2).make(60, 3);
  const TzScheme scheme(g);
  const graph::DistanceMatrix dist(g);
  for (NodeId w = 0; w < g.node_count(); ++w) {
    std::size_t members = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == w) continue;
      const bool in_cluster =
          dist.at(w, v) < dist.at(v, scheme.landmark_of(v));
      members += in_cluster ? 1 : 0;
    }
    EXPECT_EQ(scheme.cluster_size(w), members);
  }
  // Strictness corollary: a landmark's cluster is empty (d(l, v) < d(v, A)
  // ≤ d(v, l) is unsatisfiable).
  for (NodeId l : scheme.landmarks()) {
    EXPECT_EQ(scheme.cluster_size(l), 0u);
  }
}

TEST(Tz, NearestLandmarkIsNearestWithLeastIdTie) {
  const Graph g = TopologyFamily::grid().make(36, 0);
  const TzScheme scheme(g);
  const graph::DistanceMatrix dist(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const NodeId l = scheme.landmark_of(v);
    for (NodeId other : scheme.landmarks()) {
      EXPECT_LE(dist.at(v, l), dist.at(v, other));
      if (dist.at(v, other) == dist.at(v, l)) {
        EXPECT_LE(l, other);
      }
    }
  }
}

TEST(Tz, ClusterAndBunchSizesObeyTheSqrtNLogNPin) {
  // The resample loop enforces max cluster ≤ 4√(n ln n); the sampled
  // landmark set and the bunches must sit in the same regime for the
  // scheme to be "compact". Seeds are fixed, so these are deterministic
  // pins, not statistical hopes.
  for (const int which : {1, 2, 3}) {
    const Graph g = family_graph(which);
    const std::size_t n = g.node_count();
    const TzScheme scheme(g);
    const auto cap = static_cast<double>(TzScheme::cluster_cap(n));
    EXPECT_LE(static_cast<double>(scheme.landmarks().size()), cap);
    for (NodeId w = 0; w < n; ++w) {
      EXPECT_LE(static_cast<double>(scheme.cluster_size(w)), cap);
      // Bunch = the landmark set plus the clusters that contain w.
      EXPECT_GE(scheme.bunch_size(w), scheme.landmarks().size());
      EXPECT_LE(static_cast<double>(scheme.bunch_size(w)),
                static_cast<double>(scheme.landmarks().size()) + cap);
    }
  }
}

TEST(Tz, BunchSizesAreTheClusterTranspose) {
  const Graph g = TopologyFamily::ring().make(30, 0);
  const TzScheme scheme(g);
  const graph::DistanceMatrix dist(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::size_t expected = scheme.landmarks().size();
    for (NodeId w = 0; w < g.node_count(); ++w) {
      if (w != v && dist.at(w, v) < dist.at(v, scheme.landmark_of(v))) {
        ++expected;
      }
    }
    EXPECT_EQ(scheme.bunch_size(v), expected);
  }
}

TEST(Tz, SchemeSurfaceBasics) {
  const Graph g = TopologyFamily::power_law(2).make(40, 2);
  const TzScheme scheme(g);
  EXPECT_EQ(scheme.name(), "tz");
  EXPECT_TRUE(scheme.stateless_next_hop());
  EXPECT_EQ(scheme.routing_model().relabeling, model::kIIgamma.relabeling);
  // γ labels are charged: (v, l(v), exit port) per node.
  const auto space = scheme.space();
  EXPECT_GT(space.label_bits, 0u);
  EXPECT_EQ(space.function_bits.size(), g.node_count());
  // port_enumeration exposes the scheme's own (sorted) port order so
  // deflection policies can walk it.
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto ports = scheme.port_enumeration(u);
    const auto nbrs = g.neighbors(u);
    ASSERT_EQ(ports.size(), nbrs.size());
    for (std::size_t i = 0; i < ports.size(); ++i) {
      EXPECT_EQ(ports[i], nbrs[i]);
    }
  }
  model::MessageHeader header;
  EXPECT_THROW((void)scheme.next_hop(0, 0, header), std::invalid_argument);
}

TEST(Tz, RejectsDisconnectedGraphs) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(TzScheme scheme(g), SchemeInapplicable);
}

// --- Fast-path parity --------------------------------------------------------

TEST(Tz, FastPathMatchesInterpretedPathOnTheFullPairSpace) {
  for (const int which : {0, 1, 2, 3}) {
    const Graph g = family_graph(which);
    const TzScheme scheme(g);
    const auto fast = scheme.compile_fast();
    ASSERT_NE(fast, nullptr);
    EXPECT_EQ(fast->name(), "tz");
    for (NodeId u = 0; u < g.node_count(); ++u) {
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (u == v) {
          EXPECT_THROW((void)fast->next_hop(u, v), std::invalid_argument);
          continue;
        }
        model::MessageHeader header;
        EXPECT_EQ(fast->next_hop(u, v), scheme.next_hop(u, v, header))
            << "family " << which << " pair " << u << "->" << v;
      }
    }
  }
}

TEST(Tz, FastPathBatchIsBitIdenticalAtAnyThreadCount) {
  const Graph g = TopologyFamily::power_law(2).make(72, 9);
  const std::size_t n = g.node_count();
  const TzScheme scheme(g);
  const auto fast = scheme.compile_fast();
  // FNV-1a over each source row of first hops, computed through
  // parallel_map at 1, 2 and 8 threads: the batch surface must be a pure
  // function of the pairs.
  auto fingerprints = [&](std::size_t threads) {
    return core::parallel_map<std::uint64_t>(
        threads, n, [&](std::size_t u) {
          std::vector<model::RoutePair> pairs;
          for (NodeId v = 0; v < n; ++v) {
            if (v != static_cast<NodeId>(u)) {
              pairs.push_back({static_cast<NodeId>(u), v});
            }
          }
          std::vector<NodeId> hops(pairs.size());
          fast->route_batch(pairs, hops);
          std::uint64_t h = 1469598103934665603ULL;
          for (NodeId hop : hops) {
            h ^= hop;
            h *= 1099511628211ULL;
          }
          return h;
        });
  };
  const auto one = fingerprints(1);
  EXPECT_EQ(one, fingerprints(2));
  EXPECT_EQ(one, fingerprints(8));
}

// --- Serialization -----------------------------------------------------------

void expect_same_routing(const Graph& g, const TzScheme& a, const TzScheme& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_TRUE(a.function_bits(u) == b.function_bits(u));
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (u == v) continue;
      model::MessageHeader ha, hb;
      EXPECT_EQ(a.next_hop(u, v, ha), b.next_hop(u, v, hb));
    }
  }
}

TEST(Tz, SerializationRoundTripsOnEveryFamily) {
  for (const int which : {0, 1, 2, 3, 4}) {
    const Graph g = family_graph(which);
    const TzScheme scheme(g);
    const auto artifact = serialize(scheme);
    EXPECT_EQ(peek_kind(artifact), SchemeKind::kThorupZwick);
    EXPECT_EQ(inspect(artifact).node_count, g.node_count());
    const TzScheme loaded = deserialize_tz(artifact, g);
    expect_same_routing(g, scheme, loaded);
    EXPECT_EQ(serialize(loaded), artifact) << "re-serialization drifted";
    // The kind-dispatching decoder agrees.
    const auto any = deserialize_any(artifact, g);
    ASSERT_NE(any, nullptr);
    EXPECT_EQ(any->name(), "tz");
  }
}

TEST(Tz, DeserializationRejectsCorruptTables) {
  const Graph g = TopologyFamily::grid().make(16, 0);
  const TzScheme scheme(g);
  const auto artifact = serialize(scheme);

  // Kind confusion: a TZ artifact refuses to decode as a landmark scheme.
  EXPECT_THROW((void)deserialize_landmark(artifact, g), DecodeError);
  // Graph mismatch: wrong n is a typed semantic rejection.
  const Graph other = TopologyFamily::grid().make(12, 0);
  try {
    (void)deserialize_tz(artifact, other);
    FAIL() << "decoded against the wrong graph";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kSemanticInvalid);
  }
  // Truncation inside the payload is typed, never a crash.
  bitio::BitVector cut;
  for (std::size_t i = 0; i + 16 < artifact.size(); ++i) {
    cut.push_back(artifact.get(i));
  }
  EXPECT_THROW((void)deserialize_tz(cut, g), DecodeError);
}

TEST(Tz, ConstructorValidatesSerializedState) {
  const Graph g = TopologyFamily::ring().make(8, 0);
  const TzScheme scheme(g);
  std::vector<bitio::BitVector> bits;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    bits.push_back(scheme.function_bits(u));
  }
  // Unsorted landmark set.
  if (scheme.landmarks().size() >= 2) {
    std::vector<NodeId> reversed(scheme.landmarks().rbegin(),
                                 scheme.landmarks().rend());
    EXPECT_THROW(TzScheme(g, reversed, bits), std::invalid_argument);
  }
  // Landmark id out of range.
  EXPECT_THROW(TzScheme(g, {static_cast<NodeId>(g.node_count())}, bits),
               std::invalid_argument);
  // Wrong node-bits arity.
  std::vector<bitio::BitVector> short_bits(bits.begin(), bits.end() - 1);
  EXPECT_THROW(TzScheme(g, scheme.landmarks(), short_bits),
               std::invalid_argument);
}

// Byte-pinned golden fixture: serializing today's TZ scheme over grid(3,3)
// must reproduce these exact transport bytes, and the bytes must keep
// decoding to a scheme that routes. Any change is a wire-format break.
TEST(Tz, GoldenV1ArtifactIsPinnedByteForByte) {
  const Graph g = TopologyFamily::grid().make(9, 0);
  const TzScheme scheme(g);
  const auto artifact = serialize(scheme);
  static const char kGoldenHex[] =
      "7b010000000000004f525432010809000000cb00000000000000e992ccca0d62e886088c030a4300c681827188611c2a1882300e000c4100";
  std::string hex;
  static const char digits[] = "0123456789abcdef";
  for (std::uint8_t b : to_bytes(artifact)) {
    hex.push_back(digits[b >> 4]);
    hex.push_back(digits[b & 15]);
  }
  EXPECT_EQ(hex, kGoldenHex);
  const TzScheme loaded = deserialize_tz(artifact, g);
  EXPECT_TRUE(model::verify_scheme_stretch(g, loaded, 3.0).ok());
}

}  // namespace
}  // namespace optrt::schemes
