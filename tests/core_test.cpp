// Tests for the core harness: statistics, power-law fits, tables, and the
// certified-sampling experiment helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "graph/randomness.hpp"

namespace optrt::core {
namespace {

TEST(Stats, SummaryOfKnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, SummaryOfEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one = {3.5};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PowerFitRecoversExactLaw) {
  // y = 3 · x².
  std::vector<double> xs, ys;
  for (double x : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);
  }
  const PowerFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(std::exp2(fit.log2_coefficient), 3.0, 1e-9);
}

TEST(Stats, PowerFitDetectsNLogN) {
  // n log n fits with exponent slightly above 1 on this range.
  std::vector<double> xs, ys;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
    xs.push_back(x);
    ys.push_back(x * std::log2(x));
  }
  const PowerFit fit = fit_power_law(xs, ys);
  EXPECT_GT(fit.exponent, 1.0);
  EXPECT_LT(fit.exponent, 1.3);
}

TEST(Stats, PowerFitRejectsDegenerateInput) {
  EXPECT_THROW(fit_power_law(std::vector<double>{1.0},
                             std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_power_law(std::vector<double>{1.0, 2.0},
                             std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"model", "bits"});
  t.add_row({"II.alpha", "123"});
  t.add_rule();
  t.add_row({"IA.alpha", "456789"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| model"), std::string::npos);
  EXPECT_NE(out.find("| II.alpha"), std::string::npos);
  EXPECT_NE(out.find("456789"), std::string::npos);
  // All lines equal width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    if (width == 0) width = eol - pos;
    EXPECT_EQ(eol - pos, width);
    pos = eol + 1;
  }
}

TEST(Table, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsMagnitudes) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_NE(TextTable::num(1.5e9).find("e"), std::string::npos);
  EXPECT_EQ(TextTable::num(0.0, 1), "0.0");
}

TEST(Experiment, CertifiedSamplerReturnsCertifiedGraphs) {
  graph::Rng rng(1);
  const graph::Graph g = certified_random_graph(64, rng);
  EXPECT_TRUE(graph::certify(g).ok());
}

TEST(Experiment, CertifiedSamplerGivesUpOnImpossibleSizes) {
  // No 2-node graph has diameter exactly 2 (it is complete or
  // disconnected), so certification can never succeed.
  graph::Rng rng(2);
  EXPECT_THROW(certified_random_graph(2, rng, /*c=*/3.0, /*max_attempts=*/8),
               std::runtime_error);
}

TEST(Experiment, SweepProducesPointsAndMeans) {
  const auto points = sweep_certified(
      {32, 48}, 3, [](const graph::Graph& g) {
        return static_cast<double>(g.edge_count());
      });
  EXPECT_EQ(points.size(), 6u);
  const double m32 = mean_at(points, 32);
  const double expected32 = 32.0 * 31 / 4;  // |E| ≈ n(n−1)/4 in G(n,1/2)
  EXPECT_NEAR(m32, expected32, expected32 * 0.15);
  EXPECT_EQ(mean_at(points, 99), 0.0);
}

}  // namespace
}  // namespace optrt::core
