// The observability subsystem's contract: registry semantics (counters,
// gauges, histograms), shard-merge determinism across thread counts, span
// nesting and trace serialization, and the golden metrics snapshot of a
// fixed-seed simulator run that CI holds bit-stable.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "graph/algorithms.hpp"
#include "model/verifier.hpp"
#include "net/faults.hpp"
#include "net/simulator.hpp"
#include "net/workload.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_table.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::Rng;

// --- Registry semantics ------------------------------------------------------

TEST(Metrics, CounterIncrementAndRead) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  const obs::Counter c = reg.counter("c");
  EXPECT_EQ(reg.counter_value("c"), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(reg.counter_value("c"), 42u);
  // Re-registering the same name returns a handle on the same slots.
  reg.counter("c").inc(8);
  EXPECT_EQ(reg.counter_value("c"), 50u);
  // Unregistered names read as zero rather than erroring.
  EXPECT_EQ(reg.counter_value("never"), 0u);
}

TEST(Metrics, DefaultConstructedHandlesAreNoOps) {
  const obs::Counter c;
  const obs::Gauge g;
  const obs::Histogram h;
  c.inc();
  g.set(7);
  h.observe(7);  // must not crash; nothing to assert beyond survival
}

TEST(Metrics, KindMismatchThrows) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  (void)reg.counter("m");
  EXPECT_THROW((void)reg.gauge("m"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("m", {1, 2}), std::logic_error);
  (void)reg.histogram("h", {1, 2});
  EXPECT_THROW((void)reg.histogram("h", {1, 2, 3}), std::logic_error);
  (void)reg.histogram("h", {1, 2});  // identical bounds: fine
}

TEST(Metrics, GaugeMergesByMaximumAcrossThreads) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  const obs::Gauge g = reg.gauge("peak");
  // A gauge set only on other threads must still be visible merged, and
  // the merged value is the max over per-thread shards.
  std::thread a([&] { g.set(5); });
  std::thread b([&] { g.set(9); });
  a.join();
  b.join();
  EXPECT_EQ(reg.gauge_value("peak"), 9);
  // This thread never set it; setting a smaller value does not win.
  g.set(3);
  EXPECT_EQ(reg.gauge_value("peak"), 9);
  // Negative values merge correctly too (max of set values, not of zero).
  const obs::Gauge n = reg.gauge("neg");
  n.set(-7);
  EXPECT_EQ(reg.gauge_value("neg"), -7);
  // A registered-but-never-set gauge reads as 0.
  (void)reg.gauge("unset");
  EXPECT_EQ(reg.gauge_value("unset"), 0);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  const obs::Histogram h = reg.histogram("h", {2, 5, 10});
  for (const std::uint64_t v : {0u, 2u, 3u, 5u, 6u, 10u, 11u, 1000u}) {
    h.observe(v);
  }
  const obs::HistogramSnapshot snap = reg.histogram_value("h");
  ASSERT_EQ(snap.bounds, (std::vector<std::uint64_t>{2, 5, 10}));
  // v<=2: {0,2}; v<=5: {3,5}; v<=10: {6,10}; overflow: {11,1000}.
  ASSERT_EQ(snap.counts, (std::vector<std::uint64_t>{2, 2, 2, 2}));
  EXPECT_EQ(snap.sum, 0u + 2 + 3 + 5 + 6 + 10 + 11 + 1000);
  EXPECT_EQ(snap.count(), 8u);
}

TEST(Metrics, EmptyHistogramSnapshots) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  (void)reg.histogram("h", {1, 2});
  const obs::HistogramSnapshot snap = reg.histogram_value("h");
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{0, 0, 0}));
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.count(), 0u);
  // Never-registered histograms read as fully empty.
  EXPECT_TRUE(reg.histogram_value("nope").counts.empty());
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  const obs::Counter c = reg.counter("c");
  const obs::Gauge g = reg.gauge("g");
  c.inc(5);
  g.set(5);
  reg.reset();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_EQ(reg.gauge_value("g"), 0);
  c.inc(2);  // outstanding handles stay usable
  EXPECT_EQ(reg.counter_value("c"), 2u);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
}

TEST(Metrics, ScopedRegistryOverridesAndRestoresGlobal) {
  obs::MetricsRegistry* before = &obs::MetricsRegistry::global();
  {
    obs::ScopedRegistry outer;
    EXPECT_EQ(&obs::MetricsRegistry::global(), &outer.registry());
    obs::counter("scoped.c").inc();
    EXPECT_EQ(outer.registry().counter_value("scoped.c"), 1u);
    {
      obs::ScopedRegistry inner;
      EXPECT_EQ(&obs::MetricsRegistry::global(), &inner.registry());
      EXPECT_EQ(inner.registry().counter_value("scoped.c"), 0u);
    }
    EXPECT_EQ(&obs::MetricsRegistry::global(), &outer.registry());
  }
  EXPECT_EQ(&obs::MetricsRegistry::global(), before);
  EXPECT_EQ(before->counter_value("scoped.c"), 0u);
}

TEST(Metrics, SnapshotIsNameSorted) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  reg.counter("zebra").inc();
  reg.counter("alpha").inc();
  reg.counter("mid").inc();
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

// --- JSON rendering ----------------------------------------------------------

TEST(MetricsJson, ExactSmallDocument) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  reg.counter("runs").inc(3);
  reg.gauge("peak").set(-2);
  reg.histogram("hops", {1, 4}).observe(2);
  EXPECT_EQ(obs::metrics_json(reg),
            "{\"schema\":\"optrt.metrics.v1\","
            "\"counters\":{\"runs\":3},"
            "\"gauges\":{\"peak\":-2},"
            "\"histograms\":{\"hops\":{\"bounds\":[1,4],\"counts\":[0,1,0],"
            "\"sum\":2,\"count\":1}}}");
  // wall_ns is appended only when requested — the one nondeterministic
  // field, and the reason fingerprints exclude it.
  EXPECT_EQ(obs::metrics_json(reg, 12345),
            "{\"schema\":\"optrt.metrics.v1\","
            "\"counters\":{\"runs\":3},"
            "\"gauges\":{\"peak\":-2},"
            "\"histograms\":{\"hops\":{\"bounds\":[1,4],\"counts\":[0,1,0],"
            "\"sum\":2,\"count\":1}},\"wall_ns\":12345}");
  EXPECT_EQ(obs::metrics_fingerprint(reg),
            obs::metrics_fingerprint(reg));
}

// --- Shard-merge determinism -------------------------------------------------

// The core contract: a parallel workload recording counters, gauges, and
// histograms from worker threads yields the identical JSON document at
// every thread count — shard merge is order-independent.
TEST(MetricsDeterminism, ParallelRecordingIsThreadCountIndependent) {
  std::vector<std::string> docs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    obs::ScopedRegistry scoped;
    core::ThreadPool pool(threads);
    (void)core::parallel_map<int>(pool, 512, [](std::size_t idx) {
      obs::counter("t.items").inc();
      obs::counter("t.weight").inc(idx);
      obs::histogram("t.idx", {63, 127, 255}).observe(idx);
      obs::gauge("t.flag").set(42);  // same value on every thread
      return 0;
    });
    docs.push_back(obs::metrics_json(scoped.registry()));
  }
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_EQ(docs[0], docs[2]);
  // Sanity: the merged totals are the arithmetic truth, not just equal.
  const obs::JsonValue doc = obs::parse_json(docs[0]);
  const obs::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("t.items")->uint_value, 512u);
  EXPECT_EQ(counters->find("t.weight")->uint_value, 512u * 511u / 2);
}

TEST(MetricsDeterminism, VerifierFingerprintIsThreadCountIndependent) {
  Rng rng(11);
  const Graph g = core::certified_random_graph(48, rng);
  const auto scheme = schemes::FullTableScheme::standard(g);
  std::array<std::uint64_t, 3> fps{};
  std::size_t i = 0;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    graph::DistanceCache::global().clear();
    obs::ScopedRegistry scoped;
    const auto result = model::verify_scheme(g, scheme, 0, threads);
    ASSERT_TRUE(result.ok());
    fps[i++] = obs::metrics_fingerprint(scoped.registry());
  }
  EXPECT_EQ(fps[0], fps[1]);
  EXPECT_EQ(fps[0], fps[2]);
}

// --- Tracing -----------------------------------------------------------------

TEST(Trace, NoTraceInstalledMeansNoOpSpans) {
  ASSERT_EQ(obs::current_trace(), nullptr);
  { obs::TraceSpan span("ignored"); }
  // Nothing observable: the assertion is that nothing crashed with no
  // trace installed (the common production state).
}

TEST(Trace, SpanNestingDepthsAndSummary) {
  obs::Trace trace;
  {
    obs::TraceScope scope(trace);
    ASSERT_EQ(obs::current_trace(), &trace);
    obs::TraceSpan outer("outer");
    { obs::TraceSpan inner("inner"); }
    { obs::TraceSpan inner2("inner"); }
  }
  EXPECT_EQ(obs::current_trace(), nullptr);
  EXPECT_EQ(trace.event_count(), 3u);

  std::size_t outer_count = 0;
  for (const obs::Trace::Event& e : trace.events()) {
    if (e.name == "outer") {
      ++outer_count;
      EXPECT_EQ(e.depth, 0u);
    } else {
      EXPECT_EQ(e.name, "inner");
      EXPECT_EQ(e.depth, 1u);
    }
  }
  EXPECT_EQ(outer_count, 1u);

  const auto rows = trace.summary();  // name-sorted
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "inner");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_EQ(rows[1].name, "outer");
  EXPECT_EQ(rows[1].count, 1u);

  // Counts-only summary is deterministic and byte-stable.
  EXPECT_EQ(trace.summary_json(false),
            "{\"spans\":{\"inner\":{\"count\":2},\"outer\":{\"count\":1}}}");
  // With wall times the keys appear (values are nondeterministic).
  const obs::JsonValue timed = obs::parse_json(trace.summary_json(true));
  const obs::JsonValue* inner = timed.find("spans")->find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_NE(inner->find("total_ns"), nullptr);
  EXPECT_NE(inner->find("max_ns"), nullptr);
}

TEST(Trace, ChromeJsonParsesBack) {
  obs::Trace trace;
  {
    obs::TraceScope scope(trace);
    obs::TraceSpan a("phase.a");
    { obs::TraceSpan b("phase.b"); }
  }
  const obs::JsonValue doc = obs::parse_json(trace.chrome_json());
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, obs::JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), 2u);
  for (const obs::JsonValue& e : events->array) {
    EXPECT_EQ(e.find("ph")->string_value, "X");
    EXPECT_NE(e.find("name"), nullptr);
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("dur"), nullptr);
    EXPECT_NE(e.find("args")->find("depth"), nullptr);
  }
}

// --- Golden snapshot ---------------------------------------------------------

// A fixed-seed simulate run must produce this exact metrics document (no
// wall times are ever recorded in the registry, so the comparison is
// byte-for-byte). If an intentional instrumentation change lands, rerun
// and update the literal — the point is that *unintentional* changes and
// thread-count effects cannot slip through.
constexpr const char* kGoldenSimulateMetrics =
    "{\"schema\":\"optrt.metrics.v1\","
    "\"counters\":{"
    "\"core.certified_graph.attempts\":1,"
    "\"core.certified_graph.rejects\":0,"
    "\"graph.distance_cache.misses\":1,"
    "\"sim.deflections\":0,"
    "\"sim.delivered\":266,"
    "\"sim.dropped\":34,"
    "\"sim.fallback_messages\":0,"
    "\"sim.fault_events\":20,"
    "\"sim.hops\":420,"
    "\"sim.retries\":136,"
    "\"sim.runs\":1,"
    "\"sim.runs.policy.retry\":1,"
    "\"sim.sent\":300},"
    "\"gauges\":{"
    "\"graph.distance_cache.size\":1,"
    "\"sim.queue_peak\":300},"
    "\"histograms\":{"
    "\"sim.delivered_hops\":{"
    "\"bounds\":[1,2,3,4,6,8,12,16,24,32,48,64,128,256,1024,65536],"
    "\"counts\":[120,146,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"
    "\"sum\":412,\"count\":266}}}";

TEST(ObsGolden, FixedSeedSimulateSnapshot) {
  graph::DistanceCache::global().clear();
  obs::ScopedRegistry scoped;

  Rng rng(4242);
  const Graph g = core::certified_random_graph(32, rng);
  const schemes::CompactDiam2Scheme scheme(g, {});

  const net::FaultPlan plan =
      net::uniform_link_faults(g, /*failures=*/20, {.seed = 9});
  net::SimulatorConfig config;
  config.measure_stretch = true;
  config.resilience.policy = net::ResiliencePolicy::kRetry;
  net::Simulator sim(g, scheme, config);
  sim.schedule(plan);
  Rng traffic_rng(77);
  for (const auto& [u, v] : net::uniform_random(32, 300, traffic_rng)) {
    sim.send(u, v);
  }
  (void)sim.run();

  EXPECT_EQ(obs::metrics_json(scoped.registry()), kGoldenSimulateMetrics);
}

}  // namespace
}  // namespace optrt
