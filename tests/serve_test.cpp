// The route-serving daemon, locked down:
//  - byte-pinned ORTP v1 golden frames (a wire-format change cannot land
//    silently — the hex literals here are the protocol spec),
//  - a differential oracle: answers served over a real socketpair must be
//    bit-identical to the in-memory scheme's next_hop for every ordered
//    pair, for all seven serializable scheme kinds,
//  - hot reload mid-stream: swapping the artifact under a live connection
//    drops zero in-flight requests and transitions answers atomically,
//  - pinned serve.* counter deltas for the dispatch core.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bitio/crc32.hpp"
#include "core/experiment.hpp"
#include "core/graph_io.hpp"
#include "graph/generators.hpp"
#include "model/scheme.hpp"
#include "obs/metrics.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hierarchical.hpp"
#include "schemes/hub.hpp"
#include "schemes/landmark.hpp"
#include "schemes/routing_center.hpp"
#include "schemes/sequential_search.hpp"
#include "schemes/serialization.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

std::string hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

/// Scratch directory removed on scope exit.
struct TempDir {
  std::filesystem::path path;
  TempDir() {
    char tmpl[] = "/tmp/serve_test.XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// One served fixture: a stem plus the in-memory scheme it was built from
/// (the differential oracle).
struct Fixture {
  std::string stem;
  std::unique_ptr<model::RoutingScheme> scheme;
};

/// Writes `<stem>.eg` + `<stem>.ort` and returns the oracle scheme.
template <typename SchemeT>
Fixture add_fixture(const TempDir& dir, const std::string& stem,
                    const Graph& g, SchemeT scheme) {
  core::save_graph(dir.file(stem + ".eg"), g);
  schemes::save_artifact(dir.file(stem + ".ort"), schemes::serialize(scheme));
  return {stem, std::make_unique<SchemeT>(std::move(scheme))};
}

/// All eight serializable kinds over one graph, as served fixtures
/// g0..g7 (ids are sorted-stem ranks, so id == index here).
std::vector<Fixture> all_kinds(const TempDir& dir, const Graph& g) {
  std::vector<Fixture> fixtures;
  fixtures.push_back(add_fixture(dir, "g0", g, schemes::CompactDiam2Scheme(g, {})));
  fixtures.push_back(
      add_fixture(dir, "g1", g, schemes::FullTableScheme::standard(g)));
  fixtures.push_back(add_fixture(dir, "g2", g, schemes::HubScheme(g)));
  fixtures.push_back(add_fixture(dir, "g3", g, schemes::RoutingCenterScheme(g)));
  fixtures.push_back(add_fixture(dir, "g4", g, schemes::LandmarkScheme(g)));
  fixtures.push_back(add_fixture(dir, "g5", g, schemes::HierarchicalScheme(g)));
  fixtures.push_back(
      add_fixture(dir, "g6", g, schemes::SequentialSearchScheme(g)));
  fixtures.push_back(add_fixture(dir, "g7", g, schemes::TzScheme(g)));
  return fixtures;
}

/// An in-process server: no listeners, connections arrive as socketpair
/// ends through adopt_connection.
class Harness {
 public:
  explicit Harness(serve::ArtifactStore& store, std::size_t threads = 4) {
    serve::ServerConfig config;
    config.threads = threads;
    config.poll_interval_ms = 5;
    server_ = std::make_unique<serve::Server>(store, config);
    runner_ = std::thread([this] { server_->run(); });
  }

  ~Harness() {
    server_->stop();
    runner_.join();
  }

  [[nodiscard]] serve::Client client() {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server_->adopt_connection(sv[0]);
    return serve::Client(sv[1]);
  }

  [[nodiscard]] serve::Server& server() { return *server_; }

 private:
  std::unique_ptr<serve::Server> server_;
  std::thread runner_;
};

// ---- Golden frames: the ORTP v1 wire format, byte for byte ---------------

TEST(ServeProtocolGolden, RequestFramesArePinned) {
  EXPECT_EQ(hex(serve::encode_frame(serve::make_ping_request())),
            "4f5254500101000000000000000000000000000000000000");
  const serve::QueryPair one{3, 17};
  EXPECT_EQ(
      hex(serve::encode_frame(
          serve::make_next_hop_request(0, std::span<const serve::QueryPair>(
                                              &one, 1)))),
      "4f5254500102000000000000010000000800000070e808030300000011000000");
  const serve::QueryPair two[2] = {{3, 17}, {40, 5}};
  EXPECT_EQ(hex(serve::encode_frame(serve::make_route_request(1, two))),
            "4f52545001030000010000000200000010000000e5d7834f0300000011000000"
            "2800000005000000");
  EXPECT_EQ(hex(serve::encode_frame(serve::make_list_request())),
            "4f5254500104000000000000000000000000000000000000");
  EXPECT_EQ(hex(serve::encode_frame(serve::make_reload_request())),
            "4f5254500105000000000000000000000000000000000000");
}

TEST(ServeProtocolGolden, ResponseFramesArePinned) {
  EXPECT_EQ(hex(serve::encode_frame(serve::make_error_response(
                7, serve::WireError::kBadPair, "pair 0 out of range or equal"))),
            "4f525450017f000007000000000000001d0000008e3369a109706169722030206f"
            "7574206f662072616e6765206f7220657175616c");
  serve::Frame ok;
  ok.opcode = static_cast<std::uint8_t>(2 | serve::kResponseBit);
  ok.pair_count = 1;
  serve::put_u32(ok.payload, 17);
  EXPECT_EQ(hex(serve::encode_frame(ok)),
            "4f52545001820000000000000100000004000000e6efe1c911000000");
}

TEST(ServeProtocolGolden, PinnedFramesRoundTrip) {
  const serve::QueryPair one{3, 17};
  const serve::Frame request =
      serve::make_next_hop_request(0, std::span<const serve::QueryPair>(&one, 1));
  std::size_t consumed = 0;
  const serve::Frame back =
      serve::parse_frame(serve::encode_frame(request), &consumed);
  EXPECT_EQ(back, request);
  EXPECT_EQ(consumed, serve::kWireHeaderBytes + 8);
  const auto pairs = serve::decode_query_pairs(back);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], one);
}

TEST(ServeProtocol, WireCrcIsZlibCompatible) {
  // The golden next_hop request's CRC field (0x0308e870) must equal
  // zlib's crc32 over its payload — same convention as the ORT2 frame.
  const std::uint8_t payload[] = {3, 0, 0, 0, 17, 0, 0, 0};
  EXPECT_EQ(bitio::crc32(payload, sizeof payload), 0x0308e870u);
}

TEST(ServeProtocol, HeaderRejectionsAreTyped) {
  const auto code_of = [](std::vector<std::uint8_t> bytes) {
    try {
      serve::Frame f;
      (void)serve::parse_header(bytes, f);
      return serve::WireError{};
    } catch (const serve::ProtocolError& e) {
      return e.code();
    }
  };
  std::vector<std::uint8_t> good =
      serve::encode_frame(serve::make_ping_request());

  EXPECT_EQ(code_of({good.begin(), good.begin() + 10}),
            serve::WireError::kTruncated);
  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(code_of(bad_magic), serve::WireError::kBadMagic);
  auto bad_version = good;
  bad_version[4] = 9;
  EXPECT_EQ(code_of(bad_version), serve::WireError::kVersionMismatch);
  auto bad_opcode = good;
  bad_opcode[5] = 0x42;
  EXPECT_EQ(code_of(bad_opcode), serve::WireError::kBadOpcode);
  auto bad_reserved = good;
  bad_reserved[6] = 1;
  EXPECT_EQ(code_of(bad_reserved), serve::WireError::kMalformed);
  auto huge_payload = good;
  huge_payload[18] = 0xFF;  // payload_len byte 2 → 16 MiB
  EXPECT_EQ(code_of(huge_payload), serve::WireError::kResourceLimit);
  auto huge_pairs = good;
  huge_pairs[14] = 0xFF;  // pair_count byte 2 → > 2^16
  EXPECT_EQ(code_of(huge_pairs), serve::WireError::kResourceLimit);
  auto bad_crc = serve::encode_frame(serve::make_next_hop_request(
      0, std::vector<serve::QueryPair>{{1, 2}}));
  bad_crc.back() ^= 1;  // payload bit flip → checksum catches it
  try {
    (void)serve::parse_frame(bad_crc);
    FAIL() << "corrupt payload must not parse";
  } catch (const serve::ProtocolError& e) {
    EXPECT_EQ(e.code(), serve::WireError::kChecksumMismatch);
  }
}

// ---- Served answers == the in-memory oracle, all seven kinds -------------

TEST(ServeServer, DifferentialOracleAllKinds) {
  const Graph g = certified(48, 1996);
  const auto n = static_cast<NodeId>(g.node_count());
  TempDir dir;
  const std::vector<Fixture> fixtures = all_kinds(dir, g);

  serve::ArtifactStore store(dir.str());
  const serve::LoadReport report = store.load();
  ASSERT_TRUE(report.ok()) << serve::format_load_failure(report.failures[0]);
  ASSERT_EQ(report.loaded, fixtures.size());

  Harness harness(store);
  serve::Client client = harness.client();

  std::vector<serve::QueryPair> pairs;
  pairs.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) pairs.push_back({u, v});
    }
  }

  for (std::size_t id = 0; id < fixtures.size(); ++id) {
    const model::RoutingScheme& oracle = *fixtures[id].scheme;
    const auto hops =
        client.next_hops(static_cast<std::uint32_t>(id), pairs);
    ASSERT_EQ(hops.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      model::MessageHeader header;
      const NodeId expect = oracle.next_hop(
          pairs[i].src, oracle.label_of(pairs[i].dst), header);
      ASSERT_EQ(hops[i], expect)
          << oracle.name() << ": src=" << pairs[i].src
          << " dst=" << pairs[i].dst;
    }
  }
}

TEST(ServeServer, RoutesMatchTheOracleWalk) {
  const Graph g = certified(32, 7);
  TempDir dir;
  // The two header-stateful kinds exercise the persistent-header walk.
  std::vector<Fixture> fixtures;
  fixtures.push_back(
      add_fixture(dir, "g0", g, schemes::HierarchicalScheme(g)));
  fixtures.push_back(
      add_fixture(dir, "g1", g, schemes::SequentialSearchScheme(g)));

  serve::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.load().ok());
  Harness harness(store);
  serve::Client client = harness.client();

  const auto n = static_cast<NodeId>(g.node_count());
  std::vector<serve::QueryPair> pairs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) pairs.push_back({u, v});
    }
  }
  for (std::size_t id = 0; id < fixtures.size(); ++id) {
    const model::RoutingScheme& oracle = *fixtures[id].scheme;
    const auto paths = client.routes(static_cast<std::uint32_t>(id), pairs);
    ASSERT_EQ(paths.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      // Local oracle walk, persistent header — the daemon's kRoute
      // semantics (and the CLI route command's).
      std::vector<NodeId> expect;
      model::MessageHeader header;
      NodeId at = pairs[i].src;
      const NodeId dest_label = oracle.label_of(pairs[i].dst);
      while (at != pairs[i].dst) {
        const NodeId next = oracle.next_hop(at, dest_label, header);
        header.came_from = at;
        at = next;
        expect.push_back(at);
      }
      ASSERT_EQ(paths[i], expect)
          << oracle.name() << ": src=" << pairs[i].src
          << " dst=" << pairs[i].dst;
    }
  }
}

TEST(ServeServer, PingListAndTypedRequestErrors) {
  const Graph g = certified(32, 11);
  TempDir dir;
  const std::vector<Fixture> fixtures = all_kinds(dir, g);
  serve::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.load().ok());
  Harness harness(store);
  serve::Client client = harness.client();

  client.ping();  // throws on failure

  const auto rows = client.list();
  ASSERT_EQ(rows.size(), fixtures.size());
  for (std::size_t id = 0; id < rows.size(); ++id) {
    EXPECT_EQ(rows[id].id, id);
    EXPECT_EQ(rows[id].name, fixtures[id].stem);
    EXPECT_EQ(rows[id].node_count, g.node_count());
  }
  EXPECT_EQ(static_cast<schemes::SchemeKind>(rows[1].kind),
            schemes::SchemeKind::kFullTable);

  EXPECT_EQ(client.reload(), fixtures.size());

  // Request-level failures come back as typed error frames on a healthy
  // connection — the client surfaces them as ProtocolError.
  try {
    (void)client.next_hops(99, std::vector<serve::QueryPair>{{0, 1}});
    FAIL() << "unknown artifact must be rejected";
  } catch (const serve::ProtocolError& e) {
    EXPECT_EQ(e.code(), serve::WireError::kUnknownArtifact);
  }
  try {
    (void)client.next_hops(0, std::vector<serve::QueryPair>{{0, 999}});
    FAIL() << "out-of-range pair must be rejected";
  } catch (const serve::ProtocolError& e) {
    EXPECT_EQ(e.code(), serve::WireError::kBadPair);
  }
  try {
    (void)client.next_hops(0, std::vector<serve::QueryPair>{{5, 5}});
    FAIL() << "src == dst must be rejected";
  } catch (const serve::ProtocolError& e) {
    EXPECT_EQ(e.code(), serve::WireError::kBadPair);
  }
  client.ping();  // the connection survived every typed error
}

// ---- Hot reload under live traffic ---------------------------------------

TEST(ServeServer, HotReloadMidStreamDropsNothing) {
  const Graph g = certified(48, 1996);
  const auto n = static_cast<NodeId>(g.node_count());
  TempDir dir;
  // Full-table routes to the least shortest-path successor; the hub
  // scheme detours via its hub — observably different answers, so the
  // reload transition is visible in the served hops.
  const schemes::FullTableScheme before = schemes::FullTableScheme::standard(g);
  const schemes::HubScheme after(g);
  core::save_graph(dir.file("g0.eg"), g);
  schemes::save_artifact(dir.file("g0.ort"), schemes::serialize(before));

  std::vector<serve::QueryPair> pairs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) pairs.push_back({u, v});
    }
  }
  const auto oracle_of = [&](const model::RoutingScheme& s) {
    std::vector<NodeId> hops(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      model::MessageHeader header;
      hops[i] = s.next_hop(pairs[i].src, s.label_of(pairs[i].dst), header);
    }
    return hops;
  };
  const std::vector<NodeId> oracle_a = oracle_of(before);
  const std::vector<NodeId> oracle_b = oracle_of(after);
  ASSERT_NE(oracle_a, oracle_b)
      << "fixture schemes must answer differently somewhere";

  serve::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.load().ok());
  Harness harness(store);

  std::atomic<bool> reloaded{false};
  std::atomic<bool> stop{false};
  std::size_t matched_a = 0;
  std::size_t matched_b = 0;
  std::size_t matched_b_after_reload = 0;
  std::size_t after_reload = 0;
  std::string failure;

  std::thread querier([&, client = harness.client()]() mutable {
    while (!stop.load()) {
      const bool sent_after_reload = reloaded.load();
      std::vector<NodeId> hops;
      try {
        hops = client.next_hops(0, pairs);
      } catch (const std::exception& e) {
        failure = e.what();  // any dropped/failed request fails the test
        return;
      }
      if (hops == oracle_a) {
        ++matched_a;
      } else if (hops == oracle_b) {
        ++matched_b;
      } else {
        failure = "served answers matched neither artifact";
        return;
      }
      if (sent_after_reload) {
        ++after_reload;
        if (hops == oracle_b) ++matched_b_after_reload;
      }
    }
  });

  // Let traffic flow on the old artifact, swap it (atomic tmp+rename),
  // reload over a second connection, then let traffic continue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  schemes::save_artifact(dir.file("g0.ort"), schemes::serialize(after));
  {
    serve::Client admin = harness.client();
    EXPECT_EQ(admin.reload(), 1u);
  }
  reloaded.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  querier.join();

  EXPECT_TRUE(failure.empty()) << failure;
  EXPECT_GT(matched_a, 0u) << "no request was served by the old artifact";
  EXPECT_GT(after_reload, 0u) << "no request was sent after the reload";
  // A request sent after reload() returned must answer from the new
  // catalog: the swap happened-before the reload response.
  EXPECT_EQ(matched_b_after_reload, after_reload);
  EXPECT_GT(matched_b, 0u);
}

TEST(ServeServer, ReloadStormMidStreamNeverServesATornCatalog) {
  // The SIGHUP-storm scenario (optrtd maps SIGHUP to exactly this
  // store.load() path): N rapid artifact swaps while a querier streams
  // batches. Every batch must answer entirely from one catalog — all
  // hops matching one artifact's oracle, never a mix — and zero requests
  // may drop. The catalog epoch pins the swap count: monotone, one
  // increment per successful reload.
  const Graph g = certified(40, 2024);
  const auto n = static_cast<NodeId>(g.node_count());
  TempDir dir;
  const schemes::FullTableScheme scheme_a = schemes::FullTableScheme::standard(g);
  const schemes::HubScheme scheme_b(g);
  core::save_graph(dir.file("g0.eg"), g);
  schemes::save_artifact(dir.file("g0.ort"), schemes::serialize(scheme_a));

  std::vector<serve::QueryPair> pairs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) pairs.push_back({u, v});
    }
  }
  const auto oracle_of = [&](const model::RoutingScheme& s) {
    std::vector<NodeId> hops(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      model::MessageHeader header;
      hops[i] = s.next_hop(pairs[i].src, s.label_of(pairs[i].dst), header);
    }
    return hops;
  };
  const std::vector<NodeId> oracle_a = oracle_of(scheme_a);
  const std::vector<NodeId> oracle_b = oracle_of(scheme_b);
  ASSERT_NE(oracle_a, oracle_b);

  serve::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.load().ok());
  EXPECT_EQ(store.catalog()->epoch, 1u);
  Harness harness(store);

  std::atomic<bool> stop{false};
  std::size_t batches = 0;
  std::size_t matched_a = 0;
  std::size_t matched_b = 0;
  std::string failure;
  std::thread querier([&, client = harness.client()]() mutable {
    while (!stop.load()) {
      std::vector<NodeId> hops;
      try {
        hops = client.next_hops(0, pairs);
      } catch (const std::exception& e) {
        failure = e.what();
        return;
      }
      ++batches;
      if (hops == oracle_a) {
        ++matched_a;
      } else if (hops == oracle_b) {
        ++matched_b;
      } else {
        failure = "torn catalog: a batch matched neither oracle";
        return;
      }
    }
  });

  // The storm: 16 swaps alternating the artifact under the live stream,
  // each followed by an immediate reload over its own admin connection.
  constexpr std::size_t kSwaps = 16;
  for (std::size_t i = 0; i < kSwaps; ++i) {
    schemes::save_artifact(
        dir.file("g0.ort"),
        i % 2 == 0 ? schemes::serialize(scheme_b) : schemes::serialize(scheme_a));
    serve::Client admin = harness.client();
    EXPECT_EQ(admin.reload(), 1u);
    EXPECT_EQ(store.catalog()->epoch, i + 2) << "epoch must track every swap";
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  querier.join();

  EXPECT_TRUE(failure.empty()) << failure;
  EXPECT_GT(batches, 0u);
  EXPECT_EQ(matched_a + matched_b, batches) << "every batch answered whole";
  EXPECT_EQ(store.catalog()->epoch, kSwaps + 1);
}

// ---- Pinned serve.* counter deltas ---------------------------------------

TEST(ServeServer, CounterDeltasArePinned) {
  const Graph g = certified(32, 3);
  TempDir dir;
  core::save_graph(dir.file("g0.eg"), g);
  schemes::save_artifact(dir.file("g0.ort"),
                         schemes::serialize(schemes::FullTableScheme::standard(g)));

  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();

  serve::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.load().ok());
  EXPECT_EQ(reg.counter_value("serve.reloads"), 1u);
  EXPECT_EQ(reg.counter_value("serve.artifact_mmaps"), 1u);
  EXPECT_EQ(reg.gauge_value("serve.artifacts"), 1);

  // The pure dispatch core, no sockets: every counter below is a direct
  // consequence of exactly one frame.
  serve::Server server(store, {});
  const auto call = [&](const serve::Frame& f) {
    return serve::parse_frame(server.handle_request(serve::encode_frame(f)));
  };

  EXPECT_FALSE(call(serve::make_ping_request()).is_error());
  EXPECT_EQ(reg.counter_value("serve.requests"), 1u);
  EXPECT_EQ(reg.counter_value("serve.requests.ping"), 1u);

  const std::vector<serve::QueryPair> three{{0, 1}, {1, 2}, {2, 3}};
  EXPECT_FALSE(call(serve::make_next_hop_request(0, three)).is_error());
  EXPECT_EQ(reg.counter_value("serve.requests"), 2u);
  EXPECT_EQ(reg.counter_value("serve.requests.next_hop"), 1u);
  EXPECT_EQ(reg.counter_value("serve.pairs"), 3u);

  auto bad_magic = serve::encode_frame(serve::make_ping_request());
  bad_magic[0] ^= 0xFF;
  const serve::Frame err = serve::parse_frame(server.handle_request(bad_magic));
  ASSERT_TRUE(err.is_error());
  EXPECT_EQ(serve::decode_error(err).code, serve::WireError::kBadMagic);
  EXPECT_EQ(reg.counter_value("serve.requests"), 3u);
  EXPECT_EQ(reg.counter_value("serve.errors"), 1u);
  EXPECT_EQ(reg.counter_value("serve.errors.bad-magic"), 1u);

  const serve::Frame unknown =
      call(serve::make_next_hop_request(42, three));
  ASSERT_TRUE(unknown.is_error());
  EXPECT_EQ(serve::decode_error(unknown).code,
            serve::WireError::kUnknownArtifact);
  EXPECT_EQ(reg.counter_value("serve.errors"), 2u);
  EXPECT_EQ(reg.counter_value("serve.errors.unknown-artifact"), 1u);

  EXPECT_FALSE(call(serve::make_reload_request()).is_error());
  EXPECT_EQ(reg.counter_value("serve.reloads"), 2u);
}

/// load() must never swap in a half-loaded catalog: a corrupt artifact
/// keeps the previous snapshot serving, with the failure attributed to
/// the right file in reject_file format.
TEST(ServeStore, FailedReloadKeepsTheOldCatalog) {
  const Graph g = certified(32, 5);
  TempDir dir;
  core::save_graph(dir.file("g0.eg"), g);
  schemes::save_artifact(dir.file("g0.ort"),
                         schemes::serialize(schemes::FullTableScheme::standard(g)));
  serve::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.load().ok());
  const auto catalog = store.catalog();

  // Corrupt the artifact on disk and reload: report the .ort, keep serving.
  std::vector<std::uint8_t> raw;
  {
    std::ifstream in(dir.file("g0.ort"), std::ios::binary);
    raw.assign(std::istreambuf_iterator<char>(in), {});
  }
  raw[raw.size() / 2] ^= 0xFF;
  {
    std::ofstream out(dir.file("g0.ort"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
  }
  const serve::LoadReport bad = store.load();
  EXPECT_FALSE(bad.ok());
  ASSERT_EQ(bad.failures.size(), 1u);
  EXPECT_EQ(bad.failures[0].path, dir.file("g0.ort"));
  EXPECT_EQ(serve::format_load_failure(bad.failures[0]).rfind("error: ", 0), 0u);
  EXPECT_EQ(store.catalog(), catalog) << "failed reload must not swap";
  EXPECT_EQ(store.catalog()->epoch, 1u) << "epoch counts successful swaps only";
}

}  // namespace
}  // namespace optrt
