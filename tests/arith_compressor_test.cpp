// Tests for the arithmetic coder, the whole-graph enumerative compressor,
// the distributed construction protocol, and the sampled verifier.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "bitio/arith.hpp"
#include "bitio/codes.hpp"
#include "bitio/entropy.hpp"
#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "incompressibility/graph_compressor.hpp"
#include "model/verifier.hpp"
#include "net/construction.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/errors.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::Rng;

// --- Arithmetic coder ---------------------------------------------------------

TEST(Arithmetic, RoundTripsRandomStrings) {
  std::mt19937_64 rng(1001);
  for (std::size_t len : {0u, 1u, 2u, 33u, 64u, 1000u, 5000u}) {
    bitio::BitVector bits;
    for (std::size_t i = 0; i < len; ++i) bits.push_back(rng() & 1u);
    const bitio::BitVector code = bitio::arithmetic_encode(bits);
    EXPECT_EQ(bitio::arithmetic_decode(code, len), bits) << "len=" << len;
  }
}

TEST(Arithmetic, RoundTripsSkewedStrings) {
  std::mt19937_64 rng(1002);
  for (double p : {0.01, 0.1, 0.35, 0.9, 0.99}) {
    std::bernoulli_distribution coin(p);
    bitio::BitVector bits;
    for (int i = 0; i < 4000; ++i) bits.push_back(coin(rng));
    const bitio::BitVector code = bitio::arithmetic_encode(bits);
    ASSERT_EQ(bitio::arithmetic_decode(code, bits.size()), bits) << p;
  }
}

TEST(Arithmetic, ApproachesEmpiricalEntropy) {
  std::mt19937_64 rng(1003);
  std::bernoulli_distribution coin(0.1);
  bitio::BitVector bits;
  for (int i = 0; i < 20000; ++i) bits.push_back(coin(rng));
  const double h = bitio::empirical_entropy(bits);
  const double coded = static_cast<double>(bitio::arithmetic_coded_bits(bits));
  const double ideal = h * static_cast<double>(bits.size());
  EXPECT_LE(coded, ideal + 0.5 * std::log2(20000.0) + 64.0);
  EXPECT_GE(coded, ideal - 1.0);  // cannot beat entropy
}

TEST(Arithmetic, IncompressibleStringsStayIncompressible) {
  std::mt19937_64 rng(1004);
  bitio::BitVector bits;
  for (int i = 0; i < 8192; ++i) bits.push_back(rng() & 1u);
  EXPECT_GE(bitio::arithmetic_coded_bits(bits), bits.size() - 16);
}

TEST(Arithmetic, ConstantStringsCollapse) {
  bitio::BitVector zeros(8192);
  EXPECT_LT(bitio::arithmetic_coded_bits(zeros), 64u);
}

// --- Whole-graph compressor ----------------------------------------------------

class CompressorFamilies : public ::testing::TestWithParam<int> {
 public:
  static Graph make(int which) {
    Rng rng(1005);
    switch (which) {
      case 0: return graph::chain(40);
      case 1: return graph::star(40);
      case 2: return graph::grid(6, 7);
      case 3: return graph::complete(24);
      case 4: return graph::lower_bound_gb(10);
      case 5: return graph::hypercube(5);
      default: return graph::random_uniform(40, rng);
    }
  }
};

TEST_P(CompressorFamilies, RoundTripsExactly) {
  const Graph g = make(GetParam());
  const bitio::BitVector code = incompress::compress_graph(g);
  EXPECT_EQ(incompress::decompress_graph(code, g.node_count()), g);
  EXPECT_EQ(code.size(), incompress::compressed_graph_bits(g));
}

INSTANTIATE_TEST_SUITE_P(Families, CompressorFamilies,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(Compressor, StructuredGraphsCompressRandomDoNot) {
  const std::size_t n = 128;
  const std::size_t eg = n * (n - 1) / 2;
  // Sparse/structured: large savings.
  EXPECT_LT(incompress::compressed_graph_bits(graph::chain(n)), eg / 4);
  EXPECT_LT(incompress::compressed_graph_bits(graph::star(n)), eg / 4);
  EXPECT_LT(incompress::compressed_graph_bits(graph::complete(n)), eg / 4);
  // Random: within ~(½ log n + weight header) per row of incompressible.
  Rng rng(1006);
  const Graph g = graph::random_uniform(n, rng);
  const std::size_t compressed = incompress::compressed_graph_bits(g);
  EXPECT_GT(compressed, eg * 95 / 100);
  EXPECT_LE(compressed, eg + n * 8);  // headers only
}

// --- Distributed construction ---------------------------------------------------

class DistributedConstruction : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistributedConstruction, BitIdenticalToCentralized) {
  const std::size_t n = GetParam();
  Rng rng(n + 1007);
  const Graph g = core::certified_random_graph(n, rng);
  const auto result = net::distributed_compact_construction(g);
  for (graph::NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(result.node_tables[u],
              schemes::build_compact_node(g, u, {}).bits)
        << "node " << u;
  }
}

TEST_P(DistributedConstruction, MessageAccountingMatchesFormula) {
  const std::size_t n = GetParam();
  Rng rng(n + 1008);
  const Graph g = core::certified_random_graph(n, rng);
  const auto result = net::distributed_compact_construction(g);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.messages, 2 * g.edge_count());
  std::uint64_t expected_bits = 0;
  const unsigned id_width = bitio::ceil_log2(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    expected_bits += static_cast<std::uint64_t>(g.degree(v)) * g.degree(v) *
                     id_width;
  }
  EXPECT_EQ(result.message_bits, expected_bits);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistributedConstruction,
                         ::testing::Values(48, 96));

TEST(DistributedConstructionEdge, LoadedTablesRouteCorrectly) {
  Rng rng(1009);
  const Graph g = core::certified_random_graph(64, rng);
  auto result = net::distributed_compact_construction(g);
  const schemes::CompactDiam2Scheme scheme(
      g, schemes::CompactDiam2Scheme::Options{},
      std::move(result.node_tables));
  const auto v = model::verify_scheme(g, scheme);
  EXPECT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v.max_stretch, 1.0);
}

TEST(DistributedConstructionEdge, FailsWhereCentralizedFails) {
  EXPECT_THROW(net::distributed_compact_construction(graph::chain(10)),
               schemes::SchemeInapplicable);
}

// --- Sampled verifier -----------------------------------------------------------

TEST(SampledVerifier, AgreesWithExhaustiveOnCorrectSchemes) {
  Rng rng(1010);
  const Graph g = core::certified_random_graph(96, rng);
  const schemes::CompactDiam2Scheme scheme(g, {});
  const auto sampled = model::verify_scheme_sampled(g, scheme, 2000, 7);
  EXPECT_TRUE(sampled.all_delivered);
  EXPECT_EQ(sampled.pairs_checked, 2000u);
  EXPECT_DOUBLE_EQ(sampled.max_stretch, 1.0);
}

TEST(SampledVerifier, ScalesToLargeN) {
  Rng rng(1011);
  const Graph g = core::certified_random_graph(512, rng);
  const schemes::CompactDiam2Scheme scheme(g, {});
  const auto sampled = model::verify_scheme_sampled(g, scheme, 3000, 11);
  EXPECT_TRUE(sampled.all_delivered);
  EXPECT_DOUBLE_EQ(sampled.max_stretch, 1.0);
  // Theorem 1 bound holds at this scale too.
  EXPECT_LE(scheme.space().max_node_bits(), 6u * 512);
}

}  // namespace
}  // namespace optrt
