// Tests for Lemma 3 covers and the Lemma 1–3 randomness certificate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/cover.hpp"
#include "graph/generators.hpp"
#include "graph/ports.hpp"
#include "graph/randomness.hpp"

namespace optrt::graph {
namespace {

TEST(Cover, CompleteGraphHasEmptyCover) {
  const Graph g = complete(6);
  const NeighborCover cover = least_neighbor_cover(g, 0);
  EXPECT_TRUE(cover.complete);
  EXPECT_TRUE(cover.centers.empty());  // no non-neighbours to cover
  EXPECT_EQ(cover.covered_count(), 0u);
}

TEST(Cover, StarCenterCoversInstantly) {
  const Graph g = star(8);
  // Leaves: all other leaves are non-neighbours, covered by the centre.
  const NeighborCover cover = least_neighbor_cover(g, 3);
  EXPECT_TRUE(cover.complete);
  ASSERT_EQ(cover.centers.size(), 1u);
  EXPECT_EQ(cover.centers[0], 0u);
  EXPECT_EQ(cover.covered_count(), 6u);  // 8 − centre − self
}

TEST(Cover, ChainEndpointIncomplete) {
  const Graph g = chain(6);
  const NeighborCover cover = least_neighbor_cover(g, 0);
  EXPECT_FALSE(cover.complete);  // nodes at distance > 2 exist
}

TEST(Cover, CovererIsFirstAdjacentCenter) {
  Rng rng(21);
  const Graph g = random_uniform(64, rng);
  const NeighborCover cover = least_neighbor_cover(g, 0);
  ASSERT_TRUE(cover.complete);
  for (NodeId w = 0; w < 64; ++w) {
    const auto c = cover.coverer[w];
    if (c == kNoCoverer) continue;
    EXPECT_TRUE(g.has_edge(cover.centers[c], w));
    // No earlier center is adjacent to w.
    for (std::uint32_t e = 0; e < c; ++e) {
      EXPECT_FALSE(g.has_edge(cover.centers[e], w));
    }
  }
}

TEST(Cover, LeastCoverCentersArePrefixOfNeighbors) {
  Rng rng(22);
  const Graph g = random_uniform(64, rng);
  for (NodeId u = 0; u < 8; ++u) {
    const NeighborCover cover = least_neighbor_cover(g, u);
    const auto nbrs = g.neighbors(u);
    ASSERT_LE(cover.centers.size(), nbrs.size());
    for (std::size_t i = 0; i < cover.centers.size(); ++i) {
      EXPECT_EQ(cover.centers[i], nbrs[i]);
    }
  }
}

TEST(Cover, GreedyNeverLargerThanLeast) {
  Rng rng(23);
  const Graph g = random_uniform(96, rng);
  for (NodeId u = 0; u < 16; ++u) {
    const auto least = least_neighbor_cover(g, u);
    const auto greedy = greedy_neighbor_cover(g, u);
    ASSERT_TRUE(least.complete);
    ASSERT_TRUE(greedy.complete);
    EXPECT_LE(greedy.centers.size(), least.centers.size());
  }
}

TEST(Cover, SelfAndNeighborsHaveNoCoverer) {
  Rng rng(24);
  const Graph g = random_uniform(48, rng);
  const NeighborCover cover = least_neighbor_cover(g, 5);
  EXPECT_EQ(cover.coverer[5], kNoCoverer);
  for (NodeId v : g.neighbors(5)) EXPECT_EQ(cover.coverer[v], kNoCoverer);
}

class CoverSizeLemma3 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CoverSizeLemma3, CertifiedGraphsHaveLogarithmicCovers) {
  const std::size_t n = GetParam();
  Rng rng(31 + n);
  const Graph g = random_uniform(n, rng);
  const auto bound = static_cast<std::size_t>(
      std::ceil(6.0 * std::log2(static_cast<double>(n))));
  for (NodeId u = 0; u < n; ++u) {
    const NeighborCover cover = least_neighbor_cover(g, u);
    EXPECT_TRUE(cover.complete);
    EXPECT_LE(cover.centers.size(), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoverSizeLemma3,
                         ::testing::Values(32, 64, 128, 256));

class Claim1Decay : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Claim1Decay, EachCenterCoversAThirdOfTheRemainder) {
  // Claim 1 (proof of Theorem 1): for t ≤ l (while more than n/loglog n
  // non-neighbours remain), |A_t| ≥ (1/3)·m_{t−1} — each successive least
  // neighbour absorbs at least a third of what is left.
  const std::size_t n = GetParam();
  Rng rng(500 + n);
  const Graph g = random_uniform(n, rng);
  const double threshold =
      static_cast<double>(n) / std::log2(std::log2(static_cast<double>(n)));
  for (NodeId u = 0; u < 12; ++u) {
    const NeighborCover cover = least_neighbor_cover(g, u);
    ASSERT_TRUE(cover.complete);
    std::vector<std::size_t> covered_by(cover.centers.size(), 0);
    std::size_t m0 = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (cover.coverer[w] != kNoCoverer) {
        ++covered_by[cover.coverer[w]];
        ++m0;
      }
    }
    double remaining = static_cast<double>(m0);
    for (std::size_t t = 0; t < covered_by.size(); ++t) {
      if (remaining <= threshold) break;  // Claim 1 only speaks below l
      EXPECT_GE(static_cast<double>(covered_by[t]), remaining / 3.0)
          << "n=" << n << " u=" << u << " t=" << t;
      remaining -= static_cast<double>(covered_by[t]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Claim1Decay,
                         ::testing::Values(64, 128, 256, 512));

TEST(Reproducibility, GraphsAreDeterministicGivenSeeds) {
  // A reproduction repo must reproduce itself: same seed → identical graph.
  for (int round = 0; round < 2; ++round) {
    // (Loop catches accidental global state between constructions.)
    Rng r1(424242), r2(424242);
    ASSERT_EQ(random_uniform(96, r1), random_uniform(96, r2));
    Rng p1(7), p2(7);
    const Graph g = chain(12);
    const PortAssignment a = PortAssignment::random(g, p1);
    const PortAssignment b = PortAssignment::random(g, p2);
    for (NodeId u = 0; u < 12; ++u) {
      const auto sa = a.ports(u);
      const auto sb = b.ports(u);
      ASSERT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()));
    }
  }
}

// --- Randomness certificate --------------------------------------------------

TEST(Certificate, UniformGraphsPass) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Graph g = random_uniform(128, rng);
    const RandomnessCertificate cert = certify(g);
    EXPECT_TRUE(cert.degrees_concentrated) << "seed " << seed;
    EXPECT_TRUE(cert.diameter_two) << "seed " << seed;
    EXPECT_TRUE(cert.covers_small) << "seed " << seed;
    EXPECT_TRUE(cert.ok());
  }
}

TEST(Certificate, ChainFailsEverything) {
  const RandomnessCertificate cert = certify(chain(64));
  EXPECT_FALSE(cert.degrees_concentrated);  // degree 2 vs (n−1)/2
  EXPECT_FALSE(cert.diameter_two);
  EXPECT_FALSE(cert.ok());
}

TEST(Certificate, CompleteGraphFailsLemma2) {
  // "The only graphs with diameter 1 are the complete graphs … hence not
  // random."
  const RandomnessCertificate cert = certify(complete(32));
  EXPECT_FALSE(cert.diameter_two);
  EXPECT_EQ(cert.diameter_bound_witness, 1u);
  EXPECT_FALSE(cert.ok());
}

TEST(Certificate, StarFailsDegreeConcentration) {
  const RandomnessCertificate cert = certify(star(64));
  EXPECT_FALSE(cert.degrees_concentrated);
  EXPECT_FALSE(cert.ok());
}

TEST(Certificate, SparseGnpFailsDiameter) {
  Rng rng(2);
  const Graph g = random_gnp(64, 0.05, rng);
  EXPECT_FALSE(certify(g).ok());
}

TEST(DiameterAtMost2, AgreesWithDistanceMatrix) {
  EXPECT_TRUE(has_diameter_at_most_2(star(10)));
  EXPECT_TRUE(has_diameter_at_most_2(complete(10)));
  EXPECT_FALSE(has_diameter_at_most_2(chain(4)));
  EXPECT_FALSE(has_diameter_at_most_2(ring(6)));
  EXPECT_TRUE(has_diameter_at_most_2(ring(5)));
}

TEST(Certificate, DeviationBoundScalesLikeSqrtNLogN) {
  Rng rng(5);
  const Graph g = random_uniform(256, rng);
  const RandomnessCertificate cert = certify(g);
  const double expected =
      std::sqrt(255.0 * (4.0 * std::log(256.0) + std::log(2.0)) / 2.0);
  EXPECT_NEAR(cert.degree_deviation_bound, expected, 1e-9);
}

}  // namespace
}  // namespace optrt::graph
