// Cross-cutting coverage: simulator ordering and load accounting,
// construction-protocol options, label introspection, arithmetic-coder
// edge patterns, and scheme-option variants not exercised elsewhere.
#include <gtest/gtest.h>

#include "bitio/arith.hpp"
#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "net/construction.hpp"
#include "net/simulator.hpp"
#include "net/workload.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hub.hpp"
#include "schemes/neighbor_label.hpp"
#include "incompressibility/theorem6.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

// --- Simulator link loads ------------------------------------------------------

TEST(LinkLoad, CountsDirectedTraffic) {
  const Graph g = graph::chain(4);
  const auto scheme = schemes::FullTableScheme::standard(g);
  net::Simulator sim(g, scheme);
  sim.send(0, 3);
  sim.send(0, 3);
  sim.send(3, 0);
  const auto stats = sim.run();
  EXPECT_EQ(sim.link_load(0, 1), 2u);
  EXPECT_EQ(sim.link_load(1, 0), 1u);
  EXPECT_EQ(sim.link_load(1, 2), 2u);
  EXPECT_EQ(stats.max_link_load, 2u);
  EXPECT_EQ(sim.link_load(2, 0), 0u);  // never used
}

TEST(LinkLoad, HubConcentrationIsVisible) {
  const Graph g = certified(96, 1401);
  const schemes::HubScheme hub(g);
  const schemes::CompactDiam2Scheme compact(g, {});
  Rng rng(1402);
  const auto traffic = net::permutation_traffic(96, rng);
  net::Simulator hub_sim(g, hub);
  net::Simulator compact_sim(g, compact);
  for (const auto& [u, v] : traffic) {
    hub_sim.send(u, v);
    compact_sim.send(u, v);
  }
  const auto hub_stats = hub_sim.run();
  const auto compact_stats = compact_sim.run();
  EXPECT_GT(hub_stats.max_link_load, compact_stats.max_link_load);
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  // Two messages injected at the same instant on the same route keep their
  // injection order in delivery (same arrival times, stable processing).
  const Graph g = graph::chain(3);
  const auto scheme = schemes::FullTableScheme::standard(g);
  net::Simulator sim(g, scheme);
  const auto a = sim.send(0, 2, 5);
  const auto b = sim.send(0, 2, 5);
  sim.run();
  EXPECT_TRUE(sim.records()[a].delivered);
  EXPECT_TRUE(sim.records()[b].delivered);
  EXPECT_EQ(sim.records()[a].arrival_time, sim.records()[b].arrival_time);
}

TEST(Simulator, StaggeredInjectionTimes) {
  const Graph g = graph::chain(5);
  const auto scheme = schemes::FullTableScheme::standard(g);
  net::Simulator sim(g, scheme);
  const auto early = sim.send(0, 4, 0);
  const auto late = sim.send(0, 4, 100);
  const auto stats = sim.run();
  EXPECT_EQ(sim.records()[early].arrival_time, 4u);
  EXPECT_EQ(sim.records()[late].arrival_time, 104u);
  EXPECT_EQ(stats.makespan, 104u);
}

// --- Distributed construction variants ------------------------------------------

TEST(ConstructionVariants, GreedyAndRefinedMatchCentralized) {
  const Graph g = certified(64, 1403);
  for (const bool greedy : {false, true}) {
    for (const bool refined : {false, true}) {
      schemes::CompactNodeOptions opt;
      opt.greedy_cover = greedy;
      opt.threshold_log = refined;
      const auto result = net::distributed_compact_construction(g, opt);
      for (graph::NodeId u = 0; u < 8; ++u) {
        EXPECT_EQ(result.node_tables[u],
                  schemes::build_compact_node(g, u, opt).bits)
            << "greedy=" << greedy << " refined=" << refined << " u=" << u;
      }
    }
  }
}

// --- Theorem 6 codec under the refined threshold ---------------------------------

TEST(Theorem6Variants, RefinedThresholdRoundTrips) {
  const Graph g = certified(64, 1404);
  schemes::CompactNodeOptions opt;
  opt.threshold_log = true;
  const auto r = incompress::theorem6_encode(g, 5, opt);
  EXPECT_EQ(incompress::theorem6_decode(r.description.bits, 64, opt), g);
}

// --- Label introspection ----------------------------------------------------------

TEST(NeighborLabelIntrospection, LabelsContainIdAndCover) {
  const Graph g = certified(64, 1405);
  const schemes::NeighborLabelScheme scheme(g);
  for (graph::NodeId u = 0; u < 64; ++u) {
    const bitio::BitVector& label = scheme.bit_label(u);
    bitio::BitReader r(label);
    EXPECT_EQ(r.read_bits(6), u);  // id field, ⌈log 64⌉ = 6 bits
    const auto count = r.read_bits(6);
    EXPECT_GT(count, 0u);
    EXPECT_EQ(label.size(), 6u * (2 + count));
    // Every listed cover node is a neighbour of u.
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto c = static_cast<graph::NodeId>(r.read_bits(6));
      EXPECT_TRUE(g.has_edge(u, c));
    }
  }
}

// --- Arithmetic coder edge patterns ------------------------------------------------

TEST(ArithmeticEdges, AlternatingAndBlockPatterns) {
  for (int pattern = 0; pattern < 4; ++pattern) {
    bitio::BitVector bits;
    for (int i = 0; i < 3000; ++i) {
      switch (pattern) {
        case 0: bits.push_back(i % 2 == 0); break;           // alternating
        case 1: bits.push_back((i / 100) % 2 == 0); break;   // blocks
        case 2: bits.push_back(i == 1500); break;            // single one
        case 3: bits.push_back(i % 97 == 0); break;          // sparse
      }
    }
    const auto code = bitio::arithmetic_encode(bits);
    ASSERT_EQ(bitio::arithmetic_decode(code, bits.size()), bits)
        << "pattern " << pattern;
  }
  // The KT coder is order-0: alternating bits look balanced and stay
  // ≈ 1 bit/symbol; a single one collapses.
  bitio::BitVector single(3000);
  single.set(1500, true);
  EXPECT_LT(bitio::arithmetic_coded_bits(single), 40u);
}

// --- Compact scheme option matrix ---------------------------------------------------

TEST(CompactOptionMatrix, AllFourVariantsShortestPath) {
  const Graph g = certified(64, 1406);
  for (const bool neighbors_known : {true, false}) {
    for (const bool greedy : {false, true}) {
      schemes::CompactDiam2Scheme::Options opt;
      opt.neighbors_known = neighbors_known;
      opt.node.greedy_cover = greedy;
      const schemes::CompactDiam2Scheme scheme(g, opt);
      const auto result = model::verify_scheme(g, scheme);
      EXPECT_TRUE(result.ok());
      EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);
    }
  }
}

}  // namespace
}  // namespace optrt
