// Differential oracle for the compiled fast paths: every scheme kind's
// FastPath must answer the full pair space bit-identically to the
// BitReader decode path (RoutingScheme::next_hop with a fresh header),
// including which exceptions are thrown — on seeded G(n,1/2), ring, and
// grid topologies, at any shard/thread count.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "model/fastpath.hpp"
#include "model/scheme.hpp"
#include "obs/metrics.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hierarchical.hpp"
#include "schemes/hub.hpp"
#include "schemes/landmark.hpp"
#include "schemes/routing_center.hpp"
#include "schemes/sequential_search.hpp"
#include "schemes/tz.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

/// What one next-hop query did: returned a hop or threw which exception.
struct Outcome {
  enum Kind { kHop, kInvalidArgument, kLogicError, kOther } kind = kHop;
  NodeId hop = 0;
  std::string what;

  bool operator==(const Outcome&) const = default;
};

template <typename Fn>
Outcome capture(Fn&& fn) {
  Outcome out;
  try {
    out.hop = fn();
  } catch (const std::invalid_argument& e) {
    out.kind = Outcome::kInvalidArgument;
    out.what = e.what();
  } catch (const std::logic_error& e) {
    out.kind = Outcome::kLogicError;
    out.what = e.what();
  } catch (const std::exception& e) {
    out.kind = Outcome::kOther;
    out.what = e.what();
  }
  return out;
}

/// Every ordered query — including the routing-to-self ones — must have
/// the identical outcome on the decode path and the compiled path.
void expect_differentially_equal(const model::RoutingScheme& scheme) {
  const auto fast = scheme.compile_fast();
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(fast->name(), scheme.name());
  const auto n = static_cast<NodeId>(scheme.node_count());
  EXPECT_EQ(fast->node_count(), n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      const NodeId label = scheme.label_of(v);
      const Outcome slow = capture([&] {
        model::MessageHeader header;
        return scheme.next_hop(u, label, header);
      });
      const Outcome fast_out = capture([&] { return fast->next_hop(u, label); });
      ASSERT_EQ(slow, fast_out)
          << scheme.name() << ": u=" << u << " dest=" << v
          << " slow={" << slow.kind << "," << slow.hop << "," << slow.what
          << "} fast={" << fast_out.kind << "," << fast_out.hop << ","
          << fast_out.what << "}";
    }
  }
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    h ^= (value >> (8 * b)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// Fingerprint of the full non-self pair space routed through route_batch,
/// sharded by source via core::parallel_map and merged in source order —
/// so the value must not depend on the thread count.
std::uint64_t batch_fingerprint(const model::RoutingScheme& scheme,
                                const model::FastPath& fast,
                                std::size_t threads) {
  const auto n = static_cast<NodeId>(scheme.node_count());
  std::vector<NodeId> labels(n);
  for (NodeId v = 0; v < n; ++v) labels[v] = scheme.label_of(v);
  const auto shard_hashes = core::parallel_map<std::uint64_t>(
      threads, n, [&](std::size_t u_index) {
        const auto u = static_cast<NodeId>(u_index);
        std::vector<model::RoutePair> pairs;
        pairs.reserve(n - 1);
        for (NodeId v = 0; v < n; ++v) {
          if (v != u) pairs.push_back({u, labels[v]});
        }
        std::vector<NodeId> hops(pairs.size());
        fast.route_batch(pairs, hops);
        std::uint64_t h = kFnvBasis;
        for (const NodeId hop : hops) h = fnv1a(h, hop);
        return h;
      });
  std::uint64_t h = kFnvBasis;
  for (const std::uint64_t sh : shard_hashes) h = fnv1a(h, sh);
  return h;
}

std::uint64_t slow_fingerprint(const model::RoutingScheme& scheme) {
  const auto n = static_cast<NodeId>(scheme.node_count());
  std::uint64_t outer = kFnvBasis;
  for (NodeId u = 0; u < n; ++u) {
    std::uint64_t h = kFnvBasis;
    for (NodeId v = 0; v < n; ++v) {
      if (v == u) continue;
      model::MessageHeader header;
      h = fnv1a(h, scheme.next_hop(u, scheme.label_of(v), header));
    }
    outer = fnv1a(outer, h);
  }
  return outer;
}

void expect_fingerprints_stable(const model::RoutingScheme& scheme) {
  const auto fast = scheme.compile_fast();
  const std::uint64_t reference = slow_fingerprint(scheme);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(batch_fingerprint(scheme, *fast, threads), reference)
        << scheme.name() << " at " << threads << " threads";
  }
}

// --- All seven kinds on a certified G(n, 1/2) ------------------------------

TEST(FastPath, CompactDiam2OnRandomGraph) {
  const Graph g = certified(96, 1996);
  expect_differentially_equal(schemes::CompactDiam2Scheme(g, {}));
}

TEST(FastPath, FullTableOnRandomGraph) {
  const Graph g = certified(96, 1996);
  expect_differentially_equal(schemes::FullTableScheme::standard(g));
}

TEST(FastPath, HubOnRandomGraph) {
  const Graph g = certified(96, 1996);
  expect_differentially_equal(schemes::HubScheme(g));
}

TEST(FastPath, RoutingCenterOnRandomGraph) {
  const Graph g = certified(96, 1996);
  expect_differentially_equal(schemes::RoutingCenterScheme(g));
}

TEST(FastPath, LandmarkOnRandomGraph) {
  const Graph g = certified(96, 1996);
  expect_differentially_equal(schemes::LandmarkScheme(g));
}

TEST(FastPath, HierarchicalOnRandomGraph) {
  const Graph g = certified(96, 1996);
  expect_differentially_equal(schemes::HierarchicalScheme(g));
}

TEST(FastPath, SequentialSearchOnRandomGraph) {
  const Graph g = certified(96, 1996);
  expect_differentially_equal(schemes::SequentialSearchScheme(g));
}

TEST(FastPath, ThorupZwickOnRandomGraph) {
  const Graph g = certified(96, 1996);
  expect_differentially_equal(schemes::TzScheme(g));
}

// --- Structured topologies (the diameter-2 kinds do not apply) -------------

TEST(FastPath, GeneralSchemesOnRing) {
  const Graph g = graph::ring(64);
  expect_differentially_equal(schemes::FullTableScheme::standard(g));
  expect_differentially_equal(schemes::LandmarkScheme(g));
  expect_differentially_equal(schemes::HierarchicalScheme(g));
  expect_differentially_equal(schemes::SequentialSearchScheme(g));
  expect_differentially_equal(schemes::TzScheme(g));
}

TEST(FastPath, GeneralSchemesOnGrid) {
  const Graph g = graph::grid(8, 8);
  expect_differentially_equal(schemes::FullTableScheme::standard(g));
  expect_differentially_equal(schemes::LandmarkScheme(g));
  expect_differentially_equal(schemes::HierarchicalScheme(g));
  expect_differentially_equal(schemes::SequentialSearchScheme(g));
  expect_differentially_equal(schemes::TzScheme(g));
}

// --- Sharded batches: same fingerprint at 1, 2, and 8 threads --------------

TEST(FastPath, BatchFingerprintsIndependentOfThreadCount) {
  const Graph g = certified(96, 1996);
  expect_fingerprints_stable(schemes::CompactDiam2Scheme(g, {}));
  expect_fingerprints_stable(schemes::FullTableScheme::standard(g));
  expect_fingerprints_stable(schemes::HubScheme(g));
  expect_fingerprints_stable(schemes::RoutingCenterScheme(g));
  expect_fingerprints_stable(schemes::LandmarkScheme(g));
  expect_fingerprints_stable(schemes::HierarchicalScheme(g));
  expect_fingerprints_stable(schemes::SequentialSearchScheme(g));
  expect_fingerprints_stable(schemes::TzScheme(g));
}

// --- Fallback, batch contract, and lookup.* counters -----------------------

TEST(FastPath, FallbackMatchesCompiledForm) {
  const Graph g = certified(48, 77);
  const auto table = schemes::FullTableScheme::standard(g);
  const auto compiled = table.compile_fast();
  const auto fallback = model::make_fallback_fastpath(table);
  for (NodeId u = 0; u < 48; ++u) {
    for (NodeId v = 0; v < 48; ++v) {
      if (v == u) continue;
      const NodeId label = table.label_of(v);
      ASSERT_EQ(compiled->next_hop(u, label), fallback->next_hop(u, label));
    }
  }
}

TEST(FastPath, RouteBatchRejectsLengthMismatch) {
  const Graph g = certified(16, 5);
  const auto fast = schemes::FullTableScheme::standard(g).compile_fast();
  const std::vector<model::RoutePair> pairs(3, model::RoutePair{0, 1});
  std::vector<NodeId> hops(2);
  EXPECT_THROW(fast->route_batch(pairs, hops), std::invalid_argument);
}

TEST(FastPath, BatchWithSelfPairThrowsLikeTheDecoder) {
  const Graph g = certified(16, 5);
  const auto fast = schemes::FullTableScheme::standard(g).compile_fast();
  // Big enough to take the vectorized kernel where available; the self
  // pair hides in the middle.
  std::vector<model::RoutePair> pairs;
  for (NodeId u = 0; u < 16; ++u) pairs.push_back({u, NodeId{(u + 1u) % 16}});
  pairs[9] = {7, 7};
  std::vector<NodeId> hops(pairs.size());
  EXPECT_THROW(fast->route_batch(pairs, hops), std::invalid_argument);
}

TEST(FastPath, LookupCountersTrackCompilesAndBatches) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  const Graph g = certified(24, 9);
  const auto table = schemes::FullTableScheme::standard(g);
  const auto fast = table.compile_fast();
  EXPECT_EQ(reg.counter_value("lookup.compiled"), 1u);
  EXPECT_EQ(reg.counter_value("lookup.compiled.full_table"), 1u);

  std::vector<model::RoutePair> pairs;
  for (NodeId v = 1; v < 24; ++v) pairs.push_back({0, v});
  std::vector<NodeId> hops(pairs.size());
  fast->route_batch(pairs, hops);
  fast->route_batch(pairs, hops);
  EXPECT_EQ(reg.counter_value("lookup.batches"), 2u);
  EXPECT_EQ(reg.counter_value("lookup.pairs"), 2 * pairs.size());

  const auto hub = schemes::HubScheme(g).compile_fast();
  (void)hub;
  EXPECT_EQ(reg.counter_value("lookup.compiled"), 2u);
  EXPECT_EQ(reg.counter_value("lookup.compiled.hub"), 1u);
}

}  // namespace
}  // namespace optrt
