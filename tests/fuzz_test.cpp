// Randomized differential and robustness tests: bitio against a reference
// model, codecs against random inputs, schemes against each other.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "graph/encoding.hpp"
#include "graph/generators.hpp"
#include "incompressibility/enumerative.hpp"
#include "incompressibility/lemma_codecs.hpp"
#include "model/fastpath.hpp"
#include "model/verifier.hpp"
#include "net/chaos.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_table.hpp"
#include "schemes/serialization.hpp"
#include "serve/protocol.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::Rng;

TEST(Fuzz, BitVectorAgainstReferenceModel) {
  std::mt19937_64 rng(901);
  for (int trial = 0; trial < 20; ++trial) {
    bitio::BitVector bits;
    std::vector<bool> reference;
    for (int op = 0; op < 500; ++op) {
      const auto choice = rng() % 3;
      if (choice == 0 || reference.empty()) {
        const bool b = rng() & 1u;
        bits.push_back(b);
        reference.push_back(b);
      } else if (choice == 1) {
        const std::size_t i = rng() % reference.size();
        const bool b = rng() & 1u;
        bits.set(i, b);
        reference[i] = b;
      } else {
        const std::size_t i = rng() % reference.size();
        ASSERT_EQ(bits.get(i), reference[i]);
      }
    }
    ASSERT_EQ(bits.size(), reference.size());
    std::size_t expected_pop = 0;
    for (bool b : reference) expected_pop += b ? 1 : 0;
    EXPECT_EQ(bits.popcount(), expected_pop);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(bits.get(i), reference[i]);
    }
  }
}

TEST(Fuzz, MixedCodeStreamsRoundTrip) {
  std::mt19937_64 rng(902);
  for (int trial = 0; trial < 50; ++trial) {
    // Write a random interleaving of codes, read it back.
    std::vector<std::pair<int, std::uint64_t>> script;
    bitio::BitWriter w;
    for (int i = 0; i < 40; ++i) {
      const int kind = static_cast<int>(rng() % 5);
      const std::uint64_t value = rng() % 100000;
      script.emplace_back(kind, value);
      switch (kind) {
        case 0: bitio::write_bar(w, value); break;
        case 1: bitio::write_prime(w, value); break;
        case 2: bitio::write_unary(w, value % 300); break;
        case 3: bitio::write_elias_gamma(w, value + 1); break;
        case 4: bitio::write_elias_delta(w, value + 1); break;
      }
    }
    const bitio::BitVector bits = w.bits();
    bitio::BitReader r(bits);
    for (const auto& [kind, value] : script) {
      switch (kind) {
        case 0: ASSERT_EQ(bitio::read_bar(r), value); break;
        case 1: ASSERT_EQ(bitio::read_prime(r), value); break;
        case 2: ASSERT_EQ(bitio::read_unary(r), value % 300); break;
        case 3: ASSERT_EQ(bitio::read_elias_gamma(r), value + 1); break;
        case 4: ASSERT_EQ(bitio::read_elias_delta(r), value + 1); break;
      }
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Fuzz, EnumerativeRandomEnsembles) {
  std::mt19937_64 rng(903);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng() % 200;
    const std::size_t k = rng() % (n + 1);
    bitio::BitVector bits(n);
    // Reservoir-style: choose k positions.
    std::vector<std::size_t> pos(n);
    for (std::size_t i = 0; i < n; ++i) pos[i] = i;
    std::shuffle(pos.begin(), pos.end(), rng);
    for (std::size_t i = 0; i < k; ++i) bits.set(pos[i], true);
    const auto rank = incompress::rank_fixed_weight(bits);
    ASSERT_EQ(incompress::unrank_fixed_weight(n, k, rank), bits)
        << "n=" << n << " k=" << k;
  }
}

TEST(Fuzz, EncodingRandomGraphsOfRandomSizes) {
  std::mt19937_64 seed_rng(904);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + seed_rng() % 60;
    Rng rng(seed_rng());
    const Graph g = graph::random_gnp(n, 0.4, rng);
    ASSERT_EQ(graph::decode(graph::encode(g), n), g);
    // Lemma 1 codec round-trips for an arbitrary witness node too.
    const graph::NodeId u = static_cast<graph::NodeId>(seed_rng() % n);
    const auto d = incompress::lemma1_encode(g, u);
    ASSERT_EQ(incompress::lemma1_decode(d.bits, n), g);
  }
}

TEST(Fuzz, CompactAndFullTableAgreeOnDistances) {
  // Differential test: both schemes are shortest path, so hop-by-hop they
  // must reach the destination in exactly d(u, v) steps.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed + 905);
    const Graph g = core::certified_random_graph(64, rng);
    const schemes::CompactDiam2Scheme compact(g, {});
    const schemes::FullTableScheme table = schemes::FullTableScheme::standard(g);
    const graph::DistanceMatrix dist(g);
    for (graph::NodeId u = 0; u < 64; ++u) {
      for (graph::NodeId v = 0; v < 64; ++v) {
        if (u == v) continue;
        EXPECT_EQ(model::route_once(g, compact, u, v, 0), dist.at(u, v));
        EXPECT_EQ(model::route_once(g, table, u, v, 0), dist.at(u, v));
      }
    }
  }
}

TEST(Fuzz, MetricsJsonRoundTripsRandomRegistries) {
  // Randomized registries — hostile metric names (quotes, backslashes,
  // control bytes, UTF-8), zero counters, unset gauges, empty histograms —
  // must serialize to JSON that parses back to exactly the snapshot, and
  // re-serializing the parsed tree must reproduce the bytes.
  const std::vector<std::string> name_pool = {
      "plain",
      "with\"quote",
      "back\\slash",
      "tab\tnl\ncr\r",
      std::string("ctl\x01\x1f"),
      "unicode.héloïse.λ",
      "日本語.メトリクス",
      "dots.and-dashes_0",
  };
  std::mt19937_64 rng(908);
  for (int trial = 0; trial < 40; ++trial) {
    obs::ScopedRegistry scoped;
    auto& reg = scoped.registry();
    for (std::size_t i = 0; i < name_pool.size(); ++i) {
      const std::string name =
          name_pool[i] + "." + std::to_string(rng() % 4);
      switch (rng() % 3) {
        case 0: {
          const auto c = reg.counter(name);
          if (rng() % 3 != 0) c.inc(rng() % 1'000'000);  // sometimes zero
          break;
        }
        case 1: {
          const auto g = reg.gauge(name);
          if (rng() % 3 != 0) {
            g.set(static_cast<std::int64_t>(rng()) >> (rng() % 32));
          }
          break;
        }
        default: {
          std::vector<std::uint64_t> bounds;
          std::uint64_t b = 0;
          const std::size_t nb = rng() % 5;
          for (std::size_t k = 0; k < nb; ++k) {
            b += 1 + rng() % 100;
            bounds.push_back(b);
          }
          const auto h = reg.histogram(name, bounds);
          const std::size_t observations = rng() % 4;  // often empty
          for (std::size_t k = 0; k < observations; ++k) {
            h.observe(rng() % 500);
          }
          break;
        }
      }
    }
    const std::int64_t wall =
        trial % 2 == 0 ? -1 : static_cast<std::int64_t>(rng() % 1'000'000);
    const std::string json = obs::metrics_json(reg, wall);
    const obs::JsonValue doc = obs::parse_json(json);
    EXPECT_EQ(obs::dump_json(doc), json);

    const obs::MetricsSnapshot snap = reg.snapshot();
    const obs::JsonValue* counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_EQ(counters->object.size(), snap.counters.size());
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      EXPECT_EQ(counters->object[i].first, snap.counters[i].first);
      EXPECT_EQ(counters->object[i].second.uint_value, snap.counters[i].second);
    }
    const obs::JsonValue* gauges = doc.find("gauges");
    ASSERT_NE(gauges, nullptr);
    ASSERT_EQ(gauges->object.size(), snap.gauges.size());
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
      EXPECT_EQ(gauges->object[i].first, snap.gauges[i].first);
      const obs::JsonValue& v = gauges->object[i].second;
      const std::int64_t parsed =
          v.kind == obs::JsonValue::Kind::kUInt
              ? static_cast<std::int64_t>(v.uint_value)
              : v.int_value;
      EXPECT_EQ(parsed, snap.gauges[i].second);
    }
    const obs::JsonValue* hists = doc.find("histograms");
    ASSERT_NE(hists, nullptr);
    ASSERT_EQ(hists->object.size(), snap.histograms.size());
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      EXPECT_EQ(hists->object[i].first, snap.histograms[i].first);
      const obs::JsonValue& h = hists->object[i].second;
      const obs::HistogramSnapshot& hs = snap.histograms[i].second;
      ASSERT_EQ(h.find("bounds")->array.size(), hs.bounds.size());
      ASSERT_EQ(h.find("counts")->array.size(), hs.counts.size());
      for (std::size_t k = 0; k < hs.counts.size(); ++k) {
        EXPECT_EQ(h.find("counts")->array[k].uint_value, hs.counts[k]);
      }
      EXPECT_EQ(h.find("sum")->uint_value, hs.sum);
      EXPECT_EQ(h.find("count")->uint_value, hs.count());
    }
    const obs::JsonValue* wall_field = doc.find("wall_ns");
    if (wall < 0) {
      EXPECT_EQ(wall_field, nullptr);
    } else {
      ASSERT_NE(wall_field, nullptr);
      EXPECT_EQ(wall_field->uint_value, static_cast<std::uint64_t>(wall));
    }
  }
}

TEST(Fuzz, TamperedCompactTablesNeverCrashDecode) {
  // Random single-bit corruptions of a node's table either change routing,
  // throw on decode, or leave the table identical in the unused tail —
  // decoding must never read out of bounds (ASAN-clean under fuzz).
  Rng rng(906);
  const Graph g = core::certified_random_graph(48, rng);
  const schemes::CompactDiam2Scheme scheme(g, {});
  std::mt19937_64 frng(907);
  const auto& original = scheme.function_bits(0);
  const auto nbrs = g.neighbors(0);
  for (int trial = 0; trial < 64; ++trial) {
    bitio::BitVector tampered = original;
    const std::size_t pos = frng() % tampered.size();
    tampered.set(pos, !tampered.get(pos));
    try {
      const auto decoded = schemes::decode_compact_node(
          tampered, 48, 0, {}, {nbrs.begin(), nbrs.end()});
      (void)decoded;
    } catch (const std::exception&) {
      // Rejection is a valid outcome.
    }
  }
}

TEST(Fuzz, RandomArtifactBytesNeverCrashDecode) {
  // from_bytes + deserialize_any over purely random byte buffers: every
  // outcome is a typed DecodeError or (vanishingly unlikely) a valid
  // decode — never a crash, hang, or hostile allocation.
  Rng grng(909);
  const Graph g = core::certified_random_graph(16, grng);
  std::mt19937_64 rng(910);
  std::size_t survived_transport = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng() % 96);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    // Half the trials get a plausible length prefix so they reach the
    // frame parser instead of dying at the transport layer.
    if (len >= 8 && trial % 2 == 0) {
      const std::uint64_t bits = (len - 8) * 8;
      for (int i = 0; i < 8; ++i) {
        bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(bits >> (8 * i));
      }
    }
    try {
      const bitio::BitVector artifact = schemes::from_bytes(bytes);
      ++survived_transport;
      (void)schemes::deserialize_any(artifact, g);
    } catch (const schemes::DecodeError&) {
      // The only acceptable failure mode.
    }
  }
  EXPECT_GT(survived_transport, 0u);
}

TEST(Fuzz, CorruptedArtifactsCompileFastWithIdenticalErrors) {
  // The compile-to-fast-path entry point must present exactly the decode
  // path's error surface: for every chaos-corrupted artifact, either both
  // reject with the same typed DecodeError kind, or both accept — and on
  // acceptance the compiled hops must match the decoder's hop for hop.
  Rng grng(912);
  const Graph g = core::certified_random_graph(24, grng);
  const auto artifacts = {
      schemes::serialize(schemes::CompactDiam2Scheme(g, {})),
      schemes::serialize(schemes::FullTableScheme::standard(g)),
      schemes::serialize(schemes::TzScheme(g)),
  };
  for (const auto& artifact : artifacts) {
    for (std::uint64_t seed = 0; seed < 512; ++seed) {
      const bitio::BitVector bad = net::corrupt(artifact, seed);
      std::unique_ptr<model::RoutingScheme> slow;
      std::optional<schemes::DecodeErrorKind> slow_error;
      try {
        slow = schemes::deserialize_any(bad, g);
      } catch (const schemes::DecodeError& e) {
        slow_error = e.kind();
      }
      schemes::FastScheme compiled;
      std::optional<schemes::DecodeErrorKind> fast_error;
      try {
        compiled = schemes::compile_fast_from_artifact(bad, g);
      } catch (const schemes::DecodeError& e) {
        fast_error = e.kind();
      }
      ASSERT_EQ(slow_error.has_value(), fast_error.has_value())
          << "seed=" << seed;
      if (slow_error.has_value()) {
        ASSERT_EQ(*slow_error, *fast_error) << "seed=" << seed;
        continue;
      }
      ASSERT_NE(compiled.fast, nullptr);
      for (graph::NodeId u = 0; u < 24; ++u) {
        for (graph::NodeId v = 0; v < 24; ++v) {
          if (v == u) continue;
          const graph::NodeId label = slow->label_of(v);
          model::MessageHeader header;
          ASSERT_EQ(compiled.fast->next_hop(u, label),
                    slow->next_hop(u, label, header))
              << "seed=" << seed << " u=" << u << " v=" << v;
        }
      }
    }
  }
}

TEST(Fuzz, RandomBitStringsNeverCrashFrameInspection) {
  std::mt19937_64 rng(911);
  for (int trial = 0; trial < 4000; ++trial) {
    bitio::BitVector bits;
    const std::size_t len = static_cast<std::size_t>(rng() % 400);
    for (std::size_t i = 0; i < len; ++i) bits.push_back(rng() & 1u);
    // Half the trials start with a valid magic so the header parser runs.
    if (len >= 32 && trial % 2 == 0) {
      const std::uint32_t magic =
          trial % 4 == 0 ? schemes::kFrameMagic : schemes::kLegacyMagic;
      for (std::size_t i = 0; i < 32; ++i) bits.set(i, (magic >> i) & 1u);
    }
    try {
      (void)schemes::inspect(bits);
    } catch (const schemes::DecodeError&) {
    }
  }
}

TEST(Fuzz, RandomBytesNeverCrashWireFrameParsing) {
  std::mt19937_64 rng(937);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng() % 96);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    // Half the trials start with the real magic + version so the later
    // header checks and the payload/CRC layers run too.
    if (len >= 5 && trial % 2 == 0) {
      bytes[0] = 'O';
      bytes[1] = 'R';
      bytes[2] = 'T';
      bytes[3] = 'P';
      bytes[4] = serve::kWireVersion;
    }
    try {
      const serve::Frame frame = serve::parse_frame(bytes);
      // The rare fully-valid draw must decode or reject as typed errors.
      try {
        (void)serve::decode_query_pairs(frame);
      } catch (const serve::ProtocolError&) {
      }
      try {
        (void)serve::decode_error(frame);
      } catch (const serve::ProtocolError&) {
      }
    } catch (const serve::ProtocolError&) {
    }
  }
}

}  // namespace
}  // namespace optrt
