// Theorem 9 tests: permutation recovery from routing functions on the
// Figure 1 graph G_B, and the k! counting consequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "incompressibility/theorem8.hpp"
#include "incompressibility/theorem9.hpp"
#include "model/verifier.hpp"
#include "schemes/full_table.hpp"

namespace optrt::incompress {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

std::vector<NodeId> random_perm(std::size_t k, Rng& rng) {
  std::vector<NodeId> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

class Theorem9Recovery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem9Recovery, ShortestPathSchemeRevealsThePlantedPermutation) {
  const std::size_t k = GetParam();
  Rng rng(k);
  const auto perm = random_perm(k, rng);
  const Graph g = graph::lower_bound_gb_permuted(k, perm);
  // Any stretch-<2 scheme works; the full table is shortest path.
  const schemes::FullTableScheme scheme = schemes::FullTableScheme::standard(g);
  ASSERT_TRUE(model::verify_scheme(g, scheme).ok());
  for (NodeId b : {NodeId{0}, static_cast<NodeId>(k - 1)}) {
    EXPECT_EQ(recover_top_permutation(scheme, k, b), perm);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, Theorem9Recovery,
                         ::testing::Values(3, 5, 8, 16, 32, 64));

TEST(Theorem9, DistinctPermutationsGiveDistinctRoutingFunctions) {
  // The injection at the heart of the counting argument: the bottom-node
  // routing functions must differ whenever the labelling differs.
  const std::size_t k = 6;
  Rng rng(99);
  const auto p1 = random_perm(k, rng);
  auto p2 = p1;
  std::swap(p2[0], p2[1]);
  const schemes::FullTableScheme s1 =
      schemes::FullTableScheme::standard(graph::lower_bound_gb_permuted(k, p1));
  const schemes::FullTableScheme s2 =
      schemes::FullTableScheme::standard(graph::lower_bound_gb_permuted(k, p2));
  bool differs = false;
  for (NodeId b = 0; b < k && !differs; ++b) {
    differs = !(s1.function_bits(b) == s2.function_bits(b));
  }
  EXPECT_TRUE(differs);
}

TEST(Theorem9, BottomNodeTablesExceedLogKFactorial) {
  // Counting: each bottom node's function distinguishes k! labellings, so
  // any representation needs ≥ log₂ k! bits; our tables satisfy that.
  for (std::size_t k : {8u, 32u, 64u}) {
    Rng rng(k * 3);
    const auto perm = random_perm(k, rng);
    const Graph g = graph::lower_bound_gb_permuted(k, perm);
    const schemes::FullTableScheme scheme =
        schemes::FullTableScheme::standard(g);
    const auto space = scheme.space();
    for (NodeId b = 0; b < k; ++b) {
      EXPECT_GE(static_cast<double>(space.function_bits[b]),
                log2_factorial(k));
    }
  }
}

TEST(Theorem9, RecoveryRejectsHighStretchAnswers) {
  // A scheme that routes bottom → top via another bottom node violates the
  // stretch-<2 premise; the recovery must detect it.
  const std::size_t k = 4;
  const Graph g = graph::lower_bound_gb(k);

  class ViaMiddleWrong final : public model::RoutingScheme {
   public:
    explicit ViaMiddleWrong(const Graph& g) : g_(&g) {}
    [[nodiscard]] std::string name() const override { return "wrong"; }
    [[nodiscard]] model::Model routing_model() const override {
      return model::kIIalpha;
    }
    [[nodiscard]] std::size_t node_count() const override {
      return g_->node_count();
    }
    [[nodiscard]] NodeId next_hop(NodeId u, NodeId,
                                  model::MessageHeader&) const override {
      return g_->neighbors(u)[0];  // bottom nodes answer a middle node —
                                   // but always the same one
    }
    [[nodiscard]] model::SpaceReport space() const override { return {}; }

   private:
    const Graph* g_;
  };

  const ViaMiddleWrong wrong(g);
  EXPECT_THROW((void)recover_top_permutation(wrong, k, 0), std::logic_error);
}

TEST(Theorem9, GBPairDistancesMatchTheProof) {
  // d(bottom, top) = 2 via the partner; removing the partner edge makes the
  // best alternative 4 — the stretch-2 threshold the theorem exploits.
  const std::size_t k = 6;
  Rng rng(7);
  const auto perm = random_perm(k, rng);
  Graph g = graph::lower_bound_gb_permuted(k, perm);
  const graph::DistanceMatrix dist(g);
  for (NodeId b = 0; b < k; ++b) {
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_EQ(dist.at(b, static_cast<NodeId>(2 * k + j)), 2u);
    }
  }
}

}  // namespace
}  // namespace optrt::incompress
