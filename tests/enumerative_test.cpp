// Enumerative-coding tests: the combinatorial number system rank/unrank
// bijection and the fixed-weight stream codec Lemma 1 relies on.
#include <gtest/gtest.h>

#include <random>

#include "bitio/bit_stream.hpp"
#include "incompressibility/enumerative.hpp"

namespace optrt::incompress {
namespace {

bitio::BitVector random_string(std::size_t n, std::size_t k,
                               std::mt19937_64& rng) {
  // Uniform n-bit string with exactly k ones (Fisher–Yates on positions).
  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = i;
  std::shuffle(pos.begin(), pos.end(), rng);
  bitio::BitVector bits(n);
  for (std::size_t i = 0; i < k; ++i) bits.set(pos[i], true);
  return bits;
}

TEST(Enumerative, RankOfExtremes) {
  // All-ones and all-zeros are the unique members of their ensembles.
  bitio::BitVector zeros(8);
  EXPECT_TRUE(rank_fixed_weight(zeros).is_zero());
  bitio::BitVector ones;
  for (int i = 0; i < 8; ++i) ones.push_back(true);
  EXPECT_TRUE(rank_fixed_weight(ones).is_zero());
  EXPECT_EQ(fixed_weight_code_bits(8, 0), 0u);
  EXPECT_EQ(fixed_weight_code_bits(8, 8), 0u);
}

TEST(Enumerative, RankIsBijectiveOnSmallEnsemble) {
  // n = 6, k = 3: all 20 strings get distinct ranks in [0, 20).
  const BigUint count = binomial(6, 3);
  std::vector<bool> seen(20, false);
  for (unsigned mask = 0; mask < 64; ++mask) {
    if (__builtin_popcount(mask) != 3) continue;
    bitio::BitVector bits(6);
    for (unsigned b = 0; b < 6; ++b) {
      if (mask & (1u << b)) bits.set(b, true);
    }
    const BigUint rank = rank_fixed_weight(bits);
    ASSERT_TRUE(rank < count);
    ASSERT_TRUE(rank.fits_u64());
    EXPECT_FALSE(seen[rank.as_u64()]);
    seen[rank.as_u64()] = true;
    // And unrank inverts.
    EXPECT_EQ(unrank_fixed_weight(6, 3, rank), bits);
  }
}

struct Ensemble {
  std::size_t n;
  std::size_t k;
};

class EnumerativeRoundTrip : public ::testing::TestWithParam<Ensemble> {};

TEST_P(EnumerativeRoundTrip, UnrankInvertsRank) {
  const auto [n, k] = GetParam();
  std::mt19937_64 rng(n * 31 + k);
  for (int trial = 0; trial < 10; ++trial) {
    const bitio::BitVector bits = random_string(n, k, rng);
    EXPECT_EQ(unrank_fixed_weight(n, k, rank_fixed_weight(bits)), bits);
  }
}

TEST_P(EnumerativeRoundTrip, StreamCodecRoundTrips) {
  const auto [n, k] = GetParam();
  std::mt19937_64 rng(n * 37 + k);
  const bitio::BitVector bits = random_string(n, k, rng);
  bitio::BitWriter w;
  write_fixed_weight(w, bits);
  EXPECT_EQ(w.bit_count(), fixed_weight_total_bits(n, k));
  bitio::BitReader r(w.bits());
  EXPECT_EQ(read_fixed_weight(r, n), bits);
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Ensembles, EnumerativeRoundTrip,
    ::testing::Values(Ensemble{1, 0}, Ensemble{1, 1}, Ensemble{8, 4},
                      Ensemble{16, 2}, Ensemble{63, 31}, Ensemble{64, 32},
                      Ensemble{65, 1}, Ensemble{127, 14}, Ensemble{255, 127},
                      Ensemble{511, 40}, Ensemble{1023, 511}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k);
    });

TEST(Enumerative, CodeBitsMatchCeilLog2Binomial) {
  EXPECT_EQ(fixed_weight_code_bits(6, 3), 5u);    // C=20 → 5 bits
  EXPECT_EQ(fixed_weight_code_bits(10, 5), 8u);   // C=252 → 8 bits
  EXPECT_EQ(fixed_weight_code_bits(4, 2), 3u);    // C=6 → 3 bits
  EXPECT_EQ(fixed_weight_code_bits(2, 1), 1u);    // C=2 → 1 bit
}

TEST(Enumerative, DeviantWeightsCompressBelowLiteral) {
  // The Chernoff effect Lemma 1 exploits: weight far from n/2 → short code.
  const std::size_t n = 501;
  EXPECT_LT(fixed_weight_total_bits(n, 50), n - 200);
  EXPECT_LT(fixed_weight_total_bits(n, n - 50), n - 200);
  // Balanced weight stays close to the literal length.
  EXPECT_GT(fixed_weight_total_bits(n, 250), n - 10);
}

TEST(Enumerative, UnrankRejectsOutOfRange) {
  EXPECT_THROW(unrank_fixed_weight(6, 3, binomial(6, 3)), std::out_of_range);
}

}  // namespace
}  // namespace optrt::incompress
