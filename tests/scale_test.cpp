// Large-scale smoke tests (n = 1024): the Theorem 1 pipeline at the
// biggest size the benches report, with sampled verification; plus the
// density-generalized certificate.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "graph/randomness.hpp"
#include "model/verifier.hpp"
#include "schemes/compact_diam2.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::Rng;

TEST(Scale, TheoremOneAtN1024) {
  Rng rng(2001);
  const Graph g = core::certified_random_graph(1024, rng);
  const schemes::CompactDiam2Scheme scheme(g, {});
  // Size: ≤ 6n per node, Θ(n²) total.
  const auto space = scheme.space();
  EXPECT_LE(space.max_node_bits(), 6u * 1024);
  EXPECT_GT(space.total_bits(), 1024u * 1024 / 8);
  // Sampled all-pairs behaviour: shortest path on 5000 random pairs.
  const auto result = model::verify_scheme_sampled(g, scheme, 5000, 3);
  EXPECT_TRUE(result.all_delivered);
  EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);
}

TEST(Scale, CertificateAtN1024) {
  Rng rng(2002);
  const Graph g = graph::random_uniform(1024, rng);
  const auto cert = graph::certify(g);
  EXPECT_TRUE(cert.ok());
  // Lemma 1's window is o(n): the measured deviation is ≪ n/4.
  EXPECT_LT(cert.max_degree_deviation, 1024.0 / 4.0);
  // Lemma 3: covers stay well under (c+3) log n.
  EXPECT_LE(cert.max_cover_size, cert.cover_size_bound);
}

TEST(Scale, DensityGeneralizedCertificate) {
  const std::size_t n = 256;
  for (double p : {0.3, 0.5, 0.7}) {
    std::size_t passes = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Rng rng(seed * 31 + static_cast<std::uint64_t>(p * 100));
      const Graph g = graph::random_gnp(n, p, rng);
      if (graph::certify_gnp(g, p).ok()) ++passes;
    }
    // At its own density, G(n, p) certifies almost surely at this n.
    EXPECT_GE(passes, 3u) << "p=" << p;
  }
  // And against the wrong density it fails on degrees.
  Rng rng(2003);
  const Graph g = graph::random_gnp(n, 0.3, rng);
  EXPECT_FALSE(graph::certify_gnp(g, 0.7).degrees_concentrated);
}

TEST(Scale, CertifyIsTheHalfCase) {
  Rng rng(2004);
  const Graph g = graph::random_uniform(128, rng);
  const auto a = graph::certify(g);
  const auto b = graph::certify_gnp(g, 0.5);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_DOUBLE_EQ(a.max_degree_deviation, b.max_degree_deviation);
  EXPECT_EQ(a.cover_size_bound, b.cover_size_bound);
}

}  // namespace
}  // namespace optrt
