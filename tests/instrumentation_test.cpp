// Differential checks that the instrumentation wired through the library
// agrees with the ground truth each layer already reports: simulator
// counters vs SimulationStats and per-message records, DistanceCache
// counters vs the cache's own accounting, codec bit counters vs the
// Descriptions and artifacts they measured, verifier counters vs the
// VerificationResult, and the pinned stats-JSON schema shared by
// `optrt_cli simulate` and bench_failures.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "incompressibility/lemma_codecs.hpp"
#include "model/verifier.hpp"
#include "net/faults.hpp"
#include "net/sim_metrics.hpp"
#include "net/simulator.hpp"
#include "net/workload.hpp"
#include "obs/metrics.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/compiler.hpp"
#include "schemes/serialization.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::Rng;

TEST(Instrumentation, SimulatorCountersMatchStatsAndRecords) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();

  Rng rng(31);
  const Graph g = core::certified_random_graph(48, rng);
  const schemes::CompactDiam2Scheme scheme(g, {});
  // Enough failures that some messages drop: the hop counter must include
  // the hops dropped messages took before dying, which stats.total_hops
  // (delivered-only) does not.
  const net::FaultPlan plan =
      net::uniform_link_faults(g, 150, {.seed = 5});
  net::SimulatorConfig config;
  config.resilience.policy = net::ResiliencePolicy::kRetry;
  net::Simulator sim(g, scheme, config);
  sim.schedule(plan);
  Rng traffic_rng(32);
  for (const auto& [u, v] : net::uniform_random(48, 500, traffic_rng)) {
    sim.send(u, v);
  }
  const net::SimulationStats stats = sim.run();
  ASSERT_GT(stats.dropped, 0u) << "fault plan too weak for the differential";

  std::uint64_t all_hops = 0;
  std::uint64_t delivered_hops = 0;
  for (const net::MessageRecord& r : sim.records()) {
    all_hops += r.hops;
    if (r.delivered) delivered_hops += r.hops;
  }
  EXPECT_EQ(reg.counter_value("sim.hops"), all_hops);
  EXPECT_EQ(stats.total_hops, delivered_hops);
  EXPECT_GT(all_hops, delivered_hops);

  EXPECT_EQ(reg.counter_value("sim.sent"), stats.sent);
  EXPECT_EQ(reg.counter_value("sim.delivered"), stats.delivered);
  EXPECT_EQ(reg.counter_value("sim.dropped"), stats.dropped);
  EXPECT_EQ(reg.counter_value("sim.retries"), stats.total_retries);
  EXPECT_EQ(reg.counter_value("sim.deflections"), stats.deflections);
  EXPECT_EQ(reg.counter_value("sim.fallback_messages"),
            stats.fallback_messages);
  EXPECT_EQ(reg.counter_value("sim.runs"), 1u);
  EXPECT_EQ(reg.counter_value("sim.runs.policy.retry"), 1u);
  // repair_after defaults to 0, so every plan event is a failure and the
  // run replays all of them.
  EXPECT_EQ(reg.counter_value("sim.fault_events"), plan.fail_count());

  const obs::HistogramSnapshot hops = reg.histogram_value("sim.delivered_hops");
  EXPECT_EQ(hops.count(), stats.delivered);
  EXPECT_EQ(hops.sum, stats.total_hops);
}

TEST(Instrumentation, DistanceCacheCountersMatchCacheAccounting) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();

  graph::DistanceCache cache(/*capacity=*/2);
  const Graph g1 = graph::chain(8);
  const Graph g2 = graph::ring(8);
  const Graph g3 = graph::star(8);

  (void)cache.get(g1);  // miss
  (void)cache.get(g1);  // hit
  (void)cache.get(g2);  // miss (size 2)
  (void)cache.get(g3);  // miss, evicts g1
  (void)cache.get(g1);  // miss again, evicts g2

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(reg.counter_value("graph.distance_cache.hits"), cache.hits());
  EXPECT_EQ(reg.counter_value("graph.distance_cache.misses"), cache.misses());
  EXPECT_EQ(reg.counter_value("graph.distance_cache.evictions"), 2u);
  // The size gauge merges by max: the high-water mark of entries held.
  EXPECT_EQ(reg.gauge_value("graph.distance_cache.size"), 2);
}

TEST(Instrumentation, LemmaCodecBitCountersMatchDescriptions) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();

  const Graph g = graph::chain(12);

  const auto d1 = incompress::lemma1_encode(g, incompress::most_deviant_node(g));
  EXPECT_EQ(reg.counter_value("codec.lemma1.encodes"), 1u);
  EXPECT_EQ(reg.counter_value("codec.lemma1.bits_in"), d1.original_bits);
  EXPECT_EQ(reg.counter_value("codec.lemma1.bits_out"), d1.bits.size());
  ASSERT_EQ(incompress::lemma1_decode(d1.bits, 12), g);
  EXPECT_EQ(reg.counter_value("codec.lemma1.decodes"), 1u);

  const auto pair2 = incompress::find_distant_pair(g);
  ASSERT_TRUE(pair2.has_value());
  const auto d2 = incompress::lemma2_encode(g, pair2->first, pair2->second);
  EXPECT_EQ(reg.counter_value("codec.lemma2.encodes"), 1u);
  EXPECT_EQ(reg.counter_value("codec.lemma2.bits_in"), d2.original_bits);
  EXPECT_EQ(reg.counter_value("codec.lemma2.bits_out"), d2.bits.size());
  ASSERT_EQ(incompress::lemma2_decode(d2.bits, 12), g);
  EXPECT_EQ(reg.counter_value("codec.lemma2.decodes"), 1u);

  const std::size_t prefix = 1;
  const auto pair3 = incompress::find_cover_violation(g, prefix);
  ASSERT_TRUE(pair3.has_value());
  const auto d3 =
      incompress::lemma3_encode(g, pair3->first, pair3->second, prefix);
  EXPECT_EQ(reg.counter_value("codec.lemma3.encodes"), 1u);
  EXPECT_EQ(reg.counter_value("codec.lemma3.bits_in"), d3.original_bits);
  EXPECT_EQ(reg.counter_value("codec.lemma3.bits_out"), d3.bits.size());
  ASSERT_EQ(incompress::lemma3_decode(d3.bits, 12, prefix), g);
  EXPECT_EQ(reg.counter_value("codec.lemma3.decodes"), 1u);

  // Bit accounting composes: savings per lemma is bits_in − bits_out.
  EXPECT_EQ(static_cast<std::ptrdiff_t>(
                reg.counter_value("codec.lemma1.bits_in")) -
                static_cast<std::ptrdiff_t>(
                    reg.counter_value("codec.lemma1.bits_out")),
            d1.savings());
}

TEST(Instrumentation, SerializationBitCountersMatchArtifacts) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();

  Rng rng(41);
  const Graph g = core::certified_random_graph(32, rng);
  const schemes::CompactDiam2Scheme scheme(g, {});

  const bitio::BitVector artifact = schemes::serialize(scheme);
  EXPECT_EQ(reg.counter_value("schemes.artifact.serializes"), 1u);
  EXPECT_EQ(reg.counter_value("schemes.artifact.bits_out"), artifact.size());

  (void)schemes::deserialize_compact_diam2(artifact, g);
  EXPECT_EQ(reg.counter_value("schemes.artifact.deserializes"), 1u);
  EXPECT_EQ(reg.counter_value("schemes.artifact.bits_in"), artifact.size());

  const std::string path = testing::TempDir() + "obs_artifact.ort";
  schemes::save_artifact(path, artifact);
  EXPECT_EQ(reg.counter_value("schemes.artifact.saves"), 1u);
  EXPECT_EQ(schemes::load_artifact(path), artifact);
  EXPECT_EQ(reg.counter_value("schemes.artifact.loads"), 1u);
}

TEST(Instrumentation, CompileCounterCountsEveryCompile) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  Rng rng(43);
  const Graph g = core::certified_random_graph(32, rng);
  for (const model::Model& m : model::Model::all()) {
    (void)schemes::compile(g, m);
  }
  EXPECT_EQ(reg.counter_value("schemes.compiled"),
            model::Model::all().size());
}

TEST(Instrumentation, VerifierCountersMatchResult) {
  graph::DistanceCache::global().clear();
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();

  Rng rng(42);
  const Graph g = core::certified_random_graph(40, rng);
  const schemes::CompactDiam2Scheme scheme(g, {});
  const auto result = model::verify_scheme(g, scheme, 0, 4);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(reg.counter_value("model.verifier.pairs_checked"),
            result.pairs_checked);
  EXPECT_EQ(reg.counter_value("model.verifier.runs"), 1u);
  // The verifier shards by source node, one accumulator per source.
  EXPECT_EQ(reg.counter_value("model.verifier.shards_merged"),
            g.node_count());

  const obs::HistogramSnapshot route_edges =
      reg.histogram_value("model.verifier.source_route_edges");
  EXPECT_EQ(route_edges.count(), g.node_count());
  EXPECT_EQ(route_edges.sum, result.total_route_edges);
}

TEST(Instrumentation, SweepCountersMatchGrid) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  const auto points = core::sweep_certified(
      {16, 24}, /*seeds=*/3,
      [](const Graph& g) { return static_cast<double>(g.edge_count()); },
      core::SweepOptions{.base_seed = 3, .threads = 2});
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(reg.counter_value("core.sweep.points"), 6u);
  // Every point draws at least one candidate graph; rejects are the rest.
  EXPECT_EQ(reg.counter_value("core.certified_graph.attempts"),
            6u + reg.counter_value("core.certified_graph.rejects"));
}

// --- Pinned stats-JSON schema ------------------------------------------------

// The canonical SimulationStats rendering shared by `optrt_cli simulate`
// and bench_failures. Key order and formatting are part of the contract:
// downstream row-joining scripts parse both outputs interchangeably.
TEST(StatsJsonSchema, ExactFieldOrderAndFormatting) {
  net::SimulationStats stats;
  stats.sent = 100;
  stats.delivered = 98;
  stats.dropped = 2;
  stats.total_hops = 147;
  stats.makespan = 12;
  stats.max_link_load = 9;
  stats.total_retries = 5;
  stats.deflections = 3;
  stats.fallback_messages = 1;
  stats.shortest_hops = 98;
  EXPECT_EQ(net::stats_json(stats),
            "{\"sent\":100,\"delivered\":98,\"dropped\":2,"
            "\"delivery_rate\":0.98,\"mean_hops\":1.5,"
            "\"mean_stretch\":1.5,\"total_hops\":147,\"makespan\":12,"
            "\"max_link_load\":9,\"retries\":5,\"deflections\":3,"
            "\"fallbacks\":1}");
}

TEST(StatsJsonSchema, DefaultStatsRenderZeros) {
  EXPECT_EQ(net::stats_json(net::SimulationStats{}),
            "{\"sent\":0,\"delivered\":0,\"dropped\":0,"
            "\"delivery_rate\":1,\"mean_hops\":0,"
            "\"mean_stretch\":0,\"total_hops\":0,\"makespan\":0,"
            "\"max_link_load\":0,\"retries\":0,\"deflections\":0,"
            "\"fallbacks\":0}");
}

}  // namespace
}  // namespace optrt
