// Simulator tests: hop-by-hop semantics, failure injection, and the
// full-information rerouting capability (§1's motivation for them).
#include <gtest/gtest.h>

#include <functional>

#include "core/experiment.hpp"
#include "net/faults.hpp"
#include "obs/metrics.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "net/simulator.hpp"
#include "net/workload.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"
#include "schemes/sequential_search.hpp"

namespace optrt::net {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

TEST(Simulator, DeliversAllPairsAtShortestDistance) {
  const Graph g = certified(48, 1);
  const auto scheme = schemes::FullTableScheme::standard(g);
  Simulator sim(g, scheme);
  for (const auto& [src, dst] : all_pairs(48)) sim.send(src, dst);
  const SimulationStats stats = sim.run();
  EXPECT_EQ(stats.delivered, 48u * 47u);
  EXPECT_EQ(stats.dropped, 0u);
  // Diameter-2 graph: mean hops within [1, 2].
  EXPECT_GE(stats.mean_hops(), 1.0);
  EXPECT_LE(stats.mean_hops(), 2.0);
}

TEST(Simulator, HopCountsMatchRecords) {
  const Graph g = graph::chain(10);
  const auto scheme = schemes::FullTableScheme::standard(g);
  Simulator sim(g, scheme);
  const auto id = sim.send(0, 9);
  sim.run();
  const MessageRecord& r = sim.records()[id];
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 9u);
  EXPECT_EQ(r.arrival_time, 9u);  // unit latency
}

TEST(Simulator, LatencyConfigScalesArrivalTimes) {
  const Graph g = graph::chain(5);
  const auto scheme = schemes::FullTableScheme::standard(g);
  SimulatorConfig config;
  config.link_latency = 3;
  Simulator sim(g, scheme, config);
  const auto id = sim.send(0, 4, /*at_time=*/10);
  sim.run();
  EXPECT_EQ(sim.records()[id].arrival_time, 10u + 4u * 3u);
}

TEST(Simulator, RejectsSelfSend) {
  const Graph g = graph::chain(4);
  const auto scheme = schemes::FullTableScheme::standard(g);
  Simulator sim(g, scheme);
  EXPECT_THROW(sim.send(2, 2), std::invalid_argument);
}

TEST(Simulator, PlainSchemeDropsOnFailedLink) {
  const Graph g = graph::chain(6);
  const auto scheme = schemes::FullTableScheme::standard(g);
  Simulator sim(g, scheme);
  sim.fail_link(2, 3);
  sim.send(0, 5);
  const SimulationStats stats = sim.run();
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_TRUE(sim.records()[0].dropped_on_failure);
}

TEST(Simulator, FullInformationReroutesAroundFailure) {
  const Graph g = certified(48, 2);
  const auto scheme = schemes::FullInformationScheme::standard(g);
  // Fail one link on a shortest path; alternative shortest paths exist on
  // random graphs (diameter 2, many common neighbours).
  Simulator sim(g, scheme);
  graph::NodeId dst = 0;
  for (graph::NodeId v = 1; v < 48; ++v) {
    if (!g.has_edge(0, v)) {
      dst = v;
      break;
    }
  }
  ASSERT_NE(dst, 0u);
  // Fail the first-listed shortest-path edge out of 0.
  const auto hops = scheme.all_next_hops(0, dst);
  ASSERT_GT(hops.size(), 1u);  // random graphs have alternatives
  sim.fail_link(0, hops[0]);
  sim.send(0, dst);
  const SimulationStats stats = sim.run();
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(sim.records()[0].hops, 2u);  // still a shortest path
}

TEST(Simulator, FullInformationDropsWhenAllShortestPathsFail) {
  const Graph g = graph::star(6);
  const auto scheme = schemes::FullInformationScheme::standard(g);
  Simulator sim(g, scheme);
  sim.fail_link(1, 0);  // the only edge out of leaf 1
  sim.send(1, 5);
  const SimulationStats stats = sim.run();
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_TRUE(sim.records()[0].dropped_on_failure);
}

TEST(Simulator, LinkStateToggles) {
  const Graph g = graph::chain(4);
  const auto scheme = schemes::FullTableScheme::standard(g);
  Simulator sim(g, scheme);
  EXPECT_TRUE(sim.link_up(1, 2));
  sim.fail_link(1, 2);
  EXPECT_FALSE(sim.link_up(1, 2));
  EXPECT_FALSE(sim.link_up(2, 1));  // undirected
  sim.restore_link(2, 1);
  EXPECT_TRUE(sim.link_up(1, 2));
}

TEST(Simulator, HeaderStateTravelsWithTheMessage) {
  // Sequential search needs its probe state carried across hops — two
  // concurrent messages must not share headers.
  const Graph g = certified(48, 3);
  const schemes::SequentialSearchScheme scheme(g);
  Simulator sim(g, scheme);
  std::size_t sent = 0;
  for (graph::NodeId v = 1; v < 48 && sent < 8; ++v) {
    if (!g.has_edge(0, v)) {
      sim.send(0, v);
      ++sent;
    }
  }
  const SimulationStats stats = sim.run();
  EXPECT_EQ(stats.delivered, sent);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(Simulator, MaxHopsZeroResolvesToDefaultBudget) {
  const Graph g = graph::chain(12);
  const auto scheme = schemes::FullTableScheme::standard(g);
  // The 0 sentinel resolves to the shared verifier budget at construction.
  Simulator defaulted(g, scheme);
  EXPECT_EQ(defaulted.config().max_hops, model::default_hop_budget(12));
  // An explicit budget is preserved verbatim, and binds: a 12-chain route
  // of 11 hops dies under a budget of 3.
  SimulatorConfig config;
  config.max_hops = 3;
  Simulator tight(g, scheme, config);
  EXPECT_EQ(tight.config().max_hops, 3u);
  tight.send(0, 11);
  const SimulationStats stats = tight.run();
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.dropped, 1u);
}

TEST(Simulator, SerializeLinksQueuesFifoPerLink) {
  const Graph g = graph::star(4);
  const auto scheme = schemes::FullTableScheme::standard(g);
  SimulatorConfig config;
  config.serialize_links = true;
  Simulator sim(g, scheme, config);
  // Both messages need hub link 1->0 at t=0; serialization admits them in
  // send order, so the second waits one slot at every contended hop.
  const auto first = sim.send(1, 2, 0);
  const auto second = sim.send(1, 2, 0);
  const SimulationStats stats = sim.run();
  EXPECT_EQ(stats.delivered, 2u);
  EXPECT_EQ(sim.records()[first].arrival_time, 2u);
  EXPECT_EQ(sim.records()[second].arrival_time, 3u);
  EXPECT_EQ(stats.makespan, 3u);
  EXPECT_EQ(stats.max_link_load, 2u);
}

TEST(Simulator, MakespanIsLastArrival) {
  const Graph g = graph::chain(8);
  const auto scheme = schemes::FullTableScheme::standard(g);
  Simulator sim(g, scheme);
  sim.send(0, 7);        // 7 hops
  sim.send(3, 4);        // 1 hop
  const SimulationStats stats = sim.run();
  EXPECT_EQ(stats.makespan, 7u);
}

// --- Workloads ---------------------------------------------------------------

TEST(Workload, AllPairsCountAndDistinctness) {
  const auto pairs = all_pairs(7);
  EXPECT_EQ(pairs.size(), 42u);
  for (const auto& [u, v] : pairs) EXPECT_NE(u, v);
}

TEST(Workload, UniformRandomRespectsBounds) {
  Rng rng(4);
  const auto pairs = uniform_random(10, 100, rng);
  EXPECT_EQ(pairs.size(), 100u);
  for (const auto& [u, v] : pairs) {
    EXPECT_LT(u, 10u);
    EXPECT_LT(v, 10u);
    EXPECT_NE(u, v);
  }
}

TEST(Workload, HotspotTargetsOneNode) {
  const auto pairs = hotspot(6, 2);
  EXPECT_EQ(pairs.size(), 5u);
  for (const auto& [u, v] : pairs) {
    EXPECT_EQ(v, 2u);
    EXPECT_NE(u, 2u);
  }
}

TEST(Workload, PermutationTrafficIsFixpointFree) {
  Rng rng(5);
  const auto pairs = permutation_traffic(64, rng);
  EXPECT_GE(pairs.size(), 62u);
  std::vector<int> out_count(64, 0);
  for (const auto& [u, v] : pairs) {
    EXPECT_NE(u, v);
    ++out_count[u];
  }
  for (int c : out_count) EXPECT_LE(c, 1);
}

TEST(Workload, EndToEndPermutationOnCertifiedGraph) {
  const Graph g = certified(64, 6);
  const auto scheme = schemes::FullTableScheme::standard(g);
  Simulator sim(g, scheme);
  Rng rng(7);
  for (const auto& [u, v] : permutation_traffic(64, rng)) sim.send(u, v);
  const SimulationStats stats = sim.run();
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_LE(stats.mean_hops(), 2.0);
}

// ---- batch_routing: the FastPath delivery loop is bit-identical -------

/// Runs the same scenario with batch_routing off and on and demands
/// bit-identical stats, per-message records, link loads, and the
/// sim.queue_peak gauge — SimulatorConfig::batch_routing is a pure
/// performance knob, never a semantics knob.
void expect_batching_identical(const Graph& g,
                               const model::RoutingScheme& scheme,
                               SimulatorConfig config,
                               const std::function<void(Simulator&)>& setup) {
  SimulationStats stats[2];
  std::vector<MessageRecord> records[2];
  std::vector<std::uint64_t> loads[2];
  std::int64_t queue_peak[2] = {0, 0};
  const auto n = static_cast<NodeId>(g.node_count());
  for (int pass = 0; pass < 2; ++pass) {
    obs::ScopedRegistry scoped;
    config.batch_routing = pass == 1;
    Simulator sim(g, scheme, config);
    setup(sim);
    stats[pass] = sim.run();
    records[pass] = sim.records();
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v && g.has_edge(u, v)) {
          loads[pass].push_back(sim.link_load(u, v));
        }
      }
    }
    queue_peak[pass] = scoped.registry().gauge_value("sim.queue_peak");
  }

  EXPECT_EQ(stats[0].sent, stats[1].sent);
  EXPECT_EQ(stats[0].delivered, stats[1].delivered);
  EXPECT_EQ(stats[0].dropped, stats[1].dropped);
  EXPECT_EQ(stats[0].total_hops, stats[1].total_hops);
  EXPECT_EQ(stats[0].makespan, stats[1].makespan);
  EXPECT_EQ(stats[0].max_link_load, stats[1].max_link_load);
  EXPECT_EQ(stats[0].total_retries, stats[1].total_retries);
  EXPECT_EQ(stats[0].deflections, stats[1].deflections);
  EXPECT_EQ(stats[0].fallback_messages, stats[1].fallback_messages);
  EXPECT_EQ(stats[0].shortest_hops, stats[1].shortest_hops);
  EXPECT_EQ(queue_peak[0], queue_peak[1]);
  EXPECT_EQ(loads[0], loads[1]);

  ASSERT_EQ(records[0].size(), records[1].size());
  for (std::size_t i = 0; i < records[0].size(); ++i) {
    const MessageRecord& a = records[0][i];
    const MessageRecord& b = records[1][i];
    EXPECT_EQ(a.id, b.id) << i;
    EXPECT_EQ(a.source, b.source) << i;
    EXPECT_EQ(a.destination, b.destination) << i;
    EXPECT_EQ(a.delivered, b.delivered) << i;
    EXPECT_EQ(a.dropped_on_failure, b.dropped_on_failure) << i;
    EXPECT_EQ(a.used_fallback, b.used_fallback) << i;
    EXPECT_EQ(a.retries, b.retries) << i;
    EXPECT_EQ(a.deflections, b.deflections) << i;
    EXPECT_EQ(a.hops, b.hops) << i;
    EXPECT_EQ(a.send_time, b.send_time) << i;
    EXPECT_EQ(a.arrival_time, b.arrival_time) << i;
  }
}

TEST(SimulatorBatching, AllPairsStaggeredSendsAreIdentical) {
  const Graph g = certified(40, 9);
  const auto scheme = schemes::FullTableScheme::standard(g);
  expect_batching_identical(g, scheme, {}, [](Simulator& sim) {
    std::uint64_t t = 0;
    for (const auto& [src, dst] : all_pairs(40)) sim.send(src, dst, t++ % 7);
  });
}

TEST(SimulatorBatching, SerializedLinksAndHotspotAreIdentical) {
  const Graph g = certified(32, 10);
  const auto scheme = schemes::FullTableScheme::standard(g);
  SimulatorConfig config;
  config.serialize_links = true;
  config.link_latency = 3;
  expect_batching_identical(g, scheme, config, [](Simulator& sim) {
    for (const auto& [src, dst] : hotspot(32, 5)) sim.send(src, dst);
  });
}

TEST(SimulatorBatching, StatefulSchemeFallsBackIdentically) {
  // SequentialSearchScheme carries routing state in the header, so
  // batch_routing must refuse to compile a FastPath and run the per-hop
  // loop — with answers identical by construction.
  const Graph g = certified(32, 11);
  const schemes::SequentialSearchScheme scheme(g);
  EXPECT_FALSE(scheme.stateless_next_hop());
  expect_batching_identical(g, scheme, {}, [](Simulator& sim) {
    Rng rng(13);
    for (const auto& [src, dst] : permutation_traffic(32, rng)) {
      sim.send(src, dst);
    }
  });
}

TEST(SimulatorBatching, ActiveFailuresFallBackIdentically) {
  // Failures force the batched loop back onto the per-hop path (faults
  // consult link state mid-route); records must stay identical, drops
  // included.
  const Graph g = certified(32, 12);
  const auto scheme = schemes::FullTableScheme::standard(g);
  SimulatorConfig config;
  config.measure_stretch = true;
  expect_batching_identical(g, scheme, config, [&](Simulator& sim) {
    sim.schedule(uniform_link_faults(g, 24, {.seed = 17}));
    std::uint64_t t = 0;
    for (const auto& [src, dst] : all_pairs(32)) sim.send(src, dst, t++ % 5);
  });
}

TEST(SimulatorBatching, ImmediateLinkFailureIsIdentical) {
  const Graph g = graph::chain(8);
  const auto scheme = schemes::FullTableScheme::standard(g);
  expect_batching_identical(g, scheme, {}, [](Simulator& sim) {
    sim.fail_link(3, 4);
    sim.send(0, 7);
    sim.send(7, 0);
    sim.send(0, 3);
  });
}

}  // namespace
}  // namespace optrt::net
