// BigUint arithmetic and binomial-coefficient tests.
#include <gtest/gtest.h>

#include <random>

#include "incompressibility/biguint.hpp"

namespace optrt::incompress {
namespace {

TEST(BigUint, ZeroBasics) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.as_u64(), 0u);
}

TEST(BigUint, SmallValues) {
  BigUint v(42);
  EXPECT_FALSE(v.is_zero());
  EXPECT_EQ(v.bit_length(), 6u);
  EXPECT_EQ(v.to_string(), "42");
  EXPECT_TRUE(v.fits_u64());
}

TEST(BigUint, AdditionMatchesU64) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng() >> 2;
    const std::uint64_t b = rng() >> 2;
    EXPECT_EQ((BigUint(a) + BigUint(b)).as_u64(), a + b);
  }
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
  BigUint a(~std::uint64_t{0});
  a += BigUint(1);
  EXPECT_EQ(a.bit_length(), 65u);
  EXPECT_FALSE(a.fits_u64());
  EXPECT_EQ(a.to_string(), "18446744073709551616");
}

TEST(BigUint, SubtractionMatchesU64) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 200; ++i) {
    std::uint64_t a = rng();
    std::uint64_t b = rng();
    if (a < b) std::swap(a, b);
    EXPECT_EQ((BigUint(a) - BigUint(b)).as_u64(), a - b);
  }
}

TEST(BigUint, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUint(3) -= BigUint(5), std::underflow_error);
}

TEST(BigUint, SubtractionBorrowsAcrossLimbs) {
  BigUint big(~std::uint64_t{0});
  big += BigUint(1);       // 2^64
  big -= BigUint(1);       // 2^64 − 1
  EXPECT_EQ(big.as_u64(), ~std::uint64_t{0});
  EXPECT_TRUE(big.fits_u64());
}

TEST(BigUint, MulDivSmallInverse) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 100; ++i) {
    BigUint v(rng());
    v.mul_small(7);
    v.mul_small(1000003);
    BigUint copy = v;
    EXPECT_EQ(copy.div_small(1000003), 0u);
    EXPECT_EQ(copy.div_small(7), 0u);
    v.div_small(7 * 1000003ULL);
    EXPECT_EQ(copy, v);
  }
}

TEST(BigUint, DivSmallReturnsRemainder) {
  BigUint v(1000);
  EXPECT_EQ(v.div_small(7), 1000 % 7);
  EXPECT_EQ(v.as_u64(), 1000 / 7);
  EXPECT_THROW(v.div_small(0), std::invalid_argument);
}

TEST(BigUint, ComparisonTotalOrder) {
  EXPECT_TRUE(BigUint(3) < BigUint(5));
  EXPECT_TRUE(BigUint(5) > BigUint(3));
  EXPECT_TRUE(BigUint(5) == BigUint(5));
  BigUint big(1);
  for (int i = 0; i < 10; ++i) big.mul_small(1u << 30);
  EXPECT_TRUE(BigUint(~std::uint64_t{0}) < big);
}

TEST(BigUint, BitAccess) {
  BigUint v(0b1011);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(100));
}

TEST(BigUint, ToDoubleApproximates) {
  BigUint v(1);
  for (int i = 0; i < 4; ++i) v.mul_small(1u << 16);
  EXPECT_NEAR(v.to_double(), std::pow(2.0, 64.0), 1e3);
}

TEST(Binomial, SmallValuesExact) {
  EXPECT_EQ(binomial(0, 0).as_u64(), 1u);
  EXPECT_EQ(binomial(5, 2).as_u64(), 10u);
  EXPECT_EQ(binomial(10, 5).as_u64(), 252u);
  EXPECT_EQ(binomial(52, 5).as_u64(), 2598960u);
  EXPECT_TRUE(binomial(4, 7).is_zero());
}

TEST(Binomial, PascalIdentityHoldsAtScale) {
  for (std::uint64_t n : {17u, 64u, 200u}) {
    for (std::uint64_t k : {1u, 3u, 7u}) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

TEST(Binomial, SymmetryAndRowSums) {
  EXPECT_EQ(binomial(300, 17), binomial(300, 283));
  // Σ_k C(10, k) = 2^10.
  BigUint sum(0);
  for (std::uint64_t k = 0; k <= 10; ++k) sum += binomial(10, k);
  EXPECT_EQ(sum.as_u64(), 1024u);
}

TEST(Binomial, CentralCoefficientBitLength) {
  // C(1000, 500) has ⌈log₂⌉ ≈ 1000 − ½log₂(500π) ≈ 994.7 → 995 bits.
  const std::size_t bits = binomial(1000, 500).bit_length();
  EXPECT_GE(bits, 990u);
  EXPECT_LE(bits, 1000u);
}

TEST(Binomial, StringOfFactorialScale) {
  // 20! = 2432902008176640000 fits u64; check via C(20,10)·arrangement:
  EXPECT_EQ(binomial(20, 10).to_string(), "184756");
}

}  // namespace
}  // namespace optrt::incompress
