// Tests for the full Theorem 7 description scheme: E(G) conditioned on the
// routing scheme round-trips exactly and saves Ω(n²) bits.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "incompressibility/theorem7.hpp"

namespace optrt::incompress {
namespace {

using graph::Graph;
using graph::Rng;

class Theorem7AggregateSuite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem7AggregateSuite, RoundTripsOnCertifiedGraphs) {
  const std::size_t n = GetParam();
  Rng rng(n + 601);
  const Graph g = core::certified_random_graph(n, rng);
  const schemes::FullTableScheme scheme = schemes::FullTableScheme::standard(g);
  const Theorem7Aggregate agg = theorem7_encode(scheme, g);
  EXPECT_EQ(theorem7_decode(scheme, agg.bits, n), g);
}

TEST_P(Theorem7AggregateSuite, SavesQuadraticallyManyBits) {
  const std::size_t n = GetParam();
  Rng rng(n + 602);
  const Graph g = core::certified_random_graph(n, rng);
  const schemes::FullTableScheme scheme = schemes::FullTableScheme::standard(g);
  const Theorem7Aggregate agg = theorem7_encode(scheme, g);
  // Theorem 7: the scheme carries ≥ n²/32 bits about G; our tighter
  // description saves ≈ n²/8.
  const double n2 = static_cast<double>(n) * n;
  EXPECT_GE(static_cast<double>(agg.savings()), n2 / 32.0);
  EXPECT_LE(static_cast<double>(agg.savings()), n2 / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem7AggregateSuite,
                         ::testing::Values(48, 96, 160));

TEST(Theorem7Aggregate, WorksUnderAdversarialPorts) {
  const std::size_t n = 64;
  Rng rng(603);
  const Graph g = core::certified_random_graph(n, rng);
  Rng prng(604);
  const schemes::FullTableScheme scheme(
      g, graph::PortAssignment::random(g, prng),
      graph::Labeling::identity(n), model::kIAalpha);
  const Theorem7Aggregate agg = theorem7_encode(scheme, g);
  EXPECT_EQ(theorem7_decode(scheme, agg.bits, n), g);
}

TEST(Theorem7Aggregate, WorksUnderPermutedLabels) {
  const std::size_t n = 48;
  Rng rng(605);
  const Graph g = core::certified_random_graph(n, rng);
  std::vector<graph::NodeId> perm(n);
  for (graph::NodeId i = 0; i < n; ++i) perm[i] = (i * 11 + 5) % n;
  const schemes::FullTableScheme scheme(
      g, graph::PortAssignment::sorted(g), graph::Labeling::permutation(perm),
      model::kIAbeta);
  const Theorem7Aggregate agg = theorem7_encode(scheme, g);
  EXPECT_EQ(theorem7_decode(scheme, agg.bits, n), g);
}

TEST(Theorem7Aggregate, Claim3BitsRespectClaim2Total) {
  const std::size_t n = 96;
  Rng rng(606);
  const Graph g = core::certified_random_graph(n, rng);
  const schemes::FullTableScheme scheme = schemes::FullTableScheme::standard(g);
  const Theorem7Aggregate agg = theorem7_encode(scheme, g);
  // Each selected node costs ≤ (n−1) − d(u) rank bits (Claim 2).
  std::size_t bound = 0;
  for (graph::NodeId u = 0; u < agg.selected_nodes; ++u) {
    bound += (n - 1) - g.degree(u);
  }
  EXPECT_LE(agg.claim3_bits, bound);
}

}  // namespace
}  // namespace optrt::incompress
