// Tests for the Theorem 1 per-node table: build/decode round trips, routing
// correctness of the decoded view, and the 6n/7n size bounds.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "schemes/compact_node.hpp"
#include "schemes/errors.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;

struct Variant {
  const char* name;
  CompactNodeOptions options;
};

class CompactNodeVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(CompactNodeVariants, DecodedNextHopIsAShortestPathIntermediary) {
  Rng rng(41);
  const Graph g = graph::random_uniform(96, rng);
  const CompactNodeOptions opt = GetParam().options;
  for (graph::NodeId u = 0; u < 12; ++u) {
    const CompactNodeBits table = build_compact_node(g, u, opt);
    std::vector<graph::NodeId> free_nbrs;
    if (!opt.include_adjacency) {
      const auto nbrs = g.neighbors(u);
      free_nbrs.assign(nbrs.begin(), nbrs.end());
    }
    const DecodedCompactNode node =
        decode_compact_node(table.bits, 96, u, opt, free_nbrs);
    for (graph::NodeId w = 0; w < 96; ++w) {
      if (w == u) {
        EXPECT_EQ(node.next_of[w], DecodedCompactNode::kInvalid);
        continue;
      }
      const graph::NodeId hop = node.next_of[w];
      if (g.has_edge(u, w)) {
        EXPECT_EQ(hop, w);
      } else {
        // An intermediary on a length-2 (= shortest) path.
        EXPECT_TRUE(g.has_edge(u, hop));
        EXPECT_TRUE(g.has_edge(hop, w));
      }
    }
  }
}

TEST_P(CompactNodeVariants, DecodeConsumesFromBitsOnly) {
  // The decoded view must come entirely from the serialized bits (plus
  // free neighbour knowledge): flipping a table-2 index bit changes the
  // decode.
  Rng rng(43);
  const Graph g = graph::random_uniform(64, rng);
  const CompactNodeOptions opt = GetParam().options;
  const CompactNodeBits table = build_compact_node(g, 0, opt);
  std::vector<graph::NodeId> free_nbrs;
  if (!opt.include_adjacency) {
    const auto nbrs = g.neighbors(0);
    free_nbrs.assign(nbrs.begin(), nbrs.end());
  }
  const DecodedCompactNode before =
      decode_compact_node(table.bits, 64, 0, opt, free_nbrs);
  ASSERT_GT(table.table2_bits, 0u);
  bitio::BitVector tampered = table.bits;
  const std::size_t pos = tampered.size() - 1;  // inside table 2
  tampered.set(pos, !tampered.get(pos));
  // The tampered description either decodes to a different table or is
  // rejected as malformed — never silently identical.
  try {
    const DecodedCompactNode after =
        decode_compact_node(tampered, 64, 0, opt, free_nbrs);
    EXPECT_NE(before.next_of, after.next_of);
  } catch (const std::out_of_range&) {
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CompactNodeVariants,
    ::testing::Values(
        Variant{"paper_ii", CompactNodeOptions{}},
        Variant{"paper_ib", CompactNodeOptions{false, false, true}},
        Variant{"greedy", CompactNodeOptions{true, false, false}},
        Variant{"refined_threshold", CompactNodeOptions{false, true, false}},
        Variant{"greedy_refined_ib", CompactNodeOptions{true, true, true}}),
    [](const ::testing::TestParamInfo<Variant>& info) {
      return info.param.name;
    });

class CompactNodeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompactNodeSizes, TheoremOneBoundHolds) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  const Graph g = graph::random_uniform(n, rng);
  for (graph::NodeId u = 0; u < std::min<std::size_t>(n, 16); ++u) {
    // Model II: |F(u)| <= 6n.
    const CompactNodeBits ii = build_compact_node(g, u, {});
    EXPECT_LE(ii.bits.size(), 6 * n) << "n=" << n << " u=" << u;
    // Model IB adds the n−1-bit interconnection vector: <= 7n.
    CompactNodeOptions ib;
    ib.include_adjacency = true;
    EXPECT_LE(build_compact_node(g, u, ib).bits.size(), 7 * n);
    // The refined threshold (paper: "choosing l such that m_l is the first
    // quantity < n/log n shows |F(u)| <= 3n"). We allow slack for the m
    // header and discretisation.
    CompactNodeOptions refined;
    refined.threshold_log = true;
    EXPECT_LE(build_compact_node(g, u, refined).bits.size(), 3 * n + 64);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompactNodeSizes,
                         ::testing::Values(64, 128, 256, 512));

TEST(CompactNode, UnaryTableStaysLinear) {
  // Claim 1's geometric decay: table 1 <= 4n bits.
  Rng rng(77);
  const std::size_t n = 256;
  const Graph g = graph::random_uniform(n, rng);
  for (graph::NodeId u = 0; u < 8; ++u) {
    const CompactNodeBits table = build_compact_node(g, u, {});
    EXPECT_LE(table.table1_bits, 4 * n);
    EXPECT_LE(table.table2_bits, 2 * n);
  }
}

TEST(CompactNode, ThrowsWhenCoverIncomplete) {
  EXPECT_THROW(build_compact_node(graph::chain(8), 0, {}), SchemeInapplicable);
}

TEST(CompactNode, WorksOnStarCenterAndLeaves) {
  const Graph g = graph::star(10);
  // Centre: all nodes are neighbours; table trivial.
  const CompactNodeBits centre = build_compact_node(g, 0, {});
  const auto nbrs0 = g.neighbors(0);
  const DecodedCompactNode c = decode_compact_node(
      centre.bits, 10, 0, {}, {nbrs0.begin(), nbrs0.end()});
  for (graph::NodeId w = 1; w < 10; ++w) EXPECT_EQ(c.next_of[w], w);
  // Leaf: everything routed via the centre.
  const CompactNodeBits leaf = build_compact_node(g, 3, {});
  const auto nbrs3 = g.neighbors(3);
  const DecodedCompactNode l =
      decode_compact_node(leaf.bits, 10, 3, {}, {nbrs3.begin(), nbrs3.end()});
  for (graph::NodeId w = 1; w < 10; ++w) {
    if (w == 3) continue;
    EXPECT_EQ(l.next_of[w], 0u);
  }
}

TEST(CompactNode, GreedyTablesNoLargerThanPaperOrder) {
  Rng rng(78);
  const Graph g = graph::random_uniform(128, rng);
  std::size_t paper_total = 0;
  std::size_t greedy_total = 0;
  for (graph::NodeId u = 0; u < 16; ++u) {
    paper_total += build_compact_node(g, u, {}).bits.size();
    CompactNodeOptions greedy;
    greedy.greedy_cover = true;
    greedy_total += build_compact_node(g, u, greedy).bits.size();
  }
  // Greedy pays for explicit center ranks but needs fewer centers; it
  // should stay within 1.25× of the paper's order either way.
  EXPECT_LT(greedy_total, paper_total * 5 / 4 + 16 * 64);
  EXPECT_LT(paper_total, greedy_total * 5 / 4 + 16 * 64);
}

}  // namespace
}  // namespace optrt::schemes
