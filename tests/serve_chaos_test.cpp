// Protocol chaos: the ORTP dispatch core and the socket loop under
// seeded frame corruption.
//
// The contract mirrors the artifact chaos harness (tests/chaos_test.cpp):
// for every opcode and every corruption seed the server must answer with
// a typed error frame or a bit-exact success response — never crash,
// never hang, never emit bytes that fail its own parser. Corruption
// #(frame, seed) is replayable from the seed alone, so any failure here
// is a one-line repro.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/graph_io.hpp"
#include "core/parallel.hpp"
#include "net/chaos.hpp"
#include "schemes/full_table.hpp"
#include "schemes/serialization.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::Rng;

constexpr std::size_t kSeedsPerOpcode = 2048;

/// Scratch directory removed on scope exit.
struct TempDir {
  std::filesystem::path path;
  TempDir() {
    char tmpl[] = "/tmp/serve_chaos.XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// A one-artifact store (full-table over a small certified graph): enough
/// surface for every opcode to do real work.
struct StoreFixture {
  TempDir dir;
  std::unique_ptr<serve::ArtifactStore> store;

  StoreFixture() {
    Rng rng(1996);
    const Graph g = core::certified_random_graph(32, rng);
    core::save_graph(dir.file("g0.eg"), g);
    schemes::save_artifact(
        dir.file("g0.ort"),
        schemes::serialize(schemes::FullTableScheme::standard(g)));
    store = std::make_unique<serve::ArtifactStore>(dir.path.string());
    const serve::LoadReport report = store->load();
    if (!report.ok()) {
      throw std::runtime_error(serve::format_load_failure(report.failures[0]));
    }
  }
};

/// One well-formed request frame per opcode.
std::vector<std::pair<std::string, serve::Frame>> request_menu() {
  const std::vector<serve::QueryPair> pairs{{0, 1}, {5, 9}, {30, 2}};
  return {
      {"ping", serve::make_ping_request()},
      {"next_hop", serve::make_next_hop_request(0, pairs)},
      {"route", serve::make_route_request(0, pairs)},
      {"list", serve::make_list_request()},
      {"reload", serve::make_reload_request()},
  };
}

/// Every response the server emits must round-trip through its own
/// parser as a success or error frame.
void expect_well_formed(const std::vector<std::uint8_t>& response,
                        const std::string& context) {
  std::size_t consumed = 0;
  serve::Frame frame;
  ASSERT_NO_THROW(frame = serve::parse_frame(response, &consumed)) << context;
  ASSERT_EQ(consumed, response.size()) << context;
  ASSERT_TRUE(frame.is_response() || frame.is_error()) << context;
}

// For every opcode: 2048 seeded corruptions through the pure dispatch
// core. Typed error or bit-exact round-trip — and when the corruption
// happens to be the identity, the response must be byte-identical to the
// uncorrupted one (the server is deterministic under chaos).
TEST(ServeChaos, DispatchSurvivesSeededCorruptionPerOpcode) {
  StoreFixture fx;
  serve::Server server(*fx.store, {});

  for (const auto& [name, request] : request_menu()) {
    const std::vector<std::uint8_t> clean = serve::encode_frame(request);
    const std::vector<std::uint8_t> clean_response =
        server.handle_request(clean);
    expect_well_formed(clean_response, name + "/clean");
    ASSERT_FALSE(serve::parse_frame(clean_response).is_error())
        << name << ": the uncorrupted request must succeed";

    std::size_t rejected = 0;
    for (std::size_t i = 0; i < kSeedsPerOpcode; ++i) {
      const std::uint64_t seed = core::point_seed(1996, i, 29);
      net::CorruptionReport report;
      const std::vector<std::uint8_t> damaged =
          net::corrupt_bytes(clean, seed, &report);
      const std::string context = name + ": seed=" + std::to_string(seed) +
                                  " kind=" + net::to_string(report.kind);

      const std::vector<std::uint8_t> response = server.handle_request(damaged);
      expect_well_formed(response, context);
      const serve::Frame parsed = serve::parse_frame(response);
      if (parsed.is_error()) {
        ++rejected;
        // The error must carry a code from the taxonomy, not garbage.
        const serve::ErrorInfo info = serve::decode_error(parsed);
        ASSERT_GE(static_cast<int>(info.code), 1) << context;
        ASSERT_LE(static_cast<int>(info.code), 10) << context;
      }
      if (damaged == clean) {
        ASSERT_EQ(response, clean_response)
            << context << ": identity corruption must round-trip bit-exact";
      }
    }
    // The corruption menu lands mostly on bytes the integrity layer
    // covers; the overwhelming majority of draws must be rejected.
    EXPECT_GT(rejected, kSeedsPerOpcode / 2) << name;
  }
}

// A smaller sweep through the real socket loop: corrupted bytes written
// to a live connection, write side shut, everything the server sends
// back until EOF must parse as a sequence of well-formed frames. The
// server must always release the connection (the read below terminates),
// and a frame the integrity layer cannot resynchronize after (bad magic,
// bad version, truncation) ends the stream.
TEST(ServeChaos, SocketLoopSurvivesCorruptedFrames) {
  StoreFixture fx;
  serve::ServerConfig config;
  config.threads = 3;
  config.poll_interval_ms = 5;
  config.idle_timeout_ms = 5000;
  serve::Server server(*fx.store, config);
  std::thread runner([&] { server.run(); });

  constexpr std::size_t kSocketSeeds = 128;
  for (const auto& [name, request] : request_menu()) {
    const std::vector<std::uint8_t> clean = serve::encode_frame(request);
    for (std::size_t i = 0; i < kSocketSeeds; ++i) {
      const std::uint64_t seed = core::point_seed(733, i, 31);
      const std::vector<std::uint8_t> damaged =
          net::corrupt_bytes(clean, seed);
      const std::string context =
          name + ": socket seed=" + std::to_string(seed);

      int sv[2];
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
      server.adopt_connection(sv[0]);
      if (!damaged.empty()) {
        ASSERT_EQ(::send(sv[1], damaged.data(), damaged.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(damaged.size()))
            << context;
      }
      ASSERT_EQ(::shutdown(sv[1], SHUT_WR), 0) << context;

      // Drain everything until the server closes its end. Terminates
      // because the server closes on EOF or error; idle_timeout_ms backs
      // that as a last resort.
      std::vector<std::uint8_t> received;
      std::array<std::uint8_t, 4096> buf;
      for (;;) {
        const ssize_t got = ::recv(sv[1], buf.data(), buf.size(), 0);
        if (got <= 0) break;
        received.insert(received.end(), buf.begin(), buf.begin() + got);
      }
      ::close(sv[1]);

      // Zero or more well-formed frames, nothing else.
      std::span<const std::uint8_t> rest(received);
      std::size_t frames = 0;
      while (!rest.empty()) {
        std::size_t consumed = 0;
        serve::Frame frame;
        ASSERT_NO_THROW(frame = serve::parse_frame(rest, &consumed))
            << context << ": server sent unparseable bytes";
        ASSERT_TRUE(frame.is_response() || frame.is_error()) << context;
        rest = rest.subspan(consumed);
        ++frames;
      }
      ASSERT_LE(frames, 2u) << context;  // response (+ trailing-junk error)
    }
  }

  server.stop();
  runner.join();
}

// corrupt_bytes itself: deterministic, size-bounded, and the bit-level
// repack agrees with the BitVector corruption it fronts.
TEST(ServeChaos, CorruptBytesIsSeededAndBounded) {
  const std::vector<std::uint8_t> frame =
      serve::encode_frame(serve::make_ping_request());
  for (std::uint64_t seed = 0; seed < 256; ++seed) {
    net::CorruptionReport a_report;
    const auto a = net::corrupt_bytes(frame, seed, &a_report);
    const auto b = net::corrupt_bytes(frame, seed);
    EXPECT_EQ(a, b) << "seed=" << seed;
    EXPECT_LE(a.size(), 2 * frame.size() + 8) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace optrt
