// Construction chaos: the three CONGEST protocols under seeded fault
// plans striking mid-flood. The contract mirrors the serving chaos
// harness (tests/serve_chaos_test.cpp): for every (generator, count,
// repair, seed) cell the run must either converge to a scheme the
// verifier certifies or report a typed ConstructStatus — never crash,
// never hang (the engine's budgets convert stalls into kStalled), and
// every cell is bit-replayable from its parameters alone, at any thread
// count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/optrt.hpp"
#include "net/congest.hpp"
#include "net/construction.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::TopologyFamily;

constexpr std::size_t kN = 32;
constexpr std::uint64_t kSeeds = 6;

Graph connected_member(const TopologyFamily& family, std::uint64_t base) {
  for (std::uint64_t seed = base;; ++seed) {
    Graph g = family.make(kN, seed);
    if (graph::is_connected(g)) return g;
  }
}

struct Cell {
  net::FaultModel model;
  std::size_t count;
  std::uint64_t repair_after;
  std::uint64_t seed;
};

std::vector<Cell> sweep() {
  std::vector<Cell> cells;
  for (const auto model : {net::FaultModel::kUniform, net::FaultModel::kTargeted,
                           net::FaultModel::kPartition}) {
    for (const std::size_t count : {std::size_t{1}, std::size_t{3}}) {
      for (const std::uint64_t repair : {std::uint64_t{0}, std::uint64_t{2}}) {
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
          cells.push_back({model, count, repair, seed});
        }
      }
    }
  }
  return cells;
}

net::FaultPlan plan_for(const Graph& g, const Cell& cell,
                        std::uint64_t fail_time) {
  net::FaultOptions opt;
  opt.seed = cell.seed;
  opt.fail_time = fail_time;
  opt.repair_after = cell.repair_after;
  return net::make_fault_plan(g, cell.model, cell.count, opt);
}

std::string trace(const Cell& cell) {
  return std::string(net::to_string(cell.model)) + " count=" +
         std::to_string(cell.count) + " repair=" +
         std::to_string(cell.repair_after) + " seed=" +
         std::to_string(cell.seed);
}

// --- Compact: one-shot exchange, so any surviving drop is typed -----------

TEST(CongestChaos, CompactConvergesOrReportsTyped) {
  const Graph g = TopologyFamily::uniform().make(kN, 404);
  for (const Cell& cell : sweep()) {
    SCOPED_TRACE(trace(cell));
    const auto plan = plan_for(g, cell, 1);
    const auto built =
        net::distributed_compact_construction(g, {}, {.faults = &plan});
    const auto again =
        net::distributed_compact_construction(g, {}, {.faults = &plan,
                                                      .threads = 8});
    EXPECT_EQ(built.status, again.status);
    EXPECT_EQ(built.node_tables, again.node_tables);
    EXPECT_EQ(built.dropped, again.dropped);
    if (built.status != net::ConstructStatus::kOk) continue;
    // Converged: tables must be the centralized ones, stretch exactly 1.
    const schemes::CompactDiam2Scheme scheme(
        g, {}, std::vector<bitio::BitVector>(built.node_tables));
    const auto verdict = model::verify_scheme(g, scheme);
    EXPECT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.max_stretch, 1.0);
  }
}

// --- Full table: mid-flood faults, audited distance vectors ---------------

TEST(CongestChaos, FullTableConvergesOrReportsTyped) {
  const Graph g = connected_member(TopologyFamily::grid(), 1);
  for (const Cell& cell : sweep()) {
    SCOPED_TRACE(trace(cell));
    const auto plan = plan_for(g, cell, 3);  // strikes mid-flood
    const auto built =
        net::distributed_full_table_construction(g, {.faults = &plan});
    const auto again = net::distributed_full_table_construction(
        g, {.faults = &plan, .threads = 8});
    EXPECT_EQ(built.status, again.status);
    EXPECT_EQ(built.node_tables, again.node_tables);
    EXPECT_EQ(built.rounds, again.rounds);
    if (built.status != net::ConstructStatus::kOk) continue;
    const schemes::FullTableScheme scheme(
        g, graph::PortAssignment::sorted(g),
        graph::Labeling::identity(g.node_count()), model::kIAalpha,
        std::vector<bitio::BitVector>(built.node_tables));
    const auto verdict = model::verify_scheme(g, scheme);
    EXPECT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.max_stretch, 1.0);
  }
}

// --- TZ: faults across election, floods, and announcements ---------------

TEST(CongestChaos, TzConvergesOrReportsTyped) {
  for (const auto& family :
       {TopologyFamily::power_law(2), TopologyFamily::grid()}) {
    const Graph g = connected_member(family, 406);
    for (const Cell& cell : sweep()) {
      SCOPED_TRACE(family.name() + " " + trace(cell));
      const auto plan = plan_for(g, cell, 4);
      schemes::TzOptions opt;
      opt.seed = 17;
      const auto built =
          net::distributed_tz_construction(g, opt, {.faults = &plan});
      const auto again = net::distributed_tz_construction(
          g, opt, {.faults = &plan, .threads = 8});
      EXPECT_EQ(built.status, again.status);
      EXPECT_EQ(built.rounds, again.rounds);
      EXPECT_EQ(built.dropped, again.dropped);
      if (built.status != net::ConstructStatus::kOk) {
        EXPECT_EQ(built.scheme, nullptr);
        EXPECT_FALSE(std::string(to_string(built.status)).empty());
        continue;
      }
      // Converged under faults: the audit accepted, so the scheme must
      // certify at the paper's bound.
      ASSERT_NE(built.scheme, nullptr);
      ASSERT_NE(again.scheme, nullptr);
      for (NodeId u = 0; u < g.node_count(); ++u) {
        EXPECT_EQ(built.scheme->function_bits(u), again.scheme->function_bits(u));
      }
      EXPECT_TRUE(model::verify_scheme_stretch(g, *built.scheme, 3.0).ok());
    }
  }
}

// --- Node failures: the harder adversary, same contract -------------------

TEST(CongestChaos, NodeFailuresNeverPassTheAudit) {
  const Graph g = connected_member(TopologyFamily::grid(), 1);
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE(seed);
    net::FaultOptions opt;
    opt.seed = seed;
    opt.fail_time = 2;  // permanent: the node stays dark through the audit
    const auto plan = net::uniform_node_faults(g, 1, opt);
    const auto full =
        net::distributed_full_table_construction(g, {.faults = &plan});
    EXPECT_NE(full.status, net::ConstructStatus::kOk);
    schemes::TzOptions tz_opt;
    tz_opt.seed = 17;
    const auto tz = net::distributed_tz_construction(g, tz_opt,
                                                     {.faults = &plan});
    EXPECT_NE(tz.status, net::ConstructStatus::kOk);
  }
}

}  // namespace
}  // namespace optrt
