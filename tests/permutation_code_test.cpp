// Permutation-coding tests: Lehmer rank/unrank bijection, the exact
// ⌈log₂ d!⌉ widths, and the footnote-1 payload channel through a port
// assignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "graph/generators.hpp"
#include "graph/ports.hpp"
#include "incompressibility/permutation_code.hpp"
#include "incompressibility/theorem8.hpp"

namespace optrt::incompress {
namespace {

TEST(PermutationCode, RankIsLexicographic) {
  // d = 3: 012→0, 021→1, 102→2, 120→3, 201→4, 210→5.
  EXPECT_EQ(rank_permutation({0, 1, 2}).as_u64(), 0u);
  EXPECT_EQ(rank_permutation({0, 2, 1}).as_u64(), 1u);
  EXPECT_EQ(rank_permutation({1, 0, 2}).as_u64(), 2u);
  EXPECT_EQ(rank_permutation({1, 2, 0}).as_u64(), 3u);
  EXPECT_EQ(rank_permutation({2, 0, 1}).as_u64(), 4u);
  EXPECT_EQ(rank_permutation({2, 1, 0}).as_u64(), 5u);
}

TEST(PermutationCode, ExhaustiveBijectionAtD5) {
  std::vector<std::uint32_t> perm = {0, 1, 2, 3, 4};
  std::uint64_t expected = 0;
  do {
    const BigUint rank = rank_permutation(perm);
    ASSERT_TRUE(rank.fits_u64());
    EXPECT_EQ(rank.as_u64(), expected);
    EXPECT_EQ(unrank_permutation(5, rank), perm);
    ++expected;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(expected, 120u);
}

class PermRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PermRoundTrip, RandomPermutationsRoundTrip) {
  const std::size_t d = GetParam();
  std::mt19937_64 rng(d);
  std::vector<std::uint32_t> perm(d);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(perm.begin(), perm.end(), rng);
    EXPECT_EQ(unrank_permutation(d, rank_permutation(perm)), perm);
    // Stream form at the exact width.
    bitio::BitWriter w;
    write_permutation(w, perm);
    EXPECT_EQ(w.bit_count(), permutation_code_bits(d));
    bitio::BitReader r(w.bits());
    EXPECT_EQ(read_permutation(r, d), perm);
  }
}

INSTANTIATE_TEST_SUITE_P(Ds, PermRoundTrip,
                         ::testing::Values(1, 2, 3, 8, 20, 64, 150));

TEST(PermutationCode, WidthMatchesLog2Factorial) {
  EXPECT_EQ(permutation_code_bits(0), 0u);
  EXPECT_EQ(permutation_code_bits(1), 0u);
  EXPECT_EQ(permutation_code_bits(2), 1u);   // 2! = 2
  EXPECT_EQ(permutation_code_bits(3), 3u);   // 6 → 3 bits
  EXPECT_EQ(permutation_code_bits(4), 5u);   // 24 → 5 bits
  EXPECT_EQ(permutation_code_bits(5), 7u);   // 120 → 7 bits
  // Against lgamma at scale.
  const double exact = log2_factorial(200);
  EXPECT_NEAR(static_cast<double>(permutation_code_bits(200)), exact, 1.5);
}

TEST(PermutationCode, UnrankRejectsOutOfRange) {
  BigUint six(6);
  EXPECT_THROW(unrank_permutation(3, six), std::out_of_range);
}

// --- Footnote 1: the port assignment as a free channel ------------------------

TEST(Footnote1, PayloadSurvivesTheRoundTrip) {
  std::mt19937_64 rng(77);
  for (std::size_t d : {4u, 16u, 50u, 120u}) {
    const std::size_t capacity = payload_capacity_bits(d);
    bitio::BitVector payload(capacity);
    for (std::size_t i = 0; i < capacity; ++i) payload.set(i, rng() & 1u);
    const auto perm = embed_payload(d, payload);
    // A genuine permutation of {0..d−1}:
    std::vector<std::uint32_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < d; ++i) ASSERT_EQ(sorted[i], i);
    EXPECT_EQ(extract_payload(perm), payload);
  }
}

TEST(Footnote1, CapacityIsDLogDish) {
  // d log d − d log e ≤ ⌊log d!⌋ ≤ d log d.
  const double d = 64.0;
  const auto capacity = static_cast<double>(payload_capacity_bits(64));
  EXPECT_LE(capacity, d * std::log2(d));
  EXPECT_GE(capacity, d * std::log2(d) - d * 1.4427);
}

TEST(Footnote1, PortAssignmentCarriesThePayload) {
  // End to end through the graph layer: embed a payload into node u's port
  // permutation and read it back from the assignment — the reason the
  // paper must exclude "free ports + known neighbours".
  graph::Rng rng(78);
  const graph::Graph g = graph::random_gnp(40, 0.5, rng);
  const graph::NodeId u = 0;
  const std::size_t d = g.degree(u);
  const std::size_t capacity = payload_capacity_bits(d);
  bitio::BitVector secret(capacity);
  std::mt19937_64 srng(79);
  for (std::size_t i = 0; i < capacity; ++i) secret.set(i, srng() & 1u);

  // Port p ↦ the perm[p]-th least neighbour.
  const auto code = embed_payload(d, secret);
  std::vector<std::vector<graph::NodeId>> port_maps(g.node_count());
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const auto nbrs = g.neighbors(v);
    port_maps[v].assign(nbrs.begin(), nbrs.end());
  }
  const auto nbrs_u = g.neighbors(u);
  for (std::size_t p = 0; p < d; ++p) port_maps[u][p] = nbrs_u[code[p]];
  const auto ports = graph::PortAssignment::from_port_maps(g, port_maps);

  // Receiver recovers the permutation (rank of neighbour per port) and the
  // payload.
  std::vector<std::uint32_t> recovered(d);
  for (std::size_t p = 0; p < d; ++p) {
    const graph::NodeId v = ports.neighbor_at(u, static_cast<graph::PortId>(p));
    recovered[p] = static_cast<std::uint32_t>(
        std::lower_bound(nbrs_u.begin(), nbrs_u.end(), v) - nbrs_u.begin());
  }
  EXPECT_EQ(extract_payload(recovered), secret);
}

}  // namespace
}  // namespace optrt::incompress
