// Space-accounting tests: every scheme's measured bits against the exact
// bounds the theorems state.
#include <gtest/gtest.h>

#include <cmath>

#include "bitio/codes.hpp"
#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "incompressibility/bounds.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hub.hpp"
#include "schemes/interval.hpp"
#include "schemes/neighbor_label.hpp"
#include "schemes/routing_center.hpp"
#include "schemes/sequential_search.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

class SpaceBounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpaceBounds, Theorem1SixNPerNode) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 101);
  const CompactDiam2Scheme scheme(g, {});
  const auto space = scheme.space();
  EXPECT_EQ(space.label_bits, 0u);
  EXPECT_EQ(space.function_bits.size(), n);
  EXPECT_LE(space.max_node_bits(), 6 * n);
  EXPECT_LE(space.total_bits(), 6 * n * n);
}

TEST_P(SpaceBounds, Theorem1SevenNPerNodeUnderIB) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 102);
  CompactDiam2Scheme::Options opt;
  opt.neighbors_known = false;
  const CompactDiam2Scheme scheme(g, opt);
  EXPECT_LE(scheme.space().max_node_bits(), 7 * n);
}

TEST_P(SpaceBounds, Theorem2LabelsDominate) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 103);
  const NeighborLabelScheme scheme(g);
  const auto space = scheme.space();
  // Local routing functions are O(1): zero stored bits here.
  EXPECT_EQ(space.total_function_bits(), 0u);
  // Labels: at most (1 + (c+3) log n)·log n bits per node with c = 3.
  const double log_n = std::log2(static_cast<double>(n));
  const double per_node_bound = (1.0 + 6.0 * log_n) * log_n + 2.0 * log_n;
  EXPECT_LE(static_cast<double>(space.label_bits),
            static_cast<double>(n) * per_node_bound);
  EXPECT_GT(space.label_bits, 0u);
  // Total stays within the Theorem 2 headline bound.
  EXPECT_LE(static_cast<double>(space.total_bits()),
            incompress::theorem2_total_bound(n) + 4.0 * n * log_n);
}

TEST_P(SpaceBounds, Theorem3TotalNLogN) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 104);
  const RoutingCenterScheme scheme(g);
  const auto space = scheme.space();
  // (6c+20)·n·log n with c = 3 → 38 n log n; our constant is far smaller.
  EXPECT_LE(static_cast<double>(space.total_bits()),
            incompress::theorem3_total_bound(n));
  // Non-center nodes store only ⌈log n⌉ bits.
  std::size_t big_nodes = 0;
  for (std::size_t bits : space.function_bits) {
    if (bits > bitio::ceil_log2(n)) ++big_nodes;
  }
  EXPECT_EQ(big_nodes, scheme.centers().size());
  EXPECT_LE(big_nodes,
            1 + static_cast<std::size_t>(
                    std::ceil(6.0 * std::log2(static_cast<double>(n)))));
}

TEST_P(SpaceBounds, Theorem4HubPlusLogLog) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 105);
  const HubScheme scheme(g);
  const auto space = scheme.space();
  // Hub: ≤ 6n. Everyone else: ≤ rank_width = loglog n + O(1) bits.
  EXPECT_LE(space.function_bits[scheme.hub()], 6 * n);
  for (graph::NodeId u = 0; u < n; ++u) {
    if (u == scheme.hub()) continue;
    EXPECT_LE(space.function_bits[u], scheme.rank_width());
  }
  const double bound = incompress::theorem4_total_bound(n);
  // Allow the +O(1)-per-node discretisation of ⌈log₂⌈6 log₂ n⌉⌉.
  EXPECT_LE(static_cast<double>(space.total_bits()), bound + 3.0 * n);
}

TEST_P(SpaceBounds, Theorem5ConstantBits) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 106);
  const SequentialSearchScheme scheme(g);
  EXPECT_EQ(scheme.space().total_bits(), 0u);
}

TEST_P(SpaceBounds, FullTableIsNCeilLogDPerNode) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 107);
  const FullTableScheme scheme = FullTableScheme::standard(g);
  const auto space = scheme.space();
  for (graph::NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(space.function_bits[u], n * bitio::ceil_log2(g.degree(u)));
  }
}

TEST_P(SpaceBounds, FullInformationIsNTimesDegreePerNode) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 108);
  const FullInformationScheme scheme = FullInformationScheme::standard(g);
  const auto space = scheme.space();
  std::size_t expected_total = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(space.function_bits[u], n * g.degree(u));
    expected_total += n * g.degree(u);
  }
  EXPECT_EQ(space.total_bits(), expected_total);
  // Θ(n³): 2·n·|E| ≈ n³/2 ≤ n³ (Theorem 10's trivial upper bound).
  EXPECT_LE(static_cast<double>(space.total_bits()),
            incompress::trivial_full_information_bound(n));
}

TEST_P(SpaceBounds, StretchSpaceTradeOffIsMonotone) {
  // Theorems 1 → 3 → 4 → 5: strictly decreasing space.
  const std::size_t n = GetParam();
  const Graph g = certified(n, 109);
  const auto t1 = CompactDiam2Scheme(g, {}).space().total_bits();
  const auto t3 = RoutingCenterScheme(g).space().total_bits();
  const auto t4 = HubScheme(g).space().total_bits();
  const auto t5 = SequentialSearchScheme(g).space().total_bits();
  EXPECT_GT(t1, t3);
  EXPECT_GT(t3, t4);
  EXPECT_GT(t4, t5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpaceBounds,
                         ::testing::Values(64, 128, 256));

TEST(Space, ReportArithmetic) {
  model::SpaceReport report;
  report.function_bits = {10, 20, 30};
  report.label_bits = 5;
  EXPECT_EQ(report.total_function_bits(), 60u);
  EXPECT_EQ(report.total_bits(), 65u);
  EXPECT_EQ(report.max_node_bits(), 30u);
}

TEST(Space, IntervalTreeIsNearLinear) {
  const Graph g = certified(128, 110);
  const IntervalRoutingScheme scheme(g);
  // Tree edges only: ≈ 3·(n−1)·log n + n·(log n + count) bits total.
  const double bound = 8.0 * 128.0 * std::log2(128.0);
  EXPECT_LE(static_cast<double>(scheme.space().total_bits()), bound);
}

}  // namespace
}  // namespace optrt::schemes
