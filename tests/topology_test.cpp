// Generator property tests for the Internet-like topology layer: exact
// edge-count/degree-sum invariants, seeded bit-determinism at any thread
// count, connectivity after configuration-model repair, an empirical
// tail-exponent sanity check for the power-law family, and
// degree-sequence fidelity of the configuration model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/parallel.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;
using graph::TopologyFamily;

std::size_t degree_sum(const Graph& g) {
  std::size_t sum = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) sum += g.degree(v);
  return sum;
}

TEST(BarabasiAlbert, ExactEdgeCountDegreeSumAndConnectivity) {
  for (const auto& [n, m] : {std::pair<std::size_t, std::size_t>{8, 1},
                            {50, 2},
                            {200, 3},
                            {64, 5}}) {
    Rng rng(7 * n + m);
    const Graph g = graph::barabasi_albert(n, m, rng);
    ASSERT_EQ(g.node_count(), n);
    // Star seed contributes m edges, every later node exactly m more.
    EXPECT_EQ(g.edge_count(), m + (n - m - 1) * m) << "n=" << n << " m=" << m;
    EXPECT_EQ(degree_sum(g), 2 * g.edge_count());
    EXPECT_TRUE(graph::is_connected(g));
    EXPECT_GE(g.min_degree(), std::min<std::size_t>(m, 1));
  }
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(graph::barabasi_albert(5, 0, rng), std::invalid_argument);
  EXPECT_THROW(graph::barabasi_albert(3, 3, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, SeededBitDeterminism) {
  Rng a(42), b(42), c(43);
  const Graph g1 = graph::barabasi_albert(100, 2, a);
  const Graph g2 = graph::barabasi_albert(100, 2, b);
  const Graph g3 = graph::barabasi_albert(100, 2, c);
  EXPECT_TRUE(g1 == g2);
  EXPECT_FALSE(g1 == g3);
}

// Empirical tail sanity: BA degrees follow a power law with exponent ≈ 3,
// so the CCDF P(D ≥ d) on a log-log plot has slope ≈ −2. A least-squares
// fit over the resolved range must land well away from the thin-tailed
// regime (and the max degree must dwarf the mean).
TEST(BarabasiAlbert, EmpiricalTailExponent) {
  const std::size_t n = 2048;
  Rng rng(1996);
  const Graph g = graph::barabasi_albert(n, 2, rng);

  std::vector<std::size_t> degrees(n);
  for (NodeId v = 0; v < n; ++v) degrees[v] = g.degree(v);
  const double mean = static_cast<double>(degree_sum(g)) / n;
  EXPECT_GE(static_cast<double>(g.max_degree()), 8.0 * mean)
      << "no heavy tail: max degree too close to the mean";

  const std::size_t d_max = g.max_degree();
  std::vector<double> xs, ys;
  for (std::size_t d = 2; d <= d_max; ++d) {
    const auto count = static_cast<std::size_t>(
        std::count_if(degrees.begin(), degrees.end(),
                      [d](std::size_t deg) { return deg >= d; }));
    if (count < 8) break;  // tail too thin to resolve
    xs.push_back(std::log(static_cast<double>(d)));
    ys.push_back(std::log(static_cast<double>(count) / n));
  }
  ASSERT_GE(xs.size(), 4u);
  const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  const double my = std::accumulate(ys.begin(), ys.end(), 0.0) / ys.size();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += (xs[i] - mx) * (ys[i] - my);
    den += (xs[i] - mx) * (xs[i] - mx);
  }
  const double slope = num / den;
  EXPECT_LT(slope, -1.2) << "CCDF slope too shallow for a power law";
  EXPECT_GT(slope, -3.5) << "CCDF slope implausibly steep";
}

TEST(PowerLawDegrees, RangeAndEvenSum) {
  Rng rng(5);
  const auto degrees = graph::power_law_degrees(300, 2.1, 2, rng);
  ASSERT_EQ(degrees.size(), 300u);
  std::size_t sum = 0;
  for (std::size_t d : degrees) {
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 299u);
    sum += d;
  }
  EXPECT_EQ(sum % 2, 0u);
  EXPECT_THROW(graph::power_law_degrees(300, 0.5, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(graph::power_law_degrees(300, 2.1, 0, rng),
               std::invalid_argument);
}

TEST(ConfigurationModel, ConnectedSimpleAndFaithful) {
  Rng rng(17);
  const auto degrees = graph::power_law_degrees(400, 2.1, 2, rng);
  const Graph g = graph::configuration_model(degrees, rng);
  ASSERT_EQ(g.node_count(), 400u);
  EXPECT_TRUE(graph::is_connected(g));  // repair guarantees it
  EXPECT_EQ(degree_sum(g), 2 * g.edge_count());  // simple by Graph invariant

  // Degree-sequence fidelity: repair only drops unswappable bad pairs and
  // adds bridge edges, so achieved degrees track the request closely.
  std::size_t total_request = 0, total_error = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    total_request += degrees[v];
    const std::size_t got = g.degree(v);
    total_error += got > degrees[v] ? got - degrees[v] : degrees[v] - got;
  }
  EXPECT_LE(total_error * 20, total_request)
      << "repair rewrote more than 5% of the requested stubs";
}

TEST(ConfigurationModel, RejectsBadSequences) {
  Rng rng(3);
  const std::vector<std::size_t> odd = {1, 1, 1};
  EXPECT_THROW((void)graph::configuration_model(odd, rng),
               std::invalid_argument);
  const std::vector<std::size_t> too_big = {4, 2, 1, 1};
  EXPECT_THROW((void)graph::configuration_model(too_big, rng),
               std::invalid_argument);
}

TEST(ConfigurationModel, RepairsDisconnectedSamples) {
  // A degree sequence that stub matching happily splits into components
  // (two K2-able halves); repair must bridge whatever comes out.
  Rng rng(11);
  const std::vector<std::size_t> degrees = {1, 1, 1, 1, 1, 1};
  const Graph g = graph::configuration_model(degrees, rng);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(TopologyFamily, MakesEveryFamilyOnExactlyNNodes) {
  const std::vector<TopologyFamily> families = {
      TopologyFamily::uniform(),     TopologyFamily::gnp(0.3),
      TopologyFamily::power_law(2),  TopologyFamily::config_model(2.1, 2),
      TopologyFamily::grid(),        TopologyFamily::ring(),
  };
  for (const auto& family : families) {
    const Graph g = family.make(60, 9);
    EXPECT_EQ(g.node_count(), 60u) << family.name();
    if (family.kind != TopologyFamily::Kind::kUniform &&
        family.kind != TopologyFamily::Kind::kGnp) {
      EXPECT_TRUE(graph::is_connected(g)) << family.name();
    }
  }
  // Near-square grid factorization: 60 = 6 × 10 (6 is the largest divisor
  // ≤ √60), so interior nodes have degree 4 and the graph is not a chain.
  const Graph grid = TopologyFamily::grid().make(60, 0);
  EXPECT_EQ(grid.max_degree(), 4u);
  EXPECT_EQ(grid.edge_count(), 6u * 9u + 5u * 10u);
}

TEST(TopologyFamily, ParseRoundTripsAndRejects) {
  EXPECT_EQ(TopologyFamily::parse("uniform").kind,
            TopologyFamily::Kind::kUniform);
  const auto gnp = TopologyFamily::parse("gnp:0.25");
  EXPECT_EQ(gnp.kind, TopologyFamily::Kind::kGnp);
  EXPECT_DOUBLE_EQ(gnp.p, 0.25);
  const auto ba = TopologyFamily::parse("ba:3");
  EXPECT_EQ(ba.kind, TopologyFamily::Kind::kPowerLaw);
  EXPECT_EQ(ba.attach, 3u);
  EXPECT_EQ(TopologyFamily::parse("power-law:2").kind,
            TopologyFamily::Kind::kPowerLaw);
  const auto config = TopologyFamily::parse("config:2.4,3");
  EXPECT_EQ(config.kind, TopologyFamily::Kind::kConfigModel);
  EXPECT_DOUBLE_EQ(config.exponent, 2.4);
  EXPECT_EQ(config.min_degree, 3u);
  EXPECT_EQ(TopologyFamily::parse("grid").kind, TopologyFamily::Kind::kGrid);
  EXPECT_EQ(TopologyFamily::parse("ring").kind, TopologyFamily::Kind::kRing);
  for (const char* bad : {"", "nope", "gnp:", "gnp:2.5", "ba:0", "ba:x",
                          "config:2.1", "config:0.5,2", "config:2.1,0"}) {
    EXPECT_THROW(TopologyFamily::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(TopologyFamily, NamesAreStable) {
  EXPECT_EQ(TopologyFamily::uniform().name(), "uniform");
  EXPECT_EQ(TopologyFamily::gnp(0.25).name(), "gnp(0.25)");
  EXPECT_EQ(TopologyFamily::power_law(2).name(), "power-law(m=2)");
  EXPECT_EQ(TopologyFamily::config_model(2.1, 2).name(), "config(2.1,2)");
  EXPECT_EQ(TopologyFamily::grid().name(), "grid");
  EXPECT_EQ(TopologyFamily::ring().name(), "ring");
}

// Seeded bit-determinism at any thread count: building family members for
// a batch of seeds through parallel_map must produce identical structural
// fingerprints no matter how the batch is sharded — generation is a pure
// function of (family, n, seed), never of scheduling.
TEST(TopologyFamily, BitDeterministicAtAnyThreadCount) {
  const std::vector<TopologyFamily> families = {
      TopologyFamily::uniform(),
      TopologyFamily::power_law(2),
      TopologyFamily::config_model(2.1, 2),
      TopologyFamily::grid(),
      TopologyFamily::ring(),
  };
  for (const auto& family : families) {
    std::vector<std::vector<graph::GraphFingerprint>> runs;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      runs.push_back(core::parallel_map<graph::GraphFingerprint>(
          threads, 12, [&](std::size_t seed) {
            return graph::fingerprint(family.make(40, seed + 1));
          }));
    }
    EXPECT_EQ(runs[0], runs[1]) << family.name();
    EXPECT_EQ(runs[0], runs[2]) << family.name();
  }
}

}  // namespace
}  // namespace optrt
