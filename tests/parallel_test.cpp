// Thread-pool unit tests plus the determinism contract: parallel sweeps
// and verifications must be bit-identical at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/full_table.hpp"

namespace optrt::core {
namespace {

TEST(ThreadPool, StartupAndShutdown) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
  }
  // Repeated construction/destruction must not leak or deadlock.
  for (int round = 0; round < 16; ++round) {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.parallel_for(8, [&](std::size_t b, std::size_t e) {
      ran += static_cast<int>(e - b);
    });
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  ThreadPool pool;  // default_threads()
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SetDefaultThreadsOverrides) {
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3u);
  ThreadPool pool;
  EXPECT_EQ(pool.thread_count(), 3u);
  set_default_threads(0);  // restore auto-detection
  EXPECT_GE(default_threads(), 1u);
}

TEST(ThreadPool, AppliesThreadsFlagAndStripsIt) {
  char prog[] = "prog";
  char flag[] = "--threads";
  char value[] = "5";
  char other[] = "positional";
  char* argv[] = {prog, flag, value, other, nullptr};
  int argc = 4;
  EXPECT_EQ(apply_threads_flag(argc, argv), 5u);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "positional");
  set_default_threads(0);

  char eq_flag[] = "--threads=7";
  char* argv2[] = {prog, eq_flag, nullptr};
  int argc2 = 2;
  EXPECT_EQ(apply_threads_flag(argc2, argv2), 7u);
  EXPECT_EQ(argc2, 1);
  set_default_threads(0);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunkBoundariesCoverEveryIndexExactlyOnce) {
  // Counts chosen to hit the edges: fewer than threads, exactly one chunk,
  // a prime, and a large non-multiple of the chunk size.
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (std::size_t count : {1u, 2u, 7u, 97u, 1000u, 1023u}) {
      std::vector<std::atomic<int>> seen(count);
      pool.parallel_for(count, [&](std::size_t b, std::size_t e) {
        ASSERT_LE(b, e);
        ASSERT_LE(e, count);
        for (std::size_t i = b; i < e; ++i) seen[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(seen[i].load(), 1) << "index " << i << " threads " << threads
                                     << " count " << count;
      }
    }
  }
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(8);
  const auto out = parallel_map<std::size_t>(
      pool, 257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ExceptionPropagatesOutOfWorkers) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [&](std::size_t, std::size_t) {
                     throw std::runtime_error("worker boom");
                   }),
               std::runtime_error);
  // The pool must survive a failed job and run the next one normally.
  std::atomic<int> ran{0};
  pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
    ran += static_cast<int>(e - b);
  });
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ExceptionFromSingleIndexPropagates) {
  ThreadPool pool(8);
  try {
    pool.parallel_for(500, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (i == 313) throw std::out_of_range("index 313");
      }
    });
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "index 313");
  }
}

TEST(Seeding, Mix64IsTheSplitMix64Finalizer) {
  // Known-answer pins: the first outputs of splitmix64 seeded with 0.
  EXPECT_EQ(mix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(mix64(1), 0x910a2dec89025cc1ULL);
  // point_seed must separate all three arguments.
  EXPECT_NE(point_seed(0, 1, 2), point_seed(0, 2, 1));
  EXPECT_NE(point_seed(0, 1, 2), point_seed(1, 1, 2));
}

// The headline determinism property: sweeps over ≥ 20 seeded graphs are
// byte-identical at 1, 2, and 8 threads.
TEST(Determinism, SweepCertifiedIsBitIdenticalAcrossThreadCounts) {
  const std::vector<std::size_t> ns = {32, 48};
  const std::size_t seeds = 10;  // 2 × 10 = 20 graphs
  const auto measure = [](const graph::Graph& g) {
    // A value sensitive to the whole graph: edges plus a degree checksum.
    double acc = static_cast<double>(g.edge_count());
    for (graph::NodeId u = 0; u < g.node_count(); ++u) {
      acc += static_cast<double>(g.degree(u)) / (u + 1.0);
    }
    return acc;
  };
  const auto run = [&](std::size_t threads) {
    return sweep_certified(ns, seeds, measure,
                           SweepOptions{.base_seed = 42, .threads = threads});
  };
  const auto r1 = run(1);
  const auto r2 = run(2);
  const auto r8 = run(8);
  ASSERT_EQ(r1.size(), 20u);
  ASSERT_EQ(r2.size(), r1.size());
  ASSERT_EQ(r8.size(), r1.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].n, r2[i].n);
    EXPECT_EQ(r1[i].seed, r2[i].seed);
    // Bit-level comparison, not EXPECT_DOUBLE_EQ: the contract is identity.
    EXPECT_EQ(std::memcmp(&r1[i].value, &r2[i].value, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&r1[i].value, &r8[i].value, sizeof(double)), 0);
  }
}

TEST(Determinism, VerifySchemeIsBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    graph::Rng rng(seed);
    const graph::Graph g = graph::random_uniform(24, rng);
    const auto scheme = schemes::FullTableScheme::standard(g);
    const auto serial = model::verify_scheme_serial(g, scheme);
    for (std::size_t threads : {1u, 2u, 8u}) {
      const auto r = model::verify_scheme(g, scheme, 0, threads);
      EXPECT_EQ(r.all_delivered, serial.all_delivered);
      EXPECT_EQ(r.pairs_checked, serial.pairs_checked);
      EXPECT_EQ(r.pairs_failed, serial.pairs_failed);
      EXPECT_EQ(r.invalid_hops, serial.invalid_hops);
      EXPECT_EQ(r.total_route_edges, serial.total_route_edges);
      EXPECT_EQ(r.max_route_edges, serial.max_route_edges);
      EXPECT_EQ(std::memcmp(&r.max_stretch, &serial.max_stretch,
                            sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&r.mean_stretch, &serial.mean_stretch,
                            sizeof(double)), 0);
    }
  }
}

}  // namespace
}  // namespace optrt::core
