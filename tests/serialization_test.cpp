// Scheme-artifact tests: save/load round trips preserve routing behaviour
// and space accounting, byte/file transport, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/serialization.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

void expect_same_routing(const Graph& g, const model::RoutingScheme& a,
                         const model::RoutingScheme& b) {
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      if (u == v) continue;
      model::MessageHeader ha, hb;
      EXPECT_EQ(a.next_hop(u, a.label_of(v), ha),
                b.next_hop(u, b.label_of(v), hb));
    }
  }
}

TEST(Serialization, CompactDiam2RoundTrip) {
  const Graph g = certified(64, 701);
  const CompactDiam2Scheme original(g, {});
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kCompactDiam2);
  const CompactDiam2Scheme loaded = deserialize_compact_diam2(artifact, g);
  EXPECT_EQ(loaded.space().total_bits(), original.space().total_bits());
  expect_same_routing(g, original, loaded);
  EXPECT_TRUE(model::verify_scheme(g, loaded).ok());
}

TEST(Serialization, CompactDiam2RoundTripModelIB) {
  const Graph g = certified(48, 702);
  CompactDiam2Scheme::Options opt;
  opt.neighbors_known = false;
  const CompactDiam2Scheme original(g, opt);
  const CompactDiam2Scheme loaded =
      deserialize_compact_diam2(serialize(original), g);
  expect_same_routing(g, original, loaded);
}

TEST(Serialization, FullTableRoundTripWithAdversarialEnvironment) {
  const Graph g = certified(48, 703);
  Rng prng(704);
  std::vector<graph::NodeId> perm(48);
  for (graph::NodeId i = 0; i < 48; ++i) perm[i] = (i * 5 + 2) % 48;
  const FullTableScheme original(g, graph::PortAssignment::random(g, prng),
                                 graph::Labeling::permutation(perm),
                                 model::kIAbeta);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kFullTable);
  const FullTableScheme loaded = deserialize_full_table(artifact, g);
  EXPECT_EQ(loaded.routing_model(), model::kIAbeta);
  EXPECT_EQ(loaded.space().total_bits(), original.space().total_bits());
  expect_same_routing(g, original, loaded);
  EXPECT_TRUE(model::verify_scheme(g, loaded).ok());
}

TEST(Serialization, HubRoundTrip) {
  const Graph g = certified(64, 709);
  const HubScheme original(g);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kHub);
  const HubScheme loaded = deserialize_hub(artifact, g);
  EXPECT_EQ(loaded.hub(), original.hub());
  EXPECT_EQ(loaded.rank_width(), original.rank_width());
  EXPECT_EQ(loaded.space().total_bits(), original.space().total_bits());
  expect_same_routing(g, original, loaded);
  const auto result = model::verify_scheme(g, loaded);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 2.0);
}

TEST(Serialization, RoutingCenterRoundTrip) {
  const Graph g = certified(64, 710);
  const RoutingCenterScheme original(g);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kRoutingCenter);
  const RoutingCenterScheme loaded = deserialize_routing_center(artifact, g);
  EXPECT_EQ(loaded.centers(), original.centers());
  expect_same_routing(g, original, loaded);
  const auto result = model::verify_scheme(g, loaded);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 1.5);
}

TEST(Serialization, LandmarkRoundTrip) {
  const Graph g = certified(64, 712);
  const LandmarkScheme original(g);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kLandmark);
  const LandmarkScheme loaded = deserialize_landmark(artifact, g);
  EXPECT_EQ(loaded.landmarks(), original.landmarks());
  for (graph::NodeId v = 0; v < 64; ++v) {
    EXPECT_EQ(loaded.landmark_of(v), original.landmark_of(v));
  }
  expect_same_routing(g, original, loaded);
  const auto result = model::verify_scheme(g, loaded);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 3.0);
}

TEST(Serialization, LandmarkRoundTripOnSparseGraph) {
  const Graph g = graph::grid(6, 8);
  const LandmarkScheme original(g);
  const LandmarkScheme loaded = deserialize_landmark(serialize(original), g);
  expect_same_routing(g, original, loaded);
}

TEST(Serialization, HierarchicalRoundTrip) {
  const Graph g = graph::grid(8, 8);
  HierarchicalOptions opt;
  opt.levels = 3;
  const HierarchicalScheme original(g, opt);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kHierarchical);
  const HierarchicalScheme loaded = deserialize_hierarchical(artifact, g);
  EXPECT_EQ(loaded.levels(), original.levels());
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(loaded.pivots(i), original.pivots(i));
    for (graph::NodeId v = 0; v < 64; ++v) {
      EXPECT_EQ(loaded.pivot_of(i, v), original.pivot_of(i, v));
    }
  }
  EXPECT_TRUE(model::verify_scheme(g, loaded).ok());
  // Hierarchical routing is stateful (header waypoints), so compare
  // end-to-end routes rather than per-call hops.
  for (graph::NodeId u = 0; u < 64; u += 7) {
    for (graph::NodeId v = 0; v < 64; ++v) {
      if (u == v) continue;
      EXPECT_EQ(model::route_once(g, original, u, v, 0),
                model::route_once(g, loaded, u, v, 0));
    }
  }
}

TEST(Serialization, StretchLadderArtifactsAreDistinguishable) {
  const Graph g = certified(48, 711);
  EXPECT_EQ(peek_kind(serialize(CompactDiam2Scheme(g, {}))),
            SchemeKind::kCompactDiam2);
  EXPECT_EQ(peek_kind(serialize(RoutingCenterScheme(g))),
            SchemeKind::kRoutingCenter);
  EXPECT_EQ(peek_kind(serialize(HubScheme(g))), SchemeKind::kHub);
  // And cross-deserialization is rejected.
  EXPECT_THROW((void)deserialize_hub(serialize(RoutingCenterScheme(g)), g),
               std::invalid_argument);
  EXPECT_THROW(
      (void)deserialize_routing_center(serialize(HubScheme(g)), g),
      std::invalid_argument);
}

TEST(Serialization, KindMismatchRejected) {
  const Graph g = certified(32, 705);
  const auto compact_artifact = serialize(CompactDiam2Scheme(g, {}));
  EXPECT_THROW((void)deserialize_full_table(compact_artifact, g),
               std::invalid_argument);
  const auto table_artifact = serialize(FullTableScheme::standard(g));
  EXPECT_THROW((void)deserialize_compact_diam2(table_artifact, g),
               std::invalid_argument);
}

TEST(Serialization, WrongGraphRejected) {
  const Graph g = certified(32, 706);
  const Graph other = certified(48, 707);
  const auto artifact = serialize(CompactDiam2Scheme(g, {}));
  EXPECT_THROW((void)deserialize_compact_diam2(artifact, other),
               std::invalid_argument);
}

TEST(Serialization, BadMagicRejected) {
  bitio::BitVector junk(128);
  EXPECT_THROW((void)peek_kind(junk), std::invalid_argument);
}

TEST(Serialization, BytesRoundTrip) {
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    Rng rng(len + 1);
    bitio::BitVector bits;
    for (std::size_t i = 0; i < len; ++i) bits.push_back(rng() & 1u);
    EXPECT_EQ(from_bytes(to_bytes(bits)), bits) << "len=" << len;
  }
}

TEST(Serialization, BytesRejectTruncation) {
  bitio::BitVector bits(100);
  auto bytes = to_bytes(bits);
  bytes.pop_back();
  EXPECT_THROW((void)from_bytes(bytes), std::invalid_argument);
  EXPECT_THROW((void)from_bytes({1, 2, 3}), std::invalid_argument);
}

TEST(Serialization, FileRoundTrip) {
  const Graph g = certified(32, 708);
  const auto artifact = serialize(CompactDiam2Scheme(g, {}));
  const std::string path = "/tmp/optrt_serialization_test.ort";
  save_artifact(path, artifact);
  EXPECT_EQ(load_artifact(path), artifact);
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW((void)load_artifact("/nonexistent/definitely/missing.ort"),
               std::runtime_error);
}

}  // namespace
}  // namespace optrt::schemes
