// Scheme-artifact tests: save/load round trips preserve routing behaviour
// and space accounting, byte/file transport, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/serialization.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

void expect_same_routing(const Graph& g, const model::RoutingScheme& a,
                         const model::RoutingScheme& b) {
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      if (u == v) continue;
      model::MessageHeader ha, hb;
      EXPECT_EQ(a.next_hop(u, a.label_of(v), ha),
                b.next_hop(u, b.label_of(v), hb));
    }
  }
}

TEST(Serialization, CompactDiam2RoundTrip) {
  const Graph g = certified(64, 701);
  const CompactDiam2Scheme original(g, {});
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kCompactDiam2);
  const CompactDiam2Scheme loaded = deserialize_compact_diam2(artifact, g);
  EXPECT_EQ(loaded.space().total_bits(), original.space().total_bits());
  expect_same_routing(g, original, loaded);
  EXPECT_TRUE(model::verify_scheme(g, loaded).ok());
}

TEST(Serialization, CompactDiam2RoundTripModelIB) {
  const Graph g = certified(48, 702);
  CompactDiam2Scheme::Options opt;
  opt.neighbors_known = false;
  const CompactDiam2Scheme original(g, opt);
  const CompactDiam2Scheme loaded =
      deserialize_compact_diam2(serialize(original), g);
  expect_same_routing(g, original, loaded);
}

TEST(Serialization, FullTableRoundTripWithAdversarialEnvironment) {
  const Graph g = certified(48, 703);
  Rng prng(704);
  std::vector<graph::NodeId> perm(48);
  for (graph::NodeId i = 0; i < 48; ++i) perm[i] = (i * 5 + 2) % 48;
  const FullTableScheme original(g, graph::PortAssignment::random(g, prng),
                                 graph::Labeling::permutation(perm),
                                 model::kIAbeta);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kFullTable);
  const FullTableScheme loaded = deserialize_full_table(artifact, g);
  EXPECT_EQ(loaded.routing_model(), model::kIAbeta);
  EXPECT_EQ(loaded.space().total_bits(), original.space().total_bits());
  expect_same_routing(g, original, loaded);
  EXPECT_TRUE(model::verify_scheme(g, loaded).ok());
}

TEST(Serialization, HubRoundTrip) {
  const Graph g = certified(64, 709);
  const HubScheme original(g);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kHub);
  const HubScheme loaded = deserialize_hub(artifact, g);
  EXPECT_EQ(loaded.hub(), original.hub());
  EXPECT_EQ(loaded.rank_width(), original.rank_width());
  EXPECT_EQ(loaded.space().total_bits(), original.space().total_bits());
  expect_same_routing(g, original, loaded);
  const auto result = model::verify_scheme(g, loaded);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 2.0);
}

TEST(Serialization, RoutingCenterRoundTrip) {
  const Graph g = certified(64, 710);
  const RoutingCenterScheme original(g);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kRoutingCenter);
  const RoutingCenterScheme loaded = deserialize_routing_center(artifact, g);
  EXPECT_EQ(loaded.centers(), original.centers());
  expect_same_routing(g, original, loaded);
  const auto result = model::verify_scheme(g, loaded);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 1.5);
}

TEST(Serialization, LandmarkRoundTrip) {
  const Graph g = certified(64, 712);
  const LandmarkScheme original(g);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kLandmark);
  const LandmarkScheme loaded = deserialize_landmark(artifact, g);
  EXPECT_EQ(loaded.landmarks(), original.landmarks());
  for (graph::NodeId v = 0; v < 64; ++v) {
    EXPECT_EQ(loaded.landmark_of(v), original.landmark_of(v));
  }
  expect_same_routing(g, original, loaded);
  const auto result = model::verify_scheme(g, loaded);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 3.0);
}

TEST(Serialization, LandmarkRoundTripOnSparseGraph) {
  const Graph g = graph::grid(6, 8);
  const LandmarkScheme original(g);
  const LandmarkScheme loaded = deserialize_landmark(serialize(original), g);
  expect_same_routing(g, original, loaded);
}

TEST(Serialization, HierarchicalRoundTrip) {
  const Graph g = graph::grid(8, 8);
  HierarchicalOptions opt;
  opt.levels = 3;
  const HierarchicalScheme original(g, opt);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kHierarchical);
  const HierarchicalScheme loaded = deserialize_hierarchical(artifact, g);
  EXPECT_EQ(loaded.levels(), original.levels());
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(loaded.pivots(i), original.pivots(i));
    for (graph::NodeId v = 0; v < 64; ++v) {
      EXPECT_EQ(loaded.pivot_of(i, v), original.pivot_of(i, v));
    }
  }
  EXPECT_TRUE(model::verify_scheme(g, loaded).ok());
  // Hierarchical routing is stateful (header waypoints), so compare
  // end-to-end routes rather than per-call hops.
  for (graph::NodeId u = 0; u < 64; u += 7) {
    for (graph::NodeId v = 0; v < 64; ++v) {
      if (u == v) continue;
      EXPECT_EQ(model::route_once(g, original, u, v, 0),
                model::route_once(g, loaded, u, v, 0));
    }
  }
}

TEST(Serialization, StretchLadderArtifactsAreDistinguishable) {
  const Graph g = certified(48, 711);
  EXPECT_EQ(peek_kind(serialize(CompactDiam2Scheme(g, {}))),
            SchemeKind::kCompactDiam2);
  EXPECT_EQ(peek_kind(serialize(RoutingCenterScheme(g))),
            SchemeKind::kRoutingCenter);
  EXPECT_EQ(peek_kind(serialize(HubScheme(g))), SchemeKind::kHub);
  // And cross-deserialization is rejected.
  EXPECT_THROW((void)deserialize_hub(serialize(RoutingCenterScheme(g)), g),
               std::invalid_argument);
  EXPECT_THROW(
      (void)deserialize_routing_center(serialize(HubScheme(g)), g),
      std::invalid_argument);
}

TEST(Serialization, KindMismatchRejected) {
  const Graph g = certified(32, 705);
  const auto compact_artifact = serialize(CompactDiam2Scheme(g, {}));
  EXPECT_THROW((void)deserialize_full_table(compact_artifact, g),
               std::invalid_argument);
  const auto table_artifact = serialize(FullTableScheme::standard(g));
  EXPECT_THROW((void)deserialize_compact_diam2(table_artifact, g),
               std::invalid_argument);
}

TEST(Serialization, WrongGraphRejected) {
  const Graph g = certified(32, 706);
  const Graph other = certified(48, 707);
  const auto artifact = serialize(CompactDiam2Scheme(g, {}));
  EXPECT_THROW((void)deserialize_compact_diam2(artifact, other),
               std::invalid_argument);
}

TEST(Serialization, BadMagicRejected) {
  bitio::BitVector junk(128);
  EXPECT_THROW((void)peek_kind(junk), std::invalid_argument);
}

TEST(Serialization, BytesRoundTrip) {
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    Rng rng(len + 1);
    bitio::BitVector bits;
    for (std::size_t i = 0; i < len; ++i) bits.push_back(rng() & 1u);
    EXPECT_EQ(from_bytes(to_bytes(bits)), bits) << "len=" << len;
  }
}

TEST(Serialization, BytesRejectTruncation) {
  bitio::BitVector bits(100);
  auto bytes = to_bytes(bits);
  bytes.pop_back();
  EXPECT_THROW((void)from_bytes(bytes), std::invalid_argument);
  EXPECT_THROW((void)from_bytes({1, 2, 3}), std::invalid_argument);
}

TEST(Serialization, FileRoundTrip) {
  const Graph g = certified(32, 708);
  const auto artifact = serialize(CompactDiam2Scheme(g, {}));
  const std::string path = "/tmp/optrt_serialization_test.ort";
  save_artifact(path, artifact);
  EXPECT_EQ(load_artifact(path), artifact);
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW((void)load_artifact("/nonexistent/definitely/missing.ort"),
               std::runtime_error);
}

TEST(Serialization, SequentialSearchRoundTrip) {
  const Graph g = graph::grid(3, 3);
  const SequentialSearchScheme original(g);
  const bitio::BitVector artifact = serialize(original);
  EXPECT_EQ(peek_kind(artifact), SchemeKind::kSequentialSearch);
  EXPECT_EQ(artifact.size(), kFrameHeaderBits);  // empty payload
  const SequentialSearchScheme loaded =
      deserialize_sequential_search(artifact, g);
  EXPECT_EQ(loaded.space().total_bits(), 0u);
  expect_same_routing(g, original, loaded);
  // The frame still pins n: a different graph is rejected.
  EXPECT_THROW((void)deserialize_sequential_search(artifact, graph::grid(4, 4)),
               DecodeError);
}

TEST(Serialization, FrameOverheadIsConstant) {
  for (std::size_t n : {16u, 24u, 32u}) {
    const Graph g = certified(n, 700 + n);
    const auto artifact = serialize(HubScheme(g));
    const ArtifactInfo info = inspect(artifact);
    EXPECT_EQ(info.version, kFormatVersion);
    EXPECT_EQ(info.kind, SchemeKind::kHub);
    EXPECT_EQ(info.node_count, n);
    EXPECT_EQ(artifact.size(), kFrameHeaderBits + info.payload_bits);
    EXPECT_EQ(info.crc_stored, info.crc_computed);
  }
}

/// Flips bit `i` of a copy of `bits`.
bitio::BitVector with_flip(bitio::BitVector bits, std::size_t i) {
  bits.set(i, !bits.get(i));
  return bits;
}

DecodeErrorKind decode_kind_of(const bitio::BitVector& artifact,
                               const Graph& g) {
  try {
    (void)deserialize_any(artifact, g);
  } catch (const DecodeError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "artifact decoded successfully";
  return DecodeErrorKind::kTruncated;
}

TEST(Serialization, ErrorTaxonomy) {
  const Graph g = certified(16, 901);
  const auto artifact = serialize(HubScheme(g));

  // Truncated: cut mid-header and mid-payload.
  bitio::BitVector cut;
  for (std::size_t i = 0; i < 40; ++i) cut.push_back(artifact.get(i));
  EXPECT_EQ(decode_kind_of(cut, g), DecodeErrorKind::kTruncated);
  EXPECT_EQ(decode_kind_of(bitio::BitVector(8), g),
            DecodeErrorKind::kTruncated);

  // Bad magic: zero the whole magic field.
  bitio::BitVector zeroed = artifact;
  for (std::size_t i = 0; i < 32; ++i) zeroed.set(i, false);
  EXPECT_EQ(decode_kind_of(zeroed, g), DecodeErrorKind::kBadMagic);

  // Version mismatch: version 1 -> 3 (flip bit 1 of the version byte).
  EXPECT_EQ(decode_kind_of(with_flip(artifact, 33), g),
            DecodeErrorKind::kVersionMismatch);

  // Checksum mismatch: flip a payload bit.
  EXPECT_EQ(decode_kind_of(with_flip(artifact, kFrameHeaderBits), g),
            DecodeErrorKind::kChecksumMismatch);

  // Semantic: intact artifact, wrong graph.
  EXPECT_EQ(decode_kind_of(artifact, certified(24, 902)),
            DecodeErrorKind::kSemanticInvalid);

  // Trailing bits after the declared payload.
  bitio::BitVector extended = artifact;
  extended.push_back(true);
  EXPECT_EQ(decode_kind_of(extended, g), DecodeErrorKind::kSemanticInvalid);

  // DecodeError still is-a std::invalid_argument for legacy callers.
  EXPECT_THROW((void)deserialize_any(zeroed, g), std::invalid_argument);
}

TEST(Serialization, FromBytesEdgeCases) {
  // Empty input and short headers are truncation, not a crash.
  EXPECT_THROW((void)from_bytes(std::vector<std::uint8_t>{}), DecodeError);
  EXPECT_THROW((void)from_bytes({0, 0, 0}), DecodeError);
  try {
    (void)from_bytes(std::vector<std::uint8_t>(7, 0));
    FAIL();
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kTruncated);
  }

  // Header-only with a zero count is a valid empty bit string.
  EXPECT_TRUE(from_bytes(std::vector<std::uint8_t>(8, 0)).empty());

  // Payload short by exactly one bit: count=9 needs two payload bytes.
  std::vector<std::uint8_t> short_by_one(8, 0);
  short_by_one[0] = 9;
  short_by_one.push_back(0xFF);
  try {
    (void)from_bytes(short_by_one);
    FAIL();
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kTruncated);
  }

  // Trailing junk bytes after the declared payload are rejected.
  std::vector<std::uint8_t> trailing(8, 0);
  trailing[0] = 8;
  trailing.push_back(0xAB);
  EXPECT_EQ(from_bytes(trailing).size(), 8u);
  trailing.push_back(0xCD);
  try {
    (void)from_bytes(trailing);
    FAIL();
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kSemanticInvalid);
  }

  // Nonzero padding bits in the final partial byte are corruption.
  std::vector<std::uint8_t> padded(8, 0);
  padded[0] = 4;
  padded.push_back(0xF0);
  EXPECT_THROW((void)from_bytes(padded), DecodeError);

  // A hostile 64-bit count must not drive any allocation.
  std::vector<std::uint8_t> hostile(8, 0xFF);
  hostile.push_back(0x00);
  try {
    (void)from_bytes(hostile);
    FAIL();
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kTruncated);
  }
}

TEST(Serialization, SaveIsAtomic) {
  const Graph g = certified(16, 901);
  const auto a = serialize(CompactDiam2Scheme(g, {}));
  const auto b = serialize(HubScheme(g));
  const std::string path = "/tmp/optrt_atomic_test.ort";
  const std::string tmp = path + ".tmp";
  save_artifact(path, a);
  EXPECT_EQ(load_artifact(path), a);
  // No staging file survives a successful save.
  EXPECT_FALSE(static_cast<bool>(std::ifstream(tmp)));
  // Overwrite goes through the same staged rename.
  save_artifact(path, b);
  EXPECT_EQ(load_artifact(path), b);
  EXPECT_FALSE(static_cast<bool>(std::ifstream(tmp)));
  std::remove(path.c_str());
  // An unwritable destination throws and leaves no artifact behind.
  EXPECT_THROW(save_artifact("/nonexistent/dir/x.ort", a),
               std::runtime_error);
}

bitio::BitVector artifact_from_hex(const std::string& hex) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    bytes.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return from_bytes(bytes);
}

// --- Pinned v0 (legacy, pre-framing) artifacts ------------------------------
// Generated by tools/gen_v0_fixtures.cpp against the last pre-framing tree.
// These bytes must keep decoding forever: they are the deployed format.

TEST(Serialization, LegacyV0CompactDiam2StillLoads) {
  const Graph g = certified(16, 901);
  const auto artifact = artifact_from_hex(
      "93020000000000004f52543131f1fc4110356be1b1b16953171d1b9bdad4f983046ad63c02c08b316f00"
      "28414d2230348f003c9bcc1255943ecb8016c8bc024c8cb65801082282994f24607d"
      "2e5400414865f64055a5b309e04303");
  const ArtifactInfo info = inspect(artifact);
  EXPECT_EQ(info.version, 0);
  EXPECT_EQ(info.kind, SchemeKind::kCompactDiam2);
  EXPECT_EQ(info.node_count, 16u);
  const CompactDiam2Scheme loaded = deserialize_compact_diam2(artifact, g);
  expect_same_routing(g, CompactDiam2Scheme(g, {}), loaded);
  EXPECT_TRUE(model::verify_scheme(g, loaded).ok());
}

TEST(Serialization, LegacyV0HubStillLoads) {
  const Graph g = certified(16, 901);
  const auto artifact = artifact_from_hex(
      "bb000000000000004f52543165a2367f1044cd6aa1050da0016db4d0440b2d00");
  EXPECT_EQ(inspect(artifact).version, 0);
  const HubScheme loaded = deserialize_hub(artifact, g);
  expect_same_routing(g, HubScheme(g), loaded);
}

TEST(Serialization, LegacyV0RoutingCenterStillLoads) {
  const Graph g = certified(16, 901);
  const auto artifact = artifact_from_hex(
      "3d010000000000004f525431756285299b3f08a26655ab367f9040cdaa336f0028414d223054a15a855a"
      "d56ad5a95501");
  EXPECT_EQ(inspect(artifact).version, 0);
  const RoutingCenterScheme loaded = deserialize_routing_center(artifact, g);
  expect_same_routing(g, RoutingCenterScheme(g), loaded);
}

TEST(Serialization, LegacyV0FullTableStillLoads) {
  const Graph g = graph::grid(3, 3);
  const auto artifact = artifact_from_hex(
      "a6010000000000004f52543139042143658719534028a30a90d598ba22843957c830eb18423219c2b021"
      "909301ca9a0c84ed64a02887004f0680700818");
  EXPECT_EQ(inspect(artifact).version, 0);
  const FullTableScheme loaded = deserialize_full_table(artifact, g);
  expect_same_routing(g, FullTableScheme::standard(g), loaded);
}

TEST(Serialization, LegacyV0LandmarkStillLoads) {
  const Graph g = graph::grid(3, 3);
  const auto artifact = artifact_from_hex(
      "7c010000000000004f5254316da8d4e12448980b6704480339a902c2c215010165ce750708a625c90202"
      "61a22659c058122c2018086b4000");
  EXPECT_EQ(inspect(artifact).version, 0);
  const LandmarkScheme loaded = deserialize_landmark(artifact, g);
  expect_same_routing(g, LandmarkScheme(g), loaded);
}

TEST(Serialization, LegacyV0HierarchicalStillLoads) {
  const Graph g = graph::grid(4, 4);
  const auto artifact = artifact_from_hex(
      "a1040000000000004f5254317d6256c2fda57a2050d8f26c62082099104a16c4e6b3d64060423021369f"
      "35070381302e64fb36380808082a16d4e6b389a1808062c2e456bdd7e687038201a5"
      "72c2e856afb50604038a05b37aadd009990dabf3d9fc704040281830aa55efb58921"
      "01c180c9ac3abed70607050382e180d1bc166904b274df5a03044462c171bd363828"
      "2018108a45e7b5482390a5f300");
  EXPECT_EQ(inspect(artifact).version, 0);
  HierarchicalOptions opt;
  opt.levels = 2;
  const HierarchicalScheme loaded = deserialize_hierarchical(artifact, g);
  EXPECT_EQ(loaded.levels(), 2u);
  EXPECT_TRUE(model::verify_scheme(g, loaded).ok());
}

// --- Pinned v1 (framed) golden artifacts ------------------------------------
// The framed container is pinned byte-for-byte: serializing today's schemes
// must reproduce these exact transport bytes, and the bytes must keep
// decoding. Any change here is a wire-format break and needs a version bump.

std::string hex_of(const bitio::BitVector& artifact) {
  static const char digits[] = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : to_bytes(artifact)) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 15]);
  }
  return out;
}

void expect_golden(const bitio::BitVector& artifact, const std::string& hex,
                   SchemeKind kind, std::uint64_t n, const Graph& g) {
  EXPECT_EQ(hex_of(artifact), hex) << to_string(kind);
  const auto pinned = artifact_from_hex(hex);
  const ArtifactInfo info = inspect(pinned);
  EXPECT_EQ(info.version, kFormatVersion);
  EXPECT_EQ(info.kind, kind);
  EXPECT_EQ(info.node_count, n);
  EXPECT_EQ(info.crc_stored, info.crc_computed);
  ASSERT_NE(deserialize_any(pinned, g), nullptr);
}

TEST(Serialization, GoldenV1ArtifactsArePinnedByteForByte) {
  const Graph dense = certified(16, 901);
  expect_golden(
      serialize(CompactDiam2Scheme(dense, {})),
      "16030000000000004f525432010110000000660200000000000025cb75b4e70f82a8"
      "590b8f8d4d9bbae8d8d8d4a6ce1f2450b3e611005e8c790340096a1281a17904e0d9"
      "6496a8a2f45906b440e6156062b4c50a401011cc7c2201eb73a10208422ab307aa2a"
      "9d4d001f1a",
      SchemeKind::kCompactDiam2, 16, dense);
  expect_golden(
      serialize(HubScheme(dense)),
      "3d010000000000004f5254320103100000008d000000000000005cde4bbbdafc4110"
      "35ab8516348006b4d142132db400",
      SchemeKind::kHub, 16, dense);
  expect_golden(
      serialize(RoutingCenterScheme(dense)),
      "bf010000000000004f5254320104100000000f01000000000000b5536b9e15a66cfe"
      "20889a55addafc410235abcebc01a0043589c050856a156a55ab55a75605",
      SchemeKind::kRoutingCenter, 16, dense);

  const Graph g33 = graph::grid(3, 3);
  expect_golden(
      serialize(FullTableScheme::standard(g33)),
      "2a020000000000004f5254320102090000007a0100000000000"
      "06fb6cd23103254769831058432aa00598da92b429873850cb38e212493210c1b02"
      "3919a0acc940d84e068a7208f0640008878001",
      SchemeKind::kFullTable, 9, g33);
  expect_golden(
      serialize(LandmarkScheme(g33)),
      "ff010000000000004f5254320105090000004f0100000000000033f7652da50e2741"
      "c25c3823401ac849151016ae08082873ae3b40302d491610081335c902c6926001c1"
      "40580302",
      SchemeKind::kLandmark, 9, g33);
  expect_golden(
      serialize(SequentialSearchScheme(g33)),
      "b0000000000000004f525432010709000000000000000000000069df2265",
      SchemeKind::kSequentialSearch, 9, g33);
  expect_golden(
      serialize(TzScheme(g33)),
      "7b010000000000004f525432010809000000cb00000000000000e992ccca0d62e886088c030a4300c681827188611c2a1882300e000c4100",
      SchemeKind::kThorupZwick, 9, g33);

  const Graph g44 = graph::grid(4, 4);
  HierarchicalOptions opt;
  opt.levels = 2;
  expect_golden(
      serialize(HierarchicalScheme(g44, opt)),
      "23050000000000004f52543201061000000073040000000000004a1b4c2b5909f797"
      "ea814061cbb389218064422859109bcf5a038109c184d87cd61c0c04c2b890eddbe0"
      "202020a858509bcf268602028a09935bf55e9b1f0e080694ca09a35bbdd61a100c28"
      "16cceab542276436acce67f3c30101a160c0a856bdd7268604040326b3eaf85e1b1c"
      "140c08860346f35aa411c8d27d6b0d10108905c7f5dae0a080604028169dd7228d40"
      "96ce03",
      SchemeKind::kHierarchical, 16, g44);
}

}  // namespace
}  // namespace optrt::schemes
