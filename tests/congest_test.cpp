// The CONGEST construction differential: tables assembled in-network by
// net/construction.cpp must match the centralized builders exactly —
// bit-identical serialized tables for the compact and full-table
// protocols, bit-identical TzScheme state (landmark set, per-node bits,
// nearest landmarks, label exit ports) plus identical FNV route
// fingerprints over the full pair space for TZ — across TopologyFamily
// specs and at 1/2/8 engine threads. The property half pins the runtime's
// round/message/bit accounting to the closed forms documented in
// net/construction.hpp, predicted independently from the distance matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bitio/codes.hpp"
#include "core/optrt.hpp"
#include "net/congest.hpp"
#include "net/construction.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;
using graph::TopologyFamily;

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// FNV over every ordered pair's full hop sequence. (Named distinctly from
/// model::route_fingerprint, which ADL would otherwise find via the scheme's
/// base class and make the call ambiguous.)
std::uint64_t pairwise_route_fingerprint(const graph::Graph& g,
                                         const model::RoutingScheme& scheme) {
  const std::size_t n = g.node_count();
  std::uint64_t outer = kFnvBasis;
  for (NodeId u = 0; u < n; ++u) {
    std::uint64_t h = kFnvBasis;
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      model::MessageHeader header;
      NodeId at = u;
      for (std::size_t hops = 0; at != v && hops <= n; ++hops) {
        at = scheme.next_hop(at, scheme.label_of(v), header);
        h = fnv1a(h, at);
      }
    }
    outer = fnv1a(outer, h);
  }
  return outer;
}

/// First seed ≥ base whose family member is connected (deterministic).
Graph connected_member(const TopologyFamily& family, std::size_t n,
                       std::uint64_t base) {
  for (std::uint64_t seed = base;; ++seed) {
    Graph g = family.make(n, seed);
    if (graph::is_connected(g)) return g;
  }
}

const net::congest::PhaseStats& row(
    const std::vector<net::congest::PhaseStats>& rows,
    const std::string& label) {
  for (const auto& r : rows) {
    if (r.label == label) return r;
  }
  ADD_FAILURE() << "no phase row labelled " << label;
  static const net::congest::PhaseStats empty;
  return empty;
}

// --- Compact: bit-identical on dense (diameter ≤ 2) families --------------

TEST(CongestDifferential, CompactBitIdenticalAcrossFamilies) {
  const std::size_t n = 48;
  const std::vector<TopologyFamily> families = {
      TopologyFamily::uniform(), TopologyFamily::gnp(0.5),
      TopologyFamily::gnp(0.7), TopologyFamily::gnp(0.9)};
  for (const auto& family : families) {
    SCOPED_TRACE(family.name());
    const Graph g = family.make(n, 404);
    const auto built = net::distributed_compact_construction(g);
    ASSERT_EQ(built.status, net::ConstructStatus::kOk);
    EXPECT_EQ(built.rounds, 1u);
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_EQ(built.node_tables[u], schemes::build_compact_node(g, u, {}).bits)
          << "node " << u;
    }
    const schemes::CompactDiam2Scheme scheme(
        g, {}, std::vector<bitio::BitVector>(built.node_tables));
    const auto verdict = model::verify_scheme(g, scheme);
    EXPECT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.max_stretch, 1.0);
  }
}

// --- Full table: bit-identical on sparse families -------------------------

TEST(CongestDifferential, FullTableBitIdenticalAcrossFamilies) {
  const std::size_t n = 40;
  const std::vector<TopologyFamily> families = {
      TopologyFamily::grid(), TopologyFamily::ring(),
      TopologyFamily::power_law(2), TopologyFamily::config_model(2.1, 2)};
  for (const auto& family : families) {
    SCOPED_TRACE(family.name());
    const Graph g = connected_member(family, n, 405);
    const auto built = net::distributed_full_table_construction(g);
    ASSERT_EQ(built.status, net::ConstructStatus::kOk);
    const auto central = schemes::FullTableScheme::standard(g);
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_EQ(built.node_tables[u], central.function_bits(u)) << "node " << u;
    }
    const schemes::FullTableScheme scheme(
        g, graph::PortAssignment::sorted(g), graph::Labeling::identity(n),
        model::kIAalpha, std::vector<bitio::BitVector>(built.node_tables));
    const auto verdict = model::verify_scheme(g, scheme);
    EXPECT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.max_stretch, 1.0);
  }
}

// --- TZ: scheme-equivalent with identical route fingerprints --------------

TEST(CongestDifferential, TzMatchesCentralizedAcrossFamilies) {
  const std::size_t n = 48;
  const std::vector<TopologyFamily> families = {
      TopologyFamily::power_law(2), TopologyFamily::config_model(2.1, 2),
      TopologyFamily::grid(), TopologyFamily::ring()};
  for (const auto& family : families) {
    SCOPED_TRACE(family.name());
    const Graph g = connected_member(family, n, 406);
    schemes::TzOptions opt;
    opt.seed = 17;
    const auto built = net::distributed_tz_construction(g, opt);
    ASSERT_EQ(built.status, net::ConstructStatus::kOk) << built.detail;
    ASSERT_NE(built.scheme, nullptr);

    const schemes::TzScheme central(g, opt);
    ASSERT_EQ(built.scheme->landmarks(), central.landmarks());
    EXPECT_EQ(built.landmark_count, central.landmarks().size());
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_EQ(built.scheme->function_bits(u), central.function_bits(u))
          << "node " << u;
      EXPECT_EQ(built.landmark_of[u], central.landmark_of(u)) << "node " << u;
    }

    // Exit ports learned at landmarks from the registration flood equal
    // the centralized choice: port toward the least shortest-path
    // successor of l(v) toward v.
    const auto dist_cached = graph::DistanceCache::global().get(g);
    const auto ports = graph::PortAssignment::sorted(g);
    for (NodeId v = 0; v < n; ++v) {
      const NodeId l = central.landmark_of(v);
      if (l == v) {
        EXPECT_EQ(built.exit_ports[v], 0u);
        continue;
      }
      const auto succ = graph::shortest_path_successors(g, *dist_cached, l, v);
      EXPECT_EQ(built.exit_ports[v], ports.port_of(l, succ.front()))
          << "dest " << v;
    }

    EXPECT_EQ(pairwise_route_fingerprint(g, *built.scheme),
              pairwise_route_fingerprint(g, central));
    EXPECT_TRUE(model::verify_scheme_stretch(g, *built.scheme, 3.0).ok());
  }
}

// --- Thread-count invariance ----------------------------------------------

TEST(CongestDifferential, BitIdenticalAtOneTwoEightThreads) {
  const std::size_t n = 48;
  const Graph dense = TopologyFamily::uniform().make(n, 404);
  const Graph sparse = connected_member(TopologyFamily::power_law(2), n, 406);

  const auto compact1 =
      net::distributed_compact_construction(dense, {}, {.threads = 1});
  const auto full1 = net::distributed_full_table_construction(sparse,
                                                              {.threads = 1});
  schemes::TzOptions tz_opt;
  tz_opt.seed = 17;
  const auto tz1 =
      net::distributed_tz_construction(sparse, tz_opt, {.threads = 1});
  ASSERT_EQ(tz1.status, net::ConstructStatus::kOk);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    const auto compact =
        net::distributed_compact_construction(dense, {}, {.threads = threads});
    EXPECT_EQ(compact.node_tables, compact1.node_tables);
    EXPECT_EQ(compact.messages, compact1.messages);
    EXPECT_EQ(compact.message_bits, compact1.message_bits);

    const auto full =
        net::distributed_full_table_construction(sparse, {.threads = threads});
    EXPECT_EQ(full.node_tables, full1.node_tables);
    EXPECT_EQ(full.messages, full1.messages);
    EXPECT_EQ(full.message_bits, full1.message_bits);

    const auto tz =
        net::distributed_tz_construction(sparse, tz_opt, {.threads = threads});
    ASSERT_EQ(tz.status, net::ConstructStatus::kOk);
    ASSERT_EQ(tz.scheme->landmarks(), tz1.scheme->landmarks());
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_EQ(tz.scheme->function_bits(u), tz1.scheme->function_bits(u));
    }
    EXPECT_EQ(tz.rounds, tz1.rounds);
    EXPECT_EQ(tz.messages, tz1.messages);
    EXPECT_EQ(tz.message_bits, tz1.message_bits);
    EXPECT_EQ(tz.accepted_attempt, tz1.accepted_attempt);
  }
}

// --- Engine behaviour ------------------------------------------------------

TEST(CongestEngine, ExhaustedRoundBudgetIsATypedFailureNotAHang) {
  const Graph g = connected_member(TopologyFamily::grid(), 36, 1);
  const auto built = net::distributed_full_table_construction(g,
                                                              {.max_rounds = 2});
  EXPECT_EQ(built.status, net::ConstructStatus::kStalled);
  EXPECT_EQ(built.detail, "round-limit");
  EXPECT_TRUE(built.node_tables.empty());
}

TEST(CongestEngine, DisconnectedTzStillThrowsLikeTheCentralizedBuilder) {
  EXPECT_THROW((void)net::distributed_tz_construction(graph::Graph(8)),
               schemes::SchemeInapplicable);
}

// --- Property: accounting matches the documented closed forms -------------

TEST(CongestProperty, CompactTrafficClosedForms) {
  for (const std::uint64_t seed : {404u, 405u}) {
    const Graph g = TopologyFamily::uniform().make(48, seed);
    const auto built = net::distributed_compact_construction(g);
    const unsigned id_width = bitio::ceil_log2(g.node_count());
    std::uint64_t bits = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      bits += static_cast<std::uint64_t>(g.degree(v)) * g.degree(v) * id_width;
    }
    EXPECT_EQ(built.rounds, 1u);
    EXPECT_EQ(built.messages, 2 * g.edge_count());
    EXPECT_EQ(built.message_bits, bits);
  }
}

TEST(CongestProperty, TzPhaseRoundsAndTrafficMatchDistancePredictions) {
  const std::size_t n = 48;
  for (const auto& family :
       {TopologyFamily::power_law(2), TopologyFamily::grid()}) {
    SCOPED_TRACE(family.name());
    const Graph g = connected_member(family, n, 406);
    schemes::TzOptions opt;
    opt.seed = 17;
    const auto built = net::distributed_tz_construction(g, opt);
    ASSERT_EQ(built.status, net::ConstructStatus::kOk) << built.detail;
    ASSERT_EQ(built.accepted_attempt, 0u)
        << "pick another seed: the closed forms below assume one attempt";

    const auto dist_cached = graph::DistanceCache::global().get(g);
    const auto& dist = *dist_cached;
    const unsigned I = bitio::ceil_log2(n);
    const unsigned W = bitio::ceil_log2_plus1(n);
    const std::size_t m2 = 2 * g.edge_count();
    const auto& landmarks = built.scheme->landmarks();

    // d(v, A), nearest landmark, eccentricities.
    std::vector<std::uint32_t> dva(n, graph::kUnreachable);
    std::vector<NodeId> l_of(n, landmarks.front());
    for (NodeId v = 0; v < n; ++v) {
      for (const NodeId l : landmarks) {
        if (dist.at(v, l) < dva[v]) {
          dva[v] = dist.at(v, l);
          l_of[v] = l;
        }
      }
    }
    std::size_t ecc0 = 0, max_ecc = 0, handoff = 0;
    for (NodeId v = 0; v < n; ++v) {
      ecc0 = std::max<std::size_t>(ecc0, dist.at(0, v));
      handoff = std::max<std::size_t>(handoff, dva[v]);
      for (const NodeId l : landmarks) {
        max_ecc = std::max<std::size_t>(max_ecc, dist.at(l, v));
      }
    }

    // Rounds per phase: the forms from construction.hpp.
    EXPECT_EQ(built.tree_rounds, 3 * ecc0 + 2);
    EXPECT_EQ(built.flood_rounds, max_ecc + 1);
    EXPECT_EQ(built.announce_rounds, handoff);
    EXPECT_EQ(built.register_rounds, handoff);
    EXPECT_EQ(built.audit_rounds, 1u);
    // The issue's coarse bound: construction after the election fits in
    // max landmark eccentricity + handoff radius (+1 drain, +1 audit).
    EXPECT_LE(built.flood_rounds + built.announce_rounds +
                  built.register_rounds + built.audit_rounds,
              max_ecc + 2 * handoff + 2);

    // Traffic per phase.
    const auto& tree = row(built.phase_stats, "tz.tree");
    EXPECT_EQ(tree.messages, m2);
    EXPECT_EQ(tree.message_bits, std::uint64_t{m2} * W);
    const auto& claim = row(built.phase_stats, "tz.tree.claim");
    EXPECT_EQ(claim.messages, n - 1);
    EXPECT_EQ(claim.message_bits, 0u);
    const auto& sum = row(built.phase_stats, "tz.tree.sum");
    EXPECT_EQ(sum.messages, 2 * (n - 1));
    EXPECT_EQ(sum.message_bits, std::uint64_t{4} * (n - 1) * W);

    const auto& flood = row(built.phase_stats, "tz.flood a0");
    EXPECT_EQ(flood.messages, landmarks.size() * m2);
    EXPECT_EQ(flood.message_bits, std::uint64_t{landmarks.size()} * m2 * I);

    std::size_t announce_msgs = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dva[v] == 0) continue;
      for (NodeId x = 0; x < n; ++x) {
        if (dist.at(x, v) < dva[v]) announce_msgs += g.degree(x);
      }
    }
    const auto& announce = row(built.phase_stats, "tz.announce a0");
    EXPECT_EQ(announce.messages, announce_msgs);
    EXPECT_EQ(announce.message_bits, std::uint64_t{announce_msgs} * (I + W));

    // Registration: each v's packet crosses every edge of the shortest
    // path DAG between v and l(v).
    std::size_t reg_msgs = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dva[v] == 0) continue;
      const NodeId l = l_of[v];
      for (NodeId x = 0; x < n; ++x) {
        if (x == l || dist.at(v, x) + dist.at(x, l) != dist.at(v, l)) continue;
        for (const NodeId p : g.neighbors(x)) {
          if (dist.at(p, l) + 1 == dist.at(x, l)) ++reg_msgs;
        }
      }
    }
    const auto& reg = row(built.phase_stats, "tz.register");
    EXPECT_EQ(reg.messages, reg_msgs);
    EXPECT_EQ(reg.message_bits, std::uint64_t{reg_msgs} * 2 * I);

    std::uint64_t audit_bits = 0;
    for (NodeId u = 0; u < n; ++u) {
      std::size_t cluster = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (v != u && dist.at(u, v) < dva[v]) ++cluster;
      }
      const std::size_t entries = cluster + (dva[u] >= 1 ? 1 : 0);
      audit_bits += std::uint64_t{g.degree(u)} *
                    (2 * W + landmarks.size() * (I + W) + entries * (I + 2 * W));
    }
    const auto& audit = row(built.phase_stats, "tz.audit");
    EXPECT_EQ(audit.messages, m2);
    EXPECT_EQ(audit.message_bits, audit_bits);
  }
}

TEST(CongestProperty, FullTableTrafficClosedForms) {
  const std::size_t n = 40;
  const Graph g = connected_member(TopologyFamily::grid(), n, 1);
  const auto built = net::distributed_full_table_construction(g);
  ASSERT_EQ(built.status, net::ConstructStatus::kOk);

  const auto dist_cached = graph::DistanceCache::global().get(g);
  const unsigned I = bitio::ceil_log2(n);
  const unsigned W = bitio::ceil_log2_plus1(n);
  const std::size_t m2 = 2 * g.edge_count();

  EXPECT_EQ(built.rounds, dist_cached->diameter() + 2);  // flood+drain, audit
  const auto& flood = row(built.phase_stats, "full.flood");
  EXPECT_EQ(flood.rounds, dist_cached->diameter() + 1);
  EXPECT_EQ(flood.messages, n * m2);
  EXPECT_EQ(flood.message_bits, std::uint64_t{n} * m2 * I);
  const auto& audit = row(built.phase_stats, "full.audit");
  EXPECT_EQ(audit.rounds, 1u);
  EXPECT_EQ(audit.messages, m2);
  std::uint64_t audit_bits = 0;
  for (NodeId u = 0; u < n; ++u) {
    audit_bits += std::uint64_t{g.degree(u)} * (W + n * (I + W));
  }
  EXPECT_EQ(audit.message_bits, audit_bits);
}

}  // namespace
}  // namespace optrt
