// Corruption-chaos harness: thousands of seeded corruptions per scheme
// kind, each of which must either round-trip bit-exactly or be rejected
// with a typed DecodeError — never crash, never hang, never allocate
// past the input, never hand a damaged scheme to the router.
#include <gtest/gtest.h>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "net/chaos.hpp"
#include "obs/metrics.hpp"
#include "schemes/serialization.hpp"

namespace optrt {
namespace {

using graph::Graph;

constexpr std::size_t kRoundsPerKind = 2048;

Graph certified(std::size_t n, std::uint64_t seed) {
  graph::Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

/// One artifact under chaos: every seeded corruption either decodes to
/// exactly the original bits (the corruption was a no-op draw, e.g. a
/// splice that rewrote bits to their old values) or throws DecodeError.
/// Anything else — a different exception, a crash, a decode of damaged
/// bits — fails the test.
void run_chaos(const bitio::BitVector& artifact, const Graph& g,
               std::uint64_t base_seed) {
  ASSERT_NO_THROW((void)schemes::deserialize_any(artifact, g));
  std::size_t rejected = 0;
  for (std::uint64_t i = 0; i < kRoundsPerKind; ++i) {
    const std::uint64_t seed = core::point_seed(base_seed, 0xC0DE, i);
    net::CorruptionReport report;
    const bitio::BitVector bad = net::corrupt(artifact, seed, &report);
    try {
      const auto scheme = schemes::deserialize_any(bad, g);
      ASSERT_NE(scheme, nullptr);
      EXPECT_EQ(bad, artifact)
          << "decoded corrupted bits: " << net::to_string(report.kind)
          << " seed=" << seed << " begin=" << report.begin
          << " count=" << report.count;
    } catch (const schemes::DecodeError&) {
      ++rejected;
    }
  }
  // The menu is dominated by damaging draws; if almost nothing was
  // rejected the harness is corrupting air.
  EXPECT_GT(rejected, kRoundsPerKind / 2);
}

/// Flipping any single payload bit must be caught by the CRC — as a
/// checksum mismatch specifically, before any semantic validation runs.
void run_crc_sweep(const bitio::BitVector& artifact, const Graph& g) {
  const schemes::ArtifactInfo info = schemes::inspect(artifact);
  ASSERT_EQ(artifact.size(), schemes::kFrameHeaderBits + info.payload_bits);
  for (std::size_t i = 0; i < info.payload_bits; ++i) {
    const auto bad =
        net::flip_bit(artifact, schemes::kFrameHeaderBits + i);
    try {
      (void)schemes::deserialize_any(bad, g);
      FAIL() << "payload flip at bit " << i << " decoded";
    } catch (const schemes::DecodeError& e) {
      ASSERT_EQ(e.kind(), schemes::DecodeErrorKind::kChecksumMismatch)
          << "payload flip at bit " << i << " raised " << e.what();
    }
  }
  // Header flips must be rejected too (by magic/version/kind/n/length/CRC
  // field checks — the taxonomy kind depends on which field is hit).
  for (std::size_t i = 0; i < schemes::kFrameHeaderBits; ++i) {
    EXPECT_THROW((void)schemes::deserialize_any(net::flip_bit(artifact, i), g),
                 schemes::DecodeError)
        << "header flip at bit " << i;
  }
}

TEST(Chaos, CorruptionIsDeterministic) {
  const Graph g = certified(16, 901);
  const auto artifact = schemes::serialize(schemes::HubScheme(g));
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    net::CorruptionReport a, b;
    EXPECT_EQ(net::corrupt(artifact, seed, &a), net::corrupt(artifact, seed, &b));
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.begin, b.begin);
    EXPECT_EQ(a.count, b.count);
  }
}

TEST(Chaos, EveryCorruptionClassIsExercised) {
  const Graph g = certified(16, 901);
  const auto artifact = schemes::serialize(schemes::HubScheme(g));
  std::vector<std::size_t> hits(net::kCorruptionKindCount, 0);
  for (std::uint64_t seed = 0; seed < 256; ++seed) {
    net::CorruptionReport report;
    (void)net::corrupt(artifact, seed, &report);
    ++hits[static_cast<std::size_t>(report.kind)];
  }
  for (std::size_t k = 0; k < net::kCorruptionKindCount; ++k) {
    EXPECT_GT(hits[k], 0u) << net::to_string(
        static_cast<net::CorruptionKind>(k));
  }
}

TEST(Chaos, CompactDiam2) {
  const Graph g = certified(16, 901);
  const auto artifact = schemes::serialize(schemes::CompactDiam2Scheme(g, {}));
  run_chaos(artifact, g, 1);
  run_crc_sweep(artifact, g);
}

TEST(Chaos, FullTable) {
  const Graph g = graph::grid(3, 3);
  const auto artifact = schemes::serialize(schemes::FullTableScheme::standard(g));
  run_chaos(artifact, g, 2);
  run_crc_sweep(artifact, g);
}

TEST(Chaos, Hub) {
  const Graph g = certified(16, 901);
  const auto artifact = schemes::serialize(schemes::HubScheme(g));
  run_chaos(artifact, g, 3);
  run_crc_sweep(artifact, g);
}

TEST(Chaos, RoutingCenter) {
  const Graph g = certified(16, 901);
  const auto artifact = schemes::serialize(schemes::RoutingCenterScheme(g));
  run_chaos(artifact, g, 4);
  run_crc_sweep(artifact, g);
}

TEST(Chaos, Landmark) {
  const Graph g = graph::grid(3, 3);
  const auto artifact = schemes::serialize(schemes::LandmarkScheme(g));
  run_chaos(artifact, g, 5);
  run_crc_sweep(artifact, g);
}

TEST(Chaos, Hierarchical) {
  const Graph g = graph::grid(4, 4);
  schemes::HierarchicalOptions opt;
  opt.levels = 2;
  const auto artifact = schemes::serialize(schemes::HierarchicalScheme(g, opt));
  run_chaos(artifact, g, 6);
  run_crc_sweep(artifact, g);
}

TEST(Chaos, ThorupZwick) {
  const Graph g = graph::grid(3, 3);
  const auto artifact = schemes::serialize(schemes::TzScheme(g));
  run_chaos(artifact, g, 8);
  run_crc_sweep(artifact, g);
}

TEST(Chaos, SequentialSearch) {
  const Graph g = graph::grid(3, 3);
  const auto artifact =
      schemes::serialize(schemes::SequentialSearchScheme(g));
  run_chaos(artifact, g, 7);
  run_crc_sweep(artifact, g);  // empty payload: header flips only
}

TEST(Chaos, LegacyArtifactsAreChaosSafeToo) {
  // v0 artifacts have no checksum, so corrupted ones may decode (the CRC
  // sweep does not apply) — but decoding must still never crash, and any
  // scheme it yields must have survived full semantic validation.
  const Graph g = certified(16, 901);
  const auto v1 = schemes::serialize(schemes::HubScheme(g));
  const schemes::ArtifactInfo info = schemes::inspect(v1);
  // Rebuild the equivalent v0 bits: ORT1 magic + prime(kind) + prime(n) +
  // the same payload.
  bitio::BitWriter w;
  w.write_bits(schemes::kLegacyMagic, 32);
  bitio::write_prime(w, static_cast<std::uint64_t>(info.kind));
  bitio::write_prime(w, info.node_count);
  for (std::size_t i = schemes::kFrameHeaderBits; i < v1.size(); ++i) {
    w.write_bit(v1.get(i));
  }
  const bitio::BitVector v0 = w.take();
  ASSERT_NO_THROW((void)schemes::deserialize_any(v0, g));
  std::size_t decoded = 0;
  for (std::uint64_t i = 0; i < kRoundsPerKind; ++i) {
    const std::uint64_t seed = core::point_seed(77, 0xDEAD, i);
    const bitio::BitVector bad = net::corrupt(v0, seed, nullptr);
    try {
      const auto scheme = schemes::deserialize_any(bad, g);
      ASSERT_NE(scheme, nullptr);
      ++decoded;
      // A checksum-less decode can yield a *different* valid scheme (the
      // motivation for the v1 CRC) — it may route suboptimally, but its
      // query path must be exercisable without crashing.
      (void)model::verify_scheme(g, *scheme);
    } catch (const schemes::DecodeError&) {
    }
  }
  EXPECT_LT(decoded, kRoundsPerKind);
}

TEST(Chaos, DecodeCountersTrackOutcomes) {
  obs::ScopedRegistry scoped;
  auto& reg = scoped.registry();
  const Graph g = certified(16, 901);
  const auto artifact = schemes::serialize(schemes::HubScheme(g));
  (void)schemes::deserialize_any(artifact, g);
  EXPECT_EQ(reg.counter_value("artifact.decode_ok"), 1u);
  EXPECT_EQ(reg.counter_value("artifact.decode_rejected"), 0u);
  EXPECT_EQ(reg.counter_value("artifact.crc_mismatch"), 0u);
  const auto flipped =
      net::flip_bit(artifact, schemes::kFrameHeaderBits);  // payload bit 0
  EXPECT_THROW((void)schemes::deserialize_any(flipped, g),
               schemes::DecodeError);
  EXPECT_EQ(reg.counter_value("artifact.decode_ok"), 1u);
  EXPECT_EQ(reg.counter_value("artifact.decode_rejected"), 1u);
  EXPECT_EQ(reg.counter_value("artifact.crc_mismatch"), 1u);
}

}  // namespace
}  // namespace optrt
