// Link-serialization (congestion) tests: FIFO store-and-forward semantics
// and the hub-concentration effect of Theorem 4's scheme under load.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "net/simulator.hpp"
#include "net/workload.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hub.hpp"

namespace optrt::net {
namespace {

using graph::Graph;
using graph::Rng;

TEST(Congestion, SerializedLinkDeliversOnePerWindow) {
  // Two messages over the same directed link: second waits one window.
  const Graph g = graph::chain(3);
  const auto scheme = schemes::FullTableScheme::standard(g);
  SimulatorConfig config;
  config.serialize_links = true;
  Simulator sim(g, scheme, config);
  const auto a = sim.send(0, 2, 0);
  const auto b = sim.send(0, 2, 0);
  sim.run();
  EXPECT_EQ(sim.records()[a].arrival_time, 2u);
  // b departs link 0→1 at t=1, arrives node 1 at t=2, then queues behind a
  // on link 1→2 (a holds it during [1,2)) — arrives at t ≥ 3.
  EXPECT_GE(sim.records()[b].arrival_time, 3u);
}

TEST(Congestion, WithoutSerializationBothArriveTogether) {
  const Graph g = graph::chain(3);
  const auto scheme = schemes::FullTableScheme::standard(g);
  Simulator sim(g, scheme);
  const auto a = sim.send(0, 2, 0);
  const auto b = sim.send(0, 2, 0);
  sim.run();
  EXPECT_EQ(sim.records()[a].arrival_time, 2u);
  EXPECT_EQ(sim.records()[b].arrival_time, 2u);
}

TEST(Congestion, OppositeDirectionsDoNotBlock) {
  const Graph g = graph::chain(2);
  const auto scheme = schemes::FullTableScheme::standard(g);
  SimulatorConfig config;
  config.serialize_links = true;
  Simulator sim(g, scheme, config);
  const auto a = sim.send(0, 1, 0);
  const auto b = sim.send(1, 0, 0);
  sim.run();
  EXPECT_EQ(sim.records()[a].arrival_time, 1u);
  EXPECT_EQ(sim.records()[b].arrival_time, 1u);
}

TEST(Congestion, HubSchemeConcentratesTraffic) {
  // Theorem 4 routes almost everything through one node; under link
  // serialization its makespan must exceed the distributed Theorem 1
  // scheme's on the same permutation workload.
  Rng rng(31);
  const std::size_t n = 96;
  const Graph g = core::certified_random_graph(n, rng);
  const schemes::HubScheme hub(g);
  const schemes::CompactDiam2Scheme compact(g, {});

  SimulatorConfig config;
  config.serialize_links = true;

  Rng traffic_rng(32);
  const auto traffic = permutation_traffic(n, traffic_rng);

  Simulator hub_sim(g, hub, config);
  Simulator compact_sim(g, compact, config);
  for (const auto& [u, v] : traffic) {
    hub_sim.send(u, v);
    compact_sim.send(u, v);
  }
  const auto hub_stats = hub_sim.run();
  const auto compact_stats = compact_sim.run();
  EXPECT_EQ(hub_stats.dropped, 0u);
  EXPECT_EQ(compact_stats.dropped, 0u);
  // The space saved by the hub scheme is paid for in congestion.
  EXPECT_GT(hub_stats.makespan, compact_stats.makespan);
}

TEST(Congestion, SerializationNeverLosesMessages) {
  Rng rng(33);
  const Graph g = core::certified_random_graph(64, rng);
  const schemes::CompactDiam2Scheme scheme(g, {});
  SimulatorConfig config;
  config.serialize_links = true;
  Simulator sim(g, scheme, config);
  Rng traffic_rng(34);
  const auto traffic = uniform_random(64, 1000, traffic_rng);
  for (const auto& [u, v] : traffic) sim.send(u, v);
  const auto stats = sim.run();
  EXPECT_EQ(stats.delivered, traffic.size());
  EXPECT_GE(stats.makespan, 2u);
}

}  // namespace
}  // namespace optrt::net
