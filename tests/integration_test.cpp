// Integration tests: the full pipeline (sample → certify → compile →
// verify → account → simulate → codec round-trip) across models,
// objectives, and graph families — the library exercised the way the bench
// harness and a downstream user would.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optrt.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::Rng;

TEST(Integration, FullPipelineOnOneCertifiedGraph) {
  Rng rng(42);
  const Graph g = core::certified_random_graph(96, rng);

  // 1. Certificate gates the construction.
  const auto cert = graph::certify(g);
  ASSERT_TRUE(cert.ok());

  // 2. Compile under every model; verify shortest-path correctness and the
  //    Table 1 size ordering: II∧γ < IB/II compact < IA full table.
  std::size_t gamma_bits = 0, compact_bits = 0, table_bits = 0;
  for (const model::Model& m : model::Model::all()) {
    const auto scheme = schemes::compile(g, m);
    const auto result = model::verify_scheme(g, *scheme);
    ASSERT_TRUE(result.ok()) << m.name();
    ASSERT_DOUBLE_EQ(result.max_stretch, 1.0) << m.name();
    const std::size_t bits = scheme->space().total_bits();
    if (m == model::kIIgamma) gamma_bits = bits;
    if (m == model::kIIalpha) compact_bits = bits;
    if (m == model::kIAalpha) table_bits = bits;
  }
  EXPECT_LT(gamma_bits, compact_bits);   // O(n log²n) < O(n²)
  EXPECT_LT(compact_bits, table_bits);   // O(n²) < O(n² log n)

  // 3. Stretch ladder: Theorems 3, 4, 5 trade space for stretch.
  schemes::CompileOptions opt;
  opt.objective = schemes::Objective::kStretchBelow2;
  const auto t3 = schemes::compile(g, model::kIIalpha, opt);
  opt.objective = schemes::Objective::kStretch2;
  const auto t4 = schemes::compile(g, model::kIIalpha, opt);
  opt.objective = schemes::Objective::kStretchLog;
  const auto t5 = schemes::compile(g, model::kIIalpha, opt);
  EXPECT_LE(model::verify_scheme(g, *t3).max_stretch, 1.5);
  EXPECT_LE(model::verify_scheme(g, *t4).max_stretch, 2.0);
  EXPECT_GT(t3->space().total_bits(), t4->space().total_bits());
  EXPECT_GT(t4->space().total_bits(), t5->space().total_bits());

  // 4. Simulate traffic through the compact scheme.
  const auto compact = schemes::compile(g, model::kIIalpha);
  net::Simulator sim(g, *compact);
  Rng traffic_rng(7);
  for (const auto& [u, v] : net::uniform_random(96, 500, traffic_rng)) {
    sim.send(u, v);
  }
  const auto stats = sim.run();
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_LE(stats.mean_hops(), 2.0);

  // 5. The Theorem 6 codec round-trips through the same compact tables.
  const auto t6 = incompress::theorem6_encode(g, 0);
  EXPECT_EQ(incompress::theorem6_decode(t6.description.bits, 96), g);
}

TEST(Integration, EncodingAndCodecsAgreeOnEveryFamily) {
  // E(G) and the Lemma 1 codec must round-trip on all generator families.
  Rng rng(3);
  const std::vector<Graph> graphs = {
      graph::chain(20),         graph::ring(21),
      graph::star(22),          graph::grid(4, 6),
      graph::complete(12),      graph::random_gnp(24, 0.3, rng),
      graph::lower_bound_gb(7),
  };
  for (const Graph& g : graphs) {
    const std::size_t n = g.node_count();
    EXPECT_EQ(graph::decode(graph::encode(g), n), g);
    const auto d = incompress::lemma1_encode(g, 0);
    EXPECT_EQ(incompress::lemma1_decode(d.bits, n), g);
  }
}

TEST(Integration, Table1SizeShapeAcrossN) {
  // The average-case upper-bound rows of Table 1 in miniature: measure at
  // two sizes and check the growth exponents are ordered
  //   II∧γ (n log²n)  <  II (n²)  ≤  IA (n² log n).
  const std::vector<std::size_t> ns = {48, 96};
  std::vector<double> gamma, compact, table;
  for (std::size_t n : ns) {
    Rng rng(n);
    const Graph g = core::certified_random_graph(n, rng);
    gamma.push_back(static_cast<double>(
        schemes::NeighborLabelScheme(g).space().total_bits()));
    compact.push_back(static_cast<double>(
        schemes::CompactDiam2Scheme(g, {}).space().total_bits()));
    table.push_back(static_cast<double>(
        schemes::FullTableScheme::standard(g).space().total_bits()));
  }
  const double growth_gamma = gamma[1] / gamma[0];
  const double growth_compact = compact[1] / compact[0];
  const double growth_table = table[1] / table[0];
  EXPECT_LT(growth_gamma, growth_compact);
  EXPECT_LE(growth_compact, growth_table * 1.05);
  // Compact scheme doubles n → ≈ 4× bits (Θ(n²)).
  EXPECT_NEAR(growth_compact, 4.0, 1.0);
}

TEST(Integration, FailureRecoveryOnlyWithFullInformation) {
  Rng rng(11);
  const Graph g = core::certified_random_graph(64, rng);
  // Choose a distance-2 pair and fail one of its shortest-path first hops.
  const schemes::FullInformationScheme full =
      schemes::FullInformationScheme::standard(g);
  graph::NodeId dst = 0;
  for (graph::NodeId v = 1; v < 64; ++v) {
    if (!g.has_edge(0, v)) {
      dst = v;
      break;
    }
  }
  ASSERT_NE(dst, 0u);
  const auto alternatives = full.all_next_hops(0, dst);
  ASSERT_GT(alternatives.size(), 1u);

  net::Simulator full_sim(g, full);
  full_sim.fail_link(0, alternatives[0]);
  full_sim.send(0, dst);
  EXPECT_EQ(full_sim.run().delivered, 1u);

  const auto table = schemes::FullTableScheme::standard(g);
  net::Simulator table_sim(g, table);
  model::MessageHeader h;
  const graph::NodeId first = table.next_hop(0, dst, h);
  table_sim.fail_link(0, first);
  table_sim.send(0, dst);
  EXPECT_EQ(table_sim.run().dropped, 1u);
}

TEST(Integration, WorstCaseAndAverageCaseCoexist) {
  // The same library covers both regimes: G_B (worst case, Theorem 9) and
  // certified random graphs (average case, Theorems 1–7, 10).
  const std::size_t k = 16;
  Rng rng(13);
  std::vector<graph::NodeId> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  const Graph gb = graph::lower_bound_gb_permuted(k, perm);
  // G_B is decidedly not Kolmogorov random:
  EXPECT_FALSE(graph::certify(gb).ok());
  // …but the universal strategy still routes it (fallback):
  const auto scheme = schemes::compile(gb, model::kIIalpha);
  EXPECT_EQ(scheme->name(), "full-table");
  EXPECT_TRUE(model::verify_scheme(gb, *scheme).ok());
  // …and the planted permutation is recoverable from its tables:
  EXPECT_EQ(incompress::recover_top_permutation(*scheme, k, 0), perm);
}

TEST(Integration, HeaderOverheadStaysLogarithmic) {
  // Theorem 5's probe header: after verifying all pairs, the largest probe
  // index must stay below the Lemma 3 cover bound.
  Rng rng(17);
  const std::size_t n = 96;
  const Graph g = core::certified_random_graph(n, rng);
  const schemes::SequentialSearchScheme scheme(g);
  const auto result = model::verify_scheme(g, scheme);
  ASSERT_TRUE(result.ok());
  // Max route = 2·(probes) + 1; probes ≤ (c+3) log n.
  const double bound = 2.0 * 6.0 * std::log2(static_cast<double>(n)) + 2.0;
  EXPECT_LE(static_cast<double>(result.max_route_edges), bound);
}

}  // namespace
}  // namespace optrt
