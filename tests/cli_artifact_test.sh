#!/usr/bin/env bash
# CLI-level artifact robustness: a corrupt or missing file must produce
# exactly one diagnostic line naming the file and the DecodeError kind,
# and exit 2; verify-artifact must exit 0 on intact artifacts.
#
# Usage: cli_artifact_test.sh <path-to-optrt_cli> <work-dir>
set -u

CLI=$1
WORK=$2
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || exit 1

failures=0

# expect <wanted-exit> <stderr-substring|-> <one-line|-> -- cmd args...
expect() {
  local wanted=$1 substring=$2 oneline=$3
  shift 4
  local err rc
  err=$("$@" 2>&1 >/dev/null)
  rc=$?
  if [ "$rc" -ne "$wanted" ]; then
    echo "FAIL: '$*' exited $rc, wanted $wanted" >&2
    echo "  stderr: $err" >&2
    failures=$((failures + 1))
    return
  fi
  if [ "$substring" != "-" ] && [[ "$err" != *"$substring"* ]]; then
    echo "FAIL: '$*' stderr missing '$substring'" >&2
    echo "  stderr: $err" >&2
    failures=$((failures + 1))
    return
  fi
  if [ "$oneline" = "oneline" ] && [ "$(printf '%s\n' "$err" | wc -l)" -gt 1 ]; then
    echo "FAIL: '$*' printed more than one diagnostic line" >&2
    echo "  stderr: $err" >&2
    failures=$((failures + 1))
  fi
}

# Flips one bit of byte <offset> in <file>.
flip_byte() {
  local file=$1 offset=$2
  local byte
  byte=$(od -An -tu1 -j "$offset" -N 1 "$file" | tr -d ' ')
  printf "$(printf '\\x%02x' $((byte ^ 1)))" |
    dd of="$file" bs=1 seek="$offset" count=1 conv=notrunc status=none
}

# A healthy pipeline: generate, compile, inspect, verify, route.
expect 0 - - -- "$CLI" generate uniform 16 --seed 3 --certified -o g.eg
expect 0 - - -- "$CLI" compile g.eg --model II.alpha -o s.ort
expect 0 - - -- "$CLI" verify-artifact s.ort
expect 0 - - -- "$CLI" verify-artifact s.ort g.eg
expect 0 - - -- "$CLI" route g.eg s.ort 0 5

# Missing files: one line, exit 2.
expect 2 "missing.ort" oneline -- "$CLI" verify-artifact missing.ort
expect 2 "missing.eg" oneline -- "$CLI" info missing.eg

# A flipped payload byte is a checksum mismatch: one line, exit 2, and the
# diagnostic names both the file and the taxonomy kind.
cp s.ort corrupt.ort
size=$(wc -c < corrupt.ort)
flip_byte corrupt.ort $((size - 4))
expect 2 "corrupt.ort" oneline -- "$CLI" verify-artifact corrupt.ort
expect 2 "checksum-mismatch" oneline -- "$CLI" verify-artifact corrupt.ort
expect 2 "checksum-mismatch" oneline -- "$CLI" route g.eg corrupt.ort 0 5
expect 2 "checksum-mismatch" oneline -- "$CLI" verify g.eg corrupt.ort

# A truncated artifact: one line, exit 2.
head -c $((size / 2)) s.ort > short.ort
expect 2 "truncated" oneline -- "$CLI" verify-artifact short.ort

# Not an artifact at all (text): one line, exit 2.
echo "hello world, this is not an artifact" > junk.ort
expect 2 "junk.ort" oneline -- "$CLI" verify-artifact junk.ort

# Corrupt graph file: one line, exit 2 from every command that loads it.
cp g.eg corrupt.eg
gsize=$(wc -c < corrupt.eg)
head -c $((gsize - 3)) g.eg > corrupt.eg
expect 2 "corrupt.eg" oneline -- "$CLI" info corrupt.eg
expect 2 "corrupt.eg" oneline -- "$CLI" verify corrupt.eg s.ort

if [ "$failures" -ne 0 ]; then
  echo "$failures CLI robustness check(s) failed" >&2
  exit 1
fi
echo "all CLI robustness checks passed"
