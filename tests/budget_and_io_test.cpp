// Tests for compile_within_budget (the stretch/space ladder as an API) and
// the graph file format.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/experiment.hpp"
#include "core/graph_io.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/compiler.hpp"
#include "schemes/errors.hpp"
#include "schemes/hub.hpp"
#include "schemes/routing_center.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

TEST(Budget, UnlimitedBudgetGivesShortestPath) {
  const Graph g = certified(96, 801);
  const auto result =
      schemes::compile_within_budget(g, static_cast<std::size_t>(-1));
  EXPECT_EQ(result.scheme->name(), "compact-diam2");
  EXPECT_DOUBLE_EQ(result.stretch_bound, 1.0);
  EXPECT_DOUBLE_EQ(model::verify_scheme(g, *result.scheme).max_stretch, 1.0);
}

TEST(Budget, LadderDescendsWithTheBudget) {
  const Graph g = certified(96, 802);
  const auto t1 = schemes::CompactDiam2Scheme(g, {}).space().total_bits();
  const auto t3 = schemes::RoutingCenterScheme(g).space().total_bits();
  const auto t4 = schemes::HubScheme(g).space().total_bits();

  // Just below Theorem 1's cost → Theorem 3's scheme.
  auto r = schemes::compile_within_budget(g, t1 - 1);
  EXPECT_EQ(r.scheme->name(), "routing-center");
  EXPECT_DOUBLE_EQ(r.stretch_bound, 1.5);
  // Just below Theorem 3's cost → Theorem 4's.
  r = schemes::compile_within_budget(g, t3 - 1);
  EXPECT_EQ(r.scheme->name(), "hub");
  EXPECT_DOUBLE_EQ(r.stretch_bound, 2.0);
  // Just below Theorem 4's cost → Theorem 5's zero-bit scheme.
  r = schemes::compile_within_budget(g, t4 - 1);
  EXPECT_EQ(r.scheme->name(), "sequential-search");
  EXPECT_GT(r.stretch_bound, 2.0);
  // Zero budget also lands on Theorem 5.
  r = schemes::compile_within_budget(g, 0);
  EXPECT_EQ(r.scheme->name(), "sequential-search");
}

TEST(Budget, EveryRungRoutesCorrectly) {
  const Graph g = certified(64, 803);
  for (std::size_t budget :
       {std::size_t{0}, std::size_t{500}, std::size_t{3000},
        std::size_t{1} << 20}) {
    const auto r = schemes::compile_within_budget(g, budget);
    const auto v = model::verify_scheme(g, *r.scheme);
    EXPECT_TRUE(v.ok()) << "budget " << budget;
    EXPECT_LE(v.max_stretch, r.stretch_bound + 1e-9) << "budget " << budget;
    EXPECT_LE(r.scheme->space().total_bits(), budget) << "budget " << budget;
  }
}

TEST(Budget, ThrowsWhereLadderInapplicable) {
  EXPECT_THROW(schemes::compile_within_budget(graph::chain(16), 1 << 20),
               schemes::SchemeInapplicable);
}

TEST(GraphIo, RoundTripsEveryFamily) {
  Rng rng(804);
  const std::string path = "/tmp/optrt_graph_io_test.eg";
  for (const Graph& g :
       {graph::chain(20), graph::star(21), graph::hypercube(4),
        graph::random_uniform(33, rng), graph::lower_bound_gb(5)}) {
    core::save_graph(path, g);
    EXPECT_EQ(core::load_graph(path), g);
  }
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)core::load_graph("/nonexistent/no.eg"),
               std::runtime_error);
}

}  // namespace
}  // namespace optrt
