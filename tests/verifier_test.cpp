// Verifier tests: the §1 route/stretch semantics, including detection of
// misbehaving schemes, plus the differential harness pinning the sharded
// verifier to the serial reference on every scheme in src/schemes.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "graph/ports.hpp"
#include "model/verifier.hpp"
#include "schemes/compiler.hpp"
#include "schemes/errors.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hierarchical.hpp"
#include "schemes/hub.hpp"
#include "schemes/interval.hpp"
#include "schemes/k_interval.hpp"
#include "schemes/landmark.hpp"
#include "schemes/neighbor_label.hpp"
#include "schemes/routing_center.hpp"
#include "schemes/sequential_search.hpp"

namespace optrt::model {
namespace {

using graph::Graph;

/// A deliberately broken scheme for negative tests.
class MisbehavingScheme final : public RoutingScheme {
 public:
  enum class Mode { kNonNeighborHop, kLoopForever, kDetour };

  MisbehavingScheme(const Graph& g, Mode mode) : g_(&g), mode_(mode) {}

  [[nodiscard]] std::string name() const override { return "misbehaving"; }
  [[nodiscard]] Model routing_model() const override { return kIIalpha; }
  [[nodiscard]] std::size_t node_count() const override {
    return g_->node_count();
  }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest,
                                MessageHeader&) const override {
    switch (mode_) {
      case Mode::kNonNeighborHop:
        return dest;  // teleport attempt: usually not an incident edge
      case Mode::kLoopForever:
        return g_->neighbors(u)[0];  // ping-pong on a chain
      case Mode::kDetour: {
        // Correct but wasteful: route to the highest neighbour unless the
        // destination is adjacent.
        if (g_->has_edge(u, dest)) return dest;
        const auto nbrs = g_->neighbors(u);
        return nbrs[nbrs.size() - 1];
      }
    }
    return 0;
  }
  [[nodiscard]] SpaceReport space() const override {
    SpaceReport r;
    r.function_bits.assign(g_->node_count(), 0);
    return r;
  }

 private:
  const Graph* g_;
  Mode mode_;
};

TEST(Verifier, DetectsInvalidHops) {
  const Graph g = graph::chain(6);
  const MisbehavingScheme scheme(g, MisbehavingScheme::Mode::kNonNeighborHop);
  const auto result = verify_scheme(g, scheme);
  EXPECT_FALSE(result.ok());
  EXPECT_GT(result.invalid_hops, 0u);
}

TEST(Verifier, DetectsNonTermination) {
  const Graph g = graph::chain(6);
  const MisbehavingScheme scheme(g, MisbehavingScheme::Mode::kLoopForever);
  const auto result = verify_scheme(g, scheme);
  EXPECT_FALSE(result.all_delivered);
  EXPECT_GT(result.pairs_failed, 0u);
  EXPECT_EQ(result.invalid_hops, 0u);  // hops are valid edges, just circular
}

TEST(Verifier, MeasuresStretchOfDetours) {
  graph::Rng rng(3);
  const Graph g = graph::random_uniform(32, rng);
  const MisbehavingScheme scheme(g, MisbehavingScheme::Mode::kDetour);
  const auto result = verify_scheme(g, scheme);
  if (result.all_delivered) {
    EXPECT_GE(result.max_stretch, 1.0);
  }
  // Either way the correct baseline is strictly better.
  const auto baseline =
      verify_scheme(g, schemes::FullTableScheme::standard(g));
  EXPECT_TRUE(baseline.ok());
  EXPECT_DOUBLE_EQ(baseline.max_stretch, 1.0);
}

TEST(Verifier, CountsPairsAndEdges) {
  const Graph g = graph::complete(5);
  const auto result =
      verify_scheme(g, schemes::FullTableScheme::standard(g));
  EXPECT_EQ(result.pairs_checked, 20u);  // 5·4 ordered pairs
  EXPECT_EQ(result.total_route_edges, 20u);  // all at distance 1
  EXPECT_EQ(result.max_route_edges, 1u);
  EXPECT_DOUBLE_EQ(result.mean_stretch, 1.0);
}

TEST(Verifier, SkipsDisconnectedPairs) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto result =
      verify_scheme(g, schemes::FullTableScheme::standard(g));
  EXPECT_TRUE(result.ok());  // only intra-component pairs verified
  EXPECT_EQ(result.pairs_checked, 12u);
}

TEST(Verifier, RouteOnceReturnsEdgeCount) {
  const Graph g = graph::chain(7);
  const auto scheme = schemes::FullTableScheme::standard(g);
  EXPECT_EQ(route_once(g, scheme, 0, 6, 0), 6u);
  EXPECT_EQ(route_once(g, scheme, 2, 3, 0), 1u);
}

TEST(Verifier, DefaultHopBudgetPinned) {
  // Regression pin for the "4n + 16" sentinel, now hoisted into one
  // helper shared by the verifier and the simulator.
  EXPECT_EQ(default_hop_budget(0), 16u);
  EXPECT_EQ(default_hop_budget(16), 80u);
  EXPECT_EQ(default_hop_budget(256), 1040u);
  // Passing the resolved budget explicitly must match the 0 sentinel.
  const Graph g = graph::chain(12);
  const auto scheme = schemes::FullTableScheme::standard(g);
  const auto implicit = verify_scheme(g, scheme, 0);
  const auto explicit_budget =
      verify_scheme(g, scheme, default_hop_budget(g.node_count()));
  EXPECT_EQ(implicit.pairs_failed, explicit_budget.pairs_failed);
  EXPECT_EQ(implicit.total_route_edges, explicit_budget.total_route_edges);
}

// --- Differential harness: sharded verify_scheme vs the serial reference -

void expect_identical_results(const VerificationResult& a,
                              const VerificationResult& b,
                              const std::string& context) {
  EXPECT_EQ(a.all_delivered, b.all_delivered) << context;
  EXPECT_EQ(a.pairs_checked, b.pairs_checked) << context;
  EXPECT_EQ(a.pairs_failed, b.pairs_failed) << context;
  EXPECT_EQ(a.invalid_hops, b.invalid_hops) << context;
  EXPECT_EQ(a.total_route_edges, b.total_route_edges) << context;
  EXPECT_EQ(a.max_route_edges, b.max_route_edges) << context;
  // Bit-level: max/mean stretch must agree including tie-breaking and
  // floating-point association, not just within a tolerance.
  EXPECT_EQ(std::memcmp(&a.max_stretch, &b.max_stretch, sizeof(double)), 0)
      << context << " max_stretch " << a.max_stretch << " vs " << b.max_stretch;
  EXPECT_EQ(std::memcmp(&a.mean_stretch, &b.mean_stretch, sizeof(double)), 0)
      << context << " mean_stretch " << a.mean_stretch << " vs "
      << b.mean_stretch;
}

using SchemeFactory =
    std::pair<std::string,
              std::function<std::unique_ptr<RoutingScheme>(const Graph&)>>;

// One factory per scheme in src/schemes; factories whose preconditions the
// graph fails (diameter > 2, no Lemma 3 cover, …) report inapplicable.
std::vector<SchemeFactory> all_scheme_factories() {
  std::vector<SchemeFactory> factories;
  factories.emplace_back("full_table", [](const Graph& g) {
    return std::make_unique<schemes::FullTableScheme>(
        schemes::FullTableScheme::standard(g));
  });
  factories.emplace_back("full_information", [](const Graph& g) {
    return std::make_unique<schemes::FullInformationScheme>(
        g, graph::PortAssignment::sorted(g));
  });
  factories.emplace_back("interval", [](const Graph& g) {
    return std::make_unique<schemes::IntervalRoutingScheme>(g);
  });
  factories.emplace_back("k_interval", [](const Graph& g) {
    return std::make_unique<schemes::KIntervalScheme>(g);
  });
  factories.emplace_back("hierarchical", [](const Graph& g) {
    return std::make_unique<schemes::HierarchicalScheme>(g);
  });
  factories.emplace_back("landmark", [](const Graph& g) {
    return std::make_unique<schemes::LandmarkScheme>(g);
  });
  factories.emplace_back("hub", [](const Graph& g) {
    return std::make_unique<schemes::HubScheme>(g);
  });
  factories.emplace_back("routing_center", [](const Graph& g) {
    return std::make_unique<schemes::RoutingCenterScheme>(g);
  });
  factories.emplace_back("sequential_search", [](const Graph& g) {
    return std::make_unique<schemes::SequentialSearchScheme>(g);
  });
  factories.emplace_back("neighbor_label", [](const Graph& g) {
    return std::make_unique<schemes::NeighborLabelScheme>(g);
  });
  // The compiler's Table 1 selections (compact_diam2 and friends), across
  // every model, with fallback enabled so each model yields some scheme.
  for (const Model& m : Model::all()) {
    factories.emplace_back("compile:" + m.name(), [m](const Graph& g) {
      return schemes::compile(g, m);
    });
  }
  return factories;
}

TEST(VerifierDifferential, ShardedMatchesSerialOnEveryScheme) {
  std::size_t schemes_checked = 0;
  for (std::size_t n : {8u, 16u, 32u}) {
    // A certified G(n, 1/2) draw where possible (so the compact paper
    // constructions apply) with a plain uniform fallback at small n.
    graph::Rng rng(n);
    Graph g = graph::random_uniform(n, rng);
    try {
      graph::Rng certified_rng(n);
      g = core::certified_random_graph(n, certified_rng);
    } catch (const std::runtime_error&) {
      // Small n may never certify; the uniform draw is fine for routing.
    }
    for (const auto& [name, make] : all_scheme_factories()) {
      std::unique_ptr<RoutingScheme> scheme;
      try {
        scheme = make(g);
      } catch (const schemes::SchemeInapplicable&) {
        continue;  // this graph lacks the scheme's preconditions
      }
      const std::string context = name + " on n=" + std::to_string(n);
      const auto serial = verify_scheme_serial(g, *scheme);
      for (std::size_t threads : {1u, 2u, 8u}) {
        expect_identical_results(
            verify_scheme(g, *scheme, 0, threads), serial,
            context + " threads=" + std::to_string(threads));
      }
      ++schemes_checked;
    }
  }
  // Every named scheme must have been exercised on at least one n.
  EXPECT_GE(schemes_checked, 3 * 10u);
}

TEST(VerifierDifferential, ShardedMatchesSerialOnMisbehavingSchemes) {
  // Failure counting (invalid hops, hop-budget exhaustion) must shard
  // identically too, not just the happy path.
  graph::Rng rng(11);
  const Graph g = graph::random_uniform(16, rng);
  for (const auto mode :
       {MisbehavingScheme::Mode::kNonNeighborHop,
        MisbehavingScheme::Mode::kLoopForever, MisbehavingScheme::Mode::kDetour}) {
    const MisbehavingScheme scheme(g, mode);
    const auto serial = verify_scheme_serial(g, scheme);
    for (std::size_t threads : {1u, 2u, 8u}) {
      expect_identical_results(verify_scheme(g, scheme, 0, threads), serial,
                               "misbehaving mode");
    }
  }
}

TEST(Verifier, HeaderBitsInFlightAccounting) {
  MessageHeader h;
  EXPECT_EQ(h.bits_in_flight(), 2u);
  h.probe_index = 5;
  EXPECT_EQ(h.bits_in_flight(), 5u);  // 2 + bit_width(5)=3
}

}  // namespace
}  // namespace optrt::model
