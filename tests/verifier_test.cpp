// Verifier tests: the §1 route/stretch semantics, including detection of
// misbehaving schemes.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/full_table.hpp"

namespace optrt::model {
namespace {

using graph::Graph;

/// A deliberately broken scheme for negative tests.
class MisbehavingScheme final : public RoutingScheme {
 public:
  enum class Mode { kNonNeighborHop, kLoopForever, kDetour };

  MisbehavingScheme(const Graph& g, Mode mode) : g_(&g), mode_(mode) {}

  [[nodiscard]] std::string name() const override { return "misbehaving"; }
  [[nodiscard]] Model routing_model() const override { return kIIalpha; }
  [[nodiscard]] std::size_t node_count() const override {
    return g_->node_count();
  }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest,
                                MessageHeader&) const override {
    switch (mode_) {
      case Mode::kNonNeighborHop:
        return dest;  // teleport attempt: usually not an incident edge
      case Mode::kLoopForever:
        return g_->neighbors(u)[0];  // ping-pong on a chain
      case Mode::kDetour: {
        // Correct but wasteful: route to the highest neighbour unless the
        // destination is adjacent.
        if (g_->has_edge(u, dest)) return dest;
        const auto nbrs = g_->neighbors(u);
        return nbrs[nbrs.size() - 1];
      }
    }
    return 0;
  }
  [[nodiscard]] SpaceReport space() const override {
    SpaceReport r;
    r.function_bits.assign(g_->node_count(), 0);
    return r;
  }

 private:
  const Graph* g_;
  Mode mode_;
};

TEST(Verifier, DetectsInvalidHops) {
  const Graph g = graph::chain(6);
  const MisbehavingScheme scheme(g, MisbehavingScheme::Mode::kNonNeighborHop);
  const auto result = verify_scheme(g, scheme);
  EXPECT_FALSE(result.ok());
  EXPECT_GT(result.invalid_hops, 0u);
}

TEST(Verifier, DetectsNonTermination) {
  const Graph g = graph::chain(6);
  const MisbehavingScheme scheme(g, MisbehavingScheme::Mode::kLoopForever);
  const auto result = verify_scheme(g, scheme);
  EXPECT_FALSE(result.all_delivered);
  EXPECT_GT(result.pairs_failed, 0u);
  EXPECT_EQ(result.invalid_hops, 0u);  // hops are valid edges, just circular
}

TEST(Verifier, MeasuresStretchOfDetours) {
  graph::Rng rng(3);
  const Graph g = graph::random_uniform(32, rng);
  const MisbehavingScheme scheme(g, MisbehavingScheme::Mode::kDetour);
  const auto result = verify_scheme(g, scheme);
  if (result.all_delivered) {
    EXPECT_GE(result.max_stretch, 1.0);
  }
  // Either way the correct baseline is strictly better.
  const auto baseline =
      verify_scheme(g, schemes::FullTableScheme::standard(g));
  EXPECT_TRUE(baseline.ok());
  EXPECT_DOUBLE_EQ(baseline.max_stretch, 1.0);
}

TEST(Verifier, CountsPairsAndEdges) {
  const Graph g = graph::complete(5);
  const auto result =
      verify_scheme(g, schemes::FullTableScheme::standard(g));
  EXPECT_EQ(result.pairs_checked, 20u);  // 5·4 ordered pairs
  EXPECT_EQ(result.total_route_edges, 20u);  // all at distance 1
  EXPECT_EQ(result.max_route_edges, 1u);
  EXPECT_DOUBLE_EQ(result.mean_stretch, 1.0);
}

TEST(Verifier, SkipsDisconnectedPairs) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto result =
      verify_scheme(g, schemes::FullTableScheme::standard(g));
  EXPECT_TRUE(result.ok());  // only intra-component pairs verified
  EXPECT_EQ(result.pairs_checked, 12u);
}

TEST(Verifier, RouteOnceReturnsEdgeCount) {
  const Graph g = graph::chain(7);
  const auto scheme = schemes::FullTableScheme::standard(g);
  EXPECT_EQ(route_once(g, scheme, 0, 6, 0), 6u);
  EXPECT_EQ(route_once(g, scheme, 2, 3, 0), 1u);
}

TEST(Verifier, HeaderBitsInFlightAccounting) {
  MessageHeader h;
  EXPECT_EQ(h.bits_in_flight(), 2u);
  h.probe_index = 5;
  EXPECT_EQ(h.bits_in_flight(), 5u);  // 2 + bit_width(5)=3
}

}  // namespace
}  // namespace optrt::model
