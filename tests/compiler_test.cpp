// Tests for the universal strategy entry point: model → scheme selection,
// objectives, and fallbacks.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/compiler.hpp"
#include "schemes/errors.hpp"
#include "schemes/full_table.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

TEST(Compiler, ShortestPathSelectionFollowsTable1) {
  const Graph g = certified(64, 1);
  EXPECT_EQ(compile(g, model::kIIgamma)->name(), "neighbor-label");
  EXPECT_EQ(compile(g, model::kIIalpha)->name(), "compact-diam2");
  EXPECT_EQ(compile(g, model::kIIbeta)->name(), "compact-diam2");
  EXPECT_EQ(compile(g, model::kIBalpha)->name(), "compact-diam2");
  EXPECT_EQ(compile(g, model::kIBbeta)->name(), "compact-diam2");
  EXPECT_EQ(compile(g, model::kIBgamma)->name(), "compact-diam2");
  EXPECT_EQ(compile(g, model::kIAalpha)->name(), "full-table");
  EXPECT_EQ(compile(g, model::kIAbeta)->name(), "full-table");
  EXPECT_EQ(compile(g, model::kIAgamma)->name(), "full-table");
}

TEST(Compiler, ObjectivesSelectTheorems3To5) {
  const Graph g = certified(64, 2);
  CompileOptions opt;
  opt.objective = Objective::kStretchBelow2;
  EXPECT_EQ(compile(g, model::kIIalpha, opt)->name(), "routing-center");
  opt.objective = Objective::kStretch2;
  EXPECT_EQ(compile(g, model::kIIalpha, opt)->name(), "hub");
  opt.objective = Objective::kStretchLog;
  EXPECT_EQ(compile(g, model::kIIalpha, opt)->name(), "sequential-search");
  opt.objective = Objective::kFullInformation;
  EXPECT_EQ(compile(g, model::kIIalpha, opt)->name(), "full-information");
}

TEST(Compiler, StretchObjectivesInModelIFallBackToFullTable) {
  const Graph g = certified(48, 3);
  CompileOptions opt;
  opt.objective = Objective::kStretch2;
  EXPECT_EQ(compile(g, model::kIAalpha, opt)->name(), "full-table");
}

TEST(Compiler, FallsBackOnNonRandomGraphs) {
  const Graph g = graph::chain(16);
  const auto scheme = compile(g, model::kIIalpha);
  EXPECT_EQ(scheme->name(), "full-table");
  EXPECT_TRUE(model::verify_scheme(g, *scheme).ok());
}

TEST(Compiler, StrictModeThrowsInstead) {
  const Graph g = graph::chain(16);
  CompileOptions opt;
  opt.allow_fallback = false;
  EXPECT_THROW(compile(g, model::kIIalpha, opt), SchemeInapplicable);
}

TEST(Compiler, EveryModelProducesACorrectSchemeOnCertifiedGraphs) {
  const Graph g = certified(64, 4);
  for (const model::Model& m : model::Model::all()) {
    const auto scheme = compile(g, m);
    const auto result = model::verify_scheme(g, *scheme);
    EXPECT_TRUE(result.ok()) << m.name();
    EXPECT_DOUBLE_EQ(result.max_stretch, 1.0) << m.name();
  }
}

TEST(Compiler, EveryObjectiveCorrectOnCertifiedGraphs) {
  const Graph g = certified(64, 5);
  for (Objective obj :
       {Objective::kShortestPath, Objective::kStretchBelow2,
        Objective::kStretch2, Objective::kStretchLog,
        Objective::kFullInformation}) {
    CompileOptions opt;
    opt.objective = obj;
    const auto scheme = compile(g, model::kIIalpha, opt);
    EXPECT_TRUE(model::verify_scheme(g, *scheme).ok())
        << static_cast<int>(obj);
  }
}

TEST(Compiler, ModelNamesRenderPaperStyle) {
  EXPECT_EQ(model::kIAalpha.name(), "IA.alpha");
  EXPECT_EQ(model::kIIgamma.name(), "II.gamma");
  EXPECT_EQ(model::Model::all().size(), 9u);
}

TEST(Compiler, PortSeedChangesAdversarialTables) {
  const Graph g = certified(48, 6);
  CompileOptions a, b;
  a.port_seed = 1;
  b.port_seed = 2;
  const auto sa = compile(g, model::kIAalpha, a);
  const auto sb = compile(g, model::kIAalpha, b);
  // Same sizes, different contents (different port permutations).
  EXPECT_EQ(sa->space().total_bits(), sb->space().total_bits());
  model::MessageHeader h;
  bool any_difference = false;
  for (graph::NodeId v = 1; v < 48 && !any_difference; ++v) {
    any_difference = sa->next_hop(0, v, h) != sb->next_hop(0, v, h);
  }
  // With random ports the routed edges coincide; what differs is the port
  // numbering inside the bits — compare serialized tables instead.
  const auto* fa = dynamic_cast<const FullTableScheme*>(sa.get());
  const auto* fb = dynamic_cast<const FullTableScheme*>(sb.get());
  ASSERT_NE(fa, nullptr);
  ASSERT_NE(fb, nullptr);
  bool bits_differ = false;
  for (graph::NodeId u = 0; u < 48 && !bits_differ; ++u) {
    bits_differ = !(fa->function_bits(u) == fb->function_bits(u));
  }
  EXPECT_TRUE(bits_differ);
}

}  // namespace
}  // namespace optrt::schemes
