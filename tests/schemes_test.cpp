// Behavioural tests for every routing scheme: all-pairs delivery, stretch
// bounds (Theorems 1–5), and label/space semantics — on certified random
// graphs and on the structured generators.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/errors.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hub.hpp"
#include "schemes/interval.hpp"
#include "schemes/neighbor_label.hpp"
#include "schemes/routing_center.hpp"
#include "schemes/sequential_search.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;
using model::verify_scheme;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

struct Instance {
  std::size_t n;
  std::uint64_t seed;
};

class OnCertifiedGraphs : public ::testing::TestWithParam<Instance> {};

TEST_P(OnCertifiedGraphs, CompactDiam2IsShortestPath_ModelII) {
  const auto [n, seed] = GetParam();
  const Graph g = certified(n, seed);
  const CompactDiam2Scheme scheme(g, {});
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);  // Theorem 1: shortest path
}

TEST_P(OnCertifiedGraphs, CompactDiam2IsShortestPath_ModelIB) {
  const auto [n, seed] = GetParam();
  const Graph g = certified(n, seed);
  CompactDiam2Scheme::Options opt;
  opt.neighbors_known = false;
  const CompactDiam2Scheme scheme(g, opt);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);
}

TEST_P(OnCertifiedGraphs, NeighborLabelIsShortestPath) {
  const auto [n, seed] = GetParam();
  const Graph g = certified(n, seed);
  const NeighborLabelScheme scheme(g);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);  // Theorem 2
}

TEST_P(OnCertifiedGraphs, RoutingCenterStretchAtMost1_5) {
  const auto [n, seed] = GetParam();
  const Graph g = certified(n, seed);
  const RoutingCenterScheme scheme(g);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 1.5);  // Theorem 3
}

TEST_P(OnCertifiedGraphs, HubStretchAtMost2) {
  const auto [n, seed] = GetParam();
  const Graph g = certified(n, seed);
  const HubScheme scheme(g);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 2.0);  // Theorem 4
}

TEST_P(OnCertifiedGraphs, SequentialSearchStretchLogarithmic) {
  const auto [n, seed] = GetParam();
  const Graph g = certified(n, seed);
  const SequentialSearchScheme scheme(g);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  // Theorem 5: ≤ 2(c+3) log n edges for distance-2 targets ⇒ stretch
  // ≤ (c+3) log n with c = 3.
  EXPECT_LE(result.max_stretch, 6.0 * std::log2(static_cast<double>(n)));
}

TEST_P(OnCertifiedGraphs, FullTableIsShortestPath) {
  const auto [n, seed] = GetParam();
  const Graph g = certified(n, seed);
  const FullTableScheme scheme = FullTableScheme::standard(g);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);
}

TEST_P(OnCertifiedGraphs, FullInformationMatchesTrueSuccessorSets) {
  const auto [n, seed] = GetParam();
  const Graph g = certified(n, seed);
  const FullInformationScheme scheme = FullInformationScheme::standard(g);
  EXPECT_TRUE(verify_scheme(g, scheme).ok());
  const auto check = model::verify_full_information(g, scheme);
  EXPECT_TRUE(check.exact) << check.mismatched_pairs << " mismatches";
}

TEST_P(OnCertifiedGraphs, IntervalTreeDeliversEverything) {
  const auto [n, seed] = GetParam();
  const Graph g = certified(n, seed);
  const IntervalRoutingScheme scheme(g);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.max_stretch, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OnCertifiedGraphs,
                         ::testing::Values(Instance{32, 1}, Instance{48, 2},
                                           Instance{64, 3}, Instance{96, 4},
                                           Instance{128, 5}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// --- Structured graphs -------------------------------------------------------

TEST(FullTable, ShortestPathOnChainGridRing) {
  for (const Graph& g :
       {graph::chain(17), graph::grid(4, 5), graph::ring(12)}) {
    const FullTableScheme scheme = FullTableScheme::standard(g);
    const auto result = verify_scheme(g, scheme);
    EXPECT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);
  }
}

TEST(FullTable, WorksUnderAdversarialPortsAndPermutedLabels) {
  Rng rng(9);
  const Graph g = graph::random_gnp(40, 0.3, rng);
  Rng prng(10);
  auto ports = graph::PortAssignment::random(g, prng);
  std::vector<graph::NodeId> perm(40);
  for (graph::NodeId i = 0; i < 40; ++i) perm[i] = (i * 7 + 3) % 40;
  const FullTableScheme scheme(g, std::move(ports),
                               graph::Labeling::permutation(perm),
                               model::kIAbeta);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);
}

TEST(FullInformation, ExactOnStructuredGraphs) {
  for (const Graph& g :
       {graph::star(9), graph::grid(3, 4), graph::ring(9)}) {
    const FullInformationScheme scheme = FullInformationScheme::standard(g);
    EXPECT_TRUE(model::verify_full_information(g, scheme).exact);
  }
}

TEST(IntervalTree, StretchOneOnTrees) {
  // On a tree the spanning tree is the graph: interval routing is optimal.
  const Graph g = graph::star(15);
  const IntervalRoutingScheme scheme(g);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);

  const Graph c = graph::chain(15);
  const IntervalRoutingScheme chain_scheme(c);
  const auto chain_result = verify_scheme(c, chain_scheme);
  EXPECT_TRUE(chain_result.ok());
  EXPECT_DOUBLE_EQ(chain_result.max_stretch, 1.0);
}

TEST(IntervalTree, RelabelsByDfsPreorder) {
  const Graph g = graph::chain(5);
  const IntervalRoutingScheme scheme(g);
  // A chain rooted at 0 gets preorder labels equal to positions.
  for (graph::NodeId u = 0; u < 5; ++u) EXPECT_EQ(scheme.label_of(u), u);
}

TEST(IntervalTree, ThrowsOnDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_THROW(IntervalRoutingScheme{g}, SchemeInapplicable);
}

TEST(CompactDiam2, ThrowsOnChain) {
  EXPECT_THROW(CompactDiam2Scheme(graph::chain(8), {}), SchemeInapplicable);
}

TEST(NeighborLabel, ThrowsOnRing) {
  EXPECT_THROW(NeighborLabelScheme{graph::ring(8)}, SchemeInapplicable);
}

TEST(Hub, WorksOnStar) {
  // Star has diameter 2; hub scheme with the centre as hub is exact.
  const Graph g = graph::star(12);
  const HubScheme scheme(g, /*hub=*/0);
  const auto result = verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 2.0);
}

TEST(RoutingCenter, CentersIncludeHubCover) {
  const Graph g = certified(64, 7);
  const RoutingCenterScheme scheme(g, 0);
  EXPECT_FALSE(scheme.centers().empty());
  // All centers must be node 0 or adjacent to node 0.
  for (graph::NodeId b : scheme.centers()) {
    EXPECT_TRUE(b == 0 || g.has_edge(0, b));
  }
}

TEST(SequentialSearch, RouteVisitsProbesInLeastOrder) {
  const Graph g = certified(48, 8);
  const SequentialSearchScheme scheme(g);
  // Pick a non-adjacent pair and walk manually, checking the probe pattern.
  graph::NodeId src = 0, dst = 0;
  for (graph::NodeId v = 1; v < 48; ++v) {
    if (!g.has_edge(0, v)) {
      dst = v;
      break;
    }
  }
  ASSERT_NE(dst, 0u);
  model::MessageHeader header;
  graph::NodeId at = src;
  std::size_t hops = 0;
  while (at != dst && hops < 200) {
    const graph::NodeId nxt = scheme.next_hop(at, dst, header);
    ASSERT_TRUE(g.has_edge(at, nxt));
    header.came_from = at;
    at = nxt;
    ++hops;
  }
  EXPECT_EQ(at, dst);
  // Each failed probe costs 2 edges; total edges is odd: 2·fails + 2 or 1.
  EXPECT_LE(hops, 2u * g.neighbors(src).size());
}

TEST(Schemes, NamesAndModelsAreStable) {
  const Graph g = certified(32, 11);
  EXPECT_EQ(CompactDiam2Scheme(g, {}).name(), "compact-diam2");
  EXPECT_EQ(NeighborLabelScheme(g).name(), "neighbor-label");
  EXPECT_EQ(NeighborLabelScheme(g).routing_model(), model::kIIgamma);
  EXPECT_EQ(RoutingCenterScheme(g).name(), "routing-center");
  EXPECT_EQ(HubScheme(g).name(), "hub");
  EXPECT_EQ(SequentialSearchScheme(g).name(), "sequential-search");
  EXPECT_EQ(FullTableScheme::standard(g).name(), "full-table");
  EXPECT_EQ(FullInformationScheme::standard(g).name(), "full-information");
}

}  // namespace
}  // namespace optrt::schemes
