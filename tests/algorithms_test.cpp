// Shortest-path machinery tests: BFS, distance matrices, successor sets.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace optrt::graph {
namespace {

TEST(Bfs, ChainDistancesAreLinear) {
  const Graph g = chain(6);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, DisconnectedIsUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, RingDistanceWrapsAround) {
  const Graph g = ring(8);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[7], 1u);
  EXPECT_EQ(dist[5], 3u);
}

TEST(DistanceMatrixTest, SymmetricAndZeroDiagonal) {
  Rng rng(9);
  const Graph g = random_gnp(40, 0.2, rng);
  const DistanceMatrix dist(g);
  for (NodeId u = 0; u < 40; ++u) {
    EXPECT_EQ(dist.at(u, u), 0u);
    for (NodeId v = 0; v < 40; ++v) EXPECT_EQ(dist.at(u, v), dist.at(v, u));
  }
}

TEST(DistanceMatrixTest, TriangleInequality) {
  Rng rng(10);
  const Graph g = random_gnp(30, 0.3, rng);
  const DistanceMatrix dist(g);
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = 0; v < 30; ++v) {
      for (NodeId w = 0; w < 30; ++w) {
        if (dist.at(u, w) == kUnreachable || dist.at(w, v) == kUnreachable ||
            dist.at(u, v) == kUnreachable) {
          continue;
        }
        EXPECT_LE(dist.at(u, v), dist.at(u, w) + dist.at(w, v));
      }
    }
  }
}

TEST(DistanceMatrixTest, DiameterOfKnownGraphs) {
  EXPECT_EQ(DistanceMatrix(chain(10)).diameter(), 9u);
  EXPECT_EQ(DistanceMatrix(complete(10)).diameter(), 1u);
  EXPECT_EQ(DistanceMatrix(star(10)).diameter(), 2u);
  EXPECT_EQ(DistanceMatrix(ring(10)).diameter(), 5u);
}

TEST(DistanceMatrixTest, DisconnectedDiameterIsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const DistanceMatrix dist(g);
  EXPECT_EQ(dist.diameter(), kUnreachable);
  EXPECT_FALSE(dist.connected());
}

TEST(DistanceMatrixTest, RandomDiameterTwo) {
  Rng rng(12);
  const Graph g = random_uniform(128, rng);
  EXPECT_EQ(DistanceMatrix(g).diameter(), 2u);  // Lemma 2 behaviour
}

class SuccessorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SuccessorProperty, SuccessorsDecreaseDistanceByExactlyOne) {
  Rng rng(GetParam());
  const Graph g = random_gnp(36, 0.15, rng);
  const DistanceMatrix dist(g);
  for (NodeId u = 0; u < 36; ++u) {
    for (NodeId v = 0; v < 36; ++v) {
      const auto succ = shortest_path_successors(g, dist, u, v);
      if (u == v || dist.at(u, v) == kUnreachable) {
        EXPECT_TRUE(succ.empty());
        continue;
      }
      EXPECT_FALSE(succ.empty());  // some neighbour always advances
      for (NodeId s : succ) {
        EXPECT_TRUE(g.has_edge(u, s));
        EXPECT_EQ(dist.at(s, v) + 1, dist.at(u, v));
      }
      // Completeness: every advancing neighbour is listed.
      for (NodeId s : g.neighbors(u)) {
        if (dist.at(s, v) + 1 == dist.at(u, v)) {
          EXPECT_TRUE(std::find(succ.begin(), succ.end(), s) != succ.end());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuccessorProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Connectivity, DetectsComponents) {
  EXPECT_TRUE(is_connected(chain(5)));
  EXPECT_TRUE(is_connected(complete(5)));
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
}

}  // namespace
}  // namespace optrt::graph
