// Proof-codec tests for Lemmas 1–3: exact round trips and the advertised
// savings on structured graphs, plus the absence of witnesses on certified
// random graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "graph/encoding.hpp"
#include "graph/generators.hpp"
#include "incompressibility/lemma_codecs.hpp"

namespace optrt::incompress {
namespace {

using graph::Graph;
using graph::Rng;

// --- Lemma 1 -----------------------------------------------------------------

class Lemma1RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1RoundTrip, DecodesExactly) {
  Rng rng(GetParam());
  const Graph g = graph::random_uniform(48, rng);
  for (NodeId u : {NodeId{0}, NodeId{17}, NodeId{47}}) {
    const Description d = lemma1_encode(g, u);
    EXPECT_EQ(lemma1_decode(d.bits, 48), g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1RoundTrip, ::testing::Values(1, 2, 3, 4));

TEST(Lemma1, StarCenterCompressesMassively) {
  // The centre of a star has degree n−1: its row costs ~log n instead of
  // n−1 bits.
  const std::size_t n = 128;
  const Description d = lemma1_encode(graph::star(n), 0);
  EXPECT_EQ(lemma1_decode(d.bits, n), graph::star(n));
  EXPECT_GT(d.savings(), static_cast<std::ptrdiff_t>(n - 40));
}

TEST(Lemma1, RandomGraphDoesNotCompress) {
  // Balanced degrees: the ensemble index costs ≈ n − ½log n bits — the
  // codec's overhead (node id, weight field) eats the slack.
  Rng rng(5);
  const Graph g = graph::random_uniform(256, rng);
  const NodeId u = most_deviant_node(g);
  const Description d = lemma1_encode(g, u);
  EXPECT_EQ(lemma1_decode(d.bits, 256), g);
  // Savings bounded by the Chernoff exponent of the certificate bound:
  // far below the ~n/2 a star would give.
  EXPECT_LT(d.savings(), 64);
}

TEST(Lemma1, MostDeviantNodeFindsTheHub) {
  EXPECT_EQ(most_deviant_node(graph::star(32)), 0u);
}

TEST(Lemma1, SavingsMatchChernoffShape) {
  // Plant one node of degree ≈ n/4 into an otherwise balanced graph: the
  // proof predicts savings ≈ k²/(n−1)·log e − O(log n) for deviation k.
  const std::size_t n = 256;
  Rng rng(6);
  Graph g = graph::random_uniform(n, rng);
  // Rebuild node 0's row with only every 4th neighbour kept is not
  // possible in-place; instead encode a low-degree node of a sparse graph.
  Rng rng2(7);
  const Graph sparse = graph::random_gnp(n, 0.25, rng2);
  const NodeId u = most_deviant_node(sparse);
  const double k =
      std::abs(static_cast<double>(sparse.degree(u)) - (n - 1) / 2.0);
  const double predicted = k * k / (n - 1.0) * std::log2(std::exp(1.0));
  const Description d = lemma1_encode(sparse, u);
  EXPECT_EQ(lemma1_decode(d.bits, n), sparse);
  EXPECT_GT(static_cast<double>(d.savings()), predicted / 2.0);
  (void)g;
}

// --- Lemma 2 -----------------------------------------------------------------

TEST(Lemma2, CertifiedGraphsHaveNoWitness) {
  Rng rng(8);
  const Graph g = core::certified_random_graph(96, rng);
  EXPECT_FALSE(find_distant_pair(g).has_value());
}

TEST(Lemma2, ChainWitnessRoundTripsAndSaves) {
  const Graph g = graph::chain(64);
  const auto pair = find_distant_pair(g);
  ASSERT_TRUE(pair.has_value());
  const auto [u, v] = *pair;
  const Description d = lemma2_encode(g, u, v);
  EXPECT_EQ(lemma2_decode(d.bits, 64), g);
  // Savings = deg(u) − 2·log n.
  const std::ptrdiff_t expected =
      static_cast<std::ptrdiff_t>(g.degree(u)) - 12;
  EXPECT_EQ(d.savings(), expected);
}

TEST(Lemma2, DenseDistantPairSavesDegreeBits) {
  // Two cliques joined by a long path: high-degree witness, big savings.
  const std::size_t half = 32;
  Graph g(2 * half + 2);
  for (NodeId a = 0; a < half; ++a) {
    for (NodeId b = a + 1; b < half; ++b) g.add_edge(a, b);
  }
  for (NodeId a = half; a < 2 * half; ++a) {
    for (NodeId b = a + 1; b < 2 * half; ++b) g.add_edge(a, b);
  }
  g.add_edge(0, 2 * half);
  g.add_edge(2 * half, 2 * half + 1);
  g.add_edge(2 * half + 1, half);
  const auto pair = find_distant_pair(g);
  ASSERT_TRUE(pair.has_value());
  const Description d = lemma2_encode(g, pair->first, pair->second);
  EXPECT_EQ(lemma2_decode(d.bits, g.node_count()), g);
  EXPECT_GT(d.savings(), 10);
}

TEST(Lemma2, RejectsNonWitness) {
  const Graph g = graph::star(8);  // diameter 2
  EXPECT_THROW(lemma2_encode(g, 1, 2), std::invalid_argument);
}

// --- Lemma 3 -----------------------------------------------------------------

TEST(Lemma3, CertifiedGraphsHaveNoViolationAtBound) {
  Rng rng(9);
  const std::size_t n = 96;
  const Graph g = core::certified_random_graph(n, rng);
  const auto prefix = static_cast<std::size_t>(
      std::ceil(6.0 * std::log2(static_cast<double>(n))));
  EXPECT_FALSE(find_cover_violation(g, prefix).has_value());
}

TEST(Lemma3, RingViolatesAndRoundTrips) {
  const std::size_t n = 64;
  const Graph g = graph::ring(n);
  const std::size_t prefix = 2;  // both neighbours still cover only ±2
  const auto witness = find_cover_violation(g, prefix);
  ASSERT_TRUE(witness.has_value());
  const auto [u, w] = *witness;
  const Description d = lemma3_encode(g, u, w, prefix);
  EXPECT_EQ(lemma3_decode(d.bits, n, prefix), g);
  // Savings = prefix − 2 log n = 2 − 12 < 0: a ring is cheap to describe
  // anyway, but the codec must still be exact.
  EXPECT_EQ(d.savings(), static_cast<std::ptrdiff_t>(prefix) - 12);
}

TEST(Lemma3, LargePrefixWitnessSaves) {
  // A graph where node 0 has many neighbours yet some node is uncovered:
  // two dense clusters bridged by one edge.
  const std::size_t n = 80;
  Graph g(n);
  // Cluster A: 0..39 complete; cluster B: 40..79 complete; bridge 39–40.
  for (NodeId a = 0; a < 40; ++a) {
    for (NodeId b = a + 1; b < 40; ++b) g.add_edge(a, b);
  }
  for (NodeId a = 40; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  g.add_edge(39, 40);
  const std::size_t prefix = 30;
  // Witness: u = 0 (neighbours 1..39), w = 41: only neighbour 39 reaches
  // cluster B and 39 is not among the first 30 least neighbours of 0.
  const Description d = lemma3_encode(g, 0, 41, prefix);
  EXPECT_EQ(lemma3_decode(d.bits, n, prefix), g);
  EXPECT_EQ(d.savings(),
            static_cast<std::ptrdiff_t>(prefix) - 2 * 7);  // log₂ 80 → 7
}

TEST(Lemma3, RejectsNonWitness) {
  Rng rng(10);
  const Graph g = core::certified_random_graph(64, rng);
  // Node 1 is covered by the full neighbour prefix of node 0 — encoding
  // with a large prefix must be rejected.
  const auto prefix = static_cast<std::size_t>(
      std::ceil(6.0 * std::log2(64.0)));
  for (NodeId w = 0; w < 64; ++w) {
    if (w == 0 || g.has_edge(0, w)) continue;
    EXPECT_THROW(lemma3_encode(g, 0, w, prefix), std::invalid_argument);
    break;
  }
}

TEST(Descriptions, SavingsArithmetic) {
  Description d;
  d.bits = bitio::BitVector(100);
  d.original_bits = 120;
  EXPECT_EQ(d.savings(), 20);
  d.original_bits = 80;
  EXPECT_EQ(d.savings(), -20);
}

}  // namespace
}  // namespace optrt::incompress
