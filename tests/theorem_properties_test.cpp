// Sharp theorem-level properties beyond "stretch bounded": the exact route
// structures the constructions promise.
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "graph/cover.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/hub.hpp"
#include "schemes/neighbor_label.hpp"
#include "schemes/routing_center.hpp"
#include "schemes/sequential_search.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

TEST(SharpProperties, CompactRoutesViaTheLeastIntermediary) {
  // Theorem 1's first table stores "the unary representation of the LEAST
  // intermediate node": the hop must be the least center covering the
  // destination under the least-neighbour order — i.e. the least
  // neighbour of u adjacent to w among the cover prefix.
  const Graph g = certified(64, 3001);
  const CompactDiam2Scheme scheme(g, {});
  for (graph::NodeId u = 0; u < 16; ++u) {
    const graph::NeighborCover cover = graph::least_neighbor_cover(g, u);
    for (graph::NodeId w = 0; w < 64; ++w) {
      if (w == u || g.has_edge(u, w)) continue;
      model::MessageHeader h;
      const graph::NodeId hop = scheme.next_hop(u, w, h);
      EXPECT_EQ(hop, cover.centers[cover.coverer[w]]);
    }
  }
}

TEST(SharpProperties, RoutingCenterStretchValuesAreOnlyOneOrOneAndAHalf) {
  // On diameter-2 graphs a stretch-<2 scheme can only realize 1 or 1.5
  // (footnote 5).
  const Graph g = certified(96, 3002);
  const RoutingCenterScheme scheme(g);
  const graph::DistanceMatrix dist(g);
  std::set<double> observed;
  for (graph::NodeId u = 0; u < 96; ++u) {
    for (graph::NodeId v = 0; v < 96; ++v) {
      if (u == v) continue;
      const std::size_t edges = model::route_once(g, scheme, u, v, 0);
      ASSERT_GT(edges, 0u);
      observed.insert(static_cast<double>(edges) / dist.at(u, v));
    }
  }
  for (double s : observed) {
    EXPECT_TRUE(s == 1.0 || s == 1.5) << s;
  }
}

TEST(SharpProperties, HubRouteShapes) {
  // Theorem 4's routes: direct (1 edge), or ≤ 2 to the hub's side plus ≤ 2
  // down — length ∈ {1, 2, 3, 4} with stretch ≤ 2.
  const Graph g = certified(96, 3003);
  const HubScheme scheme(g);
  const graph::DistanceMatrix dist(g);
  for (graph::NodeId u = 0; u < 96; ++u) {
    for (graph::NodeId v = 0; v < 96; ++v) {
      if (u == v) continue;
      const std::size_t edges = model::route_once(g, scheme, u, v, 0);
      ASSERT_GE(edges, dist.at(u, v));
      ASSERT_LE(edges, 4u);
      ASSERT_LE(edges, 2u * dist.at(u, v));
    }
  }
}

TEST(SharpProperties, SequentialSearchProbesAscendLeastNeighbors) {
  // Theorem 5: the walk visits v₁, v₂, … in increasing least-neighbour
  // order until one is adjacent to the destination.
  const Graph g = certified(64, 3004);
  const SequentialSearchScheme scheme(g);
  for (graph::NodeId u = 0; u < 8; ++u) {
    for (graph::NodeId w = 0; w < 64; ++w) {
      if (w == u || g.has_edge(u, w)) continue;
      // Predict the probe count: first neighbour index adjacent to w.
      const auto nbrs = g.neighbors(u);
      std::size_t first = nbrs.size();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (g.has_edge(nbrs[i], w)) {
          first = i;
          break;
        }
      }
      ASSERT_LT(first, nbrs.size());
      // Each failed probe costs 2 edges; the successful one costs 2.
      const std::size_t edges = model::route_once(g, scheme, u, w, 0);
      EXPECT_EQ(edges, 2 * first + 2);
    }
  }
}

TEST(SharpProperties, NeighborLabelSecondHopIsAlwaysFinal) {
  // Theorem 2's routes have length ≤ 2: direct, or via a cover member of
  // the destination.
  const Graph g = certified(64, 3005);
  const NeighborLabelScheme scheme(g);
  for (graph::NodeId u = 0; u < 64; ++u) {
    for (graph::NodeId v = 0; v < 64; ++v) {
      if (u == v) continue;
      EXPECT_LE(model::route_once(g, scheme, u, v, 0), 2u);
    }
  }
}

TEST(SharpProperties, RoutingCenterNonCentersAlwaysDeferToTheirCenter) {
  const Graph g = certified(64, 3006);
  const RoutingCenterScheme scheme(g);
  std::set<graph::NodeId> centers(scheme.centers().begin(),
                                  scheme.centers().end());
  for (graph::NodeId v = 0; v < 64; ++v) {
    if (centers.contains(v)) continue;
    // For any non-adjacent destination, v's hop is one fixed center.
    graph::NodeId fixed = static_cast<graph::NodeId>(-1);
    for (graph::NodeId w = 0; w < 64; ++w) {
      if (w == v || g.has_edge(v, w)) continue;
      model::MessageHeader h;
      const graph::NodeId hop = scheme.next_hop(v, w, h);
      EXPECT_TRUE(centers.contains(hop));
      if (fixed == static_cast<graph::NodeId>(-1)) fixed = hop;
      EXPECT_EQ(hop, fixed);
    }
  }
}

}  // namespace
}  // namespace optrt::schemes
