// Churn chaos harness: a seeded sweep over {scheme kind} × {churn model}
// × {churn rate} × {seed} cells, each replaying a full churn session.
// Every cell must end in a definite, typed state: `certified` (all
// quiesce oracle checks passed and the final scheme additionally passes
// the full routing verifier — stretch-bounded for TZ), or `stale` (the
// scheme is inapplicable for the final topology, with fresh-build parity
// established by the oracle). A `mismatch` anywhere fails the sweep.
// The per-cell serialized report lines are compared across 1 and 8
// oracle threads — the chaos layer's determinism contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/optrt.hpp"
#include "net/churn.hpp"
#include "schemes/errors.hpp"
#include "schemes/repair.hpp"

namespace optrt {
namespace {

using graph::Graph;
using graph::TopologyFamily;

Graph connected_member(const TopologyFamily& family, std::size_t n,
                       std::uint64_t base) {
  for (std::uint64_t seed = base;; ++seed) {
    Graph g = family.make(n, seed);
    if (graph::is_connected(g)) return g;
  }
}

/// One serialized report row — every field deterministic, so rows must be
/// string-identical across oracle thread counts.
std::string report_line(const std::string& cell, const net::ChurnReport& r) {
  std::ostringstream os;
  os << cell << " status=" << net::to_string(r.status)
     << " events=" << r.events_applied << " deltas=" << r.deltas_applied
     << " quiesce=" << r.quiesce_points << "/" << r.quiesce_mismatches
     << " work=" << r.repair.work() << " stale_sent=" << r.stale_sent
     << " delivered=" << r.traffic.delivered << "/" << r.traffic.sent
     << " hops=" << r.traffic.total_hops;
  return os.str();
}

TEST(ChurnChaos, EveryCellEndsCertifiedOrTyped) {
  struct Cell {
    const char* kind;
    const char* family;
  };
  // compact-diam2 only exists on the dense family; full-table and TZ run
  // everywhere.
  const Cell cells[] = {
      {"full-table", "uniform"}, {"compact-diam2", "uniform"},
      {"tz", "uniform"},         {"full-table", "ba:2"},
      {"tz", "ba:2"},
  };
  const net::FaultModel models[] = {net::FaultModel::kUniform,
                                    net::FaultModel::kTargeted,
                                    net::FaultModel::kPartition};
  const std::uint64_t gaps[] = {1, 4};  // churn rate: frantic vs relaxed
  const std::uint64_t seeds[] = {1, 2};

  std::vector<std::string> lines[2];  // [0]: 1 thread, [1]: 8 threads
  std::size_t certified = 0;
  std::size_t stale = 0;

  for (const Cell& cell : cells) {
    const Graph g =
        connected_member(TopologyFamily::parse(cell.family), 18, 13);
    for (const net::FaultModel model : models) {
      for (const std::uint64_t gap : gaps) {
        for (const std::uint64_t seed : seeds) {
          const std::string name = std::string(cell.kind) + "/" +
                                   cell.family + "/" +
                                   net::to_string(model) + "/g" +
                                   std::to_string(gap) + "/s" +
                                   std::to_string(seed);
          SCOPED_TRACE(name);
          net::ChurnOptions copt;
          copt.seed = seed;
          copt.model = model;
          copt.events = 12;
          copt.mean_gap = gap;
          copt.quiesce_every = 4;
          const net::ChurnPlan plan = net::make_churn_plan(g, copt);

          for (const std::size_t pass : {0u, 1u}) {
            auto rs = schemes::make_repairable(cell.kind, g, 7);
            net::ChurnSessionConfig cfg;
            cfg.threads = pass == 0 ? 1 : 8;
            cfg.messages = 24;
            const net::ChurnReport r = net::run_churn_session(*rs, plan, cfg);

            // Typed terminal state: never a mismatch, never unverified.
            ASSERT_NE(r.status, net::ChurnStatus::kMismatch)
                << r.first_mismatch;
            ASSERT_NE(r.status, net::ChurnStatus::kUnverified);
            lines[pass].push_back(report_line(name, r));
            if (pass != 0) continue;

            if (r.status == net::ChurnStatus::kCertified) {
              ++certified;
              // Certification is end-to-end: the final scheme must also
              // pass the full routing verifier on the final topology —
              // stretch ≤ 3 for TZ, exact delivery for the rest.
              const Graph& live = rs->topology();
              if (std::string(cell.kind) == "tz") {
                const auto v =
                    model::verify_scheme_stretch(live, rs->scheme(), 3.0);
                EXPECT_TRUE(v.ok()) << name;
              } else {
                const auto v = model::verify_scheme(live, rs->scheme());
                EXPECT_TRUE(v.ok()) << name;
              }
            } else {
              ++stale;
              EXPECT_FALSE(rs->available());
            }
          }
        }
      }
    }
  }

  // Determinism across oracle thread counts: identical serialized rows.
  ASSERT_EQ(lines[0].size(), lines[1].size());
  for (std::size_t i = 0; i < lines[0].size(); ++i) {
    EXPECT_EQ(lines[0][i], lines[1][i]);
  }
  // The sweep must actually exercise the happy path; connectivity-
  // preserving link churn keeps most cells certifiable.
  EXPECT_GT(certified, 0u);
  SUCCEED() << certified << " certified, " << stale << " stale";
}

TEST(ChurnChaos, NodeChurnDisconnectsAndRecoversWithTypedStatuses) {
  // Node churn deliberately drops connectivity preservation: TZ must ride
  // through disconnection as `stale` (fresh-build parity held by the
  // oracle) and full-table — which exists on any topology — must stay
  // certified throughout.
  const Graph g = connected_member(TopologyFamily::parse("ba:2"), 16, 3);
  for (const char* kind : {"full-table", "tz"}) {
    SCOPED_TRACE(kind);
    net::ChurnOptions copt;
    copt.model = net::FaultModel::kNodes;
    copt.events = 10;
    copt.mean_gap = 2;
    copt.quiesce_every = 2;
    copt.max_down = 2;
    const net::ChurnPlan plan = net::make_churn_plan(g, copt);
    auto rs = schemes::make_repairable(kind, g, 5);
    net::ChurnSessionConfig cfg;
    cfg.messages = 24;
    const net::ChurnReport r = net::run_churn_session(*rs, plan, cfg);
    ASSERT_NE(r.status, net::ChurnStatus::kMismatch) << r.first_mismatch;
    if (std::string(kind) == "full-table") {
      EXPECT_EQ(r.status, net::ChurnStatus::kCertified);
    }
  }
}

}  // namespace
}  // namespace optrt
