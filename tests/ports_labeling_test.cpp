// Port-assignment (§1 models IA/IB) and labelling (α/β/γ) tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "graph/ports.hpp"

namespace optrt::graph {
namespace {

TEST(Ports, SortedAssignmentMapsRankToPort) {
  Rng rng(1);
  const Graph g = random_gnp(30, 0.4, rng);
  const PortAssignment pa = PortAssignment::sorted(g);
  for (NodeId u = 0; u < 30; ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(pa.neighbor_at(u, static_cast<PortId>(i)), nbrs[i]);
      EXPECT_EQ(pa.port_of(u, nbrs[i]), i);
      EXPECT_EQ(pa.port_of_rank(u, i), i);
    }
  }
}

TEST(Ports, RandomAssignmentIsAPermutation) {
  Rng rng(2);
  const Graph g = random_gnp(30, 0.4, rng);
  Rng prng(3);
  const PortAssignment pa = PortAssignment::random(g, prng);
  for (NodeId u = 0; u < 30; ++u) {
    const auto nbrs = g.neighbors(u);
    std::vector<NodeId> seen(pa.ports(u).begin(), pa.ports(u).end());
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::equal(seen.begin(), seen.end(), nbrs.begin(), nbrs.end()));
    // Inverse consistency.
    for (PortId p = 0; p < nbrs.size(); ++p) {
      EXPECT_EQ(pa.port_of(u, pa.neighbor_at(u, p)), p);
    }
  }
}

TEST(Ports, PortOfNonNeighborThrows) {
  const Graph g = chain(4);
  const PortAssignment pa = PortAssignment::sorted(g);
  EXPECT_THROW((void)pa.port_of(0, 2), std::invalid_argument);
}

TEST(Ports, FromPortMapsValidates) {
  const Graph g = chain(3);  // edges 0-1, 1-2
  // Node 1 has neighbours {0, 2}.
  EXPECT_NO_THROW(PortAssignment::from_port_maps(g, {{1}, {2, 0}, {1}}));
  // Wrong degree.
  EXPECT_THROW(PortAssignment::from_port_maps(g, {{1}, {2}, {1}}),
               std::invalid_argument);
  // Not a neighbour.
  EXPECT_THROW(PortAssignment::from_port_maps(g, {{2}, {2, 0}, {1}}),
               std::invalid_argument);
  // Duplicate.
  EXPECT_THROW(PortAssignment::from_port_maps(g, {{1}, {0, 0}, {1}}),
               std::invalid_argument);
}

TEST(Ports, SeededRandomIsReproducible) {
  Rng g1(7);
  const Graph g = random_gnp(20, 0.5, g1);
  Rng a(9), b(9);
  const PortAssignment pa = PortAssignment::random(g, a);
  const PortAssignment pb = PortAssignment::random(g, b);
  for (NodeId u = 0; u < 20; ++u) {
    const auto sa = pa.ports(u);
    const auto sb = pb.ports(u);
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()));
  }
}

TEST(Labeling, IdentityFixesEverything) {
  const Labeling l = Labeling::identity(10);
  for (NodeId u = 0; u < 10; ++u) {
    EXPECT_EQ(l.label_of(u), u);
    EXPECT_EQ(l.node_of(u), u);
  }
}

TEST(Labeling, PermutationInverts) {
  const Labeling l = Labeling::permutation({2, 0, 3, 1});
  EXPECT_EQ(l.label_of(0), 2u);
  EXPECT_EQ(l.node_of(2), 0u);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(l.node_of(l.label_of(u)), u);
}

TEST(Labeling, RejectsNonPermutations) {
  EXPECT_THROW(Labeling::permutation({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Labeling::permutation({0, 1, 3}), std::invalid_argument);
}

TEST(ArbitraryLabelsTest, TotalBitsSumsLengths) {
  ArbitraryLabels labels;
  labels.label_of_node.push_back(bitio::BitVector(10));
  labels.label_of_node.push_back(bitio::BitVector(0));
  labels.label_of_node.push_back(bitio::BitVector(25));
  EXPECT_EQ(labels.total_bits(), 35u);
}

}  // namespace
}  // namespace optrt::graph
