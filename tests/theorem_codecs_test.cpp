// Tests for the Theorem 6/7/8/10 description schemes: exact round trips and
// the implied per-node lower bounds (the paper's measured "shape").
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "incompressibility/bounds.hpp"
#include "incompressibility/theorem10.hpp"
#include "incompressibility/theorem6.hpp"
#include "incompressibility/theorem7.hpp"
#include "incompressibility/theorem8.hpp"
#include "schemes/full_table.hpp"

namespace optrt::incompress {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

// --- Theorem 6 ---------------------------------------------------------------

class Theorem6Suite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem6Suite, RoundTripsExactly) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 201);
  for (NodeId u : {NodeId{0}, static_cast<NodeId>(n / 2)}) {
    const Theorem6Result r = theorem6_encode(g, u);
    EXPECT_EQ(theorem6_decode(r.description.bits, n), g);
  }
}

TEST_P(Theorem6Suite, ImpliedLowerBoundIsNOverTwoMinusLogTerms) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 202);
  const Theorem6Result r = theorem6_encode(g, 0);
  // The deleted bits really are the non-neighbour count |A₀| ≈ (n−1)/2.
  const std::size_t non_neighbors = n - 1 - g.degree(0);
  EXPECT_EQ(r.deleted_edge_bits, non_neighbors);
  // Implied bound = |A₀| − O(log n) (node id + self-delimiting prefix):
  // the paper's n/2 − o(n), with the o(n) explicit here.
  const auto implied = r.implied_function_lower_bound();
  EXPECT_GE(implied,
            static_cast<std::ptrdiff_t>(non_neighbors) - 32);
  EXPECT_LE(implied, static_cast<std::ptrdiff_t>(non_neighbors));
  EXPECT_LE(static_cast<double>(implied), theorem6_per_node_bound(n) * 1.5);
}

TEST_P(Theorem6Suite, GreedyVariantAlsoRoundTrips) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 203);
  schemes::CompactNodeOptions opt;
  opt.greedy_cover = true;
  const Theorem6Result r = theorem6_encode(g, 3, opt);
  EXPECT_EQ(theorem6_decode(r.description.bits, n, opt), g);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem6Suite, ::testing::Values(48, 96, 160));

TEST(Theorem6, DescriptionIsSelfDelimited) {
  // Corrupting the function-length prefix must not silently round trip.
  const Graph g = certified(64, 204);
  const Theorem6Result r = theorem6_encode(g, 0);
  bitio::BitVector tampered = r.description.bits;
  // Flip a bit inside the stored F(u) region (right after id + row + len).
  tampered.set(6 + 63 + 20, !tampered.get(6 + 63 + 20));
  bool differs = false;
  try {
    differs = !(theorem6_decode(tampered, 64) == g);
  } catch (const std::exception&) {
    differs = true;
  }
  EXPECT_TRUE(differs);
}

// --- Theorem 7 (Claims 2 and 3) ----------------------------------------------

TEST(Claim2, HoldsOnHandPicked) {
  EXPECT_LE(claim2_sum({4, 4}), claim2_bound({4, 4}));        // 4 ≤ 6
  EXPECT_LE(claim2_sum({1, 1, 1}), claim2_bound({1, 1, 1}));  // 0 ≤ 0
  EXPECT_LE(claim2_sum({7}), claim2_bound({7}));              // 3 ≤ 6
}

class Claim2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Claim2Property, HoldsForRandomCompositions) {
  Rng rng(GetParam());
  // Random composition of n into k parts ≥ 1.
  const std::size_t n = 200;
  std::uniform_int_distribution<std::size_t> kd(1, 40);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t k = kd(rng);
    std::vector<std::size_t> xs(k, 1);
    std::uniform_int_distribution<std::size_t> pick(0, k - 1);
    for (std::size_t rest = n - k; rest > 0; --rest) ++xs[pick(rng)];
    EXPECT_LE(claim2_sum(xs), claim2_bound(xs));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Claim2Property, ::testing::Values(1, 2, 3));

TEST(Claim2, RejectsZeroParts) {
  EXPECT_THROW(claim2_sum({2, 0, 1}), std::invalid_argument);
}

class Claim3Suite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Claim3Suite, ReconstructsInterconnectionPattern) {
  const std::size_t n = 64;
  const Graph g = certified(n, GetParam());
  Rng prng(GetParam() + 100);
  const schemes::FullTableScheme scheme(
      g, graph::PortAssignment::random(g, prng),
      graph::Labeling::identity(n), model::kIAalpha);
  for (NodeId u = 0; u < 8; ++u) {
    const Claim3Encoding enc = claim3_encode(scheme, u);
    // Bound: the ranks cost at most (n−1) − d(u) bits (Claim 2).
    EXPECT_LE(enc.bits.size(), n - 1 - g.degree(u));
    // Decoding recovers the neighbour on every port exactly.
    const auto labels = claim3_decode(scheme, u, enc.bits);
    ASSERT_EQ(labels.size(), g.degree(u));
    for (graph::PortId p = 0; p < labels.size(); ++p) {
      EXPECT_EQ(labels[p], scheme.ports().neighbor_at(u, p));
    }
    // The per-port destination counts sum to n−1.
    std::size_t total = 0;
    for (std::size_t x : enc.per_port_destinations) total += x;
    EXPECT_EQ(total, n - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Claim3Suite, ::testing::Values(301, 302, 303));

TEST(Theorem7, InterconnectionInformationForcesFunctionBits) {
  // Claim 3: row (n−1 bits of information) ≤ |F(u)| + claim3 bits + o(n).
  // Measured: our full-table F(u) is huge, but the *deficit* n−1 −
  // claim3_bits is the floor any F must clear; check it is ≈ n/2.
  const std::size_t n = 128;
  const Graph g = certified(n, 305);
  const schemes::FullTableScheme scheme = schemes::FullTableScheme::standard(g);
  for (NodeId u = 0; u < 4; ++u) {
    const Claim3Encoding enc = claim3_encode(scheme, u);
    const double floor_bits =
        static_cast<double>(n - 1) - static_cast<double>(enc.bits.size());
    EXPECT_GE(floor_bits, static_cast<double>(g.degree(u)));  // Claim 2 form
  }
}

// --- Theorem 8 ---------------------------------------------------------------

class Theorem8Suite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem8Suite, RoutingFunctionDeterminesPortPermutation) {
  const std::size_t n = 96;
  const Graph g = certified(n, GetParam());
  Rng prng(GetParam() * 7 + 1);
  const schemes::FullTableScheme scheme(
      g, graph::PortAssignment::random(g, prng),
      graph::Labeling::identity(n), model::kIAalpha);
  for (NodeId u = 0; u < 6; ++u) {
    const auto nbrs = g.neighbors(u);
    const auto recovered = recover_port_permutation(
        scheme, u, {nbrs.begin(), nbrs.end()});
    ASSERT_EQ(recovered.size(), nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(recovered[i], scheme.ports().port_of(u, nbrs[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem8Suite, ::testing::Values(11, 12, 13));

TEST(Theorem8, TableMeetsTheCountingBound) {
  // |F(u)| = n·⌈log d⌉ must exceed log₂(d!) — the permutation content.
  const std::size_t n = 128;
  const Graph g = certified(n, 401);
  Rng prng(402);
  const schemes::FullTableScheme scheme(
      g, graph::PortAssignment::random(g, prng),
      graph::Labeling::identity(n), model::kIAalpha);
  const auto space = scheme.space();
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_GE(static_cast<double>(space.function_bits[u]),
              log2_factorial(g.degree(u)));
  }
}

TEST(Theorem8, Log2FactorialSanity) {
  EXPECT_DOUBLE_EQ(log2_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log2_factorial(1), 0.0);
  EXPECT_NEAR(log2_factorial(4), std::log2(24.0), 1e-9);
  // Stirling shape: log₂(d!) ≈ d log₂ d − d log₂ e.
  const double d = 512;
  EXPECT_NEAR(log2_factorial(512),
              d * std::log2(d) - d / std::log(2.0) + 0.5 * std::log2(2 * M_PI * d),
              1.0);
}

// --- Theorem 10 --------------------------------------------------------------

class Theorem10Suite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem10Suite, RoundTripsExactly) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 501);
  for (NodeId u : {NodeId{1}, static_cast<NodeId>(n - 1)}) {
    const Theorem10Result r = theorem10_encode(g, u);
    EXPECT_EQ(theorem10_decode(r.description.bits, n), g);
  }
}

TEST_P(Theorem10Suite, ImpliedBoundIsQuadratic) {
  const std::size_t n = GetParam();
  const Graph g = certified(n, 502);
  const Theorem10Result r = theorem10_encode(g, 0);
  const std::size_t d = g.degree(0);
  EXPECT_EQ(r.deleted_edge_bits, d * (n - 1 - d));
  const double implied = static_cast<double>(r.implied_function_lower_bound());
  // ≈ d(n−1−d) + (n−1) − log n ≈ n²/4.
  EXPECT_GE(implied, 0.8 * theorem10_per_node_bound(n));
  EXPECT_LE(implied, 1.3 * theorem10_per_node_bound(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem10Suite, ::testing::Values(48, 96, 144));

TEST(Theorem10, RejectsLargeDiameter) {
  EXPECT_THROW(theorem10_encode(graph::chain(16), 0), std::invalid_argument);
}

TEST(Theorem10, WorksOnStar) {
  const Graph g = graph::star(24);
  const Theorem10Result r = theorem10_encode(g, 5);  // a leaf
  EXPECT_EQ(theorem10_decode(r.description.bits, 24), g);
}

}  // namespace
}  // namespace optrt::incompress
