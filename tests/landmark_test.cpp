// Landmark (stretch-3, §1.2 related-work baseline) scheme tests: delivery
// and the stretch-<3 guarantee on arbitrary connected graphs, vicinity
// semantics, and the size regimes against Theorem 1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/errors.hpp"
#include "schemes/landmark.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;

class LandmarkFamilies : public ::testing::TestWithParam<int> {
 public:
  static Graph make(int which) {
    Rng rng(7);
    switch (which) {
      case 0:
        return graph::chain(40);
      case 1:
        return graph::ring(41);
      case 2:
        return graph::grid(6, 7);
      case 3:
        return graph::star(40);
      case 4:
        return graph::random_gnp(48, 0.15, rng);
      default:
        return core::certified_random_graph(64, rng);
    }
  }
};

TEST_P(LandmarkFamilies, DeliversWithStretchBelow3) {
  Graph g = make(GetParam());
  if (!graph::is_connected(g)) {
    // Sparse G(n,p) draws may disconnect; densify deterministically.
    Rng rng(8);
    g = graph::random_gnp(48, 0.3, rng);
  }
  const LandmarkScheme scheme(g);
  const auto result = model::verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_LE(result.max_stretch, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Families, LandmarkFamilies,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(Landmark, WorksWhereTheorem1DoesNot) {
  // The paper's constructions need diameter 2; landmark routing covers the
  // sparse regime.
  const Graph g = graph::chain(64);
  EXPECT_THROW(CompactDiam2Scheme(g, {}), SchemeInapplicable);
  const LandmarkScheme scheme(g);
  EXPECT_TRUE(model::verify_scheme(g, scheme).ok());
}

TEST(Landmark, NearestLandmarkIsNearest) {
  Rng rng(9);
  const Graph g = core::certified_random_graph(96, rng);
  const LandmarkScheme scheme(g);
  const graph::DistanceMatrix dist(g);
  for (graph::NodeId v = 0; v < 96; ++v) {
    const graph::NodeId l = scheme.landmark_of(v);
    for (graph::NodeId other : scheme.landmarks()) {
      EXPECT_LE(dist.at(v, l), dist.at(v, other));
    }
  }
}

TEST(Landmark, LandmarksAreInEveryVicinityOfTheirChildren) {
  // v's nearest landmark always has v in its vicinity (the handoff anchor).
  Rng rng(10);
  const Graph g = core::certified_random_graph(64, rng);
  const LandmarkScheme scheme(g);
  const graph::DistanceMatrix dist(g);
  for (graph::NodeId v = 0; v < 64; ++v) {
    const graph::NodeId l = scheme.landmark_of(v);
    if (l == v) continue;
    // d(l, v) ≤ d(v, l(v)) trivially, so v ∈ C(l).
    EXPECT_LE(dist.at(l, v), dist.at(v, scheme.landmark_of(v)));
  }
}

TEST(Landmark, CustomLandmarkCount) {
  Rng rng(11);
  const Graph g = core::certified_random_graph(64, rng);
  LandmarkScheme::Options opt;
  opt.landmark_count = 4;
  const LandmarkScheme scheme(g, opt);
  EXPECT_EQ(scheme.landmarks().size(), 4u);
  EXPECT_TRUE(model::verify_scheme(g, scheme).ok());
}

TEST(Landmark, LabelBitsChargedUnderGamma) {
  Rng rng(12);
  const Graph g = core::certified_random_graph(64, rng);
  const LandmarkScheme scheme(g);
  const auto space = scheme.space();
  EXPECT_EQ(space.label_bits, 64u * 2 * 6);  // (v, l(v)) at ⌈log n⌉ each
  EXPECT_GT(space.total_function_bits(), 0u);
}

TEST(Landmark, DenseGraphsFavorTheorem1SparseFavorLandmarks) {
  // The §1.2 crossover in miniature.
  Rng rng(13);
  const Graph dense = core::certified_random_graph(96, rng);
  const LandmarkScheme lm_dense(dense);
  const CompactDiam2Scheme compact(dense, {});
  EXPECT_GT(lm_dense.space().total_bits(), compact.space().total_bits());

  // Sparse: a grid. Theorem 1 cannot run; landmark tables stay near-linear.
  const Graph sparse = graph::grid(10, 10);
  const LandmarkScheme lm_sparse(sparse);
  const double n = 100;
  EXPECT_LT(static_cast<double>(lm_sparse.space().total_bits()),
            n * n * std::log2(n) / 2);  // well below full-table territory
}

TEST(Landmark, VicinityRuleMatchesDefinition) {
  Rng rng(14);
  const Graph g = graph::grid(5, 5);
  const LandmarkScheme scheme(g);
  const graph::DistanceMatrix dist(g);
  for (graph::NodeId w = 0; w < 25; ++w) {
    std::size_t expected = 0;
    for (graph::NodeId v = 0; v < 25; ++v) {
      if (v != w && dist.at(w, v) <= dist.at(v, scheme.landmark_of(v))) {
        ++expected;
      }
    }
    EXPECT_EQ(scheme.vicinity_size(w), expected);
  }
}

TEST(Landmark, ThrowsOnDisconnected) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(LandmarkScheme{g}, SchemeInapplicable);
}

}  // namespace
}  // namespace optrt::schemes
