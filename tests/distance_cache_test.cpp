// DistanceCache tests: hit/miss accounting, LRU eviction, correctness
// against uncached BFS on random and adversarial graphs, and concurrent
// access safety under the thread pool (run under TSan by the tsan preset).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/parallel.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace optrt::graph {
namespace {

void expect_matches_bfs(const Graph& g, const DistanceMatrix& dist) {
  ASSERT_EQ(dist.node_count(), g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto row = bfs_distances(g, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      ASSERT_EQ(dist.at(u, v), row[v]) << "pair (" << u << ", " << v << ")";
    }
  }
}

TEST(GraphFingerprint, EqualGraphsCollideDifferentGraphsDoNot) {
  // Same edges inserted in different order → same fingerprint.
  Graph a(5), b(5);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  a.add_edge(1, 4);
  b.add_edge(1, 4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  Graph c(5);
  c.add_edge(0, 1);
  c.add_edge(2, 3);
  c.add_edge(2, 4);  // one different edge
  EXPECT_NE(fingerprint(a), fingerprint(c));

  // Same (empty) edge set, different node count.
  EXPECT_NE(fingerprint(Graph(4)), fingerprint(Graph(5)));
}

TEST(DistanceCache, HitAndMissAccounting) {
  DistanceCache cache(4);
  const Graph g = chain(10);
  const auto first = cache.get(g);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const auto second = cache.get(g);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.get(), second.get());  // memoized, not recomputed

  // A structurally identical copy hits too — the key is the fingerprint.
  Graph copy(10);
  for (NodeId u = 0; u + 1 < 10; ++u) copy.add_edge(u, u + 1);
  EXPECT_EQ(cache.get(copy).get(), first.get());
  EXPECT_EQ(cache.hits(), 2u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(DistanceCache, CorrectOnRandomAndAdversarialGraphs) {
  DistanceCache cache(8);
  std::vector<Graph> graphs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    graphs.push_back(random_uniform(20, rng));
  }
  graphs.push_back(chain(17));  // max diameter
  graphs.push_back(star(9));    // hub concentration
  Graph disconnected(8);        // two components + isolated nodes
  disconnected.add_edge(0, 1);
  disconnected.add_edge(1, 2);
  disconnected.add_edge(4, 5);
  graphs.push_back(disconnected);
  graphs.push_back(Graph(1));   // degenerate
  for (const Graph& g : graphs) {
    expect_matches_bfs(g, *cache.get(g));
    expect_matches_bfs(g, *cache.get(g));  // cached copy stays correct
  }
}

TEST(DistanceCache, EvictsLeastRecentlyUsedBeyondCapacity) {
  DistanceCache cache(2);
  const Graph a = chain(5), b = ring(6), c = star(7);
  const auto dist_a = cache.get(a);
  (void)cache.get(b);
  (void)cache.get(a);  // refresh a; b is now LRU
  (void)cache.get(c);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
  (void)cache.get(a);  // still resident
  EXPECT_EQ(cache.hits(), 2u);
  (void)cache.get(b);  // evicted: recomputed
  EXPECT_EQ(cache.misses(), 4u);
  // The evicted entry's shared_ptr kept the matrix alive for holders.
  expect_matches_bfs(a, *dist_a);
}

TEST(DistanceCache, GlobalIsASingleton) {
  EXPECT_EQ(&DistanceCache::global(), &DistanceCache::global());
}

TEST(DistanceCache, ConcurrentReadsAndMissesAreSafe) {
  // 8 threads × 64 tasks hammer one cache over 4 graphs: concurrent
  // first-misses on the same graph must compute the matrix exactly once,
  // and concurrent readers must see a fully built matrix. TSan-checked.
  DistanceCache cache(4);
  std::vector<Graph> graphs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    graphs.push_back(random_uniform(24, rng));
  }
  core::ThreadPool pool(8);
  const auto checks = core::parallel_map<int>(pool, 64, [&](std::size_t i) {
    const Graph& g = graphs[i % graphs.size()];
    const auto dist = cache.get(g);
    int mismatches = 0;
    const NodeId u = static_cast<NodeId>(i % g.node_count());
    const auto row = bfs_distances(g, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (dist->at(u, v) != row[v]) ++mismatches;
    }
    return mismatches;
  });
  for (int m : checks) EXPECT_EQ(m, 0);
  EXPECT_EQ(cache.misses(), 4u);  // one compute per distinct graph
  EXPECT_EQ(cache.hits(), 60u);
}

}  // namespace
}  // namespace optrt::graph
