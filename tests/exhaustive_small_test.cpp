// Exhaustive small-n tests: every labelled graph on 5 nodes (1024 of them,
// Definition 2 makes enumeration a counter loop). The strongest safety net
// in the suite — no sampling, every connected instance must route.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/cover.hpp"
#include "graph/encoding.hpp"
#include "graph/randomness.hpp"
#include "incompressibility/graph_compressor.hpp"
#include "incompressibility/lemma_codecs.hpp"
#include "model/verifier.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/errors.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"
#include "schemes/k_interval.hpp"

namespace optrt {
namespace {

constexpr std::size_t kN = 5;
constexpr std::size_t kSlots = kN * (kN - 1) / 2;  // 10
constexpr std::uint64_t kAll = 1u << kSlots;       // 1024

graph::Graph graph_from_code(std::uint64_t code) {
  bitio::BitVector eg(kSlots);
  for (std::size_t i = 0; i < kSlots; ++i) {
    if ((code >> i) & 1u) eg.set(i, true);
  }
  return graph::decode(eg, kN);
}

TEST(ExhaustiveSmall, EncodingIsABijection) {
  for (std::uint64_t code = 0; code < kAll; ++code) {
    const graph::Graph g = graph_from_code(code);
    const bitio::BitVector eg = graph::encode(g);
    std::uint64_t back = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
      if (eg.get(i)) back |= std::uint64_t{1} << i;
    }
    ASSERT_EQ(back, code);
  }
}

TEST(ExhaustiveSmall, FullTableRoutesEveryConnectedGraph) {
  std::size_t connected = 0;
  for (std::uint64_t code = 0; code < kAll; ++code) {
    const graph::Graph g = graph_from_code(code);
    const auto scheme = schemes::FullTableScheme::standard(g);
    const auto result = model::verify_scheme(g, scheme);
    ASSERT_TRUE(result.ok()) << "code " << code;
    if (graph::is_connected(g)) {
      ++connected;
      ASSERT_DOUBLE_EQ(result.max_stretch, 1.0) << "code " << code;
    }
  }
  // OEIS A001187: 728 connected labelled graphs on 5 nodes.
  EXPECT_EQ(connected, 728u);
}

TEST(ExhaustiveSmall, FullInformationExactEverywhere) {
  for (std::uint64_t code = 0; code < kAll; ++code) {
    const graph::Graph g = graph_from_code(code);
    const auto scheme = schemes::FullInformationScheme::standard(g);
    ASSERT_TRUE(model::verify_full_information(g, scheme).exact)
        << "code " << code;
  }
}

TEST(ExhaustiveSmall, CompactAppliesExactlyOnCoveredGraphs) {
  for (std::uint64_t code = 0; code < kAll; ++code) {
    const graph::Graph g = graph_from_code(code);
    // Applicability criterion: every node's neighbours dominate its
    // non-neighbours.
    bool covered = true;
    for (graph::NodeId u = 0; u < kN && covered; ++u) {
      covered = graph::least_neighbor_cover(g, u).complete;
    }
    try {
      const schemes::CompactDiam2Scheme scheme(g, {});
      ASSERT_TRUE(covered) << "code " << code;
      const auto result = model::verify_scheme(g, scheme);
      ASSERT_TRUE(result.ok()) << "code " << code;
      ASSERT_DOUBLE_EQ(result.max_stretch, 1.0) << "code " << code;
    } catch (const schemes::SchemeInapplicable&) {
      ASSERT_FALSE(covered) << "code " << code;
    }
  }
}

TEST(ExhaustiveSmall, KIntervalRoutesEveryConnectedGraph) {
  for (std::uint64_t code = 0; code < kAll; ++code) {
    const graph::Graph g = graph_from_code(code);
    if (!graph::is_connected(g)) continue;
    const schemes::KIntervalScheme scheme(g);
    const auto result = model::verify_scheme(g, scheme);
    ASSERT_TRUE(result.ok()) << "code " << code;
    ASSERT_DOUBLE_EQ(result.max_stretch, 1.0) << "code " << code;
  }
}

TEST(ExhaustiveSmall, CodecsRoundTripEveryGraph) {
  for (std::uint64_t code = 0; code < kAll; ++code) {
    const graph::Graph g = graph_from_code(code);
    // Lemma 1 codec, all witnesses.
    for (graph::NodeId u = 0; u < kN; ++u) {
      const auto d = incompress::lemma1_encode(g, u);
      ASSERT_EQ(incompress::lemma1_decode(d.bits, kN), g) << code;
    }
    // Whole-graph compressor.
    ASSERT_EQ(incompress::decompress_graph(incompress::compress_graph(g), kN),
              g)
        << code;
  }
}

TEST(ExhaustiveSmall, DiameterTwoCountMatchesHandCount) {
  // Cross-check has_diameter_at_most_2 against the distance matrix on all
  // 1024 graphs.
  std::size_t diam_le2 = 0;
  for (std::uint64_t code = 0; code < kAll; ++code) {
    const graph::Graph g = graph_from_code(code);
    const bool fast = graph::has_diameter_at_most_2(g);
    const graph::DistanceMatrix dist(g);
    const bool slow =
        dist.connected() && dist.diameter() <= 2;
    ASSERT_EQ(fast, slow) << "code " << code;
    if (fast) ++diam_le2;
  }
  EXPECT_GT(diam_le2, 300u);
  EXPECT_LT(diam_le2, 728u);
}

}  // namespace
}  // namespace optrt
