// Boundary and degenerate-input tests across the public API.
#include <gtest/gtest.h>

#include "bitio/arith.hpp"
#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/algorithms.hpp"
#include "graph/encoding.hpp"
#include "graph/generators.hpp"
#include "graph/randomness.hpp"
#include "incompressibility/enumerative.hpp"
#include "incompressibility/permutation_code.hpp"
#include "model/verifier.hpp"
#include "net/simulator.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"

namespace optrt {
namespace {

TEST(EdgeCases, TinyGraphs) {
  // n = 2: one edge, both schemes route the single pair.
  graph::Graph g(2);
  g.add_edge(0, 1);
  const auto table = schemes::FullTableScheme::standard(g);
  EXPECT_TRUE(model::verify_scheme(g, table).ok());
  const auto full = schemes::FullInformationScheme::standard(g);
  EXPECT_TRUE(model::verify_full_information(g, full).exact);
}

TEST(EdgeCases, SingleNodeAndEmptyGraphs) {
  const graph::Graph one(1);
  const auto scheme = schemes::FullTableScheme::standard(one);
  const auto result = model::verify_scheme(one, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.pairs_checked, 0u);
  EXPECT_TRUE(graph::is_connected(graph::Graph(0)));
}

TEST(EdgeCases, EncodeDecodeTinySizes) {
  for (std::size_t n : {2u, 3u}) {
    graph::Rng rng(n);
    const graph::Graph g = graph::random_gnp(n, 0.5, rng);
    EXPECT_EQ(graph::decode(graph::encode(g), n), g);
  }
}

TEST(EdgeCases, BitWriterTakeLeavesEmpty) {
  bitio::BitWriter w;
  w.write_bits(0xFF, 8);
  const bitio::BitVector bits = w.take();
  EXPECT_EQ(bits.size(), 8u);
  EXPECT_EQ(w.bit_count(), 0u);
  w.write_bit(true);
  EXPECT_EQ(w.bit_count(), 1u);
}

TEST(EdgeCases, ArithmeticEmptyAndSingleBit) {
  const bitio::BitVector empty;
  EXPECT_EQ(bitio::arithmetic_decode(bitio::arithmetic_encode(empty), 0),
            empty);
  for (bool b : {false, true}) {
    bitio::BitVector one;
    one.push_back(b);
    EXPECT_EQ(bitio::arithmetic_decode(bitio::arithmetic_encode(one), 1), one);
  }
}

TEST(EdgeCases, EnumerativeDegenerateEnsembles) {
  // Weight 0 and full weight have singleton ensembles: zero index bits.
  bitio::BitWriter w;
  bitio::BitVector zeros(17);
  incompress::write_fixed_weight(w, zeros);
  EXPECT_EQ(w.bit_count(), bitio::ceil_log2_plus1(17));  // weight field only
}

TEST(EdgeCases, PermutationOfSizeZeroAndOne) {
  EXPECT_TRUE(incompress::rank_permutation({}).is_zero());
  EXPECT_TRUE(incompress::rank_permutation({0}).is_zero());
  EXPECT_EQ(incompress::unrank_permutation(0, incompress::BigUint(0)).size(),
            0u);
  EXPECT_EQ(incompress::unrank_permutation(1, incompress::BigUint(0)),
            (std::vector<std::uint32_t>{0}));
}

TEST(EdgeCases, SimulatorNoMessages) {
  const graph::Graph g = graph::chain(3);
  const auto scheme = schemes::FullTableScheme::standard(g);
  net::Simulator sim(g, scheme);
  const auto stats = sim.run();
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.makespan, 0u);
}

TEST(EdgeCases, SimulatorRestoreEnablesRedelivery) {
  const graph::Graph g = graph::chain(4);
  const auto scheme = schemes::FullTableScheme::standard(g);
  net::Simulator sim(g, scheme);
  sim.fail_link(1, 2);
  sim.send(0, 3);
  EXPECT_EQ(sim.run().dropped, 1u);
  sim.restore_link(1, 2);
  sim.send(0, 3);
  const auto stats = sim.run();
  EXPECT_EQ(stats.delivered, 1u);
}

TEST(EdgeCases, MaxHopsGuardDropsLoops) {
  const graph::Graph g = graph::ring(6);
  const auto scheme = schemes::FullTableScheme::standard(g);
  net::SimulatorConfig config;
  config.max_hops = 1;  // too small for the far side of the ring
  net::Simulator sim(g, scheme, config);
  sim.send(0, 3);
  EXPECT_EQ(sim.run().dropped, 1u);
}

TEST(EdgeCases, CertifyDegenerateInputs) {
  EXPECT_FALSE(graph::certify(graph::Graph(1)).ok());
  EXPECT_FALSE(graph::certify_gnp(graph::Graph(10), 0.0).ok());
  EXPECT_FALSE(graph::certify_gnp(graph::Graph(10), 1.0).ok());
}

TEST(EdgeCases, VerifierSelfRouteThrows) {
  const graph::Graph g = graph::chain(3);
  const auto scheme = schemes::FullTableScheme::standard(g);
  model::MessageHeader h;
  EXPECT_THROW((void)scheme.next_hop(1, 1, h), std::invalid_argument);
}

}  // namespace
}  // namespace optrt
