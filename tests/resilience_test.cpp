// Differential oracle tests for the resilience layer: with zero faults
// every policy must reproduce the verifier's fault-free hop counts
// exactly, and under faults the full-information scheme must dominate the
// bare single-path scheme on every certified graph and fault model. The
// policies themselves are then checked for the behaviour they advertise:
// retry waits out repairs, deflection and sequential fallback recover
// messages the plain scheme drops.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "net/faults.hpp"
#include "net/resilience.hpp"
#include "net/simulator.hpp"
#include "net/workload.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hierarchical.hpp"
#include "schemes/sequential_search.hpp"

namespace optrt::net {
namespace {

using graph::Graph;
using graph::Rng;

Graph certified(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return core::certified_random_graph(n, rng);
}

std::vector<std::unique_ptr<model::RoutingScheme>> scheme_zoo(const Graph& g) {
  std::vector<std::unique_ptr<model::RoutingScheme>> zoo;
  zoo.push_back(std::make_unique<schemes::CompactDiam2Scheme>(
      g, schemes::CompactDiam2Scheme::Options{}));
  zoo.push_back(std::make_unique<schemes::FullTableScheme>(
      schemes::FullTableScheme::standard(g)));
  zoo.push_back(std::make_unique<schemes::FullInformationScheme>(
      schemes::FullInformationScheme::standard(g)));
  zoo.push_back(std::make_unique<schemes::SequentialSearchScheme>(g));
  zoo.push_back(std::make_unique<schemes::HierarchicalScheme>(
      g, schemes::HierarchicalOptions{.levels = 2, .seed = 1}));
  return zoo;
}

std::size_t delivered_with(const Graph& g, const model::RoutingScheme& scheme,
                           const FaultPlan& plan,
                           const std::vector<TrafficPair>& traffic,
                           ResiliencePolicy policy) {
  SimulatorConfig config;
  config.resilience.policy = policy;
  Simulator sim(g, scheme, config);
  sim.schedule(plan);
  for (const auto& [u, v] : traffic) sim.send(u, v);
  return sim.run().delivered;
}

TEST(ResilienceOracle, ZeroFaultsReproducesVerifierExactly) {
  // With no faults a resilience policy must be invisible: every policy
  // drives every scheme to the same delivery count and total hop count the
  // hop-by-hop verifier measures.
  const std::size_t n = 48;
  const Graph g = certified(n, 1);
  for (const auto& scheme : scheme_zoo(g)) {
    const model::VerificationResult oracle = model::verify_scheme(g, *scheme);
    ASSERT_TRUE(oracle.ok()) << scheme->name();
    for (const ResiliencePolicy policy :
         {ResiliencePolicy::kNone, ResiliencePolicy::kRetry,
          ResiliencePolicy::kDeflect, ResiliencePolicy::kSequentialFallback}) {
      SimulatorConfig config;
      config.resilience.policy = policy;
      Simulator sim(g, *scheme, config);
      for (const auto& [u, v] : all_pairs(n)) sim.send(u, v);
      const SimulationStats stats = sim.run();
      EXPECT_EQ(stats.delivered, n * (n - 1))
          << scheme->name() << " / " << to_string(policy);
      EXPECT_EQ(stats.total_hops, oracle.total_route_edges)
          << scheme->name() << " / " << to_string(policy);
      EXPECT_EQ(stats.total_retries, 0u);
      EXPECT_EQ(stats.deflections, 0u);
      EXPECT_EQ(stats.fallback_messages, 0u);
    }
  }
}

TEST(ResilienceOracle, FullInformationDominatesSinglePathUnderFaults) {
  // §1's claim, checked differentially on every certified graph we try,
  // for every fault model and failure fraction: the n³/4-bit scheme never
  // delivers fewer messages than the single-path compact scheme.
  for (const std::uint64_t graph_seed : {1ull, 2ull, 3ull}) {
    const Graph g = certified(48, graph_seed);
    const schemes::CompactDiam2Scheme compact(g, {});
    const auto full = schemes::FullInformationScheme::standard(g);
    Rng traffic_rng(core::point_seed(42, graph_seed, 0));
    const auto traffic = uniform_random(48, 800, traffic_rng);
    for (const FaultModel model :
         {FaultModel::kUniform, FaultModel::kTargeted, FaultModel::kPartition}) {
      for (const double fraction : {0.05, 0.15, 0.3}) {
        const auto count = static_cast<std::size_t>(
            fraction * static_cast<double>(g.edge_count()));
        const FaultPlan plan = make_fault_plan(
            g, model, count, {.seed = core::point_seed(42, graph_seed, 1)});
        const std::size_t single = delivered_with(g, compact, plan, traffic,
                                                  ResiliencePolicy::kNone);
        const std::size_t multi =
            delivered_with(g, full, plan, traffic, ResiliencePolicy::kNone);
        EXPECT_GE(multi, single)
            << "graph " << graph_seed << ", " << to_string(model) << " @ "
            << fraction;
      }
    }
  }
}

TEST(ResiliencePolicy, RetryWaitsOutRepairs) {
  // Links fail at t=0 and come back at t=6. Plain routing drops on the
  // outage; bounded exponential backoff retries long enough to cross it.
  const Graph g = certified(48, 4);
  const schemes::CompactDiam2Scheme compact(g, {});
  const FaultPlan plan = uniform_link_faults(
      g, g.edge_count() / 4, {.seed = 9, .fail_time = 0, .repair_after = 6});
  Rng traffic_rng(10);
  const auto traffic = uniform_random(48, 600, traffic_rng);
  const std::size_t plain =
      delivered_with(g, compact, plan, traffic, ResiliencePolicy::kNone);
  const std::size_t retried =
      delivered_with(g, compact, plan, traffic, ResiliencePolicy::kRetry);
  EXPECT_LT(plain, traffic.size());
  EXPECT_EQ(retried, traffic.size());  // every outage is repaired in time
}

TEST(ResiliencePolicy, DeflectionRecoversDroppedMessages) {
  const Graph g = certified(48, 5);
  const schemes::CompactDiam2Scheme compact(g, {});
  const FaultPlan plan =
      uniform_link_faults(g, g.edge_count() / 5, {.seed = 11});
  Rng traffic_rng(12);
  const auto traffic = uniform_random(48, 600, traffic_rng);
  const std::size_t plain =
      delivered_with(g, compact, plan, traffic, ResiliencePolicy::kNone);
  const std::size_t deflected =
      delivered_with(g, compact, plan, traffic, ResiliencePolicy::kDeflect);
  EXPECT_LT(plain, traffic.size());
  EXPECT_GT(deflected, plain);
}

TEST(ResiliencePolicy, FallbackUsesSequentialProbing) {
  const Graph g = certified(48, 6);
  const schemes::CompactDiam2Scheme compact(g, {});
  const FaultPlan plan =
      uniform_link_faults(g, g.edge_count() / 5, {.seed = 13});
  Rng traffic_rng(14);
  const auto traffic = uniform_random(48, 600, traffic_rng);

  SimulatorConfig config;
  config.resilience.policy = ResiliencePolicy::kSequentialFallback;
  Simulator sim(g, compact, config);
  sim.schedule(plan);
  for (const auto& [u, v] : traffic) sim.send(u, v);
  const SimulationStats stats = sim.run();

  const std::size_t plain =
      delivered_with(g, compact, plan, traffic, ResiliencePolicy::kNone);
  EXPECT_GT(stats.fallback_messages, 0u);
  EXPECT_GT(stats.delivered, plain);
  // Fallback messages that delivered are flagged on their records.
  std::size_t flagged = 0;
  for (const MessageRecord& r : sim.records()) flagged += r.used_fallback;
  EXPECT_EQ(flagged, stats.fallback_messages);
}

TEST(ResiliencePolicy, ParseRoundTrip) {
  for (const ResiliencePolicy policy :
       {ResiliencePolicy::kNone, ResiliencePolicy::kRetry,
        ResiliencePolicy::kDeflect, ResiliencePolicy::kSequentialFallback}) {
    const auto parsed = parse_resilience_policy(to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_resilience_policy("carrier-pigeon").has_value());
}

TEST(PortEnumeration, SchemesExposeDeflectionPorts) {
  // Deflection needs each scheme's port order; schemes that expose it must
  // enumerate exactly the neighbour set.
  const Graph g = certified(32, 7);
  const auto full = schemes::FullInformationScheme::standard(g);
  const schemes::SequentialSearchScheme seq(g);
  for (NodeId u = 0; u < 32; ++u) {
    for (const auto* scheme :
         std::initializer_list<const model::RoutingScheme*>{&full, &seq}) {
      const auto ports = scheme->port_enumeration(u);
      ASSERT_EQ(ports.size(), g.degree(u)) << scheme->name();
      for (const NodeId v : ports) EXPECT_TRUE(g.has_edge(u, v));
    }
  }
  // The base scheme interface defaults to "no enumeration" — the engine
  // falls back to the graph's neighbour list.
  const auto table = schemes::FullTableScheme::standard(g);
  EXPECT_TRUE(table.port_enumeration(0).empty());
}

}  // namespace
}  // namespace optrt::net
