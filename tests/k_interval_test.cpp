// k-interval routing tests (the paper's reference [1] object): shortest
// path correctness everywhere, compactness 1 on linear topologies, and
// linear-in-n interval counts on random graphs — no compression exactly
// where the paper proves none is possible.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "model/verifier.hpp"
#include "schemes/errors.hpp"
#include "schemes/k_interval.hpp"

namespace optrt::schemes {
namespace {

using graph::Graph;
using graph::Rng;

class KIntervalFamilies : public ::testing::TestWithParam<int> {
 public:
  static Graph make(int which) {
    switch (which) {
      case 0:
        return graph::chain(24);
      case 1:
        return graph::ring(25);
      case 2:
        return graph::grid(5, 6);
      case 3:
        return graph::star(26);
      case 4:
        return graph::hypercube(5);
      case 5:
        return graph::complete(16);
      default: {
        Rng rng(61);
        return core::certified_random_graph(48, rng);
      }
    }
  }
};

TEST_P(KIntervalFamilies, ShortestPathOnEveryFamily) {
  const Graph g = make(GetParam());
  const KIntervalScheme scheme(g);
  const auto result = model::verify_scheme(g, scheme);
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.max_stretch, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Families, KIntervalFamilies,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(KInterval, ChainIsCompactnessOne) {
  const KIntervalScheme scheme(graph::chain(32));
  EXPECT_EQ(scheme.compactness(), 1u);
  // Interior node: 2 ports, 1 interval each; endpoints: 1 port.
  EXPECT_EQ(scheme.total_intervals(), 2u * 30 + 2);
}

TEST(KInterval, RingIsCompactnessOne) {
  // With identity labels a ring splits each node's destinations into two
  // arcs — each a single cyclic interval.
  const KIntervalScheme scheme(graph::ring(17));
  EXPECT_EQ(scheme.compactness(), 1u);
}

TEST(KInterval, StarIsCompactnessOne) {
  const KIntervalScheme scheme(graph::star(20));
  EXPECT_EQ(scheme.compactness(), 1u);
}

TEST(KInterval, CompleteGraphIsCompactnessOne) {
  // Every port routes exactly one label.
  const KIntervalScheme scheme(graph::complete(12));
  EXPECT_EQ(scheme.compactness(), 1u);
}

TEST(KInterval, HypercubeSitsBetweenLinearAndRandom) {
  // With identity labels and least-successor assignment a hypercube needs
  // ≈ n/2 intervals on its worst port — more than a grid, but each port's
  // regions are still far coarser than a random graph's shatter.
  const std::size_t n = 64;
  const KIntervalScheme scheme(graph::hypercube(6));
  EXPECT_LE(scheme.compactness(), n / 2);
  EXPECT_GT(scheme.compactness(), 4u);
  EXPECT_TRUE(model::verify_scheme(graph::hypercube(6), scheme).ok());
}

TEST(KInterval, RandomGraphsNeedLinearlyManyIntervals) {
  // Reference [1]'s phenomenon: on random graphs the per-node interval
  // count is Θ(n) — interval compression gives no asymptotic savings.
  Rng rng(62);
  const std::size_t n = 96;
  const Graph g = core::certified_random_graph(n, rng);
  const KIntervalScheme scheme(g);
  EXPECT_GT(scheme.total_intervals(), n * n / 8);   // ≈ n²/4 runs expected
  EXPECT_GT(scheme.compactness(), 4u);
  // Space: with Θ(n) intervals of 2⌈log n⌉ bits per node, the scheme costs
  // Θ(n² log n) — no better than the full table (Theorem 6's message).
  EXPECT_GT(scheme.space().total_bits(), n * n);
}

TEST(KInterval, GrowthIsQuadraticOnRandomGraphs) {
  double prev = 0;
  for (std::size_t n : {32u, 64u}) {
    Rng rng(n);
    const Graph g = core::certified_random_graph(n, rng);
    const KIntervalScheme scheme(g);
    const auto total = static_cast<double>(scheme.total_intervals());
    if (prev > 0) {
      EXPECT_GT(total / prev, 3.0);  // doubling n ⇒ ≈ 4× intervals
      EXPECT_LT(total / prev, 5.0);
    }
    prev = total;
  }
}

TEST(KInterval, ThrowsOnDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_THROW(KIntervalScheme{g}, SchemeInapplicable);
}

TEST(KInterval, SpaceMatchesSerializedBits) {
  Rng rng(63);
  const Graph g = core::certified_random_graph(48, rng);
  const KIntervalScheme scheme(g);
  const auto space = scheme.space();
  for (graph::NodeId u = 0; u < 48; ++u) {
    EXPECT_EQ(space.function_bits[u], scheme.function_bits(u).size());
  }
}

TEST(Generators, HypercubeStructure) {
  const Graph g = graph::hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);  // n·d/2 = 16·4/2
  for (graph::NodeId u = 0; u < 16; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_EQ(graph::DistanceMatrix(g).diameter(), 4u);
}

}  // namespace
}  // namespace optrt::schemes
