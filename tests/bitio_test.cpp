// Unit and property tests for the bitio substrate: BitVector, streams,
// prefix codes (Definition 4), and the complexity estimators.
#include <gtest/gtest.h>

#include <random>

#include "bitio/bit_stream.hpp"
#include "bitio/bit_vector.hpp"
#include "bitio/codes.hpp"
#include "bitio/entropy.hpp"

namespace optrt::bitio {
namespace {

TEST(BitVector, StartsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, SizedConstructorZeroFills) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, PushBackAndGet) {
  BitVector v;
  v.push_back(true);
  v.push_back(false);
  v.push_back(true);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
}

TEST(BitVector, SetClearsAndSets) {
  BitVector v(64);
  v.set(63, true);
  EXPECT_TRUE(v.get(63));
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
}

TEST(BitVector, CrossesWordBoundary) {
  BitVector v;
  for (int i = 0; i < 200; ++i) v.push_back(i % 3 == 0);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(v.get(i), i % 3 == 0) << i;
}

TEST(BitVector, StringRoundTrip) {
  const std::string s = "1101001110101";
  EXPECT_EQ(BitVector::from_string(s).to_string(), s);
}

TEST(BitVector, FromStringRejectsNonBinary) {
  EXPECT_THROW(BitVector::from_string("10x"), std::invalid_argument);
}

TEST(BitVector, AppendBitsLsbFirst) {
  BitVector v;
  v.append_bits(0b1011, 4);
  EXPECT_EQ(v.to_string(), "1101");  // LSB first
}

TEST(BitVector, AppendVector) {
  BitVector a = BitVector::from_string("101");
  a.append(BitVector::from_string("0011"));
  EXPECT_EQ(a.to_string(), "1010011");
}

TEST(BitVector, PopcountAcrossWords) {
  BitVector v(150);
  v.set(0, true);
  v.set(70, true);
  v.set(149, true);
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, EqualityIgnoresNothing) {
  BitVector a = BitVector::from_string("101");
  BitVector b = BitVector::from_string("101");
  BitVector c = BitVector::from_string("1010");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(BitStream, WriteReadBits) {
  BitWriter w;
  w.write_bits(0xDEADBEEF, 32);
  w.write_bit(true);
  w.write_bits(42, 7);
  const BitVector bits = w.bits();
  BitReader r(bits);
  EXPECT_EQ(r.read_bits(32), 0xDEADBEEFu);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read_bits(7), 42u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, ReadPastEndThrows) {
  BitVector v(3);
  BitReader r(v);
  (void)r.read_bits(3);
  EXPECT_THROW((void)r.read_bit(), std::out_of_range);
}

TEST(BitStream, SeekAndPosition) {
  BitVector v = BitVector::from_string("00001111");
  BitReader r(v);
  r.seek(4);
  EXPECT_EQ(r.position(), 4u);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_THROW(r.seek(9), std::out_of_range);
}

// --- The paper's N <-> {0,1}* correspondence --------------------------------

TEST(Codes, NaturalCorrespondenceMatchesPaper) {
  // (0, ε), (1, "0"), (2, "1"), (3, "00"), (4, "01"), (5, "10"), (6, "11").
  EXPECT_EQ(natural_bit_length(0), 0u);
  EXPECT_EQ(natural_bit_length(1), 1u);
  EXPECT_EQ(natural_bit_length(2), 1u);
  EXPECT_EQ(natural_bit_length(3), 2u);
  EXPECT_EQ(natural_bit_length(6), 2u);
  EXPECT_EQ(natural_bit_length(7), 3u);
  // "0" for 1, "1" for 2 (string written MSB-first in string order).
  EXPECT_EQ(natural_to_bits(1) & 1u, 0u);
  EXPECT_EQ(natural_to_bits(2) & 1u, 1u);
}

class NaturalRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NaturalRoundTrip, BitsToNaturalInverts) {
  const std::uint64_t n = GetParam();
  EXPECT_EQ(bits_to_natural(natural_to_bits(n), natural_bit_length(n)), n);
}

INSTANTIATE_TEST_SUITE_P(Values, NaturalRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 17, 100,
                                           1023, 1024, 999999));

class CodeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodeRoundTrip, BarCode) {
  const std::uint64_t n = GetParam();
  BitWriter w;
  write_bar(w, n);
  EXPECT_EQ(w.bit_count(), bar_length(n));
  BitReader r(w.bits());
  EXPECT_EQ(read_bar(r), n);
  EXPECT_TRUE(r.exhausted());
}

TEST_P(CodeRoundTrip, PrimeCode) {
  const std::uint64_t n = GetParam();
  BitWriter w;
  write_prime(w, n);
  EXPECT_EQ(w.bit_count(), prime_length(n));
  BitReader r(w.bits());
  EXPECT_EQ(read_prime(r), n);
  EXPECT_TRUE(r.exhausted());
}

TEST_P(CodeRoundTrip, Unary) {
  const std::uint64_t n = GetParam();
  if (n > 4096) return;  // unary is linear; skip the huge values
  BitWriter w;
  write_unary(w, n);
  EXPECT_EQ(w.bit_count(), unary_length(n));
  BitReader r(w.bits());
  EXPECT_EQ(read_unary(r), n);
}

TEST_P(CodeRoundTrip, EliasGamma) {
  const std::uint64_t n = GetParam() + 1;  // gamma needs n >= 1
  BitWriter w;
  write_elias_gamma(w, n);
  EXPECT_EQ(w.bit_count(), elias_gamma_length(n));
  BitReader r(w.bits());
  EXPECT_EQ(read_elias_gamma(r), n);
}

TEST_P(CodeRoundTrip, EliasDelta) {
  const std::uint64_t n = GetParam() + 1;
  BitWriter w;
  write_elias_delta(w, n);
  EXPECT_EQ(w.bit_count(), elias_delta_length(n));
  BitReader r(w.bits());
  EXPECT_EQ(read_elias_delta(r), n);
}

INSTANTIATE_TEST_SUITE_P(Values, CodeRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100,
                                           255, 256, 1000, 65535, 1000000));

TEST(Codes, BarLengthFormula) {
  // |x̄| = 2|x| + 1 (Definition 4).
  for (std::uint64_t n : {0, 1, 5, 100, 5000}) {
    EXPECT_EQ(bar_length(n), 2 * natural_bit_length(n) + 1);
  }
}

TEST(Codes, SelfDelimitingConcatenationParses) {
  // x′ y′ z parses unambiguously — the property Definition 4 is for.
  BitWriter w;
  write_prime(w, 13);
  write_prime(w, 7);
  w.write_bits(0b101, 3);
  BitReader r(w.bits());
  EXPECT_EQ(read_prime(r), 13u);
  EXPECT_EQ(read_prime(r), 7u);
  EXPECT_EQ(r.read_bits(3), 0b101u);
}

TEST(Codes, CeilLog2Values) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2_plus1(0), 0u);
  EXPECT_EQ(ceil_log2_plus1(1), 1u);
  EXPECT_EQ(ceil_log2_plus1(7), 3u);
  EXPECT_EQ(ceil_log2_plus1(8), 4u);
}

// --- Entropy & LZ estimators -------------------------------------------------

TEST(Entropy, ConstantStringsHaveZeroEntropy) {
  BitVector zeros(1000);
  EXPECT_DOUBLE_EQ(empirical_entropy(zeros), 0.0);
  BitVector ones;
  for (int i = 0; i < 1000; ++i) ones.push_back(true);
  EXPECT_DOUBLE_EQ(empirical_entropy(ones), 0.0);
}

TEST(Entropy, BalancedStringHasEntropyOne) {
  BitVector v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 2 == 0);
  EXPECT_NEAR(empirical_entropy(v), 1.0, 1e-9);
}

TEST(Entropy, SkewedStringBetweenZeroAndOne) {
  BitVector v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 10 == 0);
  const double h = empirical_entropy(v);
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 0.6);
}

TEST(Lz78, PeriodicCompressesRandomDoesNot) {
  std::mt19937_64 rng(42);
  BitVector periodic, random;
  for (int i = 0; i < 4096; ++i) {
    periodic.push_back(i % 4 == 0);
    random.push_back(rng() & 1u);
  }
  EXPECT_LT(lz78_coded_bits(periodic), lz78_coded_bits(random));
  EXPECT_LT(lz78_coded_bits(periodic), periodic.size() / 2);
  // Incompressibility: a uniform string resists LZ78 at these lengths.
  EXPECT_GT(lz78_coded_bits(random), random.size() / 2);
}

TEST(Lz78, PhraseCountMatchesByHand) {
  // "1 0 11 01 010 00 …" — check a tiny case computed by hand:
  // 1|0|11|01|010|00 → 6 phrases for 101101010 00? Keep it simple:
  const BitVector v = BitVector::from_string("1011010");
  // Parse: 1 | 0 | 11 | 01 | 0(trailing) → 5 phrases.
  EXPECT_EQ(lz78_phrase_count(v), 5u);
}

TEST(ComplexityUpperBound, NeverExceedsLiteralPlusHeader) {
  std::mt19937_64 rng(7);
  BitVector v;
  for (int i = 0; i < 2048; ++i) v.push_back(rng() & 1u);
  EXPECT_LE(complexity_upper_bound(v), static_cast<double>(v.size()) + 2.0);
}

TEST(ComplexityUpperBound, DetectsStructure) {
  BitVector v(4096);  // all zeros
  EXPECT_LT(complexity_upper_bound(v), 200.0);
}

}  // namespace
}  // namespace optrt::bitio
