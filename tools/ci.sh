#!/usr/bin/env bash
# CI driver: full build + test on the default preset, then targeted
# sanitizer passes over the concurrency-sensitive suites (thread pool,
# distance cache, sharded verifier, fault-injection sweeps) with
# ThreadSanitizer and AddressSanitizer+UBSan. Mirrors what a GitHub
# Actions job would run. The fault suites are also tagged for quick
# selection with `ctest -L faults`, the artifact-corruption suites
# (seeded chaos harness + CLI integrity checks) with `ctest -L chaos`,
# and the serving-daemon suites (wire protocol, accept loop, hot reload)
# with `ctest -L serve`. The live-churn repair suites (incremental-repair
# differential oracle + churn chaos sweep) answer to `ctest -L churn`.
#
#   tools/ci.sh            # default + tsan + asan
#   tools/ci.sh default    # just one stage
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(default tsan asan)
fi

# The sanitizer stages only need the suites they gate on; building
# everything under TSan would double CI time for no coverage.
SANITIZED_TARGETS=(parallel_test distance_cache_test verifier_test
  faults_test resilience_test obs_test instrumentation_test
  serialization_test chaos_test fuzz_test fastpath_test rank_select_test
  serve_test serve_chaos_test topology_test tz_test congest_test
  congest_chaos_test churn_test churn_chaos_test)

for stage in "${STAGES[@]}"; do
  echo "=== [$stage] configure ==="
  cmake --preset "$stage"
  echo "=== [$stage] build ==="
  if [ "$stage" = default ]; then
    cmake --build --preset "$stage" -j "$JOBS"
  else
    cmake --build --preset "$stage" -j "$JOBS" -- "${SANITIZED_TARGETS[@]}"
  fi
  echo "=== [$stage] test ==="
  ctest --preset "$stage"
  if [ "$stage" = default ]; then
    # Smoke-run the lookup benchmark: the compiled fast paths must stay
    # bit-identical to the decode path (nonzero exit on divergence).
    echo "=== [$stage] bench_lookup --smoke ==="
    ./build/bench/bench_lookup --smoke -o build/BENCH_lookup_smoke.json
    # Smoke-run the serving benchmark: self-hosts a server on a Unix
    # socket and checks served answers against the local oracle.
    echo "=== [$stage] bench_serving --smoke ==="
    ./build/bench/bench_serving --smoke -o build/BENCH_serving_smoke.json
    # Smoke-run the related-work sweep: every scheme must deliver within
    # the stretch-3 bound on every topology family (nonzero exit if not).
    echo "=== [$stage] bench_related_work --smoke ==="
    ./build/bench/bench_related_work --smoke \
      -o build/BENCH_related_work_smoke.json
    # Smoke-run the CONGEST construction sweep: the three distributed
    # protocols must verify and meet their analytic round/bit bounds.
    echo "=== [$stage] bench_construction --smoke ==="
    ./build/bench/bench_construction --smoke \
      -o build/BENCH_construction_smoke.json
    # Smoke-run the churn-repair sweep: every quiesce point must match a
    # fresh centralized build and incremental repair must beat the
    # rebuild baseline on at least one family (nonzero exit if not).
    echo "=== [$stage] bench_churn --smoke ==="
    ./build/bench/bench_churn --smoke -o build/BENCH_churn_smoke.json
  fi
done

echo "CI: all stages passed (${STAGES[*]})"
