// One-shot generator for the pinned v0 (legacy, pre-framing) golden
// artifacts in tests/serialization_test.cpp. Build it against a tree that
// still has the v0 serializer and paste the hex it prints into the test.
#include <cstdio>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "schemes/serialization.hpp"

using namespace optrt;

namespace {

void dump(const char* name, const bitio::BitVector& artifact) {
  const auto bytes = schemes::to_bytes(artifact);
  std::printf("%s (%zu bytes):\n\"", name, bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::printf("%02x", bytes[i]);
    if (i % 32 == 31 && i + 1 != bytes.size()) std::printf("\"\n\"");
  }
  std::printf("\"\n\n");
}

}  // namespace

int main() {
  {
    graph::Rng rng(901);
    const graph::Graph g = core::certified_random_graph(16, rng);
    dump("compact_diam2 certified(16,901)",
         schemes::serialize(schemes::CompactDiam2Scheme(g, {})));
    dump("hub certified(16,901)", schemes::serialize(schemes::HubScheme(g)));
    dump("routing_center certified(16,901)",
         schemes::serialize(schemes::RoutingCenterScheme(g)));
  }
  {
    const graph::Graph g = graph::grid(3, 3);
    dump("full_table grid(3,3)",
         schemes::serialize(schemes::FullTableScheme::standard(g)));
    dump("landmark grid(3,3)",
         schemes::serialize(schemes::LandmarkScheme(g)));
  }
  {
    const graph::Graph g = graph::grid(4, 4);
    schemes::HierarchicalOptions opt;
    opt.levels = 2;
    dump("hierarchical grid(4,4) levels=2",
         schemes::serialize(schemes::HierarchicalScheme(g, opt)));
  }
  return 0;
}
