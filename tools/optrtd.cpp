// optrtd — the route-serving daemon.
//
// Mmaps a directory of ORT2 artifacts (each `<name>.ort` paired with its
// `<name>.eg` graph), compiles each to its FastPath, and answers ORTP v1
// queries over Unix and/or TCP stream sockets until SIGINT/SIGTERM.
// SIGHUP hot-reloads the directory without dropping in-flight requests.
//
//   optrtd --dir DIR (--socket PATH | --port N [--host H]) [options]
//
// Exit codes mirror optrt_cli verify-artifact: 0 clean shutdown, 2 when
// the artifact directory fails to load or a listener cannot bind.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/parallel.hpp"
#include "serve/daemon.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: optrtd --dir DIR (--socket PATH | --port N)\n"
               "              [--host H] [--threads N] [--idle-timeout-ms N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  optrt::core::apply_threads_flag(argc, argv);
  optrt::serve::DaemonOptions options;
  options.server.threads = optrt::core::default_threads();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      options.artifact_dir = next();
    } else if (arg == "--socket") {
      options.server.unix_path = next();
    } else if (arg == "--port") {
      options.server.tcp_port = std::atoi(next());
    } else if (arg == "--host") {
      options.server.tcp_host = next();
    } else if (arg == "--idle-timeout-ms") {
      options.server.idle_timeout_ms = std::atoi(next());
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "optrtd: unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (options.artifact_dir.empty() ||
      (options.server.unix_path.empty() && options.server.tcp_port < 0)) {
    usage();
    return 2;
  }
  return optrt::serve::run_daemon(options);
}
