#include "model/verifier.hpp"

#include <algorithm>
#include <limits>
#include <random>

#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace optrt::model {

namespace {

// Walks one message from src to dst; returns edges traversed (0 = failed)
// and whether an invalid hop was produced.
struct WalkOutcome {
  std::size_t edges = 0;
  bool invalid_hop = false;
  bool delivered = false;
};

WalkOutcome walk(const graph::Graph& g, const RoutingScheme& scheme,
                 NodeId src, NodeId dst_internal, std::size_t hop_budget) {
  WalkOutcome out;
  const NodeId dest_label = scheme.label_of(dst_internal);
  MessageHeader header;
  NodeId current = src;
  while (current != dst_internal) {
    if (out.edges >= hop_budget) return out;
    const NodeId next = scheme.next_hop(current, dest_label, header);
    if (next >= g.node_count() || !g.has_edge(current, next)) {
      out.invalid_hop = true;
      return out;
    }
    header.came_from = current;
    current = next;
    ++out.edges;
  }
  out.delivered = true;
  return out;
}

// Partial verification result for one source node. Shards are merged in
// source order by finish() — the same association the serial reference
// uses — so sharded and serial runs agree bit for bit, including the
// floating-point stretch aggregates.
struct SourceAccum {
  std::size_t pairs_checked = 0;
  std::size_t pairs_failed = 0;
  std::size_t invalid_hops = 0;
  std::uint64_t total_route_edges = 0;
  std::size_t max_route_edges = 0;
  double max_stretch = 0.0;
  double stretch_sum = 0.0;
  std::size_t stretch_pairs = 0;
  std::size_t pairs_over = 0;  ///< delivered pairs beyond the stretch bound
};

SourceAccum verify_from_source(const graph::Graph& g,
                               const RoutingScheme& scheme,
                               const graph::DistanceMatrix& dist, NodeId u,
                               std::size_t hop_budget,
                               double stretch_bound) {
  SourceAccum acc;
  const std::size_t n = g.node_count();
  for (NodeId v = 0; v < n; ++v) {
    if (u == v) continue;
    ++acc.pairs_checked;
    if (dist.at(u, v) == graph::kUnreachable) {
      // Disconnected pair: schemes are only required to route within the
      // connected component; skip.
      continue;
    }
    const WalkOutcome out = walk(g, scheme, u, v, hop_budget);
    if (out.invalid_hop) {
      ++acc.invalid_hops;
      ++acc.pairs_failed;
      continue;
    }
    if (!out.delivered) {
      ++acc.pairs_failed;
      continue;
    }
    acc.total_route_edges += out.edges;
    acc.max_route_edges = std::max(acc.max_route_edges, out.edges);
    const double stretch =
        static_cast<double>(out.edges) / static_cast<double>(dist.at(u, v));
    acc.max_stretch = std::max(acc.max_stretch, stretch);
    acc.stretch_sum += stretch;
    ++acc.stretch_pairs;
    if (stretch > stretch_bound) ++acc.pairs_over;
  }
  return acc;
}

VerificationResult finish(const std::vector<SourceAccum>& accums) {
  VerificationResult result;
  double stretch_sum = 0.0;
  std::size_t stretch_pairs = 0;
  for (const SourceAccum& acc : accums) {
    result.pairs_checked += acc.pairs_checked;
    result.pairs_failed += acc.pairs_failed;
    result.invalid_hops += acc.invalid_hops;
    result.total_route_edges += acc.total_route_edges;
    result.max_route_edges = std::max(result.max_route_edges, acc.max_route_edges);
    result.max_stretch = std::max(result.max_stretch, acc.max_stretch);
    stretch_sum += acc.stretch_sum;
    stretch_pairs += acc.stretch_pairs;
  }
  result.all_delivered = result.pairs_failed == 0;
  result.mean_stretch =
      stretch_pairs == 0 ? 0.0 : stretch_sum / static_cast<double>(stretch_pairs);
  return result;
}

}  // namespace

std::size_t route_once(const graph::Graph& g, const RoutingScheme& scheme,
                       NodeId src, NodeId dst, std::size_t hop_budget) {
  if (hop_budget == 0) hop_budget = default_hop_budget(g.node_count());
  const WalkOutcome out = walk(g, scheme, src, dst, hop_budget);
  return out.delivered ? out.edges : 0;
}

namespace {

/// Shared sharded core of verify_scheme and verify_scheme_stretch.
std::vector<SourceAccum> verify_sharded(const graph::Graph& g,
                                        const RoutingScheme& scheme,
                                        std::size_t hop_budget,
                                        std::size_t threads,
                                        double stretch_bound) {
  auto& reg = obs::MetricsRegistry::global();
  const obs::Counter pairs = reg.counter("model.verifier.pairs_checked");
  const obs::Histogram route_edges =
      reg.histogram("model.verifier.source_route_edges", obs::hop_buckets());
  const auto dist = graph::DistanceCache::global().get(g);
  core::ThreadPool pool(threads);
  // The per-shard counter/histogram updates below run on pool workers; the
  // registry's shard merge keeps their totals bit-identical at any thread
  // count (tests/obs_test.cpp pins this at 1/2/8).
  const auto accums = core::parallel_map<SourceAccum>(
      pool, g.node_count(), [&](std::size_t u) {
        const SourceAccum acc =
            verify_from_source(g, scheme, *dist, static_cast<NodeId>(u),
                               hop_budget, stretch_bound);
        pairs.inc(acc.pairs_checked);
        route_edges.observe(acc.total_route_edges);
        return acc;
      });
  reg.counter("model.verifier.runs").inc();
  reg.counter("model.verifier.shards_merged").inc(accums.size());
  return accums;
}

}  // namespace

VerificationResult verify_scheme(const graph::Graph& g,
                                 const RoutingScheme& scheme,
                                 std::size_t hop_budget, std::size_t threads) {
  if (hop_budget == 0) hop_budget = default_hop_budget(g.node_count());
  obs::TraceSpan span("model.verify_scheme");
  return finish(verify_sharded(g, scheme, hop_budget, threads,
                               std::numeric_limits<double>::infinity()));
}

StretchVerificationResult verify_scheme_stretch(const graph::Graph& g,
                                                const RoutingScheme& scheme,
                                                double max_stretch,
                                                std::size_t hop_budget,
                                                std::size_t threads) {
  if (hop_budget == 0) hop_budget = default_hop_budget(g.node_count());
  obs::TraceSpan span("model.verify_scheme_stretch");
  const auto accums =
      verify_sharded(g, scheme, hop_budget, threads, max_stretch);
  StretchVerificationResult result;
  result.base = finish(accums);
  result.stretch_bound = max_stretch;
  for (const SourceAccum& acc : accums) {
    result.pairs_over_stretch += acc.pairs_over;
  }
  obs::counter("model.verifier.pairs_over_stretch")
      .inc(result.pairs_over_stretch);
  return result;
}

std::uint64_t route_fingerprint(const graph::Graph& g,
                                const RoutingScheme& scheme,
                                std::size_t hop_budget, std::size_t threads) {
  if (hop_budget == 0) hop_budget = default_hop_budget(g.node_count());
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;  // FNV-1a
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  const auto fold = [](std::uint64_t h, std::uint64_t x) {
    return (h ^ x) * kPrime;
  };
  core::ThreadPool pool(threads);
  const auto shards = core::parallel_map<std::uint64_t>(
      pool, g.node_count(), [&](std::size_t src) {
        const auto u = static_cast<NodeId>(src);
        std::uint64_t h = kOffset;
        for (NodeId v = 0; v < g.node_count(); ++v) {
          if (u == v) continue;
          h = fold(h, (static_cast<std::uint64_t>(u) << 32) | v);
          const NodeId dest_label = scheme.label_of(v);
          MessageHeader header;
          NodeId current = u;
          std::size_t edges = 0;
          while (current != v && edges < hop_budget) {
            const NodeId next = scheme.next_hop(current, dest_label, header);
            if (next >= g.node_count() || !g.has_edge(current, next)) break;
            header.came_from = current;
            current = next;
            h = fold(h, current);
            ++edges;
          }
          // Sentinel separates "delivered in k hops" from any undelivered
          // walk sharing a prefix.
          h = fold(h, current == v ? 1u : 0u);
        }
        return h;
      });
  // In-order merge: the fingerprint is a pure function of the per-source
  // hashes in source order, independent of scheduling.
  std::uint64_t out = core::mix64(0x10f1u ^ g.node_count());
  for (std::uint64_t h : shards) out = core::mix64(out ^ h);
  return out;
}

VerificationResult verify_scheme_serial(const graph::Graph& g,
                                        const RoutingScheme& scheme,
                                        std::size_t hop_budget) {
  if (hop_budget == 0) hop_budget = default_hop_budget(g.node_count());
  const graph::DistanceMatrix dist(g);
  std::vector<SourceAccum> accums;
  accums.reserve(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    accums.push_back(verify_from_source(
        g, scheme, dist, u, hop_budget,
        std::numeric_limits<double>::infinity()));
  }
  return finish(accums);
}

VerificationResult verify_scheme_sampled(const graph::Graph& g,
                                         const RoutingScheme& scheme,
                                         std::size_t samples,
                                         std::uint64_t seed,
                                         std::size_t hop_budget) {
  if (hop_budget == 0) hop_budget = default_hop_budget(g.node_count());
  VerificationResult result;
  const std::size_t n = g.node_count();
  if (n < 2) {
    result.all_delivered = true;
    return result;
  }
  graph::Rng rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(n - 1));
  double stretch_sum = 0.0;
  std::size_t stretch_pairs = 0;
  // Per-source BFS cache: sampled sources often repeat at small n.
  std::vector<std::vector<std::uint32_t>> dist_cache(n);
  while (result.pairs_checked < samples) {
    const NodeId u = pick(rng);
    const NodeId v = pick(rng);
    if (u == v) continue;
    if (dist_cache[u].empty()) dist_cache[u] = graph::bfs_distances(g, u);
    const std::uint32_t d = dist_cache[u][v];
    if (d == graph::kUnreachable) continue;
    ++result.pairs_checked;
    const std::size_t edges = route_once(g, scheme, u, v, hop_budget);
    if (edges == 0) {
      ++result.pairs_failed;
      continue;
    }
    result.total_route_edges += edges;
    result.max_route_edges = std::max(result.max_route_edges, edges);
    const double stretch = static_cast<double>(edges) / d;
    result.max_stretch = std::max(result.max_stretch, stretch);
    stretch_sum += stretch;
    ++stretch_pairs;
  }
  result.all_delivered = result.pairs_failed == 0;
  result.mean_stretch =
      stretch_pairs == 0 ? 0.0 : stretch_sum / static_cast<double>(stretch_pairs);
  return result;
}

FullInformationCheck verify_full_information(
    const graph::Graph& g, const FullInformationRouting& scheme) {
  FullInformationCheck check;
  const auto dist_ptr = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_ptr;
  const std::size_t n = g.node_count();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v || dist.at(u, v) == graph::kUnreachable) continue;
      auto expected = graph::shortest_path_successors(g, dist, u, v);
      auto actual = scheme.all_next_hops(u, scheme.label_of(v));
      std::sort(actual.begin(), actual.end());
      if (expected != actual) ++check.mismatched_pairs;
    }
  }
  check.exact = check.mismatched_pairs == 0;
  return check;
}

}  // namespace optrt::model
