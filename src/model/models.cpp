#include "model/models.hpp"

namespace optrt::model {

std::string to_string(Knowledge k) {
  switch (k) {
    case Knowledge::kFixedPorts:
      return "IA";
    case Knowledge::kFreePorts:
      return "IB";
    case Knowledge::kNeighborsKnown:
      return "II";
  }
  return "?";
}

std::string to_string(Relabeling r) {
  switch (r) {
    case Relabeling::kNone:
      return "alpha";
    case Relabeling::kPermutation:
      return "beta";
    case Relabeling::kArbitrary:
      return "gamma";
  }
  return "?";
}

std::string Model::name() const {
  return to_string(knowledge) + "." + to_string(relabeling);
}

std::array<Model, 9> Model::all() {
  std::array<Model, 9> out{};
  std::size_t i = 0;
  for (Knowledge k :
       {Knowledge::kFixedPorts, Knowledge::kFreePorts, Knowledge::kNeighborsKnown}) {
    for (Relabeling r :
         {Relabeling::kNone, Relabeling::kPermutation, Relabeling::kArbitrary}) {
      out[i++] = Model{k, r};
    }
  }
  return out;
}

}  // namespace optrt::model
