// Scheme verifier: drives every (source, destination) pair through a
// scheme's local routing functions hop by hop, checks delivery, and
// measures the achieved stretch against true shortest-path distances —
// the definitions of "route" and "stretch factor" from §1 made executable.
#pragma once

#include <cstdint>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "model/scheme.hpp"

namespace optrt::model {

/// Default hop budget for routing a message on an n-node graph: 4n + 16,
/// generous enough for Theorem 5's 2(c+3)·log n probe walks. The single
/// source of truth behind the `hop_budget = 0` / `max_hops = 0` sentinels
/// of the verifier and the simulator.
[[nodiscard]] constexpr std::size_t default_hop_budget(std::size_t n) noexcept {
  return 4 * n + 16;
}

struct VerificationResult {
  bool all_delivered = false;
  std::size_t pairs_checked = 0;
  std::size_t pairs_failed = 0;     ///< undeliverable or hop-budget exceeded
  std::size_t invalid_hops = 0;     ///< next_hop returned a non-neighbour
  double max_stretch = 0.0;         ///< max over pairs of |route| / d(u,v)
  double mean_stretch = 0.0;
  std::uint64_t total_route_edges = 0;  ///< Σ edges traversed (incl. probes)
  std::size_t max_route_edges = 0;

  [[nodiscard]] bool ok() const noexcept {
    return all_delivered && invalid_hops == 0;
  }
};

/// Routes every ordered pair (u, v), u != v, through `scheme` on `g`.
/// A route longer than `hop_budget` edges counts as failed
/// (0 = default_hop_budget(n)).
///
/// The pair space is sharded by source node across `threads` workers
/// (0 = core::default_threads()) and per-source partial results are merged
/// in source order, so every field of the result — including the
/// floating-point max/mean stretch — is bit-identical for any thread
/// count, and identical to verify_scheme_serial. Distances come from
/// graph::DistanceCache::global().
[[nodiscard]] VerificationResult verify_scheme(const graph::Graph& g,
                                               const RoutingScheme& scheme,
                                               std::size_t hop_budget = 0,
                                               std::size_t threads = 0);

/// verify_scheme plus a stretch bound: the base result, the bound it was
/// checked against, and how many pairs exceeded it.
struct StretchVerificationResult {
  VerificationResult base;
  double stretch_bound = 0.0;
  std::size_t pairs_over_stretch = 0;  ///< delivered pairs with stretch > bound

  [[nodiscard]] bool ok() const noexcept {
    return base.ok() && pairs_over_stretch == 0;
  }
};

/// Stretch-aware verification: routes every ordered pair exactly like
/// verify_scheme (same sharding, same bit-identical merge at any thread
/// count) and additionally counts pairs whose achieved stretch exceeds
/// `max_stretch`. ok() demands delivery, no invalid hops, *and* every pair
/// within the bound; worst-case and average stretch are in `base`.
[[nodiscard]] StretchVerificationResult verify_scheme_stretch(
    const graph::Graph& g, const RoutingScheme& scheme, double max_stretch,
    std::size_t hop_budget = 0, std::size_t threads = 0);

/// Single-threaded reference implementation of verify_scheme, kept as the
/// differential-testing baseline (tests/verifier_test.cpp compares the
/// sharded path against it field by field).
[[nodiscard]] VerificationResult verify_scheme_serial(
    const graph::Graph& g, const RoutingScheme& scheme,
    std::size_t hop_budget = 0);

/// Order-sensitive 64-bit hash of the full pair space's routes: for every
/// ordered pair (u, v), u != v, the exact hop sequence the scheme walks
/// (with a sentinel for undelivered pairs) folded FNV-style. Two schemes
/// with equal fingerprints route every pair through the identical node
/// sequence — the equivalence the churn differential oracle uses for TZ,
/// whose repaired tables are route-equal rather than byte-comparable in
/// general. Sharded by source with an in-order merge: bit-identical at
/// any `threads` (0 = core::default_threads()).
[[nodiscard]] std::uint64_t route_fingerprint(const graph::Graph& g,
                                              const RoutingScheme& scheme,
                                              std::size_t hop_budget = 0,
                                              std::size_t threads = 0);

/// Routes one pair; returns the number of edges traversed, or 0 on failure.
[[nodiscard]] std::size_t route_once(const graph::Graph& g,
                                     const RoutingScheme& scheme, NodeId src,
                                     NodeId dst, std::size_t hop_budget);

/// Sampled verification for large n: routes `samples` uniformly random
/// connected pairs instead of all n(n−1). Same semantics as verify_scheme
/// restricted to the sample.
[[nodiscard]] VerificationResult verify_scheme_sampled(
    const graph::Graph& g, const RoutingScheme& scheme, std::size_t samples,
    std::uint64_t seed, std::size_t hop_budget = 0);

/// Checks a full-information scheme: for every pair, the advertised hop set
/// must equal the true shortest-path successor set.
struct FullInformationCheck {
  bool exact = false;
  std::size_t mismatched_pairs = 0;
};
[[nodiscard]] FullInformationCheck verify_full_information(
    const graph::Graph& g, const FullInformationRouting& scheme);

}  // namespace optrt::model
