#include "model/fastpath.hpp"

#include <stdexcept>

#include "model/scheme.hpp"
#include "obs/metrics.hpp"

namespace optrt::model {

void FastPath::route_batch(std::span<const RoutePair> pairs,
                           std::span<graph::NodeId> out_hops) const {
  if (pairs.size() != out_hops.size()) {
    throw std::invalid_argument(
        "FastPath::route_batch: pairs/out_hops length mismatch");
  }
  batch_impl(pairs, out_hops);
  obs::counter("lookup.batches").inc();
  obs::counter("lookup.pairs").inc(pairs.size());
}

void FastPath::batch_impl(std::span<const RoutePair> pairs,
                          std::span<graph::NodeId> out_hops) const {
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    out_hops[i] = next_hop(pairs[i].src, pairs[i].dst_label);
  }
}

namespace {

class FallbackFastPath final : public FastPath {
 public:
  explicit FallbackFastPath(const RoutingScheme& scheme) : scheme_(&scheme) {}

  [[nodiscard]] std::string name() const override { return scheme_->name(); }
  [[nodiscard]] std::size_t node_count() const override {
    return scheme_->node_count();
  }
  [[nodiscard]] graph::NodeId next_hop(
      graph::NodeId u, graph::NodeId dest_label) const override {
    MessageHeader header;
    return scheme_->next_hop(u, dest_label, header);
  }

 private:
  const RoutingScheme* scheme_;
};

}  // namespace

std::unique_ptr<FastPath> make_fallback_fastpath(const RoutingScheme& scheme) {
  note_fastpath_compiled("fallback");
  return std::make_unique<FallbackFastPath>(scheme);
}

void note_fastpath_compiled(const std::string& tag) {
  obs::counter("lookup.compiled").inc();
  obs::counter("lookup.compiled." + tag).inc();
}

PackedValueArray::PackedValueArray(std::span<const std::uint32_t> values,
                                   unsigned width)
    : size_(values.size()), width_(width) {
  if (width_ > 57) {
    throw std::invalid_argument("PackedValueArray: width > 57 unsupported");
  }
  const std::uint64_t limit =
      width_ >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width_);
  // +1 slack word keeps read_packed's unconditional second load in bounds.
  words_.assign((size_ * width_ + 63) / 64 + 1, 0);
  std::size_t pos = 0;
  for (const std::uint32_t v : values) {
    if (v >= limit) {
      throw std::invalid_argument("PackedValueArray: value exceeds width");
    }
    const std::size_t w = pos >> 6;
    const unsigned off = static_cast<unsigned>(pos & 63);
    words_[w] |= static_cast<std::uint64_t>(v) << off;
    if (off + width_ > 64) {
      words_[w + 1] |= static_cast<std::uint64_t>(v) >> (64 - off);
    }
    pos += width_;
  }
}

PackedSparseArray::PackedSparseArray(bitio::BitVector mask,
                                     std::span<const std::uint32_t> values,
                                     unsigned width) {
  if (mask.popcount() != values.size()) {
    throw std::invalid_argument(
        "PackedSparseArray: values must align with mask population");
  }
  mask_ = bitio::RankSelect(std::move(mask));
  values_ = PackedValueArray(values, width);
}

}  // namespace optrt::model

// The default compiled form for schemes without a bespoke one lives here
// so scheme.cpp stays header-layout only.
namespace optrt::model {

std::unique_ptr<FastPath> RoutingScheme::compile_fast() const {
  return make_fallback_fastpath(*this);
}

}  // namespace optrt::model
