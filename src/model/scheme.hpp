// The routing-scheme abstraction of §1.
//
// A routing scheme comprises a local routing function for every node: given
// a destination (an external label), the function at node u names an edge
// incident to u on a path toward the destination. The space requirement of
// a scheme is the sum over nodes of the bits needed to encode the local
// routing functions, plus — under relabelling model γ — the bits of the
// node labels themselves.
//
// Honesty discipline: every concrete scheme in src/schemes serializes each
// local routing function into a BitVector at construction and *decodes that
// bit string* (plus only the model's free knowledge: the port count, and
// under II the neighbour labels) inside next_hop(). SpaceReport therefore
// reports exactly the information the routing functions consult.
#pragma once

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "model/models.hpp"

namespace optrt::model {

class FastPath;

using graph::NodeId;

/// Per-message scratch carried in the message header. Most schemes route
/// statelessly; Theorem 5's sequential search uses a probe phase and index.
/// `came_from` is maintained by the carrier (verifier / simulator): a node
/// always knows the link a message arrived over.
struct MessageHeader {
  std::uint32_t phase = 0;
  std::uint32_t probe_index = 0;
  NodeId came_from = static_cast<NodeId>(-1);

  /// Header bits a real implementation would carry (phase + index); used
  /// for reporting only.
  [[nodiscard]] unsigned bits_in_flight() const noexcept;
};

/// Space accounting for one scheme instance.
struct SpaceReport {
  /// Bits of the serialized local routing function, per node.
  std::vector<std::size_t> function_bits;
  /// Charged label bits (model γ only; zero otherwise).
  std::size_t label_bits = 0;

  [[nodiscard]] std::size_t total_function_bits() const {
    return std::accumulate(function_bits.begin(), function_bits.end(),
                           std::size_t{0});
  }
  /// The paper's space requirement: Σ function bits (+ label bits under γ).
  [[nodiscard]] std::size_t total_bits() const {
    return total_function_bits() + label_bits;
  }
  [[nodiscard]] std::size_t max_node_bits() const {
    std::size_t best = 0;
    for (std::size_t b : function_bits) best = std::max(best, b);
    return best;
  }
};

/// Abstract routing scheme over a fixed graph.
class RoutingScheme {
 public:
  virtual ~RoutingScheme() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Model routing_model() const = 0;
  [[nodiscard]] virtual std::size_t node_count() const = 0;

  /// External label of an internal node (identity unless relabelled; γ
  /// schemes additionally expose bit labels via their own interface).
  [[nodiscard]] virtual NodeId label_of(NodeId node) const { return node; }
  [[nodiscard]] virtual NodeId node_of_label(NodeId label) const {
    return label;
  }

  /// Next hop (internal node id) from internal node `u` toward the
  /// destination with external label `dest_label`.
  /// Precondition: dest_label != label_of(u).
  [[nodiscard]] virtual NodeId next_hop(NodeId u, NodeId dest_label,
                                        MessageHeader& header) const = 0;

  /// True when next_hop neither reads nor writes the MessageHeader — i.e.
  /// every hop equals the answer for a fresh header, so a carrier may
  /// batch hops through the compiled FastPath. Theorem 5's sequential
  /// search and the hierarchical scheme carry per-message state and
  /// return false.
  [[nodiscard]] virtual bool stateless_next_hop() const { return true; }

  /// Space used by this scheme under its model's accounting.
  [[nodiscard]] virtual SpaceReport space() const = 0;

  /// Compiles the query-optimized form of this scheme (model/fastpath.hpp):
  /// first hops identical to next_hop with a fresh MessageHeader. The
  /// serializable schemes return self-contained compiled tables; the base
  /// default returns a generic wrapper that borrows this scheme (the
  /// scheme must then outlive the fast path).
  [[nodiscard]] virtual std::unique_ptr<FastPath> compile_fast() const;

  /// The neighbours of `u` in the scheme's own port order — the
  /// enumeration a deflection policy consults when the primary hop is
  /// down. Schemes that do not expose a port assignment return empty, and
  /// the carrier falls back to its model-II sorted neighbour view.
  [[nodiscard]] virtual std::vector<NodeId> port_enumeration(NodeId u) const {
    (void)u;
    return {};
  }
};

/// Full-information shortest path routing (§1): the function at u returns
/// *all* edges incident to u on shortest paths to the destination, enabling
/// rerouting when links fail.
class FullInformationRouting : public RoutingScheme {
 public:
  /// All next hops of `u` on shortest paths toward `dest_label`, in
  /// increasing label order.
  [[nodiscard]] virtual std::vector<NodeId> all_next_hops(
      NodeId u, NodeId dest_label) const = 0;
};

}  // namespace optrt::model
