// The nine routing models of §1.
//
// Two orthogonal dimensions. Local knowledge:
//   IA — ports distinguish incident edges, assignment fixed (cannot be
//        altered; possibly adversarial);
//   IB — ports distinguish incident edges, assignment free (the strategy
//        may re-assign before computing the scheme);
//   II — nodes know the labels of their neighbours and over which edge to
//        reach them, for free.
// Relabelling:
//   α — nodes keep their labels {0..n−1};
//   β — labels may be permuted within {0..n−1};
//   γ — arbitrary labels, charged to the space requirement.
//
// (The paper excludes II with free port assignment as degenerate — known
// neighbours make the port permutation a free n·log n-bit channel — so II
// always means fixed-but-irrelevant ports.)
#pragma once

#include <array>
#include <string>

namespace optrt::model {

enum class Knowledge {
  kFixedPorts,      // IA
  kFreePorts,       // IB
  kNeighborsKnown,  // II
};

enum class Relabeling {
  kNone,         // α
  kPermutation,  // β
  kArbitrary,    // γ
};

/// One of the nine models: a (knowledge, relabelling) pair.
struct Model {
  Knowledge knowledge = Knowledge::kFixedPorts;
  Relabeling relabeling = Relabeling::kNone;

  friend bool operator==(const Model&, const Model&) = default;

  /// Paper-style name, e.g. "IA·α", "II·γ".
  [[nodiscard]] std::string name() const;

  /// True under II: neighbour labels (and the edges to them) are free.
  [[nodiscard]] bool neighbors_known() const noexcept {
    return knowledge == Knowledge::kNeighborsKnown;
  }
  /// True under IB: the scheme may pick the port assignment.
  [[nodiscard]] bool ports_free() const noexcept {
    return knowledge == Knowledge::kFreePorts;
  }
  /// True under γ: label bits are charged to the space requirement.
  [[nodiscard]] bool labels_charged() const noexcept {
    return relabeling == Relabeling::kArbitrary;
  }

  /// All nine models, row-major over (knowledge, relabelling).
  [[nodiscard]] static std::array<Model, 9> all();
};

[[nodiscard]] std::string to_string(Knowledge k);
[[nodiscard]] std::string to_string(Relabeling r);

// Shorthands matching the paper's notation.
inline constexpr Model kIAalpha{Knowledge::kFixedPorts, Relabeling::kNone};
inline constexpr Model kIAbeta{Knowledge::kFixedPorts, Relabeling::kPermutation};
inline constexpr Model kIAgamma{Knowledge::kFixedPorts, Relabeling::kArbitrary};
inline constexpr Model kIBalpha{Knowledge::kFreePorts, Relabeling::kNone};
inline constexpr Model kIBbeta{Knowledge::kFreePorts, Relabeling::kPermutation};
inline constexpr Model kIBgamma{Knowledge::kFreePorts, Relabeling::kArbitrary};
inline constexpr Model kIIalpha{Knowledge::kNeighborsKnown, Relabeling::kNone};
inline constexpr Model kIIbeta{Knowledge::kNeighborsKnown, Relabeling::kPermutation};
inline constexpr Model kIIgamma{Knowledge::kNeighborsKnown, Relabeling::kArbitrary};

}  // namespace optrt::model
