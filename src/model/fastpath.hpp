// Query-optimized routing: compiled fast paths and batched lookups.
//
// RoutingScheme::next_hop is the honesty-disciplined reference path: it
// re-decodes the serialized routing function (BitReader, bit at a time)
// on every call. A FastPath is the same routing function *compiled once*
// into flat, cache-friendly structures — succinct rank directories
// (bitio::RankSelect) over membership bit-vectors, bit-packed fixed-width
// value arrays, and CSR port→neighbour tables (graph::CsrGraph) — so a
// lookup is a handful of word reads instead of a decode loop.
//
// Contract: a FastPath answers exactly the *first hop* question —
// next_hop(u, dest) must equal what RoutingScheme::next_hop(u, dest, h)
// returns for a fresh MessageHeader h, including thrown exceptions. The
// differential suite (tests/fastpath_test.cpp) holds every compiled form
// to that bit-for-bit standard before any benchmark number counts.
//
// Compiled fast paths own copies of everything they consult and stay
// valid after the source scheme is destroyed; only the generic fallback
// (for schemes without a compiled form) borrows the scheme.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bitio/rank_select.hpp"
#include "graph/graph.hpp"

namespace optrt::model {

class RoutingScheme;

/// One (source, destination-label) query.
struct RoutePair {
  graph::NodeId src = 0;
  graph::NodeId dst_label = 0;
};

/// A compiled, immutable first-hop oracle for one routing scheme.
class FastPath {
 public:
  virtual ~FastPath() = default;

  /// Name of the scheme this fast path was compiled from.
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t node_count() const = 0;

  /// First hop from internal node `u` toward external label `dest_label`;
  /// identical (including exceptions) to the scheme's next_hop with a
  /// fresh MessageHeader. Precondition: dest_label != label_of(u).
  [[nodiscard]] virtual graph::NodeId next_hop(
      graph::NodeId u, graph::NodeId dest_label) const = 0;

  /// Answers every pair into out_hops (same index). Throws
  /// std::invalid_argument on span length mismatch. Bumps the lookup.*
  /// counters once per batch, never per pair.
  void route_batch(std::span<const RoutePair> pairs,
                   std::span<graph::NodeId> out_hops) const;

 protected:
  /// Batch kernel; default loops next_hop. Compiled forms may override
  /// with a monomorphic loop (no per-pair virtual dispatch).
  virtual void batch_impl(std::span<const RoutePair> pairs,
                          std::span<graph::NodeId> out_hops) const;
};

/// Generic fallback: wraps the scheme's own next_hop with a fresh header
/// per call. Used by schemes without a compiled form; borrows the scheme,
/// which must outlive the fast path.
[[nodiscard]] std::unique_ptr<FastPath> make_fallback_fastpath(
    const RoutingScheme& scheme);

/// Records a compile_fast() in the lookup.* counters
/// (lookup.compiled and lookup.compiled.<tag>).
void note_fastpath_compiled(const std::string& tag);

/// Reads `width` bits starting at absolute bit `pos` from a packed word
/// array, LSB-first (BitVector layout). Precondition: width <= 57 and the
/// read stays inside words padded with at least one trailing slack word —
/// PackedValueArray guarantees both.
[[nodiscard]] inline std::uint64_t read_packed(
    const std::uint64_t* words, std::size_t pos, unsigned width) noexcept {
  if (width == 0) return 0;
  const std::size_t w = pos >> 6;
  const unsigned off = static_cast<unsigned>(pos & 63);
  std::uint64_t v = words[w] >> off;
  if (off + width > 64) v |= words[w + 1] << (64 - off);
  return v & ((std::uint64_t{1} << width) - 1);
}

/// Smallest width >= `needed` that divides 64, so consecutive packed
/// entries never straddle a word boundary: read_packed's straddle branch
/// becomes never-taken (perfectly predicted) and every read is one load.
/// Dense batch-hot tables pad to this; sparse tables keep the exact width.
/// Precondition: needed <= 32.
[[nodiscard]] constexpr unsigned straddle_free_width(
    unsigned needed) noexcept {
  unsigned w = needed == 0 ? 1 : needed;
  while (64 % w != 0) ++w;
  return w;
}

/// Fixed-width values packed back to back in one word array, with a
/// trailing slack word so read_packed never reads past the end.
class PackedValueArray {
 public:
  PackedValueArray() = default;
  PackedValueArray(std::span<const std::uint32_t> values, unsigned width);

  [[nodiscard]] std::uint64_t at(std::size_t i) const noexcept {
    return read_packed(words_.data(), i * width_, width_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] unsigned width() const noexcept { return width_; }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  unsigned width_ = 0;
};

/// A sparse map position → value: a membership bit-vector with O(1) rank
/// plus the values of the member positions, bit-packed in rank order.
/// This is the succinct backbone shared by the compiled table forms: the
/// compact-node "next hop per non-neighbour" tables, the hub and
/// routing-center tables, landmark vicinities, and hierarchical target
/// sets all reduce to it.
class PackedSparseArray {
 public:
  PackedSparseArray() = default;
  /// `mask` marks member positions; `values[i]` belongs to the i-th
  /// member in increasing position order (so values.size() must equal
  /// mask.popcount()).
  PackedSparseArray(bitio::BitVector mask,
                    std::span<const std::uint32_t> values, unsigned width);

  [[nodiscard]] bool contains(std::size_t pos) const noexcept {
    return mask_.get(pos);
  }
  /// Value at a member position. Precondition: contains(pos).
  [[nodiscard]] std::uint64_t value(std::size_t pos) const {
    return values_.at(mask_.rank1(pos));
  }
  [[nodiscard]] std::size_t size() const noexcept { return mask_.size(); }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return mask_.ones();
  }

 private:
  bitio::RankSelect mask_;
  PackedValueArray values_;
};

/// Self-contained copy of a graph's packed adjacency matrix: the O(1)
/// edge test the model-II compiled forms need, without borrowing the
/// Graph they were built from.
class AdjacencyBits {
 public:
  AdjacencyBits() = default;
  explicit AdjacencyBits(const graph::Graph& g)
      : words_per_row_((g.node_count() + 63) / 64) {
    words_.reserve(g.node_count() * words_per_row_);
    for (graph::NodeId u = 0; u < g.node_count(); ++u) {
      const auto row = g.row_words(u);
      words_.insert(words_.end(), row.begin(), row.end());
    }
  }

  [[nodiscard]] bool has_edge(graph::NodeId u,
                              graph::NodeId v) const noexcept {
    const std::size_t i =
        static_cast<std::size_t>(u) * words_per_row_ + (v >> 6);
    return (words_[i] >> (v & 63)) & 1u;
  }

 private:
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace optrt::model
