// Incremental scheme repair under topology churn (ROADMAP item 5a).
//
// A RepairableScheme wraps a routing scheme together with the machinery to
// keep its tables correct while the underlying graph changes one link at a
// time: apply_event() patches only the tables whose routes the event can
// invalidate (tracked through maintained all-pairs distances / landmark
// balls), falling back to a full rebuild when the dirty set exceeds a
// threshold. The contract the churn differential oracle enforces: after
// every applied event, scheme() must equal a fresh centralized build on
// topology() — bit-identical tables for the deterministic schemes,
// identical full-pair-space route fingerprints for TZ.
//
// This header is deliberately net-free (model must not depend on net): a
// TopologyEvent is a single undirected link-liveness delta, and the
// net-side churn driver expands its FaultEvents (including node events)
// into link deltas through net::LiveTopology.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "model/scheme.hpp"

namespace optrt::model {

/// One undirected link-liveness change: {u, v} came up or went down.
/// Precondition for apply_event: the delta is real (the link was live
/// before a down event, dead before an up one) — LiveTopology only emits
/// such deltas.
struct TopologyEvent {
  NodeId u = 0;
  NodeId v = 0;
  bool up = false;

  friend bool operator==(const TopologyEvent&, const TopologyEvent&) noexcept =
      default;
};

/// What apply_event did.
enum class RepairOutcome : std::uint8_t {
  kNoOp,          ///< the event cannot affect any table (empty dirty set)
  kPatched,       ///< only the dirty tables were rebuilt
  kRebuilt,       ///< dirty set over threshold (or forced): full rebuild
  kInapplicable,  ///< the scheme cannot exist on the new topology; tables
                  ///< are stale until a later event makes it buildable
};

/// Deterministic work accounting across a repair stream. Counters, not
/// wall-clock, so bench rows are bit-identical at any thread count.
struct RepairStats {
  std::uint64_t events = 0;
  std::uint64_t noops = 0;
  std::uint64_t patched = 0;
  std::uint64_t rebuilt = 0;
  std::uint64_t inapplicable = 0;
  std::uint64_t tables_touched = 0;     ///< per-node tables rebuilt
  std::uint64_t dist_rows_bfs = 0;      ///< distance rows recomputed by BFS
  std::uint64_t dist_rows_patched = 0;  ///< distance rows fixed by min-plus

  /// The scalar the bench compares incremental repair against full
  /// rebuild on: one unit per table rebuilt or distance row refreshed.
  [[nodiscard]] std::uint64_t work() const noexcept {
    return tables_touched + dist_rows_bfs + dist_rows_patched;
  }
};

struct RepairConfig {
  /// Fall back to a full rebuild when more than this fraction of the
  /// per-node tables is dirty (the patch bookkeeping would cost more than
  /// rebuilding outright).
  double rebuild_fraction = 0.5;
  /// Always rebuild from scratch — the baseline mode bench_churn measures
  /// incremental repair against.
  bool force_rebuild = false;
};

/// A routing scheme that can follow a stream of topology events.
class RepairableScheme {
 public:
  virtual ~RepairableScheme() = default;

  /// Stable scheme identifier ("full-table", "compact-diam2", "tz").
  [[nodiscard]] virtual std::string kind_name() const = 0;

  /// The latest materialized scheme. While available() is false this is
  /// stale: built for an earlier topology (serving continues degraded).
  [[nodiscard]] virtual const RoutingScheme& scheme() const = 0;

  /// True when scheme() matches topology(); false after kInapplicable.
  [[nodiscard]] virtual bool available() const = 0;

  /// The current live topology (base graph with all applied deltas).
  [[nodiscard]] virtual const graph::Graph& topology() const = 0;

  /// Applies one link delta: updates the live topology, patches or
  /// rebuilds the affected tables, and re-materializes scheme().
  virtual RepairOutcome apply_event(const TopologyEvent& event) = 0;

  [[nodiscard]] virtual const RepairStats& stats() const = 0;
};

}  // namespace optrt::model
