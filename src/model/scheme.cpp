#include "model/scheme.hpp"

#include <bit>

namespace optrt::model {

unsigned MessageHeader::bits_in_flight() const noexcept {
  // Two phase bits plus the probe index at its natural width.
  const unsigned index_bits =
      probe_index == 0 ? 0 : static_cast<unsigned>(std::bit_width(probe_index));
  return 2 + index_bits;
}

}  // namespace optrt::model
