// Experiment harness helpers: certified random-graph sampling and scheme
// size sweeps, shared by the bench binaries that regenerate the paper's
// Table 1 and per-theorem results.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/parallel.hpp"
#include "graph/generators.hpp"
#include "graph/randomness.hpp"

namespace optrt::core {

/// Draws G(n, 1/2) until the Lemma 1–3 certificate passes (the paper's
/// "almost all graphs" set — rejection is rare for n ≥ 32).
/// Throws std::runtime_error after `max_attempts` failures.
[[nodiscard]] graph::Graph certified_random_graph(std::size_t n,
                                                  graph::Rng& rng,
                                                  double c = 3.0,
                                                  int max_attempts = 64);

/// One measured point of a size sweep.
struct SweepPoint {
  std::size_t n = 0;
  std::uint64_t seed = 0;
  double value = 0.0;
};

struct SweepOptions {
  /// Base key for per-point RNG seeding; point (n, i) draws from an RNG
  /// seeded with point_seed(base_seed, n, i).
  std::uint64_t base_seed = 0;
  /// Worker threads (0 = core::default_threads()).
  std::size_t threads = 0;
};

/// Runs `measure(graph)` over certified graphs for each n and seed index
/// 1..seeds. Points are measured concurrently on `opt.threads` workers;
/// because every point draws from its own independently seeded RNG and
/// results are collected in (n, seed) order, the returned vector is
/// bit-identical for every thread count. `measure` must be safe to call
/// concurrently.
[[nodiscard]] std::vector<SweepPoint> sweep_certified(
    const std::vector<std::size_t>& ns, std::size_t seeds,
    const std::function<double(const graph::Graph&)>& measure,
    const SweepOptions& opt = {});

/// sweep_certified, but `measure` also receives the point's derived RNG
/// seed, so downstream randomness (fault plans, traffic workloads) can be
/// re-derived reproducibly from the same per-point stream — the seed →
/// plan → stats pipeline the fault benches document in EXPERIMENTS.md.
[[nodiscard]] std::vector<SweepPoint> sweep_certified_seeded(
    const std::vector<std::size_t>& ns, std::size_t seeds,
    const std::function<double(const graph::Graph&, std::uint64_t)>& measure,
    const SweepOptions& opt = {});

/// Mean of the sweep values for one n.
[[nodiscard]] double mean_at(const std::vector<SweepPoint>& points,
                             std::size_t n);

}  // namespace optrt::core
