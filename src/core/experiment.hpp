// Experiment harness helpers: certified random-graph sampling and scheme
// size sweeps, shared by the bench binaries that regenerate the paper's
// Table 1 and per-theorem results.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/generators.hpp"
#include "graph/randomness.hpp"

namespace optrt::core {

/// Draws G(n, 1/2) until the Lemma 1–3 certificate passes (the paper's
/// "almost all graphs" set — rejection is rare for n ≥ 32).
/// Throws std::runtime_error after `max_attempts` failures.
[[nodiscard]] graph::Graph certified_random_graph(std::size_t n,
                                                  graph::Rng& rng,
                                                  double c = 3.0,
                                                  int max_attempts = 64);

/// One measured point of a size sweep.
struct SweepPoint {
  std::size_t n = 0;
  std::uint64_t seed = 0;
  double value = 0.0;
};

/// Runs `measure(graph)` over certified graphs for each n and seed.
[[nodiscard]] std::vector<SweepPoint> sweep_certified(
    const std::vector<std::size_t>& ns, std::size_t seeds,
    const std::function<double(const graph::Graph&)>& measure);

/// Mean of the sweep values for one n.
[[nodiscard]] double mean_at(const std::vector<SweepPoint>& points,
                             std::size_t n);

}  // namespace optrt::core
