// Descriptive statistics and log–log slope fits for the bench harness
// (measuring the *shape* of bounds: exponents and leading constants).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace optrt::core {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values) noexcept;

/// Least-squares fit y = a·x^b through (x, y) points: returns (log2 a, b).
/// Useful for confirming Θ(n^b) shapes from measured sizes.
struct PowerFit {
  double log2_coefficient = 0.0;
  double exponent = 0.0;
};
[[nodiscard]] PowerFit fit_power_law(std::span<const double> xs,
                                     std::span<const double> ys);

}  // namespace optrt::core
