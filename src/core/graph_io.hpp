// Graph files: the Definition 2 encoding E(G) with a self-delimiting node
// count, packed into bytes — the on-disk interchange format of the CLI.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace optrt::core {

/// Writes [n]′ E(G) to `path`. Throws std::runtime_error on I/O errors.
void save_graph(const std::string& path, const graph::Graph& g);

/// Reads a graph written by save_graph.
[[nodiscard]] graph::Graph load_graph(const std::string& path);

}  // namespace optrt::core
