// Deterministic parallel execution engine for the experiment harness.
//
// A small work-stealing-free thread pool: one shared chunked index queue
// (an atomic cursor over [0, count)), N persistent workers plus the
// calling thread, no per-task allocation. Parallel results are always
// stored by index, and every reducer in the library merges partial
// results in index order, so sweeps and verifications are bit-identical
// regardless of the thread count — the determinism contract the tests in
// tests/parallel_test.cpp enforce.
//
// Thread-count policy: an explicit count wins; otherwise the process-wide
// default applies, which is settable via set_default_threads() (the CLI's
// --threads flag), the OPTRT_THREADS environment variable, or finally
// std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace optrt::core {

/// Threads the hardware offers (≥ 1).
[[nodiscard]] std::size_t hardware_threads() noexcept;

/// Process-wide default thread count: set_default_threads() if called,
/// else OPTRT_THREADS if set to a positive integer, else hardware_threads().
[[nodiscard]] std::size_t default_threads();

/// Overrides the process-wide default (0 restores env/hardware detection).
void set_default_threads(std::size_t threads);

/// Scans argv for "--threads N" (or "--threads=N"), applies it via
/// set_default_threads(), and removes the flag from argv/argc so callers
/// can parse the rest undisturbed. Returns the chosen default thread count.
std::size_t apply_threads_flag(int& argc, char** argv);

/// SplitMix64 finalizer: the avalanche stage used to derive independent
/// per-point RNG seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed for point (a, b) of a sweep keyed by `base`: hash(base, a, b).
/// Each point gets a statistically independent RNG stream, so the order
/// (and thread) a point runs on cannot affect its result.
[[nodiscard]] constexpr std::uint64_t point_seed(std::uint64_t base,
                                                 std::uint64_t a,
                                                 std::uint64_t b) noexcept {
  return mix64(mix64(mix64(base) ^ a) ^ b);
}

/// Fixed-size pool of persistent workers executing chunked index ranges.
class ThreadPool {
 public:
  /// `threads` = total concurrency including the calling thread
  /// (0 = default_threads()). A pool of 1 runs everything inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs `chunk_fn(begin, end)` over a partition of [0, count), spread
  /// across the pool; blocks until all chunks finish. The first exception
  /// thrown by any chunk is rethrown here (remaining chunks are drained
  /// without running). `chunk_fn` must be safe to call concurrently.
  void parallel_for(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& chunk_fn);

 private:
  void worker_loop(std::size_t worker_index);
  void run_current_job();

  // One job at a time; parallel_for publishes it under mu_ and bumps the
  // generation, workers run it, the caller waits for all to check back in.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> cursor{0};
    std::exception_ptr error;
  };

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for workers to finish
  std::uint64_t generation_ = 0;
  std::size_t workers_busy_ = 0;
  bool stopping_ = false;
  Job job_;
  std::vector<std::jthread> workers_;
};

/// out[i] = fn(i) for i in [0, count), computed on `pool`; the result
/// vector is always in index order, independent of scheduling. T must be
/// default-constructible; `fn` must be safe to call concurrently.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(ThreadPool& pool, std::size_t count,
                                          Fn&& fn) {
  std::vector<T> out(count);
  pool.parallel_for(count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

/// One-shot convenience: builds a pool of `threads` (0 = default) and maps.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(std::size_t threads,
                                          std::size_t count, Fn&& fn) {
  ThreadPool pool(threads);
  return parallel_map<T>(pool, count, std::forward<Fn>(fn));
}

}  // namespace optrt::core
