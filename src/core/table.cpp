#include "core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace optrt::core {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width != header width");
  }
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    os << "-+\n";
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_row(row);
    }
  }
  print_rule();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  if (value != 0.0 && (std::abs(value) >= 1e6 || std::abs(value) < 1e-2)) {
    os << std::scientific << std::setprecision(2) << value;
  } else {
    os << std::fixed << std::setprecision(precision) << value;
  }
  return os.str();
}

}  // namespace optrt::core
