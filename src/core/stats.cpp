#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace optrt::core {

Summary summarize(std::span<const double> values) noexcept {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

PowerFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_power_law: need >= 2 matched points");
  }
  // Linear regression in log2 space.
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double lx = std::log2(xs[i]);
    const double ly = std::log2(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  PowerFit fit;
  fit.exponent = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  fit.log2_coefficient = (sy - fit.exponent * sx) / n;
  return fit;
}

}  // namespace optrt::core
