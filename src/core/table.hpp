// Minimal fixed-width ASCII table renderer for paper-style bench output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace optrt::core {

/// Builds and prints a column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next row.
  void add_rule();

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Formats a double with `precision` significant-ish decimals.
  [[nodiscard]] static std::string num(double value, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row = rule
};

}  // namespace optrt::core
