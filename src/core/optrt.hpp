// Umbrella header: the public API of the Optimal Routing Tables library.
//
// Typical use:
//
//   #include "core/optrt.hpp"
//
//   optrt::graph::Rng rng(7);
//   auto g = optrt::core::certified_random_graph(256, rng);
//   auto scheme = optrt::schemes::compile(g, optrt::model::kIIalpha);
//   auto result = optrt::model::verify_scheme(g, *scheme);
//   auto bits   = scheme->space().total_bits();
//
// See README.md for the architecture overview and DESIGN.md for the
// paper-to-module map.
#pragma once

#include "bitio/bit_stream.hpp"
#include "bitio/bit_vector.hpp"
#include "bitio/arith.hpp"
#include "bitio/codes.hpp"
#include "bitio/entropy.hpp"
#include "bitio/rank_select.hpp"
#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "graph/algorithms.hpp"
#include "graph/cover.hpp"
#include "graph/csr.hpp"
#include "graph/encoding.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "graph/ports.hpp"
#include "graph/randomness.hpp"
#include "incompressibility/biguint.hpp"
#include "incompressibility/bounds.hpp"
#include "incompressibility/enumerative.hpp"
#include "incompressibility/graph_compressor.hpp"
#include "incompressibility/lemma_codecs.hpp"
#include "incompressibility/permutation_code.hpp"
#include "incompressibility/theorem10.hpp"
#include "incompressibility/theorem6.hpp"
#include "incompressibility/theorem7.hpp"
#include "incompressibility/theorem8.hpp"
#include "incompressibility/theorem9.hpp"
#include "model/fastpath.hpp"
#include "model/models.hpp"
#include "model/scheme.hpp"
#include "model/verifier.hpp"
#include "net/construction.hpp"
#include "net/faults.hpp"
#include "net/resilience.hpp"
#include "net/sim_metrics.hpp"
#include "net/simulator.hpp"
#include "net/workload.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/compiler.hpp"
#include "schemes/errors.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hierarchical.hpp"
#include "schemes/hub.hpp"
#include "schemes/interval.hpp"
#include "schemes/k_interval.hpp"
#include "schemes/landmark.hpp"
#include "schemes/neighbor_label.hpp"
#include "schemes/routing_center.hpp"
#include "schemes/sequential_search.hpp"
#include "schemes/serialization.hpp"
#include "schemes/tz.hpp"
