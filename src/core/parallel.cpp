#include "core/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

namespace optrt::core {

namespace {

std::atomic<std::size_t> g_default_threads{0};  // 0 = auto-detect

std::size_t detect_threads() {
  if (const char* env = std::getenv("OPTRT_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  return hardware_threads();
}

}  // namespace

std::size_t hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t default_threads() {
  const std::size_t forced = g_default_threads.load(std::memory_order_relaxed);
  return forced != 0 ? forced : detect_threads();
}

void set_default_threads(std::size_t threads) {
  g_default_threads.store(threads, std::memory_order_relaxed);
}

std::size_t apply_threads_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::size_t value = 0;
    int consumed = 0;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      value = std::strtoul(argv[i + 1], nullptr, 10);
      consumed = 2;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = std::strtoul(argv[i] + 10, nullptr, 10);
      consumed = 1;
    }
    if (consumed == 0) continue;
    if (value > 0) set_default_threads(value);
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
    break;
  }
  return default_threads();
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  threads = std::max<std::size_t>(threads, 1);
  workers_.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // jthread destructors join.
}

void ThreadPool::run_current_job() {
  while (true) {
    const std::size_t begin =
        job_.cursor.fetch_add(job_.chunk, std::memory_order_relaxed);
    if (begin >= job_.count) return;
    const std::size_t end = std::min(begin + job_.chunk, job_.count);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_.error) return;  // drain without running after a failure
    }
    try {
      (*job_.fn)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job_.error) job_.error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop(std::size_t) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
    }
    run_current_job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_busy_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  if (count == 0) return;
  // ~4 chunks per thread amortizes the queue while smoothing imbalance
  // from uneven per-index cost (e.g. rejection sampling in sweeps).
  const std::size_t parts = std::max<std::size_t>(thread_count() * 4, 1);
  job_.fn = &chunk_fn;
  job_.count = count;
  job_.chunk = std::max<std::size_t>((count + parts - 1) / parts, 1);
  job_.cursor.store(0, std::memory_order_relaxed);
  job_.error = nullptr;
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      workers_busy_ = workers_.size();
      ++generation_;
    }
    work_cv_.notify_all();
  }
  run_current_job();
  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_busy_ == 0; });
  }
  job_.fn = nullptr;
  if (job_.error) std::rethrow_exception(job_.error);
}

}  // namespace optrt::core
