#include "core/experiment.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace optrt::core {

graph::Graph certified_random_graph(std::size_t n, graph::Rng& rng, double c,
                                    int max_attempts) {
  auto& reg = obs::MetricsRegistry::global();
  const obs::Counter attempts = reg.counter("core.certified_graph.attempts");
  const obs::Counter rejects = reg.counter("core.certified_graph.rejects");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    attempts.inc();
    graph::Graph g = graph::random_uniform(n, rng);
    if (graph::certify(g, c).ok()) return g;
    rejects.inc();
  }
  throw std::runtime_error("certified_random_graph: no certified G(n,1/2) in " +
                           std::to_string(max_attempts) + " attempts (n=" +
                           std::to_string(n) + ")");
}

std::vector<SweepPoint> sweep_certified(
    const std::vector<std::size_t>& ns, std::size_t seeds,
    const std::function<double(const graph::Graph&)>& measure,
    const SweepOptions& opt) {
  return sweep_certified_seeded(
      ns, seeds,
      [&measure](const graph::Graph& g, std::uint64_t) { return measure(g); },
      opt);
}

std::vector<SweepPoint> sweep_certified_seeded(
    const std::vector<std::size_t>& ns, std::size_t seeds,
    const std::function<double(const graph::Graph&, std::uint64_t)>& measure,
    const SweepOptions& opt) {
  // Flatten the (n, seed) grid so the pool balances across both axes; the
  // result lands at its grid index, so ordering never depends on threads.
  const std::size_t total = ns.size() * seeds;
  obs::TraceSpan span("core.sweep");
  const obs::Counter points = obs::counter("core.sweep.points");
  ThreadPool pool(opt.threads);
  return parallel_map<SweepPoint>(pool, total, [&](std::size_t idx) {
    obs::TraceSpan point_span("core.sweep.point");
    const std::size_t n = ns[idx / seeds];
    const std::uint64_t seed = idx % seeds + 1;
    const std::uint64_t derived = point_seed(opt.base_seed, n, seed);
    graph::Rng rng(derived);
    const graph::Graph g = certified_random_graph(n, rng);
    SweepPoint result{n, seed, measure(g, derived)};
    points.inc();
    return result;
  });
}

double mean_at(const std::vector<SweepPoint>& points, std::size_t n) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& p : points) {
    if (p.n == n) {
      sum += p.value;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace optrt::core
