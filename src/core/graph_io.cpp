#include "core/graph_io.hpp"

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/encoding.hpp"
#include "schemes/serialization.hpp"

namespace optrt::core {

void save_graph(const std::string& path, const graph::Graph& g) {
  bitio::BitWriter w;
  bitio::write_prime(w, g.node_count());
  w.write_vector(graph::encode(g));
  schemes::save_artifact(path, w.take());
}

graph::Graph load_graph(const std::string& path) {
  const bitio::BitVector bits = schemes::load_artifact(path);
  bitio::BitReader r(bits);
  const auto n = static_cast<std::size_t>(bitio::read_prime(r));
  bitio::BitVector eg;
  for (std::size_t i = 0; i < n * (n - 1) / 2; ++i) eg.push_back(r.read_bit());
  return graph::decode(eg, n);
}

}  // namespace optrt::core
