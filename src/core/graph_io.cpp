#include "core/graph_io.hpp"

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/encoding.hpp"
#include "schemes/serialization.hpp"

namespace optrt::core {

void save_graph(const std::string& path, const graph::Graph& g) {
  bitio::BitWriter w;
  bitio::write_prime(w, g.node_count());
  w.write_vector(graph::encode(g));
  schemes::save_artifact(path, w.take());
}

graph::Graph load_graph(const std::string& path) {
  const bitio::BitVector bits = schemes::load_artifact(path);
  bitio::BitReader r(bits);
  std::uint64_t n = 0;
  try {
    n = bitio::read_prime(r);
  } catch (const std::out_of_range&) {
    throw schemes::DecodeError(schemes::DecodeErrorKind::kTruncated,
                               "graph file ends inside its node count");
  } catch (const std::invalid_argument&) {
    throw schemes::DecodeError(schemes::DecodeErrorKind::kSemanticInvalid,
                               "graph file node count is malformed");
  }
  // E(G) holds one bit per node pair; a hostile n must not drive the loop
  // (or the adjacency allocation in decode) past the actual file contents.
  // The n < 2^32 bound also keeps n·(n−1)/2 below any uint64 overflow.
  if (n >> 32 != 0) {
    throw schemes::DecodeError(schemes::DecodeErrorKind::kResourceLimit,
                               "graph node count exceeds 32 bits");
  }
  if (n != 0 && (n > r.remaining() || n * (n - 1) / 2 > r.remaining())) {
    throw schemes::DecodeError(
        schemes::DecodeErrorKind::kResourceLimit,
        "graph node count exceeds the file's edge bits");
  }
  const auto pairs = static_cast<std::size_t>(n) * (n - 1) / 2;
  if (r.remaining() != pairs) {
    throw schemes::DecodeError(schemes::DecodeErrorKind::kSemanticInvalid,
                               "graph file size does not match E(G) for n");
  }
  bitio::BitVector eg;
  for (std::size_t i = 0; i < pairs; ++i) eg.push_back(r.read_bit());
  return graph::decode(eg, static_cast<std::size_t>(n));
}

}  // namespace optrt::core
