#include "graph/encoding.hpp"

#include <stdexcept>
#include <utility>

namespace optrt::graph {

std::size_t edge_index(std::size_t n, NodeId u, NodeId v) noexcept {
  if (u > v) std::swap(u, v);
  // Edges with first endpoint < u occupy sum_{i<u} (n-1-i) positions.
  const std::size_t a = u;
  const std::size_t prefix = a * (n - 1) - a * (a - 1) / 2;
  return prefix + (v - u - 1);
}

EdgePair edge_from_index(std::size_t n, std::size_t index) noexcept {
  NodeId u = 0;
  std::size_t row = n - 1;  // number of edges with first endpoint u
  while (index >= row) {
    index -= row;
    ++u;
    --row;
  }
  return EdgePair{u, static_cast<NodeId>(u + 1 + index)};
}

bitio::BitVector encode(const Graph& g) {
  const std::size_t n = g.node_count();
  bitio::BitVector bits(n * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (v > u) bits.set(edge_index(n, u, v), true);
    }
  }
  return bits;
}

Graph decode(const bitio::BitVector& bits, std::size_t n) {
  if (bits.size() != n * (n - 1) / 2) {
    throw std::invalid_argument("graph::decode: length != n(n-1)/2");
  }
  Graph g(n);
  std::size_t i = 0;
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v, ++i) {
      if (bits.get(i)) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace optrt::graph
