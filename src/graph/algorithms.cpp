#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace optrt::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  dist[source] = 0;
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

DistanceMatrix::DistanceMatrix(const Graph& g) : n_(g.node_count()) {
  d_.reserve(n_ * n_);
  for (NodeId u = 0; u < n_; ++u) {
    auto row = bfs_distances(g, u);
    d_.insert(d_.end(), row.begin(), row.end());
  }
}

DistanceMatrix::DistanceMatrix(std::size_t n, std::vector<std::uint32_t> flat)
    : n_(n), d_(std::move(flat)) {
  if (d_.size() != n_ * n_) {
    throw std::invalid_argument("DistanceMatrix: flat size != n*n");
  }
}

std::uint32_t DistanceMatrix::diameter() const noexcept {
  std::uint32_t best = 0;
  for (std::uint32_t x : d_) {
    if (x == kUnreachable) return kUnreachable;
    best = std::max(best, x);
  }
  return best;
}

bool DistanceMatrix::connected() const noexcept {
  return std::none_of(d_.begin(), d_.end(),
                      [](std::uint32_t x) { return x == kUnreachable; });
}

std::vector<NodeId> shortest_path_successors(const Graph& g,
                                             const DistanceMatrix& dist,
                                             NodeId u, NodeId v) {
  std::vector<NodeId> out;
  const std::uint32_t duv = dist.at(u, v);
  if (duv == 0 || duv == kUnreachable) return out;
  for (NodeId w : g.neighbors(u)) {
    if (dist.at(w, v) + 1 == duv) out.push_back(w);
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t x) { return x == kUnreachable; });
}

namespace {

// FNV-1a over the packed adjacency words, from two different offset bases
// so the pair behaves like one 128-bit hash.
std::uint64_t fnv1a_words(const Graph& g, std::uint64_t h) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (std::uint64_t word : g.row_words(u)) {
      for (int shift = 0; shift < 64; shift += 8) {
        h ^= (word >> shift) & 0xff;
        h *= kPrime;
      }
    }
  }
  return h;
}

}  // namespace

GraphFingerprint fingerprint(const Graph& g) {
  GraphFingerprint f;
  f.n = g.node_count();
  f.lo = fnv1a_words(g, 0xcbf29ce484222325ULL ^ f.n);
  f.hi = fnv1a_words(g, 0x6c62272e07bb0142ULL ^ (f.n * 0x9e3779b97f4a7c15ULL));
  return f;
}

DistanceCache::DistanceCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const DistanceMatrix> DistanceCache::get(const Graph& g) {
  const GraphFingerprint key = fingerprint(g);
  std::shared_ptr<Entry> entry;
  bool missed = false;
  bool evicted = false;
  std::size_t size_after = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      lru_.push_front(key);
      entry = std::make_shared<Entry>();
      entries_.emplace(key, std::make_pair(entry, lru_.begin()));
      ++misses_;
      missed = true;
      if (entries_.size() > capacity_) {
        // Evict the least-recently-used entry; in-flight holders keep the
        // matrix alive through their shared_ptr.
        entries_.erase(lru_.back());
        lru_.pop_back();
        evicted = true;
      }
    } else {
      entry = it->second.first;
      lru_.splice(lru_.begin(), lru_, it->second.second);
      ++hits_;
    }
    size_after = entries_.size();
  }
  // Registry updates happen outside the cache lock: obs takes its own
  // mutex and must never nest inside ours.
  auto& reg = obs::MetricsRegistry::global();
  reg.counter(missed ? "graph.distance_cache.misses"
                     : "graph.distance_cache.hits")
      .inc();
  if (evicted) reg.counter("graph.distance_cache.evictions").inc();
  reg.gauge("graph.distance_cache.size")
      .set(static_cast<std::int64_t>(size_after));
  // BFS runs outside the cache lock; call_once makes concurrent misses on
  // the same graph compute it exactly once.
  std::call_once(entry->once, [&] {
    obs::TraceSpan span("graph.distance_matrix.build");
    entry->dist = std::make_shared<DistanceMatrix>(g);
  });
  return entry->dist;
}

std::size_t DistanceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t DistanceCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t DistanceCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void DistanceCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  hits_ = 0;
  misses_ = 0;
}

DistanceCache& DistanceCache::global() {
  static DistanceCache cache(16);
  return cache;
}

}  // namespace optrt::graph
