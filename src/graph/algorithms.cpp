#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace optrt::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  dist[source] = 0;
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

DistanceMatrix::DistanceMatrix(const Graph& g) : n_(g.node_count()) {
  d_.reserve(n_ * n_);
  for (NodeId u = 0; u < n_; ++u) {
    auto row = bfs_distances(g, u);
    d_.insert(d_.end(), row.begin(), row.end());
  }
}

std::uint32_t DistanceMatrix::diameter() const noexcept {
  std::uint32_t best = 0;
  for (std::uint32_t x : d_) {
    if (x == kUnreachable) return kUnreachable;
    best = std::max(best, x);
  }
  return best;
}

bool DistanceMatrix::connected() const noexcept {
  return std::none_of(d_.begin(), d_.end(),
                      [](std::uint32_t x) { return x == kUnreachable; });
}

std::vector<NodeId> shortest_path_successors(const Graph& g,
                                             const DistanceMatrix& dist,
                                             NodeId u, NodeId v) {
  std::vector<NodeId> out;
  const std::uint32_t duv = dist.at(u, v);
  if (duv == 0 || duv == kUnreachable) return out;
  for (NodeId w : g.neighbors(u)) {
    if (dist.at(w, v) + 1 == duv) out.push_back(w);
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t x) { return x == kUnreachable; });
}

}  // namespace optrt::graph
