#include "graph/randomness.hpp"

#include <algorithm>
#include <cmath>

#include "graph/cover.hpp"

namespace optrt::graph {

bool has_diameter_at_most_2(const Graph& g) {
  const std::size_t n = g.node_count();
  if (n < 2) return true;
  for (NodeId u = 0; u + 1 < n; ++u) {
    const auto row_u = g.row_words(u);
    for (NodeId v = u + 1; v < n; ++v) {
      if (g.has_edge(u, v)) continue;
      const auto row_v = g.row_words(v);
      bool common = false;
      for (std::size_t w = 0; w < row_u.size(); ++w) {
        if (row_u[w] & row_v[w]) {
          common = true;
          break;
        }
      }
      if (!common) return false;
    }
  }
  return true;
}

RandomnessCertificate certify_gnp(const Graph& g, double p, double c) {
  RandomnessCertificate cert;
  const std::size_t n = g.node_count();
  if (n < 2 || p <= 0.0 || p >= 1.0) return cert;
  const double expected = p * (static_cast<double>(n) - 1.0);

  // Lemma 1 via Hoeffding: Pr(|d − p(n−1)| ≥ k) ≤ 2·exp(−2k²/(n−1)); a
  // union bound over n nodes stays below n^−c for
  // k = √( (n−1)·((c+1)·ln n + ln 2) / 2 ).
  const double ln_n = std::log(static_cast<double>(n));
  cert.degree_deviation_bound =
      std::sqrt((static_cast<double>(n) - 1.0) * ((c + 1.0) * ln_n + std::log(2.0)) / 2.0);
  for (NodeId u = 0; u < n; ++u) {
    cert.max_degree_deviation =
        std::max(cert.max_degree_deviation,
                 std::abs(static_cast<double>(g.degree(u)) - expected));
  }
  cert.degrees_concentrated =
      cert.max_degree_deviation <= cert.degree_deviation_bound;

  // Lemma 2: complete graphs have diameter 1 and are never random; we
  // require exactly 2 as the lemma states.
  const bool complete_graph = g.edge_count() == n * (n - 1) / 2;
  cert.diameter_two = !complete_graph && has_diameter_at_most_2(g);
  cert.diameter_bound_witness = complete_graph ? 1 : (cert.diameter_two ? 2 : 3);

  // Lemma 3: each least neighbour covers a p-fraction of the remaining
  // non-neighbours, so the prefix bound scales by 1/log₂(1/(1−p))
  // (= 1 at p = 1/2).
  const double decay = std::log2(1.0 / (1.0 - p));
  cert.cover_size_bound = static_cast<std::size_t>(std::ceil(
      (c + 3.0) * std::log2(static_cast<double>(n)) / std::max(decay, 1e-9)));
  cert.covers_small = true;
  for (NodeId u = 0; u < n; ++u) {
    const NeighborCover cover = least_neighbor_cover(g, u);
    cert.max_cover_size = std::max(cert.max_cover_size, cover.centers.size());
    if (!cover.complete || cover.centers.size() > cert.cover_size_bound) {
      cert.covers_small = false;
    }
  }
  return cert;
}

RandomnessCertificate certify(const Graph& g, double c) {
  return certify_gnp(g, 0.5, c);
}

}  // namespace optrt::graph
