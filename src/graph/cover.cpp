#include "graph/cover.hpp"

#include <algorithm>

namespace optrt::graph {

std::size_t NeighborCover::covered_count() const {
  std::size_t covered = 0;
  for (std::uint32_t c : coverer) {
    if (c != kNoCoverer) ++covered;
  }
  return covered;
}

namespace {

NeighborCover make_cover(const Graph& g, NodeId u, bool greedy) {
  const std::size_t n = g.node_count();
  NeighborCover cover;
  cover.origin = u;
  cover.coverer.assign(n, kNoCoverer);

  // A_0: non-neighbours of u (excluding u).
  std::vector<bool> pending(n, false);
  std::size_t remaining = 0;
  for (NodeId w = 0; w < n; ++w) {
    if (w != u && !g.has_edge(u, w)) {
      pending[w] = true;
      ++remaining;
    }
  }

  const auto neighbors = g.neighbors(u);
  std::vector<bool> used(neighbors.size(), false);

  while (remaining > 0) {
    std::size_t pick = neighbors.size();
    if (greedy) {
      std::size_t best_gain = 0;
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (used[i]) continue;
        std::size_t gain = 0;
        for (NodeId w : g.neighbors(neighbors[i])) {
          if (pending[w]) ++gain;
        }
        if (gain > best_gain) {
          best_gain = gain;
          pick = i;
        }
      }
      if (pick == neighbors.size()) break;  // no candidate covers anything new
    } else {
      // Least-neighbour order: next unused neighbour in increasing label
      // order, regardless of gain (the paper's v_1, …, v_m).
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (!used[i]) {
          pick = i;
          break;
        }
      }
      if (pick == neighbors.size()) break;  // neighbours exhausted
    }

    used[pick] = true;
    const NodeId center = neighbors[pick];
    const auto index = static_cast<std::uint32_t>(cover.centers.size());
    cover.centers.push_back(center);
    for (NodeId w : g.neighbors(center)) {
      if (pending[w]) {
        pending[w] = false;
        cover.coverer[w] = index;
        --remaining;
      }
    }
  }

  cover.complete = remaining == 0;
  return cover;
}

}  // namespace

NeighborCover least_neighbor_cover(const Graph& g, NodeId u) {
  return make_cover(g, u, /*greedy=*/false);
}

NeighborCover greedy_neighbor_cover(const Graph& g, NodeId u) {
  return make_cover(g, u, /*greedy=*/true);
}

}  // namespace optrt::graph
