// Neighbour dominating covers (Lemma 3 and Claim 1 of Theorem 1).
//
// Lemma 3: on c·log n-random graphs, from each node u every other node is
// either adjacent to u or adjacent to one of the (c+3) log n *least* nodes
// adjacent to u. Theorem 1's Claim 1 refines this: ordering those centers
// v_1, v_2, … , each v_t is adjacent to at least 1/3 of the non-neighbours
// not yet covered — so a unary "first coverer" table stays linear in n.
//
// We implement both the paper's least-neighbour order and a greedy
// max-coverage order (an ablation: greedy needs no randomness assumption to
// decay geometrically in practice).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace optrt::graph {

/// Sentinel for "no coverer": the node is u itself, a neighbour of u
/// (reached directly), or genuinely uncovered (distance > 2 from u).
inline constexpr std::uint32_t kNoCoverer =
    std::numeric_limits<std::uint32_t>::max();

/// A dominating cover of the non-neighbours of a node u by an ordered list
/// of u's neighbours.
struct NeighborCover {
  NodeId origin = 0;
  /// Centers v_1, v_2, … (0-based in `coverer`), each a neighbour of origin.
  std::vector<NodeId> centers;
  /// For every node w: the 0-based index into `centers` of the first center
  /// (in order) adjacent to w, or kNoCoverer (see above). coverer[origin]
  /// and coverer[neighbour of origin] are always kNoCoverer.
  std::vector<std::uint32_t> coverer;
  /// True iff every non-neighbour of origin has a coverer (equivalently,
  /// every node is within distance 2 of origin through a center).
  bool complete = false;

  /// Count of covered nodes (equals |A_0| when complete).
  [[nodiscard]] std::size_t covered_count() const;
};

/// The paper's cover: centers are the least neighbours of u, in increasing
/// label order, truncated at the first prefix that dominates all
/// non-neighbours (the whole neighbour list if none does, with
/// complete = false).
[[nodiscard]] NeighborCover least_neighbor_cover(const Graph& g, NodeId u);

/// Greedy max-coverage cover: each center is the neighbour adjacent to the
/// most still-uncovered non-neighbours (ties to the least label).
[[nodiscard]] NeighborCover greedy_neighbor_cover(const Graph& g, NodeId u);

}  // namespace optrt::graph
