// Randomness certificate: executable checks of the three structural lemmas
// that every proof in the paper actually uses about Kolmogorov random
// graphs.
//
//   Lemma 1 — every degree d satisfies |d − (n−1)/2| = O(√((δ(n)+log n)·n));
//   Lemma 2 — diameter exactly 2;
//   Lemma 3 — from every node u, the (c+3) log n least neighbours of u
//             dominate all non-neighbours of u.
//
// A uniform G(n,1/2) draw fails these with probability ≤ 1/n^c, mirroring
// the paper's "fraction ≥ 1 − 1/n^c of all graphs". Gate theorem-level code
// on certify(g).ok() to run only on graphs with exactly the assumed
// structure — this is the substitution that replaces uncomputable
// Kolmogorov randomness.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace optrt::graph {

/// Result of certifying one graph against Lemmas 1–3 (with constant c).
struct RandomnessCertificate {
  // Lemma 1.
  double max_degree_deviation = 0.0;  ///< max_u |d(u) − (n−1)/2|
  double degree_deviation_bound = 0.0;
  bool degrees_concentrated = false;

  // Lemma 2.
  std::size_t diameter_bound_witness = 0;  ///< 0/1/2, or 3 meaning "> 2"
  bool diameter_two = false;

  // Lemma 3.
  std::size_t max_cover_size = 0;  ///< largest least-neighbour cover prefix
  std::size_t cover_size_bound = 0;  ///< ⌈(c+3) log₂ n⌉
  bool covers_small = false;

  [[nodiscard]] bool ok() const noexcept {
    return degrees_concentrated && diameter_two && covers_small;
  }
};

/// Certifies `g` against Lemmas 1–3 with randomness deficiency parameter
/// c (the paper's c·log n-randomness; default 3, matching the "fraction
/// 1 − 1/n³" headline).
[[nodiscard]] RandomnessCertificate certify(const Graph& g, double c = 3.0);

/// Density-generalized certificate: checks the G(n, p) analogues — degrees
/// concentrate around p(n−1), diameter 2, and the least-neighbour cover
/// prefix bounded by (c+3)·log n / log(1/(1−p)) (each neighbour covers a
/// p-fraction of what remains). certify(g, c) is the p = 1/2 case.
[[nodiscard]] RandomnessCertificate certify_gnp(const Graph& g, double p,
                                                double c = 3.0);

/// Word-parallel diameter ≤ 2 test: every non-adjacent pair has a common
/// neighbour. O(n² · n/64).
[[nodiscard]] bool has_diameter_at_most_2(const Graph& g);

}  // namespace optrt::graph
