// Node labelings for the α / β / γ dimension of the nine models (§1).
//
//   α — nodes keep their given labels {0..n−1} (no relabelling);
//   β — the strategy may permute the labels within {0..n−1};
//   γ — arbitrary (bit-string) labels, whose lengths are *charged* to the
//       space requirement of the scheme. Theorem 2's scheme builds such
//       labels itself; this module supplies the permutation machinery and
//       the γ accounting hook.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"

namespace optrt::graph {

/// A bijective relabelling of {0..n−1} (α is the identity instance).
class Labeling {
 public:
  /// Identity labelling on n nodes (model α).
  [[nodiscard]] static Labeling identity(std::size_t n) {
    std::vector<NodeId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    return Labeling(std::move(perm));
  }

  /// Permutation labelling (model β): label_of_node[u] is the external
  /// label of internal node u. Throws if not a permutation.
  [[nodiscard]] static Labeling permutation(std::vector<NodeId> label_of_node);

  [[nodiscard]] NodeId label_of(NodeId node) const noexcept {
    return label_of_node_[node];
  }
  [[nodiscard]] NodeId node_of(NodeId label) const noexcept {
    return node_of_label_[label];
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return label_of_node_.size();
  }

 private:
  explicit Labeling(std::vector<NodeId> label_of_node);

  std::vector<NodeId> label_of_node_;
  std::vector<NodeId> node_of_label_;
};

/// Arbitrary bit-string labels (model γ). Destinations are presented to
/// routing functions as these labels; their total length is added to the
/// scheme's space requirement (§1, option γ).
struct ArbitraryLabels {
  std::vector<bitio::BitVector> label_of_node;

  /// Total charged bits: Σ |label(u)|.
  [[nodiscard]] std::size_t total_bits() const {
    std::size_t total = 0;
    for (const auto& l : label_of_node) total += l.size();
    return total;
  }
};

}  // namespace optrt::graph
