// Compressed sparse row (CSR) view of a Graph: one offsets array plus one
// packed neighbour array, built once and then read with unit-stride loads.
//
// The adjacency-matrix rows of Graph answer has_edge in O(1) but cost n
// bits per row to walk; the per-node neighbour vectors answer walks but
// scatter allocations across the heap. The hot paths — fast routing
// lookups (src/model/fastpath) and the simulator's per-hop link
// bookkeeping — want both locality and O(1) port indexing, which is what
// this flat form provides. Arcs (directed edge slots) get consecutive ids,
// so per-link state becomes a plain vector indexed by arc id instead of a
// hash map keyed by the node pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ports.hpp"

namespace optrt::graph {

/// Immutable CSR adjacency: offsets_[u] .. offsets_[u+1] delimit the
/// neighbour slice of u inside one packed array.
class CsrGraph {
 public:
  /// Arc id returned by arc_index() when (u, v) is not an edge.
  static constexpr std::size_t kNoArc = static_cast<std::size_t>(-1);

  CsrGraph() = default;

  /// Neighbour slices in increasing node-id order (mirrors
  /// Graph::neighbors); arc_index() can binary-search.
  explicit CsrGraph(const Graph& g);

  /// Neighbour slices in port order: neighbor_at(u, p) is the neighbour
  /// reached over port p. Slices are only sorted if the assignment is.
  [[nodiscard]] static CsrGraph from_ports(const PortAssignment& ports);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Total number of directed arcs (twice the edge count).
  [[nodiscard]] std::size_t arc_count() const noexcept {
    return neighbors_.size();
  }
  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return {neighbors_.data() + offsets_[u], degree(u)};
  }
  /// Neighbour at position p of u's slice (the port-p neighbour when
  /// built from_ports).
  [[nodiscard]] NodeId neighbor_at(NodeId u, std::uint32_t p) const noexcept {
    return neighbors_[offsets_[u] + p];
  }
  /// First arc id of u's slice.
  [[nodiscard]] std::size_t arc_begin(NodeId u) const noexcept {
    return offsets_[u];
  }

  /// Dense id of the directed arc u→v, or kNoArc when v is not a
  /// neighbour of u. Binary search on sorted slices, linear otherwise.
  [[nodiscard]] std::size_t arc_index(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept {
    return arc_index(u, v) != kNoArc;
  }

 private:
  std::vector<std::uint64_t> offsets_;  // n + 1 entries
  std::vector<NodeId> neighbors_;       // packed slices
  bool sorted_slices_ = true;
};

}  // namespace optrt::graph
