#include "graph/csr.hpp"

#include <algorithm>

namespace optrt::graph {

CsrGraph::CsrGraph(const Graph& g) {
  const std::size_t n = g.node_count();
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + g.neighbors(u).size();
  }
  neighbors_.resize(offsets_[n]);
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    std::copy(nbrs.begin(), nbrs.end(), neighbors_.begin() + offsets_[u]);
  }
  sorted_slices_ = true;
}

CsrGraph CsrGraph::from_ports(const PortAssignment& ports) {
  CsrGraph csr;
  const std::size_t n = ports.node_count();
  csr.offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    csr.offsets_[u + 1] = csr.offsets_[u] + ports.degree(u);
  }
  csr.neighbors_.resize(csr.offsets_[n]);
  csr.sorted_slices_ = true;
  for (NodeId u = 0; u < n; ++u) {
    const auto slice = ports.ports(u);
    std::copy(slice.begin(), slice.end(),
              csr.neighbors_.begin() + csr.offsets_[u]);
    csr.sorted_slices_ =
        csr.sorted_slices_ && std::is_sorted(slice.begin(), slice.end());
  }
  return csr;
}

std::size_t CsrGraph::arc_index(NodeId u, NodeId v) const noexcept {
  const auto begin = neighbors_.begin() + offsets_[u];
  const auto end = neighbors_.begin() + offsets_[u + 1];
  if (sorted_slices_) {
    const auto it = std::lower_bound(begin, end, v);
    if (it == end || *it != v) return kNoArc;
    return static_cast<std::size_t>(it - neighbors_.begin());
  }
  const auto it = std::find(begin, end, v);
  if (it == end) return kNoArc;
  return static_cast<std::size_t>(it - neighbors_.begin());
}

}  // namespace optrt::graph
