#include "graph/labeling.hpp"

#include <stdexcept>

namespace optrt::graph {

Labeling::Labeling(std::vector<NodeId> label_of_node)
    : label_of_node_(std::move(label_of_node)),
      node_of_label_(label_of_node_.size(), 0) {
  std::vector<bool> seen(label_of_node_.size(), false);
  for (NodeId u = 0; u < label_of_node_.size(); ++u) {
    const NodeId l = label_of_node_[u];
    if (l >= label_of_node_.size() || seen[l]) {
      throw std::invalid_argument("Labeling: not a permutation of {0..n-1}");
    }
    seen[l] = true;
    node_of_label_[l] = u;
  }
}

Labeling Labeling::permutation(std::vector<NodeId> label_of_node) {
  return Labeling(std::move(label_of_node));
}

}  // namespace optrt::graph
