// Port assignments (§1): the edges incident to a node v of degree d(v) are
// connected to ports labelled 0..d(v)−1.
//
// Model IA fixes the assignment (possibly adversarially — Theorem 8's lower
// bound sets it to a random permutation of the neighbours); model IB lets
// the routing strategy re-assign ports locally, and the canonical free
// choice is "the i-th least neighbour sits on port i" (proof of Theorem 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace optrt::graph {

using PortId = std::uint32_t;

/// A port assignment for every node of a graph.
class PortAssignment {
 public:
  /// The canonical (model IB) assignment: port i ↦ i-th least neighbour.
  [[nodiscard]] static PortAssignment sorted(const Graph& g);

  /// A uniformly random permutation per node — the generic model IA case
  /// and the Theorem 8 adversary.
  [[nodiscard]] static PortAssignment random(const Graph& g, Rng& rng);

  /// Builds from explicit port → neighbour permutations (one vector per
  /// node, a permutation of its neighbour list). Throws if any vector is
  /// not a permutation of the node's neighbours.
  [[nodiscard]] static PortAssignment from_port_maps(
      const Graph& g, std::vector<std::vector<NodeId>> port_to_neighbor);

  /// Neighbour reached over port `p` of node `u`.
  [[nodiscard]] NodeId neighbor_at(NodeId u, PortId p) const noexcept {
    return port_to_neighbor_[u][p];
  }

  /// Port of node `u` leading to neighbour `v`.
  /// Throws std::invalid_argument if {u, v} is not an edge.
  [[nodiscard]] PortId port_of(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return port_to_neighbor_[u].size();
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return port_to_neighbor_.size();
  }

  /// The full port → neighbour permutation at `u`.
  [[nodiscard]] std::span<const NodeId> ports(NodeId u) const noexcept {
    return port_to_neighbor_[u];
  }

  /// Port of the rank-th least neighbour of `u` (rank aligned with
  /// Graph::neighbors(u)).
  [[nodiscard]] PortId port_of_rank(NodeId u, std::size_t rank) const noexcept {
    return rank_to_port_[u][rank];
  }

 private:
  PortAssignment() = default;

  // port_to_neighbor_[u][p] = neighbour of u on port p.
  std::vector<std::vector<NodeId>> port_to_neighbor_;
  // rank_to_port_[u][i] = port of the i-th least neighbour of u.
  std::vector<std::vector<PortId>> rank_to_port_;
  // sorted_neighbors_[u] = neighbours of u in increasing order (for
  // port_of lookups without the Graph at hand).
  std::vector<std::vector<NodeId>> sorted_neighbors_;
};

}  // namespace optrt::graph
