// The standard graph encoding E(G) of Definition 2.
//
// "We enumerate the n(n−1)/2 possible edges uv in a graph on n nodes in
// standard lexicographical order without repetitions and set the i-th bit in
// the string to 1 if the i-th edge is present" — so E(G) has exactly
// n(n−1)/2 bits and every such string is a graph. The incompressibility
// codecs in src/incompressibility compress exactly this string.
#pragma once

#include <cstddef>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"

namespace optrt::graph {

/// Index of edge {u, v} (u != v) in the lexicographic enumeration of all
/// pairs: (0,1), (0,2), …, (0,n−1), (1,2), …  Symmetric in u, v.
[[nodiscard]] std::size_t edge_index(std::size_t n, NodeId u, NodeId v) noexcept;

/// Inverse of edge_index.
struct EdgePair {
  NodeId u;
  NodeId v;
};
[[nodiscard]] EdgePair edge_from_index(std::size_t n, std::size_t index) noexcept;

/// Encodes G into its n(n−1)/2-bit string E(G).
[[nodiscard]] bitio::BitVector encode(const Graph& g);

/// Decodes an n(n−1)/2-bit string into a graph on n nodes.
/// Throws std::invalid_argument if the length does not match.
[[nodiscard]] Graph decode(const bitio::BitVector& bits, std::size_t n);

}  // namespace optrt::graph
