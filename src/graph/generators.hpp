// Graph generators: random-graph proxies for Kolmogorov random graphs,
// classic topologies for tests, and the explicit worst-case graph G_B of
// Theorem 9 / Figure 1.
#pragma once

#include <cstdint>
#include <random>

#include "graph/graph.hpp"

namespace optrt::graph {

/// Deterministic 64-bit PRNG used throughout the library. Seeded generation
/// keeps every experiment reproducible.
using Rng = std::mt19937_64;

/// Erdős–Rényi G(n, p): each of the n(n−1)/2 possible edges present
/// independently with probability p.
[[nodiscard]] Graph random_gnp(std::size_t n, double p, Rng& rng);

/// G(n, 1/2): the uniform distribution over all labelled graphs on n nodes —
/// the operational stand-in for Kolmogorov random graphs. A fraction
/// ≥ 1 − 1/n^c of these satisfies Definition 3 with δ(n) = (c+3) log n, and
/// the proofs only use the Lemma 1–3 consequences, which
/// randomness::certify() checks per instance.
[[nodiscard]] Graph random_uniform(std::size_t n, Rng& rng);

/// Path 0 − 1 − … − (n−1).
[[nodiscard]] Graph chain(std::size_t n);

/// Cycle on n ≥ 3 nodes.
[[nodiscard]] Graph ring(std::size_t n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(std::size_t n);

/// Star with centre 0 and n−1 leaves.
[[nodiscard]] Graph star(std::size_t n);

/// rows × cols grid.
[[nodiscard]] Graph grid(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube on 2^d nodes (classic interconnect; the home
/// turf of interval routing).
[[nodiscard]] Graph hypercube(std::size_t dimension);

/// The Theorem 9 / Figure 1 graph G_B on n = 3k nodes. With 0-based ids:
/// bottom nodes 0..k−1, middle nodes k..2k−1, top nodes 2k..3k−1. Each
/// middle node i is connected to its top partner i+k and to every bottom
/// node. For any two nodes b < k and t >= 2k the unique shortest path
/// b → (t−k) → t has length 2 and every other path has length ≥ 4, so a
/// stretch-<2 routing function at b must name t's partner edge — i.e. it
/// encodes the permutation labelling of the top row.
[[nodiscard]] Graph lower_bound_gb(std::size_t k);

/// G_B with a planted top-row permutation: middle node k+i is connected to
/// top node 2k+perm[i] instead of 2k+i. Since model α forbids relabelling,
/// each of the k! permutations is a distinct worst-case instance, and any
/// stretch-<2 routing function at a bottom node determines `perm` — the
/// Theorem 9 counting argument. `perm` must be a permutation of {0..k−1}.
[[nodiscard]] Graph lower_bound_gb_permuted(std::size_t k,
                                            const std::vector<NodeId>& perm);

}  // namespace optrt::graph
