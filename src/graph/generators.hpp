// Graph generators: random-graph proxies for Kolmogorov random graphs,
// classic topologies for tests, Internet-like power-law families
// (preferential attachment and the configuration model), and the explicit
// worst-case graph G_B of Theorem 9 / Figure 1.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string>

#include "graph/graph.hpp"

namespace optrt::graph {

/// Deterministic 64-bit PRNG used throughout the library. Seeded generation
/// keeps every experiment reproducible.
using Rng = std::mt19937_64;

/// Erdős–Rényi G(n, p): each of the n(n−1)/2 possible edges present
/// independently with probability p.
[[nodiscard]] Graph random_gnp(std::size_t n, double p, Rng& rng);

/// G(n, 1/2): the uniform distribution over all labelled graphs on n nodes —
/// the operational stand-in for Kolmogorov random graphs. A fraction
/// ≥ 1 − 1/n^c of these satisfies Definition 3 with δ(n) = (c+3) log n, and
/// the proofs only use the Lemma 1–3 consequences, which
/// randomness::certify() checks per instance.
[[nodiscard]] Graph random_uniform(std::size_t n, Rng& rng);

/// Path 0 − 1 − … − (n−1).
[[nodiscard]] Graph chain(std::size_t n);

/// Cycle on n ≥ 3 nodes.
[[nodiscard]] Graph ring(std::size_t n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(std::size_t n);

/// Star with centre 0 and n−1 leaves.
[[nodiscard]] Graph star(std::size_t n);

/// rows × cols grid.
[[nodiscard]] Graph grid(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube on 2^d nodes (classic interconnect; the home
/// turf of interval routing).
[[nodiscard]] Graph hypercube(std::size_t dimension);

/// Barabási–Albert preferential attachment on n nodes: a star seed on
/// `attach + 1` nodes, then every new node attaches to `attach` distinct
/// existing nodes chosen with probability proportional to their current
/// degree (repeated-endpoint sampling, duplicates redrawn). The result is
/// connected by construction, simple, has exactly
/// `attach + (n − attach − 1)·attach` edges, and its degree distribution
/// follows the power-law tail (exponent ≈ 3) of Internet-like topologies.
/// A pure function of (n, attach, rng state) — bit-deterministic.
/// Requires n >= attach + 1 and attach >= 1.
[[nodiscard]] Graph barabasi_albert(std::size_t n, std::size_t attach,
                                    Rng& rng);

/// Samples a power-law degree sequence: n degrees in [min_degree, n−1]
/// with P(d) ∝ d^(−exponent), by inverting the discrete CDF on seeded
/// uniform draws. The sum is made even (one degree bumped) so the sequence
/// can seed the configuration model. Requires exponent > 1, min_degree >= 1.
[[nodiscard]] std::vector<std::size_t> power_law_degrees(std::size_t n,
                                                         double exponent,
                                                         std::size_t min_degree,
                                                         Rng& rng);

/// Configuration model over an explicit degree sequence: stubs are paired
/// by a seeded shuffle, then the multigraph is repaired toward a simple
/// connected graph — self-loops and duplicate edges are rewired through
/// bounded edge swaps (dropped when no swap lands), and remaining
/// components are joined by deterministic bridge edges. Node i's achieved
/// degree therefore tracks degrees[i] exactly except where repair had to
/// drop or add a stub. Deterministic in (degrees, rng state). Requires an
/// even degree sum and every degree < n.
[[nodiscard]] Graph configuration_model(std::span<const std::size_t> degrees,
                                        Rng& rng);

/// Convenience: configuration model over a power_law_degrees(...) draw —
/// the second Internet-like family (exponent is a free parameter, unlike
/// preferential attachment's fixed ≈ 3).
[[nodiscard]] Graph random_power_law(std::size_t n, double exponent,
                                     std::size_t min_degree, Rng& rng);

/// A named, parameterized topology family: one knob (`n`, plus a seed for
/// the random families) yields a concrete graph, so every bench and test
/// can sweep the same family list instead of hand-rolling generator calls.
/// Deterministic: make(n, seed) is a pure function of its arguments.
struct TopologyFamily {
  enum class Kind : std::uint8_t {
    kUniform,      // G(n, 1/2) — the paper's Kolmogorov-random stand-in
    kGnp,          // G(n, p)
    kPowerLaw,     // Barabási–Albert preferential attachment
    kConfigModel,  // configuration model over a power-law degree draw
    kGrid,         // near-square grid on exactly n nodes
    kRing,         // cycle
  };

  Kind kind = Kind::kUniform;
  double p = 0.5;              // kGnp edge probability
  std::size_t attach = 2;      // kPowerLaw edges per new node
  double exponent = 2.1;       // kConfigModel tail exponent
  std::size_t min_degree = 2;  // kConfigModel minimum degree

  /// Stable short name for JSON rows and test labels, e.g. "uniform",
  /// "gnp(0.25)", "power-law(m=2)", "config(2.1,2)", "grid", "ring".
  [[nodiscard]] std::string name() const;

  /// Builds the family member on exactly n nodes. The deterministic
  /// families ignore `seed`. Grid factors n as rows × cols with rows the
  /// largest divisor ≤ √n (prime n degenerates to a chain); ring needs
  /// n ≥ 3.
  [[nodiscard]] Graph make(std::size_t n, std::uint64_t seed) const;

  static TopologyFamily uniform();
  static TopologyFamily gnp(double p);
  static TopologyFamily power_law(std::size_t attach);
  static TopologyFamily config_model(double exponent, std::size_t min_degree);
  static TopologyFamily grid();
  static TopologyFamily ring();

  /// Parses a bench/CLI spec: "uniform", "gnp:<p>", "ba:<attach>" (alias
  /// "power-law:<attach>"), "config:<exponent>,<min_degree>", "grid",
  /// "ring". Throws std::invalid_argument on anything else.
  static TopologyFamily parse(const std::string& spec);
};

/// The Theorem 9 / Figure 1 graph G_B on n = 3k nodes. With 0-based ids:
/// bottom nodes 0..k−1, middle nodes k..2k−1, top nodes 2k..3k−1. Each
/// middle node i is connected to its top partner i+k and to every bottom
/// node. For any two nodes b < k and t >= 2k the unique shortest path
/// b → (t−k) → t has length 2 and every other path has length ≥ 4, so a
/// stretch-<2 routing function at b must name t's partner edge — i.e. it
/// encodes the permutation labelling of the top row.
[[nodiscard]] Graph lower_bound_gb(std::size_t k);

/// G_B with a planted top-row permutation: middle node k+i is connected to
/// top node 2k+perm[i] instead of 2k+i. Since model α forbids relabelling,
/// each of the k! permutations is a distinct worst-case instance, and any
/// stretch-<2 routing function at a bottom node determines `perm` — the
/// Theorem 9 counting argument. `perm` must be a permutation of {0..k−1}.
[[nodiscard]] Graph lower_bound_gb_permuted(std::size_t k,
                                            const std::vector<NodeId>& perm);

}  // namespace optrt::graph
