// Undirected simple graphs on nodes {0, …, n−1}.
//
// The paper works with point-to-point networks given as undirected graphs on
// n nodes labelled 1..n (§1); we use 0-based ids internally and call them
// "labels" — the shift never affects any bound. The structure keeps both a
// packed adjacency matrix (O(1) edge queries, and the natural substrate for
// the E(G) codec of Definition 2) and sorted adjacency lists (ordered
// neighbour enumeration, which Lemma 3 and Theorem 1 rely on: "the least
// (c+3)log n nodes directly adjacent to u").
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace optrt::graph {

using NodeId = std::uint32_t;

/// An undirected simple graph with O(1) adjacency tests and sorted
/// neighbour lists.
class Graph {
 public:
  /// Creates an edgeless graph on `n` nodes.
  explicit Graph(std::size_t n);

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return m_; }

  /// Adds the undirected edge {u, v}. Self-loops and duplicates are
  /// rejected with std::invalid_argument.
  void add_edge(NodeId u, NodeId v);

  /// True iff {u, v} is an edge.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept {
    const std::size_t i = static_cast<std::size_t>(u) * words_per_row_ +
                          (static_cast<std::size_t>(v) >> 6);
    return (matrix_[i] >> (v & 63)) & 1u;
  }

  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return adjacency_[u].size();
  }

  /// Neighbours of `u` in increasing label order.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return adjacency_[u];
  }

  /// Minimum and maximum degree over all nodes (0 for the empty graph).
  [[nodiscard]] std::size_t min_degree() const noexcept;
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Packed adjacency-matrix row of `u` (ceil(n/64) words; bit v set iff
  /// {u,v} ∈ E). Used for word-parallel common-neighbour tests.
  [[nodiscard]] std::span<const std::uint64_t> row_words(NodeId u) const noexcept {
    return {matrix_.data() + static_cast<std::size_t>(u) * words_per_row_,
            words_per_row_};
  }

  friend bool operator==(const Graph& a, const Graph& b) noexcept {
    return a.n_ == b.n_ && a.adjacency_ == b.adjacency_;
  }

 private:
  std::size_t n_;
  std::size_t m_ = 0;
  std::size_t words_per_row_;
  std::vector<std::uint64_t> matrix_;      // n rows of ceil(n/64) words
  std::vector<std::vector<NodeId>> adjacency_;
};

}  // namespace optrt::graph
