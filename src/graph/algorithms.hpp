// Shortest-path machinery: BFS, all-pairs distances, diameter, and the
// shortest-path successor sets that full-information routing (Theorem 10)
// and the scheme verifier need.
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace optrt::graph {

/// Distance value for unreachable pairs.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `source` (kUnreachable where disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       NodeId source);

/// All-pairs shortest-path distances, as a flat n×n row-major matrix.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(const Graph& g);

  /// Adopts precomputed distances (row-major n×n, kUnreachable where
  /// disconnected). The churn repair path maintains distances
  /// incrementally and snapshots them through this instead of re-running
  /// all-pairs BFS. Throws std::invalid_argument on a size mismatch.
  DistanceMatrix(std::size_t n, std::vector<std::uint32_t> flat);

  [[nodiscard]] std::uint32_t at(NodeId u, NodeId v) const noexcept {
    return d_[static_cast<std::size_t>(u) * n_ + v];
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Max finite distance; kUnreachable if the graph is disconnected,
  /// 0 for graphs with < 2 nodes.
  [[nodiscard]] std::uint32_t diameter() const noexcept;

  /// True iff every pair is connected.
  [[nodiscard]] bool connected() const noexcept;

 private:
  std::size_t n_;
  std::vector<std::uint32_t> d_;
};

/// All neighbours of `u` that lie on a shortest path from `u` to `v`
/// (the full-information answer set of §1): w adjacent to u with
/// d(w, v) = d(u, v) − 1. Empty when v == u or v unreachable.
[[nodiscard]] std::vector<NodeId> shortest_path_successors(
    const Graph& g, const DistanceMatrix& dist, NodeId u, NodeId v);

/// True iff the graph is connected.
[[nodiscard]] bool is_connected(const Graph& g);

/// 128-bit structural fingerprint of a graph: node count plus two
/// independent hashes of the packed adjacency matrix. Equal graphs always
/// collide; distinct graphs collide with probability ~2⁻¹²⁸.
struct GraphFingerprint {
  std::uint64_t n = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const GraphFingerprint&,
                         const GraphFingerprint&) noexcept = default;
};
[[nodiscard]] GraphFingerprint fingerprint(const Graph& g);

/// Process-wide memo of all-pairs BFS keyed by graph fingerprint, so the
/// verifier, the scheme builders, and the benches compute each graph's
/// DistanceMatrix once instead of once per caller. Thread-safe: concurrent
/// get() calls for the same graph compute the matrix exactly once (others
/// block until it is ready); matrices for distinct graphs are computed
/// concurrently without serializing on the cache lock. Entries are evicted
/// LRU beyond `capacity`; returned shared_ptrs stay valid regardless.
class DistanceCache {
 public:
  explicit DistanceCache(std::size_t capacity = 16);

  /// The distance matrix of `g`, computed on first use.
  [[nodiscard]] std::shared_ptr<const DistanceMatrix> get(const Graph& g);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  void clear();

  /// The shared process-wide instance.
  static DistanceCache& global();

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const DistanceMatrix> dist;
  };
  struct KeyHash {
    std::size_t operator()(const GraphFingerprint& f) const noexcept {
      return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::list<GraphFingerprint> lru_;  // front = most recent
  std::unordered_map<GraphFingerprint,
                     std::pair<std::shared_ptr<Entry>,
                               std::list<GraphFingerprint>::iterator>,
                     KeyHash>
      entries_;
};

}  // namespace optrt::graph
