// Shortest-path machinery: BFS, all-pairs distances, diameter, and the
// shortest-path successor sets that full-information routing (Theorem 10)
// and the scheme verifier need.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace optrt::graph {

/// Distance value for unreachable pairs.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `source` (kUnreachable where disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       NodeId source);

/// All-pairs shortest-path distances, as a flat n×n row-major matrix.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(const Graph& g);

  [[nodiscard]] std::uint32_t at(NodeId u, NodeId v) const noexcept {
    return d_[static_cast<std::size_t>(u) * n_ + v];
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Max finite distance; kUnreachable if the graph is disconnected,
  /// 0 for graphs with < 2 nodes.
  [[nodiscard]] std::uint32_t diameter() const noexcept;

  /// True iff every pair is connected.
  [[nodiscard]] bool connected() const noexcept;

 private:
  std::size_t n_;
  std::vector<std::uint32_t> d_;
};

/// All neighbours of `u` that lie on a shortest path from `u` to `v`
/// (the full-information answer set of §1): w adjacent to u with
/// d(w, v) = d(u, v) − 1. Empty when v == u or v unreachable.
[[nodiscard]] std::vector<NodeId> shortest_path_successors(
    const Graph& g, const DistanceMatrix& dist, NodeId u, NodeId v);

/// True iff the graph is connected.
[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace optrt::graph
