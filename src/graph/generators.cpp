#include "graph/generators.hpp"

#include <stdexcept>

namespace optrt::graph {

Graph random_gnp(std::size_t n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("random_gnp: p not in [0,1]");
  Graph g(n);
  std::bernoulli_distribution coin(p);
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (coin(rng)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_uniform(std::size_t n, Rng& rng) {
  // Draw the n(n-1)/2 edge bits directly from the generator words: exactly
  // the uniform distribution over E(G) strings of Definition 2.
  Graph g(n);
  std::uint64_t word = 0;
  unsigned left = 0;
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (left == 0) {
        word = rng();
        left = 64;
      }
      if (word & 1u) g.add_edge(u, v);
      word >>= 1;
      --left;
    }
  }
  return g;
}

Graph chain(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  return g;
}

Graph ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph star(std::size_t n) {
  if (n == 0) throw std::invalid_argument("star: need n >= 1");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph hypercube(std::size_t dimension) {
  if (dimension > 20) throw std::invalid_argument("hypercube: dimension > 20");
  const std::size_t n = std::size_t{1} << dimension;
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t b = 0; b < dimension; ++b) {
      const NodeId v = u ^ static_cast<NodeId>(1u << b);
      if (v > u) g.add_edge(u, v);
    }
  }
  return g;
}

Graph lower_bound_gb(std::size_t k) {
  if (k == 0) throw std::invalid_argument("lower_bound_gb: need k >= 1");
  Graph g(3 * k);
  for (NodeId mid = static_cast<NodeId>(k); mid < 2 * k; ++mid) {
    for (NodeId bottom = 0; bottom < k; ++bottom) g.add_edge(bottom, mid);
    g.add_edge(mid, static_cast<NodeId>(mid + k));
  }
  return g;
}

Graph lower_bound_gb_permuted(std::size_t k, const std::vector<NodeId>& perm) {
  if (k == 0) throw std::invalid_argument("lower_bound_gb_permuted: k >= 1");
  if (perm.size() != k) {
    throw std::invalid_argument("lower_bound_gb_permuted: |perm| != k");
  }
  std::vector<bool> seen(k, false);
  for (NodeId p : perm) {
    if (p >= k || seen[p]) {
      throw std::invalid_argument("lower_bound_gb_permuted: not a permutation");
    }
    seen[p] = true;
  }
  Graph g(3 * k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto mid = static_cast<NodeId>(k + i);
    for (NodeId bottom = 0; bottom < k; ++bottom) g.add_edge(bottom, mid);
    g.add_edge(mid, static_cast<NodeId>(2 * k + perm[i]));
  }
  return g;
}

}  // namespace optrt::graph
