#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

namespace optrt::graph {

Graph random_gnp(std::size_t n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("random_gnp: p not in [0,1]");
  Graph g(n);
  std::bernoulli_distribution coin(p);
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (coin(rng)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_uniform(std::size_t n, Rng& rng) {
  // Draw the n(n-1)/2 edge bits directly from the generator words: exactly
  // the uniform distribution over E(G) strings of Definition 2.
  Graph g(n);
  std::uint64_t word = 0;
  unsigned left = 0;
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (left == 0) {
        word = rng();
        left = 64;
      }
      if (word & 1u) g.add_edge(u, v);
      word >>= 1;
      --left;
    }
  }
  return g;
}

Graph chain(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  return g;
}

Graph ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph star(std::size_t n) {
  if (n == 0) throw std::invalid_argument("star: need n >= 1");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph hypercube(std::size_t dimension) {
  if (dimension > 20) throw std::invalid_argument("hypercube: dimension > 20");
  const std::size_t n = std::size_t{1} << dimension;
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t b = 0; b < dimension; ++b) {
      const NodeId v = u ^ static_cast<NodeId>(1u << b);
      if (v > u) g.add_edge(u, v);
    }
  }
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t attach, Rng& rng) {
  if (attach == 0) throw std::invalid_argument("barabasi_albert: attach >= 1");
  if (n < attach + 1) {
    throw std::invalid_argument("barabasi_albert: need n >= attach + 1");
  }
  Graph g(n);
  // One entry per edge endpoint: sampling an entry uniformly samples a node
  // with probability proportional to its degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * (attach + (n - attach - 1) * attach));
  for (NodeId v = 1; v <= attach; ++v) {
    g.add_edge(0, v);
    endpoints.push_back(0);
    endpoints.push_back(v);
  }
  std::vector<NodeId> chosen;
  chosen.reserve(attach);
  for (NodeId u = static_cast<NodeId>(attach + 1); u < n; ++u) {
    chosen.clear();
    std::uniform_int_distribution<std::size_t> pick(0, endpoints.size() - 1);
    while (chosen.size() < attach) {
      const NodeId v = endpoints[pick(rng)];
      if (std::find(chosen.begin(), chosen.end(), v) != chosen.end()) continue;
      chosen.push_back(v);
    }
    for (const NodeId v : chosen) {
      g.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return g;
}

std::vector<std::size_t> power_law_degrees(std::size_t n, double exponent,
                                           std::size_t min_degree, Rng& rng) {
  if (exponent <= 1.0) {
    throw std::invalid_argument("power_law_degrees: exponent <= 1");
  }
  if (min_degree == 0) {
    throw std::invalid_argument("power_law_degrees: min_degree >= 1");
  }
  if (n < 2 || min_degree >= n) {
    throw std::invalid_argument("power_law_degrees: need min_degree < n - 1");
  }
  const std::size_t max_degree = n - 1;
  std::vector<double> cdf;
  cdf.reserve(max_degree - min_degree + 1);
  double total = 0.0;
  for (std::size_t d = min_degree; d <= max_degree; ++d) {
    total += std::pow(static_cast<double>(d), -exponent);
    cdf.push_back(total);
  }
  std::vector<std::size_t> degrees(n);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (auto& deg : degrees) {
    const double x = unit(rng) * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), x);
    deg = min_degree + static_cast<std::size_t>(it - cdf.begin());
    if (deg > max_degree) deg = max_degree;
  }
  const std::size_t sum =
      std::accumulate(degrees.begin(), degrees.end(), std::size_t{0});
  if (sum % 2 != 0) {
    // All-max sequences have even sum n(n-1), so a bumpable entry exists.
    for (auto& deg : degrees) {
      if (deg < max_degree) {
        ++deg;
        break;
      }
    }
  }
  return degrees;
}

Graph configuration_model(std::span<const std::size_t> degrees, Rng& rng) {
  const std::size_t n = degrees.size();
  std::size_t sum = 0;
  for (const std::size_t d : degrees) {
    if (d >= n) throw std::invalid_argument("configuration_model: degree >= n");
    sum += d;
  }
  if (sum % 2 != 0) {
    throw std::invalid_argument("configuration_model: odd degree sum");
  }

  std::vector<NodeId> stubs;
  stubs.reserve(sum);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t k = 0; k < degrees[v]; ++k) stubs.push_back(v);
  }
  std::shuffle(stubs.begin(), stubs.end(), rng);

  const auto norm = [](NodeId a, NodeId b) {
    return a < b ? std::pair<NodeId, NodeId>{a, b}
                 : std::pair<NodeId, NodeId>{b, a};
  };
  std::vector<std::pair<NodeId, NodeId>> accepted;
  std::set<std::pair<NodeId, NodeId>> present;
  std::vector<std::pair<NodeId, NodeId>> invalid;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const auto e = norm(stubs[i], stubs[i + 1]);
    if (e.first == e.second || present.count(e) != 0) {
      invalid.push_back(e);
    } else {
      accepted.push_back(e);
      present.insert(e);
    }
  }

  // Rewire each invalid pairing through a degree-preserving edge swap:
  // (a,b) bad + (c,d) accepted → (a,c) + (b,d), when both new edges are
  // simple and absent. The partner search starts at a random offset but
  // scans the whole accepted list, so a pair is dropped (its endpoints
  // lose one stub each) only when no landing swap exists at all.
  for (const auto& [a, b] : invalid) {
    if (accepted.empty()) break;
    std::uniform_int_distribution<std::size_t> pick(0, accepted.size() - 1);
    const std::size_t start = pick(rng);
    for (std::size_t step = 0; step < accepted.size(); ++step) {
      const std::size_t j = (start + step) % accepted.size();
      const auto [c, d] = accepted[j];
      const auto e1 = norm(a, c);
      const auto e2 = norm(b, d);
      if (a == c || b == d || e1 == e2 || present.count(e1) != 0 ||
          present.count(e2) != 0) {
        continue;
      }
      present.erase(accepted[j]);
      accepted[j] = e1;
      present.insert(e1);
      accepted.push_back(e2);
      present.insert(e2);
      break;
    }
  }

  Graph g(n);
  for (const auto& [u, v] : accepted) g.add_edge(u, v);

  // Connectivity repair: breadth-first sweep from node 0; every later
  // component is bridged to node 0's component via its least node.
  std::vector<bool> seen(n, false);
  std::vector<NodeId> queue;
  const auto flood = [&](NodeId start) {
    queue.clear();
    queue.push_back(start);
    seen[start] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const NodeId w : g.neighbors(queue[head])) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
  };
  if (n > 0) flood(0);
  for (NodeId v = 1; v < n; ++v) {
    if (!seen[v]) {
      g.add_edge(0, v);
      flood(v);
    }
  }
  return g;
}

Graph random_power_law(std::size_t n, double exponent, std::size_t min_degree,
                       Rng& rng) {
  const auto degrees = power_law_degrees(n, exponent, min_degree, rng);
  return configuration_model(degrees, rng);
}

std::string TopologyFamily::name() const {
  char buf[64];
  switch (kind) {
    case Kind::kUniform:
      return "uniform";
    case Kind::kGnp:
      std::snprintf(buf, sizeof buf, "gnp(%g)", p);
      return buf;
    case Kind::kPowerLaw:
      std::snprintf(buf, sizeof buf, "power-law(m=%zu)", attach);
      return buf;
    case Kind::kConfigModel:
      std::snprintf(buf, sizeof buf, "config(%g,%zu)", exponent, min_degree);
      return buf;
    case Kind::kGrid:
      return "grid";
    case Kind::kRing:
      return "ring";
  }
  throw std::logic_error("TopologyFamily::name: bad kind");
}

Graph TopologyFamily::make(std::size_t n, std::uint64_t seed) const {
  Rng rng(seed);
  switch (kind) {
    case Kind::kUniform:
      return random_uniform(n, rng);
    case Kind::kGnp:
      return random_gnp(n, p, rng);
    case Kind::kPowerLaw:
      return barabasi_albert(n, attach, rng);
    case Kind::kConfigModel:
      return random_power_law(n, exponent, min_degree, rng);
    case Kind::kGrid: {
      std::size_t rows = 1;
      for (std::size_t r = 1; r * r <= n; ++r) {
        if (n % r == 0) rows = r;
      }
      return optrt::graph::grid(rows, n / rows);
    }
    case Kind::kRing:
      return optrt::graph::ring(n);
  }
  throw std::logic_error("TopologyFamily::make: bad kind");
}

TopologyFamily TopologyFamily::uniform() { return {}; }

TopologyFamily TopologyFamily::gnp(double p) {
  TopologyFamily f;
  f.kind = Kind::kGnp;
  f.p = p;
  return f;
}

TopologyFamily TopologyFamily::power_law(std::size_t attach) {
  TopologyFamily f;
  f.kind = Kind::kPowerLaw;
  f.attach = attach;
  return f;
}

TopologyFamily TopologyFamily::config_model(double exponent,
                                            std::size_t min_degree) {
  TopologyFamily f;
  f.kind = Kind::kConfigModel;
  f.exponent = exponent;
  f.min_degree = min_degree;
  return f;
}

TopologyFamily TopologyFamily::grid() {
  TopologyFamily f;
  f.kind = Kind::kGrid;
  return f;
}

TopologyFamily TopologyFamily::ring() {
  TopologyFamily f;
  f.kind = Kind::kRing;
  return f;
}

TopologyFamily TopologyFamily::parse(const std::string& spec) {
  const auto bad = [&spec]() -> TopologyFamily {
    throw std::invalid_argument("TopologyFamily::parse: bad spec '" + spec +
                                "' (want uniform | gnp:<p> | ba:<attach> | "
                                "config:<exponent>,<min_degree> | grid | "
                                "ring)");
  };
  if (spec == "uniform") return uniform();
  if (spec == "grid") return grid();
  if (spec == "ring") return ring();
  const auto colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  const std::string rest =
      colon == std::string::npos ? std::string{} : spec.substr(colon + 1);
  try {
    if (head == "gnp" && !rest.empty()) {
      std::size_t used = 0;
      const double p = std::stod(rest, &used);
      if (used != rest.size() || p < 0.0 || p > 1.0) return bad();
      return gnp(p);
    }
    if ((head == "ba" || head == "power-law") && !rest.empty()) {
      std::size_t used = 0;
      const unsigned long attach = std::stoul(rest, &used);
      if (used != rest.size() || attach == 0) return bad();
      return power_law(attach);
    }
    if (head == "config" && !rest.empty()) {
      const auto comma = rest.find(',');
      if (comma == std::string::npos) return bad();
      std::size_t used = 0;
      const std::string exp_str = rest.substr(0, comma);
      const std::string deg_str = rest.substr(comma + 1);
      if (exp_str.empty() || deg_str.empty()) return bad();
      const double exponent = std::stod(exp_str, &used);
      if (used != exp_str.size() || exponent <= 1.0) return bad();
      const unsigned long min_degree = std::stoul(deg_str, &used);
      if (used != deg_str.size() || min_degree == 0) return bad();
      return config_model(exponent, min_degree);
    }
  } catch (const std::logic_error&) {
    return bad();
  }
  return bad();
}

Graph lower_bound_gb(std::size_t k) {
  if (k == 0) throw std::invalid_argument("lower_bound_gb: need k >= 1");
  Graph g(3 * k);
  for (NodeId mid = static_cast<NodeId>(k); mid < 2 * k; ++mid) {
    for (NodeId bottom = 0; bottom < k; ++bottom) g.add_edge(bottom, mid);
    g.add_edge(mid, static_cast<NodeId>(mid + k));
  }
  return g;
}

Graph lower_bound_gb_permuted(std::size_t k, const std::vector<NodeId>& perm) {
  if (k == 0) throw std::invalid_argument("lower_bound_gb_permuted: k >= 1");
  if (perm.size() != k) {
    throw std::invalid_argument("lower_bound_gb_permuted: |perm| != k");
  }
  std::vector<bool> seen(k, false);
  for (NodeId p : perm) {
    if (p >= k || seen[p]) {
      throw std::invalid_argument("lower_bound_gb_permuted: not a permutation");
    }
    seen[p] = true;
  }
  Graph g(3 * k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto mid = static_cast<NodeId>(k + i);
    for (NodeId bottom = 0; bottom < k; ++bottom) g.add_edge(bottom, mid);
    g.add_edge(mid, static_cast<NodeId>(2 * k + perm[i]));
  }
  return g;
}

}  // namespace optrt::graph
