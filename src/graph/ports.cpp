#include "graph/ports.hpp"

#include <algorithm>
#include <stdexcept>

namespace optrt::graph {

PortAssignment PortAssignment::from_port_maps(
    const Graph& g, std::vector<std::vector<NodeId>> port_to_neighbor) {
  if (port_to_neighbor.size() != g.node_count()) {
    throw std::invalid_argument("from_port_maps: wrong node count");
  }
  PortAssignment pa;
  pa.port_to_neighbor_ = std::move(port_to_neighbor);
  pa.sorted_neighbors_.resize(g.node_count());
  pa.rank_to_port_.resize(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto& perm = pa.port_to_neighbor_[u];
    if (perm.size() != nbrs.size()) {
      throw std::invalid_argument("from_port_maps: wrong degree");
    }
    pa.sorted_neighbors_[u].assign(nbrs.begin(), nbrs.end());
    pa.rank_to_port_[u].assign(nbrs.size(), 0);
    // Invert the permutation: for each port p, find the rank of its
    // neighbour in the sorted list.
    std::vector<bool> seen(nbrs.size(), false);
    for (PortId p = 0; p < perm.size(); ++p) {
      const auto it =
          std::lower_bound(nbrs.begin(), nbrs.end(), perm[p]);
      if (it == nbrs.end() || *it != perm[p]) {
        throw std::invalid_argument("from_port_maps: not a neighbour");
      }
      const auto rank = static_cast<std::size_t>(it - nbrs.begin());
      if (seen[rank]) {
        throw std::invalid_argument("from_port_maps: duplicate neighbour");
      }
      seen[rank] = true;
      pa.rank_to_port_[u][rank] = p;
    }
  }
  return pa;
}

PortAssignment PortAssignment::sorted(const Graph& g) {
  std::vector<std::vector<NodeId>> ports(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto nbrs = g.neighbors(u);
    ports[u].assign(nbrs.begin(), nbrs.end());
  }
  return from_port_maps(g, std::move(ports));
}

PortAssignment PortAssignment::random(const Graph& g, Rng& rng) {
  std::vector<std::vector<NodeId>> ports(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto nbrs = g.neighbors(u);
    ports[u].assign(nbrs.begin(), nbrs.end());
    std::shuffle(ports[u].begin(), ports[u].end(), rng);
  }
  return from_port_maps(g, std::move(ports));
}

PortId PortAssignment::port_of(NodeId u, NodeId v) const {
  const auto& nbrs = sorted_neighbors_[u];
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) {
    throw std::invalid_argument("PortAssignment::port_of: not a neighbour");
  }
  return rank_to_port_[u][static_cast<std::size_t>(it - nbrs.begin())];
}

}  // namespace optrt::graph
