#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace optrt::graph {

Graph::Graph(std::size_t n)
    : n_(n),
      words_per_row_((n + 63) / 64),
      matrix_(n * words_per_row_, 0),
      adjacency_(n) {}

void Graph::add_edge(NodeId u, NodeId v) {
  if (u >= n_ || v >= n_) throw std::invalid_argument("add_edge: node out of range");
  if (u == v) throw std::invalid_argument("add_edge: self-loop");
  if (has_edge(u, v)) throw std::invalid_argument("add_edge: duplicate edge");
  matrix_[static_cast<std::size_t>(u) * words_per_row_ + (v >> 6)] |=
      std::uint64_t{1} << (v & 63);
  matrix_[static_cast<std::size_t>(v) * words_per_row_ + (u >> 6)] |=
      std::uint64_t{1} << (u & 63);
  // Keep lists sorted: generators mostly add edges in increasing order, so
  // the common case is an O(1) append.
  auto insert_sorted = [](std::vector<NodeId>& list, NodeId x) {
    if (list.empty() || list.back() < x) {
      list.push_back(x);
    } else {
      list.insert(std::lower_bound(list.begin(), list.end(), x), x);
    }
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
  ++m_;
}

std::size_t Graph::min_degree() const noexcept {
  std::size_t best = n_ == 0 ? 0 : adjacency_[0].size();
  for (const auto& list : adjacency_) best = std::min(best, list.size());
  return best;
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (const auto& list : adjacency_) best = std::max(best, list.size());
  return best;
}

}  // namespace optrt::graph
