#include "schemes/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "model/fastpath.hpp"
#include "schemes/errors.hpp"

namespace optrt::schemes {

namespace {

// Header phases.
constexpr std::uint32_t kNoWaypoint = 0;
constexpr std::uint32_t kWaypointSet = 1;

}  // namespace

int HierarchicalScheme::DecodedNode::find(NodeId target) const {
  const auto it = std::lower_bound(targets.begin(), targets.end(), target);
  if (it == targets.end() || *it != target) return -1;
  return static_cast<int>(it - targets.begin());
}

HierarchicalScheme::HierarchicalScheme(const graph::Graph& g, Options options)
    : n_(g.node_count()),
      levels_(options.levels),
      ports_(graph::PortAssignment::sorted(g)) {
  if (levels_ < 2) {
    throw SchemeInapplicable("hierarchical: need levels >= 2");
  }
  if (!graph::is_connected(g)) {
    throw SchemeInapplicable("hierarchical: graph disconnected");
  }
  const auto dist_cached = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_cached;
  const double k = static_cast<double>(levels_);

  // Nested pivot sets: A_i = first ⌈n^{(k−i)/k}⌉ nodes of one shuffled
  // order, i = 1..k−1. pivot_sets_[0] stays empty (A₀ = V).
  std::vector<NodeId> order(n_);
  std::iota(order.begin(), order.end(), 0);
  graph::Rng rng(options.seed);
  std::shuffle(order.begin(), order.end(), rng);

  pivot_sets_.resize(levels_);
  pivot_of_.resize(levels_);
  pivot_of_[0].resize(n_);
  std::iota(pivot_of_[0].begin(), pivot_of_[0].end(), 0);
  for (std::size_t i = 1; i < levels_; ++i) {
    const auto size = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               std::pow(static_cast<double>(n_), (k - static_cast<double>(i)) / k))));
    pivot_sets_[i].assign(order.begin(),
                          order.begin() + static_cast<std::ptrdiff_t>(
                                              std::min(size, n_)));
    std::sort(pivot_sets_[i].begin(), pivot_sets_[i].end());
    // Nearest level-i pivot per node (least id on ties — pivots sorted).
    pivot_of_[i].assign(n_, pivot_sets_[i][0]);
    for (NodeId v = 0; v < n_; ++v) {
      std::uint32_t best = graph::kUnreachable;
      for (NodeId t : pivot_sets_[i]) {
        if (dist.at(v, t) < best) {
          best = dist.at(v, t);
          pivot_of_[i][v] = t;
        }
      }
    }
  }

  // Entry assembly: target → (port, installed?). Vicinity/top entries win
  // over installed duplicates.
  std::vector<std::map<NodeId, std::pair<graph::PortId, bool>>> entries(n_);
  auto hop_port = [&](NodeId from, NodeId to) {
    return ports_.port_of(
        from, graph::shortest_path_successors(g, dist, from, to).front());
  };
  auto add_direct = [&](NodeId at, NodeId target) {
    if (at == target) return;
    entries[at][target] = {hop_port(at, target), false};
  };
  auto add_installed = [&](NodeId at, NodeId target) {
    if (at == target) return;
    entries[at].emplace(target,
                        std::make_pair(hop_port(at, target), true));
  };

  // (T) every node resolves every top pivot.
  for (NodeId w = 0; w < n_; ++w) {
    for (NodeId t : pivot_sets_[levels_ - 1]) add_direct(w, t);
  }
  // (V) vicinity C(w) = {v : d(w, v) ≤ d(v, p₁(v))}.
  for (NodeId w = 0; w < n_; ++w) {
    for (NodeId v = 0; v < n_; ++v) {
      if (v != w && dist.at(w, v) <= dist.at(v, pivot_of_[1][v])) {
        add_direct(w, v);
      }
    }
  }
  // (H) installed handoff paths: for i ≥ 2, one shortest path from every
  // level-i pivot t to each child pivot x = p_{i−1}(v) of its members.
  std::set<std::pair<NodeId, NodeId>> installed_pairs;
  for (std::size_t i = 2; i < levels_; ++i) {
    for (NodeId v = 0; v < n_; ++v) {
      const NodeId t = pivot_of_[i][v];
      const NodeId x = pivot_of_[i - 1][v];
      if (t == x) continue;
      if (!installed_pairs.emplace(t, x).second) continue;
      // Walk the canonical (least-successor) shortest path t → x,
      // installing an entry for x at every interior node.
      NodeId at = t;
      while (at != x) {
        add_installed(at, x);
        at = graph::shortest_path_successors(g, dist, at, x).front();
      }
    }
  }
  // Also install the final handoff target for top-level pivots' children
  // when k == 2 there are no handoffs (vicinity + top suffice).

  // Serialize and decode back.
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  function_bits_.resize(n_);
  decoded_.resize(n_);
  for (NodeId w = 0; w < n_; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(g.degree(w), 1));
    bitio::BitWriter out;
    bitio::write_prime(out, entries[w].size());
    for (const auto& [target, entry] : entries[w]) {
      out.write_bits(target, id_width);
      out.write_bits(entry.first, port_width);
      out.write_bit(entry.second);
    }
    function_bits_[w] = out.take();

    bitio::BitReader r(function_bits_[w]);
    const auto count = static_cast<std::size_t>(bitio::read_prime(r));
    DecodedNode& node = decoded_[w];
    node.targets.resize(count);
    node.port_for.resize(count);
    for (std::size_t e = 0; e < count; ++e) {
      node.targets[e] = static_cast<NodeId>(r.read_bits(id_width));
      node.port_for[e] = static_cast<graph::PortId>(r.read_bits(port_width));
      (void)r.read_bit();  // installed flag: routing treats both alike
    }
  }
}

HierarchicalScheme::HierarchicalScheme(
    const graph::Graph& g, std::vector<std::vector<NodeId>> pivot_sets,
    std::vector<bitio::BitVector> node_bits)
    : n_(g.node_count()),
      levels_(pivot_sets.size()),
      ports_(graph::PortAssignment::sorted(g)),
      pivot_sets_(std::move(pivot_sets)) {
  if (levels_ < 2 || node_bits.size() != n_) {
    throw std::invalid_argument("HierarchicalScheme: bad serialized state");
  }
  const auto dist_cached = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_cached;
  pivot_of_.resize(levels_);
  pivot_of_[0].resize(n_);
  std::iota(pivot_of_[0].begin(), pivot_of_[0].end(), 0);
  for (std::size_t i = 1; i < levels_; ++i) {
    if (pivot_sets_[i].empty()) {
      throw std::invalid_argument("HierarchicalScheme: empty pivot set");
    }
    pivot_of_[i].assign(n_, pivot_sets_[i][0]);
    for (NodeId v = 0; v < n_; ++v) {
      std::uint32_t best = graph::kUnreachable;
      for (NodeId t : pivot_sets_[i]) {
        if (t >= n_) {
          throw std::invalid_argument("HierarchicalScheme: bad pivot id");
        }
        if (dist.at(v, t) < best) {
          best = dist.at(v, t);
          pivot_of_[i][v] = t;
        }
      }
    }
  }
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  function_bits_ = std::move(node_bits);
  decoded_.resize(n_);
  for (NodeId w = 0; w < n_; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(g.degree(w), 1));
    const std::size_t degree = std::max<std::size_t>(g.degree(w), 1);
    const std::size_t entry_bits = id_width + port_width + 1;
    bitio::BitReader r(function_bits_[w]);
    const auto count = static_cast<std::size_t>(bitio::read_prime(r));
    // The stored count must fit the node's actual bits before it sizes
    // any allocation; a corrupt count field is not a resize request.
    if (count > r.remaining() / entry_bits) {
      throw std::length_error(
          "HierarchicalScheme: entry count exceeds the stored bits");
    }
    DecodedNode& node = decoded_[w];
    node.targets.resize(count);
    node.port_for.resize(count);
    for (std::size_t e = 0; e < count; ++e) {
      node.targets[e] = static_cast<NodeId>(r.read_bits(id_width));
      node.port_for[e] = static_cast<graph::PortId>(r.read_bits(port_width));
      (void)r.read_bit();
      if (node.targets[e] >= n_ || node.port_for[e] >= degree ||
          (e > 0 && node.targets[e] <= node.targets[e - 1])) {
        throw std::invalid_argument("HierarchicalScheme: bad table entry");
      }
    }
    if (!r.exhausted()) {
      throw std::invalid_argument(
          "HierarchicalScheme: trailing bits in a node table");
    }
  }
}

int HierarchicalScheme::resolve(NodeId u, NodeId target) const {
  return decoded_[u].find(target);
}

NodeId HierarchicalScheme::next_hop(NodeId u, NodeId dest_label,
                                    model::MessageHeader& header) const {
  const NodeId v = dest_label;
  if (v == u) {
    throw std::invalid_argument("HierarchicalScheme: routing to self");
  }
  // Continue an active waypoint leg.
  if (header.phase == kWaypointSet) {
    const NodeId w = static_cast<NodeId>(header.probe_index);
    if (w != u) {
      const int e = resolve(u, w);
      if (e >= 0) {
        return ports_.neighbor_at(u, decoded_[u].port_for[static_cast<std::size_t>(e)]);
      }
    }
    header.phase = kNoWaypoint;  // arrived (or leg no longer resolvable)
  }
  // Fresh decision: destination directly, then its pivots bottom-up.
  auto follow = [&](NodeId target, int e) {
    header.phase = kWaypointSet;
    header.probe_index = target;
    return ports_.neighbor_at(u, decoded_[u].port_for[static_cast<std::size_t>(e)]);
  };
  if (const int e = resolve(u, v); e >= 0) return follow(v, e);
  for (std::size_t i = 1; i < levels_; ++i) {
    const NodeId t = pivot_of_[i][v];  // from the destination's label
    if (t == u) {
      // u is v's level-i pivot: hand off to the level-(i−1) pivot via the
      // installed path (it starts here).
      const NodeId x = pivot_of_[i - 1][v];
      const int e = resolve(u, x);
      if (e < 0) {
        throw std::logic_error("HierarchicalScheme: missing handoff entry");
      }
      return follow(x, e);
    }
    if (const int e = resolve(u, t); e >= 0) return follow(t, e);
  }
  throw std::logic_error("HierarchicalScheme: unresolvable destination");
}

namespace {

class HierarchicalFastPath final : public model::FastPath {
 public:
  HierarchicalFastPath(std::size_t n, std::size_t levels,
                       std::vector<model::PackedSparseArray> tables,
                       std::vector<std::vector<NodeId>> pivot_of,
                       graph::CsrGraph csr)
      : n_(n),
        levels_(levels),
        tables_(std::move(tables)),
        pivot_of_(std::move(pivot_of)),
        csr_(std::move(csr)) {}

  [[nodiscard]] std::string name() const override { return "hierarchical"; }
  [[nodiscard]] std::size_t node_count() const override { return n_; }

  // The fresh-header decision ladder of HierarchicalScheme::next_hop:
  // destination first, then its pivots bottom-up, with the handoff throw
  // when u is the pivot but the installed leg is missing.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label) const override {
    const NodeId v = dest_label;
    if (v == u) {
      throw std::invalid_argument("HierarchicalScheme: routing to self");
    }
    const auto& table = tables_[u];
    const auto follow = [&](NodeId target) {
      return csr_.neighbor_at(u,
                              static_cast<graph::PortId>(table.value(target)));
    };
    if (table.contains(v)) return follow(v);
    for (std::size_t i = 1; i < levels_; ++i) {
      const NodeId t = pivot_of_[i][v];
      if (t == u) {
        const NodeId x = pivot_of_[i - 1][v];
        if (x == u || !table.contains(x)) {
          throw std::logic_error("HierarchicalScheme: missing handoff entry");
        }
        return follow(x);
      }
      if (table.contains(t)) return follow(t);
    }
    throw std::logic_error("HierarchicalScheme: unresolvable destination");
  }

 private:
  std::size_t n_;
  std::size_t levels_;
  std::vector<model::PackedSparseArray> tables_;
  std::vector<std::vector<NodeId>> pivot_of_;
  graph::CsrGraph csr_;  // sorted = port order for this scheme
};

}  // namespace

std::unique_ptr<model::FastPath> HierarchicalScheme::compile_fast() const {
  std::vector<model::PackedSparseArray> tables;
  tables.reserve(n_);
  for (NodeId w = 0; w < n_; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(ports_.degree(w), 1));
    const DecodedNode& node = decoded_[w];
    bitio::BitVector mask(n_);
    for (NodeId t : node.targets) mask.set(t, true);
    tables.emplace_back(std::move(mask), node.port_for, port_width);
  }
  model::note_fastpath_compiled("hierarchical");
  return std::make_unique<HierarchicalFastPath>(
      n_, levels_, std::move(tables), pivot_of_,
      graph::CsrGraph::from_ports(ports_));
}

std::vector<NodeId> HierarchicalScheme::port_enumeration(NodeId u) const {
  const auto ports = ports_.ports(u);
  return {ports.begin(), ports.end()};
}

model::SpaceReport HierarchicalScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : function_bits_) {
    report.function_bits.push_back(bits.size());
  }
  // Charged labels: (v, p₁(v), …, p_{k−1}(v)) at ⌈log n⌉ bits each.
  report.label_bits =
      n_ * levels_ * bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  return report;
}

}  // namespace optrt::schemes
