// Theorem 5: routing with stretch ≤ 2(c+3) log n in model II using O(1)
// bits per node — O(n) bits for the whole scheme.
//
// The constant local routing function: deliver directly if the destination
// is a neighbour; otherwise probe the least neighbours in order — send the
// message to v₁; v₁ forwards it if the destination is its neighbour, else
// bounces it back over the arrival link; try v₂, and so on. By Lemma 3 a
// probe succeeds within the first (c+3) log n least neighbours, so a
// distance-2 destination costs at most 2(c+3) log n edge traversals.
//
// The probe state (phase + index) travels in the message header; the paper
// counts edge traversals, and SpaceReport shows 0 stored bits per node.
#pragma once

#include "graph/graph.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

using graph::NodeId;

class SequentialSearchScheme final : public model::RoutingScheme {
 public:
  explicit SequentialSearchScheme(const graph::Graph& g);

  [[nodiscard]] std::string name() const override {
    return "sequential-search";
  }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIIalpha;
  }
  [[nodiscard]] std::size_t node_count() const override {
    return g_->node_count();
  }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  /// Theorem 5's probe walk lives in the header (phase + probe index).
  [[nodiscard]] bool stateless_next_hop() const override { return false; }
  [[nodiscard]] model::SpaceReport space() const override;
  [[nodiscard]] std::vector<NodeId> port_enumeration(NodeId u) const override;
  /// Compiled form of the first (at-source) decision: adjacency bit test,
  /// else the least neighbour from a CSR slice.
  [[nodiscard]] std::unique_ptr<model::FastPath> compile_fast() const override;

  // Header phases.
  static constexpr std::uint32_t kAtSource = 0;
  static constexpr std::uint32_t kProbing = 1;
  static constexpr std::uint32_t kReturning = 2;

 private:
  const graph::Graph* g_;  // free neighbour knowledge under model II
};

}  // namespace optrt::schemes
