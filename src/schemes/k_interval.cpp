#include "schemes/k_interval.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/algorithms.hpp"
#include "schemes/errors.hpp"

namespace optrt::schemes {

bool KIntervalScheme::contains(const Interval& iv, NodeId label,
                               std::size_t) noexcept {
  if (iv.lo <= iv.hi) return iv.lo <= label && label <= iv.hi;
  return label >= iv.lo || label <= iv.hi;  // cyclic wrap
}

KIntervalScheme::KIntervalScheme(const graph::Graph& g)
    : n_(g.node_count()), ports_(graph::PortAssignment::sorted(g)) {
  if (!graph::is_connected(g)) {
    throw SchemeInapplicable("k-interval: graph disconnected");
  }
  const auto dist_cached = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_cached;
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));

  function_bits_.resize(n_);
  decoded_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    const std::size_t degree = g.degree(u);
    // Destination → port of least shortest-path successor.
    std::vector<std::vector<NodeId>> members(degree);
    for (NodeId v = 0; v < n_; ++v) {
      if (v == u) continue;
      const auto succ = graph::shortest_path_successors(g, dist, u, v);
      members[ports_.port_of(u, succ.front())].push_back(v);
    }
    // Merge each port's (sorted) member list into maximal cyclic runs.
    // Two labels are in one run when consecutive mod n, skipping u itself
    // (u's own label never needs routing, so runs may jump over it).
    bitio::BitWriter w;
    DecodedNode& node = decoded_[u];
    node.port_intervals.resize(degree);
    for (std::size_t p = 0; p < degree; ++p) {
      const auto& list = members[p];
      std::vector<Interval> intervals;
      if (list.size() == n_ - 1) {
        // The port routes every other label: one cyclic interval that
        // wraps around u.
        intervals.push_back(Interval{static_cast<NodeId>((u + 1) % n_),
                                     static_cast<NodeId>((u + n_ - 1) % n_)});
      } else if (!list.empty()) {
        // Runs are maximal chains under the cyclic successor that skips
        // u's own label (u is never a destination, so runs may cross it).
        auto next_label = [this, u](NodeId x) {
          NodeId nx = static_cast<NodeId>((x + 1) % n_);
          if (nx == u) nx = static_cast<NodeId>((nx + 1) % n_);
          return nx;
        };
        auto prev_label = [this, u](NodeId x) {
          NodeId pv = static_cast<NodeId>((x + n_ - 1) % n_);
          if (pv == u) pv = static_cast<NodeId>((pv + n_ - 1) % n_);
          return pv;
        };
        std::vector<bool> present(n_, false);
        for (NodeId v : list) present[v] = true;
        for (NodeId v : list) {
          if (present[prev_label(v)]) continue;  // not a run start
          NodeId end = v;
          while (present[next_label(end)]) end = next_label(end);
          intervals.push_back(Interval{v, end});
        }
      }
      compactness_ = std::max(compactness_, intervals.size());
      total_intervals_ += intervals.size();
      // Serialize: interval count, then (lo, hi) pairs.
      bitio::write_prime(w, intervals.size());
      for (const Interval& iv : intervals) {
        w.write_bits(iv.lo, id_width);
        w.write_bits(iv.hi, id_width);
      }
      node.port_intervals[p] = std::move(intervals);
    }
    function_bits_[u] = w.take();

    // Honest read-back: re-decode from the serialized bits.
    bitio::BitReader r(function_bits_[u]);
    for (std::size_t p = 0; p < degree; ++p) {
      const auto count = static_cast<std::size_t>(bitio::read_prime(r));
      std::vector<Interval> intervals(count);
      for (auto& iv : intervals) {
        iv.lo = static_cast<NodeId>(r.read_bits(id_width));
        iv.hi = static_cast<NodeId>(r.read_bits(id_width));
      }
      node.port_intervals[p] = std::move(intervals);
    }
  }
}

NodeId KIntervalScheme::next_hop(NodeId u, NodeId dest_label,
                                 model::MessageHeader&) const {
  if (dest_label == u) {
    throw std::invalid_argument("KIntervalScheme: routing to self");
  }
  const DecodedNode& node = decoded_[u];
  for (std::size_t p = 0; p < node.port_intervals.size(); ++p) {
    for (const Interval& iv : node.port_intervals[p]) {
      if (contains(iv, dest_label, n_)) {
        return ports_.neighbor_at(u, static_cast<graph::PortId>(p));
      }
    }
  }
  throw std::logic_error("KIntervalScheme: uncovered destination label");
}

model::SpaceReport KIntervalScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : function_bits_) {
    report.function_bits.push_back(bits.size());
  }
  return report;
}

}  // namespace optrt::schemes
