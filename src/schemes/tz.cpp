#include "schemes/tz.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "model/fastpath.hpp"
#include "obs/metrics.hpp"
#include "schemes/errors.hpp"

namespace optrt::schemes {

namespace {

/// d(v, A) for every v, against a sorted landmark set.
std::vector<std::uint32_t> dist_to_set(const graph::DistanceMatrix& dist,
                                       std::size_t n,
                                       const std::vector<NodeId>& set) {
  std::vector<std::uint32_t> dva(n, graph::kUnreachable);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId l : set) dva[v] = std::min(dva[v], dist.at(v, l));
  }
  return dva;
}

}  // namespace

std::size_t TzScheme::cluster_cap(std::size_t n) {
  if (n < 2) return 1;
  const double nd = static_cast<double>(n);
  return static_cast<std::size_t>(std::ceil(4.0 * std::sqrt(nd * std::log(nd))));
}

std::vector<NodeId> tz_sample_landmarks(const graph::Graph& g,
                                        const graph::DistanceMatrix& dist,
                                        const TzOptions& options) {
  // Sample A with per-node probability √(ln n / n), tilted by normalized
  // degree (p_v ∝ deg(v), E|A| unchanged): the stretch-3 argument only
  // needs l(v) to be v's nearest landmark, so A is a free choice, and on
  // power-law graphs degree-biased landmarks sit on most shortest paths
  // (Krioukov et al.) — on regular graphs the tilt is a no-op. Resample
  // while A is empty or a cluster breaks the 4√(n ln n) cap, keeping the
  // best sample seen so the election is total and deterministic in the
  // seed.
  const std::size_t n = g.node_count();
  const double p =
      n >= 2 ? std::min(1.0, std::sqrt(std::log(static_cast<double>(n)) /
                                       static_cast<double>(n)))
             : 1.0;
  const double avg_degree =
      n > 0 ? 2.0 * static_cast<double>(g.edge_count()) /
                  static_cast<double>(n)
            : 0.0;
  std::vector<double> p_node(n, p);
  if (avg_degree > 0.0) {
    for (NodeId v = 0; v < n; ++v) {
      p_node[v] =
          std::min(1.0, p * static_cast<double>(g.degree(v)) / avg_degree);
    }
  }
  const std::size_t cap = TzScheme::cluster_cap(n);
  graph::Rng rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<NodeId> best;
  std::size_t best_max = std::numeric_limits<std::size_t>::max();
  std::uint64_t resamples = 0;
  const std::size_t attempts = std::max<std::size_t>(options.max_resamples, 1);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    std::vector<NodeId> sample;
    for (NodeId v = 0; v < n; ++v) {
      if (unit(rng) < p_node[v]) sample.push_back(v);
    }
    if (sample.empty()) {
      ++resamples;
      continue;
    }
    const auto dva = dist_to_set(dist, n, sample);
    std::size_t max_cluster = 0;
    for (NodeId w = 0; w < n; ++w) {
      std::size_t size = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (v != w && dist.at(w, v) < dva[v]) ++size;
      }
      max_cluster = std::max(max_cluster, size);
    }
    if (max_cluster < best_max) {
      best = std::move(sample);
      best_max = max_cluster;
    }
    if (max_cluster <= cap) break;
    ++resamples;
  }
  if (best.empty()) best.push_back(0);  // degenerate fallback: node 0
  obs::counter("schemes.tz.resamples").inc(resamples);
  return best;  // ascending by construction
}

bitio::BitVector tz_build_node_bits(const graph::Graph& g,
                                    const graph::DistanceMatrix& dist,
                                    const graph::PortAssignment& ports,
                                    const std::vector<NodeId>& landmarks,
                                    const std::vector<std::uint32_t>& dva,
                                    NodeId w) {
  const std::size_t n = g.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  const unsigned port_width =
      bitio::ceil_log2(std::max<std::size_t>(g.degree(w), 1));
  bitio::BitWriter out;
  // (a) next hop toward every landmark (own entry unused at a landmark
  // itself; store 0).
  for (NodeId l : landmarks) {
    graph::PortId port = 0;
    if (l != w) {
      const auto succ = graph::shortest_path_successors(g, dist, w, l);
      port = ports.port_of(w, succ.front());
    }
    out.write_bits(port, port_width);
  }
  // (b) cluster table: v with d(w, v) < d(v, A), strictly.
  std::vector<NodeId> cluster;
  for (NodeId v = 0; v < n; ++v) {
    if (v != w && dist.at(w, v) < dva[v]) cluster.push_back(v);
  }
  out.write_bits(cluster.size(), bitio::ceil_log2_plus1(n));
  for (NodeId v : cluster) {
    const auto succ = graph::shortest_path_successors(g, dist, w, v);
    out.write_bits(v, id_width);
    out.write_bits(ports.port_of(w, succ.front()), port_width);
  }
  return out.take();
}

TzScheme::TzScheme(const graph::Graph& g, Options options)
    : n_(g.node_count()), ports_(graph::PortAssignment::sorted(g)) {
  if (!graph::is_connected(g)) {
    throw SchemeInapplicable("tz: graph disconnected");
  }
  const auto dist_cached = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_cached;

  landmarks_ = tz_sample_landmarks(g, dist, options);

  landmark_index_.assign(n_, 0);
  for (std::uint32_t i = 0; i < landmarks_.size(); ++i) {
    landmark_index_[landmarks_[i]] = i;
  }

  // Nearest landmark per node (least id on ties — landmarks_ is sorted).
  landmark_of_.assign(n_, landmarks_[0]);
  std::vector<std::uint32_t> dva(n_, graph::kUnreachable);
  for (NodeId v = 0; v < n_; ++v) {
    for (NodeId l : landmarks_) {
      if (dist.at(v, l) < dva[v]) {
        dva[v] = dist.at(v, l);
        landmark_of_[v] = l;
      }
    }
  }

  // Build and serialize per-node tables.
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  function_bits_.resize(n_);
  decoded_.resize(n_);
  for (NodeId w = 0; w < n_; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(g.degree(w), 1));
    function_bits_[w] = tz_build_node_bits(g, dist, ports_, landmarks_, dva, w);

    // Honest read-back.
    bitio::BitReader r(function_bits_[w]);
    DecodedNode& node = decoded_[w];
    node.landmark_port.resize(landmarks_.size());
    for (auto& pt : node.landmark_port) {
      pt = static_cast<graph::PortId>(r.read_bits(port_width));
    }
    const auto size =
        static_cast<std::size_t>(r.read_bits(bitio::ceil_log2_plus1(n_)));
    node.cluster_ids.resize(size);
    node.cluster_port.resize(size);
    for (std::size_t i = 0; i < size; ++i) {
      node.cluster_ids[i] = static_cast<NodeId>(r.read_bits(id_width));
      node.cluster_port[i] =
          static_cast<graph::PortId>(r.read_bits(port_width));
    }
  }
  finish_build(g, dist);
}

TzScheme::TzScheme(const graph::Graph& g, std::vector<NodeId> landmarks,
                   std::vector<bitio::BitVector> node_bits)
    : n_(g.node_count()),
      ports_(graph::PortAssignment::sorted(g)),
      landmarks_(std::move(landmarks)) {
  // Nearest landmarks are a deterministic function of the graph.
  const auto dist_cached = graph::DistanceCache::global().get(g);
  init_from_bits(g, std::move(node_bits), *dist_cached);
}

TzScheme::TzScheme(const graph::Graph& g, std::vector<NodeId> landmarks,
                   std::vector<bitio::BitVector> node_bits,
                   const graph::DistanceMatrix& dist)
    : n_(g.node_count()),
      ports_(graph::PortAssignment::sorted(g)),
      landmarks_(std::move(landmarks)) {
  init_from_bits(g, std::move(node_bits), dist);
}

void TzScheme::init_from_bits(const graph::Graph& g,
                              std::vector<bitio::BitVector> node_bits,
                              const graph::DistanceMatrix& dist) {
  if (node_bits.size() != n_ || landmarks_.empty()) {
    throw std::invalid_argument("TzScheme: bad serialized state");
  }
  landmark_index_.assign(n_, 0);
  for (std::uint32_t i = 0; i < landmarks_.size(); ++i) {
    if (landmarks_[i] >= n_ ||
        (i > 0 && landmarks_[i] <= landmarks_[i - 1])) {
      throw std::invalid_argument("TzScheme: bad landmark set");
    }
    landmark_index_[landmarks_[i]] = i;
  }
  landmark_of_.assign(n_, landmarks_[0]);
  for (NodeId v = 0; v < n_; ++v) {
    std::uint32_t bst = graph::kUnreachable;
    for (NodeId l : landmarks_) {
      if (dist.at(v, l) < bst) {
        bst = dist.at(v, l);
        landmark_of_[v] = l;
      }
    }
  }
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  function_bits_ = std::move(node_bits);
  decoded_.resize(n_);
  for (NodeId w = 0; w < n_; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(g.degree(w), 1));
    const std::size_t degree = std::max<std::size_t>(g.degree(w), 1);
    bitio::BitReader r(function_bits_[w]);
    DecodedNode& node = decoded_[w];
    node.landmark_port.resize(landmarks_.size());
    for (auto& pt : node.landmark_port) {
      pt = static_cast<graph::PortId>(r.read_bits(port_width));
      if (pt >= degree) {
        throw std::invalid_argument(
            "TzScheme: stored port exceeds the node degree");
      }
    }
    const auto size =
        static_cast<std::size_t>(r.read_bits(bitio::ceil_log2_plus1(n_)));
    if (size > n_) {
      throw std::invalid_argument("TzScheme: cluster larger than n");
    }
    node.cluster_ids.resize(size);
    node.cluster_port.resize(size);
    for (std::size_t i = 0; i < size; ++i) {
      node.cluster_ids[i] = static_cast<NodeId>(r.read_bits(id_width));
      node.cluster_port[i] =
          static_cast<graph::PortId>(r.read_bits(port_width));
      // next_hop binary-searches the cluster and indexes ports unchecked;
      // both invariants must hold before the table is ever queried.
      if (node.cluster_ids[i] >= n_ ||
          (i > 0 && node.cluster_ids[i] <= node.cluster_ids[i - 1])) {
        throw std::invalid_argument("TzScheme: bad cluster table");
      }
      if (node.cluster_port[i] >= degree) {
        throw std::invalid_argument(
            "TzScheme: stored port exceeds the node degree");
      }
    }
    if (!r.exhausted()) {
      throw std::invalid_argument("TzScheme: trailing bits in a node table");
    }
  }
  finish_build(g, dist);
}

void TzScheme::finish_build(const graph::Graph& g,
                            const graph::DistanceMatrix& dist) {
  // Label exit ports: at l(v), the port toward v (least shortest-path
  // successor) — the third component of the charged (v, l(v), port) label.
  exit_port_.assign(n_, 0);
  for (NodeId v = 0; v < n_; ++v) {
    const NodeId l = landmark_of_[v];
    if (l == v) continue;
    const auto succ = graph::shortest_path_successors(g, dist, l, v);
    exit_port_[v] = ports_.port_of(l, succ.front());
  }
  // Bunch sizes: |B(v)| = |{w : v ∈ C(w)}| + |A|.
  bunch_size_.assign(n_, landmarks_.size());
  auto cluster_sizes = obs::histogram("schemes.tz.cluster_size",
                                      obs::hop_buckets());
  for (NodeId w = 0; w < n_; ++w) {
    for (NodeId v : decoded_[w].cluster_ids) ++bunch_size_[v];
    cluster_sizes.observe(decoded_[w].cluster_ids.size());
  }
  obs::counter("schemes.tz.built").inc();
}

NodeId TzScheme::next_hop(NodeId u, NodeId dest_label,
                          model::MessageHeader&) const {
  // The charged label is (v, l(v), exit port at l(v)); numerically we
  // receive v and look the rest up from the label table the scheme itself
  // published.
  const NodeId v = dest_label;
  if (v == u) throw std::invalid_argument("TzScheme: routing to self");
  const DecodedNode& node = decoded_[u];
  const auto it = std::lower_bound(node.cluster_ids.begin(),
                                   node.cluster_ids.end(), v);
  if (it != node.cluster_ids.end() && *it == v) {
    const auto i = static_cast<std::size_t>(it - node.cluster_ids.begin());
    return ports_.neighbor_at(u, node.cluster_port[i]);
  }
  const NodeId l = landmark_of_[v];  // from the destination's label
  if (u == l) return ports_.neighbor_at(u, exit_port_[v]);
  return ports_.neighbor_at(u, node.landmark_port[landmark_index_[l]]);
}

std::vector<NodeId> TzScheme::port_enumeration(NodeId u) const {
  const auto ports = ports_.ports(u);
  return {ports.begin(), ports.end()};
}

namespace {

class TzFastPath final : public model::FastPath {
 public:
  TzFastPath(std::size_t n, std::vector<model::PackedSparseArray> cluster,
             std::vector<model::PackedValueArray> landmark_ports,
             std::vector<NodeId> landmark_of,
             std::vector<std::uint32_t> landmark_index,
             std::vector<graph::PortId> exit_port, graph::CsrGraph csr)
      : n_(n),
        cluster_(std::move(cluster)),
        landmark_ports_(std::move(landmark_ports)),
        landmark_of_(std::move(landmark_of)),
        landmark_index_(std::move(landmark_index)),
        exit_port_(std::move(exit_port)),
        csr_(std::move(csr)) {}

  [[nodiscard]] std::string name() const override { return "tz"; }
  [[nodiscard]] std::size_t node_count() const override { return n_; }

  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label) const override {
    const NodeId v = dest_label;
    if (v == u) throw std::invalid_argument("TzScheme: routing to self");
    const auto& cluster = cluster_[u];
    if (cluster.contains(v)) {
      return csr_.neighbor_at(u, static_cast<graph::PortId>(cluster.value(v)));
    }
    const NodeId l = landmark_of_[v];
    if (u == l) return csr_.neighbor_at(u, exit_port_[v]);
    const auto port = static_cast<graph::PortId>(
        landmark_ports_[u].at(landmark_index_[l]));
    return csr_.neighbor_at(u, port);
  }

 private:
  std::size_t n_;
  std::vector<model::PackedSparseArray> cluster_;
  std::vector<model::PackedValueArray> landmark_ports_;
  std::vector<NodeId> landmark_of_;
  std::vector<std::uint32_t> landmark_index_;
  std::vector<graph::PortId> exit_port_;
  graph::CsrGraph csr_;  // sorted = port order for this scheme
};

}  // namespace

std::unique_ptr<model::FastPath> TzScheme::compile_fast() const {
  std::vector<model::PackedSparseArray> cluster;
  std::vector<model::PackedValueArray> landmark_ports;
  cluster.reserve(n_);
  landmark_ports.reserve(n_);
  for (NodeId w = 0; w < n_; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(ports_.degree(w), 1));
    const DecodedNode& node = decoded_[w];
    bitio::BitVector mask(n_);
    for (NodeId v : node.cluster_ids) mask.set(v, true);
    cluster.emplace_back(std::move(mask), node.cluster_port, port_width);
    landmark_ports.emplace_back(node.landmark_port, port_width);
  }
  model::note_fastpath_compiled("tz");
  return std::make_unique<TzFastPath>(
      n_, std::move(cluster), std::move(landmark_ports), landmark_of_,
      landmark_index_, exit_port_, graph::CsrGraph::from_ports(ports_));
}

model::SpaceReport TzScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : function_bits_) {
    report.function_bits.push_back(bits.size());
  }
  // Model γ: the (v, l(v), exit port) labels are charged — 2·⌈log n⌉ bits
  // plus the exit port at l(v)'s width, per node.
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  for (NodeId v = 0; v < n_; ++v) {
    report.label_bits +=
        2 * id_width +
        bitio::ceil_log2(std::max<std::size_t>(ports_.degree(landmark_of_[v]), 1));
  }
  return report;
}

}  // namespace optrt::schemes
