#include "schemes/routing_center.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/cover.hpp"
#include "model/fastpath.hpp"
#include "schemes/errors.hpp"
#include "schemes/succinct_node_table.hpp"

namespace optrt::schemes {

RoutingCenterScheme::RoutingCenterScheme(const graph::Graph& g, NodeId hub)
    : n_(g.node_count()), g_(&g) {
  const graph::NeighborCover hub_cover = graph::least_neighbor_cover(g, hub);
  if (!hub_cover.complete) {
    throw SchemeInapplicable("routing-center: hub cover incomplete");
  }
  center_ids_ = hub_cover.centers;
  center_ids_.push_back(hub);
  std::sort(center_ids_.begin(), center_ids_.end());
  center_ids_.erase(std::unique(center_ids_.begin(), center_ids_.end()),
                    center_ids_.end());

  in_b_.assign(n_, false);
  for (NodeId b : center_ids_) in_b_[b] = true;

  function_bits_.resize(n_);
  decoded_.resize(n_);
  my_center_.assign(n_, static_cast<NodeId>(-1));
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  const CompactNodeOptions node_opt;  // model II defaults

  for (NodeId v = 0; v < n_; ++v) {
    if (in_b_[v]) {
      CompactNodeBits table = build_compact_node(g, v, node_opt);
      const auto nbrs = g.neighbors(v);
      decoded_[v] = decode_compact_node(
          table.bits, n_, v, node_opt,
          std::vector<NodeId>(nbrs.begin(), nbrs.end()));
      function_bits_[v] = std::move(table.bits);
    } else {
      // Store the label of the least adjacent center. Every node is
      // adjacent to one: the hub's cover dominates its non-neighbours and
      // the hub's neighbours are adjacent to the hub itself.
      NodeId chosen = static_cast<NodeId>(-1);
      for (NodeId z : g.neighbors(v)) {
        if (in_b_[z]) {
          chosen = z;
          break;
        }
      }
      if (chosen == static_cast<NodeId>(-1)) {
        throw SchemeInapplicable("routing-center: node " + std::to_string(v) +
                                 " not adjacent to any center");
      }
      bitio::BitWriter w;
      w.write_bits(chosen, id_width);
      function_bits_[v] = w.take();
      // Decode back (the honest read path).
      bitio::BitReader r(function_bits_[v]);
      my_center_[v] = static_cast<NodeId>(r.read_bits(id_width));
    }
  }
}

RoutingCenterScheme::RoutingCenterScheme(const graph::Graph& g,
                                         std::vector<NodeId> center_ids,
                                         std::vector<bitio::BitVector> node_bits)
    : n_(g.node_count()), center_ids_(std::move(center_ids)), g_(&g) {
  if (node_bits.size() != n_) {
    throw std::invalid_argument("RoutingCenterScheme: node count mismatch");
  }
  in_b_.assign(n_, false);
  for (NodeId b : center_ids_) {
    if (b >= n_) {
      throw std::invalid_argument("RoutingCenterScheme: bad center id");
    }
    in_b_[b] = true;
  }
  function_bits_ = std::move(node_bits);
  decoded_.resize(n_);
  my_center_.assign(n_, static_cast<NodeId>(-1));
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  const CompactNodeOptions node_opt;
  for (NodeId v = 0; v < n_; ++v) {
    if (in_b_[v]) {
      const auto nbrs = g.neighbors(v);
      decoded_[v] = decode_compact_node(
          function_bits_[v], n_, v, node_opt,
          std::vector<NodeId>(nbrs.begin(), nbrs.end()));
    } else {
      bitio::BitReader r(function_bits_[v]);
      my_center_[v] = static_cast<NodeId>(r.read_bits(id_width));
      if (my_center_[v] >= n_ || !in_b_[my_center_[v]]) {
        throw std::invalid_argument("RoutingCenterScheme: bad stored center");
      }
    }
  }
}

NodeId RoutingCenterScheme::next_hop(NodeId u, NodeId dest_label,
                                     model::MessageHeader&) const {
  if (dest_label == u) {
    throw std::invalid_argument("RoutingCenterScheme: routing to self");
  }
  // Model II: direct neighbours are routed without any table.
  if (g_->has_edge(u, dest_label)) return dest_label;
  if (in_b_[u]) {
    return decoded_[u].next_of[dest_label];
  }
  return my_center_[u];
}

namespace {

class RoutingCenterFastPath final : public model::FastPath {
 public:
  RoutingCenterFastPath(std::size_t n, model::AdjacencyBits adjacency,
                        bitio::RankSelect in_b,
                        std::vector<model::PackedSparseArray> center_tables,
                        std::vector<NodeId> my_center)
      : n_(n),
        adjacency_(std::move(adjacency)),
        in_b_(std::move(in_b)),
        center_tables_(std::move(center_tables)),
        my_center_(std::move(my_center)) {}

  [[nodiscard]] std::string name() const override { return "routing-center"; }
  [[nodiscard]] std::size_t node_count() const override { return n_; }

  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label) const override {
    if (dest_label == u) {
      throw std::invalid_argument("RoutingCenterScheme: routing to self");
    }
    if (adjacency_.has_edge(u, dest_label)) return dest_label;
    if (in_b_.get(u)) {
      // Dense table slot of this center = its rank within B.
      const auto& table = center_tables_[in_b_.rank1(u)];
      if (table.contains(dest_label)) {
        return static_cast<NodeId>(table.value(dest_label));
      }
      return dest_label;
    }
    return my_center_[u];
  }

 private:
  std::size_t n_;
  model::AdjacencyBits adjacency_;
  bitio::RankSelect in_b_;
  std::vector<model::PackedSparseArray> center_tables_;
  std::vector<NodeId> my_center_;
};

}  // namespace

std::unique_ptr<model::FastPath> RoutingCenterScheme::compile_fast() const {
  bitio::BitVector in_b(n_);
  for (NodeId b : center_ids_) in_b.set(b, true);
  std::vector<model::PackedSparseArray> tables;
  tables.reserve(center_ids_.size());
  for (NodeId b : center_ids_) {
    tables.push_back(compile_node_table(b, decoded_[b].next_of));
  }
  model::note_fastpath_compiled("routing_center");
  return std::make_unique<RoutingCenterFastPath>(
      n_, model::AdjacencyBits(*g_), bitio::RankSelect(std::move(in_b)),
      std::move(tables), my_center_);
}

model::SpaceReport RoutingCenterScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : function_bits_) {
    report.function_bits.push_back(bits.size());
  }
  return report;
}

}  // namespace optrt::schemes
