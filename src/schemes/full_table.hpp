// The literal routing table: per node, one fixed-width port entry per
// destination — the trivial O(n² log n)-bit upper bound the paper measures
// everything against, and (by Theorem 8) asymptotically optimal in model
// IA∧α where the adversary fixes the port assignment.
//
// Works in every model, for every connected graph, always shortest path.
#pragma once

#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/algorithms.hpp"
#include "graph/labeling.hpp"
#include "graph/ports.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

using graph::NodeId;

class FullTableScheme final : public model::RoutingScheme {
 public:
  /// Builds tables routing via the least shortest-path successor, against
  /// the given (possibly adversarial) port assignment and labelling.
  FullTableScheme(const graph::Graph& g, graph::PortAssignment ports,
                  graph::Labeling labeling, model::Model declared_model);

  /// Convenience: identity labels, sorted ports, model IA∧α semantics.
  static FullTableScheme standard(const graph::Graph& g);

  /// Reconstructs a scheme from serialized tables (deserialization path;
  /// see schemes/serialization.hpp). Entry widths are recomputed from the
  /// degrees; table lengths must match n·⌈log₂ d(u)⌉.
  FullTableScheme(const graph::Graph& g, graph::PortAssignment ports,
                  graph::Labeling labeling, model::Model declared_model,
                  std::vector<bitio::BitVector> tables);

  [[nodiscard]] std::string name() const override { return "full-table"; }
  [[nodiscard]] model::Model routing_model() const override { return model_; }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId label_of(NodeId node) const override {
    return labeling_.label_of(node);
  }
  [[nodiscard]] NodeId node_of_label(NodeId label) const override {
    return labeling_.node_of(label);
  }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] model::SpaceReport space() const override;
  /// Compiled form: all tables concatenated into one word array read with
  /// word-aligned extraction, plus a port-order CSR for port → neighbour.
  [[nodiscard]] std::unique_ptr<model::FastPath> compile_fast() const override;

  /// The serialized table of node u (n fixed-width port entries).
  [[nodiscard]] const bitio::BitVector& function_bits(NodeId u) const {
    return table_bits_[u];
  }
  /// Entry width at node u: ⌈log₂ d(u)⌉ bits.
  [[nodiscard]] unsigned entry_width(NodeId u) const { return width_[u]; }
  /// The port assignment the tables were built against.
  [[nodiscard]] const graph::PortAssignment& ports() const { return ports_; }

 private:
  std::size_t n_;
  model::Model model_;
  graph::PortAssignment ports_;
  graph::Labeling labeling_;
  std::vector<unsigned> width_;
  std::vector<bitio::BitVector> table_bits_;
};

}  // namespace optrt::schemes
