#include "schemes/compact_diam2.hpp"

#include <stdexcept>
#include <utility>

#include "bitio/codes.hpp"
#include "model/fastpath.hpp"
#include "schemes/succinct_node_table.hpp"

namespace optrt::schemes {

CompactDiam2Scheme::Options CompactDiam2Scheme::Options::for_model(
    const model::Model& m) {
  Options opt;
  opt.neighbors_known = m.neighbors_known();
  opt.node.include_adjacency = !m.neighbors_known();
  return opt;
}

CompactDiam2Scheme::CompactDiam2Scheme(const graph::Graph& g, Options options)
    : n_(g.node_count()), options_(options) {
  options_.node.include_adjacency = !options_.neighbors_known;
  bits_.reserve(n_);
  decoded_.reserve(n_);
  for (NodeId u = 0; u < n_; ++u) {
    bits_.push_back(build_compact_node(g, u, options_.node));
    std::vector<NodeId> free_neighbors;
    if (options_.neighbors_known) {
      const auto nbrs = g.neighbors(u);
      free_neighbors.assign(nbrs.begin(), nbrs.end());
    }
    decoded_.push_back(decode_compact_node(bits_.back().bits, n_, u,
                                           options_.node,
                                           std::move(free_neighbors)));
  }
}

CompactDiam2Scheme::CompactDiam2Scheme(const graph::Graph& g, Options options,
                                       std::vector<bitio::BitVector> node_bits)
    : n_(g.node_count()), options_(options) {
  options_.node.include_adjacency = !options_.neighbors_known;
  if (node_bits.size() != n_) {
    throw std::invalid_argument("CompactDiam2Scheme: node count mismatch");
  }
  bits_.reserve(n_);
  decoded_.reserve(n_);
  for (NodeId u = 0; u < n_; ++u) {
    CompactNodeBits nb;
    nb.bits = std::move(node_bits[u]);
    bits_.push_back(std::move(nb));
    std::vector<NodeId> free_neighbors;
    if (options_.neighbors_known) {
      const auto nbrs = g.neighbors(u);
      free_neighbors.assign(nbrs.begin(), nbrs.end());
    }
    decoded_.push_back(decode_compact_node(bits_.back().bits, n_, u,
                                           options_.node,
                                           std::move(free_neighbors)));
  }
}

model::Model CompactDiam2Scheme::routing_model() const {
  return model::Model{options_.neighbors_known
                          ? model::Knowledge::kNeighborsKnown
                          : model::Knowledge::kFreePorts,
                      model::Relabeling::kNone};
}

NodeId CompactDiam2Scheme::next_hop(NodeId u, NodeId dest_label,
                                    model::MessageHeader&) const {
  const NodeId hop = decoded_[u].next_of[dest_label];
  if (hop == DecodedCompactNode::kInvalid) {
    throw std::invalid_argument("CompactDiam2Scheme: routing to self");
  }
  return hop;
}

namespace {

class CompactDiam2FastPath final : public model::FastPath {
 public:
  explicit CompactDiam2FastPath(std::vector<model::PackedSparseArray> tables)
      : tables_(std::move(tables)) {}

  [[nodiscard]] std::string name() const override { return "compact-diam2"; }
  [[nodiscard]] std::size_t node_count() const override {
    return tables_.size();
  }

  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label) const override {
    if (dest_label == u) {
      throw std::invalid_argument("CompactDiam2Scheme: routing to self");
    }
    const auto& table = tables_[u];
    if (table.contains(dest_label)) {
      return static_cast<NodeId>(table.value(dest_label));
    }
    return dest_label;  // direct destination (a neighbour of u)
  }

 private:
  std::vector<model::PackedSparseArray> tables_;
};

}  // namespace

std::unique_ptr<model::FastPath> CompactDiam2Scheme::compile_fast() const {
  std::vector<model::PackedSparseArray> tables;
  tables.reserve(n_);
  for (NodeId u = 0; u < n_; ++u) {
    tables.push_back(compile_node_table(u, decoded_[u].next_of));
  }
  model::note_fastpath_compiled("compact_diam2");
  return std::make_unique<CompactDiam2FastPath>(std::move(tables));
}

model::SpaceReport CompactDiam2Scheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& nb : bits_) report.function_bits.push_back(nb.bits.size());
  return report;
}

}  // namespace optrt::schemes
