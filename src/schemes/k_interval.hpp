// k-interval routing on arbitrary connected graphs — the object of study
// of the paper's reference [1] (Flammini, van Leeuwen, Marchetti-
// Spaccamela: "The complexity of interval routing on random graphs").
//
// Every port of a node is annotated with a set of cyclic label intervals;
// a destination is routed over the (unique) port whose intervals contain
// its label. Shortest-path assignment: each destination maps to the least
// shortest-path successor. The *compactness* (maximum number of intervals
// on any port) measures how well the labelling linearizes the routing
// regions: 1 on chains and rings, small on grids and hypercubes — and
// Θ(n) on random graphs, which is reference [1]'s point and dovetails with
// this paper's Θ(n²)-bits-for-random-graphs theme: interval compression
// buys nothing exactly where Theorem 6 says nothing can be compressed.
#pragma once

#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"
#include "graph/ports.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

using graph::NodeId;

class KIntervalScheme final : public model::RoutingScheme {
 public:
  /// Builds the shortest-path k-interval scheme under the identity
  /// labelling. Throws SchemeInapplicable on disconnected graphs.
  explicit KIntervalScheme(const graph::Graph& g);

  [[nodiscard]] std::string name() const override { return "k-interval"; }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIBalpha;
  }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] model::SpaceReport space() const override;

  /// Compactness: max number of cyclic intervals on any single port.
  [[nodiscard]] std::size_t compactness() const { return compactness_; }
  /// Total number of intervals across all nodes and ports.
  [[nodiscard]] std::size_t total_intervals() const { return total_intervals_; }
  [[nodiscard]] const bitio::BitVector& function_bits(NodeId u) const {
    return function_bits_[u];
  }

 private:
  struct Interval {
    NodeId lo;  // inclusive; cyclic when lo > hi
    NodeId hi;  // inclusive
  };
  struct DecodedNode {
    // Per port: the interval list.
    std::vector<std::vector<Interval>> port_intervals;
  };

  [[nodiscard]] static bool contains(const Interval& iv, NodeId label,
                                     std::size_t n) noexcept;

  std::size_t n_;
  graph::PortAssignment ports_;
  std::size_t compactness_ = 0;
  std::size_t total_intervals_ = 0;
  std::vector<bitio::BitVector> function_bits_;
  std::vector<DecodedNode> decoded_;
};

}  // namespace optrt::schemes
