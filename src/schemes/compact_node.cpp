#include "schemes/compact_node.hpp"

#include <algorithm>
#include <cmath>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "schemes/errors.hpp"

namespace optrt::schemes {

namespace {

using bitio::BitReader;
using bitio::BitWriter;
using bitio::ceil_log2;
using bitio::ceil_log2_plus1;

// The paper's cut point: remaining non-neighbours allowed in table 2.
std::size_t table2_threshold(std::size_t n, bool threshold_log) {
  const double dn = static_cast<double>(n);
  const double divisor =
      threshold_log ? std::max(1.0, std::log2(dn))
                    : std::max(1.0, std::log2(std::max(2.0, std::log2(dn))));
  return static_cast<std::size_t>(dn / divisor);
}

}  // namespace

CompactNodeBits build_compact_node(const graph::Graph& g, NodeId u,
                                   const CompactNodeOptions& opt) {
  const std::size_t n = g.node_count();
  const graph::NeighborCover cover = opt.greedy_cover
                                         ? graph::greedy_neighbor_cover(g, u)
                                         : graph::least_neighbor_cover(g, u);
  if (!cover.complete) {
    throw SchemeInapplicable(
        "compact node table: some node is farther than 2 hops from node " +
        std::to_string(u));
  }
  const std::size_t m = cover.centers.size();

  // Count per-center first-coverage to find the cut l.
  std::vector<std::size_t> covered_by(m, 0);
  std::size_t a0 = 0;
  for (NodeId w = 0; w < n; ++w) {
    if (cover.coverer[w] != graph::kNoCoverer) {
      ++covered_by[cover.coverer[w]];
      ++a0;
    }
  }
  const std::size_t threshold = table2_threshold(n, opt.threshold_log);
  std::size_t l = 0;
  std::size_t remaining = a0;
  while (l < m && remaining > threshold) {
    remaining -= covered_by[l];
    ++l;
  }

  BitWriter w;
  if (opt.include_adjacency) {
    // Interconnection vector: presence bit for every node != u in order.
    for (NodeId v = 0; v < n; ++v) {
      if (v != u) w.write_bit(g.has_edge(u, v));
    }
  }
  // Header: center count m.
  w.write_bits(m, ceil_log2_plus1(n));
  // Greedy covers must ship the center order (ranks in the sorted
  // neighbour list); least covers are the prefix of the list, free.
  if (opt.greedy_cover) {
    const auto nbrs = g.neighbors(u);
    const unsigned rank_width = ceil_log2(std::max<std::size_t>(nbrs.size(), 1));
    for (NodeId center : cover.centers) {
      const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), center);
      w.write_bits(static_cast<std::uint64_t>(it - nbrs.begin()), rank_width);
    }
  }

  CompactNodeBits out;
  const std::size_t before_t1 = w.bit_count();
  // Table 1: unary "first coverer + 1" for centers below the cut, else 0.
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t c = cover.coverer[v];
    if (c == graph::kNoCoverer) continue;  // u itself or a neighbour
    bitio::write_unary(w, c < l ? c + 1 : 0);
  }
  out.table1_bits = w.bit_count() - before_t1;

  // Table 2: fixed-width coverer indices for the deferred nodes.
  const std::size_t before_t2 = w.bit_count();
  const unsigned index_width = ceil_log2(std::max<std::size_t>(m, 1));
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t c = cover.coverer[v];
    if (c == graph::kNoCoverer || c < l) continue;
    w.write_bits(c, index_width);
  }
  out.table2_bits = w.bit_count() - before_t2;
  out.bits = w.take();
  return out;
}

DecodedCompactNode decode_compact_node(const bitio::BitVector& bits,
                                       std::size_t n, NodeId u,
                                       const CompactNodeOptions& opt,
                                       std::vector<NodeId> free_neighbors) {
  BitReader r(bits);
  DecodedCompactNode node;

  if (opt.include_adjacency) {
    node.neighbors.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (v == u) continue;
      if (r.read_bit()) node.neighbors.push_back(v);
    }
  } else {
    node.neighbors = std::move(free_neighbors);
  }

  const auto m = static_cast<std::size_t>(r.read_bits(ceil_log2_plus1(n)));
  if (m > node.neighbors.size()) {
    throw std::out_of_range("decode_compact_node: center count exceeds degree");
  }

  std::vector<NodeId> centers(m);
  if (opt.greedy_cover) {
    const unsigned rank_width =
        ceil_log2(std::max<std::size_t>(node.neighbors.size(), 1));
    for (std::size_t i = 0; i < m; ++i) {
      const auto rank = static_cast<std::size_t>(r.read_bits(rank_width));
      if (rank >= node.neighbors.size()) {
        throw std::out_of_range("decode_compact_node: bad center rank");
      }
      centers[i] = node.neighbors[rank];
    }
  } else {
    // Least-neighbour centers are the first m sorted neighbours.
    for (std::size_t i = 0; i < m; ++i) centers[i] = node.neighbors[i];
  }

  node.next_of.assign(n, DecodedCompactNode::kInvalid);
  for (NodeId v : node.neighbors) node.next_of[v] = v;

  // Table 1: non-neighbours in increasing order.
  std::vector<NodeId> deferred;
  for (NodeId v = 0; v < n; ++v) {
    if (v == u || node.next_of[v] == v) continue;
    const std::uint64_t t = bitio::read_unary(r);
    if (t > 0) {
      if (t > m) throw std::out_of_range("decode_compact_node: bad unary index");
      node.next_of[v] = centers[t - 1];
    } else {
      deferred.push_back(v);
    }
  }
  // Table 2.
  const unsigned index_width = ceil_log2(std::max<std::size_t>(m, 1));
  for (NodeId v : deferred) {
    const auto index = static_cast<std::size_t>(r.read_bits(index_width));
    if (index >= m) throw std::out_of_range("decode_compact_node: bad index");
    node.next_of[v] = centers[index];
  }
  return node;
}

}  // namespace optrt::schemes
