#include "schemes/serialization.hpp"

#include <fstream>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "obs/metrics.hpp"

namespace optrt::schemes {

namespace {

using bitio::BitReader;
using bitio::BitWriter;

/// Every serialize()/deserialize_*() entry point funnels through these two,
/// so `schemes.artifact.bits_out` / `bits_in` account for exactly the
/// artifact bits that crossed the codec boundary.
bitio::BitVector record_serialize(bitio::BitVector bits) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("schemes.artifact.serializes").inc();
  reg.counter("schemes.artifact.bits_out").inc(bits.size());
  return bits;
}

void record_deserialize(const bitio::BitVector& artifact) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("schemes.artifact.deserializes").inc();
  reg.counter("schemes.artifact.bits_in").inc(artifact.size());
}

void write_header(BitWriter& w, SchemeKind kind, std::size_t n) {
  w.write_bits(kArtifactMagic, 32);
  bitio::write_prime(w, static_cast<std::uint64_t>(kind));
  bitio::write_prime(w, n);
}

struct Header {
  SchemeKind kind;
  std::size_t n;
};

Header read_header(BitReader& r) {
  if (r.read_bits(32) != kArtifactMagic) {
    throw std::invalid_argument("scheme artifact: bad magic");
  }
  Header h{};
  h.kind = static_cast<SchemeKind>(bitio::read_prime(r));
  h.n = static_cast<std::size_t>(bitio::read_prime(r));
  return h;
}

void write_bit_vector(BitWriter& w, const bitio::BitVector& bits) {
  bitio::write_prime(w, bits.size());
  w.write_vector(bits);
}

bitio::BitVector read_bit_vector(BitReader& r) {
  const auto len = static_cast<std::size_t>(bitio::read_prime(r));
  bitio::BitVector bits;
  for (std::size_t i = 0; i < len; ++i) bits.push_back(r.read_bit());
  return bits;
}

}  // namespace

bitio::BitVector serialize(const CompactDiam2Scheme& scheme) {
  BitWriter w;
  write_header(w, SchemeKind::kCompactDiam2, scheme.node_count());
  w.write_bit(scheme.routing_model().neighbors_known());
  for (graph::NodeId u = 0; u < scheme.node_count(); ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(w.take());
}

CompactDiam2Scheme deserialize_compact_diam2(const bitio::BitVector& artifact,
                                             const graph::Graph& g) {
  record_deserialize(artifact);
  BitReader r(artifact);
  const Header h = read_header(r);
  if (h.kind != SchemeKind::kCompactDiam2) {
    throw std::invalid_argument("scheme artifact: not a compact-diam2 scheme");
  }
  if (h.n != g.node_count()) {
    throw std::invalid_argument("scheme artifact: node count mismatch");
  }
  CompactDiam2Scheme::Options opt;
  opt.neighbors_known = r.read_bit();
  std::vector<bitio::BitVector> node_bits;
  node_bits.reserve(h.n);
  for (std::size_t u = 0; u < h.n; ++u) {
    node_bits.push_back(read_bit_vector(r));
  }
  return CompactDiam2Scheme(g, opt, std::move(node_bits));
}

bitio::BitVector serialize(const FullTableScheme& scheme) {
  const std::size_t n = scheme.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  BitWriter w;
  write_header(w, SchemeKind::kFullTable, n);
  // Environment: labelling permutation, then port → neighbour maps.
  for (graph::NodeId u = 0; u < n; ++u) {
    w.write_bits(scheme.label_of(u), id_width);
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto ports = scheme.ports().ports(u);
    bitio::write_prime(w, ports.size());
    for (graph::NodeId v : ports) w.write_bits(v, id_width);
  }
  // Model declaration.
  bitio::write_prime(w, static_cast<std::uint64_t>(
                            scheme.routing_model().knowledge));
  bitio::write_prime(w, static_cast<std::uint64_t>(
                            scheme.routing_model().relabeling));
  // Function bits.
  for (graph::NodeId u = 0; u < n; ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(w.take());
}

FullTableScheme deserialize_full_table(const bitio::BitVector& artifact,
                                       const graph::Graph& g) {
  record_deserialize(artifact);
  BitReader r(artifact);
  const Header h = read_header(r);
  if (h.kind != SchemeKind::kFullTable) {
    throw std::invalid_argument("scheme artifact: not a full-table scheme");
  }
  const std::size_t n = g.node_count();
  if (h.n != n) {
    throw std::invalid_argument("scheme artifact: node count mismatch");
  }
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  std::vector<graph::NodeId> labels(n);
  for (auto& l : labels) l = static_cast<graph::NodeId>(r.read_bits(id_width));
  std::vector<std::vector<graph::NodeId>> port_maps(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto d = static_cast<std::size_t>(bitio::read_prime(r));
    port_maps[u].resize(d);
    for (auto& v : port_maps[u]) {
      v = static_cast<graph::NodeId>(r.read_bits(id_width));
    }
  }
  model::Model m;
  m.knowledge = static_cast<model::Knowledge>(bitio::read_prime(r));
  m.relabeling = static_cast<model::Relabeling>(bitio::read_prime(r));
  std::vector<bitio::BitVector> tables;
  tables.reserve(n);
  for (std::size_t u = 0; u < n; ++u) tables.push_back(read_bit_vector(r));
  return FullTableScheme(g, graph::PortAssignment::from_port_maps(
                                g, std::move(port_maps)),
                         graph::Labeling::permutation(std::move(labels)), m,
                         std::move(tables));
}

bitio::BitVector serialize(const HubScheme& scheme) {
  BitWriter w;
  write_header(w, SchemeKind::kHub, scheme.node_count());
  bitio::write_prime(w, scheme.hub());
  bitio::write_prime(w, scheme.rank_width());
  for (graph::NodeId u = 0; u < scheme.node_count(); ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(w.take());
}

HubScheme deserialize_hub(const bitio::BitVector& artifact,
                          const graph::Graph& g) {
  record_deserialize(artifact);
  BitReader r(artifact);
  const Header h = read_header(r);
  if (h.kind != SchemeKind::kHub) {
    throw std::invalid_argument("scheme artifact: not a hub scheme");
  }
  if (h.n != g.node_count()) {
    throw std::invalid_argument("scheme artifact: node count mismatch");
  }
  const auto hub = static_cast<graph::NodeId>(bitio::read_prime(r));
  const auto rank_width = static_cast<unsigned>(bitio::read_prime(r));
  std::vector<bitio::BitVector> node_bits;
  node_bits.reserve(h.n);
  for (std::size_t u = 0; u < h.n; ++u) node_bits.push_back(read_bit_vector(r));
  return HubScheme(g, hub, rank_width, std::move(node_bits));
}

bitio::BitVector serialize(const RoutingCenterScheme& scheme) {
  const std::size_t n = scheme.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  BitWriter w;
  write_header(w, SchemeKind::kRoutingCenter, n);
  bitio::write_prime(w, scheme.centers().size());
  for (graph::NodeId b : scheme.centers()) w.write_bits(b, id_width);
  for (graph::NodeId u = 0; u < n; ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(w.take());
}

RoutingCenterScheme deserialize_routing_center(const bitio::BitVector& artifact,
                                               const graph::Graph& g) {
  record_deserialize(artifact);
  BitReader r(artifact);
  const Header h = read_header(r);
  if (h.kind != SchemeKind::kRoutingCenter) {
    throw std::invalid_argument("scheme artifact: not a routing-center scheme");
  }
  if (h.n != g.node_count()) {
    throw std::invalid_argument("scheme artifact: node count mismatch");
  }
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(h.n, 2));
  const auto count = static_cast<std::size_t>(bitio::read_prime(r));
  std::vector<graph::NodeId> centers(count);
  for (auto& b : centers) b = static_cast<graph::NodeId>(r.read_bits(id_width));
  std::vector<bitio::BitVector> node_bits;
  node_bits.reserve(h.n);
  for (std::size_t u = 0; u < h.n; ++u) node_bits.push_back(read_bit_vector(r));
  return RoutingCenterScheme(g, std::move(centers), std::move(node_bits));
}

bitio::BitVector serialize(const LandmarkScheme& scheme) {
  const std::size_t n = scheme.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  BitWriter w;
  write_header(w, SchemeKind::kLandmark, n);
  bitio::write_prime(w, scheme.landmarks().size());
  for (graph::NodeId l : scheme.landmarks()) w.write_bits(l, id_width);
  for (graph::NodeId u = 0; u < n; ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(w.take());
}

LandmarkScheme deserialize_landmark(const bitio::BitVector& artifact,
                                    const graph::Graph& g) {
  record_deserialize(artifact);
  BitReader r(artifact);
  const Header h = read_header(r);
  if (h.kind != SchemeKind::kLandmark) {
    throw std::invalid_argument("scheme artifact: not a landmark scheme");
  }
  if (h.n != g.node_count()) {
    throw std::invalid_argument("scheme artifact: node count mismatch");
  }
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(h.n, 2));
  const auto count = static_cast<std::size_t>(bitio::read_prime(r));
  std::vector<graph::NodeId> landmarks(count);
  for (auto& l : landmarks) l = static_cast<graph::NodeId>(r.read_bits(id_width));
  std::vector<bitio::BitVector> node_bits;
  node_bits.reserve(h.n);
  for (std::size_t u = 0; u < h.n; ++u) node_bits.push_back(read_bit_vector(r));
  return LandmarkScheme(g, std::move(landmarks), std::move(node_bits));
}

bitio::BitVector serialize(const HierarchicalScheme& scheme) {
  const std::size_t n = scheme.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  BitWriter w;
  write_header(w, SchemeKind::kHierarchical, n);
  bitio::write_prime(w, scheme.levels());
  for (std::size_t i = 1; i < scheme.levels(); ++i) {
    bitio::write_prime(w, scheme.pivots(i).size());
    for (graph::NodeId t : scheme.pivots(i)) w.write_bits(t, id_width);
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(w.take());
}

HierarchicalScheme deserialize_hierarchical(const bitio::BitVector& artifact,
                                            const graph::Graph& g) {
  record_deserialize(artifact);
  BitReader r(artifact);
  const Header h = read_header(r);
  if (h.kind != SchemeKind::kHierarchical) {
    throw std::invalid_argument("scheme artifact: not a hierarchical scheme");
  }
  if (h.n != g.node_count()) {
    throw std::invalid_argument("scheme artifact: node count mismatch");
  }
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(h.n, 2));
  const auto levels = static_cast<std::size_t>(bitio::read_prime(r));
  std::vector<std::vector<graph::NodeId>> pivot_sets(levels);
  for (std::size_t i = 1; i < levels; ++i) {
    const auto count = static_cast<std::size_t>(bitio::read_prime(r));
    pivot_sets[i].resize(count);
    for (auto& t : pivot_sets[i]) {
      t = static_cast<graph::NodeId>(r.read_bits(id_width));
    }
  }
  std::vector<bitio::BitVector> node_bits;
  node_bits.reserve(h.n);
  for (std::size_t u = 0; u < h.n; ++u) node_bits.push_back(read_bit_vector(r));
  return HierarchicalScheme(g, std::move(pivot_sets), std::move(node_bits));
}

SchemeKind peek_kind(const bitio::BitVector& artifact) {
  BitReader r(artifact);
  return read_header(r).kind;
}

std::vector<std::uint8_t> to_bytes(const bitio::BitVector& bits) {
  std::vector<std::uint8_t> bytes;
  // 64-bit little-endian bit-count prefix.
  const std::uint64_t count = bits.size();
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(count >> (8 * i)));
  }
  std::uint8_t current = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i)) current |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      bytes.push_back(current);
      current = 0;
    }
  }
  if (bits.size() % 8 != 0) bytes.push_back(current);
  return bytes;
}

bitio::BitVector from_bytes(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 8) {
    throw std::invalid_argument("from_bytes: truncated header");
  }
  std::uint64_t count = 0;
  for (int i = 0; i < 8; ++i) {
    count |= static_cast<std::uint64_t>(bytes[static_cast<std::size_t>(i)])
             << (8 * i);
  }
  if (bytes.size() < 8 + (count + 7) / 8) {
    throw std::invalid_argument("from_bytes: truncated payload");
  }
  bitio::BitVector bits;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t byte = bytes[8 + i / 8];
    bits.push_back((byte >> (i % 8)) & 1u);
  }
  return bits;
}

void save_artifact(const std::string& path, const bitio::BitVector& bits) {
  obs::counter("schemes.artifact.saves").inc();
  const auto bytes = to_bytes(bits);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_artifact: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_artifact: write failed: " + path);
}

bitio::BitVector load_artifact(const std::string& path) {
  obs::counter("schemes.artifact.loads").inc();
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_artifact: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return from_bytes(bytes);
}

}  // namespace optrt::schemes
