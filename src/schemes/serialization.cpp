#include "schemes/serialization.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "bitio/crc32.hpp"
#include "obs/metrics.hpp"

namespace optrt::schemes {

namespace {

using bitio::BitReader;
using bitio::BitWriter;

/// Every serialize()/deserialize_*() entry point funnels through these two,
/// so `schemes.artifact.bits_out` / `bits_in` account for exactly the
/// artifact bits that crossed the codec boundary.
bitio::BitVector record_serialize(bitio::BitVector bits) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("schemes.artifact.serializes").inc();
  reg.counter("schemes.artifact.bits_out").inc(bits.size());
  return bits;
}

void record_deserialize(const bitio::BitVector& artifact) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("schemes.artifact.deserializes").inc();
  reg.counter("schemes.artifact.bits_in").inc(artifact.size());
}

[[noreturn]] void fail(DecodeErrorKind kind, const std::string& what) {
  throw DecodeError(kind, what);
}

void check(bool ok, DecodeErrorKind kind, const char* what) {
  if (!ok) fail(kind, what);
}

bool valid_kind(std::uint64_t raw) noexcept {
  return raw >= static_cast<std::uint64_t>(SchemeKind::kCompactDiam2) &&
         raw <= static_cast<std::uint64_t>(SchemeKind::kThorupZwick);
}

/// Frame header plus the extracted (checksum-verified, for v1) payload.
struct Frame {
  ArtifactInfo info;
  bitio::BitVector payload;
};

/// Parses and validates the container framing of either format version.
/// The returned payload is an owned copy: its extraction is bounded by the
/// artifact's actual size, never by a decoded length field alone.
Frame read_frame(const bitio::BitVector& artifact) {
  check(artifact.size() >= 32, DecodeErrorKind::kTruncated,
        "artifact shorter than its magic");
  BitReader r(artifact);
  const auto magic = static_cast<std::uint32_t>(r.read_bits(32));
  Frame f;
  if (magic == kLegacyMagic) {
    // v0 compatibility: [magic][kind]'[n]' then the payload, unframed.
    f.info.version = 0;
    std::uint64_t kind_raw = 0;
    try {
      kind_raw = bitio::read_prime(r);
      f.info.node_count = static_cast<std::size_t>(bitio::read_prime(r));
    } catch (const std::out_of_range&) {
      fail(DecodeErrorKind::kTruncated, "v0 artifact ends inside its header");
    } catch (const std::invalid_argument&) {
      // A corrupted prime-code length field (e.g. one wider than 64 bits).
      fail(DecodeErrorKind::kSemanticInvalid, "v0 artifact header is malformed");
    }
    check(valid_kind(kind_raw), DecodeErrorKind::kSemanticInvalid,
          "v0 artifact names an unknown scheme kind");
    f.info.kind = static_cast<SchemeKind>(kind_raw);
    f.info.payload_bits = r.remaining();
    f.payload = bitio::BitVector();
    while (!r.exhausted()) f.payload.push_back(r.read_bit());
    return f;
  }
  check(magic == kFrameMagic, DecodeErrorKind::kBadMagic,
        "artifact magic is neither ORT2 (framed) nor ORT1 (legacy)");
  check(artifact.size() >= kFrameHeaderBits, DecodeErrorKind::kTruncated,
        "artifact ends inside its frame header");
  f.info.version = static_cast<std::uint8_t>(r.read_bits(8));
  check(f.info.version == kFormatVersion, DecodeErrorKind::kVersionMismatch,
        "unsupported artifact format version");
  const std::uint64_t kind_raw = r.read_bits(8);
  check(valid_kind(kind_raw), DecodeErrorKind::kSemanticInvalid,
        "frame names an unknown scheme kind");
  f.info.kind = static_cast<SchemeKind>(kind_raw);
  f.info.node_count = static_cast<std::size_t>(r.read_bits(32));
  const std::uint64_t payload_bits = r.read_bits(64);
  f.info.crc_stored = static_cast<std::uint32_t>(r.read_bits(32));
  const std::uint64_t available = artifact.size() - kFrameHeaderBits;
  check(payload_bits <= available, DecodeErrorKind::kTruncated,
        "declared payload length exceeds the artifact");
  check(payload_bits == available, DecodeErrorKind::kSemanticInvalid,
        "trailing bits after the declared payload");
  f.info.payload_bits = static_cast<std::size_t>(payload_bits);
  f.payload = bitio::BitVector();
  while (!r.exhausted()) f.payload.push_back(r.read_bit());
  f.info.crc_computed = bitio::crc32(f.payload);
  if (f.info.crc_computed != f.info.crc_stored) {
    obs::counter("artifact.crc_mismatch").inc();
    fail(DecodeErrorKind::kChecksumMismatch,
         "payload CRC32 disagrees with the stored checksum");
  }
  return f;
}

/// Frames a payload into a v1 artifact.
bitio::BitVector frame(SchemeKind kind, std::size_t n,
                       const bitio::BitVector& payload) {
  BitWriter w;
  w.write_bits(kFrameMagic, 32);
  w.write_bits(kFormatVersion, 8);
  w.write_bits(static_cast<std::uint64_t>(kind), 8);
  w.write_bits(n, 32);
  w.write_bits(payload.size(), 64);
  w.write_bits(bitio::crc32(payload), 32);
  w.write_vector(payload);
  return w.take();
}

/// Shared decode prologue: frame validation, kind and node-count binding.
/// Returns the payload ready for the per-kind body reader.
bitio::BitVector open_payload(const bitio::BitVector& artifact,
                              SchemeKind expected, const graph::Graph& g) {
  Frame f = read_frame(artifact);
  if (f.info.kind != expected) {
    fail(DecodeErrorKind::kSemanticInvalid,
         std::string("artifact holds a ") + to_string(f.info.kind) +
             " scheme, expected " + to_string(expected));
  }
  check(f.info.node_count == g.node_count(),
        DecodeErrorKind::kSemanticInvalid,
        "artifact node count does not match the graph");
  return std::move(f.payload);
}

/// Runs a per-kind body decode under the taxonomy: every escape hatch of
/// the legacy decode paths (BitReader exhaustion, scheme-constructor
/// invariants, construction preconditions) maps to a typed DecodeError,
/// and the ok/rejected counters see exactly one increment per attempt.
template <typename F>
auto guarded_decode(F&& body) -> decltype(body()) {
  try {
    auto result = body();
    obs::counter("artifact.decode_ok").inc();
    return result;
  } catch (const DecodeError&) {
    obs::counter("artifact.decode_rejected").inc();
    throw;
  } catch (const SchemeInapplicable& e) {
    obs::counter("artifact.decode_rejected").inc();
    throw DecodeError(DecodeErrorKind::kSemanticInvalid, e.what());
  } catch (const std::out_of_range& e) {
    obs::counter("artifact.decode_rejected").inc();
    throw DecodeError(DecodeErrorKind::kTruncated, e.what());
  } catch (const std::invalid_argument& e) {
    obs::counter("artifact.decode_rejected").inc();
    throw DecodeError(DecodeErrorKind::kSemanticInvalid, e.what());
  } catch (const std::length_error& e) {
    obs::counter("artifact.decode_rejected").inc();
    throw DecodeError(DecodeErrorKind::kResourceLimit, e.what());
  }
}

void write_bit_vector(BitWriter& w, const bitio::BitVector& bits) {
  bitio::write_prime(w, bits.size());
  w.write_vector(bits);
}

/// Reads a length-prefixed bit vector. The length is checked against the
/// reader's remaining bits *before* any allocation: a hostile length field
/// can never drive a multi-GB resize.
bitio::BitVector read_bit_vector(BitReader& r) {
  const std::uint64_t len = bitio::read_prime(r);
  check(len <= r.remaining(), DecodeErrorKind::kResourceLimit,
        "bit-vector length exceeds the remaining payload");
  bitio::BitVector bits;
  for (std::uint64_t i = 0; i < len; ++i) bits.push_back(r.read_bit());
  return bits;
}

/// Reads a count of items occupying >= `min_bits_per_item` bits each,
/// checked against the remaining payload before any allocation.
std::size_t read_count(BitReader& r, std::size_t min_bits_per_item,
                       const char* what) {
  const std::uint64_t count = bitio::read_prime(r);
  const std::uint64_t per = min_bits_per_item == 0 ? 1 : min_bits_per_item;
  if (count > r.remaining() / per) {
    fail(DecodeErrorKind::kResourceLimit, what);
  }
  return static_cast<std::size_t>(count);
}

void require_exhausted(const BitReader& r) {
  check(r.exhausted(), DecodeErrorKind::kSemanticInvalid,
        "trailing bits after the scheme payload");
}

}  // namespace

const char* to_string(SchemeKind kind) noexcept {
  switch (kind) {
    case SchemeKind::kCompactDiam2: return "compact-diam2";
    case SchemeKind::kFullTable: return "full-table";
    case SchemeKind::kHub: return "hub";
    case SchemeKind::kRoutingCenter: return "routing-center";
    case SchemeKind::kLandmark: return "landmark";
    case SchemeKind::kHierarchical: return "hierarchical";
    case SchemeKind::kSequentialSearch: return "sequential-search";
    case SchemeKind::kThorupZwick: return "tz";
  }
  return "unknown";
}

ArtifactInfo inspect(const bitio::BitVector& artifact) {
  return read_frame(artifact).info;
}

SchemeKind peek_kind(const bitio::BitVector& artifact) {
  return read_frame(artifact).info.kind;
}

bitio::BitVector serialize(const CompactDiam2Scheme& scheme) {
  BitWriter w;
  w.write_bit(scheme.routing_model().neighbors_known());
  for (graph::NodeId u = 0; u < scheme.node_count(); ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(
      frame(SchemeKind::kCompactDiam2, scheme.node_count(), w.take()));
}

CompactDiam2Scheme deserialize_compact_diam2(const bitio::BitVector& artifact,
                                             const graph::Graph& g) {
  record_deserialize(artifact);
  return guarded_decode([&] {
    const bitio::BitVector payload =
        open_payload(artifact, SchemeKind::kCompactDiam2, g);
    BitReader r(payload);
    const std::size_t n = g.node_count();
    CompactDiam2Scheme::Options opt;
    opt.neighbors_known = r.read_bit();
    std::vector<bitio::BitVector> node_bits;
    node_bits.reserve(n);
    for (std::size_t u = 0; u < n; ++u) {
      node_bits.push_back(read_bit_vector(r));
    }
    require_exhausted(r);
    return CompactDiam2Scheme(g, opt, std::move(node_bits));
  });
}

bitio::BitVector serialize(const FullTableScheme& scheme) {
  const std::size_t n = scheme.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  BitWriter w;
  // Environment: labelling permutation, then port → neighbour maps.
  for (graph::NodeId u = 0; u < n; ++u) {
    w.write_bits(scheme.label_of(u), id_width);
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto ports = scheme.ports().ports(u);
    bitio::write_prime(w, ports.size());
    for (graph::NodeId v : ports) w.write_bits(v, id_width);
  }
  // Model declaration.
  bitio::write_prime(w, static_cast<std::uint64_t>(
                            scheme.routing_model().knowledge));
  bitio::write_prime(w, static_cast<std::uint64_t>(
                            scheme.routing_model().relabeling));
  // Function bits.
  for (graph::NodeId u = 0; u < n; ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(frame(SchemeKind::kFullTable, n, w.take()));
}

FullTableScheme deserialize_full_table(const bitio::BitVector& artifact,
                                       const graph::Graph& g) {
  record_deserialize(artifact);
  return guarded_decode([&] {
    const bitio::BitVector payload =
        open_payload(artifact, SchemeKind::kFullTable, g);
    BitReader r(payload);
    const std::size_t n = g.node_count();
    const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
    std::vector<graph::NodeId> labels(n);
    for (auto& l : labels) {
      l = static_cast<graph::NodeId>(r.read_bits(id_width));
      check(l < n, DecodeErrorKind::kSemanticInvalid,
            "full-table label out of range");
    }
    std::vector<std::vector<graph::NodeId>> port_maps(n);
    for (graph::NodeId u = 0; u < n; ++u) {
      const std::size_t d =
          read_count(r, id_width, "port map larger than the payload");
      check(d == g.degree(u), DecodeErrorKind::kSemanticInvalid,
            "port map size does not match the node degree");
      port_maps[u].resize(d);
      for (auto& v : port_maps[u]) {
        v = static_cast<graph::NodeId>(r.read_bits(id_width));
        check(v < n, DecodeErrorKind::kSemanticInvalid,
              "port map entry out of range");
      }
    }
    model::Model m;
    const std::uint64_t knowledge = bitio::read_prime(r);
    const std::uint64_t relabeling = bitio::read_prime(r);
    check(knowledge <= static_cast<std::uint64_t>(
                           model::Knowledge::kNeighborsKnown),
          DecodeErrorKind::kSemanticInvalid, "unknown knowledge model");
    check(relabeling <= static_cast<std::uint64_t>(
                            model::Relabeling::kArbitrary),
          DecodeErrorKind::kSemanticInvalid, "unknown relabeling model");
    m.knowledge = static_cast<model::Knowledge>(knowledge);
    m.relabeling = static_cast<model::Relabeling>(relabeling);
    std::vector<bitio::BitVector> tables;
    tables.reserve(n);
    for (std::size_t u = 0; u < n; ++u) tables.push_back(read_bit_vector(r));
    require_exhausted(r);
    // The table-validating constructor checks per-entry port bounds.
    return FullTableScheme(g, graph::PortAssignment::from_port_maps(
                                  g, std::move(port_maps)),
                           graph::Labeling::permutation(std::move(labels)), m,
                           std::move(tables));
  });
}

bitio::BitVector serialize(const HubScheme& scheme) {
  BitWriter w;
  bitio::write_prime(w, scheme.hub());
  bitio::write_prime(w, scheme.rank_width());
  for (graph::NodeId u = 0; u < scheme.node_count(); ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(
      frame(SchemeKind::kHub, scheme.node_count(), w.take()));
}

HubScheme deserialize_hub(const bitio::BitVector& artifact,
                          const graph::Graph& g) {
  record_deserialize(artifact);
  return guarded_decode([&] {
    const bitio::BitVector payload = open_payload(artifact, SchemeKind::kHub, g);
    BitReader r(payload);
    const std::size_t n = g.node_count();
    const std::uint64_t hub = bitio::read_prime(r);
    check(hub < n, DecodeErrorKind::kSemanticInvalid, "hub id out of range");
    const std::uint64_t rank_width = bitio::read_prime(r);
    check(rank_width <= 64, DecodeErrorKind::kSemanticInvalid,
          "hub rank width exceeds 64 bits");
    std::vector<bitio::BitVector> node_bits;
    node_bits.reserve(n);
    for (std::size_t u = 0; u < n; ++u) node_bits.push_back(read_bit_vector(r));
    require_exhausted(r);
    return HubScheme(g, static_cast<graph::NodeId>(hub),
                     static_cast<unsigned>(rank_width), std::move(node_bits));
  });
}

bitio::BitVector serialize(const RoutingCenterScheme& scheme) {
  const std::size_t n = scheme.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  BitWriter w;
  bitio::write_prime(w, scheme.centers().size());
  for (graph::NodeId b : scheme.centers()) w.write_bits(b, id_width);
  for (graph::NodeId u = 0; u < n; ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(frame(SchemeKind::kRoutingCenter, n, w.take()));
}

RoutingCenterScheme deserialize_routing_center(const bitio::BitVector& artifact,
                                               const graph::Graph& g) {
  record_deserialize(artifact);
  return guarded_decode([&] {
    const bitio::BitVector payload =
        open_payload(artifact, SchemeKind::kRoutingCenter, g);
    BitReader r(payload);
    const std::size_t n = g.node_count();
    const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
    const std::size_t count =
        read_count(r, id_width, "center set larger than the payload");
    check(count <= n, DecodeErrorKind::kSemanticInvalid,
          "more centers than nodes");
    std::vector<graph::NodeId> centers(count);
    for (auto& b : centers) {
      b = static_cast<graph::NodeId>(r.read_bits(id_width));
      check(b < n, DecodeErrorKind::kSemanticInvalid,
            "center id out of range");
    }
    std::vector<bitio::BitVector> node_bits;
    node_bits.reserve(n);
    for (std::size_t u = 0; u < n; ++u) node_bits.push_back(read_bit_vector(r));
    require_exhausted(r);
    return RoutingCenterScheme(g, std::move(centers), std::move(node_bits));
  });
}

bitio::BitVector serialize(const LandmarkScheme& scheme) {
  const std::size_t n = scheme.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  BitWriter w;
  bitio::write_prime(w, scheme.landmarks().size());
  for (graph::NodeId l : scheme.landmarks()) w.write_bits(l, id_width);
  for (graph::NodeId u = 0; u < n; ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(frame(SchemeKind::kLandmark, n, w.take()));
}

LandmarkScheme deserialize_landmark(const bitio::BitVector& artifact,
                                    const graph::Graph& g) {
  record_deserialize(artifact);
  return guarded_decode([&] {
    const bitio::BitVector payload =
        open_payload(artifact, SchemeKind::kLandmark, g);
    BitReader r(payload);
    const std::size_t n = g.node_count();
    const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
    const std::size_t count =
        read_count(r, id_width, "landmark set larger than the payload");
    check(count <= n, DecodeErrorKind::kSemanticInvalid,
          "more landmarks than nodes");
    std::vector<graph::NodeId> landmarks(count);
    for (auto& l : landmarks) {
      l = static_cast<graph::NodeId>(r.read_bits(id_width));
      check(l < n, DecodeErrorKind::kSemanticInvalid,
            "landmark id out of range");
    }
    std::vector<bitio::BitVector> node_bits;
    node_bits.reserve(n);
    for (std::size_t u = 0; u < n; ++u) node_bits.push_back(read_bit_vector(r));
    require_exhausted(r);
    return LandmarkScheme(g, std::move(landmarks), std::move(node_bits));
  });
}

bitio::BitVector serialize(const HierarchicalScheme& scheme) {
  const std::size_t n = scheme.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  BitWriter w;
  bitio::write_prime(w, scheme.levels());
  for (std::size_t i = 1; i < scheme.levels(); ++i) {
    bitio::write_prime(w, scheme.pivots(i).size());
    for (graph::NodeId t : scheme.pivots(i)) w.write_bits(t, id_width);
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(frame(SchemeKind::kHierarchical, n, w.take()));
}

HierarchicalScheme deserialize_hierarchical(const bitio::BitVector& artifact,
                                            const graph::Graph& g) {
  record_deserialize(artifact);
  return guarded_decode([&] {
    const bitio::BitVector payload =
        open_payload(artifact, SchemeKind::kHierarchical, g);
    BitReader r(payload);
    const std::size_t n = g.node_count();
    const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
    const std::uint64_t levels = bitio::read_prime(r);
    check(levels >= 2, DecodeErrorKind::kSemanticInvalid,
          "hierarchy needs at least 2 levels");
    check(levels <= n, DecodeErrorKind::kResourceLimit,
          "more hierarchy levels than nodes");
    std::vector<std::vector<graph::NodeId>> pivot_sets(
        static_cast<std::size_t>(levels));
    for (std::size_t i = 1; i < levels; ++i) {
      const std::size_t count =
          read_count(r, id_width, "pivot set larger than the payload");
      check(count <= n, DecodeErrorKind::kSemanticInvalid,
            "more pivots than nodes");
      pivot_sets[i].resize(count);
      for (auto& t : pivot_sets[i]) {
        t = static_cast<graph::NodeId>(r.read_bits(id_width));
        check(t < n, DecodeErrorKind::kSemanticInvalid,
              "pivot id out of range");
      }
    }
    std::vector<bitio::BitVector> node_bits;
    node_bits.reserve(n);
    for (std::size_t u = 0; u < n; ++u) node_bits.push_back(read_bit_vector(r));
    require_exhausted(r);
    return HierarchicalScheme(g, std::move(pivot_sets), std::move(node_bits));
  });
}

bitio::BitVector serialize(const SequentialSearchScheme& scheme) {
  return record_serialize(frame(SchemeKind::kSequentialSearch,
                                scheme.node_count(), bitio::BitVector()));
}

SequentialSearchScheme deserialize_sequential_search(
    const bitio::BitVector& artifact, const graph::Graph& g) {
  record_deserialize(artifact);
  return guarded_decode([&] {
    const bitio::BitVector payload =
        open_payload(artifact, SchemeKind::kSequentialSearch, g);
    check(payload.empty(), DecodeErrorKind::kSemanticInvalid,
          "sequential-search payload must be empty");
    return SequentialSearchScheme(g);
  });
}

bitio::BitVector serialize(const TzScheme& scheme) {
  const std::size_t n = scheme.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  BitWriter w;
  bitio::write_prime(w, scheme.landmarks().size());
  for (graph::NodeId l : scheme.landmarks()) w.write_bits(l, id_width);
  for (graph::NodeId u = 0; u < n; ++u) {
    write_bit_vector(w, scheme.function_bits(u));
  }
  return record_serialize(frame(SchemeKind::kThorupZwick, n, w.take()));
}

TzScheme deserialize_tz(const bitio::BitVector& artifact,
                        const graph::Graph& g) {
  record_deserialize(artifact);
  return guarded_decode([&] {
    const bitio::BitVector payload =
        open_payload(artifact, SchemeKind::kThorupZwick, g);
    BitReader r(payload);
    const std::size_t n = g.node_count();
    const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
    const std::size_t count =
        read_count(r, id_width, "landmark set larger than the payload");
    check(count <= n, DecodeErrorKind::kSemanticInvalid,
          "more landmarks than nodes");
    std::vector<graph::NodeId> landmarks(count);
    for (auto& l : landmarks) {
      l = static_cast<graph::NodeId>(r.read_bits(id_width));
      check(l < n, DecodeErrorKind::kSemanticInvalid,
            "landmark id out of range");
    }
    std::vector<bitio::BitVector> node_bits;
    node_bits.reserve(n);
    for (std::size_t u = 0; u < n; ++u) node_bits.push_back(read_bit_vector(r));
    require_exhausted(r);
    // The table-validating constructor checks ordering and port bounds.
    return TzScheme(g, std::move(landmarks), std::move(node_bits));
  });
}

std::unique_ptr<model::RoutingScheme> deserialize_any(
    const bitio::BitVector& artifact, const graph::Graph& g) {
  SchemeKind kind;
  try {
    kind = peek_kind(artifact);
  } catch (const DecodeError&) {
    // Frame-level rejections below never reach a per-kind decoder (whose
    // guard would count them), so count the attempt here.
    obs::counter("artifact.decode_rejected").inc();
    throw;
  }
  switch (kind) {
    case SchemeKind::kCompactDiam2:
      return std::make_unique<CompactDiam2Scheme>(
          deserialize_compact_diam2(artifact, g));
    case SchemeKind::kFullTable:
      return std::make_unique<FullTableScheme>(
          deserialize_full_table(artifact, g));
    case SchemeKind::kHub:
      return std::make_unique<HubScheme>(deserialize_hub(artifact, g));
    case SchemeKind::kRoutingCenter:
      return std::make_unique<RoutingCenterScheme>(
          deserialize_routing_center(artifact, g));
    case SchemeKind::kLandmark:
      return std::make_unique<LandmarkScheme>(
          deserialize_landmark(artifact, g));
    case SchemeKind::kHierarchical:
      return std::make_unique<HierarchicalScheme>(
          deserialize_hierarchical(artifact, g));
    case SchemeKind::kSequentialSearch:
      return std::make_unique<SequentialSearchScheme>(
          deserialize_sequential_search(artifact, g));
    case SchemeKind::kThorupZwick:
      return std::make_unique<TzScheme>(deserialize_tz(artifact, g));
  }
  fail(DecodeErrorKind::kSemanticInvalid, "unknown scheme kind");
}

FastScheme compile_fast_from_artifact(const bitio::BitVector& artifact,
                                      const graph::Graph& g) {
  FastScheme result;
  result.scheme = deserialize_any(artifact, g);
  result.fast = result.scheme->compile_fast();
  return result;
}

std::vector<std::uint8_t> to_bytes(const bitio::BitVector& bits) {
  std::vector<std::uint8_t> bytes;
  // 64-bit little-endian bit-count prefix.
  const std::uint64_t count = bits.size();
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(count >> (8 * i)));
  }
  std::uint8_t current = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i)) current |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      bytes.push_back(current);
      current = 0;
    }
  }
  if (bits.size() % 8 != 0) bytes.push_back(current);
  return bytes;
}

bitio::BitVector from_bytes(const std::vector<std::uint8_t>& bytes) {
  return from_bytes(std::span<const std::uint8_t>(bytes));
}

bitio::BitVector from_bytes(std::span<const std::uint8_t> bytes) {
  check(bytes.size() >= 8, DecodeErrorKind::kTruncated,
        "from_bytes: truncated bit-count header");
  std::uint64_t count = 0;
  for (int i = 0; i < 8; ++i) {
    count |= static_cast<std::uint64_t>(bytes[static_cast<std::size_t>(i)])
             << (8 * i);
  }
  // Bound the declared bit count by the actual payload *before* any
  // allocation (the naive (count+7)/8 also overflows near 2^64).
  const std::uint64_t payload_bytes = bytes.size() - 8;
  check(count <= payload_bytes * 8, DecodeErrorKind::kTruncated,
        "from_bytes: truncated payload");
  check(payload_bytes == (count + 7) / 8, DecodeErrorKind::kSemanticInvalid,
        "from_bytes: trailing bytes after the declared payload");
  // Zero padding bits in the final partial byte are part of the format;
  // a flipped padding bit is corruption, not slack.
  if (count % 8 != 0) {
    const std::uint8_t tail = bytes.back();
    check((tail >> (count % 8)) == 0, DecodeErrorKind::kSemanticInvalid,
          "from_bytes: nonzero padding bits");
  }
  bitio::BitVector bits;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t byte = bytes[static_cast<std::size_t>(8 + i / 8)];
    bits.push_back((byte >> (i % 8)) & 1u);
  }
  return bits;
}

void save_artifact(const std::string& path, const bitio::BitVector& bits) {
  obs::counter("schemes.artifact.saves").inc();
  const auto bytes = to_bytes(bits);
  // Atomic write: stage into <path>.tmp and rename over the target, so a
  // crash mid-write can never leave a torn artifact at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_artifact: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("save_artifact: write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_artifact: rename failed: " + path);
  }
}

bitio::BitVector load_artifact(const std::string& path) {
  obs::counter("schemes.artifact.loads").inc();
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_artifact: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return from_bytes(bytes);
}

}  // namespace optrt::schemes
