// Theorem 2: shortest-path routing in model II∧γ with O(1)-bit local
// routing functions, by moving the routing information into the labels.
//
// Node u's label is (u, f(u)) where f(u) are the least neighbours of u that
// dominate u's non-neighbours (≤ (c+3) log n of them by Lemma 3), encoded
// in (1 + (c+3)log n)·log n bits. To route u → v:
//   · v adjacent to u (free knowledge under II): one step;
//   · else some neighbour z of u appears in f(v) (Lemma 3 applied at v,
//     since u is not adjacent to v): route to the least such z, which is
//     adjacent to v.
// The local routing function is the constant algorithm above — 0 stored
// bits per node; the γ accounting charges the labels.
#pragma once

#include <vector>

#include "graph/labeling.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

using graph::NodeId;

class NeighborLabelScheme final : public model::RoutingScheme {
 public:
  /// Throws SchemeInapplicable if some node's least-neighbour cover is
  /// incomplete (a node farther than 2 away).
  explicit NeighborLabelScheme(const graph::Graph& g);

  [[nodiscard]] std::string name() const override { return "neighbor-label"; }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIIgamma;
  }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] model::SpaceReport space() const override;

  /// The charged bit-label of a node: [id | count | center ids] at fixed
  /// ⌈log₂ n⌉-bit fields.
  [[nodiscard]] const bitio::BitVector& bit_label(NodeId u) const {
    return labels_.label_of_node[u];
  }

 private:
  /// Parses a bit label into (id, cover list).
  struct ParsedLabel {
    NodeId id = 0;
    std::vector<NodeId> cover;
  };
  [[nodiscard]] ParsedLabel parse_label(NodeId node) const;

  std::size_t n_;
  unsigned id_width_;
  graph::ArbitraryLabels labels_;
  const graph::Graph* g_;  // free neighbour knowledge under model II
};

}  // namespace optrt::schemes
