// Landmark (pivot) compact routing with stretch ≤ 3 — the related-work
// baseline of §1.2 (Peleg–Upfal [9] trade-off schemes, in the Cowen-style
// formulation).
//
// Pick a landmark set L (default ⌈√n⌉ random nodes). Let l(v) be v's
// nearest landmark. Node w stores
//   (a) a next-hop port toward every landmark, and
//   (b) a next-hop port for every v in its *vicinity*
//       C(w) = { v : d(w, v) ≤ d(v, l(v)) }.
// Destinations are addressed by the charged label (v, l(v)) (model γ).
// Routing: deliver directly while the destination is in the current
// vicinity; otherwise head for its landmark. Once the handoff happens the
// walk is a shortest path, and the detour costs at most 2·d(v, l(v)) <
// 2·d(u, v) — stretch < 3 on every connected graph, no randomness
// assumptions.
//
// On the paper's dense diameter-2 graphs vicinities are huge and this
// scheme loses badly to Theorem 1 — exactly the §1.2 point that general
// trade-off schemes do not give optimal shortest-path tables on almost all
// graphs. On sparse graphs (where Theorem 1 does not even apply) it is the
// scheme of choice. bench_related_work measures both regimes.
#pragma once

#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ports.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

using graph::NodeId;

struct LandmarkOptions {
  /// Number of landmarks; 0 = ⌈√n⌉.
  std::size_t landmark_count = 0;
  /// Seed for the landmark sample.
  std::uint64_t seed = 1;
};

class LandmarkScheme final : public model::RoutingScheme {
 public:
  using Options = LandmarkOptions;

  /// Throws SchemeInapplicable on disconnected graphs.
  explicit LandmarkScheme(const graph::Graph& g, Options options = {});

  /// Reconstructs from serialized state (deserialization path; see
  /// schemes/serialization.hpp): the sorted landmark set plus per-node
  /// bits. Nearest landmarks are recomputed from the graph (deterministic:
  /// least id on ties).
  LandmarkScheme(const graph::Graph& g, std::vector<NodeId> landmarks,
                 std::vector<bitio::BitVector> node_bits);

  [[nodiscard]] std::string name() const override { return "landmark"; }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIIgamma;
  }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] model::SpaceReport space() const override;
  /// Compiled form: per node, a rank-indexed vicinity membership vector
  /// plus bit-packed landmark ports, resolved through a port-order CSR.
  [[nodiscard]] std::unique_ptr<model::FastPath> compile_fast() const override;

  [[nodiscard]] const std::vector<NodeId>& landmarks() const {
    return landmarks_;
  }
  [[nodiscard]] NodeId landmark_of(NodeId v) const { return landmark_of_[v]; }
  [[nodiscard]] std::size_t vicinity_size(NodeId w) const {
    return decoded_[w].vicinity_ids.size();
  }
  [[nodiscard]] const bitio::BitVector& function_bits(NodeId u) const {
    return function_bits_[u];
  }

 private:
  struct DecodedNode {
    std::vector<graph::PortId> landmark_port;  // per landmark index
    std::vector<NodeId> vicinity_ids;          // sorted
    std::vector<graph::PortId> vicinity_port;  // aligned
  };

  std::size_t n_;
  graph::PortAssignment ports_;
  std::vector<NodeId> landmarks_;       // sorted
  std::vector<NodeId> landmark_of_;     // v → nearest landmark (least id tie)
  std::vector<std::uint32_t> landmark_index_;  // landmark id → index in list
  std::vector<bitio::BitVector> function_bits_;
  std::vector<DecodedNode> decoded_;
};

}  // namespace optrt::schemes
