// Thorup-Zwick compact routing with stretch ≤ 3 (the k = 2 scheme of
// "Compact routing schemes", SPAA 2001, as evaluated on Internet-like
// topologies by Krioukov-Fall-Yang).
//
// Sample a landmark set A by including each node independently with
// probability √(ln n / n) (resampling, deterministically in the seed, while
// A is empty or some cluster exceeds the 4√(n ln n) cap). Let l(v) be v's
// nearest landmark and d(v, A) = d(v, l(v)). Node w stores
//   (a) a next-hop port toward every landmark, and
//   (b) a next-hop port for every v in its *cluster*
//       C(w) = { v : d(w, v) < d(v, A) }   (strict inequality).
// Destinations are addressed by the charged label (v, l(v), exit port at
// l(v) toward v) — model γ. Routing from u to v: deliver on a shortest
// path while v is in the current cluster; at l(v) itself take the label's
// exit port; otherwise head for l(v).
//
// The strict inequality is what separates this from LandmarkScheme's
// non-strict vicinities: clusters of landmarks are empty, membership is
// monotone along shortest paths (d(y, v) = d(x, v) − 1 < d(v, A)), and the
// handoff detour costs at most 2·d(v, l(v)) ≤ 2·d(u, v) when v ∉ C(u) —
// worst-case stretch exactly ≤ 3, with the sampled A keeping every cluster
// and bunch at O(√(n log n)) w.h.p. instead of the ⌈√n⌉-landmark heuristic.
#pragma once

#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ports.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

using graph::NodeId;

struct TzOptions {
  /// Seed for the landmark Bernoulli sample.
  std::uint64_t seed = 1;
  /// Resample attempts before accepting the best nonempty sample seen.
  std::size_t max_resamples = 32;
};

/// The landmark election, factored out of the constructor so incremental
/// repair (schemes/repair.hpp) can replay it against maintained distances:
/// a pure function of (degrees, dist, options) with a draw sequence pinned
/// by tz_test — identical inputs yield the identical sorted landmark set
/// the TzScheme constructor would sample.
[[nodiscard]] std::vector<NodeId> tz_sample_landmarks(
    const graph::Graph& g, const graph::DistanceMatrix& dist,
    const TzOptions& options);

/// Serializes one node's TZ table (landmark ports, then the strict-cluster
/// id/port list) from explicit inputs — the byte layout the constructor
/// writes and next_hop decodes. `dva[v]` must be d(v, A) for the given
/// landmark set. Shared by the constructor and the churn repair path, so a
/// patched table is byte-identical to a fresh build by construction.
[[nodiscard]] bitio::BitVector tz_build_node_bits(
    const graph::Graph& g, const graph::DistanceMatrix& dist,
    const graph::PortAssignment& ports, const std::vector<NodeId>& landmarks,
    const std::vector<std::uint32_t>& dva, NodeId w);

class TzScheme final : public model::RoutingScheme {
 public:
  using Options = TzOptions;

  /// Throws SchemeInapplicable on disconnected graphs.
  explicit TzScheme(const graph::Graph& g, Options options = {});

  /// Reconstructs from serialized state (deserialization path; see
  /// schemes/serialization.hpp): the sorted landmark set plus per-node
  /// bits. Nearest landmarks and the per-destination exit ports are
  /// recomputed from the graph (deterministic: least id on ties).
  TzScheme(const graph::Graph& g, std::vector<NodeId> landmarks,
           std::vector<bitio::BitVector> node_bits);

  /// Same reconstruction, but against caller-supplied distances instead of
  /// DistanceCache::global() — the churn repair path maintains its own
  /// incrementally patched matrix and must not pay a full BFS per event.
  TzScheme(const graph::Graph& g, std::vector<NodeId> landmarks,
           std::vector<bitio::BitVector> node_bits,
           const graph::DistanceMatrix& dist);

  [[nodiscard]] std::string name() const override { return "tz"; }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIIgamma;
  }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] model::SpaceReport space() const override;
  /// Compiled form: per node, a rank-indexed cluster membership vector plus
  /// bit-packed landmark ports and the label exit ports, resolved through a
  /// port-order CSR.
  [[nodiscard]] std::unique_ptr<model::FastPath> compile_fast() const override;
  [[nodiscard]] std::vector<NodeId> port_enumeration(NodeId u) const override;

  /// Cluster-size cap enforced by the resample loop: 4√(n ln n).
  [[nodiscard]] static std::size_t cluster_cap(std::size_t n);

  [[nodiscard]] const std::vector<NodeId>& landmarks() const {
    return landmarks_;
  }
  [[nodiscard]] NodeId landmark_of(NodeId v) const { return landmark_of_[v]; }
  [[nodiscard]] std::size_t cluster_size(NodeId w) const {
    return decoded_[w].cluster_ids.size();
  }
  /// |B(v)| = |{w : d(v, w) < d(v, A)}| + |A| (v's bunch: the nodes whose
  /// cluster contains v, plus every landmark).
  [[nodiscard]] std::size_t bunch_size(NodeId v) const {
    return bunch_size_[v];
  }
  [[nodiscard]] const bitio::BitVector& function_bits(NodeId u) const {
    return function_bits_[u];
  }

 private:
  struct DecodedNode {
    std::vector<graph::PortId> landmark_port;  // per landmark index
    std::vector<NodeId> cluster_ids;           // sorted, strict C(w)
    std::vector<graph::PortId> cluster_port;   // aligned
  };

  /// Shared body of the deserializing constructors.
  void init_from_bits(const graph::Graph& g,
                      std::vector<bitio::BitVector> node_bits,
                      const graph::DistanceMatrix& dist);

  /// Shared tail of all constructors: exit ports, bunch sizes, metrics.
  void finish_build(const graph::Graph& g, const graph::DistanceMatrix& dist);

  std::size_t n_;
  graph::PortAssignment ports_;
  std::vector<NodeId> landmarks_;       // sorted
  std::vector<NodeId> landmark_of_;     // v → nearest landmark (least id tie)
  std::vector<std::uint32_t> landmark_index_;  // landmark id → index in list
  std::vector<graph::PortId> exit_port_;  // at l(v), toward v (label part)
  std::vector<std::size_t> bunch_size_;
  std::vector<bitio::BitVector> function_bits_;
  std::vector<DecodedNode> decoded_;
};

}  // namespace optrt::schemes
