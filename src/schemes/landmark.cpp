#include "schemes/landmark.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "model/fastpath.hpp"
#include "schemes/errors.hpp"

namespace optrt::schemes {

LandmarkScheme::LandmarkScheme(const graph::Graph& g, Options options)
    : n_(g.node_count()), ports_(graph::PortAssignment::sorted(g)) {
  if (!graph::is_connected(g)) {
    throw SchemeInapplicable("landmark: graph disconnected");
  }
  std::size_t count = options.landmark_count;
  if (count == 0) {
    count = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n_))));
  }
  count = std::min(count, n_);

  // Sample landmarks without replacement.
  {
    std::vector<NodeId> all(n_);
    std::iota(all.begin(), all.end(), 0);
    graph::Rng rng(options.seed);
    std::shuffle(all.begin(), all.end(), rng);
    landmarks_.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count));
    std::sort(landmarks_.begin(), landmarks_.end());
  }
  landmark_index_.assign(n_, 0);
  for (std::uint32_t i = 0; i < landmarks_.size(); ++i) {
    landmark_index_[landmarks_[i]] = i;
  }

  const auto dist_cached = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_cached;

  // Nearest landmark per node (least id on ties).
  landmark_of_.assign(n_, landmarks_[0]);
  for (NodeId v = 0; v < n_; ++v) {
    std::uint32_t best = graph::kUnreachable;
    for (NodeId l : landmarks_) {
      if (dist.at(v, l) < best) {
        best = dist.at(v, l);
        landmark_of_[v] = l;
      }
    }
  }

  // Build and serialize per-node tables.
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  function_bits_.resize(n_);
  decoded_.resize(n_);
  for (NodeId w = 0; w < n_; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(g.degree(w), 1));
    bitio::BitWriter out;
    // (a) next hop toward every landmark (own landmark entry unused at a
    // landmark itself; store 0).
    for (NodeId l : landmarks_) {
      graph::PortId port = 0;
      if (l != w) {
        const auto succ = graph::shortest_path_successors(g, dist, w, l);
        port = ports_.port_of(w, succ.front());
      }
      out.write_bits(port, port_width);
    }
    // (b) vicinity table: v with d(w,v) ≤ d(v, l(v)).
    std::vector<NodeId> vicinity;
    for (NodeId v = 0; v < n_; ++v) {
      if (v != w && dist.at(w, v) <= dist.at(v, landmark_of_[v])) {
        vicinity.push_back(v);
      }
    }
    out.write_bits(vicinity.size(), bitio::ceil_log2_plus1(n_));
    for (NodeId v : vicinity) {
      const auto succ = graph::shortest_path_successors(g, dist, w, v);
      out.write_bits(v, id_width);
      out.write_bits(ports_.port_of(w, succ.front()), port_width);
    }
    function_bits_[w] = out.take();

    // Honest read-back.
    bitio::BitReader r(function_bits_[w]);
    DecodedNode& node = decoded_[w];
    node.landmark_port.resize(landmarks_.size());
    for (auto& p : node.landmark_port) {
      p = static_cast<graph::PortId>(r.read_bits(port_width));
    }
    const auto vic =
        static_cast<std::size_t>(r.read_bits(bitio::ceil_log2_plus1(n_)));
    node.vicinity_ids.resize(vic);
    node.vicinity_port.resize(vic);
    for (std::size_t i = 0; i < vic; ++i) {
      node.vicinity_ids[i] = static_cast<NodeId>(r.read_bits(id_width));
      node.vicinity_port[i] =
          static_cast<graph::PortId>(r.read_bits(port_width));
    }
  }
}

LandmarkScheme::LandmarkScheme(const graph::Graph& g,
                               std::vector<NodeId> landmarks,
                               std::vector<bitio::BitVector> node_bits)
    : n_(g.node_count()),
      ports_(graph::PortAssignment::sorted(g)),
      landmarks_(std::move(landmarks)) {
  if (node_bits.size() != n_ || landmarks_.empty()) {
    throw std::invalid_argument("LandmarkScheme: bad serialized state");
  }
  landmark_index_.assign(n_, 0);
  for (std::uint32_t i = 0; i < landmarks_.size(); ++i) {
    if (landmarks_[i] >= n_) {
      throw std::invalid_argument("LandmarkScheme: bad landmark id");
    }
    landmark_index_[landmarks_[i]] = i;
  }
  // Nearest landmarks are a deterministic function of the graph.
  landmark_of_.assign(n_, landmarks_[0]);
  for (NodeId v = 0; v < n_; ++v) {
    const auto dist = graph::bfs_distances(g, v);
    std::uint32_t best = graph::kUnreachable;
    for (NodeId l : landmarks_) {
      if (dist[l] < best) {
        best = dist[l];
        landmark_of_[v] = l;
      }
    }
  }
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  function_bits_ = std::move(node_bits);
  decoded_.resize(n_);
  for (NodeId w = 0; w < n_; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(g.degree(w), 1));
    const std::size_t degree = std::max<std::size_t>(g.degree(w), 1);
    bitio::BitReader r(function_bits_[w]);
    DecodedNode& node = decoded_[w];
    node.landmark_port.resize(landmarks_.size());
    for (auto& p : node.landmark_port) {
      p = static_cast<graph::PortId>(r.read_bits(port_width));
      if (p >= degree) {
        throw std::invalid_argument(
            "LandmarkScheme: stored port exceeds the node degree");
      }
    }
    const auto vic =
        static_cast<std::size_t>(r.read_bits(bitio::ceil_log2_plus1(n_)));
    if (vic > n_) {
      throw std::invalid_argument("LandmarkScheme: vicinity larger than n");
    }
    node.vicinity_ids.resize(vic);
    node.vicinity_port.resize(vic);
    for (std::size_t i = 0; i < vic; ++i) {
      node.vicinity_ids[i] = static_cast<NodeId>(r.read_bits(id_width));
      node.vicinity_port[i] =
          static_cast<graph::PortId>(r.read_bits(port_width));
      // next_hop binary-searches the vicinity and indexes ports unchecked;
      // both invariants must hold before the table is ever queried.
      if (node.vicinity_ids[i] >= n_ ||
          (i > 0 && node.vicinity_ids[i] <= node.vicinity_ids[i - 1])) {
        throw std::invalid_argument("LandmarkScheme: bad vicinity table");
      }
      if (node.vicinity_port[i] >= degree) {
        throw std::invalid_argument(
            "LandmarkScheme: stored port exceeds the node degree");
      }
    }
    if (!r.exhausted()) {
      throw std::invalid_argument(
          "LandmarkScheme: trailing bits in a node table");
    }
  }
}

NodeId LandmarkScheme::next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader&) const {
  // The charged label is (v, l(v)); numerically we receive v and look up
  // l(v) from the label table the scheme itself published.
  const NodeId v = dest_label;
  if (v == u) throw std::invalid_argument("LandmarkScheme: routing to self");
  const DecodedNode& node = decoded_[u];
  const auto it = std::lower_bound(node.vicinity_ids.begin(),
                                   node.vicinity_ids.end(), v);
  if (it != node.vicinity_ids.end() && *it == v) {
    const auto i = static_cast<std::size_t>(it - node.vicinity_ids.begin());
    return ports_.neighbor_at(u, node.vicinity_port[i]);
  }
  const NodeId l = landmark_of_[v];  // from the destination's label
  return ports_.neighbor_at(u, node.landmark_port[landmark_index_[l]]);
}

namespace {

class LandmarkFastPath final : public model::FastPath {
 public:
  LandmarkFastPath(std::size_t n,
                   std::vector<model::PackedSparseArray> vicinity,
                   std::vector<model::PackedValueArray> landmark_ports,
                   std::vector<NodeId> landmark_of,
                   std::vector<std::uint32_t> landmark_index,
                   graph::CsrGraph csr)
      : n_(n),
        vicinity_(std::move(vicinity)),
        landmark_ports_(std::move(landmark_ports)),
        landmark_of_(std::move(landmark_of)),
        landmark_index_(std::move(landmark_index)),
        csr_(std::move(csr)) {}

  [[nodiscard]] std::string name() const override { return "landmark"; }
  [[nodiscard]] std::size_t node_count() const override { return n_; }

  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label) const override {
    const NodeId v = dest_label;
    if (v == u) throw std::invalid_argument("LandmarkScheme: routing to self");
    const auto& vic = vicinity_[u];
    if (vic.contains(v)) {
      return csr_.neighbor_at(u, static_cast<graph::PortId>(vic.value(v)));
    }
    const NodeId l = landmark_of_[v];
    const auto port = static_cast<graph::PortId>(
        landmark_ports_[u].at(landmark_index_[l]));
    return csr_.neighbor_at(u, port);
  }

 private:
  std::size_t n_;
  std::vector<model::PackedSparseArray> vicinity_;
  std::vector<model::PackedValueArray> landmark_ports_;
  std::vector<NodeId> landmark_of_;
  std::vector<std::uint32_t> landmark_index_;
  graph::CsrGraph csr_;  // sorted = port order for this scheme
};

}  // namespace

std::unique_ptr<model::FastPath> LandmarkScheme::compile_fast() const {
  std::vector<model::PackedSparseArray> vicinity;
  std::vector<model::PackedValueArray> landmark_ports;
  vicinity.reserve(n_);
  landmark_ports.reserve(n_);
  for (NodeId w = 0; w < n_; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(ports_.degree(w), 1));
    const DecodedNode& node = decoded_[w];
    bitio::BitVector mask(n_);
    for (NodeId v : node.vicinity_ids) mask.set(v, true);
    vicinity.emplace_back(std::move(mask), node.vicinity_port, port_width);
    landmark_ports.emplace_back(node.landmark_port, port_width);
  }
  model::note_fastpath_compiled("landmark");
  return std::make_unique<LandmarkFastPath>(
      n_, std::move(vicinity), std::move(landmark_ports), landmark_of_,
      landmark_index_, graph::CsrGraph::from_ports(ports_));
}

model::SpaceReport LandmarkScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : function_bits_) {
    report.function_bits.push_back(bits.size());
  }
  // Model γ: the (v, l(v)) labels are charged — 2·⌈log n⌉ bits per node.
  report.label_bits =
      n_ * 2 * bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  return report;
}

}  // namespace optrt::schemes
