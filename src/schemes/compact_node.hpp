// The per-node compact shortest-path table of Theorem 1, shared by the
// CompactDiam2 scheme (every node), the RoutingCenter scheme (center nodes)
// and the Hub scheme (the hub).
//
// For a node u of a diameter-2 graph whose non-neighbours A₀ are dominated
// by an ordered list of centers v₁, …, v_m (neighbours of u):
//
//   table 1 — for each w ∈ A₀ in increasing order, the unary code of the
//             index of w's first coverer v_t if t ≤ l, else a bare 0 bit
//             (meaning "look in table 2");
//   table 2 — for each deferred w in order, the coverer index at fixed
//             width ⌈log₂ m⌉.
//
// l is the paper's cut: the least prefix of centers after which at most
// n/loglog n (option: n/log n, the refinement yielding ≤ 3n bits)
// non-neighbours remain. Claim 1's geometric decay keeps table 1 ≤ 4n bits.
//
// Under model IB the node does not know its neighbours; the encoding is
// prefixed by u's interconnection vector (n−1 bits) and ports are the
// canonical sorted assignment, exactly as in the proof of Theorem 1.
#pragma once

#include <cstdint>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace optrt::schemes {

using graph::NodeId;

struct CompactNodeOptions {
  /// Use the greedy max-coverage center order instead of the paper's
  /// least-neighbour order (ablation; requires storing center ranks).
  bool greedy_cover = false;
  /// Cut the unary table at n/log n remaining instead of n/loglog n
  /// (the paper's refinement that brings 6n down to ≈ 3n).
  bool threshold_log = false;
  /// Prepend the interconnection vector (model IB; model II reads
  /// neighbours for free).
  bool include_adjacency = false;
};

/// Serialized compact table for one node.
struct CompactNodeBits {
  bitio::BitVector bits;
  std::size_t table1_bits = 0;  ///< size of the unary table (reporting)
  std::size_t table2_bits = 0;  ///< size of the fixed-width table
};

/// Builds the Theorem 1 table for node `u`. Throws SchemeInapplicable if
/// u's neighbours do not dominate all its non-neighbours (i.e. some node is
/// farther than 2 from u).
[[nodiscard]] CompactNodeBits build_compact_node(const graph::Graph& g,
                                                 NodeId u,
                                                 const CompactNodeOptions& opt);

/// Decoded routing view of a compact node table.
struct DecodedCompactNode {
  /// Sorted neighbour list used for decoding (from the graph under II,
  /// from the stored interconnection vector under IB).
  std::vector<NodeId> neighbors;
  /// next_of[w] = next hop toward w (w itself if a neighbour, a center
  /// otherwise), or graph::kNoCoverer-like sentinel kInvalid for w == u.
  std::vector<NodeId> next_of;

  static constexpr NodeId kInvalid = static_cast<NodeId>(-1);
};

/// Decodes a compact node table. `free_neighbors` must be the sorted
/// neighbour list when the table was built without the adjacency prefix
/// (model II); it is ignored (and may be empty) when the table embeds its
/// interconnection vector (model IB).
[[nodiscard]] DecodedCompactNode decode_compact_node(
    const bitio::BitVector& bits, std::size_t n, NodeId u,
    const CompactNodeOptions& opt, std::vector<NodeId> free_neighbors);

}  // namespace optrt::schemes
