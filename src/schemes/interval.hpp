// Interval routing on a BFS spanning tree — the classic compact-routing
// baseline the paper's related work discusses (Flammini–van Leeuwen–
// Marchetti-Spaccamela [1], Kranakis et al. [6]).
//
// Model IB∧β: nodes are relabelled by DFS preorder of a spanning tree so
// that every subtree is a contiguous interval; each node stores, per tree
// port, the interval of labels routed over it (2⌈log n⌉ bits per tree
// edge, O(n log n) total). Routes follow tree paths: always correct on
// connected graphs, with stretch equal to the tree stretch — the cheap,
// high-stretch end of the trade-off spectrum.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

using graph::NodeId;

class IntervalRoutingScheme final : public model::RoutingScheme {
 public:
  /// Builds a BFS spanning tree rooted at `root` and DFS-relabels it.
  /// Throws SchemeInapplicable on disconnected graphs.
  explicit IntervalRoutingScheme(const graph::Graph& g, NodeId root = 0);

  [[nodiscard]] std::string name() const override { return "interval-tree"; }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIBbeta;
  }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId label_of(NodeId node) const override {
    return labeling_.label_of(node);
  }
  [[nodiscard]] NodeId node_of_label(NodeId label) const override {
    return labeling_.node_of(label);
  }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] model::SpaceReport space() const override;

 private:
  std::size_t n_;
  graph::Labeling labeling_;
  std::vector<bitio::BitVector> function_bits_;
  // Decoded from function_bits_: per node, child intervals and their
  // subtree roots, plus the parent (internal id; self at the root).
  struct DecodedNode {
    std::vector<NodeId> child;          // internal id of child k
    std::vector<NodeId> lo, hi;         // child k's subtree label interval
    NodeId parent = 0;
  };
  std::vector<DecodedNode> decoded_;
};

}  // namespace optrt::schemes
