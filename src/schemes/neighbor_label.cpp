#include "schemes/neighbor_label.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/cover.hpp"
#include "schemes/errors.hpp"

namespace optrt::schemes {

NeighborLabelScheme::NeighborLabelScheme(const graph::Graph& g)
    : n_(g.node_count()),
      id_width_(bitio::ceil_log2(std::max<std::size_t>(n_, 2))),
      g_(&g) {
  labels_.label_of_node.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    const graph::NeighborCover cover = graph::least_neighbor_cover(g, u);
    if (!cover.complete) {
      throw SchemeInapplicable(
          "neighbor-label: node " + std::to_string(u) +
          " has a non-neighbour at distance > 2");
    }
    bitio::BitWriter w;
    w.write_bits(u, id_width_);
    w.write_bits(cover.centers.size(), id_width_);
    for (NodeId c : cover.centers) w.write_bits(c, id_width_);
    labels_.label_of_node[u] = w.take();
  }
}

NeighborLabelScheme::ParsedLabel NeighborLabelScheme::parse_label(
    NodeId node) const {
  bitio::BitReader r(labels_.label_of_node[node]);
  ParsedLabel parsed;
  parsed.id = static_cast<NodeId>(r.read_bits(id_width_));
  const auto count = static_cast<std::size_t>(r.read_bits(id_width_));
  parsed.cover.resize(count);
  for (auto& c : parsed.cover) c = static_cast<NodeId>(r.read_bits(id_width_));
  return parsed;
}

NodeId NeighborLabelScheme::next_hop(NodeId u, NodeId dest_label,
                                     model::MessageHeader&) const {
  // The destination is handed to us as its complex label; parse it.
  const ParsedLabel dest = parse_label(dest_label);
  if (dest.id == u) {
    throw std::invalid_argument("NeighborLabelScheme: routing to self");
  }
  // Free under II: u knows its neighbours (and their labels).
  if (g_->has_edge(u, dest.id)) return dest.id;
  // Lemma 3 at the destination: some neighbour of u is in f(dest).
  NodeId best = static_cast<NodeId>(-1);
  for (NodeId z : g_->neighbors(u)) {
    if (std::find(dest.cover.begin(), dest.cover.end(), z) !=
        dest.cover.end()) {
      best = z;
      break;  // neighbours are sorted: first hit is the least
    }
  }
  if (best == static_cast<NodeId>(-1)) {
    throw std::invalid_argument(
        "NeighborLabelScheme: destination cover misses all neighbours");
  }
  return best;
}

model::SpaceReport NeighborLabelScheme::space() const {
  model::SpaceReport report;
  // The local routing function is constant: zero stored bits per node.
  report.function_bits.assign(n_, 0);
  report.label_bits = labels_.total_bits();
  return report;
}

}  // namespace optrt::schemes
