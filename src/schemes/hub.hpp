// Theorem 4: routing with stretch ≤ 2 in model II using n·loglog n + 6n
// bits total.
//
// One hub stores a full Theorem-1 compact table (≤ 6n bits). Its neighbours
// route unknown destinations straight to the hub (O(1) bits — the hub's
// label is recognisable among their neighbours under II). Every node at
// distance 2 stores, in ⌈log₂((c+3)log n)⌉ = loglog n + O(1) bits, the rank
// (within its sorted neighbour list) of a neighbour adjacent to the hub —
// such a rank below (c+3) log n exists by Lemma 3. A route v → w is direct,
// or v → … → hub in ≤ 2 steps followed by a shortest hub → … → w in ≤ 2:
// at most 4 edges against a shortest path of 2.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "model/scheme.hpp"
#include "schemes/compact_node.hpp"

namespace optrt::schemes {

class HubScheme final : public model::RoutingScheme {
 public:
  /// `rank_width_override`: width in bits of the stored neighbour rank at
  /// distance-2 nodes; 0 derives ⌈log₂⌈6·log₂ n⌉⌉ from n alone (part of the
  /// strategy, not charged per graph). Throws SchemeInapplicable when some
  /// node's connecting rank does not fit.
  explicit HubScheme(const graph::Graph& g, NodeId hub = 0,
                     unsigned rank_width_override = 0);

  /// Reconstructs from serialized per-node function bits (the
  /// deserialization path; see schemes/serialization.hpp).
  HubScheme(const graph::Graph& g, NodeId hub, unsigned rank_width,
            std::vector<bitio::BitVector> node_bits);

  [[nodiscard]] std::string name() const override { return "hub"; }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIIalpha;
  }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] model::SpaceReport space() const override;
  /// Compiled form: adjacency bit-matrix + the hub's rank-indexed sparse
  /// table + flat toward-hub hops.
  [[nodiscard]] std::unique_ptr<model::FastPath> compile_fast() const override;

  [[nodiscard]] NodeId hub() const { return hub_; }
  [[nodiscard]] unsigned rank_width() const { return rank_width_; }
  [[nodiscard]] const bitio::BitVector& function_bits(NodeId u) const {
    return function_bits_[u];
  }

 private:
  std::size_t n_;
  NodeId hub_;
  unsigned rank_width_;
  std::vector<bitio::BitVector> function_bits_;
  DecodedCompactNode hub_table_;
  // Decoded next hop toward the hub for distance-2 nodes (kInvalid
  // elsewhere).
  std::vector<NodeId> toward_hub_;
  std::vector<bool> hub_neighbor_;
  const graph::Graph* g_;  // free neighbour knowledge under model II
};

}  // namespace optrt::schemes
