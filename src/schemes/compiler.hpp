// The universal routing strategy (§1) as a library entry point: given a
// network and a model, generate a routing scheme for that particular
// network.
//
// Selection follows Table 1's upper-bound rows:
//   shortest path, II∧γ            → neighbor-label   (Theorem 2)
//   shortest path, IB ∨ II         → compact-diam2    (Theorem 1)
//   shortest path, IA              → full-table       (the Theorem 8-tight
//                                                      literal table)
//   stretch < 2, II                → routing-center   (Theorem 3)
//   stretch 2, II                  → hub              (Theorem 4)
//   stretch O(log n), II           → sequential-search(Theorem 5)
//   full information               → full-information (Theorem 10-tight)
//
// Constructions that require the Lemma 1–3 structure fall back to the
// always-correct full table when the graph lacks it (or throw, when
// `allow_fallback` is false).
#pragma once

#include <memory>

#include "graph/generators.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

/// What the caller wants from the scheme, mirroring the paper's result
/// classes.
enum class Objective {
  kShortestPath,      ///< stretch 1
  kStretchBelow2,     ///< Theorem 3 (≤ 1.5 on diameter-2 graphs)
  kStretch2,          ///< Theorem 4
  kStretchLog,        ///< Theorem 5 (≤ 2(c+3) log n)
  kFullInformation,   ///< all shortest-path edges per destination
};

struct CompileOptions {
  Objective objective = Objective::kShortestPath;
  /// Fall back to the full table when a compact construction's
  /// preconditions fail (diameter > 2 etc.); otherwise SchemeInapplicable
  /// propagates.
  bool allow_fallback = true;
  /// Seed for model IA's fixed ("adversarial") port assignment.
  std::uint64_t port_seed = 1;
};

/// Compiles a routing scheme for `g` under `m`.
[[nodiscard]] std::unique_ptr<model::RoutingScheme> compile(
    const graph::Graph& g, const model::Model& m, const CompileOptions& opt = {});

/// The stretch/space trade-off as an API: compiles the *lowest-stretch*
/// scheme (under model II) whose total space fits `bit_budget`, walking the
/// Theorem 1 → 3 → 4 → 5 ladder. Always succeeds on graphs with the
/// Lemma 1–3 structure (Theorem 5 needs 0 bits); throws SchemeInapplicable
/// on graphs where none of the ladder applies.
struct BudgetedScheme {
  std::unique_ptr<model::RoutingScheme> scheme;
  double stretch_bound = 0.0;  ///< the theorem's guarantee for this rung
};
[[nodiscard]] BudgetedScheme compile_within_budget(const graph::Graph& g,
                                                   std::size_t bit_budget);

}  // namespace optrt::schemes
