#include "schemes/hub.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "model/fastpath.hpp"
#include "schemes/errors.hpp"
#include "schemes/succinct_node_table.hpp"

namespace optrt::schemes {

HubScheme::HubScheme(const graph::Graph& g, NodeId hub,
                     unsigned rank_width_override)
    : n_(g.node_count()), hub_(hub), g_(&g) {
  if (rank_width_override != 0) {
    rank_width_ = rank_width_override;
  } else {
    // Lemma 3 bound with c = 3: ranks below (c+3) log₂ n = 6 log₂ n.
    const auto bound = static_cast<std::uint64_t>(
        std::ceil(6.0 * std::log2(std::max<double>(static_cast<double>(n_), 2.0))));
    rank_width_ = bitio::ceil_log2(std::max<std::uint64_t>(bound, 2));
  }

  // Hub: full compact table.
  const CompactNodeOptions node_opt;  // model II defaults
  CompactNodeBits hub_bits = build_compact_node(g, hub_, node_opt);
  const auto hub_nbrs = g.neighbors(hub_);
  hub_table_ =
      decode_compact_node(hub_bits.bits, n_, hub_, node_opt,
                          std::vector<NodeId>(hub_nbrs.begin(), hub_nbrs.end()));

  function_bits_.resize(n_);
  function_bits_[hub_] = std::move(hub_bits.bits);

  hub_neighbor_.assign(n_, false);
  for (NodeId z : hub_nbrs) hub_neighbor_[z] = true;

  toward_hub_.assign(n_, static_cast<NodeId>(-1));
  for (NodeId v = 0; v < n_; ++v) {
    if (v == hub_ || hub_neighbor_[v]) continue;  // O(1)-bit functions
    // Find the least-rank neighbour of v adjacent to the hub.
    const auto nbrs = g.neighbors(v);
    std::size_t rank = nbrs.size();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (g.has_edge(nbrs[i], hub_)) {
        rank = i;
        break;
      }
    }
    if (rank == nbrs.size()) {
      throw SchemeInapplicable("hub: node " + std::to_string(v) +
                               " farther than 2 from the hub");
    }
    if (rank >= (std::size_t{1} << rank_width_)) {
      throw SchemeInapplicable(
          "hub: connecting rank exceeds the loglog-width field (graph not "
          "(c+3)log n-covered)");
    }
    bitio::BitWriter w;
    w.write_bits(rank, rank_width_);
    function_bits_[v] = w.take();
    // Honest read-back of the stored rank.
    bitio::BitReader r(function_bits_[v]);
    toward_hub_[v] = nbrs[r.read_bits(rank_width_)];
  }
}

HubScheme::HubScheme(const graph::Graph& g, NodeId hub, unsigned rank_width,
                     std::vector<bitio::BitVector> node_bits)
    : n_(g.node_count()),
      hub_(hub),
      rank_width_(rank_width),
      function_bits_(std::move(node_bits)),
      g_(&g) {
  if (function_bits_.size() != n_) {
    throw std::invalid_argument("HubScheme: node count mismatch");
  }
  if (hub_ >= n_) {
    throw std::invalid_argument("HubScheme: hub id out of range");
  }
  if (rank_width_ > 64) {
    throw std::invalid_argument("HubScheme: rank width exceeds 64 bits");
  }
  const CompactNodeOptions node_opt;
  const auto hub_nbrs = g.neighbors(hub_);
  hub_table_ =
      decode_compact_node(function_bits_[hub_], n_, hub_, node_opt,
                          std::vector<NodeId>(hub_nbrs.begin(), hub_nbrs.end()));
  hub_neighbor_.assign(n_, false);
  for (NodeId z : hub_nbrs) hub_neighbor_[z] = true;
  toward_hub_.assign(n_, static_cast<NodeId>(-1));
  for (NodeId v = 0; v < n_; ++v) {
    if (v == hub_ || hub_neighbor_[v]) continue;
    bitio::BitReader r(function_bits_[v]);
    const auto rank = static_cast<std::size_t>(r.read_bits(rank_width_));
    const auto nbrs = g.neighbors(v);
    if (rank >= nbrs.size()) {
      throw std::invalid_argument("HubScheme: bad stored rank");
    }
    toward_hub_[v] = nbrs[rank];
  }
}

NodeId HubScheme::next_hop(NodeId u, NodeId dest_label,
                           model::MessageHeader&) const {
  if (dest_label == u) {
    throw std::invalid_argument("HubScheme: routing to self");
  }
  if (g_->has_edge(u, dest_label)) return dest_label;  // free under II
  if (u == hub_) return hub_table_.next_of[dest_label];
  if (hub_neighbor_[u]) return hub_;
  return toward_hub_[u];
}

namespace {

class HubFastPath final : public model::FastPath {
 public:
  HubFastPath(std::size_t n, NodeId hub, model::AdjacencyBits adjacency,
              model::PackedSparseArray hub_table,
              std::vector<NodeId> toward_hub)
      : n_(n),
        hub_(hub),
        adjacency_(std::move(adjacency)),
        hub_table_(std::move(hub_table)),
        toward_hub_(std::move(toward_hub)) {}

  [[nodiscard]] std::string name() const override { return "hub"; }
  [[nodiscard]] std::size_t node_count() const override { return n_; }

  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label) const override {
    if (dest_label == u) {
      throw std::invalid_argument("HubScheme: routing to self");
    }
    if (adjacency_.has_edge(u, dest_label)) return dest_label;
    if (u == hub_) {
      return static_cast<NodeId>(hub_table_.value(dest_label));
    }
    if (adjacency_.has_edge(u, hub_)) return hub_;
    return toward_hub_[u];
  }

 private:
  std::size_t n_;
  NodeId hub_;
  model::AdjacencyBits adjacency_;
  model::PackedSparseArray hub_table_;
  std::vector<NodeId> toward_hub_;
};

}  // namespace

std::unique_ptr<model::FastPath> HubScheme::compile_fast() const {
  model::note_fastpath_compiled("hub");
  return std::make_unique<HubFastPath>(
      n_, hub_, model::AdjacencyBits(*g_),
      compile_node_table(hub_, hub_table_.next_of), toward_hub_);
}

model::SpaceReport HubScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : function_bits_) {
    report.function_bits.push_back(bits.size());
  }
  return report;
}

}  // namespace optrt::schemes
