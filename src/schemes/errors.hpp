// Error types for scheme construction and artifact decoding.
//
// Two failure families live here:
//
//   · SchemeInapplicable — a *construction* precondition a given graph
//     fails. The paper's constructions assume the Lemma 1–3 structure of
//     Kolmogorov random graphs (diameter 2, small dominating covers); on
//     other graphs they are simply inapplicable, and the Compiler catches
//     this and falls back to the always-correct full-table scheme.
//
//   · DecodeError — a *decode* failure of a serialized artifact. The
//     routing function is a bit string (Theorems 1–5 route by decoding
//     it), so the decode path is the data plane: a flipped bit, a torn
//     write, or a hostile length field must yield a typed, one-line
//     diagnosable error — never UB, silent garbage routes, or an
//     unbounded allocation. Every decoder in schemes/serialization (and
//     the byte/file transport beneath it) throws DecodeError, classified
//     by the first integrity layer that rejected the input.
//
// DecodeError derives from std::invalid_argument so pre-taxonomy callers
// (and tests) that caught the old scattered invalid_argument throws keep
// working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace optrt::schemes {

class SchemeInapplicable : public std::runtime_error {
 public:
  explicit SchemeInapplicable(const std::string& what)
      : std::runtime_error(what) {}
};

/// Why an artifact failed to decode, ordered by the integrity layer that
/// catches it (outermost first).
enum class DecodeErrorKind : std::uint8_t {
  kTruncated,         ///< input ends before a declared/required field
  kBadMagic,          ///< leading magic is neither v1 ("ORT2") nor v0 ("ORT1")
  kVersionMismatch,   ///< framed artifact with an unknown format version
  kChecksumMismatch,  ///< payload CRC32 disagrees with the stored checksum
  kSemanticInvalid,   ///< fields decode but violate scheme invariants
                      ///< (wrong kind, node-count mismatch, port >= degree,
                      ///< id >= n, trailing bits, ...)
  kResourceLimit,     ///< a length/count field would drive an allocation
                      ///< beyond what the input can possibly back
};

[[nodiscard]] constexpr const char* to_string(DecodeErrorKind kind) noexcept {
  switch (kind) {
    case DecodeErrorKind::kTruncated: return "truncated";
    case DecodeErrorKind::kBadMagic: return "bad-magic";
    case DecodeErrorKind::kVersionMismatch: return "version-mismatch";
    case DecodeErrorKind::kChecksumMismatch: return "checksum-mismatch";
    case DecodeErrorKind::kSemanticInvalid: return "semantic-invalid";
    case DecodeErrorKind::kResourceLimit: return "resource-limit";
  }
  return "unknown";
}

class DecodeError : public std::invalid_argument {
 public:
  DecodeError(DecodeErrorKind kind, const std::string& what)
      : std::invalid_argument(std::string(to_string(kind)) + ": " + what),
        kind_(kind) {}

  [[nodiscard]] DecodeErrorKind kind() const noexcept { return kind_; }

 private:
  DecodeErrorKind kind_;
};

}  // namespace optrt::schemes
