// Error type for constructions whose preconditions a given graph fails.
//
// The paper's constructions assume the Lemma 1–3 structure of Kolmogorov
// random graphs (diameter 2, small dominating covers). On other graphs they
// are simply inapplicable; the Compiler catches this and falls back to the
// always-correct full-table scheme.
#pragma once

#include <stdexcept>
#include <string>

namespace optrt::schemes {

class SchemeInapplicable : public std::runtime_error {
 public:
  explicit SchemeInapplicable(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace optrt::schemes
