// Theorem 3: routing with stretch ≤ 1.5 in model II using (6c+20)·n log n
// bits total.
//
// Pick a hub u* and let B = {u*} ∪ (least-neighbour cover of u*). By
// Lemmas 2–3 every node is adjacent to some node of B. Nodes of B store the
// full Theorem-1 compact table (≤ 6n bits each, |B| = O(log n) of them);
// every other node stores just the label of one adjacent center
// (⌈log n⌉ bits). A route v → w is either direct (w adjacent) or
// v → center → … → w in ≤ 3 steps, against a shortest path of 2 —
// stretch ≤ 1.5, the only possible value strictly between 1 and 2 on
// diameter-2 graphs.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "model/scheme.hpp"
#include "schemes/compact_node.hpp"

namespace optrt::schemes {

class RoutingCenterScheme final : public model::RoutingScheme {
 public:
  /// Throws SchemeInapplicable if the hub's cover is incomplete or a center
  /// node lacks the Theorem-1 structure.
  explicit RoutingCenterScheme(const graph::Graph& g, NodeId hub = 0);

  /// Reconstructs from serialized state (deserialization path; see
  /// schemes/serialization.hpp): the sorted center set plus per-node bits.
  RoutingCenterScheme(const graph::Graph& g, std::vector<NodeId> center_ids,
                      std::vector<bitio::BitVector> node_bits);

  [[nodiscard]] std::string name() const override { return "routing-center"; }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIIalpha;
  }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] model::SpaceReport space() const override;
  /// Compiled form: adjacency bit-matrix, rank-indexed sparse tables at
  /// the centers, flat center hops elsewhere.
  [[nodiscard]] std::unique_ptr<model::FastPath> compile_fast() const override;

  [[nodiscard]] const std::vector<NodeId>& centers() const { return center_ids_; }
  [[nodiscard]] const bitio::BitVector& function_bits(NodeId u) const {
    return function_bits_[u];
  }

 private:
  std::size_t n_;
  std::vector<NodeId> center_ids_;  ///< B, sorted
  // Per node: either a compact table (centers) or a stored center label.
  std::vector<bitio::BitVector> function_bits_;
  std::vector<DecodedCompactNode> decoded_;  ///< empty next_of when not in B
  std::vector<NodeId> my_center_;            ///< valid when not in B
  std::vector<bool> in_b_;
  const graph::Graph* g_;  // free neighbour knowledge under model II
};

}  // namespace optrt::schemes
