// k-level hierarchical pivot routing — the general form of the §1.2
// trade-off schemes (Peleg–Upfal [9]: stretch grows with the hierarchy
// depth k while tables shrink toward Õ(n^{1/k}·n)).
//
// Construction (Thorup–Zwick-style pivots with installed handoff paths):
//   · nested pivot sets V = A₀ ⊋ A₁ ⊋ … ⊋ A_{k−1}, |A_i| ≈ n^{1−i/k};
//   · p_i(v) = nearest level-i pivot of v; the charged label of v is
//     (v, p₁(v), …, p_{k−1}(v)) — k·⌈log n⌉ bits (model γ);
//   · every node stores: (T) next hops toward every top pivot (A_{k−1}),
//     (V) next hops toward its vicinity C(w) = {v : d(w,v) ≤ d(v,p₁(v))},
//     and (H) installed waypoint entries: for every level-i pivot t and
//     every child pivot x = p_{i−1}(v) of a v with p_i(v) = t, a next-hop
//     entry for x at every node of one fixed shortest t→x path (the
//     label-switched-path trick real hierarchies use).
//
// Routing (waypoint in the message header): head for the lowest-level
// pivot of the destination you can resolve — vicinity entries self-sustain
// (if v ∈ C(w) then v ∈ C(next hop)), top pivots are resolvable
// everywhere, and handoff legs follow installed entries. Every leg
// strictly decreases the distance to its waypoint and every handoff
// strictly decreases the pivot level, so delivery always terminates;
// stretch is measured, and shrinks tables as k grows.
#pragma once

#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ports.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

using graph::NodeId;

struct HierarchicalOptions {
  std::size_t levels = 3;   ///< k ≥ 2; k = 2 ≈ the landmark scheme
  std::uint64_t seed = 1;
};

class HierarchicalScheme final : public model::RoutingScheme {
 public:
  using Options = HierarchicalOptions;

  /// Throws SchemeInapplicable on disconnected graphs or levels < 2.
  explicit HierarchicalScheme(const graph::Graph& g, Options options = {});

  /// Reconstructs from serialized state (deserialization path; see
  /// schemes/serialization.hpp): the pivot sets plus per-node bits.
  /// Nearest pivots are recomputed from the graph (least id on ties).
  HierarchicalScheme(const graph::Graph& g,
                     std::vector<std::vector<NodeId>> pivot_sets,
                     std::vector<bitio::BitVector> node_bits);

  [[nodiscard]] std::string name() const override { return "hierarchical"; }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIIgamma;
  }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  /// Tracks the current pivot level in the header's phase field.
  [[nodiscard]] bool stateless_next_hop() const override { return false; }
  [[nodiscard]] model::SpaceReport space() const override;
  [[nodiscard]] std::vector<NodeId> port_enumeration(NodeId u) const override;
  /// Compiled form: per node, a rank-indexed target membership vector with
  /// bit-packed ports, walking the same bottom-up pivot ladder as a fresh
  /// next_hop.
  [[nodiscard]] std::unique_ptr<model::FastPath> compile_fast() const override;

  [[nodiscard]] std::size_t levels() const { return levels_; }
  [[nodiscard]] const std::vector<NodeId>& pivots(std::size_t level) const {
    return pivot_sets_[level];
  }
  /// v's level-i pivot.
  [[nodiscard]] NodeId pivot_of(std::size_t level, NodeId v) const {
    return pivot_of_[level][v];
  }
  [[nodiscard]] const bitio::BitVector& function_bits(NodeId u) const {
    return function_bits_[u];
  }

 private:
  struct DecodedNode {
    // Sorted (target, port) tables: top pivots, vicinity, installed.
    std::vector<NodeId> targets;
    std::vector<graph::PortId> port_for;
    [[nodiscard]] int find(NodeId target) const;
  };

  /// Looks up a next hop toward `target` at node `u`; -1 if unresolvable.
  [[nodiscard]] int resolve(NodeId u, NodeId target) const;

  std::size_t n_;
  std::size_t levels_;
  graph::PortAssignment ports_;
  std::vector<std::vector<NodeId>> pivot_sets_;  // [level] sorted; [0] empty
  std::vector<std::vector<NodeId>> pivot_of_;    // [level][v]
  std::vector<bitio::BitVector> function_bits_;
  std::vector<DecodedNode> decoded_;
};

}  // namespace optrt::schemes
