#include "schemes/full_information.hpp"

#include <algorithm>
#include <stdexcept>

namespace optrt::schemes {

FullInformationScheme::FullInformationScheme(const graph::Graph& g,
                                             graph::PortAssignment ports)
    : n_(g.node_count()), ports_(std::move(ports)) {
  const auto dist_cached = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_cached;
  matrix_bits_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    const std::size_t d = ports_.degree(u);
    bitio::BitVector bits(n_ * d);
    for (NodeId v = 0; v < n_; ++v) {
      if (v == u || dist.at(u, v) == graph::kUnreachable) continue;
      for (NodeId s : graph::shortest_path_successors(g, dist, u, v)) {
        bits.set(static_cast<std::size_t>(v) * d + ports_.port_of(u, s), true);
      }
    }
    matrix_bits_[u] = std::move(bits);
  }
}

FullInformationScheme FullInformationScheme::standard(const graph::Graph& g) {
  return FullInformationScheme(g, graph::PortAssignment::sorted(g));
}

NodeId FullInformationScheme::next_hop(NodeId u, NodeId dest_label,
                                       model::MessageHeader&) const {
  const std::size_t d = ports_.degree(u);
  for (graph::PortId p = 0; p < d; ++p) {
    if (port_bit(u, dest_label, p)) return ports_.neighbor_at(u, p);
  }
  throw std::invalid_argument("FullInformationScheme: no route recorded");
}

std::vector<NodeId> FullInformationScheme::all_next_hops(
    NodeId u, NodeId dest_label) const {
  std::vector<NodeId> hops;
  const std::size_t d = ports_.degree(u);
  for (graph::PortId p = 0; p < d; ++p) {
    if (port_bit(u, dest_label, p)) hops.push_back(ports_.neighbor_at(u, p));
  }
  return hops;
}

NodeId FullInformationScheme::next_hop_avoiding(
    NodeId u, NodeId dest_label, const std::vector<bool>& down_ports) const {
  const std::size_t d = ports_.degree(u);
  for (graph::PortId p = 0; p < d; ++p) {
    if (port_bit(u, dest_label, p) && (p >= down_ports.size() || !down_ports[p])) {
      return ports_.neighbor_at(u, p);
    }
  }
  return kNoRoute;
}

std::vector<NodeId> FullInformationScheme::port_enumeration(NodeId u) const {
  const auto ports = ports_.ports(u);
  return {ports.begin(), ports.end()};
}

model::SpaceReport FullInformationScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : matrix_bits_) {
    report.function_bits.push_back(bits.size());
  }
  return report;
}

}  // namespace optrt::schemes
