// Theorem 1: shortest-path routing on O(log n)-random graphs with local
// routing functions of at most 6n bits per node (models IB ∨ II, labels
// α/β untouched) — the complete scheme is O(n²) bits.
//
// Every node stores the two-table compact structure of compact_node.hpp.
// Under II the neighbour labels are free; under IB the table embeds the
// node's interconnection vector (n−1 extra bits, the "7n" variant in the
// proof) and ports take the canonical sorted assignment.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "model/scheme.hpp"
#include "schemes/compact_node.hpp"

namespace optrt::schemes {

class CompactDiam2Scheme final : public model::RoutingScheme {
 public:
  struct Options {
    /// Model: II (neighbours known) or IB (free ports, adjacency embedded).
    bool neighbors_known = true;
    CompactNodeOptions node;  ///< cover order / threshold ablations

    [[nodiscard]] static Options for_model(const model::Model& m);
  };

  /// Builds the scheme. Throws SchemeInapplicable unless every node's
  /// neighbours dominate its non-neighbours (true for certified random
  /// graphs: diameter 2 through the Lemma 3 cover).
  CompactDiam2Scheme(const graph::Graph& g, Options options);

  /// Reconstructs a scheme from serialized per-node tables (the
  /// deserialization path; see schemes/serialization.hpp). The per-table
  /// split statistics are not recorded in the artifact and read as zero.
  CompactDiam2Scheme(const graph::Graph& g, Options options,
                     std::vector<bitio::BitVector> node_bits);

  [[nodiscard]] std::string name() const override { return "compact-diam2"; }
  [[nodiscard]] model::Model routing_model() const override;
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] model::SpaceReport space() const override;
  /// Compiled form: per node, a rank-indexed sparse table of the routed
  /// (non-neighbour) destinations; direct destinations answer themselves.
  [[nodiscard]] std::unique_ptr<model::FastPath> compile_fast() const override;

  /// Serialized local routing function of `u` (exactly what next_hop
  /// decodes).
  [[nodiscard]] const bitio::BitVector& function_bits(NodeId u) const {
    return bits_[u].bits;
  }

  /// Reporting: split of each node's table into unary/fixed parts.
  [[nodiscard]] const CompactNodeBits& node_tables(NodeId u) const {
    return bits_[u];
  }

 private:
  std::size_t n_;
  Options options_;
  std::vector<CompactNodeBits> bits_;
  // Decoded-once routing caches; built purely by decode_compact_node from
  // bits_ (+ free neighbour knowledge under II).
  std::vector<DecodedCompactNode> decoded_;
};

}  // namespace optrt::schemes
