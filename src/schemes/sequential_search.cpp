#include "schemes/sequential_search.hpp"

#include <stdexcept>
#include <utility>

#include "graph/csr.hpp"
#include "model/fastpath.hpp"

namespace optrt::schemes {

SequentialSearchScheme::SequentialSearchScheme(const graph::Graph& g)
    : g_(&g) {}

namespace {

class SequentialSearchFastPath final : public model::FastPath {
 public:
  SequentialSearchFastPath(model::AdjacencyBits adjacency, graph::CsrGraph csr)
      : adjacency_(std::move(adjacency)), csr_(std::move(csr)) {}

  [[nodiscard]] std::string name() const override {
    return "sequential-search";
  }
  [[nodiscard]] std::size_t node_count() const override {
    return csr_.node_count();
  }

  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label) const override {
    if (dest_label == u) {
      throw std::invalid_argument("SequentialSearchScheme: routing to self");
    }
    if (adjacency_.has_edge(u, dest_label)) return dest_label;
    if (csr_.degree(u) == 0) {
      throw std::invalid_argument("SequentialSearchScheme: isolated node");
    }
    return csr_.neighbor_at(u, 0);  // launch the first probe
  }

 private:
  model::AdjacencyBits adjacency_;
  graph::CsrGraph csr_;  // sorted neighbour slices
};

}  // namespace

std::unique_ptr<model::FastPath> SequentialSearchScheme::compile_fast() const {
  model::note_fastpath_compiled("sequential_search");
  return std::make_unique<SequentialSearchFastPath>(model::AdjacencyBits(*g_),
                                                    graph::CsrGraph(*g_));
}

NodeId SequentialSearchScheme::next_hop(NodeId u, NodeId dest_label,
                                        model::MessageHeader& header) const {
  if (dest_label == u) {
    throw std::invalid_argument("SequentialSearchScheme: routing to self");
  }
  // Free under II: direct neighbours need no table (and a successful probe
  // forwards here too).
  if (g_->has_edge(u, dest_label)) {
    header.phase = kAtSource;
    return dest_label;
  }
  const auto nbrs = g_->neighbors(u);
  switch (header.phase) {
    case kAtSource: {
      // We are the source: launch the first probe.
      if (nbrs.empty()) {
        throw std::invalid_argument("SequentialSearchScheme: isolated node");
      }
      header.phase = kProbing;
      header.probe_index = 0;
      return nbrs[0];
    }
    case kProbing: {
      // A probe arrived and the destination is not our neighbour: bounce it
      // back over the link it came from.
      header.phase = kReturning;
      return header.came_from;
    }
    case kReturning: {
      // Our probe came back unsuccessful: try the next least neighbour.
      header.probe_index += 1;
      if (header.probe_index >= nbrs.size()) {
        throw std::invalid_argument(
            "SequentialSearchScheme: probes exhausted (destination farther "
            "than 2)");
      }
      header.phase = kProbing;
      return nbrs[header.probe_index];
    }
    default:
      throw std::logic_error("SequentialSearchScheme: bad header phase");
  }
}

std::vector<NodeId> SequentialSearchScheme::port_enumeration(NodeId u) const {
  // Model II: ports follow the sorted neighbour list.
  const auto nbrs = g_->neighbors(u);
  return {nbrs.begin(), nbrs.end()};
}

model::SpaceReport SequentialSearchScheme::space() const {
  model::SpaceReport report;
  // The constant algorithm: zero stored bits at every node.
  report.function_bits.assign(g_->node_count(), 0);
  return report;
}

}  // namespace optrt::schemes
