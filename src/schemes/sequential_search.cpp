#include "schemes/sequential_search.hpp"

#include <stdexcept>

namespace optrt::schemes {

SequentialSearchScheme::SequentialSearchScheme(const graph::Graph& g)
    : g_(&g) {}

NodeId SequentialSearchScheme::next_hop(NodeId u, NodeId dest_label,
                                        model::MessageHeader& header) const {
  if (dest_label == u) {
    throw std::invalid_argument("SequentialSearchScheme: routing to self");
  }
  // Free under II: direct neighbours need no table (and a successful probe
  // forwards here too).
  if (g_->has_edge(u, dest_label)) {
    header.phase = kAtSource;
    return dest_label;
  }
  const auto nbrs = g_->neighbors(u);
  switch (header.phase) {
    case kAtSource: {
      // We are the source: launch the first probe.
      if (nbrs.empty()) {
        throw std::invalid_argument("SequentialSearchScheme: isolated node");
      }
      header.phase = kProbing;
      header.probe_index = 0;
      return nbrs[0];
    }
    case kProbing: {
      // A probe arrived and the destination is not our neighbour: bounce it
      // back over the link it came from.
      header.phase = kReturning;
      return header.came_from;
    }
    case kReturning: {
      // Our probe came back unsuccessful: try the next least neighbour.
      header.probe_index += 1;
      if (header.probe_index >= nbrs.size()) {
        throw std::invalid_argument(
            "SequentialSearchScheme: probes exhausted (destination farther "
            "than 2)");
      }
      header.phase = kProbing;
      return nbrs[header.probe_index];
    }
    default:
      throw std::logic_error("SequentialSearchScheme: bad header phase");
  }
}

std::vector<NodeId> SequentialSearchScheme::port_enumeration(NodeId u) const {
  // Model II: ports follow the sorted neighbour list.
  const auto nbrs = g_->neighbors(u);
  return {nbrs.begin(), nbrs.end()};
}

model::SpaceReport SequentialSearchScheme::space() const {
  model::SpaceReport report;
  // The constant algorithm: zero stored bits at every node.
  report.function_bits.assign(g_->node_count(), 0);
  return report;
}

}  // namespace optrt::schemes
