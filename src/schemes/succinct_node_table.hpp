// Shared compiled form of a Theorem-1 style per-node table.
//
// A decoded compact node knows, for every destination v, either "v is a
// neighbour — deliver directly" or "forward to this stored coverer". The
// query-optimized encoding is a membership bit-vector of the *routed*
// destinations with O(1) rank into a bit-packed array of their coverers
// (model::PackedSparseArray): contains(v) == false means v answers
// itself. compact-diam2 uses one per node; hub and routing-center reuse
// it for the table-holding nodes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "bitio/codes.hpp"
#include "graph/graph.hpp"
#include "model/fastpath.hpp"
#include "schemes/compact_node.hpp"

namespace optrt::schemes {

/// Compiles next_of (the decoded per-destination hops of node `u`, with
/// kInvalid at u itself) into a sparse rank-indexed table over the
/// destinations that do not answer themselves.
[[nodiscard]] inline model::PackedSparseArray compile_node_table(
    graph::NodeId u, std::span<const graph::NodeId> next_of) {
  const std::size_t n = next_of.size();
  const unsigned width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  bitio::BitVector mask(n);
  std::vector<std::uint32_t> hops;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (v == u || next_of[v] == DecodedCompactNode::kInvalid) continue;
    if (next_of[v] == v) continue;  // direct destination
    mask.set(v, true);
    hops.push_back(next_of[v]);
  }
  return model::PackedSparseArray(std::move(mask), hops, width);
}

}  // namespace optrt::schemes
