// model::RepairableScheme implementations for the three churn-capable
// schemes (ROADMAP item 5a): full-table, compact-diam2, and Thorup-Zwick.
//
// The shared substrate is DynamicDistances, an incrementally maintained
// all-pairs distance matrix for unit-weight undirected graphs:
//
//   insert {u, v} — exact one-step min-plus patch against the OLD matrix,
//       d'(s, t) = min(d(s,t), d(s,u)+1+d(v,t), d(s,v)+1+d(u,t)),
//     sound because a new shortest path crosses the new edge at most once;
//   delete {u, v} — only sources s with |d(s,u) − d(s,v)| == 1 can lose a
//     shortest path (the edge lies on s's shortest-path DAG iff its
//     endpoints sit on consecutive BFS levels); exactly those rows are
//     re-run through BFS on the new graph, with a full-rebuild fallback
//     when the candidate set exceeds a threshold. The candidate set is
//     closed under "my row changed", so the patched matrix stays symmetric
//     and exact.
//
// On top of the maintained matrix, each repairable derives the *dirty set*
// — the nodes whose serialized tables the event can change — rebuilds only
// those tables through the same builders the fresh constructors use, and
// re-materializes its scheme through the validating deserialization
// constructors. That is why the differential oracle can demand
// bit-identity: patched tables are produced by the identical code path a
// fresh centralized build would take, just for fewer nodes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "model/repairable.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_table.hpp"
#include "schemes/tz.hpp"

namespace optrt::schemes {

/// Incrementally maintained all-pairs distances. apply() mutates the
/// matrix for one link delta and reports which rows changed plus the
/// deterministic work spent (rows patched vs rows re-BFS'd).
class DynamicDistances {
 public:
  /// `g` must be the topology the matrix describes *after* every apply()
  /// — callers update their live graph first, then call apply() with the
  /// new graph.
  explicit DynamicDistances(const graph::Graph& g);

  struct Delta {
    std::vector<graph::NodeId> changed_rows;  ///< sorted, rows with any change
    std::uint64_t rows_bfs = 0;
    std::uint64_t rows_patched = 0;
  };

  /// Folds one link delta in. `g_new` is the graph *including* the change.
  /// `bfs_fallback_fraction`: when a delete's candidate row count exceeds
  /// this fraction of n, recompute every row instead (still exact; the
  /// Delta then lists every row as changed conservatively).
  Delta apply(const graph::Graph& g_new, graph::NodeId u, graph::NodeId v,
              bool up, double bfs_fallback_fraction = 1.0);

  [[nodiscard]] std::uint32_t at(graph::NodeId u,
                                 graph::NodeId v) const noexcept {
    return d_[static_cast<std::size_t>(u) * n_ + v];
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  [[nodiscard]] bool connected() const noexcept;

  /// Copies the current matrix into the shape the scheme builders consume.
  [[nodiscard]] graph::DistanceMatrix snapshot() const {
    return {n_, d_};
  }

 private:
  std::size_t n_;
  std::vector<std::uint32_t> d_;
};

/// Common bookkeeping shared by the three repairables.
class RepairableBase : public model::RepairableScheme {
 public:
  explicit RepairableBase(const graph::Graph& base, model::RepairConfig config);

  [[nodiscard]] const graph::Graph& topology() const override {
    return live_;
  }
  [[nodiscard]] const model::RepairStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] bool available() const override { return available_; }

 protected:
  /// Toggles {u, v} in live_ (precondition: the delta is real).
  void toggle_edge(const model::TopologyEvent& event);

  graph::Graph live_;
  model::RepairConfig config_;
  model::RepairStats stats_;
  bool available_ = true;
};

/// Full-table repair: entry (s, t) depends on N(s), d(s, ·) and d(w, ·)
/// for w ∈ N(s), so dirty = {u, v} ∪ changed rows ∪ their live
/// neighbourhoods. Works on disconnected topologies (unreachable entries
/// store port 0, like the fresh builder).
class RepairableFullTable final : public RepairableBase {
 public:
  explicit RepairableFullTable(const graph::Graph& base,
                               model::RepairConfig config = {});

  [[nodiscard]] std::string kind_name() const override { return "full-table"; }
  [[nodiscard]] const model::RoutingScheme& scheme() const override {
    return *scheme_;
  }
  model::RepairOutcome apply_event(const model::TopologyEvent& event) override;

 private:
  void rebuild_table(graph::NodeId u, const graph::DistanceMatrix& dist,
                     const graph::PortAssignment& ports);
  void materialize();

  DynamicDistances dist_;
  std::vector<bitio::BitVector> tables_;
  std::unique_ptr<FullTableScheme> scheme_;
};

/// Compact-diam2 repair: node u's Theorem-1 table depends only on N(u)
/// and the adjacency between N(u) and u's non-neighbours, so toggling
/// {a, b} dirties exactly {a, b} ∪ N(a) ∪ N(b). No distance matrix is
/// needed at all. When a dirty node's neighbours stop dominating its
/// non-neighbours the scheme is inapplicable: tables go stale
/// (available() == false) until an event under which a full rebuild
/// succeeds again.
class RepairableCompactDiam2 final : public RepairableBase {
 public:
  explicit RepairableCompactDiam2(const graph::Graph& base,
                                  CompactDiam2Scheme::Options options = {},
                                  model::RepairConfig config = {});

  [[nodiscard]] std::string kind_name() const override {
    return "compact-diam2";
  }
  [[nodiscard]] const model::RoutingScheme& scheme() const override {
    return *scheme_;
  }
  model::RepairOutcome apply_event(const model::TopologyEvent& event) override;

 private:
  /// Rebuilds every table from live_; returns false on SchemeInapplicable.
  bool try_full_rebuild();
  void materialize();

  CompactDiam2Scheme::Options options_;
  std::vector<bitio::BitVector> tables_;
  std::unique_ptr<CompactDiam2Scheme> scheme_;
};

/// Thorup-Zwick repair: replays the seeded landmark election against the
/// patched distance matrix (zero BFS). If the elected set changed — or the
/// graph disconnected and reconnected — every table is rebuilt from the
/// maintained matrix; otherwise dirty = {u, v} ∪ changed rows ∪ their
/// live neighbourhoods ∪ every w whose strict-cluster membership of some
/// v with changed d(v, A) flips. Rebuilt tables reuse tz_build_node_bits,
/// so with equal landmarks and equal distances they are byte-identical to
/// a fresh build. On a disconnected live graph the scheme is inapplicable
/// (fresh TzScheme construction throws), and the last tables stay stale.
class RepairableTz final : public RepairableBase {
 public:
  explicit RepairableTz(const graph::Graph& base, TzOptions options = {},
                        model::RepairConfig config = {});

  [[nodiscard]] std::string kind_name() const override { return "tz"; }
  [[nodiscard]] const model::RoutingScheme& scheme() const override {
    return *scheme_;
  }
  model::RepairOutcome apply_event(const model::TopologyEvent& event) override;

  [[nodiscard]] const TzOptions& options() const noexcept { return options_; }

 private:
  void rebuild_all(const graph::DistanceMatrix& dist);
  void materialize(const graph::DistanceMatrix& dist);

  TzOptions options_;
  DynamicDistances dist_;
  std::vector<graph::NodeId> landmarks_;
  std::vector<std::uint32_t> dva_;  // d(v, A) under landmarks_
  std::vector<bitio::BitVector> tables_;
  std::unique_ptr<TzScheme> scheme_;
};

/// Factory keyed by kind_name; throws std::invalid_argument on an unknown
/// kind. `seed` feeds the TZ landmark election and is ignored elsewhere.
[[nodiscard]] std::unique_ptr<model::RepairableScheme> make_repairable(
    const std::string& kind, const graph::Graph& base, std::uint64_t seed,
    model::RepairConfig config = {});

/// The churn differential oracle: compares the incrementally repaired
/// scheme against a fresh centralized build on rs.topology().
/// Bit-identical function bits for full-table and compact-diam2 (plus
/// SchemeInapplicable parity for compact), identical full-pair-space
/// route fingerprints for TZ. `threads` feeds route_fingerprint; every
/// field of the outcome is thread-count independent.
struct RepairMatch {
  bool match = false;
  std::string detail;  ///< first divergence, empty when match
};
[[nodiscard]] RepairMatch repaired_matches_fresh(
    const model::RepairableScheme& rs, std::size_t threads = 0);

}  // namespace optrt::schemes
