// Scheme serialization: a routing scheme as a durable, integrity-framed
// artifact.
//
// A universal routing strategy (§1) produces, for each network, a routing
// scheme — which in practice must be shipped to the nodes and loaded. This
// module serializes schemes to a single self-delimiting bit string (and to
// byte buffers / files). Because the routing function *is* that bit string
// (the schemes route by decoding it), the decode path is the system's data
// plane, and the container is framed for integrity (format v1):
//
//   field            width      meaning
//   magic            32 bits    "ORT2" (0x3254524F)
//   version           8 bits    format version, currently 1
//   kind              8 bits    SchemeKind discriminator
//   node count       32 bits    n the scheme was built for
//   payload length   64 bits    payload size in bits
//   payload CRC32    32 bits    CRC-32 of the payload bits
//   payload          L bits     [environment section][per-node function bits]
//
// The 176-bit header is fixed-width — artifact overhead is independent of
// n. Every decoder validates magic, version, length, and checksum before
// any payload-driven allocation, then validates payload semantics (ports
// < degree, ids < n, exact consumption), throwing a typed DecodeError
// (see errors.hpp) on the first violation. Unframed v0 artifacts
// ("ORT1" + prime-coded kind and n, no checksum) still decode through a
// compatibility path.
//
// The payload's environment section carries what the model grants for free
// or fixes physically (the port assignment, the labelling); it is tagged
// separately so space accounting stays honest: function bits are the
// scheme's cost, environment bits are the network's.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "model/fastpath.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/errors.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hierarchical.hpp"
#include "schemes/hub.hpp"
#include "schemes/landmark.hpp"
#include "schemes/routing_center.hpp"
#include "schemes/sequential_search.hpp"
#include "schemes/tz.hpp"

namespace optrt::schemes {

/// Scheme discriminator stored in the artifact header.
enum class SchemeKind : std::uint32_t {
  kCompactDiam2 = 1,
  kFullTable = 2,
  kHub = 3,
  kRoutingCenter = 4,
  kLandmark = 5,
  kHierarchical = 6,
  kSequentialSearch = 7,
  kThorupZwick = 8,
};

[[nodiscard]] const char* to_string(SchemeKind kind) noexcept;

/// Magic prefix ("ORT2") of every framed (v1) artifact.
inline constexpr std::uint32_t kFrameMagic = 0x3254524F;

/// Magic prefix ("ORT1") of legacy unframed (v0) artifacts.
inline constexpr std::uint32_t kLegacyMagic = 0x3154524F;

/// Current container format version.
inline constexpr std::uint8_t kFormatVersion = 1;

/// Fixed frame overhead: magic + version + kind + n + payload length +
/// CRC32. Independent of n and of the scheme kind.
inline constexpr std::size_t kFrameHeaderBits = 32 + 8 + 8 + 32 + 64 + 32;

/// Parsed frame metadata, as reported by inspect(). For v0 artifacts the
/// checksum fields are zero and payload_bits is the unframed remainder.
struct ArtifactInfo {
  std::uint8_t version = 0;
  SchemeKind kind = SchemeKind::kCompactDiam2;
  std::size_t node_count = 0;
  std::size_t payload_bits = 0;
  std::uint32_t crc_stored = 0;
  std::uint32_t crc_computed = 0;
};

/// Validates the container framing (magic, version, length, checksum — not
/// payload semantics) and returns the header fields. Throws DecodeError.
[[nodiscard]] ArtifactInfo inspect(const bitio::BitVector& artifact);

/// Reads the kind header of an artifact (validates the full frame).
[[nodiscard]] SchemeKind peek_kind(const bitio::BitVector& artifact);

/// Serializes a compact-diam2 scheme (options + per-node tables).
[[nodiscard]] bitio::BitVector serialize(const CompactDiam2Scheme& scheme);

/// Serializes a full-table scheme (labelling + port maps + tables).
[[nodiscard]] bitio::BitVector serialize(const FullTableScheme& scheme);

/// Reconstructs a compact-diam2 scheme over `g`. The graph supplies the
/// model II free knowledge; every routing table comes from the artifact.
[[nodiscard]] CompactDiam2Scheme deserialize_compact_diam2(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Reconstructs a full-table scheme over `g` (port maps and labelling are
/// restored from the artifact's environment section).
[[nodiscard]] FullTableScheme deserialize_full_table(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Serializes / reconstructs a Theorem 4 hub scheme.
[[nodiscard]] bitio::BitVector serialize(const HubScheme& scheme);
[[nodiscard]] HubScheme deserialize_hub(const bitio::BitVector& artifact,
                                        const graph::Graph& g);

/// Serializes / reconstructs a Theorem 3 routing-center scheme.
[[nodiscard]] bitio::BitVector serialize(const RoutingCenterScheme& scheme);
[[nodiscard]] RoutingCenterScheme deserialize_routing_center(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Serializes / reconstructs a landmark (stretch-<3) scheme.
[[nodiscard]] bitio::BitVector serialize(const LandmarkScheme& scheme);
[[nodiscard]] LandmarkScheme deserialize_landmark(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Serializes / reconstructs a k-level hierarchical scheme.
[[nodiscard]] bitio::BitVector serialize(const HierarchicalScheme& scheme);
[[nodiscard]] HierarchicalScheme deserialize_hierarchical(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Serializes / reconstructs a Theorem 5 sequential-search scheme (its
/// local routing functions are constant — the payload is empty; the frame
/// pins n so the artifact still binds to one network size).
[[nodiscard]] bitio::BitVector serialize(const SequentialSearchScheme& scheme);
[[nodiscard]] SequentialSearchScheme deserialize_sequential_search(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Serializes / reconstructs a Thorup-Zwick (stretch-≤3) scheme. Same
/// payload shape as the landmark scheme: the sorted landmark set, then the
/// per-node function bits; nearest landmarks and label exit ports are
/// recomputed from `g`.
[[nodiscard]] bitio::BitVector serialize(const TzScheme& scheme);
[[nodiscard]] TzScheme deserialize_tz(const bitio::BitVector& artifact,
                                      const graph::Graph& g);

/// Kind-dispatching decoder: reconstructs whatever scheme the artifact
/// holds. Throws DecodeError on any corruption or mismatch with `g`.
[[nodiscard]] std::unique_ptr<model::RoutingScheme> deserialize_any(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// A deserialized scheme together with its compiled query-optimized form
/// (model/fastpath.hpp). The scheme is kept alive alongside the fast path
/// so even a borrowed fallback fast path stays valid.
struct FastScheme {
  std::unique_ptr<model::RoutingScheme> scheme;
  std::unique_ptr<model::FastPath> fast;
};

/// Decodes the artifact and compiles its fast path in one step. Exactly
/// the deserialize_any error surface: any corruption throws the same
/// typed DecodeError before compilation starts.
[[nodiscard]] FastScheme compile_fast_from_artifact(
    const bitio::BitVector& artifact, const graph::Graph& g);

// --- Byte and file transport --------------------------------------------------

/// Packs bits into bytes, length-prefixed so the bit count survives.
[[nodiscard]] std::vector<std::uint8_t> to_bytes(const bitio::BitVector& bits);
[[nodiscard]] bitio::BitVector from_bytes(std::span<const std::uint8_t> bytes);
[[nodiscard]] bitio::BitVector from_bytes(const std::vector<std::uint8_t>& bytes);

/// Writes/reads an artifact file. save_artifact is atomic: it writes to
/// `<path>.tmp` and renames, so a crash mid-write can never leave a torn
/// artifact at `path`. Throws std::runtime_error on I/O errors;
/// load_artifact throws DecodeError on malformed contents.
void save_artifact(const std::string& path, const bitio::BitVector& bits);
[[nodiscard]] bitio::BitVector load_artifact(const std::string& path);

}  // namespace optrt::schemes
