// Scheme serialization: a routing scheme as a durable artifact.
//
// A universal routing strategy (§1) produces, for each network, a routing
// scheme — which in practice must be shipped to the nodes and loaded. This
// module serializes schemes to a single self-delimiting bit string (and to
// byte buffers / files):
//
//   [magic][kind][n][environment section][per-node function bits]
//
// The environment section carries what the model grants for free or fixes
// physically (the port assignment, the labelling); it is tagged separately
// so space accounting stays honest: function bits are the scheme's cost,
// environment bits are the network's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hierarchical.hpp"
#include "schemes/hub.hpp"
#include "schemes/landmark.hpp"
#include "schemes/routing_center.hpp"

namespace optrt::schemes {

/// Scheme discriminator stored in the artifact header.
enum class SchemeKind : std::uint32_t {
  kCompactDiam2 = 1,
  kFullTable = 2,
  kHub = 3,
  kRoutingCenter = 4,
  kLandmark = 5,
  kHierarchical = 6,
};

/// Magic prefix ("ORT1") of every artifact.
inline constexpr std::uint32_t kArtifactMagic = 0x3154524F;

/// Serializes a compact-diam2 scheme (options + per-node tables).
[[nodiscard]] bitio::BitVector serialize(const CompactDiam2Scheme& scheme);

/// Serializes a full-table scheme (labelling + port maps + tables).
[[nodiscard]] bitio::BitVector serialize(const FullTableScheme& scheme);

/// Reads the kind header of an artifact (validates the magic).
[[nodiscard]] SchemeKind peek_kind(const bitio::BitVector& artifact);

/// Reconstructs a compact-diam2 scheme over `g`. The graph supplies the
/// model II free knowledge; every routing table comes from the artifact.
[[nodiscard]] CompactDiam2Scheme deserialize_compact_diam2(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Reconstructs a full-table scheme over `g` (port maps and labelling are
/// restored from the artifact's environment section).
[[nodiscard]] FullTableScheme deserialize_full_table(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Serializes / reconstructs a Theorem 4 hub scheme.
[[nodiscard]] bitio::BitVector serialize(const HubScheme& scheme);
[[nodiscard]] HubScheme deserialize_hub(const bitio::BitVector& artifact,
                                        const graph::Graph& g);

/// Serializes / reconstructs a Theorem 3 routing-center scheme.
[[nodiscard]] bitio::BitVector serialize(const RoutingCenterScheme& scheme);
[[nodiscard]] RoutingCenterScheme deserialize_routing_center(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Serializes / reconstructs a landmark (stretch-<3) scheme.
[[nodiscard]] bitio::BitVector serialize(const LandmarkScheme& scheme);
[[nodiscard]] LandmarkScheme deserialize_landmark(
    const bitio::BitVector& artifact, const graph::Graph& g);

/// Serializes / reconstructs a k-level hierarchical scheme.
[[nodiscard]] bitio::BitVector serialize(const HierarchicalScheme& scheme);
[[nodiscard]] HierarchicalScheme deserialize_hierarchical(
    const bitio::BitVector& artifact, const graph::Graph& g);

// --- Byte and file transport --------------------------------------------------

/// Packs bits into bytes, length-prefixed so the bit count survives.
[[nodiscard]] std::vector<std::uint8_t> to_bytes(const bitio::BitVector& bits);
[[nodiscard]] bitio::BitVector from_bytes(const std::vector<std::uint8_t>& bytes);

/// Writes/reads an artifact file. Throws std::runtime_error on I/O errors.
void save_artifact(const std::string& path, const bitio::BitVector& bits);
[[nodiscard]] bitio::BitVector load_artifact(const std::string& path);

}  // namespace optrt::schemes
