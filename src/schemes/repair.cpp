#include "schemes/repair.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/labeling.hpp"
#include "graph/ports.hpp"
#include "model/verifier.hpp"
#include "obs/metrics.hpp"
#include "schemes/errors.hpp"

namespace optrt::schemes {

using graph::NodeId;

// ---- DynamicDistances -----------------------------------------------------

DynamicDistances::DynamicDistances(const graph::Graph& g)
    : n_(g.node_count()) {
  d_.reserve(n_ * n_);
  for (NodeId u = 0; u < n_; ++u) {
    const auto row = graph::bfs_distances(g, u);
    d_.insert(d_.end(), row.begin(), row.end());
  }
}

bool DynamicDistances::connected() const noexcept {
  return std::none_of(d_.begin(), d_.end(), [](std::uint32_t x) {
    return x == graph::kUnreachable;
  });
}

DynamicDistances::Delta DynamicDistances::apply(const graph::Graph& g_new,
                                                NodeId u, NodeId v, bool up,
                                                double bfs_fallback_fraction) {
  Delta delta;
  if (up) {
    // Exact single-edge insertion: a new shortest path crosses {u, v} at
    // most once, so the min-plus patch against the OLD matrix is exact.
    // Rows u and v are snapshotted first — they may themselves improve.
    std::vector<std::uint32_t> old_du(n_), old_dv(n_);
    for (NodeId t = 0; t < n_; ++t) {
      old_du[t] = at(u, t);
      old_dv[t] = at(v, t);
    }
    for (NodeId s = 0; s < n_; ++s) {
      const std::uint32_t dsu = old_du[s];  // symmetry: d(s, u) = d(u, s)
      const std::uint32_t dsv = old_dv[s];
      bool changed = false;
      std::uint32_t* row = d_.data() + static_cast<std::size_t>(s) * n_;
      for (NodeId t = 0; t < n_; ++t) {
        std::uint32_t best = row[t];
        if (dsu != graph::kUnreachable && old_dv[t] != graph::kUnreachable) {
          best = std::min(best, dsu + 1 + old_dv[t]);
        }
        if (dsv != graph::kUnreachable && old_du[t] != graph::kUnreachable) {
          best = std::min(best, dsv + 1 + old_du[t]);
        }
        if (best < row[t]) {
          row[t] = best;
          changed = true;
        }
      }
      if (changed) delta.changed_rows.push_back(s);
    }
    delta.rows_patched = delta.changed_rows.size();
    return delta;
  }

  // Deletion: a source loses a shortest path only if {u, v} was on its
  // shortest-path DAG, i.e. the endpoints sat on consecutive BFS levels.
  std::vector<NodeId> candidates;
  for (NodeId s = 0; s < n_; ++s) {
    const std::uint32_t dsu = at(s, u);
    const std::uint32_t dsv = at(s, v);
    if (dsu == graph::kUnreachable || dsv == graph::kUnreachable) continue;
    if (dsu + 1 == dsv || dsv + 1 == dsu) candidates.push_back(s);
  }
  if (static_cast<double>(candidates.size()) >
      bfs_fallback_fraction * static_cast<double>(n_)) {
    for (NodeId s = 0; s < n_; ++s) {
      const auto row = graph::bfs_distances(g_new, s);
      std::copy(row.begin(), row.end(),
                d_.begin() + static_cast<std::size_t>(s) * n_);
      delta.changed_rows.push_back(s);  // conservative: report every row
    }
    delta.rows_bfs = n_;
    return delta;
  }
  for (NodeId s : candidates) {
    const auto row = graph::bfs_distances(g_new, s);
    std::uint32_t* dst = d_.data() + static_cast<std::size_t>(s) * n_;
    if (!std::equal(row.begin(), row.end(), dst)) {
      std::copy(row.begin(), row.end(), dst);
      delta.changed_rows.push_back(s);
    }
  }
  delta.rows_bfs = candidates.size();
  return delta;
}

// ---- shared base ----------------------------------------------------------

RepairableBase::RepairableBase(const graph::Graph& base,
                               model::RepairConfig config)
    : live_(base), config_(config) {}

void RepairableBase::toggle_edge(const model::TopologyEvent& event) {
  if (event.up) {
    live_.add_edge(event.u, event.v);
    return;
  }
  // Graph has no remove_edge; rebuild minus the link (churn topologies are
  // bench/test scale, and the n² bitmap rebuild is far below one BFS row
  // sweep).
  graph::Graph next(live_.node_count());
  for (NodeId a = 0; a < live_.node_count(); ++a) {
    for (NodeId b : live_.neighbors(a)) {
      if (a < b && !(std::min(a, b) == std::min(event.u, event.v) &&
                     std::max(a, b) == std::max(event.u, event.v))) {
        next.add_edge(a, b);
      }
    }
  }
  live_ = std::move(next);
}

namespace {

/// dirty ∪= the live neighbourhoods of `rows`; returns the sorted
/// deduplicated dirty list.
std::vector<NodeId> close_over_neighbors(const graph::Graph& g,
                                         std::vector<NodeId> dirty,
                                         const std::vector<NodeId>& rows) {
  for (NodeId s : rows) {
    dirty.push_back(s);
    const auto nbrs = g.neighbors(s);
    dirty.insert(dirty.end(), nbrs.begin(), nbrs.end());
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

}  // namespace

// ---- full-table -----------------------------------------------------------

RepairableFullTable::RepairableFullTable(const graph::Graph& base,
                                         model::RepairConfig config)
    : RepairableBase(base, config), dist_(base) {
  tables_.resize(live_.node_count());
  const graph::DistanceMatrix dist = dist_.snapshot();
  const auto ports = graph::PortAssignment::sorted(live_);
  for (NodeId u = 0; u < live_.node_count(); ++u) {
    rebuild_table(u, dist, ports);
  }
  materialize();
}

void RepairableFullTable::rebuild_table(NodeId u,
                                        const graph::DistanceMatrix& dist,
                                        const graph::PortAssignment& ports) {
  // Mirrors the fresh FullTableScheme builder with identity labels: one
  // fixed-width port entry per destination, least shortest-path successor,
  // port 0 for self and unreachable destinations.
  const std::size_t n = live_.node_count();
  const unsigned width =
      bitio::ceil_log2(std::max<std::size_t>(live_.degree(u), 1));
  bitio::BitWriter w;
  for (NodeId v = 0; v < n; ++v) {
    graph::PortId port = 0;
    if (v != u && dist.at(u, v) != graph::kUnreachable) {
      const auto succ = graph::shortest_path_successors(live_, dist, u, v);
      port = ports.port_of(u, succ.front());
    }
    w.write_bits(port, width);
  }
  tables_[u] = w.take();
}

void RepairableFullTable::materialize() {
  scheme_ = std::make_unique<FullTableScheme>(
      live_, graph::PortAssignment::sorted(live_),
      graph::Labeling::identity(live_.node_count()), model::kIAalpha,
      tables_);
}

model::RepairOutcome RepairableFullTable::apply_event(
    const model::TopologyEvent& event) {
  ++stats_.events;
  toggle_edge(event);
  const std::size_t n = live_.node_count();
  if (config_.force_rebuild) {
    dist_ = DynamicDistances(live_);
    stats_.dist_rows_bfs += n;
    const graph::DistanceMatrix dist = dist_.snapshot();
    const auto ports = graph::PortAssignment::sorted(live_);
    for (NodeId u = 0; u < n; ++u) rebuild_table(u, dist, ports);
    stats_.tables_touched += n;
    materialize();
    ++stats_.rebuilt;
    return model::RepairOutcome::kRebuilt;
  }
  const DynamicDistances::Delta delta = dist_.apply(
      live_, event.u, event.v, event.up, config_.rebuild_fraction);
  stats_.dist_rows_bfs += delta.rows_bfs;
  stats_.dist_rows_patched += delta.rows_patched;
  // Entry (s, t) reads d(s, ·), d(w, ·) for w ∈ N(s), and s's port
  // numbering — dirty is the endpoints plus changed rows plus their live
  // neighbourhoods.
  std::vector<NodeId> dirty = close_over_neighbors(
      live_, {event.u, event.v}, delta.changed_rows);
  const graph::DistanceMatrix dist = dist_.snapshot();
  const auto ports = graph::PortAssignment::sorted(live_);
  const bool full = static_cast<double>(dirty.size()) >
                    config_.rebuild_fraction * static_cast<double>(n);
  if (full) {
    for (NodeId u = 0; u < n; ++u) rebuild_table(u, dist, ports);
    stats_.tables_touched += n;
    ++stats_.rebuilt;
  } else {
    for (NodeId u : dirty) rebuild_table(u, dist, ports);
    stats_.tables_touched += dirty.size();
    ++stats_.patched;
  }
  materialize();
  return full ? model::RepairOutcome::kRebuilt
              : model::RepairOutcome::kPatched;
}

// ---- compact-diam2 --------------------------------------------------------

RepairableCompactDiam2::RepairableCompactDiam2(
    const graph::Graph& base, CompactDiam2Scheme::Options options,
    model::RepairConfig config)
    : RepairableBase(base, config), options_(options) {
  options_.node.include_adjacency = !options_.neighbors_known;
  if (!try_full_rebuild()) {
    throw SchemeInapplicable(
        "RepairableCompactDiam2: base graph not diameter-2 dominated");
  }
  materialize();
}

bool RepairableCompactDiam2::try_full_rebuild() {
  const std::size_t n = live_.node_count();
  std::vector<bitio::BitVector> fresh(n);
  try {
    for (NodeId u = 0; u < n; ++u) {
      fresh[u] = build_compact_node(live_, u, options_.node).bits;
    }
  } catch (const SchemeInapplicable&) {
    return false;
  }
  tables_ = std::move(fresh);
  stats_.tables_touched += n;
  return true;
}

void RepairableCompactDiam2::materialize() {
  scheme_ = std::make_unique<CompactDiam2Scheme>(live_, options_, tables_);
}

model::RepairOutcome RepairableCompactDiam2::apply_event(
    const model::TopologyEvent& event) {
  ++stats_.events;
  toggle_edge(event);
  const std::size_t n = live_.node_count();
  if (!available_ || config_.force_rebuild) {
    // Stale (or baseline mode): only a full rebuild can recover.
    if (try_full_rebuild()) {
      materialize();
      available_ = true;
      ++stats_.rebuilt;
      return model::RepairOutcome::kRebuilt;
    }
    ++stats_.inapplicable;
    return model::RepairOutcome::kInapplicable;
  }
  // u's table reads N(u) and the adjacency between N(u) and u's
  // non-neighbours: toggling {a, b} can only change tables of a, b, and
  // their (old or new) neighbours. The endpoints' neighbourhoods differ
  // between the old and new graph only by each other, which the explicit
  // {a, b} seed already covers — live_ (post-toggle) closure is exact.
  const std::vector<NodeId> dirty = close_over_neighbors(
      live_, {event.u, event.v}, {event.u, event.v});
  const bool full = static_cast<double>(dirty.size()) >
                    config_.rebuild_fraction * static_cast<double>(n);
  if (full) {
    if (!try_full_rebuild()) {
      available_ = false;
      ++stats_.inapplicable;
      return model::RepairOutcome::kInapplicable;
    }
    materialize();
    ++stats_.rebuilt;
    return model::RepairOutcome::kRebuilt;
  }
  std::vector<bitio::BitVector> patched(dirty.size());
  try {
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      patched[i] = build_compact_node(live_, dirty[i], options_.node).bits;
    }
  } catch (const SchemeInapplicable&) {
    // The new topology broke domination for a dirty node; tables go stale
    // until a later event makes the scheme buildable again.
    available_ = false;
    ++stats_.inapplicable;
    return model::RepairOutcome::kInapplicable;
  }
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    tables_[dirty[i]] = std::move(patched[i]);
  }
  stats_.tables_touched += dirty.size();
  materialize();
  ++stats_.patched;
  return model::RepairOutcome::kPatched;
}

// ---- Thorup-Zwick ---------------------------------------------------------

RepairableTz::RepairableTz(const graph::Graph& base, TzOptions options,
                           model::RepairConfig config)
    : RepairableBase(base, config), options_(options), dist_(base) {
  if (!dist_.connected()) {
    throw SchemeInapplicable("RepairableTz: base graph disconnected");
  }
  const graph::DistanceMatrix dist = dist_.snapshot();
  landmarks_ = tz_sample_landmarks(live_, dist, options_);
  rebuild_all(dist);
  materialize(dist);
}

void RepairableTz::rebuild_all(const graph::DistanceMatrix& dist) {
  const std::size_t n = live_.node_count();
  dva_.assign(n, graph::kUnreachable);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId l : landmarks_) dva_[v] = std::min(dva_[v], dist.at(v, l));
  }
  const auto ports = graph::PortAssignment::sorted(live_);
  tables_.resize(n);
  for (NodeId w = 0; w < n; ++w) {
    tables_[w] = tz_build_node_bits(live_, dist, ports, landmarks_, dva_, w);
  }
  stats_.tables_touched += n;
}

void RepairableTz::materialize(const graph::DistanceMatrix& dist) {
  scheme_ = std::make_unique<TzScheme>(live_, landmarks_, tables_, dist);
}

model::RepairOutcome RepairableTz::apply_event(
    const model::TopologyEvent& event) {
  ++stats_.events;
  toggle_edge(event);
  const std::size_t n = live_.node_count();
  if (config_.force_rebuild) {
    dist_ = DynamicDistances(live_);
    stats_.dist_rows_bfs += n;
    if (!dist_.connected()) {
      available_ = false;
      ++stats_.inapplicable;
      return model::RepairOutcome::kInapplicable;
    }
    const graph::DistanceMatrix dist = dist_.snapshot();
    landmarks_ = tz_sample_landmarks(live_, dist, options_);
    rebuild_all(dist);
    materialize(dist);
    available_ = true;
    ++stats_.rebuilt;
    return model::RepairOutcome::kRebuilt;
  }
  const DynamicDistances::Delta delta = dist_.apply(
      live_, event.u, event.v, event.up, config_.rebuild_fraction);
  stats_.dist_rows_bfs += delta.rows_bfs;
  stats_.dist_rows_patched += delta.rows_patched;
  if (!dist_.connected()) {
    // Fresh TZ construction throws on disconnected graphs; mirror it.
    available_ = false;
    ++stats_.inapplicable;
    return model::RepairOutcome::kInapplicable;
  }
  const graph::DistanceMatrix dist = dist_.snapshot();
  // Replay the seeded election against the patched matrix — the same
  // draws a fresh build on this topology would make. A changed electorate
  // (or recovery from a stale period) rebuilds every table, but still
  // without any BFS: the matrix is already exact.
  const std::vector<NodeId> elected =
      tz_sample_landmarks(live_, dist, options_);
  if (!available_ || elected != landmarks_) {
    landmarks_ = elected;
    rebuild_all(dist);
    materialize(dist);
    available_ = true;
    ++stats_.rebuilt;
    return model::RepairOutcome::kRebuilt;
  }
  // Same landmarks: diff d(·, A) and flip-test cluster membership. w's
  // table reads N(w), d(w, ·), d(x, ·) for x ∈ N(w) (successor steps),
  // and the strict test d(w, v) < d(v, A) per destination v.
  std::vector<NodeId> dva_changed;
  std::vector<std::uint32_t> dva_new(n, graph::kUnreachable);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId l : landmarks_) {
      dva_new[v] = std::min(dva_new[v], dist.at(v, l));
    }
    if (dva_new[v] != dva_[v]) dva_changed.push_back(v);
  }
  std::vector<NodeId> dirty = close_over_neighbors(
      live_, {event.u, event.v}, delta.changed_rows);
  if (!dva_changed.empty()) {
    std::vector<bool> is_dirty(n, false);
    for (NodeId w : dirty) is_dirty[w] = true;
    for (NodeId v : dva_changed) {
      for (NodeId w = 0; w < n; ++w) {
        if (is_dirty[w] || w == v) continue;
        const bool was = dist.at(w, v) < dva_[v];
        const bool now = dist.at(w, v) < dva_new[v];
        if (was != now) is_dirty[w] = true;
      }
    }
    dirty.clear();
    for (NodeId w = 0; w < n; ++w) {
      if (is_dirty[w]) dirty.push_back(w);
    }
  }
  dva_ = std::move(dva_new);
  const bool full = static_cast<double>(dirty.size()) >
                    config_.rebuild_fraction * static_cast<double>(n);
  if (full) {
    rebuild_all(dist);
    materialize(dist);
    ++stats_.rebuilt;
    return model::RepairOutcome::kRebuilt;
  }
  const auto ports = graph::PortAssignment::sorted(live_);
  for (NodeId w : dirty) {
    tables_[w] = tz_build_node_bits(live_, dist, ports, landmarks_, dva_, w);
  }
  stats_.tables_touched += dirty.size();
  materialize(dist);
  ++stats_.patched;
  return model::RepairOutcome::kPatched;
}

// ---- factory + differential oracle ----------------------------------------

std::unique_ptr<model::RepairableScheme> make_repairable(
    const std::string& kind, const graph::Graph& base, std::uint64_t seed,
    model::RepairConfig config) {
  if (kind == "full-table") {
    return std::make_unique<RepairableFullTable>(base, config);
  }
  if (kind == "compact-diam2") {
    return std::make_unique<RepairableCompactDiam2>(
        base, CompactDiam2Scheme::Options{}, config);
  }
  if (kind == "tz") {
    TzOptions opt;
    opt.seed = seed;
    return std::make_unique<RepairableTz>(base, opt, config);
  }
  throw std::invalid_argument("make_repairable: unknown kind " + kind);
}

namespace {

RepairMatch compare_bits(const std::string& kind, std::size_t n,
                         const std::function<const bitio::BitVector&(NodeId)>&
                             repaired,
                         const std::function<const bitio::BitVector&(NodeId)>&
                             fresh) {
  for (NodeId u = 0; u < n; ++u) {
    if (!(repaired(u) == fresh(u))) {
      RepairMatch m;
      m.detail = kind + ": table of node " + std::to_string(u) +
                 " diverges from the fresh build";
      return m;
    }
  }
  return {true, ""};
}

}  // namespace

RepairMatch repaired_matches_fresh(const model::RepairableScheme& rs,
                                   std::size_t threads) {
  const graph::Graph& g = rs.topology();
  const std::string kind = rs.kind_name();
  obs::counter("churn.oracle_checks").inc();
  if (kind == "full-table") {
    const auto* repaired =
        dynamic_cast<const FullTableScheme*>(&rs.scheme());
    if (repaired == nullptr) return {false, "full-table: wrong scheme type"};
    const FullTableScheme fresh = FullTableScheme::standard(g);
    return compare_bits(
        kind, g.node_count(),
        [&](NodeId u) -> const bitio::BitVector& {
          return repaired->function_bits(u);
        },
        [&](NodeId u) -> const bitio::BitVector& {
          return fresh.function_bits(u);
        });
  }
  if (kind == "compact-diam2") {
    const auto* repaired =
        dynamic_cast<const CompactDiam2Scheme*>(&rs.scheme());
    if (repaired == nullptr) {
      return {false, "compact-diam2: wrong scheme type"};
    }
    std::optional<CompactDiam2Scheme> fresh;
    try {
      fresh.emplace(g, CompactDiam2Scheme::Options{});
    } catch (const SchemeInapplicable&) {
      // Parity: the fresh build is impossible iff the repairable says so.
      if (rs.available()) {
        return {false,
                "compact-diam2: fresh build inapplicable but repairable "
                "claims availability"};
      }
      return {true, ""};
    }
    if (!rs.available()) {
      return {false,
              "compact-diam2: fresh build succeeded but repairable is stale"};
    }
    return compare_bits(
        kind, g.node_count(),
        [&](NodeId u) -> const bitio::BitVector& {
          return repaired->function_bits(u);
        },
        [&](NodeId u) -> const bitio::BitVector& {
          return fresh->function_bits(u);
        });
  }
  if (kind == "tz") {
    const auto* tz = dynamic_cast<const RepairableTz*>(&rs);
    if (tz == nullptr) return {false, "tz: wrong repairable type"};
    std::optional<TzScheme> fresh;
    try {
      TzOptions opt = tz->options();
      fresh.emplace(g, opt);
    } catch (const SchemeInapplicable&) {
      if (rs.available()) {
        return {false,
                "tz: fresh build inapplicable but repairable claims "
                "availability"};
      }
      return {true, ""};
    }
    if (!rs.available()) {
      return {false, "tz: fresh build succeeded but repairable is stale"};
    }
    const std::uint64_t a =
        model::route_fingerprint(g, rs.scheme(), 0, threads);
    const std::uint64_t b = model::route_fingerprint(g, *fresh, 0, threads);
    if (a != b) {
      return {false, "tz: route fingerprints diverge from the fresh build"};
    }
    return {true, ""};
  }
  return {false, "unknown repairable kind: " + kind};
}

}  // namespace optrt::schemes
