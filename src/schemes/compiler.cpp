#include "schemes/compiler.hpp"

#include <cmath>

#include "graph/labeling.hpp"
#include "graph/ports.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "schemes/compact_diam2.hpp"
#include "schemes/errors.hpp"
#include "schemes/full_information.hpp"
#include "schemes/full_table.hpp"
#include "schemes/hub.hpp"
#include "schemes/neighbor_label.hpp"
#include "schemes/routing_center.hpp"
#include "schemes/sequential_search.hpp"

namespace optrt::schemes {

namespace {

std::unique_ptr<model::RoutingScheme> full_table_for(const graph::Graph& g,
                                                     const model::Model& m,
                                                     std::uint64_t port_seed) {
  graph::Rng rng(port_seed);
  auto ports = m.knowledge == model::Knowledge::kFixedPorts
                   ? graph::PortAssignment::random(g, rng)
                   : graph::PortAssignment::sorted(g);
  return std::make_unique<FullTableScheme>(
      g, std::move(ports), graph::Labeling::identity(g.node_count()), m);
}

}  // namespace

std::unique_ptr<model::RoutingScheme> compile(const graph::Graph& g,
                                              const model::Model& m,
                                              const CompileOptions& opt) {
  obs::TraceSpan span("schemes.compile");
  obs::counter("schemes.compiled").inc();
  try {
    switch (opt.objective) {
      case Objective::kShortestPath:
        if (m.neighbors_known() &&
            m.relabeling == model::Relabeling::kArbitrary) {
          return std::make_unique<NeighborLabelScheme>(g);
        }
        if (m.neighbors_known() || m.ports_free()) {
          return std::make_unique<CompactDiam2Scheme>(
              g, CompactDiam2Scheme::Options::for_model(m));
        }
        return full_table_for(g, m, opt.port_seed);

      case Objective::kStretchBelow2:
        if (m.neighbors_known()) {
          return std::make_unique<RoutingCenterScheme>(g);
        }
        return full_table_for(g, m, opt.port_seed);

      case Objective::kStretch2:
        if (m.neighbors_known()) {
          return std::make_unique<HubScheme>(g);
        }
        return full_table_for(g, m, opt.port_seed);

      case Objective::kStretchLog:
        if (m.neighbors_known()) {
          return std::make_unique<SequentialSearchScheme>(g);
        }
        return full_table_for(g, m, opt.port_seed);

      case Objective::kFullInformation:
        return std::make_unique<FullInformationScheme>(
            FullInformationScheme::standard(g));
    }
  } catch (const SchemeInapplicable&) {
    if (!opt.allow_fallback) throw;
    obs::counter("schemes.compile.fallbacks").inc();
    return full_table_for(g, m, opt.port_seed);
  }
  throw std::logic_error("compile: unknown objective");
}

BudgetedScheme compile_within_budget(const graph::Graph& g,
                                     std::size_t bit_budget) {
  // Walk the ladder best-stretch-first; return the first rung that fits.
  {
    auto scheme = std::make_unique<CompactDiam2Scheme>(
        g, CompactDiam2Scheme::Options{});
    if (scheme->space().total_bits() <= bit_budget) {
      return BudgetedScheme{std::move(scheme), 1.0};
    }
  }
  {
    auto scheme = std::make_unique<RoutingCenterScheme>(g);
    if (scheme->space().total_bits() <= bit_budget) {
      return BudgetedScheme{std::move(scheme), 1.5};
    }
  }
  {
    auto scheme = std::make_unique<HubScheme>(g);
    if (scheme->space().total_bits() <= bit_budget) {
      return BudgetedScheme{std::move(scheme), 2.0};
    }
  }
  auto scheme = std::make_unique<SequentialSearchScheme>(g);
  const double stretch =
      6.0 * std::log2(std::max<double>(2.0, static_cast<double>(g.node_count())));
  return BudgetedScheme{std::move(scheme), stretch};
}

}  // namespace optrt::schemes
