// Full-information shortest path routing (§1, Theorem 10's matching upper
// bound): the function at u returns, for each destination, *all* edges
// incident to u on shortest paths — so an alternative shortest path can be
// taken whenever an outgoing link is down.
//
// Representation: per node, an n × d(u) bit matrix (destination label ×
// port); total Σ_u n·d(u) = O(n³) bits, the trivial bound Theorem 10 shows
// optimal in model α.
#pragma once

#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/algorithms.hpp"
#include "graph/ports.hpp"
#include "model/scheme.hpp"

namespace optrt::schemes {

using graph::NodeId;

class FullInformationScheme final : public model::FullInformationRouting {
 public:
  FullInformationScheme(const graph::Graph& g, graph::PortAssignment ports);

  static FullInformationScheme standard(const graph::Graph& g);

  [[nodiscard]] std::string name() const override { return "full-information"; }
  [[nodiscard]] model::Model routing_model() const override {
    return model::kIAalpha;
  }
  [[nodiscard]] std::size_t node_count() const override { return n_; }
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label,
                                model::MessageHeader& header) const override;
  [[nodiscard]] std::vector<NodeId> all_next_hops(
      NodeId u, NodeId dest_label) const override;
  [[nodiscard]] model::SpaceReport space() const override;
  [[nodiscard]] std::vector<NodeId> port_enumeration(NodeId u) const override;

  /// Next hop avoiding the given down ports; returns kNoRoute if every
  /// shortest-path port toward the destination is down.
  [[nodiscard]] NodeId next_hop_avoiding(
      NodeId u, NodeId dest_label, const std::vector<bool>& down_ports) const;

  static constexpr NodeId kNoRoute = static_cast<NodeId>(-1);

  [[nodiscard]] const bitio::BitVector& function_bits(NodeId u) const {
    return matrix_bits_[u];
  }
  [[nodiscard]] const graph::PortAssignment& ports() const { return ports_; }

 private:
  [[nodiscard]] bool port_bit(NodeId u, NodeId dest_label,
                              graph::PortId p) const {
    return matrix_bits_[u].get(
        static_cast<std::size_t>(dest_label) * ports_.degree(u) + p);
  }

  std::size_t n_;
  graph::PortAssignment ports_;
  std::vector<bitio::BitVector> matrix_bits_;
};

}  // namespace optrt::schemes
