#include "schemes/full_table.hpp"

#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"

namespace optrt::schemes {

FullTableScheme::FullTableScheme(const graph::Graph& g,
                                 graph::PortAssignment ports,
                                 graph::Labeling labeling,
                                 model::Model declared_model)
    : n_(g.node_count()),
      model_(declared_model),
      ports_(std::move(ports)),
      labeling_(std::move(labeling)) {
  const auto dist_cached = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_cached;
  width_.resize(n_);
  table_bits_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    width_[u] = bitio::ceil_log2(std::max<std::size_t>(g.degree(u), 1));
    bitio::BitWriter w;
    // One entry per destination *label* so lookups index by label directly.
    for (NodeId label = 0; label < n_; ++label) {
      const NodeId v = labeling_.node_of(label);
      graph::PortId port = 0;
      if (v != u && dist.at(u, v) != graph::kUnreachable) {
        const auto successors = graph::shortest_path_successors(g, dist, u, v);
        port = ports_.port_of(u, successors.front());
      }
      w.write_bits(port, width_[u]);
    }
    table_bits_[u] = w.take();
  }
}

FullTableScheme::FullTableScheme(const graph::Graph& g,
                                 graph::PortAssignment ports,
                                 graph::Labeling labeling,
                                 model::Model declared_model,
                                 std::vector<bitio::BitVector> tables)
    : n_(g.node_count()),
      model_(declared_model),
      ports_(std::move(ports)),
      labeling_(std::move(labeling)),
      table_bits_(std::move(tables)) {
  if (table_bits_.size() != n_) {
    throw std::invalid_argument("FullTableScheme: node count mismatch");
  }
  width_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    width_[u] = bitio::ceil_log2(std::max<std::size_t>(g.degree(u), 1));
    if (table_bits_[u].size() != n_ * width_[u]) {
      throw std::invalid_argument("FullTableScheme: table length mismatch");
    }
    // Eager entry validation: next_hop indexes the port assignment
    // unchecked, so no stored port may reach the query path out of range.
    const std::size_t degree = std::max<std::size_t>(g.degree(u), 1);
    bitio::BitReader r(table_bits_[u]);
    for (NodeId label = 0; label < n_; ++label) {
      if (r.read_bits(width_[u]) >= degree) {
        throw std::invalid_argument(
            "FullTableScheme: stored port exceeds the node degree");
      }
    }
  }
}

FullTableScheme FullTableScheme::standard(const graph::Graph& g) {
  return FullTableScheme(g, graph::PortAssignment::sorted(g),
                         graph::Labeling::identity(g.node_count()),
                         model::kIAalpha);
}

NodeId FullTableScheme::next_hop(NodeId u, NodeId dest_label,
                                 model::MessageHeader&) const {
  if (dest_label == labeling_.label_of(u)) {
    throw std::invalid_argument("FullTableScheme: routing to self");
  }
  bitio::BitReader r(table_bits_[u]);
  r.seek(static_cast<std::size_t>(dest_label) * width_[u]);
  const auto port = static_cast<graph::PortId>(r.read_bits(width_[u]));
  return ports_.neighbor_at(u, port);
}

model::SpaceReport FullTableScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : table_bits_) {
    report.function_bits.push_back(bits.size());
  }
  return report;
}

}  // namespace optrt::schemes
