#include "schemes/full_table.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/csr.hpp"
#include "model/fastpath.hpp"

// The batched lookup kernel has an AVX-512 gather variant selected at
// runtime (__builtin_cpu_supports); the scalar loop remains the portable
// reference and the differential suite holds both to the same answers.
#if defined(__x86_64__) && defined(__GNUC__)
#define OPTRT_FULLTABLE_SIMD 1
#include <immintrin.h>
#endif

namespace optrt::schemes {

FullTableScheme::FullTableScheme(const graph::Graph& g,
                                 graph::PortAssignment ports,
                                 graph::Labeling labeling,
                                 model::Model declared_model)
    : n_(g.node_count()),
      model_(declared_model),
      ports_(std::move(ports)),
      labeling_(std::move(labeling)) {
  const auto dist_cached = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_cached;
  width_.resize(n_);
  table_bits_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    width_[u] = bitio::ceil_log2(std::max<std::size_t>(g.degree(u), 1));
    bitio::BitWriter w;
    // One entry per destination *label* so lookups index by label directly.
    for (NodeId label = 0; label < n_; ++label) {
      const NodeId v = labeling_.node_of(label);
      graph::PortId port = 0;
      if (v != u && dist.at(u, v) != graph::kUnreachable) {
        const auto successors = graph::shortest_path_successors(g, dist, u, v);
        port = ports_.port_of(u, successors.front());
      }
      w.write_bits(port, width_[u]);
    }
    table_bits_[u] = w.take();
  }
}

FullTableScheme::FullTableScheme(const graph::Graph& g,
                                 graph::PortAssignment ports,
                                 graph::Labeling labeling,
                                 model::Model declared_model,
                                 std::vector<bitio::BitVector> tables)
    : n_(g.node_count()),
      model_(declared_model),
      ports_(std::move(ports)),
      labeling_(std::move(labeling)),
      table_bits_(std::move(tables)) {
  if (table_bits_.size() != n_) {
    throw std::invalid_argument("FullTableScheme: node count mismatch");
  }
  width_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    width_[u] = bitio::ceil_log2(std::max<std::size_t>(g.degree(u), 1));
    if (table_bits_[u].size() != n_ * width_[u]) {
      throw std::invalid_argument("FullTableScheme: table length mismatch");
    }
    // Eager entry validation: next_hop indexes the port assignment
    // unchecked, so no stored port may reach the query path out of range.
    const std::size_t degree = std::max<std::size_t>(g.degree(u), 1);
    bitio::BitReader r(table_bits_[u]);
    for (NodeId label = 0; label < n_; ++label) {
      if (r.read_bits(width_[u]) >= degree) {
        throw std::invalid_argument(
            "FullTableScheme: stored port exceeds the node degree");
      }
    }
  }
}

FullTableScheme FullTableScheme::standard(const graph::Graph& g) {
  return FullTableScheme(g, graph::PortAssignment::sorted(g),
                         graph::Labeling::identity(g.node_count()),
                         model::kIAalpha);
}

NodeId FullTableScheme::next_hop(NodeId u, NodeId dest_label,
                                 model::MessageHeader&) const {
  if (dest_label == labeling_.label_of(u)) {
    throw std::invalid_argument("FullTableScheme: routing to self");
  }
  bitio::BitReader r(table_bits_[u]);
  r.seek(static_cast<std::size_t>(dest_label) * width_[u]);
  const auto port = static_cast<graph::PortId>(r.read_bits(width_[u]));
  return ports_.neighbor_at(u, port);
}

namespace {

/// The table compiled to its query-optimal shape: every port entry is
/// resolved to its next-hop *node id* at compile time and the answers are
/// bit-packed at one straddle-free width with rows padded to a
/// power-of-two stride, so a lookup is shifts plus a single in-word
/// extraction — no BitReader, no multiplies on the address chain, no port
/// resolve. The routing-to-self slots (and the padding slots) hold the
/// sentinel value n, so the self check rides on the same load instead of
/// touching a second array.
class FullTableFastPath final : public model::FastPath {
 public:
  FullTableFastPath(std::size_t n, std::vector<std::uint64_t> words,
                    unsigned row_shift, unsigned entry_shift)
      : n_(n),
        words_(std::move(words)),
        row_shift_(row_shift),
        entry_shift_(entry_shift),
        mask_((std::uint64_t{1} << (std::uint64_t{1} << entry_shift)) - 1) {}

  [[nodiscard]] std::string name() const override { return "full-table"; }
  [[nodiscard]] std::size_t node_count() const override { return n_; }

  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dest_label) const override {
    const std::uint64_t hop = entry(u, dest_label);
    if (hop == n_) {
      throw std::invalid_argument("FullTableScheme: routing to self");
    }
    return static_cast<NodeId>(hop);
  }

 protected:
  void batch_impl(std::span<const model::RoutePair> pairs,
                  std::span<NodeId> out_hops) const override {
#if defined(OPTRT_FULLTABLE_SIMD)
    if (use_simd_ && pairs.size() >= 8) {
      batch_avx512(pairs, out_hops);
      return;
    }
#endif
    batch_scalar(pairs, out_hops, 0);
  }

 private:
  [[nodiscard]] std::uint64_t entry(NodeId u, NodeId dest) const noexcept {
    const std::size_t pos =
        ((std::size_t{u} << row_shift_) + dest) << entry_shift_;
    return (words_[pos >> 6] >> (pos & 63)) & mask_;
  }

  void batch_scalar(std::span<const model::RoutePair> pairs,
                    std::span<NodeId> out_hops, std::size_t from) const {
    for (std::size_t i = from; i < pairs.size(); ++i) {
      const auto [u, dest] = pairs[i];
      const std::uint64_t hop = entry(u, dest);
      if (hop == n_) {
        throw std::invalid_argument("FullTableScheme: routing to self");
      }
      out_hops[i] = static_cast<NodeId>(hop);
    }
  }

#if defined(OPTRT_FULLTABLE_SIMD)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"  // gcc avx512 headers
  // Eight lookups per iteration: the packed positions are pure shift
  // arithmetic on the (src, dest) lanes, the table words come in through
  // one gather, and the sentinel test folds into a lane mask. A batch
  // containing a routing-to-self pair re-runs the scalar loop so the
  // exception surfaces at the first offending pair, exactly like the
  // scalar kernel.
  __attribute__((target("avx512f"))) void batch_avx512(
      std::span<const model::RoutePair> pairs,
      std::span<NodeId> out_hops) const {
    static_assert(sizeof(model::RoutePair) == 8);
    const __m512i low32 = _mm512_set1_epi64(0xffffffffLL);
    const __m512i six3 = _mm512_set1_epi64(63);
    const __m512i vmask = _mm512_set1_epi64(static_cast<long long>(mask_));
    const __m512i vsent = _mm512_set1_epi64(static_cast<long long>(n_));
    const __m128i rsh = _mm_cvtsi32_si128(static_cast<int>(row_shift_));
    const __m128i esh = _mm_cvtsi32_si128(static_cast<int>(entry_shift_));
    const std::uint64_t* base = words_.data();
    __mmask8 bad = 0;
    std::size_t i = 0;
    for (; i + 8 <= pairs.size(); i += 8) {
      const __m512i p = _mm512_loadu_si512(pairs.data() + i);
      const __m512i u = _mm512_and_epi64(p, low32);   // RoutePair::src
      const __m512i d = _mm512_srli_epi64(p, 32);     // RoutePair::dst_label
      const __m512i pos = _mm512_sll_epi64(
          _mm512_add_epi64(_mm512_sll_epi64(u, rsh), d), esh);
      const __m512i words =
          _mm512_i64gather_epi64(_mm512_srli_epi64(pos, 6), base, 8);
      const __m512i hop = _mm512_and_epi64(
          _mm512_srlv_epi64(words, _mm512_and_epi64(pos, six3)), vmask);
      bad |= _mm512_cmpeq_epi64_mask(hop, vsent);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_hops.data() + i),
                          _mm512_cvtepi64_epi32(hop));
    }
    if (bad != 0) {
      batch_scalar(pairs, out_hops, 0);  // throws at the first self pair
      return;
    }
    batch_scalar(pairs, out_hops, i);  // tail
  }
#pragma GCC diagnostic pop
#endif

  std::size_t n_;
  std::vector<std::uint64_t> words_;  // [u << row_shift | dest] -> hop | n
  unsigned row_shift_;    // log2 of the padded entries per row
  unsigned entry_shift_;  // log2 of the entry width in bits
  std::uint64_t mask_;
#if defined(OPTRT_FULLTABLE_SIMD)
  bool use_simd_ = __builtin_cpu_supports("avx512f") > 0;
#endif
};

}  // namespace

std::unique_ptr<model::FastPath> FullTableScheme::compile_fast() const {
  // Straddle-free width is a divisor of 64 — always a power of two — and
  // rows pad to the next power of two of n, so lookups address by shifts.
  const unsigned width = model::straddle_free_width(bitio::ceil_log2_plus1(n_));
  const auto entry_shift =
      static_cast<unsigned>(std::countr_zero(std::uint64_t{width}));
  const std::size_t row_entries = std::bit_ceil(std::max<std::size_t>(n_, 1));
  const auto row_shift =
      static_cast<unsigned>(std::countr_zero(std::uint64_t{row_entries}));
  const std::size_t total_bits = (n_ * row_entries) << entry_shift;
  std::vector<std::uint64_t> words((total_bits + 63) / 64, 0);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  const auto put = [&](std::size_t slot, std::uint64_t v) {
    const std::size_t pos = slot << entry_shift;
    words[pos >> 6] |= v << (pos & 63);
  };
  for (NodeId u = 0; u < n_; ++u) {
    const NodeId self = labeling_.label_of(u);
    bitio::BitReader r(table_bits_[u]);
    for (std::size_t dest = 0; dest < row_entries; ++dest) {
      const std::size_t slot = (std::size_t{u} << row_shift) + dest;
      // Sentinel n at the self slot and in the padding tail; every other
      // slot is the resolved next-hop node id.
      if (dest >= n_ || dest == self) {
        put(slot, std::uint64_t{n_} & mask);
        continue;
      }
      r.seek(dest * width_[u]);
      const auto port = static_cast<graph::PortId>(r.read_bits(width_[u]));
      put(slot, ports_.neighbor_at(u, port));
    }
  }
  model::note_fastpath_compiled("full_table");
  return std::make_unique<FullTableFastPath>(n_, std::move(words), row_shift,
                                             entry_shift);
}

model::SpaceReport FullTableScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : table_bits_) {
    report.function_bits.push_back(bits.size());
  }
  return report;
}

}  // namespace optrt::schemes
