#include "schemes/interval.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/algorithms.hpp"
#include "schemes/errors.hpp"

namespace optrt::schemes {

IntervalRoutingScheme::IntervalRoutingScheme(const graph::Graph& g, NodeId root)
    : n_(g.node_count()), labeling_(graph::Labeling::identity(n_)) {
  if (!graph::is_connected(g)) {
    throw SchemeInapplicable("interval-tree: graph disconnected");
  }

  // BFS spanning tree.
  std::vector<NodeId> parent(n_, static_cast<NodeId>(-1));
  std::vector<std::vector<NodeId>> children(n_);
  {
    std::vector<bool> seen(n_, false);
    std::vector<NodeId> frontier{root};
    seen[root] = true;
    parent[root] = root;
    while (!frontier.empty()) {
      std::vector<NodeId> next;
      for (NodeId u : frontier) {
        for (NodeId v : g.neighbors(u)) {
          if (!seen[v]) {
            seen[v] = true;
            parent[v] = u;
            children[u].push_back(v);
            next.push_back(v);
          }
        }
      }
      frontier.swap(next);
    }
  }

  // DFS preorder labels; subtree of u covers [pre[u], last[u]].
  std::vector<NodeId> pre(n_, 0), last(n_, 0);
  {
    NodeId counter = 0;
    // Iterative DFS with post-processing for `last`.
    std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
    pre[root] = counter++;
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      if (idx < children[u].size()) {
        const NodeId c = children[u][idx++];
        pre[c] = counter++;
        stack.emplace_back(c, 0);
      } else {
        last[u] = children[u].empty()
                      ? pre[u]
                      : last[children[u].back()];
        stack.pop_back();
      }
    }
  }

  std::vector<NodeId> label_of_node(n_);
  for (NodeId u = 0; u < n_; ++u) label_of_node[u] = pre[u];
  labeling_ = graph::Labeling::permutation(std::move(label_of_node));

  // Serialize per node: parent id, child count, then (child id, lo, hi)
  // label triples.
  const unsigned width = bitio::ceil_log2(std::max<std::size_t>(n_, 2));
  function_bits_.resize(n_);
  decoded_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    bitio::BitWriter w;
    w.write_bits(parent[u], width);
    w.write_bits(children[u].size(), bitio::ceil_log2_plus1(n_));
    for (NodeId c : children[u]) {
      w.write_bits(c, width);
      w.write_bits(pre[c], width);
      w.write_bits(last[c], width);
    }
    function_bits_[u] = w.take();

    // Honest read-back.
    bitio::BitReader r(function_bits_[u]);
    DecodedNode& node = decoded_[u];
    node.parent = static_cast<NodeId>(r.read_bits(width));
    const auto count = static_cast<std::size_t>(
        r.read_bits(bitio::ceil_log2_plus1(n_)));
    node.child.resize(count);
    node.lo.resize(count);
    node.hi.resize(count);
    for (std::size_t k = 0; k < count; ++k) {
      node.child[k] = static_cast<NodeId>(r.read_bits(width));
      node.lo[k] = static_cast<NodeId>(r.read_bits(width));
      node.hi[k] = static_cast<NodeId>(r.read_bits(width));
    }
  }
}

NodeId IntervalRoutingScheme::next_hop(NodeId u, NodeId dest_label,
                                       model::MessageHeader&) const {
  if (dest_label == labeling_.label_of(u)) {
    throw std::invalid_argument("IntervalRoutingScheme: routing to self");
  }
  const DecodedNode& node = decoded_[u];
  for (std::size_t k = 0; k < node.child.size(); ++k) {
    if (node.lo[k] <= dest_label && dest_label <= node.hi[k]) {
      return node.child[k];
    }
  }
  return node.parent;
}

model::SpaceReport IntervalRoutingScheme::space() const {
  model::SpaceReport report;
  report.function_bits.reserve(n_);
  for (const auto& bits : function_bits_) {
    report.function_bits.push_back(bits.size());
  }
  return report;
}

}  // namespace optrt::schemes
