#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>

#include "obs/json.hpp"

namespace optrt::obs {

namespace {

std::atomic<Trace*> g_current_trace{nullptr};
std::atomic<std::uint64_t> g_next_trace_id{1};

// Span nesting depth of the calling thread (across whatever trace is
// current — one trace is active at a time in practice).
thread_local std::uint32_t t_span_depth = 0;

// Per-thread tid assignments keyed by trace id (ids never reused).
thread_local std::unordered_map<std::uint64_t, std::uint32_t> t_trace_tids;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Trace::Trace()
    : id_(g_next_trace_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(steady_now_ns()) {}

std::uint64_t Trace::now_ns() const { return steady_now_ns() - epoch_ns_; }

std::uint32_t Trace::thread_id() const {
  const auto it = t_trace_tids.find(id_);
  if (it != t_trace_tids.end()) return it->second;
  const std::uint32_t tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  t_trace_tids.emplace(id_, tid);
  return tid;
}

void Trace::record(std::string name, std::uint64_t start_ns,
                   std::uint64_t dur_ns, std::uint32_t tid,
                   std::uint32_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::move(name), tid, depth, start_ns, dur_ns});
}

std::size_t Trace::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<Trace::Event> Trace::events() const {
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.name < b.name;
  });
  return out;
}

std::vector<Trace::SummaryRow> Trace::summary() const {
  std::map<std::string, SummaryRow> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Event& e : events_) {
      SummaryRow& row = rows[e.name];
      row.name = e.name;
      ++row.count;
      row.total_ns += e.dur_ns;
      row.max_ns = std::max(row.max_ns, e.dur_ns);
    }
  }
  std::vector<SummaryRow> out;
  out.reserve(rows.size());
  for (auto& [name, row] : rows) out.push_back(std::move(row));
  return out;
}

std::string Trace::summary_json(bool include_wall_times) const {
  JsonWriter w;
  w.begin_object();
  w.key("spans").begin_object();
  for (const SummaryRow& row : summary()) {
    w.key(row.name).begin_object();
    w.key("count").value(row.count);
    if (include_wall_times) {
      w.key("total_ns").value(row.total_ns);
      w.key("max_ns").value(row.max_ns);
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string Trace::chrome_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const Event& e : events()) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("ph").value("X");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(std::uint64_t{e.tid});
    w.key("ts").value(static_cast<double>(e.start_ns) / 1000.0);
    w.key("dur").value(static_cast<double>(e.dur_ns) / 1000.0);
    w.key("args").begin_object();
    w.key("depth").value(std::uint64_t{e.depth});
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

Trace* current_trace() noexcept {
  return g_current_trace.load(std::memory_order_acquire);
}

TraceScope::TraceScope(Trace& t) noexcept
    : previous_(g_current_trace.load(std::memory_order_acquire)) {
  g_current_trace.store(&t, std::memory_order_release);
}

TraceScope::~TraceScope() {
  g_current_trace.store(previous_, std::memory_order_release);
}

TraceSpan::TraceSpan(const char* name) noexcept
    : TraceSpan(current_trace(), name) {}

TraceSpan::TraceSpan(Trace* trace, const char* name) noexcept
    : trace_(trace), name_(name) {
  if (trace_ == nullptr) return;
  depth_ = t_span_depth++;
  start_ns_ = trace_->now_ns();
}

TraceSpan::~TraceSpan() {
  if (trace_ == nullptr) return;
  --t_span_depth;
  const std::uint64_t dur = trace_->now_ns() - start_ns_;
  trace_->record(name_, start_ns_, dur, trace_->thread_id(), depth_);
}

}  // namespace optrt::obs
