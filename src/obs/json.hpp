// Minimal JSON tooling for the observability layer: an ordered streaming
// writer (the single escaping implementation behind every JSON line the
// repo prints) and a strict recursive-descent parser used by the tests to
// assert that emitted metrics parse back losslessly.
//
// Integers are preserved exactly (uint64/int64), doubles are printed with
// std::to_chars shortest round-trip form, so serializing the same values
// always yields the same bytes — the property the determinism contract in
// EXPERIMENTS.md leans on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace optrt::obs {

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters as \uXXXX or the short forms). Non-ASCII bytes pass
/// through untouched: the writer emits UTF-8 JSON.
void append_escaped(std::string& out, std::string_view s);

/// `s` as a quoted JSON string literal.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Streaming JSON writer with automatic comma placement. Keys and values
/// must alternate correctly inside objects; misuse throws std::logic_error
/// (cheap insurance that bench/CLI output stays well-formed).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(std::int32_t v) { return value(std::int64_t{v}); }
  JsonWriter& value(double v);
  JsonWriter& null();
  /// Splices a pre-rendered JSON fragment in value position (e.g. an
  /// embedded metrics document).
  JsonWriter& raw(std::string_view fragment);

  /// The document so far. Throws if containers are still open.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;
  bool expect_key_ = false;
  bool done_ = false;
};

/// Parsed JSON tree. Objects preserve key order, so dump(parse(x)) keeps
/// the writer's deterministic ordering.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kUInt,    ///< non-negative integer literal, exact
    kInt,     ///< negative integer literal, exact
    kDouble,  ///< anything with a fraction or exponent
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::uint64_t uint_value = 0;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Numeric value as double regardless of integer kind.
  [[nodiscard]] double as_double() const;
};

/// Parses a complete JSON document; throws std::runtime_error with a byte
/// offset on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Re-serializes a parsed tree, preserving object key order and exact
/// integer values.
[[nodiscard]] std::string dump_json(const JsonValue& v);

}  // namespace optrt::obs
