#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace optrt::obs {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void append_number(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

[[noreturn]] void fail_at(std::size_t pos, const std::string& what) {
  throw std::runtime_error("parse_json: " + what + " at byte " +
                           std::to_string(pos));
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail_at(pos, "unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c) {
      fail_at(pos, std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text.substr(pos, w.size()) == w) {
      pos += w.size();
      return true;
    }
    return false;
  }

  std::uint32_t hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos >= text.size()) fail_at(pos, "truncated \\u escape");
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail_at(pos - 1, "bad hex digit in \\u escape");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail_at(pos, "unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail_at(pos - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail_at(pos, "truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair.
            if (!consume('\\') || !consume('u')) {
              fail_at(pos, "unpaired surrogate");
            }
            const std::uint32_t lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail_at(pos, "bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail_at(pos, "stray low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail_at(pos - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    const bool negative = consume('-');
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0)) {
      ++pos;
    }
    bool integral = true;
    if (pos < text.size() && (text[pos] == '.')) {
      integral = false;
      ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
        ++pos;
      }
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token.empty() || token == "-") fail_at(start, "malformed number");
    JsonValue v;
    if (integral && !negative) {
      v.kind = JsonValue::Kind::kUInt;
      const auto res = std::from_chars(token.data(), token.data() + token.size(),
                                       v.uint_value);
      if (res.ec != std::errc{} || res.ptr != token.data() + token.size()) {
        fail_at(start, "integer out of range");
      }
      v.double_value = static_cast<double>(v.uint_value);
      return v;
    }
    if (integral) {
      v.kind = JsonValue::Kind::kInt;
      const auto res = std::from_chars(token.data(), token.data() + token.size(),
                                       v.int_value);
      if (res.ec != std::errc{} || res.ptr != token.data() + token.size()) {
        fail_at(start, "integer out of range");
      }
      v.double_value = static_cast<double>(v.int_value);
      return v;
    }
    v.kind = JsonValue::Kind::kDouble;
    const auto res = std::from_chars(token.data(), token.data() + token.size(),
                                     v.double_value);
    if (res.ec != std::errc{} || res.ptr != token.data() + token.size()) {
      fail_at(start, "malformed number");
    }
    return v;
  }

  JsonValue parse_value(int depth) {
    if (depth > 128) fail_at(pos, "nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      ++pos;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (consume('}')) return v;
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (consume(',')) continue;
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (consume(']')) return v;
      while (true) {
        v.array.push_back(parse_value(depth + 1));
        skip_ws();
        if (consume(',')) continue;
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string_value = parse_string();
      return v;
    }
    if (consume_word("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_word("null")) return v;
    return parse_number();
  }
};

void dump_value(std::string& out, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Kind::kUInt: out += std::to_string(v.uint_value); break;
    case JsonValue::Kind::kInt: out += std::to_string(v.int_value); break;
    case JsonValue::Kind::kDouble: append_number(out, v.double_value); break;
    case JsonValue::Kind::kString:
      out.push_back('"');
      append_escaped(out, v.string_value);
      out.push_back('"');
      break;
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& e : v.array) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(out, e);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, e] : v.object) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        append_escaped(out, k);
        out += "\":";
        dump_value(out, e);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out.push_back(kHexDigits[u >> 4]);
          out.push_back(kHexDigits[u & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  append_escaped(out, s);
  out.push_back('"');
  return out;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject) {
    if (!expect_key_) {
      throw std::logic_error("JsonWriter: value without key inside object");
    }
    expect_key_ = false;
    return;
  }
  if (!first_.back()) out_.push_back(',');
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || expect_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_.push_back('}');
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_.push_back(']');
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::kObject || expect_key_) {
    throw std::logic_error("JsonWriter: key outside object or repeated");
  }
  if (!first_.back()) out_.push_back(',');
  first_.back() = false;
  out_.push_back('"');
  append_escaped(out_, k);
  out_ += "\":";
  expect_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_.push_back('"');
  append_escaped(out_, v);
  out_.push_back('"');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  append_number(out_, v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  before_value();
  out_ += fragment;
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unterminated containers");
  }
  return out_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::as_double() const {
  switch (kind) {
    case Kind::kUInt: return static_cast<double>(uint_value);
    case Kind::kInt: return static_cast<double>(int_value);
    case Kind::kDouble: return double_value;
    default: return 0.0;
  }
}

JsonValue parse_json(std::string_view text) {
  Parser p{text};
  JsonValue v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) fail_at(p.pos, "trailing garbage");
  return v;
}

std::string dump_json(const JsonValue& v) {
  std::string out;
  dump_value(out, v);
  return out;
}

}  // namespace optrt::obs
